// Package client is bohm's network client: it speaks the internal/wire
// protocol to a bohm server (cmd/bohm-server or internal/server
// embedded), submitting registered procedures built with a Registry that
// mirrors the server's.
//
// A Conn is one TCP connection carrying a full-duplex pipeline: Submit
// returns a *Pending immediately and up to PipelineDepth submissions may
// be unacknowledged at once, so a single connection can keep the
// server's group batcher fed. Conn is safe for concurrent use — many
// goroutines sharing one Conn pipeline naturally.
//
// Recency: every acknowledgement carries a token (the newest durable
// batch covering the write). The Conn remembers the highest it has seen
// and attaches it to read-only submissions, giving read-your-writes on
// this connection automatically. To read your writes across connections,
// carry Token() from the writer to ObserveToken on the reader.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/core"
	"bohm/internal/txn"
	"bohm/internal/wire"
)

// Options tunes a connection; zero values take the stated defaults.
type Options struct {
	// PipelineDepth bounds unacknowledged submissions. Submit blocks
	// when they are all in flight. Default 64 (the server's default;
	// matching it keeps the pipe full without stalls).
	PipelineDepth int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
}

// ErrConnClosed is reported for submissions on (and pending results of)
// a connection that has been closed or has failed; it wraps the
// underlying network error when there is one.
var ErrConnClosed = errors.New("client: connection closed")

// Conn is one connection to a bohm server.
type Conn struct {
	c      net.Conn
	slots  chan struct{}
	dead   chan struct{}
	nextID atomic.Uint64
	token  atomic.Uint64

	wmu sync.Mutex // serializes frame writes and their buffer
	bw  *bufio.Writer
	wb  []byte

	mu      sync.Mutex
	pending map[uint64]*Pending
	err     error // sticky failure, set once under mu

	readerDone chan struct{}
}

// Pending is an in-flight submission. Wait blocks until the server's
// acknowledgement (durable and executed) or connection failure.
type Pending struct {
	done   chan struct{}
	err    error
	result []byte
	token  uint64
}

// Wait blocks for the outcome: nil for commit, the remote error
// otherwise (errors.Is works against the bohm sentinels — ErrNotFound,
// ErrAbort, ErrDurabilityLost, ...).
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Result returns the transaction's result payload (procedures
// implementing a Result() method, like kv.get), valid after Wait
// returns nil.
func (p *Pending) Result() []byte {
	<-p.done
	return p.result
}

// Dial connects and handshakes. opts may be nil for defaults.
func Dial(addr string, opts *Options) (*Conn, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = 64
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if err := wire.Handshake(nc); err != nil {
		_ = nc.Close()
		return nil, err
	}
	c := &Conn{
		c:          nc,
		slots:      make(chan struct{}, o.PipelineDepth),
		dead:       make(chan struct{}),
		bw:         bufio.NewWriterSize(nc, 64<<10),
		pending:    make(map[uint64]*Pending),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Token returns the highest recency token this connection has observed:
// a durable bound covering every write acknowledged to it so far. Hand
// it to another connection's ObserveToken to extend read-your-writes
// across connections.
func (c *Conn) Token() uint64 { return c.token.Load() }

// ObserveToken folds an externally learned token (another connection's
// Token after its write was acked) into this connection's recency
// bound: subsequent read-only submissions will observe those writes.
func (c *Conn) ObserveToken(tok uint64) {
	for {
		cur := c.token.Load()
		if tok <= cur || c.token.CompareAndSwap(cur, tok) {
			return
		}
	}
}

// Submit sends one transaction for execution, returning immediately
// with a Pending. t must be a bohm.Loggable (built via Registry.Call /
// MustCall): the wire format is the procedure encoding. Blocks only
// when PipelineDepth submissions are already in flight.
func (c *Conn) Submit(t txn.Txn) (*Pending, error) {
	return c.submit(t, 0, true)
}

// SubmitReadOnly sends a transaction for the server's read-only fast
// path, tagged with the connection's recency token: it will observe
// every write this connection has been acked for (and any observed via
// ObserveToken), without entering the write pipeline. The transaction
// must declare no writes.
func (c *Conn) SubmitReadOnly(t txn.Txn) (*Pending, error) {
	return c.submit(t, wire.FlagReadOnly, true)
}

// ExecuteBatch pipelines ts and waits for all outcomes, mirroring the
// embedded Engine.ExecuteBatch shape: one error slot per transaction.
func (c *Conn) ExecuteBatch(ts []txn.Txn) []error {
	return c.executeAll(ts, 0)
}

// ExecuteReadOnly pipelines ts on the read-only path and waits for all
// outcomes.
func (c *Conn) ExecuteReadOnly(ts []txn.Txn) []error {
	return c.executeAll(ts, wire.FlagReadOnly)
}

func (c *Conn) executeAll(ts []txn.Txn, flags byte) []error {
	errs := make([]error, len(ts))
	ps := make([]*Pending, len(ts))
	for i, t := range ts {
		// Flush only the last write: intermediate submissions ride the
		// buffered writer (submit flushes itself whenever it would block
		// on a pipeline slot, so a depth smaller than the batch cannot
		// deadlock).
		p, err := c.submit(t, flags, i == len(ts)-1)
		if err != nil {
			errs[i] = err
			continue
		}
		ps[i] = p
	}
	for i, p := range ps {
		if p != nil {
			errs[i] = p.Wait()
		}
	}
	return errs
}

func (c *Conn) submit(t txn.Txn, flags byte, flush bool) (*Pending, error) {
	lg, ok := t.(txn.Loggable)
	if !ok {
		return nil, fmt.Errorf("%w: network submissions need a registered procedure (Registry.Call)", core.ErrNotLoggable)
	}
	proc, args := lg.Procedure()
	var token uint64
	if flags&wire.FlagReadOnly != 0 {
		token = c.token.Load()
	}
	req := wire.Request{
		Flags: flags,
		Token: token,
		Rec: txn.Record{
			Proc: proc, Args: args,
			Reads: t.ReadSet(), Writes: t.WriteSet(), Ranges: t.RangeSet(),
		},
	}

	// Take a pipeline slot; when full, push buffered frames out first so
	// the server can drain the pipe (otherwise a full buffer and a full
	// pipeline deadlock against each other).
	select {
	case c.slots <- struct{}{}:
	case <-c.dead:
		return nil, c.deadErr()
	default:
		if err := c.Flush(); err != nil {
			return nil, err
		}
		select {
		case c.slots <- struct{}{}:
		case <-c.dead:
			return nil, c.deadErr()
		}
	}

	req.ID = c.nextID.Add(1)
	p := &Pending{done: make(chan struct{})}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		<-c.slots
		return nil, err
	}
	c.pending[req.ID] = p
	c.mu.Unlock()

	c.wmu.Lock()
	c.wb = wire.AppendRequest(c.wb[:0], &req)
	err := wire.WriteFrame(c.bw, c.wb)
	if err == nil && flush {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("%w: %w", ErrConnClosed, err))
		return nil, err
	}
	return p, nil
}

// Flush pushes any buffered submission frames to the server.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	err := c.bw.Flush()
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("%w: %w", ErrConnClosed, err))
	}
	return err
}

func (c *Conn) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.c, 64<<10)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			c.fail(fmt.Errorf("%w: %w", ErrConnClosed, err))
			return
		}
		buf = payload[:0]
		if len(payload) == 0 || payload[0] != wire.MsgResult {
			c.fail(fmt.Errorf("%w: unexpected message", wire.ErrProtocol))
			return
		}
		resp, err := wire.DecodeResponse(payload[1:])
		if err != nil {
			c.fail(err)
			return
		}
		c.ObserveToken(resp.Token)
		c.mu.Lock()
		p := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if p == nil {
			continue // response to a submission we already failed
		}
		p.err = wire.ErrorFor(resp.Status, resp.Msg)
		p.result = resp.Result
		p.token = resp.Token
		close(p.done)
		<-c.slots
	}
}

// fail marks the connection dead and fails every pending submission;
// idempotent, first error wins.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	ps := c.pending
	c.pending = make(map[uint64]*Pending)
	c.mu.Unlock()
	close(c.dead) // unblock slot waiters
	for _, p := range ps {
		p.err = err
		close(p.done)
	}
}

func (c *Conn) deadErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrConnClosed
}

// Close flushes, closes the socket, and fails anything still pending
// with ErrConnClosed.
func (c *Conn) Close() error {
	_ = c.Flush()
	err := c.c.Close()
	<-c.readerDone
	return err
}
