package bohm_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"bohm"
)

// Public-API durability round trip: register procedures, run a durable
// engine, close it, recover, verify the value, and keep operating.
func TestDurabilityPublicAPI(t *testing.T) {
	dir := t.TempDir()
	k := bohm.Key{Table: 0, ID: 9}

	reg := bohm.NewRegistry()
	reg.Register("add", func(args []byte) (bohm.Txn, error) {
		if len(args) != 8 {
			return nil, errors.New("add wants 8 bytes")
		}
		delta := binary.LittleEndian.Uint64(args)
		return &bohm.Proc{
			Reads:  []bohm.Key{k},
			Writes: []bohm.Key{k},
			Body: func(ctx bohm.Ctx) error {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				return ctx.Write(k, bohm.NewValue(8, bohm.U64(v)+delta))
			},
		}, nil
	})
	reg.Register("expect", func(args []byte) (bohm.Txn, error) {
		want := binary.LittleEndian.Uint64(args)
		return &bohm.Proc{
			Reads: []bohm.Key{k},
			Body: func(ctx bohm.Ctx) error {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				if got := bohm.U64(v); got != want {
					return errors.New("unexpected value")
				}
				return nil
			},
		}, nil
	})
	u64Call := func(proc string, x uint64) bohm.Txn {
		args := make([]byte, 8)
		binary.LittleEndian.PutUint64(args, x)
		return reg.MustCall(proc, args)
	}

	cfg := bohm.DefaultConfig()
	cfg.LogDir = dir
	cfg.CheckpointEveryBatches = 100

	eng, err := bohm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(k, bohm.NewValue(8, 100)); err != nil {
		t.Fatal(err)
	}
	if err := eng.CheckpointNow(); err != nil { // seal the load
		t.Fatal(err)
	}

	// A non-loggable writing transaction must be rejected; a read-only one
	// is accepted — the snapshot fast path bypasses the command log.
	unloggable := &bohm.Proc{Writes: []bohm.Key{k}, Body: func(c bohm.Ctx) error {
		return c.Write(k, bohm.NewValue(8, 0))
	}}
	if res := eng.ExecuteBatch([]bohm.Txn{unloggable}); !errors.Is(res[0], bohm.ErrNotLoggable) {
		t.Fatalf("plain writing Proc on durable engine: %v", res[0])
	}
	if res := eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{}}); res[0] != nil {
		t.Fatalf("plain read-only Proc on durable engine: %v", res[0])
	}

	for i := 0; i < 5; i++ {
		for j, err := range eng.ExecuteBatch([]bohm.Txn{u64Call("add", 3), u64Call("add", 4)}) {
			if err != nil {
				t.Fatalf("txn %d: %v", j, err)
			}
		}
	}
	eng.Close()

	// Recover and verify 100 + 5*(3+4) = 135.
	rec, err := bohm.Recover(cfg, reg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st := rec.Stats(); st.Committed != 10 {
		t.Fatalf("recovery replayed %d commits, want 10", st.Committed)
	}
	if res := rec.ExecuteBatch([]bohm.Txn{u64Call("expect", 135)}); res[0] != nil {
		t.Fatalf("recovered value wrong: %v", res[0])
	}

	// The recovered engine keeps logging: bump, close, recover again.
	if res := rec.ExecuteBatch([]bohm.Txn{u64Call("add", 65)}); res[0] != nil {
		t.Fatal(res[0])
	}
	rec.Close()
	rec2, err := bohm.Recover(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if res := rec2.ExecuteBatch([]bohm.Txn{u64Call("expect", 200)}); res[0] != nil {
		t.Fatalf("second recovery value wrong: %v", res[0])
	}
}
