package bohm_test

import (
	"errors"
	"fmt"
	"testing"

	"bohm"
)

// newEngines builds one engine of every kind for API-level tests.
func newEngines(t *testing.T) map[string]bohm.Engine {
	t.Helper()
	out := map[string]bohm.Engine{}
	add := func(name string, e bohm.Engine, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Cleanup(e.Close)
		out[name] = e
	}
	b, err := bohm.New(bohm.DefaultConfig())
	add("bohm", b, err)
	h, err := bohm.NewHekaton(bohm.DefaultHekatonConfig())
	add("hekaton", h, err)
	s, err := bohm.NewSnapshotIsolation(bohm.DefaultHekatonConfig())
	add("si", s, err)
	o, err := bohm.NewOCC(bohm.DefaultOCCConfig())
	add("occ", o, err)
	p, err := bohm.New2PL(bohm.DefaultTwoPLConfig())
	add("2pl", p, err)
	return out
}

func TestPublicAPIRoundTrip(t *testing.T) {
	for name, eng := range newEngines(t) {
		t.Run(name, func(t *testing.T) {
			k := bohm.Key{Table: 0, ID: 1}
			if err := eng.Load(k, bohm.NewValue(8, 10)); err != nil {
				t.Fatal(err)
			}
			res := eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{
				Reads:  []bohm.Key{k},
				Writes: []bohm.Key{k},
				Body: func(ctx bohm.Ctx) error {
					v, err := ctx.Read(k)
					if err != nil {
						return err
					}
					return ctx.Write(k, bohm.Incremented(v, 5))
				},
			}})
			if res[0] != nil {
				t.Fatal(res[0])
			}
			var got uint64
			res = eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{
				Reads: []bohm.Key{k},
				Body: func(ctx bohm.Ctx) error {
					v, err := ctx.Read(k)
					if err != nil {
						return err
					}
					got = bohm.U64(v)
					return nil
				},
			}})
			if res[0] != nil || got != 15 {
				t.Fatalf("read back %d (%v), want 15", got, res[0])
			}
			if s := eng.Stats(); s.Committed < 2 {
				t.Errorf("stats.Committed = %d", s.Committed)
			}
		})
	}
}

func TestErrNotFoundExported(t *testing.T) {
	eng, err := bohm.New(bohm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var readErr error
	eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{
		Body: func(ctx bohm.Ctx) error {
			_, readErr = ctx.Read(bohm.Key{ID: 9999})
			return nil
		},
	}})
	if !errors.Is(readErr, bohm.ErrNotFound) {
		t.Fatalf("read of absent key = %v, want bohm.ErrNotFound", readErr)
	}
}

func TestErrAbortUsable(t *testing.T) {
	eng, err := bohm.New(bohm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	k := bohm.Key{ID: 1}
	if err := eng.Load(k, bohm.NewValue(8, 1)); err != nil {
		t.Fatal(err)
	}
	res := eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{
		Writes: []bohm.Key{k},
		Body: func(ctx bohm.Ctx) error {
			if err := ctx.Write(k, bohm.NewValue(8, 2)); err != nil {
				return err
			}
			return bohm.ErrAbort
		},
	}})
	if !errors.Is(res[0], bohm.ErrAbort) {
		t.Fatalf("res = %v, want ErrAbort", res[0])
	}
}

func TestValueHelpersExported(t *testing.T) {
	v := bohm.NewValue(100, 7)
	if bohm.U64(v) != 7 || len(v) != 100 {
		t.Fatal("NewValue/U64 mismatch")
	}
	bohm.PutU64(v, 9)
	if bohm.U64(v) != 9 {
		t.Fatal("PutU64 mismatch")
	}
	w := bohm.Incremented(v, 1)
	if bohm.U64(w) != 10 || bohm.U64(v) != 9 {
		t.Fatal("Incremented mismatch")
	}
}

// ExampleNew demonstrates the quickstart flow from the README.
func ExampleNew() {
	eng, err := bohm.New(bohm.DefaultConfig())
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	k := bohm.Key{Table: 0, ID: 1}
	if err := eng.Load(k, bohm.NewValue(8, 100)); err != nil {
		panic(err)
	}

	res := eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{
		Reads:  []bohm.Key{k},
		Writes: []bohm.Key{k},
		Body: func(ctx bohm.Ctx) error {
			v, err := ctx.Read(k)
			if err != nil {
				return err
			}
			return ctx.Write(k, bohm.Incremented(v, 1))
		},
	}})
	fmt.Println("committed:", res[0] == nil)
	// Output: committed: true
}

// ExampleEngine_ExecuteBatch shows that the serialization order of a BOHM
// batch is the submission order.
func ExampleEngine_ExecuteBatch() {
	eng, err := bohm.New(bohm.DefaultConfig())
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	k := bohm.Key{Table: 0, ID: 1}
	if err := eng.Load(k, bohm.NewValue(8, 0)); err != nil {
		panic(err)
	}

	set := func(x uint64) bohm.Txn {
		return &bohm.Proc{
			Writes: []bohm.Key{k},
			Body: func(ctx bohm.Ctx) error {
				return ctx.Write(k, bohm.NewValue(8, x))
			},
		}
	}
	eng.ExecuteBatch([]bohm.Txn{set(1), set(2), set(3)})

	var final uint64
	eng.ExecuteBatch([]bohm.Txn{&bohm.Proc{
		Reads: []bohm.Key{k},
		Body: func(ctx bohm.Ctx) error {
			v, err := ctx.Read(k)
			if err != nil {
				return err
			}
			final = bohm.U64(v)
			return nil
		},
	}})
	fmt.Println("final value:", final)
	// Output: final value: 3
}
