// Command bohm-bench regenerates the paper's experiments.
//
// Usage:
//
//	bohm-bench -exp fig5              # one experiment at the default scale
//	bohm-bench -exp all -scale quick  # everything, scaled down
//	bohm-bench -list                  # enumerate experiments
//
// The "paper" scale reproduces the published configuration (1M-row YCSB
// table, 1,000-byte records, 100k transactions per point, threads up to
// 40); "quick" preserves the shapes at a fraction of the cost. Output is
// one aligned table per figure, matching the rows/series the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"bohm/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or \"all\"")
		scale    = flag.String("scale", "quick", "experiment scale: quick, ref or paper")
		list     = flag.Bool("list", false, "list experiments and exit")
		procs    = flag.Int("procs", 0, "GOMAXPROCS override (0 = runtime default)")
		records  = flag.Int("records", 0, "override the YCSB table size")
		txns     = flag.Int("txns", 0, "override the per-point transaction count")
		jsonPath = flag.String("json", "", "also write machine-readable results (throughput, abort rate, p50/p99) to this file, e.g. BENCH_quick.json")
	)
	flag.Parse()

	if *list {
		for _, ex := range bench.Experiments {
			fmt.Printf("%-18s %s\n", ex.ID, ex.Title)
		}
		return
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick
	case "ref":
		s = bench.Ref
	case "paper":
		s = bench.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick, ref or paper)\n", *scale)
		os.Exit(2)
	}
	if *records > 0 {
		s.Records = *records
	}
	if *txns > 0 {
		s.Txns = *txns
	}

	fmt.Printf("bohm-bench: scale=%s records=%d txns/point=%d GOMAXPROCS=%d\n\n",
		s.Name, s.Records, s.Txns, runtime.GOMAXPROCS(0))

	if *jsonPath != "" {
		bench.StartCollecting()
	}
	var (
		tables []*bench.Table
		ran    []string
	)
	run := func(ex bench.Experiment) {
		start := time.Now()
		for _, t := range ex.Run(s) {
			fmt.Println(t.Format())
			tables = append(tables, t)
		}
		ran = append(ran, ex.ID)
		fmt.Printf("(%s took %s)\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, ex := range bench.Experiments {
			run(ex)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ex, ok := bench.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			run(ex)
		}
	}

	if *jsonPath != "" {
		rep := &bench.Report{
			GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
			Scale:        s.Name,
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			Records:      s.Records,
			TxnsPerPoint: s.Txns,
			Experiments:  ran,
			Tables:       tables,
			Runs:         bench.CollectedRuns(),
		}
		if err := bench.WriteReport(*jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d runs)\n", *jsonPath, len(rep.Runs))
	}
}
