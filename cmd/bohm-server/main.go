// Command bohm-server serves a BOHM engine over TCP with cross-connection
// group batching (see internal/server).
//
// Usage:
//
//	bohm-server -addr :4455 -log-dir /var/lib/bohm -debug-addr :8080
//
// With -log-dir the engine recovers from (and logs to) that directory;
// without it the store is in-memory and volatile. The built-in procedure
// registry holds the YCSB procedures (ycsb.rmw, ycsb.put) and the
// general key/value set (kv.put, kv.get, kv.transfer); applications
// embedding the server register their own.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bohm"
	"bohm/internal/server"
	"bohm/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":4455", "TCP listen address")
		logDir     = flag.String("log-dir", "", "durability directory (empty = in-memory, volatile)")
		sync       = flag.String("sync", "batch", "log sync policy: batch, interval or never")
		syncEvery  = flag.Duration("sync-interval", 2*time.Millisecond, "group-commit interval for -sync interval")
		ckptEvery  = flag.Int("checkpoint-every", 4096, "checkpoint every N batches (0 = never)")
		debugAddr  = flag.String("debug-addr", "", "debug/metrics HTTP address (empty = off)")
		cc         = flag.Int("cc", 0, "concurrency-control workers (0 = default)")
		exec       = flag.Int("exec", 0, "execution workers (0 = default)")
		capacity   = flag.Int("capacity", 1<<20, "expected record capacity")
		batch      = flag.Int("batch", 0, "sequencer batch size (0 = default)")
		maxBatch   = flag.Int("max-batch", 0, "server batch coalescing cap (0 = sequencer batch size)")
		window     = flag.Duration("window", 200*time.Microsecond, "batching window under dense arrivals")
		inflight   = flag.Int("inflight", 4, "max in-flight coalesced batches per lane")
		depth      = flag.Int("depth", 64, "per-connection pipeline depth")
		recordSize = flag.Int("record-size", 100, "record size for the YCSB procedures")
	)
	flag.Parse()

	cfg := bohm.DefaultConfig()
	cfg.Capacity = *capacity
	cfg.Metrics = *debugAddr != ""
	cfg.DebugAddr = *debugAddr
	if *cc > 0 {
		cfg.CCWorkers = *cc
	}
	if *exec > 0 {
		cfg.ExecWorkers = *exec
	}
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	if *logDir != "" {
		cfg.LogDir = *logDir
		cfg.SyncInterval = *syncEvery
		cfg.CheckpointEveryBatches = *ckptEvery
		switch *sync {
		case "batch":
			cfg.SyncPolicy = bohm.SyncEveryBatch
		case "interval":
			cfg.SyncPolicy = bohm.SyncByInterval
		case "never":
			cfg.SyncPolicy = bohm.SyncNever
		default:
			log.Fatalf("unknown -sync %q (want batch, interval or never)", *sync)
		}
	}

	if *maxBatch == 0 && *batch > 0 {
		*maxBatch = *batch
	}

	reg := bohm.NewRegistry()
	workload.RegisterYCSB(reg, *recordSize)
	workload.RegisterKV(reg)

	eng, err := bohm.Recover(cfg, reg)
	if err != nil {
		log.Fatalf("bohm-server: recover: %v", err)
	}

	srv, err := server.New(eng, reg, server.Config{
		Addr:          *addr,
		MaxBatch:      *maxBatch,
		BatchWindow:   *window,
		MaxInFlight:   *inflight,
		PipelineDepth: *depth,
	})
	if err != nil {
		eng.Close()
		log.Fatalf("bohm-server: %v", err)
	}
	if *maxBatch == 0 {
		srvNote := ""
		if *logDir == "" {
			srvNote = " (in-memory, volatile)"
		}
		log.Printf("bohm-server: serving on %s%s", srv.Addr(), srvNote)
	} else {
		log.Printf("bohm-server: serving on %s (max-batch %d)", srv.Addr(), *maxBatch)
	}
	if *debugAddr != "" {
		log.Printf("bohm-server: metrics on http://%s/metrics", eng.DebugListenAddr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	log.Printf("bohm-server: %s — draining", sig)
	if err := srv.Close(); err != nil {
		log.Printf("bohm-server: close: %v", err)
	}
	eng.Close()
	log.Print("bohm-server: done")
}
