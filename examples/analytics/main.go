// Analytics: long read-only scans running concurrently with a stream of
// update transactions — the scenario of the paper's §4.2.3 (Figures 8 and
// 9), where multiversioning shines because scans never block updates.
//
// The example runs the same mixed workload on a multiversion engine
// (BOHM) and a single-version engine (2PL) and reports both throughputs,
// plus the consistency of every scan: each scanned snapshot must reflect
// a prefix of the update stream, never a torn state.
//
//	go run ./examples/analytics
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bohm"
)

const (
	table   uint32 = 0
	records        = 50_000
	// Every update transaction increments the same global invariant: it
	// adds 1 to one key and subtracts 1 from another, so the sum over the
	// whole table is constant and every consistent scan must observe it.
	initial = 1000
)

func key(id uint64) bohm.Key { return bohm.Key{Table: table, ID: id} }

// update moves one unit between two keys chosen from a rotating pattern.
func update(i int) bohm.Txn {
	a := key(uint64(i) % records)
	b := key(uint64(i*7+1) % records)
	if a == b {
		b = key((uint64(i*7) + 2) % records)
	}
	return &bohm.Proc{
		Reads:  []bohm.Key{a, b},
		Writes: []bohm.Key{a, b},
		Body: func(ctx bohm.Ctx) error {
			va, err := ctx.Read(a)
			if err != nil {
				return err
			}
			vb, err := ctx.Read(b)
			if err != nil {
				return err
			}
			if err := ctx.Write(a, bohm.NewValue(8, bohm.U64(va)+1)); err != nil {
				return err
			}
			return ctx.Write(b, bohm.NewValue(8, bohm.U64(vb)-1))
		},
	}
}

// scan reads every record and checks that the sum matches the invariant —
// a serializability violation or a torn snapshot would break it.
func scan(out *uint64) bohm.Txn {
	keys := make([]bohm.Key, records)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	return &bohm.Proc{
		Reads: keys,
		Body: func(ctx bohm.Ctx) error {
			sum := uint64(0)
			for _, k := range keys {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				sum += bohm.U64(v)
			}
			*out = sum
			return nil
		},
	}
}

func run(name string, eng bohm.Engine, updates int) {
	defer eng.Close()
	for i := uint64(0); i < records; i++ {
		if err := eng.Load(key(i), bohm.NewValue(8, initial)); err != nil {
			log.Fatal(err)
		}
	}

	// One goroutine streams updates; the main goroutine interleaves scans.
	done := make(chan struct{})
	go func() {
		defer close(done)
		const chunk = 1000
		for sent := 0; sent < updates; sent += chunk {
			batch := make([]bohm.Txn, chunk)
			for i := range batch {
				batch[i] = update(sent + i)
			}
			for _, err := range eng.ExecuteBatch(batch) {
				if err != nil {
					log.Fatalf("update aborted: %v", err)
				}
			}
		}
	}()

	scans, violations := 0, 0
	start := time.Now()
	for {
		select {
		case <-done:
			elapsed := time.Since(start)
			fmt.Printf("%-8s %d updates + %d full-table scans in %s — %d consistency violations\n",
				name, updates, scans, elapsed.Round(time.Millisecond), violations)
			return
		default:
			var sum uint64
			if res := eng.ExecuteBatch([]bohm.Txn{scan(&sum)}); res[0] != nil {
				log.Fatalf("scan aborted: %v", res[0])
			}
			scans++
			if sum != records*initial {
				violations++
			}
		}
	}
}

func main() {
	updates := flag.Int("updates", 100_000, "update transactions to stream")
	flag.Parse()

	bohmCfg := bohm.DefaultConfig()
	bohmCfg.Capacity = records
	be, err := bohm.New(bohmCfg)
	if err != nil {
		log.Fatal(err)
	}
	run("bohm", be, *updates)

	plCfg := bohm.DefaultTwoPLConfig()
	plCfg.Capacity = records
	pe, err := bohm.New2PL(plCfg)
	if err != nil {
		log.Fatal(err)
	}
	run("2pl", pe, *updates)
}
