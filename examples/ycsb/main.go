// YCSB: drive the paper's YCSB transaction shapes against any engine at a
// chosen contention level, printing throughput and abort behaviour — a
// one-point slice of Figures 5–7.
//
//	go run ./examples/ycsb -engine bohm -theta 0.9 -workload 2rmw8r
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bohm"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

func newEngine(kind string, threads, capacity int) (bohm.Engine, error) {
	switch kind {
	case "bohm":
		cfg := bohm.DefaultConfig()
		cfg.CCWorkers = (threads + 1) / 2
		cfg.ExecWorkers = threads - threads/2
		cfg.Capacity = capacity
		return bohm.New(cfg)
	case "hekaton":
		cfg := bohm.DefaultHekatonConfig()
		cfg.Workers = threads
		cfg.Capacity = capacity
		cfg.TrimChains = true
		return bohm.NewHekaton(cfg)
	case "si":
		cfg := bohm.DefaultHekatonConfig()
		cfg.Workers = threads
		cfg.Capacity = capacity
		cfg.TrimChains = true
		return bohm.NewSnapshotIsolation(cfg)
	case "occ":
		cfg := bohm.DefaultOCCConfig()
		cfg.Workers = threads
		cfg.Capacity = capacity
		return bohm.NewOCC(cfg)
	case "2pl":
		cfg := bohm.DefaultTwoPLConfig()
		cfg.Workers = threads
		cfg.Capacity = capacity
		return bohm.New2PL(cfg)
	}
	return nil, fmt.Errorf("unknown engine %q", kind)
}

func main() {
	var (
		kind    = flag.String("engine", "bohm", "engine: bohm, hekaton, si, occ, 2pl")
		records = flag.Int("records", 100_000, "table size")
		size    = flag.Int("size", 1000, "record size in bytes (paper: 1000)")
		theta   = flag.Float64("theta", 0.9, "zipfian skew (0 = uniform, paper high contention: 0.9)")
		shape   = flag.String("workload", "10rmw", "transaction shape: 10rmw or 2rmw8r")
		threads = flag.Int("threads", 4, "worker threads")
		count   = flag.Int("txns", 50_000, "transactions to run")
	)
	flag.Parse()

	eng, err := newEngine(*kind, *threads, *records)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	y := workload.YCSB{Records: *records, RecordSize: *size}
	if err := y.LoadInto(eng); err != nil {
		log.Fatal(err)
	}

	src := y.NewSource(1, *theta)
	pick := src.RMW10
	if *shape == "2rmw8r" {
		pick = src.RMW2Read8
	}

	batch := make([]txn.Txn, *count)
	for i := range batch {
		batch[i] = pick()
	}

	start := time.Now()
	results := eng.ExecuteBatch(batch)
	elapsed := time.Since(start)

	failed := 0
	for _, err := range results {
		if err != nil {
			failed++
		}
	}
	s := eng.Stats()
	fmt.Printf("engine=%s workload=%s theta=%.2f records=%d threads=%d\n",
		*kind, *shape, *theta, *records, *threads)
	fmt.Printf("throughput: %.0f txns/sec (%d txns in %s, %d failed)\n",
		float64(*count-failed)/elapsed.Seconds(), *count, elapsed.Round(time.Millisecond), failed)
	fmt.Printf("cc aborts (retried internally): %d, timestamp fetches: %d\n", s.CCAborts, s.TimestampFetches)
	if s.VersionsCreated > 0 {
		fmt.Printf("versions created: %d, collected: %d\n", s.VersionsCreated, s.VersionsCollected)
	}
}
