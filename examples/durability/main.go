// Durability: write, crash, recover, verify — then survive a bad disk.
//
// The example runs itself twice. The parent spawns a child process that
// creates a durable BOHM engine, bulk-loads account balances, seals them
// with a checkpoint, applies a deterministic sequence of transfer batches
// and then exits without closing the engine — a genuine crash, leaving
// only the command log and checkpoints behind. The parent then recovers
// an engine from the log directory and verifies every balance against an
// in-process simulation of the same transfer sequence.
//
// A second phase demonstrates the storage-fault ladder with an injected
// filesystem (Config.FS): transient fsync failures are healed in place by
// the log's write-hole repair with no client-visible errors, while a
// persistent failure degrades the engine to a read-only mode that fails
// writes fast with ErrDurabilityLost yet keeps serving every acknowledged
// balance — until a recovery from the healed disk makes it whole again.
//
//	go run ./examples/durability
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"time"

	"bohm"
	"bohm/internal/vfs"
)

const (
	accounts     = 100
	initialUnits = 1_000
	batches      = 50
	batchSize    = 64
	childEnv     = "BOHM_DURABILITY_CHILD"
	crashCode    = 3
)

func acct(id uint64) bohm.Key { return bohm.Key{Table: 0, ID: id} }

// registry declares the example's two procedures: a transfer of one unit
// between two accounts, and an audit that reads every balance.
func registry() *bohm.Registry {
	reg := bohm.NewRegistry()
	reg.Register("transfer", func(args []byte) (bohm.Txn, error) {
		if len(args) != 16 {
			return nil, errors.New("transfer wants 16 arg bytes")
		}
		ka := acct(binary.LittleEndian.Uint64(args))
		kb := acct(binary.LittleEndian.Uint64(args[8:]))
		return &bohm.Proc{
			Reads:  []bohm.Key{ka, kb},
			Writes: []bohm.Key{ka, kb},
			Body: func(ctx bohm.Ctx) error {
				va, err := ctx.Read(ka)
				if err != nil {
					return err
				}
				vb, err := ctx.Read(kb)
				if err != nil {
					return err
				}
				if err := ctx.Write(ka, bohm.NewValue(8, bohm.U64(va)-1)); err != nil {
					return err
				}
				return ctx.Write(kb, bohm.NewValue(8, bohm.U64(vb)+1))
			},
		}, nil
	})
	// audit takes the expected balance of every account as its argument
	// bytes, reads them all in one serializable transaction, and aborts
	// with a descriptive error on any mismatch.
	reg.Register("audit", func(args []byte) (bohm.Txn, error) {
		if len(args) != accounts*8 {
			return nil, errors.New("audit wants one u64 per account")
		}
		keys := make([]bohm.Key, accounts)
		for id := range keys {
			keys[id] = acct(uint64(id))
		}
		return &bohm.Proc{
			Reads: keys,
			Body: func(ctx bohm.Ctx) error {
				for id, k := range keys {
					v, err := ctx.Read(k)
					if err != nil {
						return err
					}
					want := binary.LittleEndian.Uint64(args[8*id:])
					if got := bohm.U64(v); got != want {
						return fmt.Errorf("account %d = %d, want %d", id, got, want)
					}
				}
				return nil
			},
		}, nil
	})
	return reg
}

func transferCall(reg *bohm.Registry, a, b uint64) bohm.Txn {
	args := make([]byte, 16)
	binary.LittleEndian.PutUint64(args, a)
	binary.LittleEndian.PutUint64(args[8:], b)
	return reg.MustCall("transfer", args)
}

// pairs returns the deterministic transfer sequence for batch i; both the
// child (through the engine) and the parent (in a plain simulation)
// derive it from the same seed.
func pairs(i int) [][2]uint64 {
	rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
	ps := make([][2]uint64, batchSize)
	for j := range ps {
		a := uint64(rng.Intn(accounts))
		b := uint64(rng.Intn(accounts - 1))
		if b >= a {
			b++ // distinct keys: a write-set must not repeat a key
		}
		ps[j] = [2]uint64{a, b}
	}
	return ps
}

func config(dir string) bohm.Config {
	cfg := bohm.DefaultConfig()
	cfg.LogDir = dir
	cfg.CheckpointEveryBatches = 16 // exercise mid-log checkpoints too
	return cfg
}

// child builds the database and crashes.
func child(dir string) {
	reg := registry()
	eng, err := bohm.Recover(config(dir), reg) // empty dir: fresh start
	if err != nil {
		log.Fatal(err)
	}
	for id := uint64(0); id < accounts; id++ {
		if err := eng.Load(acct(id), bohm.NewValue(8, initialUnits)); err != nil {
			log.Fatal(err)
		}
	}
	// Loads bypass the command log; seal them into the first checkpoint.
	if err := eng.CheckpointNow(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		var ts []bohm.Txn
		for _, p := range pairs(i) {
			ts = append(ts, transferCall(reg, p[0], p[1]))
		}
		for j, err := range eng.ExecuteBatch(ts) {
			if err != nil {
				log.Fatalf("batch %d txn %d: %v", i, j, err)
			}
		}
	}
	s := eng.Stats()
	fmt.Printf("child: committed %d transfers over %d log batches (%d checkpoints); crashing\n",
		s.Committed, s.LogBatches, s.Checkpoints)
	os.Exit(crashCode) // no Close: the engine dies mid-flight
}

// parent runs the child, recovers from its log, and verifies.
func parent() {
	dir, err := os.MkdirTemp("", "bohm-durability-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Fatalf("cleanup %s: %v", dir, err)
		}
	}()

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnv+"="+dir)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	err = cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != crashCode {
		log.Fatalf("child did not crash as scripted: %v", err)
	}

	reg := registry()
	eng, err := bohm.Recover(config(dir), reg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Simulate the same transfers in plain Go for the expected balances.
	want := make([]uint64, accounts)
	for i := range want {
		want[i] = initialUnits
	}
	for i := 0; i < batches; i++ {
		for _, p := range pairs(i) {
			want[p[0]]--
			want[p[1]]++
		}
	}

	// Verify every balance in one serializable audit transaction whose
	// expectations travel in its argument bytes.
	args := make([]byte, accounts*8)
	total := uint64(0)
	for id, w := range want {
		binary.LittleEndian.PutUint64(args[8*id:], w)
		total += w
	}
	if total != accounts*initialUnits {
		log.Fatalf("reference total %d not conserved", total)
	}
	if res := eng.ExecuteBatch([]bohm.Txn{reg.MustCall("audit", args)}); res[0] != nil {
		log.Fatalf("audit after recovery failed: %v", res[0])
	}
	s := eng.Stats()
	fmt.Printf("parent: recovered %d accounts, every balance matches the reference (total %d conserved)\n",
		accounts, total)
	fmt.Printf("parent: recovery replayed %d commits from checkpoint+log, wrote %d checkpoint(s)\n",
		s.Committed-1, s.Checkpoints)
}

// faultDemo drives a fresh engine over an injected filesystem through
// both rungs of the degradation ladder.
func faultDemo() {
	dir, err := os.MkdirTemp("", "bohm-faults-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Fatalf("cleanup %s: %v", dir, err)
		}
	}()

	fsys := vfs.NewFaultFS(nil) // wraps the OS filesystem
	cfg := config(dir)
	cfg.FS = fsys
	cfg.LogRetry = bohm.RetryPolicy{Attempts: 4, Backoff: time.Millisecond}

	reg := registry()
	eng, err := bohm.Recover(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}
	for id := uint64(0); id < accounts; id++ {
		if err := eng.Load(acct(id), bohm.NewValue(8, initialUnits)); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.CheckpointNow(); err != nil {
		log.Fatal(err)
	}

	// Rung 1: two fsync faults that drop the dirty pages. The write-hole
	// repair truncates to the durable mark, rewrites the retained frames
	// into a fresh segment and retries — clients never see an error.
	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: 2, Count: 2, DropUnsynced: true})
	for i := 0; i < 10; i++ {
		for j, err := range eng.ExecuteBatch(transferBatch(reg, i)) {
			if err != nil {
				log.Fatalf("transient fault leaked to txn %d: %v", j, err)
			}
		}
	}
	h, _ := eng.Health()
	fmt.Printf("faults: healed %d injected fsync failures invisibly (%d log repairs, health=%v)\n",
		fsys.Injected(), eng.Stats().LogRetries, h)

	// Rung 2: the disk stops syncing for good. Repair exhausts its
	// budget, the engine steps down, and new writes fail fast — but every
	// balance acknowledged before the fault is still served.
	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", Count: -1, DropUnsynced: true})
	degraded := false
	for i := 10; i < 40 && !degraded; i++ {
		for _, err := range eng.ExecuteBatch(transferBatch(reg, i)) {
			if errors.Is(err, bohm.ErrDurabilityLost) {
				degraded = true
				break
			} else if err != nil {
				log.Fatalf("unexpected error class: %v", err)
			}
		}
	}
	if !degraded {
		log.Fatal("persistent fault never degraded the engine")
	}
	h, cause := eng.Health()
	v, err := eng.Read(acct(0), nil)
	if err != nil {
		log.Fatalf("degraded read failed: %v", err)
	}
	fmt.Printf("faults: persistent failure degraded the engine (health=%v, cause: %v)\n", h, cause)
	fmt.Printf("faults: degraded engine still serves reads from the durable snapshot (account 0 = %d)\n", bohm.U64(v))

	// The disk comes back: recover from the healed directory. Everything
	// acknowledged survives; the transactions that were refused with
	// ErrDurabilityLost were never acknowledged and owe nothing.
	fsys.Clear()
	eng.Kill()
	eng, err = bohm.Recover(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	total := uint64(0)
	for id := uint64(0); id < accounts; id++ {
		v, err := eng.Read(acct(id), nil)
		if err != nil {
			log.Fatalf("post-recovery read: %v", err)
		}
		total += bohm.U64(v)
	}
	if total != accounts*initialUnits {
		log.Fatalf("recovered total %d not conserved", total)
	}
	h, _ = eng.Health()
	fmt.Printf("faults: recovered from the healed disk, %d accounts conserved (total %d, health=%v)\n",
		accounts, total, h)
}

func transferBatch(reg *bohm.Registry, i int) []bohm.Txn {
	var ts []bohm.Txn
	for _, p := range pairs(i) {
		ts = append(ts, transferCall(reg, p[0], p[1]))
	}
	return ts
}

func main() {
	if dir := os.Getenv(childEnv); dir != "" {
		child(dir)
		return
	}
	parent()
	faultDemo()
}
