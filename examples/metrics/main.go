// Metrics: run an instrumented engine and scrape its own debug endpoint.
//
// The example starts a BOHM engine with Config.DebugAddr set, drives a
// mixed workload (read-modify-write batches plus fast-path point reads),
// then fetches /metrics and /debug/flight over HTTP — exactly what a
// Prometheus scraper or an operator with curl would see — and prints a
// per-stage latency summary straight from Engine.Metrics.
//
//	go run ./examples/metrics
//
// While it runs (or in your own service, where the engine stays up), the
// same endpoint serves:
//
//	curl <addr>/metrics              # Prometheus text format
//	curl <addr>/debug/flight         # recent batch lifecycle records (JSON)
//	curl <addr>/debug/vars           # expvar
//	go tool pprof <addr>/debug/pprof/profile
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"bohm"
)

const records = 4096

func key(id uint64) bohm.Key { return bohm.Key{Table: 0, ID: id} }

func main() {
	cfg := bohm.DefaultConfig()
	cfg.DebugAddr = "127.0.0.1:0" // any free port; implies cfg.Metrics
	eng, err := bohm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for i := uint64(0); i < records; i++ {
		if err := eng.Load(key(i), bohm.NewValue(64, 0)); err != nil {
			log.Fatal(err)
		}
	}

	// Traffic: increment batches through the pipeline, point reads on the
	// snapshot fast path.
	for round := 0; round < 200; round++ {
		txns := make([]bohm.Txn, 32)
		for i := range txns {
			k := key(uint64(round*len(txns)+i) % records)
			txns[i] = &bohm.Proc{
				Reads:  []bohm.Key{k},
				Writes: []bohm.Key{k},
				Body: func(ctx bohm.Ctx) error {
					v, err := ctx.Read(k)
					if err != nil {
						return err
					}
					return ctx.Write(k, bohm.Incremented(v, 1))
				},
			}
		}
		for _, err := range eng.ExecuteBatch(txns) {
			if err != nil {
				log.Fatal(err)
			}
		}
		if _, err := eng.Read(key(uint64(round)%records), nil); err != nil {
			log.Fatal(err)
		}
	}

	addr := eng.DebugListenAddr()
	fmt.Printf("debug endpoint listening on http://%s\n\n", addr)

	// What `curl <addr>/metrics` returns: Prometheus text exposition.
	metrics := fetch("http://" + addr + "/metrics")
	fmt.Println("== /metrics (excerpt) ==")
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "bohm_committed_total") ||
			strings.HasPrefix(line, "bohm_exec_watermark") ||
			strings.HasPrefix(line, "bohm_stage_duration_seconds_count") {
			fmt.Println(line)
		}
	}

	// What `curl <addr>/debug/flight` returns: recent batch lifecycles.
	flight := fetch("http://" + addr + "/debug/flight")
	fmt.Printf("\n== /debug/flight ==\n%.400s...\n", flight)

	// The same numbers without HTTP: per-stage latency percentiles.
	fmt.Printf("\n== stage latency (Engine.Metrics) ==\n")
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "stage", "count", "p50", "p99", "max")
	m := eng.Metrics()
	for s := bohm.Stage(0); int(s) < len(m.Stages); s++ {
		snap := m.Stages[s].Snapshot()
		if snap.Count == 0 {
			continue
		}
		fmt.Printf("%-12s %10d %10v %10v %10v\n", bohm.StageName(s), snap.Count,
			time.Duration(snap.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(snap.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(snap.Max).Round(time.Microsecond))
	}
}

func fetch(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}
