// Server: the network front-end end to end — start a durable bohm-server,
// drive it with concurrent pipelined clients, read your writes across
// connections, scrape the batching metrics, then crash the process
// mid-stream and recover every acknowledged transfer from the log.
//
// The point of the front-end is cross-connection group batching: each
// client pipelines a handful of transactions, and the server coalesces
// all connections' submissions into shared engine batches, so sequencer
// barriers and fsyncs amortize across the whole client population
// instead of one connection's window.
//
//	go run ./examples/server
package main

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"

	"bohm"
	"bohm/client"
	"bohm/internal/core"
	"bohm/internal/server"
	"bohm/internal/workload"
)

const (
	accounts     = 32
	initialUnits = 1_000
	clients      = 4
	transfers    = 200 // per client
)

func acct(id uint64) bohm.Key { return bohm.Key{Table: 1, ID: id} }

// startServer recovers a durable engine from dir (empty dir = fresh
// start) and serves it on a loopback port.
func startServer(dir string, reg *bohm.Registry) (*core.Engine, *server.Server) {
	cfg := bohm.DefaultConfig()
	cfg.LogDir = dir
	cfg.Metrics = true
	cfg.DebugAddr = "127.0.0.1:0"
	eng, err := bohm.Recover(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(eng, reg, server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	return eng, srv
}

func dial(addr string) *client.Conn {
	c, err := client.Dial(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

// balances reads every account through the read-only fast path on a
// fresh connection, recency-bounded by tok.
func balances(reg *bohm.Registry, addr string, tok uint64) (sum uint64) {
	c := dial(addr)
	defer func() {
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	c.ObserveToken(tok)
	ps := make([]*client.Pending, accounts)
	for id := range ps {
		p, err := c.SubmitReadOnly(reg.MustCall(workload.ProcKVGet, workload.KVGetArgs(acct(uint64(id)))))
		if err != nil {
			log.Fatal(err)
		}
		ps[id] = p
	}
	for _, p := range ps {
		if err := p.Wait(); err != nil {
			log.Fatal(err)
		}
		sum += bohm.U64(p.Result())
	}
	return sum
}

func main() {
	dir, err := os.MkdirTemp("", "bohm-server-*")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Fatalf("cleanup %s: %v", dir, err)
		}
	}()

	reg := bohm.NewRegistry()
	workload.RegisterKV(reg)
	eng, srv := startServer(dir, reg)
	fmt.Printf("serving on %s, metrics on http://%s/metrics\n", srv.Addr(), eng.DebugListenAddr())

	// Seed the accounts over the wire: one pipelined batch of kv.put.
	seed := dial(srv.Addr())
	var puts []bohm.Txn
	for id := uint64(0); id < accounts; id++ {
		puts = append(puts, reg.MustCall(workload.ProcKVPut,
			workload.KVPutArgs(acct(id), bohm.NewValue(8, initialUnits))))
	}
	for _, err := range seed.ExecuteBatch(puts) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Concurrent clients, each its own connection, each pipelining
	// transfers; the server groups all of them into shared batches.
	var wg sync.WaitGroup
	aborted := make([]int, clients)
	for n := 0; n < clients; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := dial(srv.Addr())
			defer func() {
				if err := c.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			var batch []bohm.Txn
			for i := 0; i < transfers; i++ {
				from := uint64((n*transfers + i) % accounts)
				to := uint64((n*transfers + 3*i + 1) % accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				batch = append(batch, reg.MustCall(workload.ProcKVTransfer,
					workload.KVTransferArgs(acct(from), acct(to), 1)))
			}
			for _, err := range c.ExecuteBatch(batch) {
				switch {
				case err == nil:
				case errors.Is(err, bohm.ErrAbort): // insufficient funds: fine
					aborted[n]++
				default:
					log.Fatal(err)
				}
			}
		}(n)
	}
	wg.Wait()

	// Read your writes across connections: the seed connection has seen
	// every token it was acked with; a brand-new connection observing that
	// token must see a conserved total.
	if got := balances(reg, srv.Addr(), seed.Token()); got != accounts*initialUnits {
		log.Fatalf("total after transfers = %d, want %d", got, accounts*initialUnits)
	}
	fmt.Printf("%d clients x %d transfers done, total conserved at %d\n",
		clients, transfers, accounts*initialUnits)
	if err := seed.Close(); err != nil {
		log.Fatal(err)
	}

	// Scrape the server's own metrics from the engine's debug endpoint.
	resp, err := http.Get("http://" + eng.DebugListenAddr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Println("server metrics sample:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "bohm_server_txns_submitted_total") ||
			strings.HasPrefix(line, "bohm_server_connections") ||
			strings.HasPrefix(line, "bohm_server_batch_flush_write_") {
			fmt.Println("  " + line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// Crash: kill the engine out from under the server — no final sync, no
	// checkpoint seal — then recover from the log and serve again. Every
	// acknowledged transfer must still be there.
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	eng.Kill()
	fmt.Println("crashed; recovering from the log")

	eng, srv = startServer(dir, reg)
	if got := balances(reg, srv.Addr(), 0); got != accounts*initialUnits {
		log.Fatalf("total after recovery = %d, want %d", got, accounts*initialUnits)
	}
	fmt.Printf("recovered: total still %d across %d accounts\n", accounts*initialUnits, accounts)

	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	eng.Close()
}
