// Banking: a SmallBank-style application (§4.3 of the paper) written
// against the public API, runnable on any of the five engines. It opens
// accounts, runs a concurrent mix of deposits, withdrawals, transfers and
// balance checks, and verifies that money is conserved.
//
//	go run ./examples/banking            # BOHM
//	go run ./examples/banking -engine 2pl
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"bohm"
)

// Table numbers for the two account tables.
const (
	savings  uint32 = 1
	checking uint32 = 2
)

const (
	customers      = 1000
	initialBalance = 10_000
)

func savKey(c uint64) bohm.Key   { return bohm.Key{Table: savings, ID: c} }
func checkKey(c uint64) bohm.Key { return bohm.Key{Table: checking, ID: c} }

// errInsufficient aborts withdrawals that would overdraw an account; the
// engine rolls the transaction back and reports the error to us.
var errInsufficient = errors.New("banking: insufficient funds")

// deposit adds amount to a customer's checking account.
func deposit(c uint64, amount int64) bohm.Txn {
	k := checkKey(c)
	return &bohm.Proc{
		Reads:  []bohm.Key{k},
		Writes: []bohm.Key{k},
		Body: func(ctx bohm.Ctx) error {
			v, err := ctx.Read(k)
			if err != nil {
				return err
			}
			return ctx.Write(k, bohm.NewValue(8, uint64(int64(bohm.U64(v))+amount)))
		},
	}
}

// withdraw removes amount from savings, aborting on insufficient funds.
func withdraw(c uint64, amount int64) bohm.Txn {
	k := savKey(c)
	return &bohm.Proc{
		Reads:  []bohm.Key{k},
		Writes: []bohm.Key{k},
		Body: func(ctx bohm.Ctx) error {
			v, err := ctx.Read(k)
			if err != nil {
				return err
			}
			balance := int64(bohm.U64(v)) - amount
			if balance < 0 {
				return errInsufficient
			}
			return ctx.Write(k, bohm.NewValue(8, uint64(balance)))
		},
	}
}

// transfer moves amount between two customers' checking accounts.
func transfer(from, to uint64, amount int64) bohm.Txn {
	kf, kt := checkKey(from), checkKey(to)
	return &bohm.Proc{
		Reads:  []bohm.Key{kf, kt},
		Writes: []bohm.Key{kf, kt},
		Body: func(ctx bohm.Ctx) error {
			vf, err := ctx.Read(kf)
			if err != nil {
				return err
			}
			vt, err := ctx.Read(kt)
			if err != nil {
				return err
			}
			balance := int64(bohm.U64(vf)) - amount
			if balance < 0 {
				return errInsufficient
			}
			if err := ctx.Write(kf, bohm.NewValue(8, uint64(balance))); err != nil {
				return err
			}
			return ctx.Write(kt, bohm.NewValue(8, uint64(int64(bohm.U64(vt))+amount)))
		},
	}
}

// balance reads both of a customer's balances.
func balance(c uint64, out *int64) bohm.Txn {
	return &bohm.Proc{
		Reads: []bohm.Key{savKey(c), checkKey(c)},
		Body: func(ctx bohm.Ctx) error {
			s, err := ctx.Read(savKey(c))
			if err != nil {
				return err
			}
			ch, err := ctx.Read(checkKey(c))
			if err != nil {
				return err
			}
			*out = int64(bohm.U64(s)) + int64(bohm.U64(ch))
			return nil
		},
	}
}

func newEngine(kind string) (bohm.Engine, error) {
	switch kind {
	case "bohm":
		return bohm.New(bohm.DefaultConfig())
	case "hekaton":
		return bohm.NewHekaton(bohm.DefaultHekatonConfig())
	case "si":
		return bohm.NewSnapshotIsolation(bohm.DefaultHekatonConfig())
	case "occ":
		return bohm.NewOCC(bohm.DefaultOCCConfig())
	case "2pl":
		return bohm.New2PL(bohm.DefaultTwoPLConfig())
	}
	return nil, fmt.Errorf("unknown engine %q", kind)
}

// op records one generated transaction's effect on the global ledger so
// conservation can be checked after the run: deposits add delta, committed
// withdrawals subtract it, transfers and balance checks are neutral.
type op struct {
	txn   bohm.Txn
	delta int64
}

func main() {
	kind := flag.String("engine", "bohm", "engine: bohm, hekaton, si, occ, 2pl")
	txns := flag.Int("txns", 20_000, "number of transactions")
	flag.Parse()

	eng, err := newEngine(*kind)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	for c := uint64(0); c < customers; c++ {
		if err := eng.Load(savKey(c), bohm.NewValue(8, initialBalance)); err != nil {
			log.Fatal(err)
		}
		if err := eng.Load(checkKey(c), bohm.NewValue(8, initialBalance)); err != nil {
			log.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(42))
	ops := make([]op, *txns)
	var lastBalance int64
	for i := range ops {
		c := uint64(rng.Intn(customers))
		switch rng.Intn(4) {
		case 0:
			amt := int64(1 + rng.Intn(100))
			ops[i] = op{deposit(c, amt), amt}
		case 1:
			amt := int64(1 + rng.Intn(100))
			ops[i] = op{withdraw(c, amt), -amt}
		case 2:
			to := uint64(rng.Intn(customers))
			for to == c {
				to = uint64(rng.Intn(customers))
			}
			ops[i] = op{transfer(c, to, int64(1+rng.Intn(100))), 0}
		default:
			ops[i] = op{balance(c, &lastBalance), 0}
		}
	}

	batch := make([]bohm.Txn, len(ops))
	for i := range ops {
		batch[i] = ops[i].txn
	}
	results := eng.ExecuteBatch(batch)

	committed, insufficient := 0, 0
	var ledgerDelta int64
	for i, err := range results {
		switch {
		case err == nil:
			committed++
			ledgerDelta += ops[i].delta
		case errors.Is(err, errInsufficient):
			insufficient++
		default:
			log.Fatalf("txn %d failed unexpectedly: %v", i, err)
		}
	}

	var total int64
	for c := uint64(0); c < customers; c++ {
		var b int64
		if res := eng.ExecuteBatch([]bohm.Txn{balance(c, &b)}); res[0] != nil {
			log.Fatal(res[0])
		}
		total += b
	}
	want := int64(customers*2*initialBalance) + ledgerDelta
	fmt.Printf("engine=%s committed=%d insufficient-funds aborts=%d\n", *kind, committed, insufficient)
	fmt.Printf("total balance = %d, expected %d — %s\n", total, want, verdict(total == want))

	s := eng.Stats()
	fmt.Printf("stats: committed=%d userAborts=%d ccAborts=%d tsFetches=%d\n",
		s.Committed, s.UserAborts, s.CCAborts, s.TimestampFetches)
}

func verdict(ok bool) string {
	if ok {
		return "conserved ✓"
	}
	return "VIOLATION ✗"
}
