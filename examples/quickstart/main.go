// Quickstart: create a BOHM engine, load a few records, run some
// serializable transactions, and inspect the engine's statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bohm"
)

func main() {
	cfg := bohm.DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 2
	eng, err := bohm.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Load ten records, each holding a uint64 counter.
	for i := uint64(0); i < 10; i++ {
		if err := eng.Load(bohm.Key{Table: 0, ID: i}, bohm.NewValue(8, 0)); err != nil {
			log.Fatal(err)
		}
	}

	// A transaction is a stored procedure with declared access sets. This
	// one transfers one unit from key a to key b.
	transfer := func(a, b uint64) bohm.Txn {
		ka, kb := bohm.Key{Table: 0, ID: a}, bohm.Key{Table: 0, ID: b}
		return &bohm.Proc{
			Reads:  []bohm.Key{ka, kb},
			Writes: []bohm.Key{ka, kb},
			Body: func(ctx bohm.Ctx) error {
				va, err := ctx.Read(ka)
				if err != nil {
					return err
				}
				vb, err := ctx.Read(kb)
				if err != nil {
					return err
				}
				if err := ctx.Write(ka, bohm.NewValue(8, bohm.U64(va)-1)); err != nil {
					return err
				}
				return ctx.Write(kb, bohm.NewValue(8, bohm.U64(vb)+1))
			},
		}
	}

	// Submit a batch; the serialization order is the submission order.
	var batch []bohm.Txn
	for i := 0; i < 1000; i++ {
		batch = append(batch, transfer(uint64(i%10), uint64((i+3)%10)))
	}
	for i, err := range eng.ExecuteBatch(batch) {
		if err != nil {
			log.Fatalf("txn %d aborted: %v", i, err)
		}
	}

	// Read the final counters back in a read-only transaction.
	sum := uint64(0)
	read := &bohm.Proc{
		Body: func(ctx bohm.Ctx) error {
			for i := uint64(0); i < 10; i++ {
				v, err := ctx.Read(bohm.Key{Table: 0, ID: i})
				if err != nil {
					return err
				}
				fmt.Printf("key %d = %d\n", i, int64(bohm.U64(v)))
				sum += bohm.U64(v)
			}
			return nil
		},
	}
	if res := eng.ExecuteBatch([]bohm.Txn{read}); res[0] != nil {
		log.Fatal(res[0])
	}
	fmt.Printf("sum   = %d (conserved)\n", int64(sum))

	s := eng.Stats()
	fmt.Printf("committed=%d versions=%d gc'd=%d batches=%d readRefHits=%d\n",
		s.Committed, s.VersionsCreated, s.VersionsCollected, s.Batches, s.ReadRefHits)
}
