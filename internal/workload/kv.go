package workload

import (
	"encoding/binary"
	"fmt"

	"bohm/internal/txn"
)

// A minimal general-purpose key/value procedure set for the network
// server and its examples: point put, point get (returning the value to
// a remote submitter via txn.Resulter), and a conserved-sum transfer.
// Like the YCSB procedures these are registered, so they are loggable
// and wire-transmissible for free.

// ProcKVPut is the registry id of the blind point-write; args are one
// encoded key (12 bytes) followed by the value bytes.
const ProcKVPut = "kv.put"

// ProcKVGet is the registry id of the point read; args are one encoded
// key. The read value is surfaced through Result for remote callers.
const ProcKVGet = "kv.get"

// ProcKVTransfer is the registry id of the two-account transfer; args
// are two encoded keys plus a u64 amount. It aborts (txn.ErrAbort) when
// the source balance is insufficient, so the total across accounts is
// conserved under any interleaving — the smoke-test invariant.
const ProcKVTransfer = "kv.transfer"

// RegisterKV registers the key/value procedures with reg.
func RegisterKV(reg *txn.Registry) {
	reg.Register(ProcKVPut, func(args []byte) (txn.Txn, error) {
		if len(args) < 12 {
			return nil, fmt.Errorf("workload: kv.put args too short (%d bytes)", len(args))
		}
		ks, err := DecodeKeys(args[:12])
		if err != nil {
			return nil, err
		}
		return &KVPutTxn{K: ks[0], V: args[12:]}, nil
	})
	reg.Register(ProcKVGet, func(args []byte) (txn.Txn, error) {
		ks, err := DecodeKeys(args)
		if err != nil {
			return nil, err
		}
		if len(ks) != 1 {
			return nil, fmt.Errorf("workload: kv.get wants 1 key, got %d", len(ks))
		}
		return &KVGetTxn{K: ks[0]}, nil
	})
	reg.Register(ProcKVTransfer, func(args []byte) (txn.Txn, error) {
		if len(args) != 32 {
			return nil, fmt.Errorf("workload: kv.transfer args must be 32 bytes, got %d", len(args))
		}
		ks, err := DecodeKeys(args[:24])
		if err != nil {
			return nil, err
		}
		amt := binary.LittleEndian.Uint64(args[24:])
		return &KVTransferTxn{From: ks[0], To: ks[1], Amount: amt}, nil
	})
}

// KVPutArgs builds kv.put arguments.
func KVPutArgs(k txn.Key, v []byte) []byte {
	return append(EncodeKeys([]txn.Key{k}), v...)
}

// KVGetArgs builds kv.get arguments.
func KVGetArgs(k txn.Key) []byte { return EncodeKeys([]txn.Key{k}) }

// KVTransferArgs builds kv.transfer arguments.
func KVTransferArgs(from, to txn.Key, amount uint64) []byte {
	b := EncodeKeys([]txn.Key{from, to})
	return binary.LittleEndian.AppendUint64(b, amount)
}

// KVPutTxn blindly writes V at K.
type KVPutTxn struct {
	K txn.Key
	V []byte
}

// ReadSet implements txn.Txn.
func (t *KVPutTxn) ReadSet() []txn.Key { return nil }

// WriteSet implements txn.Txn.
func (t *KVPutTxn) WriteSet() []txn.Key { return []txn.Key{t.K} }

// RangeSet implements txn.Txn.
func (t *KVPutTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *KVPutTxn) Run(ctx txn.Ctx) error { return ctx.Write(t.K, t.V) }

// KVGetTxn reads K and keeps a copy of the value for Result — engine
// read buffers are only valid during Run, so remote delivery needs the
// copy.
type KVGetTxn struct {
	K   txn.Key
	val []byte
}

// ReadSet implements txn.Txn.
func (t *KVGetTxn) ReadSet() []txn.Key { return []txn.Key{t.K} }

// WriteSet implements txn.Txn.
func (t *KVGetTxn) WriteSet() []txn.Key { return nil }

// RangeSet implements txn.Txn.
func (t *KVGetTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *KVGetTxn) Run(ctx txn.Ctx) error {
	v, err := ctx.Read(t.K)
	if err != nil {
		return err
	}
	t.val = append(t.val[:0], v...)
	return nil
}

// Result implements txn.Resulter.
func (t *KVGetTxn) Result() []byte { return t.val }

// KVTransferTxn moves Amount from From to To, aborting when the source
// balance (a little-endian u64) is insufficient.
type KVTransferTxn struct {
	From, To txn.Key
	Amount   uint64
}

// ReadSet implements txn.Txn.
func (t *KVTransferTxn) ReadSet() []txn.Key { return []txn.Key{t.From, t.To} }

// WriteSet implements txn.Txn.
func (t *KVTransferTxn) WriteSet() []txn.Key { return []txn.Key{t.From, t.To} }

// RangeSet implements txn.Txn.
func (t *KVTransferTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *KVTransferTxn) Run(ctx txn.Ctx) error {
	fv, err := ctx.Read(t.From)
	if err != nil {
		return err
	}
	tv, err := ctx.Read(t.To)
	if err != nil {
		return err
	}
	from, to := binary.LittleEndian.Uint64(fv), binary.LittleEndian.Uint64(tv)
	if from < t.Amount {
		return txn.ErrAbort
	}
	var fb, tb [8]byte
	binary.LittleEndian.PutUint64(fb[:], from-t.Amount)
	binary.LittleEndian.PutUint64(tb[:], to+t.Amount)
	if err := ctx.Write(t.From, fb[:]); err != nil {
		return err
	}
	return ctx.Write(t.To, tb[:])
}
