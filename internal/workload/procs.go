package workload

import (
	"encoding/binary"
	"fmt"

	"bohm/internal/txn"
)

// Registered-procedure forms of the YCSB transactions, for running the
// workloads against an engine with durability enabled: a command log
// records transactions as (procedure id, args), so the keys a transaction
// touches must round-trip through bytes.

// ProcRMW is the registry id of the YCSB read-modify-write transaction;
// its args are EncodeKeys of the keys to increment.
const ProcRMW = "ycsb.rmw"

// ProcPut is the registry id of the YCSB blind point-write transaction;
// its args are EncodeKeys of the keys to overwrite. The written value is
// a fixed record of the registered size (blind writes are deterministic
// by construction, so replay needs no value in the log).
const ProcPut = "ycsb.put"

// RegisterYCSB registers the YCSB procedures with reg. recordSize is the
// record size rebuilt transactions write, and must match the loaded table.
func RegisterYCSB(reg *txn.Registry, recordSize int) {
	reg.Register(ProcRMW, func(args []byte) (txn.Txn, error) {
		ks, err := DecodeKeys(args)
		if err != nil {
			return nil, err
		}
		return &RMWTxn{Keys: ks, Size: recordSize}, nil
	})
	putVal := txn.NewValue(recordSize, 7)
	reg.Register(ProcPut, func(args []byte) (txn.Txn, error) {
		ks, err := DecodeKeys(args)
		if err != nil {
			return nil, err
		}
		return &PutTxn{Keys: ks, Val: putVal}, nil
	})
}

// EncodeKeys serializes keys for use as procedure arguments.
func EncodeKeys(ks []txn.Key) []byte {
	b := make([]byte, 0, 12*len(ks))
	for _, k := range ks {
		b = binary.LittleEndian.AppendUint32(b, k.Table)
		b = binary.LittleEndian.AppendUint64(b, k.ID)
	}
	return b
}

// EncodeRanges serializes key ranges for use as procedure arguments.
func EncodeRanges(rs []txn.KeyRange) []byte {
	b := make([]byte, 0, 20*len(rs))
	for _, r := range rs {
		b = binary.LittleEndian.AppendUint32(b, r.Table)
		b = binary.LittleEndian.AppendUint64(b, r.Lo)
		b = binary.LittleEndian.AppendUint64(b, r.Hi)
	}
	return b
}

// DecodeRanges reverses EncodeRanges.
func DecodeRanges(b []byte) ([]txn.KeyRange, error) {
	if len(b)%20 != 0 {
		return nil, fmt.Errorf("workload: range blob of %d bytes is not a multiple of 20", len(b))
	}
	rs := make([]txn.KeyRange, len(b)/20)
	for i := range rs {
		rs[i] = txn.KeyRange{
			Table: binary.LittleEndian.Uint32(b[20*i:]),
			Lo:    binary.LittleEndian.Uint64(b[20*i+4:]),
			Hi:    binary.LittleEndian.Uint64(b[20*i+12:]),
		}
	}
	return rs, nil
}

// DecodeKeys reverses EncodeKeys.
func DecodeKeys(b []byte) ([]txn.Key, error) {
	if len(b)%12 != 0 {
		return nil, fmt.Errorf("workload: key blob of %d bytes is not a multiple of 12", len(b))
	}
	ks := make([]txn.Key, len(b)/12)
	for i := range ks {
		ks[i] = txn.Key{
			Table: binary.LittleEndian.Uint32(b[12*i:]),
			ID:    binary.LittleEndian.Uint64(b[12*i+4:]),
		}
	}
	return ks, nil
}

// RMW10Call returns the source's next 10RMW transaction as a loggable
// registry call, suitable for engines with durability enabled. reg must
// have been set up with RegisterYCSB.
func (s *YCSBSource) RMW10Call(reg *txn.Registry) txn.Txn {
	return reg.MustCall(ProcRMW, EncodeKeys(s.keys(10)))
}
