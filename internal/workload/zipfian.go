// Package workload provides the paper's benchmark workloads: the zipfian
// key-distribution generator of Gray et al. ("Quickly generating
// billion-record synthetic databases", SIGMOD 1994), the YCSB table and
// transaction mixes of §4.2, and the SmallBank benchmark of §4.3.
package workload

import (
	"math"
	"math/rand"
)

// Zipfian draws keys in [0, N) with a zipfian distribution of skew theta,
// following Gray et al.'s algorithm (the same construction YCSB uses, and
// the one the paper cites for its contention knob, §4.2.1). theta = 0
// degenerates to the uniform distribution; the paper's high-contention
// setting is theta = 0.9.
//
// Item 0 is the most popular. A Zipfian is not safe for concurrent use;
// create one per worker stream.
type Zipfian struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	alpha, zetan, eta float64
	uniform           bool
}

// NewZipfian creates a generator over [0, n) with skew theta in [0, 1).
func NewZipfian(rng *rand.Rand, n uint64, theta float64) *Zipfian {
	if n == 0 {
		panic("workload: zipfian over empty domain")
	}
	z := &Zipfian{rng: rng, n: n, theta: theta}
	if theta == 0 {
		z.uniform = true
		return z
	}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// O(n); computed once per generator. For the repository's domain sizes
// (≤ a few million) this is inexpensive next to a benchmark run.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the domain size.
func (z *Zipfian) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipfian) Theta() float64 { return z.theta }

// Next draws the next key.
func (z *Zipfian) Next() uint64 {
	if z.uniform {
		return uint64(z.rng.Int63n(int64(z.n)))
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// NextDistinct draws k distinct keys into dst (which must have length k
// and small k relative to N), resampling on collision. Used to build
// transaction access sets whose elements the paper requires to be unique
// (§4.2.1).
func (z *Zipfian) NextDistinct(dst []uint64) {
	for i := range dst {
	draw:
		for {
			v := z.Next()
			for j := 0; j < i; j++ {
				if dst[j] == v {
					continue draw
				}
			}
			dst[i] = v
			break
		}
	}
}
