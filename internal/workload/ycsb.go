package workload

import (
	"math/rand"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// YCSBTable is the table number of the YCSB table.
const YCSBTable uint32 = 0

// YCSB describes the paper's YCSB configuration (§4.2): a single table of
// Records rows, each RecordSize bytes (1,000 in the paper), with
// transactions drawing keys from a zipfian distribution.
type YCSB struct {
	Records    int
	RecordSize int
}

// DefaultYCSB returns the paper's configuration scaled to the given number
// of records.
func DefaultYCSB(records int) YCSB { return YCSB{Records: records, RecordSize: 1000} }

// LoadInto populates e with the YCSB table. Every record starts with a
// zero counter in its first eight bytes.
func (y YCSB) LoadInto(e engine.Engine) error {
	v := txn.NewValue(y.RecordSize, 0)
	for i := 0; i < y.Records; i++ {
		if err := e.Load(txn.Key{Table: YCSBTable, ID: uint64(i)}, v); err != nil {
			return err
		}
	}
	return nil
}

// RMWTxn performs a read-modify-write increment on each of its keys: the
// paper's 10RMW transaction (§4.2.1) with len(Keys) == 10.
type RMWTxn struct {
	Keys []txn.Key
	// Size is the record size; the value written is a full record of this
	// size, mirroring the paper's full-record writes.
	Size int
	// scratch backs the staged values — one Size-byte region per key, so
	// every written key's buffer stays live until the engine installs it —
	// allocated on first Run and reused by every later execution of this
	// instance. Safe because engines either copy values out at install
	// (BOHM) or never re-execute a committed instance (the harness feeds
	// baselines fresh instances per call); see the Ctx.Write contract.
	scratch []byte
}

// ReadSet implements txn.Txn.
func (t *RMWTxn) ReadSet() []txn.Key { return t.Keys }

// WriteSet implements txn.Txn.
func (t *RMWTxn) WriteSet() []txn.Key { return t.Keys }

// RangeSet implements txn.Txn: no scans.
func (t *RMWTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *RMWTxn) Run(ctx txn.Ctx) error {
	if len(t.scratch) < len(t.Keys)*t.Size {
		t.scratch = make([]byte, len(t.Keys)*t.Size)
	}
	for i, k := range t.Keys {
		v, err := ctx.Read(k)
		if err != nil {
			return err
		}
		nv := t.scratch[i*t.Size : (i+1)*t.Size : (i+1)*t.Size]
		n := copy(nv, v)
		clear(nv[n:]) // short records pad with zeros, as a fresh buffer would
		txn.PutU64(nv, txn.U64(nv)+1)
		if err := ctx.Write(k, nv); err != nil {
			return err
		}
	}
	return nil
}

// MixedTxn performs read-modify-writes on RMWKeys and plain reads on
// ReadKeys: the paper's 2RMW-8R transaction (§4.2.2) with 2 and 8 keys
// respectively. Sum publishes the read values so the reads cannot be
// optimized away.
type MixedTxn struct {
	RMWKeys  []txn.Key
	ReadKeys []txn.Key
	Size     int
	Sum      uint64
	// scratch backs the staged RMW values, one region per key; same
	// lifetime contract as RMWTxn.scratch.
	scratch []byte
}

// ReadSet implements txn.Txn: both the RMW keys and the read-only keys.
func (t *MixedTxn) ReadSet() []txn.Key {
	ks := make([]txn.Key, 0, len(t.RMWKeys)+len(t.ReadKeys))
	ks = append(ks, t.RMWKeys...)
	ks = append(ks, t.ReadKeys...)
	return ks
}

// WriteSet implements txn.Txn.
func (t *MixedTxn) WriteSet() []txn.Key { return t.RMWKeys }

// RangeSet implements txn.Txn: no scans.
func (t *MixedTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *MixedTxn) Run(ctx txn.Ctx) error {
	sum := uint64(0)
	for _, k := range t.ReadKeys {
		v, err := ctx.Read(k)
		if err != nil {
			return err
		}
		sum += txn.U64(v)
	}
	if len(t.scratch) < len(t.RMWKeys)*t.Size {
		t.scratch = make([]byte, len(t.RMWKeys)*t.Size)
	}
	for i, k := range t.RMWKeys {
		v, err := ctx.Read(k)
		if err != nil {
			return err
		}
		nv := t.scratch[i*t.Size : (i+1)*t.Size : (i+1)*t.Size]
		n := copy(nv, v)
		clear(nv[n:])
		txn.PutU64(nv, txn.U64(nv)+1)
		if err := ctx.Write(k, nv); err != nil {
			return err
		}
	}
	t.Sum = sum
	return nil
}

// ScanTxn is the paper's long read-only transaction (§4.2.3): it reads
// Count records chosen uniformly at random and sums their counters.
type ScanTxn struct {
	Keys []txn.Key
	Sum  uint64
}

// ReadSet implements txn.Txn.
func (t *ScanTxn) ReadSet() []txn.Key { return t.Keys }

// WriteSet implements txn.Txn: read-only.
func (t *ScanTxn) WriteSet() []txn.Key { return nil }

// RangeSet implements txn.Txn: point reads only (the "scan" is the
// paper's uniform multi-point read, not a key-range scan).
func (t *ScanTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *ScanTxn) Run(ctx txn.Ctx) error {
	sum := uint64(0)
	for _, k := range t.Keys {
		v, err := ctx.Read(k)
		if err != nil {
			return err
		}
		sum += txn.U64(v)
	}
	t.Sum = sum
	return nil
}

// PutTxn blindly overwrites each of its keys with Val: the minimal
// write-only transaction, used by the point-write allocation benchmarks.
// Val is shared across executions and must not be mutated.
type PutTxn struct {
	Keys []txn.Key
	Val  []byte
}

// ReadSet implements txn.Txn: blind writes read nothing.
func (t *PutTxn) ReadSet() []txn.Key { return nil }

// WriteSet implements txn.Txn.
func (t *PutTxn) WriteSet() []txn.Key { return t.Keys }

// RangeSet implements txn.Txn: no scans.
func (t *PutTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *PutTxn) Run(ctx txn.Ctx) error {
	for _, k := range t.Keys {
		if err := ctx.Write(k, t.Val); err != nil {
			return err
		}
	}
	return nil
}

// YCSBSource generates YCSB transactions for one worker stream. Not safe
// for concurrent use; create one per stream.
type YCSBSource struct {
	y   YCSB
	zip *Zipfian
	rng *rand.Rand
	ids []uint64

	// insSeed/insNext place this stream's YCSB-E inserts in an id block
	// above the loaded table; see InsertE.
	insSeed uint64
	insNext uint64
}

// NewSource creates a transaction source drawing keys zipfian(theta) over
// the table.
func (y YCSB) NewSource(seed int64, theta float64) *YCSBSource {
	rng := rand.New(rand.NewSource(seed))
	return &YCSBSource{
		y:       y,
		zip:     NewZipfian(rng, uint64(y.Records), theta),
		rng:     rng,
		ids:     make([]uint64, 16),
		insSeed: uint64(seed),
	}
}

func (s *YCSBSource) keys(n int) []txn.Key {
	s.zip.NextDistinct(s.ids[:n])
	ks := make([]txn.Key, n)
	for i, id := range s.ids[:n] {
		ks[i] = txn.Key{Table: YCSBTable, ID: id}
	}
	return ks
}

// RMW10 returns a fresh 10RMW transaction.
func (s *YCSBSource) RMW10() txn.Txn {
	return &RMWTxn{Keys: s.keys(10), Size: s.y.RecordSize}
}

// RMW1 returns a single-key read-modify-write: the YCSB-A/B update
// operation.
func (s *YCSBSource) RMW1() txn.Txn {
	return &RMWTxn{Keys: s.keys(1), Size: s.y.RecordSize}
}

// PointRead returns a single-key read-only transaction drawing its key
// from the zipfian distribution: the YCSB-B/C read operation. Its empty
// write-set makes it eligible for BOHM's snapshot fast path.
func (s *YCSBSource) PointRead() txn.Txn {
	return &ScanTxn{Keys: s.keys(1)}
}

// RMW2Read8 returns a fresh 2RMW-8R transaction.
func (s *YCSBSource) RMW2Read8() txn.Txn {
	ks := s.keys(10)
	return &MixedTxn{RMWKeys: ks[:2], ReadKeys: ks[2:], Size: s.y.RecordSize}
}

// ReadOnly returns a long read-only transaction over count uniformly
// chosen records (duplicates permitted, as in a scan with repeats the
// paper's 10,000-record read-only transactions allow).
func (s *YCSBSource) ReadOnly(count int) txn.Txn {
	ks := make([]txn.Key, count)
	for i := range ks {
		ks[i] = txn.Key{Table: YCSBTable, ID: uint64(s.rng.Int63n(int64(s.y.Records)))}
	}
	return &ScanTxn{Keys: ks}
}
