package workload

import (
	"errors"
	"fmt"
	"testing"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// recordingCtx implements txn.Ctx over a plain map and records every key
// the body touches, so tests can verify declared access sets cover actual
// accesses.
type recordingCtx struct {
	data   map[txn.Key][]byte
	reads  map[txn.Key]bool
	writes map[txn.Key]bool
	scans  []txn.KeyRange
}

func newRecordingCtx() *recordingCtx {
	return &recordingCtx{
		data:   map[txn.Key][]byte{},
		reads:  map[txn.Key]bool{},
		writes: map[txn.Key]bool{},
	}
}

func (c *recordingCtx) Read(k txn.Key) ([]byte, error) {
	c.reads[k] = true
	v, ok := c.data[k]
	if !ok {
		return nil, txn.ErrNotFound
	}
	return v, nil
}

func (c *recordingCtx) Write(k txn.Key, v []byte) error {
	c.writes[k] = true
	c.data[k] = v
	return nil
}

func (c *recordingCtx) Delete(k txn.Key) error {
	c.writes[k] = true
	delete(c.data, k)
	return nil
}

func (c *recordingCtx) ReadRange(r txn.KeyRange, fn func(k txn.Key, v []byte) error) error {
	c.scans = append(c.scans, r)
	var ks []txn.Key
	for k := range c.data {
		if r.Contains(k) {
			ks = append(ks, k)
		}
	}
	txn.SortKeys(ks)
	for _, k := range ks {
		if err := fn(k, c.data[k]); err != nil {
			return err
		}
	}
	return nil
}

// checkAccessSets runs t against a recording context pre-populated so all
// reads succeed, then verifies accessed ⊆ declared for both sets.
func checkAccessSets(t *testing.T, tx txn.Txn) {
	t.Helper()
	c := newRecordingCtx()
	for _, k := range tx.ReadSet() {
		c.data[k] = txn.NewValue(8, 100)
	}
	for _, k := range tx.WriteSet() {
		if _, ok := c.data[k]; !ok {
			c.data[k] = txn.NewValue(8, 100)
		}
	}
	if err := tx.Run(c); err != nil {
		t.Fatalf("%T run: %v", tx, err)
	}
	declaredR := map[txn.Key]bool{}
	for _, k := range tx.ReadSet() {
		declaredR[k] = true
	}
	declaredW := map[txn.Key]bool{}
	for _, k := range tx.WriteSet() {
		declaredW[k] = true
	}
	for k := range c.reads {
		if !declaredR[k] {
			t.Errorf("%T read undeclared key %+v", tx, k)
		}
	}
	for k := range c.writes {
		if !declaredW[k] {
			t.Errorf("%T wrote undeclared key %+v", tx, k)
		}
	}
}

func TestYCSBShapes(t *testing.T) {
	y := YCSB{Records: 1000, RecordSize: 100}
	src := y.NewSource(1, 0.9)

	rmw := src.RMW10()
	if len(rmw.ReadSet()) != 10 || len(rmw.WriteSet()) != 10 {
		t.Errorf("RMW10 sets: %d reads, %d writes", len(rmw.ReadSet()), len(rmw.WriteSet()))
	}
	checkAccessSets(t, rmw)

	mixed := src.RMW2Read8()
	if len(mixed.ReadSet()) != 10 || len(mixed.WriteSet()) != 2 {
		t.Errorf("2RMW-8R sets: %d reads, %d writes", len(mixed.ReadSet()), len(mixed.WriteSet()))
	}
	checkAccessSets(t, mixed)

	ro := src.ReadOnly(500)
	if len(ro.ReadSet()) != 500 || len(ro.WriteSet()) != 0 {
		t.Errorf("ReadOnly sets: %d reads, %d writes", len(ro.ReadSet()), len(ro.WriteSet()))
	}
	checkAccessSets(t, ro)
}

func TestYCSBKeysDistinctWithinTxn(t *testing.T) {
	y := YCSB{Records: 20, RecordSize: 8} // tiny domain stresses resampling
	src := y.NewSource(3, 0.99)
	for trial := 0; trial < 100; trial++ {
		tx := src.RMW10()
		seen := map[txn.Key]bool{}
		for _, k := range tx.WriteSet() {
			if seen[k] {
				t.Fatalf("duplicate key %+v in write set", k)
			}
			seen[k] = true
		}
	}
}

func TestRMWTxnIncrements(t *testing.T) {
	c := newRecordingCtx()
	k := txn.Key{Table: YCSBTable, ID: 5}
	c.data[k] = txn.NewValue(100, 41)
	tx := &RMWTxn{Keys: []txn.Key{k}, Size: 100}
	if err := tx.Run(c); err != nil {
		t.Fatal(err)
	}
	if got := txn.U64(c.data[k]); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if len(c.data[k]) != 100 {
		t.Fatalf("record size = %d, want 100 (full-record write)", len(c.data[k]))
	}
}

func TestMixedTxnSums(t *testing.T) {
	c := newRecordingCtx()
	var rmwKeys, readKeys []txn.Key
	for i := uint64(0); i < 2; i++ {
		k := txn.Key{Table: YCSBTable, ID: i}
		rmwKeys = append(rmwKeys, k)
		c.data[k] = txn.NewValue(16, i+1)
	}
	for i := uint64(10); i < 18; i++ {
		k := txn.Key{Table: YCSBTable, ID: i}
		readKeys = append(readKeys, k)
		c.data[k] = txn.NewValue(16, i)
	}
	tx := &MixedTxn{RMWKeys: rmwKeys, ReadKeys: readKeys, Size: 16}
	if err := tx.Run(c); err != nil {
		t.Fatal(err)
	}
	if tx.Sum != 10+11+12+13+14+15+16+17 {
		t.Fatalf("Sum = %d", tx.Sum)
	}
	for i := uint64(0); i < 2; i++ {
		if got := txn.U64(c.data[rmwKeys[i]]); got != i+2 {
			t.Errorf("rmw key %d = %d, want %d", i, got, i+2)
		}
	}
}

func TestScanTxnPropagatesMissing(t *testing.T) {
	c := newRecordingCtx()
	tx := &ScanTxn{Keys: []txn.Key{{Table: YCSBTable, ID: 404}}}
	if err := tx.Run(c); !errors.Is(err, txn.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSmallBankAccessSets(t *testing.T) {
	sb := SmallBank{Customers: 10}
	txns := []txn.Txn{
		&BalanceTxn{SB: sb, Customer: 1},
		&DepositTxn{SB: sb, Customer: 2, Amount: 10},
		&TransactSavingsTxn{SB: sb, Customer: 3, Amount: 10},
		&AmalgamateTxn{SB: sb, From: 4, To: 5},
		&WriteCheckTxn{SB: sb, Customer: 6, Amount: 10},
	}
	for _, tx := range txns {
		t.Run(fmt.Sprintf("%T", tx), func(t *testing.T) {
			checkAccessSets(t, tx)
		})
	}
}

func TestSmallBankProcedureSemantics(t *testing.T) {
	sb := SmallBank{Customers: 10}
	c := newRecordingCtx()
	// Manually seed two customers.
	for _, id := range []uint64{1, 2} {
		c.data[custKey(id)] = txn.NewValue(8, id)
		c.data[savKey(id)] = txn.NewValue(8, 100)
		c.data[checkKey(id)] = txn.NewValue(8, 50)
	}

	bal := &BalanceTxn{SB: sb, Customer: 1}
	if err := bal.Run(c); err != nil {
		t.Fatal(err)
	}
	if bal.Total != 150 {
		t.Fatalf("Balance = %d, want 150", bal.Total)
	}

	if err := (&DepositTxn{SB: sb, Customer: 1, Amount: 25}).Run(c); err != nil {
		t.Fatal(err)
	}
	if got := txn.U64(c.data[checkKey(1)]); got != 75 {
		t.Fatalf("checking after deposit = %d, want 75", got)
	}

	if err := (&TransactSavingsTxn{SB: sb, Customer: 1, Amount: -30}).Run(c); err != nil {
		t.Fatal(err)
	}
	if got := txn.U64(c.data[savKey(1)]); got != 70 {
		t.Fatalf("savings after withdrawal = %d, want 70", got)
	}

	// Overdraft aborts.
	err := (&TransactSavingsTxn{SB: sb, Customer: 1, Amount: -1000}).Run(c)
	if !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overdraft = %v, want ErrInsufficientFunds", err)
	}

	// Amalgamate drains customer 1 into customer 2's checking.
	if err := (&AmalgamateTxn{SB: sb, From: 1, To: 2}).Run(c); err != nil {
		t.Fatal(err)
	}
	if txn.U64(c.data[savKey(1)]) != 0 || txn.U64(c.data[checkKey(1)]) != 0 {
		t.Fatal("amalgamate left funds behind")
	}
	if got := txn.U64(c.data[checkKey(2)]); got != 50+70+75 {
		t.Fatalf("destination checking = %d, want %d", got, 50+70+75)
	}

	// WriteCheck with sufficient funds: plain deduction.
	if err := (&WriteCheckTxn{SB: sb, Customer: 2, Amount: 45}).Run(c); err != nil {
		t.Fatal(err)
	}
	if got := txn.U64(c.data[checkKey(2)]); got != 50+70+75-45 {
		t.Fatalf("checking after WriteCheck = %d", got)
	}

	// WriteCheck over the total balance: $1 penalty.
	c.data[savKey(2)] = txn.NewValue(8, 0)
	c.data[checkKey(2)] = txn.NewValue(8, 10)
	if err := (&WriteCheckTxn{SB: sb, Customer: 2, Amount: 20}).Run(c); err != nil {
		t.Fatal(err)
	}
	if got := int64(txn.U64(c.data[checkKey(2)])); got != 10-21 {
		t.Fatalf("overdraft checking = %d, want %d", got, 10-21)
	}
}

func TestSmallBankMixShape(t *testing.T) {
	sb := SmallBank{Customers: 100}
	src := sb.NewSource(1)
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[fmt.Sprintf("%T", src.Next())]++
	}
	if len(counts) != 5 {
		t.Fatalf("mix has %d transaction types, want 5: %v", len(counts), counts)
	}
	for typ, c := range counts {
		// Uniform mix: 20% each, allow wide slack.
		if c < n/10 || c > 3*n/10 {
			t.Errorf("%s: %d of %d draws", typ, c, n)
		}
	}
}

func TestSmallBankDegenerateCustomers(t *testing.T) {
	sb := SmallBank{Customers: 1}
	src := sb.NewSource(2)
	for i := 0; i < 200; i++ {
		tx := src.Next()
		if am, ok := tx.(*AmalgamateTxn); ok {
			t.Fatalf("amalgamate generated with one customer: %+v", am)
		}
	}
}

func TestSmallBankLoadInto(t *testing.T) {
	sb := SmallBank{Customers: 5}
	fake := &fakeEngine{data: map[txn.Key][]byte{}}
	if err := sb.LoadInto(fake); err != nil {
		t.Fatal(err)
	}
	if len(fake.data) != 15 {
		t.Fatalf("loaded %d rows, want 15", len(fake.data))
	}
	if txn.U64(fake.data[savKey(3)]) != InitialBalance {
		t.Fatal("savings not initialized")
	}
}

func TestYCSBLoadInto(t *testing.T) {
	y := YCSB{Records: 7, RecordSize: 64}
	fake := &fakeEngine{data: map[txn.Key][]byte{}}
	if err := y.LoadInto(fake); err != nil {
		t.Fatal(err)
	}
	if len(fake.data) != 7 {
		t.Fatalf("loaded %d rows, want 7", len(fake.data))
	}
	if len(fake.data[txn.Key{Table: YCSBTable, ID: 0}]) != 64 {
		t.Fatal("record size wrong")
	}
}

// fakeEngine implements just enough of engine.Engine for load tests.
type fakeEngine struct{ data map[txn.Key][]byte }

func (f *fakeEngine) Load(k txn.Key, v []byte) error {
	f.data[k] = append([]byte(nil), v...)
	return nil
}
func (f *fakeEngine) ExecuteBatch(ts []txn.Txn) []error { return make([]error, len(ts)) }
func (f *fakeEngine) Stats() engine.Stats               { return engine.Stats{} }
func (f *fakeEngine) Close()                            {}

var _ engine.Engine = (*fakeEngine)(nil)

// TestChurnRotateAvoidsDeadResidues pins the rotation stride's coverage:
// whatever the stream seed, Rotate must only cycle ids whose residue
// class survives the bench's kill phase — a stride sharing a factor with
// 100 could strand a stream on dead residues and resurrect killed keys.
func TestChurnRotateAvoidsDeadResidues(t *testing.T) {
	c := Churn{Records: 10_000, RecordSize: 8}
	for stream := int64(0); stream < 64; stream++ {
		src := c.NewSource(31+stream*7919, 0)
		for _, deadPct := range []int{50, 75, 90, 99} {
			for i := 0; i < 400; i++ {
				var id uint64
				switch x := src.Rotate(deadPct).(type) {
				case *DeleteTxn:
					id = x.K.ID
				case *InsertTxn:
					id = x.K.ID
				default:
					t.Fatalf("Rotate returned %T", x)
				}
				if int(id%100) < deadPct {
					t.Fatalf("stream %d deadPct %d: Rotate touched dead id %d", stream, deadPct, id)
				}
			}
		}
	}
}
