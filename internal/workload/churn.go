package workload

import (
	"fmt"
	"math/rand"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// Churn is the insert+delete+scan mix (YCSB-style) that exercises the
// index lifecycle: queue-, session- and TTL-shaped tables delete as fast
// as they insert, so an insert-only index degrades without bound. The
// workload keeps a table of Records rows under rotation — keys die and
// are reborn — while range scans sweep the id space; the scan cost on a
// churned table is exactly what directory reaping exists to bound.
type Churn struct {
	Records    int
	RecordSize int
}

// ChurnTable is the table number of the churn table.
const ChurnTable uint32 = 0

// LoadInto populates e with the churn table; every record starts with a
// counter of 1 so scans can sum something.
func (c Churn) LoadInto(e engine.Engine) error {
	v := txn.NewValue(c.RecordSize, 1)
	for i := 0; i < c.Records; i++ {
		if err := e.Load(txn.Key{Table: ChurnTable, ID: uint64(i)}, v); err != nil {
			return err
		}
	}
	return nil
}

// DeleteTxn deletes one key — the churn workload's kill operation.
type DeleteTxn struct {
	K txn.Key
}

// ReadSet implements txn.Txn.
func (t *DeleteTxn) ReadSet() []txn.Key { return nil }

// WriteSet implements txn.Txn.
func (t *DeleteTxn) WriteSet() []txn.Key { return []txn.Key{t.K} }

// RangeSet implements txn.Txn.
func (t *DeleteTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *DeleteTxn) Run(ctx txn.Ctx) error { return ctx.Delete(t.K) }

// ChurnSource generates churn transactions for one worker stream. Not
// safe for concurrent use; create one per stream.
type ChurnSource struct {
	c   Churn
	zip *Zipfian

	// rotation state: rotID cycles through this stream's residue class of
	// live ids; rotDel alternates delete / re-insert of the current id.
	rotID   uint64
	rotStep uint64
	rotDel  bool
}

// NewSource creates a churn source whose scan start keys draw
// zipfian(theta) over the table (theta 0 = uniform). Streams rotate
// disjoint residue classes of the id space (stride by seed) so concurrent
// streams rarely collide.
func (c Churn) NewSource(seed int64, theta float64) *ChurnSource {
	rng := rand.New(rand.NewSource(seed))
	// The rotation stride must reach every residue class mod 100 (Rotate
	// filters on id%100), so it is forced odd and away from multiples of
	// 5: gcd(stride, 100) == 1 regardless of seed.
	step := 1 + 2*(uint64(seed)%31)
	if step%5 == 0 {
		step += 2
	}
	return &ChurnSource{
		c:       c,
		zip:     NewZipfian(rng, uint64(c.Records), theta),
		rotID:   uint64(seed) % uint64(c.Records),
		rotStep: step,
		rotDel:  true,
	}
}

// Scan returns a read-only range scan of `length` ids starting at a
// zipfian-drawn id — on BOHM it rides the snapshot fast path and walks the
// partition directories live, the path reaping keeps proportional to the
// live keys, not to everything that ever existed.
func (s *ChurnSource) Scan(length int) txn.Txn {
	if length < 1 {
		length = 1
	}
	lo := s.zip.Next()
	if max := uint64(s.c.Records); lo+uint64(length) > max {
		if uint64(length) >= max {
			lo = 0
		} else {
			lo = max - uint64(length)
		}
	}
	return &RangeScanTxn{Range: txn.KeyRange{Table: ChurnTable, Lo: lo, Hi: lo + uint64(length)}}
}

// Rotate returns the next kill/rebirth step: it alternately deletes the
// stream's current rotation id and re-inserts it, then advances. Ids
// whose residue (id % 100) is below keepDeadPct are skipped — the bench's
// kill phase made those permanently dead, and rotation must not resurrect
// them.
func (s *ChurnSource) Rotate(keepDeadPct int) txn.Txn {
	if s.rotDel {
		// advance to the next permanently-live id before a new cycle
		for i := 0; i < 200; i++ {
			s.rotID = (s.rotID + s.rotStep) % uint64(s.c.Records)
			if int(s.rotID%100) >= keepDeadPct {
				break
			}
		}
	}
	k := txn.Key{Table: ChurnTable, ID: s.rotID}
	s.rotDel = !s.rotDel
	if !s.rotDel { // this step deletes; the next re-inserts
		return &DeleteTxn{K: k}
	}
	return &InsertTxn{K: k, Size: s.c.RecordSize}
}

// Registry ids of the loggable churn procedures.
const (
	ProcChurnDelete = "churn.delete"
	ProcChurnInsert = "churn.insert"
	ProcChurnScan   = "churn.scan"
)

// RegisterChurn registers the churn procedures with reg, so durable
// engines can log and replay churn workloads.
func RegisterChurn(reg *txn.Registry, recordSize int) {
	reg.Register(ProcChurnDelete, func(args []byte) (txn.Txn, error) {
		ks, err := DecodeKeys(args)
		if err != nil || len(ks) != 1 {
			return nil, fmt.Errorf("workload: churn delete args decode: %v", err)
		}
		return &DeleteTxn{K: ks[0]}, nil
	})
	reg.Register(ProcChurnInsert, func(args []byte) (txn.Txn, error) {
		ks, err := DecodeKeys(args)
		if err != nil || len(ks) != 1 {
			return nil, fmt.Errorf("workload: churn insert args decode: %v", err)
		}
		return &InsertTxn{K: ks[0], Size: recordSize}, nil
	})
	reg.Register(ProcChurnScan, func(args []byte) (txn.Txn, error) {
		rs, err := DecodeRanges(args)
		if err != nil || len(rs) != 1 {
			return nil, fmt.Errorf("workload: churn scan args decode: %v", err)
		}
		return &RangeScanTxn{Range: rs[0]}, nil
	})
}
