package workload

import (
	"errors"
	"math/rand"
	"time"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// SmallBank table numbers (§4.3): Customer maps a customer to their
// identifier; Savings and Checking hold <customer id, balance> rows.
const (
	SBCustomer uint32 = 1
	SBSavings  uint32 = 2
	SBChecking uint32 = 3
)

// ErrInsufficientFunds aborts a TransactSavings that would drive a savings
// balance negative.
var ErrInsufficientFunds = errors.New("smallbank: insufficient funds")

// SmallBank describes the paper's SmallBank configuration: Customers rows
// per table (8-byte balances), and an optional per-transaction busy spin —
// 50µs in the paper — that makes the tiny transactions "slightly less
// trivial in size".
type SmallBank struct {
	Customers int
	Spin      time.Duration
}

// InitialBalance is the balance every savings and checking account starts
// with. It is large enough that the standard mix virtually never hits
// ErrInsufficientFunds.
const InitialBalance = 1_000_000

// LoadInto populates e with the three SmallBank tables.
func (sb SmallBank) LoadInto(e engine.Engine) error {
	for i := 0; i < sb.Customers; i++ {
		id := uint64(i)
		if err := e.Load(txn.Key{Table: SBCustomer, ID: id}, txn.NewValue(8, id)); err != nil {
			return err
		}
		if err := e.Load(txn.Key{Table: SBSavings, ID: id}, txn.NewValue(8, InitialBalance)); err != nil {
			return err
		}
		if err := e.Load(txn.Key{Table: SBChecking, ID: id}, txn.NewValue(8, InitialBalance)); err != nil {
			return err
		}
	}
	return nil
}

// spin busy-waits for the configured duration, standing in for the paper's
// 50µs of transaction logic.
func (sb SmallBank) spin() {
	if sb.Spin <= 0 {
		return
	}
	deadline := time.Now().Add(sb.Spin)
	for time.Now().Before(deadline) {
	}
}

func custKey(c uint64) txn.Key  { return txn.Key{Table: SBCustomer, ID: c} }
func savKey(c uint64) txn.Key   { return txn.Key{Table: SBSavings, ID: c} }
func checkKey(c uint64) txn.Key { return txn.Key{Table: SBChecking, ID: c} }

// BalanceTxn is the read-only Balance transaction: it looks up the
// customer and reads both account balances.
type BalanceTxn struct {
	SB       SmallBank
	Customer uint64
	Total    int64
}

// ReadSet implements txn.Txn.
func (t *BalanceTxn) ReadSet() []txn.Key {
	return []txn.Key{custKey(t.Customer), savKey(t.Customer), checkKey(t.Customer)}
}

// WriteSet implements txn.Txn.
func (t *BalanceTxn) WriteSet() []txn.Key { return nil }

// RangeSet implements txn.Txn: SmallBank performs no scans.
func (t *BalanceTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *BalanceTxn) Run(ctx txn.Ctx) error {
	if _, err := ctx.Read(custKey(t.Customer)); err != nil {
		return err
	}
	s, err := ctx.Read(savKey(t.Customer))
	if err != nil {
		return err
	}
	c, err := ctx.Read(checkKey(t.Customer))
	if err != nil {
		return err
	}
	t.SB.spin()
	t.Total = int64(txn.U64(s)) + int64(txn.U64(c))
	return nil
}

// DepositTxn is Deposit(Checking): it adds Amount to the customer's
// checking balance.
type DepositTxn struct {
	SB       SmallBank
	Customer uint64
	Amount   int64
}

// ReadSet implements txn.Txn.
func (t *DepositTxn) ReadSet() []txn.Key {
	return []txn.Key{custKey(t.Customer), checkKey(t.Customer)}
}

// WriteSet implements txn.Txn.
func (t *DepositTxn) WriteSet() []txn.Key { return []txn.Key{checkKey(t.Customer)} }

// RangeSet implements txn.Txn: SmallBank performs no scans.
func (t *DepositTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *DepositTxn) Run(ctx txn.Ctx) error {
	if _, err := ctx.Read(custKey(t.Customer)); err != nil {
		return err
	}
	v, err := ctx.Read(checkKey(t.Customer))
	if err != nil {
		return err
	}
	t.SB.spin()
	return ctx.Write(checkKey(t.Customer), txn.NewValue(8, uint64(int64(txn.U64(v))+t.Amount)))
}

// TransactSavingsTxn makes a deposit into or withdrawal from the savings
// account, aborting on insufficient funds.
type TransactSavingsTxn struct {
	SB       SmallBank
	Customer uint64
	Amount   int64
}

// ReadSet implements txn.Txn.
func (t *TransactSavingsTxn) ReadSet() []txn.Key {
	return []txn.Key{custKey(t.Customer), savKey(t.Customer)}
}

// WriteSet implements txn.Txn.
func (t *TransactSavingsTxn) WriteSet() []txn.Key { return []txn.Key{savKey(t.Customer)} }

// RangeSet implements txn.Txn: SmallBank performs no scans.
func (t *TransactSavingsTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *TransactSavingsTxn) Run(ctx txn.Ctx) error {
	if _, err := ctx.Read(custKey(t.Customer)); err != nil {
		return err
	}
	v, err := ctx.Read(savKey(t.Customer))
	if err != nil {
		return err
	}
	t.SB.spin()
	balance := int64(txn.U64(v)) + t.Amount
	if balance < 0 {
		return ErrInsufficientFunds
	}
	return ctx.Write(savKey(t.Customer), txn.NewValue(8, uint64(balance)))
}

// AmalgamateTxn moves all funds of customer From into customer To's
// checking account.
type AmalgamateTxn struct {
	SB       SmallBank
	From, To uint64
}

// ReadSet implements txn.Txn.
func (t *AmalgamateTxn) ReadSet() []txn.Key {
	return []txn.Key{
		custKey(t.From), custKey(t.To),
		savKey(t.From), checkKey(t.From), checkKey(t.To),
	}
}

// WriteSet implements txn.Txn.
func (t *AmalgamateTxn) WriteSet() []txn.Key {
	return []txn.Key{savKey(t.From), checkKey(t.From), checkKey(t.To)}
}

// RangeSet implements txn.Txn: SmallBank performs no scans.
func (t *AmalgamateTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *AmalgamateTxn) Run(ctx txn.Ctx) error {
	if _, err := ctx.Read(custKey(t.From)); err != nil {
		return err
	}
	if _, err := ctx.Read(custKey(t.To)); err != nil {
		return err
	}
	s, err := ctx.Read(savKey(t.From))
	if err != nil {
		return err
	}
	c, err := ctx.Read(checkKey(t.From))
	if err != nil {
		return err
	}
	dst, err := ctx.Read(checkKey(t.To))
	if err != nil {
		return err
	}
	t.SB.spin()
	moved := int64(txn.U64(s)) + int64(txn.U64(c))
	if err := ctx.Write(savKey(t.From), txn.NewValue(8, 0)); err != nil {
		return err
	}
	if err := ctx.Write(checkKey(t.From), txn.NewValue(8, 0)); err != nil {
		return err
	}
	return ctx.Write(checkKey(t.To), txn.NewValue(8, uint64(int64(txn.U64(dst))+moved)))
}

// WriteCheckTxn writes a check against the customer's account: it reads
// both balances and deducts the amount from checking, with a $1 overdraft
// penalty when the total balance cannot cover the check.
type WriteCheckTxn struct {
	SB       SmallBank
	Customer uint64
	Amount   int64
	// Penalty reports whether the committed execution applied the $1
	// overdraft penalty (set on every run; after the engine reports the
	// transaction committed it reflects the committed execution).
	Penalty int64
}

// ReadSet implements txn.Txn.
func (t *WriteCheckTxn) ReadSet() []txn.Key {
	return []txn.Key{custKey(t.Customer), savKey(t.Customer), checkKey(t.Customer)}
}

// WriteSet implements txn.Txn.
func (t *WriteCheckTxn) WriteSet() []txn.Key { return []txn.Key{checkKey(t.Customer)} }

// RangeSet implements txn.Txn: SmallBank performs no scans.
func (t *WriteCheckTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *WriteCheckTxn) Run(ctx txn.Ctx) error {
	if _, err := ctx.Read(custKey(t.Customer)); err != nil {
		return err
	}
	s, err := ctx.Read(savKey(t.Customer))
	if err != nil {
		return err
	}
	c, err := ctx.Read(checkKey(t.Customer))
	if err != nil {
		return err
	}
	t.SB.spin()
	total := int64(txn.U64(s)) + int64(txn.U64(c))
	amount := t.Amount
	t.Penalty = 0
	if amount > total {
		amount++ // overdraft penalty
		t.Penalty = 1
	}
	return ctx.Write(checkKey(t.Customer), txn.NewValue(8, uint64(int64(txn.U64(c))-amount)))
}

// SBSource generates the uniform SmallBank transaction mix (20% each of
// the five procedures, hence 20% read-only, §4.3) for one worker stream.
// Not safe for concurrent use.
type SBSource struct {
	sb  SmallBank
	rng *rand.Rand
}

// NewSource creates a SmallBank transaction source.
func (sb SmallBank) NewSource(seed int64) *SBSource {
	return &SBSource{sb: sb, rng: rand.New(rand.NewSource(seed))}
}

// customer draws a uniformly random customer.
func (s *SBSource) customer() uint64 { return uint64(s.rng.Int63n(int64(s.sb.Customers))) }

// Next returns the next transaction of the mix.
func (s *SBSource) Next() txn.Txn {
	switch s.rng.Intn(5) {
	case 0:
		return &BalanceTxn{SB: s.sb, Customer: s.customer()}
	case 1:
		return &DepositTxn{SB: s.sb, Customer: s.customer(), Amount: int64(1 + s.rng.Intn(100))}
	case 2:
		amt := int64(1 + s.rng.Intn(100))
		if s.rng.Intn(2) == 0 {
			amt = -amt
		}
		return &TransactSavingsTxn{SB: s.sb, Customer: s.customer(), Amount: amt}
	case 3:
		if s.sb.Customers < 2 {
			// Amalgamate needs two distinct customers; degrade to a
			// deposit on degenerate configurations.
			return &DepositTxn{SB: s.sb, Customer: s.customer(), Amount: 1}
		}
		from := s.customer()
		to := s.customer()
		for to == from {
			to = s.customer()
		}
		return &AmalgamateTxn{SB: s.sb, From: from, To: to}
	default:
		return &WriteCheckTxn{SB: s.sb, Customer: s.customer(), Amount: int64(1 + s.rng.Intn(100))}
	}
}
