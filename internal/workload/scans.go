package workload

import (
	"fmt"

	"bohm/internal/txn"
)

// YCSB-E: the scan-heavy YCSB mix — short range scans over zipfian start
// keys, plus inserts of fresh records. This is the workload family the
// two-tier index exists for: every engine serves it serializably, and
// BOHM serves the scans from CC-time range annotations.

// RangeScanTxn scans one declared key range with Ctx.ReadRange, summing
// the counters of the rows it observes.
type RangeScanTxn struct {
	Range txn.KeyRange
	// Rows and Sum publish the scan's observations so the work cannot be
	// optimized away and tests can assert on it.
	Rows int
	Sum  uint64
}

// ReadSet implements txn.Txn: no point reads.
func (t *RangeScanTxn) ReadSet() []txn.Key { return nil }

// WriteSet implements txn.Txn: read-only.
func (t *RangeScanTxn) WriteSet() []txn.Key { return nil }

// RangeSet implements txn.Txn: the declared scan range.
func (t *RangeScanTxn) RangeSet() []txn.KeyRange { return []txn.KeyRange{t.Range} }

// Run implements txn.Txn.
func (t *RangeScanTxn) Run(ctx txn.Ctx) error {
	rows, sum := 0, uint64(0)
	err := ctx.ReadRange(t.Range, func(_ txn.Key, v []byte) error {
		rows++
		sum += txn.U64(v)
		return nil
	})
	if err != nil {
		return err
	}
	t.Rows = rows
	t.Sum = sum
	return nil
}

// InsertTxn inserts one fresh record (YCSB-E's 5% insert leg).
type InsertTxn struct {
	K    txn.Key
	Size int
}

// ReadSet implements txn.Txn.
func (t *InsertTxn) ReadSet() []txn.Key { return nil }

// WriteSet implements txn.Txn.
func (t *InsertTxn) WriteSet() []txn.Key { return []txn.Key{t.K} }

// RangeSet implements txn.Txn.
func (t *InsertTxn) RangeSet() []txn.KeyRange { return nil }

// Run implements txn.Txn.
func (t *InsertTxn) Run(ctx txn.Ctx) error {
	return ctx.Write(t.K, txn.NewValue(t.Size, 1))
}

// ScanE returns a YCSB-E style scan transaction: a zipfian start key and
// a uniform scan length in [1, maxLen].
func (s *YCSBSource) ScanE(maxLen int) txn.Txn {
	if maxLen < 1 {
		maxLen = 1
	}
	start := s.zip.Next()
	n := uint64(1 + s.rng.Intn(maxLen))
	return &RangeScanTxn{Range: txn.KeyRange{Table: YCSBTable, Lo: start, Hi: start + n}}
}

// InsertE returns a YCSB-E style insert of a fresh record. Inserted ids
// start above the loaded table and advance per source; sources seeded
// differently draw from offset id blocks so concurrent streams rarely
// collide (a collision is a benign overwrite).
func (s *YCSBSource) InsertE() txn.Txn {
	if s.insNext == 0 {
		s.insNext = uint64(s.y.Records) + (s.insSeed%1021)*(1<<32)
	}
	k := txn.Key{Table: YCSBTable, ID: s.insNext}
	s.insNext++
	return &InsertTxn{K: k, Size: s.y.RecordSize}
}

// ProcScanE and ProcInsertE are the registry ids of the loggable forms.
const (
	ProcScanE   = "ycsb.scan"
	ProcInsertE = "ycsb.insert"
)

// RegisterYCSBE registers the scan-mix procedures with reg.
func RegisterYCSBE(reg *txn.Registry, recordSize int) {
	reg.Register(ProcScanE, func(args []byte) (txn.Txn, error) {
		if len(args) != 20 {
			return nil, fmt.Errorf("workload: scan args of %d bytes, want 20", len(args))
		}
		rs, err := DecodeRanges(args)
		if err != nil {
			return nil, err
		}
		return &RangeScanTxn{Range: rs[0]}, nil
	})
	reg.Register(ProcInsertE, func(args []byte) (txn.Txn, error) {
		ks, err := DecodeKeys(args)
		if err != nil || len(ks) != 1 {
			return nil, fmt.Errorf("workload: insert args decode: %v", err)
		}
		return &InsertTxn{K: ks[0], Size: recordSize}, nil
	})
}
