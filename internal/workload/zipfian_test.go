package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfianBounds(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
		z := NewZipfian(rand.New(rand.NewSource(1)), 1000, theta)
		for i := 0; i < 20000; i++ {
			v := z.Next()
			if v >= 1000 {
				t.Fatalf("theta=%v: Next() = %d out of range", theta, v)
			}
		}
	}
}

func TestZipfianBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, thetaRaw uint8) bool {
		n := uint64(nRaw)%5000 + 1
		theta := float64(thetaRaw%100) / 100.0
		z := NewZipfian(rand.New(rand.NewSource(seed)), n, theta)
		for i := 0; i < 50; i++ {
			if z.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZipfianUniformWhenThetaZero(t *testing.T) {
	const n = 10
	const draws = 100000
	z := NewZipfian(rand.New(rand.NewSource(7)), n, 0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		// Expect draws/n = 10000 each; allow ±10%.
		if c < 9000 || c > 11000 {
			t.Errorf("uniform: key %d drawn %d times, want ≈10000", k, c)
		}
	}
}

func TestZipfianSkewIncreasesWithTheta(t *testing.T) {
	const n = 1000
	const draws = 50000
	freq0 := func(theta float64) float64 {
		z := NewZipfian(rand.New(rand.NewSource(3)), n, theta)
		hits := 0
		for i := 0; i < draws; i++ {
			if z.Next() == 0 {
				hits++
			}
		}
		return float64(hits) / draws
	}
	p0 := freq0(0)
	p6 := freq0(0.6)
	p9 := freq0(0.9)
	if !(p0 < p6 && p6 < p9) {
		t.Fatalf("P(key 0) not increasing with theta: %.4f, %.4f, %.4f", p0, p6, p9)
	}
	if p9 < 0.01 {
		t.Errorf("theta=0.9: hottest key probability %.4f, expected noticeable skew", p9)
	}
}

func TestZipfianMatchesTheory(t *testing.T) {
	// For theta=0.9 and n=100, P(key 0) = 1/zeta(100, 0.9).
	const n = 100
	const theta = 0.9
	const draws = 200000
	want := 1.0 / zeta(n, theta)
	z := NewZipfian(rand.New(rand.NewSource(11)), n, theta)
	hits := 0
	for i := 0; i < draws; i++ {
		if z.Next() == 0 {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-want) > 0.05*want+0.01 {
		t.Errorf("P(key 0) = %.4f, theory %.4f", got, want)
	}
}

func TestZeta(t *testing.T) {
	// zeta(3, 1) = 1 + 1/2 + 1/3.
	want := 1.0 + 0.5 + 1.0/3.0
	if got := zeta(3, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("zeta(3,1) = %v, want %v", got, want)
	}
	// theta=0 degenerates to n.
	if got := zeta(7, 0); math.Abs(got-7) > 1e-12 {
		t.Errorf("zeta(7,0) = %v, want 7", got)
	}
}

func TestNextDistinct(t *testing.T) {
	z := NewZipfian(rand.New(rand.NewSource(5)), 50, 0.9)
	dst := make([]uint64, 10)
	for trial := 0; trial < 200; trial++ {
		z.NextDistinct(dst)
		seen := map[uint64]bool{}
		for _, v := range dst {
			if v >= 50 {
				t.Fatalf("out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate key %d in %v", v, dst)
			}
			seen[v] = true
		}
	}
}

func TestZipfianDeterministicPerSeed(t *testing.T) {
	a := NewZipfian(rand.New(rand.NewSource(9)), 100, 0.9)
	b := NewZipfian(rand.New(rand.NewSource(9)), 100, 0.9)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestZipfianAccessors(t *testing.T) {
	z := NewZipfian(rand.New(rand.NewSource(1)), 42, 0.5)
	if z.N() != 42 || z.Theta() != 0.5 {
		t.Errorf("accessors: N=%d Theta=%v", z.N(), z.Theta())
	}
}

func TestZipfianPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty domain")
		}
	}()
	NewZipfian(rand.New(rand.NewSource(1)), 0, 0.5)
}
