package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(sub, "f.log")
	f, err := OS.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.Name() != name {
		t.Fatalf("Name = %q, want %q", f.Name(), name)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(name)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := OS.Truncate(name, 2); err != nil {
		t.Fatal(err)
	}
	ren := filepath.Join(sub, "g.log")
	if err := OS.Rename(name, ren); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.log" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Remove(ren); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS, Fault{Op: OpWrite, After: 2}) // third write fails once
	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ab")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("cd")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("third write err = %v, want EIO", err)
	}
	if _, err := f.Write([]byte("ef")); err != nil {
		t.Fatalf("fourth write should succeed (transient fault): %v", err)
	}
	if got := fsys.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	if got := fsys.OpCount(OpWrite); got != 4 {
		t.Fatalf("OpCount(write) = %d, want 4", got)
	}
}

func TestFaultPersistentAndPathMatch(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS, Fault{Op: OpSync, Path: "wal-", Count: -1, Err: syscall.ENOSPC})
	wal, err := fsys.OpenFile(filepath.Join(dir, "wal-001.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	other, err := fsys.OpenFile(filepath.Join(dir, "ckpt-001.ckpt"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	for i := 0; i < 3; i++ {
		if err := wal.Sync(); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("wal sync %d err = %v, want ENOSPC", i, err)
		}
	}
	if err := other.Sync(); err != nil {
		t.Fatalf("non-matching path must not fault: %v", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "seg")
	fsys := NewFaultFS(OS, Fault{Op: OpWrite, Torn: 3})
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write = %d, %v; want 3, EIO", n, err)
	}
	f.Close()
	b, _ := os.ReadFile(name)
	if string(b) != "abc" {
		t.Fatalf("on-disk after torn write = %q, want %q", b, "abc")
	}
}

func TestFaultDropUnsynced(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "seg")
	fsys := NewFaultFS(OS, Fault{Op: OpSync, After: 1, DropUnsynced: true})
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // first sync passes
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("second sync err = %v, want EIO", err)
	}
	f.Close()
	b, _ := os.ReadFile(name)
	if string(b) != "durable|" {
		t.Fatalf("on-disk after dropped sync = %q, want %q", b, "durable|")
	}
}

func TestFaultLatencyOnly(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS, Fault{Op: OpSync, Count: -1, Latency: 20 * time.Millisecond})
	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("latency-only fault must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= 20ms of injected latency", d)
	}
	if fsys.Injected() != 0 {
		t.Fatalf("latency-only firings must not count as injected failures")
	}
}

func TestFaultClearHeals(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS, Fault{Op: OpCreate, Count: -1})
	if _, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
		t.Fatal("create should fail under persistent fault")
	}
	fsys.Clear()
	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("create after Clear: %v", err)
	}
	f.Close()
}

func TestFaultDeterministicReplay(t *testing.T) {
	// The same schedule against the same operation sequence fails the same
	// operations — the property every seeded torture schedule relies on.
	run := func() []bool {
		dir := t.TempDir()
		fsys := NewFaultFS(OS, Fault{Op: OpWrite, After: 1, Count: 2})
		f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var outcomes []bool
		for i := 0; i < 5; i++ {
			_, err := f.Write([]byte{byte(i)})
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at op %d: %v vs %v", i, a, b)
		}
	}
	want := []bool{true, false, false, true, true}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("outcomes = %v, want %v", a, want)
		}
	}
}
