// Package vfs abstracts the handful of filesystem operations the log
// layer performs so storage faults can be injected deterministically in
// tests. OS is a thin passthrough to the real filesystem; FaultFS wraps
// any FS with a schedule-driven fault injector (see fault.go). Production
// code never pays for the indirection beyond an interface call.
package vfs

import (
	"io"
	"os"
)

// File is the slice of *os.File behaviour the log layer uses. Handles
// returned by an FS are not safe for concurrent use except that Sync may
// race Write (the interval group-commit fsyncs outside the writer lock).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's dirty pages to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
	// Truncate changes the file's size.
	Truncate(size int64) error
}

// FS is the filesystem surface underneath internal/wal. Every durable
// artifact (segments, checkpoints, directory entries) is created, synced,
// renamed and removed through exactly these calls.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// CreateTemp creates a temp file in dir with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate resizes the file at name without opening it here.
	Truncate(name string, size int64) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists the directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs the directory itself so just-created or just-renamed
	// entries survive a crash.
	SyncDir(dir string) error
}

// OS is the passthrough implementation backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
