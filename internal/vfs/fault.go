package vfs

import (
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op classifies filesystem operations for fault matching.
type Op int

const (
	// OpAny matches every operation kind.
	OpAny Op = iota
	// OpOpen is an open of an existing file (no O_CREATE).
	OpOpen
	// OpCreate is a file or directory creation (OpenFile with O_CREATE,
	// CreateTemp, MkdirAll).
	OpCreate
	// OpWrite is a File.Write.
	OpWrite
	// OpSync is a File.Sync.
	OpSync
	// OpClose is a File.Close.
	OpClose
	// OpRename is an FS.Rename (matched against the destination path).
	OpRename
	// OpRemove is an FS.Remove.
	OpRemove
	// OpRead is a File.Read or FS.ReadFile.
	OpRead
	// OpReadDir is an FS.ReadDir.
	OpReadDir
	// OpTruncate is an FS.Truncate.
	OpTruncate
	// OpSyncDir is an FS.SyncDir.
	OpSyncDir
	opCount
)

var opNames = [...]string{"any", "open", "create", "write", "sync", "close",
	"rename", "remove", "read", "readdir", "truncate", "syncdir"}

func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return "op?"
	}
	return opNames[o]
}

// Fault is one rule in a fault schedule. A rule watches operations that
// match its Op kind and Path substring; it lets the first After matches
// through untouched, then fires on the next Count matches (Count 0 means
// one, negative means forever — a persistent fault).
//
// A fired rule first sleeps Latency, then fails the operation with Err.
// A rule with no Err, no Torn and no DropUnsynced but a positive Latency
// is latency-only: it delays the operation and lets it proceed. A failing
// rule with a nil Err injects syscall.EIO.
type Fault struct {
	// Op is the operation kind to match; OpAny matches all.
	Op Op
	// Path, when non-empty, restricts the rule to operations whose path
	// contains it as a substring.
	Path string
	// After is how many matching operations succeed before the rule arms.
	After int
	// Count is how many operations fail once armed; 0 means one, negative
	// means every one from then on (a persistent fault).
	Count int
	// Err is the injected error; nil means syscall.EIO (unless the rule is
	// latency-only). syscall.ENOSPC models a full disk.
	Err error
	// Torn applies to OpWrite: the first Torn bytes reach the file before
	// the error is reported — a torn/short write.
	Torn int
	// DropUnsynced applies to OpSync on handles created through this FS:
	// bytes written since the last successful sync are discarded, modeling
	// a kernel that drops dirty pages after a writeback error.
	DropUnsynced bool
	// Latency is slept before the operation (or the failure) proceeds.
	Latency time.Duration
}

// latencyOnly reports whether the rule delays without failing.
func (f *Fault) latencyOnly() bool {
	return f.Err == nil && f.Torn == 0 && !f.DropUnsynced && f.Latency > 0
}

func (f *Fault) failure() error {
	if f.Err != nil {
		return f.Err
	}
	return syscall.EIO
}

type faultState struct {
	Fault
	seen  int // matching operations observed
	fired int // operations failed or delayed
}

// firing is the outcome of matching one operation against the schedule.
type firing struct {
	err   error
	torn  int
	drop  bool
	sleep time.Duration
}

// FaultFS wraps an inner FS and injects faults from a deterministic
// schedule. Matching is by arrival order of operations, so a fixed
// workload plus a fixed schedule always fails the same operation — the
// torture harness derives schedules from seeds and replays them exactly.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	faults   []*faultState
	ops      [opCount]uint64
	injected uint64
}

// NewFaultFS wraps inner (nil means the OS filesystem) with a schedule.
func NewFaultFS(inner FS, faults ...Fault) *FaultFS {
	if inner == nil {
		inner = OS
	}
	f := &FaultFS{inner: inner}
	for _, ft := range faults {
		f.AddFault(ft)
	}
	return f
}

// AddFault appends a rule to the schedule.
func (f *FaultFS) AddFault(ft Fault) {
	f.mu.Lock()
	f.faults = append(f.faults, &faultState{Fault: ft})
	f.mu.Unlock()
}

// Clear drops every rule — the disk "heals".
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.faults = nil
	f.mu.Unlock()
}

// Injected returns how many operations have been failed by the schedule.
func (f *FaultFS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// OpCount returns how many operations of kind op have been issued
// (including failed ones); OpAny returns the total.
func (f *FaultFS) OpCount(op Op) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if op == OpAny {
		var n uint64
		for _, c := range f.ops {
			n += c
		}
		return n
	}
	if op < 0 || op >= opCount {
		return 0
	}
	return f.ops[op]
}

// check matches one operation against the schedule and returns what to do
// with it. The first failing rule wins; latency accumulates as the max of
// all fired rules.
func (f *FaultFS) check(op Op, path string) firing {
	f.mu.Lock()
	f.ops[op]++
	var out firing
	for _, fs := range f.faults {
		if fs.Op != OpAny && fs.Op != op {
			continue
		}
		if fs.Path != "" && !strings.Contains(path, fs.Path) {
			continue
		}
		fs.seen++
		if fs.seen <= fs.After {
			continue
		}
		limit := fs.Count
		if limit == 0 {
			limit = 1
		}
		if limit > 0 && fs.fired >= limit {
			continue
		}
		fs.fired++
		if fs.Latency > out.sleep {
			out.sleep = fs.Latency
		}
		if fs.latencyOnly() {
			continue
		}
		if out.err == nil {
			out.err = fs.failure()
			out.torn = fs.Torn
			out.drop = fs.DropUnsynced
			f.injected++
		}
	}
	f.mu.Unlock()
	if out.sleep > 0 {
		time.Sleep(out.sleep)
	}
	return out
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&os.O_CREATE != 0 {
		op = OpCreate
	}
	if fi := f.check(op, name); fi.err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: fi.err}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name, fresh: op == OpCreate}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if fi := f.check(OpOpen, name); fi.err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: fi.err}
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if fi := f.check(OpCreate, dir+"/"+pattern); fi.err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: fi.err}
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: inner.Name(), fresh: true}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if fi := f.check(OpRead, name); fi.err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: fi.err}
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if fi := f.check(OpRename, newpath); fi.err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: fi.err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if fi := f.check(OpRemove, name); fi.err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: fi.err}
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if fi := f.check(OpTruncate, name); fi.err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: fi.err}
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if fi := f.check(OpCreate, path); fi.err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: fi.err}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if fi := f.check(OpReadDir, name); fi.err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: fi.err}
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if fi := f.check(OpSyncDir, dir); fi.err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: fi.err}
	}
	return f.inner.SyncDir(dir)
}

// faultFile wraps a handle so writes, syncs, reads and closes pass through
// the schedule. It tracks how many bytes were written and last synced
// through this handle; since the log layer only ever appends to files it
// created empty, that running count doubles as the file size, which is
// what DropUnsynced truncates back to.
type faultFile struct {
	fs    *FaultFS
	inner File
	name  string
	fresh bool // created empty through this FS; enables DropUnsynced

	mu      sync.Mutex
	written int64
	synced  int64
}

func (f *faultFile) Read(p []byte) (int, error) {
	if fi := f.fs.check(OpRead, f.name); fi.err != nil {
		return 0, &os.PathError{Op: "read", Path: f.name, Err: fi.err}
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	fi := f.fs.check(OpWrite, f.name)
	if fi.err != nil {
		n := 0
		if fi.torn > 0 {
			cut := fi.torn
			if cut > len(p) {
				cut = len(p)
			}
			n, _ = f.inner.Write(p[:cut])
		}
		f.mu.Lock()
		f.written += int64(n)
		f.mu.Unlock()
		return n, &os.PathError{Op: "write", Path: f.name, Err: fi.err}
	}
	n, err := f.inner.Write(p)
	f.mu.Lock()
	f.written += int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *faultFile) Sync() error {
	fi := f.fs.check(OpSync, f.name)
	if fi.err != nil {
		if fi.drop && f.fresh {
			// Model a kernel that reports the writeback error once and
			// drops the dirty pages: everything unsynced vanishes.
			f.mu.Lock()
			mark := f.synced
			f.written = mark
			f.mu.Unlock()
			_ = f.inner.Truncate(mark)
		}
		return &os.PathError{Op: "sync", Path: f.name, Err: fi.err}
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	f.mu.Lock()
	f.synced = f.written
	f.mu.Unlock()
	return nil
}

func (f *faultFile) Close() error {
	if fi := f.fs.check(OpClose, f.name); fi.err != nil {
		_ = f.inner.Close()
		return &os.PathError{Op: "close", Path: f.name, Err: fi.err}
	}
	return f.inner.Close()
}

func (f *faultFile) Name() string { return f.name }

func (f *faultFile) Truncate(size int64) error {
	if fi := f.fs.check(OpTruncate, f.name); fi.err != nil {
		return &os.PathError{Op: "truncate", Path: f.name, Err: fi.err}
	}
	if err := f.inner.Truncate(size); err != nil {
		return err
	}
	f.mu.Lock()
	if f.written > size {
		f.written = size
	}
	if f.synced > size {
		f.synced = size
	}
	f.mu.Unlock()
	return nil
}
