package storage

import (
	"sync"
	"sync/atomic"

	"bohm/internal/txn"
)

// Directory is the ordered tier of the two-tier index: an insert-only
// skiplist over txn.Key that records which keys exist, in (Table, ID)
// order. The hash Map remains the point-access path; the Directory serves
// range scans and next-key questions.
//
// Concurrency contract: writers serialize on an internal mutex (in BOHM a
// partition's directory has a single writer — the owning CC thread — so
// the mutex is uncontended; the baselines' shared directories take it per
// first-ever write of a key). Readers take no locks at all: node links are
// published with atomic stores in an order that keeps every reachable
// suffix consistent, so a concurrent Ascend sees a key iff its insert's
// bottom-level link landed before the reader walked past its position —
// exactly the "single writer, readers spin on nothing" discipline of the
// paper's hash index, transplanted to an ordered structure.
//
// The directory is insert-only, like the hash index: deleted records keep
// their directory entry and are filtered by version visibility (BOHM) or
// tombstone flags (single-version engines) at scan time.
type Directory struct {
	head *dirNode
	n    atomic.Int64

	// min and max fence the directory's key population: nil while empty,
	// then the smallest and largest key ever inserted. A range whose
	// window misses [min, max] provably matches nothing, so scanners can
	// skip the walk (and, in BOHM, skip a whole partition's annotation
	// step). Published before the key's links so that any reader who can
	// see a key also sees a fence admitting it.
	min, max atomic.Pointer[txn.Key]

	mu  sync.Mutex // serializes writers; guards rnd
	rnd uint64
}

// dirMaxLevel bounds the skiplist height: with a 1/4 level probability,
// 20 levels comfortably cover billions of keys.
const dirMaxLevel = 20

type dirNode struct {
	k    txn.Key
	next []atomic.Pointer[dirNode]
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		head: &dirNode{next: make([]atomic.Pointer[dirNode], dirMaxLevel)},
		rnd:  0x9e3779b97f4a7c15,
	}
}

// Len returns the number of keys inserted so far.
func (d *Directory) Len() int { return int(d.n.Load()) }

// randLevel draws a tower height with P(level > l) = 4^-l. Caller holds mu.
func (d *Directory) randLevel() int {
	x := d.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rnd = x
	lvl := 1
	for x&3 == 3 && lvl < dirMaxLevel {
		lvl++
		x >>= 2
	}
	return lvl
}

// Insert registers k, reporting whether it was absent. Inserting a present
// key is a no-op. Safe for concurrent use with readers and other writers.
func (d *Directory) Insert(k txn.Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()

	var preds [dirMaxLevel]*dirNode
	x := d.head
	for l := dirMaxLevel - 1; l >= 0; l-- {
		for {
			nxt := x.next[l].Load()
			if nxt == nil || !nxt.k.Less(k) {
				break
			}
			x = nxt
		}
		preds[l] = x
	}
	if nxt := preds[0].next[0].Load(); nxt != nil && nxt.k == k {
		return false
	}

	// Widen the fence before publishing the key: a reader that finds k in
	// the list must not be told by the fence that k cannot exist. max is
	// stored before min so readers that observe a non-nil min (their
	// emptiness check) always find a non-nil max too.
	if mx := d.max.Load(); mx == nil || mx.Less(k) {
		kc := k
		d.max.Store(&kc)
	}
	if mn := d.min.Load(); mn == nil || k.Less(*mn) {
		kc := k
		d.min.Store(&kc)
	}

	lvl := d.randLevel()
	nd := &dirNode{k: k, next: make([]atomic.Pointer[dirNode], lvl)}
	// Set the new node's outgoing links before publishing any incoming
	// link, then publish bottom-up: a reader that reaches nd at any level
	// always finds consistent links below it.
	for l := 0; l < lvl; l++ {
		nd.next[l].Store(preds[l].next[l].Load())
	}
	for l := 0; l < lvl; l++ {
		preds[l].next[l].Store(nd)
	}
	d.n.Add(1)
	return true
}

// seek returns the last node whose key orders strictly before k (the head
// sentinel when none does).
func (d *Directory) seek(k txn.Key) *dirNode {
	x := d.head
	for l := dirMaxLevel - 1; l >= 0; l-- {
		for {
			nxt := x.next[l].Load()
			if nxt == nil || !nxt.k.Less(k) {
				break
			}
			x = nxt
		}
	}
	return x
}

// Contains reports whether k has been inserted.
func (d *Directory) Contains(k txn.Key) bool {
	nxt := d.seek(k).next[0].Load()
	return nxt != nil && nxt.k == k
}

// AscendRange calls fn for every key in r in ascending order, stopping
// early if fn returns false. Safe for concurrent use with writers; keys
// fully inserted before the call are always visited.
func (d *Directory) AscendRange(r txn.KeyRange, fn func(k txn.Key) bool) {
	if r.Empty() {
		return
	}
	limit := r.LimitKey()
	for x := d.seek(r.FirstKey()).next[0].Load(); x != nil && x.k.Less(limit); x = x.next[0].Load() {
		if !fn(x.k) {
			return
		}
	}
}

// Bounds returns the smallest and largest key ever inserted. ok is false
// while the directory is empty.
func (d *Directory) Bounds() (min, max txn.Key, ok bool) {
	mn := d.min.Load()
	if mn == nil {
		return txn.Key{}, txn.Key{}, false
	}
	return *mn, *d.max.Load(), true
}

// ExcludesRange reports whether the directory provably holds no key in r:
// the directory is empty, or r's window [FirstKey, LimitKey) lies entirely
// outside the [min, max] key fence. A false result promises nothing — the
// range may still be empty — but a true result lets scanners skip the
// walk. Safe for concurrent use; a key fully inserted before the call is
// never excluded by its own range.
func (d *Directory) ExcludesRange(r txn.KeyRange) bool {
	if r.Empty() {
		return true
	}
	mn := d.min.Load()
	if mn == nil {
		return true
	}
	if !mn.Less(r.LimitKey()) { // min >= limit: whole population above r
		return true
	}
	return d.max.Load().Less(r.FirstKey()) // max < first: population below r
}

// Next returns the smallest key at or after k, for next-key questions.
// The second result is false when no such key exists.
func (d *Directory) Next(k txn.Key) (txn.Key, bool) {
	nxt := d.seek(k).next[0].Load()
	if nxt == nil {
		return txn.Key{}, false
	}
	return nxt.k, true
}
