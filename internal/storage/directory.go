package storage

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"bohm/internal/txn"
)

// Directory is the ordered tier of the two-tier index: a skiplist over
// txn.Key that records which keys exist, in (Table, ID) order. The hash
// Map remains the point-access path; the Directory serves range scans and
// next-key questions.
//
// Concurrency contract: writers serialize on an internal mutex (in BOHM a
// partition's directory has a single writer — the owning CC thread — so
// the mutex is uncontended; the baselines' shared directories take it per
// first-ever write of a key). Readers take no locks at all: node links are
// published with atomic stores in an order that keeps every reachable
// suffix consistent, so a concurrent Ascend sees a key iff its insert's
// bottom-level link landed before the reader walked past its position —
// exactly the "single writer, readers spin on nothing" discipline of the
// paper's hash index, transplanted to an ordered structure.
//
// The directory is no longer insert-only: Remove unlinks a key whose
// record has been proven dead (the engine's reaper does this under its
// epoch watermark). Removed nodes keep their outgoing links untouched, so
// a reader already standing on one keeps walking a frozen, order-correct
// path back into the live list; the only keys such a reader can miss are
// ones inserted after the unlink, which the caller's epoch argument makes
// invisible to it anyway. Each node carries a removed flag so resumable
// iterators (DirIter) can tell a live finger from a stale one.
type Directory struct {
	head *dirNode
	n    atomic.Int64

	// fences holds the per-table sharded key fences; see fenceSet. The
	// pointer is swapped wholesale when a table appears or rescales, and
	// per-slot bounds are widened in place before a key's links publish —
	// any reader who can see a key also sees a fence admitting it.
	fences atomic.Pointer[fenceSet]

	mu  sync.Mutex // serializes writers; guards rnd
	rnd uint64
}

// dirMaxLevel bounds the skiplist height: with a 1/4 level probability,
// 20 levels comfortably cover billions of keys.
const dirMaxLevel = 20

type dirNode struct {
	k txn.Key
	// removed flips to 1 (before the unlink) when the node leaves the
	// list; iterators refuse to resume from flagged fingers.
	removed atomic.Uint32
	next    []atomic.Pointer[dirNode]
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	d := &Directory{
		head: &dirNode{next: make([]atomic.Pointer[dirNode], dirMaxLevel)},
		rnd:  0x9e3779b97f4a7c15,
	}
	d.fences.Store(&fenceSet{})
	return d
}

// Len returns the number of keys currently present.
func (d *Directory) Len() int { return int(d.n.Load()) }

// randLevel draws a tower height with P(level > l) = 4^-l. Caller holds mu.
func (d *Directory) randLevel() int {
	x := d.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rnd = x
	lvl := 1
	for x&3 == 3 && lvl < dirMaxLevel {
		lvl++
		x >>= 2
	}
	return lvl
}

// Insert registers k, reporting whether it was absent. Inserting a present
// key is a no-op. Safe for concurrent use with readers and other writers.
func (d *Directory) Insert(k txn.Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()

	var preds [dirMaxLevel]*dirNode
	x := d.head
	for l := dirMaxLevel - 1; l >= 0; l-- {
		for {
			nxt := x.next[l].Load()
			if nxt == nil || !nxt.k.Less(k) {
				break
			}
			x = nxt
		}
		preds[l] = x
	}
	if nxt := preds[0].next[0].Load(); nxt != nil && nxt.k == k {
		return false
	}

	// Widen the fence before publishing the key: a reader that finds k in
	// the list must not be told by the fence that k cannot exist.
	d.widenFenceLocked(k)

	lvl := d.randLevel()
	nd := &dirNode{k: k, next: make([]atomic.Pointer[dirNode], lvl)}
	// Set the new node's outgoing links before publishing any incoming
	// link, then publish bottom-up: a reader that reaches nd at any level
	// always finds consistent links below it.
	for l := 0; l < lvl; l++ {
		nd.next[l].Store(preds[l].next[l].Load())
	}
	for l := 0; l < lvl; l++ {
		preds[l].next[l].Store(nd)
	}
	d.n.Add(1)
	return true
}

// Remove unlinks k, reporting an estimate of the bytes its node occupied
// and whether the key was present. Safe for concurrent use with readers;
// the caller (the engine's reaper) must guarantee via its epoch watermark
// that no reader still requires the key. A reader standing on the removed
// node keeps following its frozen links — forward-only and order-correct —
// and can only miss keys inserted after the unlink.
func (d *Directory) Remove(k txn.Key) (reclaimed uint64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()

	var preds [dirMaxLevel]*dirNode
	x := d.head
	for l := dirMaxLevel - 1; l >= 0; l-- {
		for {
			nxt := x.next[l].Load()
			if nxt == nil || !nxt.k.Less(k) {
				break
			}
			x = nxt
		}
		preds[l] = x
	}
	nd := preds[0].next[0].Load()
	if nd == nil || nd.k != k {
		return 0, false
	}
	// Flag before unlinking: an iterator that validates its finger after
	// this store can never resume from nd; one that validated before is
	// covered by the caller's epoch argument (keys inserted after the
	// unlink are invisible to it).
	nd.removed.Store(1)
	// Unlink top-down, mirroring the bottom-up publish of Insert: a reader
	// descending concurrently may still enter nd at a lower level and
	// finds consistent links there.
	for l := len(nd.next) - 1; l >= 0; l-- {
		if preds[l].next[l].Load() == nd {
			preds[l].next[l].Store(nd.next[l].Load())
		}
	}
	d.n.Add(-1)
	d.shrinkFenceLocked(k)
	return dirNodeOverhead + uint64(len(nd.next))*dirLinkBytes, true
}

// dirNodeOverhead and dirLinkBytes size the reclaimed-bytes estimate
// reported by Remove.
var (
	dirNodeOverhead = uint64(unsafe.Sizeof(dirNode{}))
	dirLinkBytes    = uint64(unsafe.Sizeof(atomic.Pointer[dirNode]{}))
)

// seek returns the last node whose key orders strictly before k (the head
// sentinel when none does).
func (d *Directory) seek(k txn.Key) *dirNode {
	x := d.head
	for l := dirMaxLevel - 1; l >= 0; l-- {
		for {
			nxt := x.next[l].Load()
			if nxt == nil || !nxt.k.Less(k) {
				break
			}
			x = nxt
		}
	}
	return x
}

// seekLE returns the last node whose key orders at or before k (the head
// sentinel when none does). Caller holds mu (used by fence shrinking).
func (d *Directory) seekLE(k txn.Key) *dirNode {
	x := d.head
	for l := dirMaxLevel - 1; l >= 0; l-- {
		for {
			nxt := x.next[l].Load()
			if nxt == nil || k.Less(nxt.k) {
				break
			}
			x = nxt
		}
	}
	return x
}

// Contains reports whether k is present.
func (d *Directory) Contains(k txn.Key) bool {
	nxt := d.seek(k).next[0].Load()
	return nxt != nil && nxt.k == k
}

// AscendRange calls fn for every key in r in ascending order, stopping
// early if fn returns false. Safe for concurrent use with writers; keys
// fully inserted before the call are always visited.
func (d *Directory) AscendRange(r txn.KeyRange, fn func(k txn.Key) bool) {
	if r.Empty() {
		return
	}
	limit := r.LimitKey()
	for x := d.seek(r.FirstKey()).next[0].Load(); x != nil && x.k.Less(limit); x = x.next[0].Load() {
		if !fn(x.k) {
			return
		}
	}
}

// Next returns the smallest key at or after k, for next-key questions.
// The second result is false when no such key exists.
func (d *Directory) Next(k txn.Key) (txn.Key, bool) {
	nxt := d.seek(k).next[0].Load()
	if nxt == nil {
		return txn.Key{}, false
	}
	return nxt.k, true
}

// ---------------------------------------------------------------------------
// Resumable iteration.

// DirIter is a resumable directory iterator: it keeps the skiplist descent
// path (a "finger") of its last position, so a SeekGE at or past that
// position costs O(log distance) instead of a fresh top-down descent —
// the win that lets scans over many ranges, or the reaper's incremental
// sweep, stop paying a full descent per range per partition.
//
// Safety of reuse: a finger node that has been removed from the list would
// let a resumed walk skip keys inserted after the unlink, so SeekGE
// validates every finger node's removed flag and falls back to a full
// descent when any is set. For a reader protected by the engine's epoch
// watermark this check is sound: a removal that lands after the check can
// only hide keys whose inserts are concurrent with the scan, and such keys
// are above the reader's snapshot by the directory's maintenance rules.
// The zero DirIter is ready for use.
type DirIter struct {
	d     *Directory
	preds [dirMaxLevel]*dirNode
	cur   *dirNode
}

// SeekGE positions the iterator at the first key of d at or after k,
// reporting whether one exists. When the iterator's finger is still valid
// and at or before k, the descent resumes from it.
func (it *DirIter) SeekGE(d *Directory, k txn.Key) bool {
	usable := it.d == d && it.cur != nil && !k.Less(it.cur.k)
	if usable {
		for l := 0; l < dirMaxLevel; l++ {
			if p := it.preds[l]; p != d.head && (p == nil || p.removed.Load() != 0) {
				usable = false
				break
			}
		}
	}
	it.d = d
	x := d.head
	for l := dirMaxLevel - 1; l >= 0; l-- {
		if usable {
			// preds[l].k < cur.k <= k, so every saved pred is a valid (and
			// usually far closer) start for its level.
			if p := it.preds[l]; p != d.head && (x == d.head || x.k.Less(p.k)) {
				x = p
			}
		}
		for {
			nxt := x.next[l].Load()
			if nxt == nil || !nxt.k.Less(k) {
				break
			}
			x = nxt
		}
		it.preds[l] = x
	}
	it.cur = x.next[0].Load()
	return it.cur != nil
}

// Key returns the key at the current position. Only valid after SeekGE or
// Next returned true.
func (it *DirIter) Key() txn.Key { return it.cur.k }

// Next advances to the following key, reporting whether one exists. The
// bottom finger trails the position so a later SeekGE resumes cheaply.
func (it *DirIter) Next() bool {
	nxt := it.cur.next[0].Load()
	if nxt == nil {
		return false
	}
	it.preds[0] = it.cur
	it.cur = nxt
	return true
}

// Invalidate drops the finger; the next SeekGE performs a full descent.
func (it *DirIter) Invalidate() { it.cur = nil; it.d = nil }

// ---------------------------------------------------------------------------
// Sharded key fences.

// fenceShards is the number of contiguous ID windows each table's fence
// tracks. A range query touches only the slots its window overlaps, so 32
// keeps ExcludesRange a handful of loads while still resolving
// mid-keyspace gaps a single min/max pair cannot see.
const fenceShards = 32

// fenceEmptyLo is the lo value of an empty fence slot; paired with hi = 0
// it makes lo > hi the emptiness test.
const fenceEmptyLo = ^uint64(0)

// tableFence is one table's sharded fence: slot s bounds the IDs present
// in window [s<<shift, (s+1)<<shift). shift is immutable per instance;
// when a key lands beyond the covered span the writer builds a rescaled
// instance and swaps the fence set. Slots are exact min/max under the
// single-writer discipline: inserts widen them in place, and the reaper
// recomputes a slot from the skiplist when it removes an endpoint — the
// shrink that makes reaped regions excludable again.
//
// Readers load lo then hi without a lock. Widening stores hi before lo on
// an empty slot (so the slot never reads non-empty before both ends admit
// the key) and shrinking stores lo before hi (so a torn read pair is
// always a superset of the true bounds, or reads empty while the slot is
// mid-publication of a key that is not yet linked).
type tableFence struct {
	table uint32
	shift uint32
	lo    [fenceShards]atomic.Uint64
	hi    [fenceShards]atomic.Uint64
}

func newTableFence(table uint32, shift uint32) *tableFence {
	tf := &tableFence{table: table, shift: shift}
	for s := range tf.lo {
		tf.lo[s].Store(fenceEmptyLo)
	}
	return tf
}

// fenceShiftFor returns the smallest shift under which id falls inside the
// covered span.
func fenceShiftFor(id uint64) uint32 {
	n := bits.Len64(id)
	const span = 5 // log2(fenceShards)
	if n <= span {
		return 0
	}
	return uint32(n - span)
}

// fenceSet is the immutable table→fence mapping; tables is sorted by
// table id. Structural changes (new table, rescale) copy-on-write the
// slice and swap the Directory's pointer; per-slot bounds mutate in place.
type fenceSet struct {
	tables []*tableFence
}

func (fs *fenceSet) find(table uint32) *tableFence {
	for _, tf := range fs.tables {
		if tf.table == table {
			return tf
		}
		if tf.table > table {
			return nil
		}
	}
	return nil
}

// withTable returns a copy of fs with tf added or replacing its table's
// entry, keeping the sort order.
func (fs *fenceSet) withTable(tf *tableFence) *fenceSet {
	out := &fenceSet{tables: make([]*tableFence, 0, len(fs.tables)+1)}
	added := false
	for _, t := range fs.tables {
		if t.table == tf.table {
			out.tables = append(out.tables, tf)
			added = true
			continue
		}
		if !added && t.table > tf.table {
			out.tables = append(out.tables, tf)
			added = true
		}
		out.tables = append(out.tables, t)
	}
	if !added {
		out.tables = append(out.tables, tf)
	}
	return out
}

// widenFenceLocked admits k into its table's fence, creating or rescaling
// the table's fence as needed. Caller holds mu; runs before k's links
// publish.
func (d *Directory) widenFenceLocked(k txn.Key) {
	fs := d.fences.Load()
	tf := fs.find(k.Table)
	if tf == nil {
		tf = newTableFence(k.Table, fenceShiftFor(k.ID))
		d.fences.Store(fs.withTable(tf))
		fs = d.fences.Load()
	}
	if s := k.ID >> tf.shift; s >= fenceShards {
		tf = rescaleFence(tf, fenceShiftFor(k.ID))
		d.fences.Store(fs.withTable(tf))
	}
	s := k.ID >> tf.shift
	// hi before lo: an empty slot must not read non-empty until both ends
	// admit k (see tableFence).
	if k.ID > tf.hi[s].Load() {
		tf.hi[s].Store(k.ID)
	}
	if k.ID < tf.lo[s].Load() {
		tf.lo[s].Store(k.ID)
	}
}

// rescaleFence builds a coarser fence covering id space up to
// fenceShards<<shift, merging the old instance's slots. Old windows nest
// exactly into new ones (shifts only grow), so merged bounds stay exact.
func rescaleFence(old *tableFence, shift uint32) *tableFence {
	tf := newTableFence(old.table, shift)
	for s := uint64(0); s < fenceShards; s++ {
		lo, hi := old.lo[s].Load(), old.hi[s].Load()
		if lo > hi {
			continue
		}
		ns := lo >> shift
		if lo < tf.lo[ns].Load() {
			tf.lo[ns].Store(lo)
		}
		if hi > tf.hi[ns].Load() {
			tf.hi[ns].Store(hi)
		}
	}
	return tf
}

// shrinkFenceLocked recomputes k's fence slot after k's removal, when k
// was one of the slot's endpoints. The recomputation asks the skiplist for
// the window's surviving min and max (two O(log n) descents), so fences
// tighten as regions are reaped — and read as empty once a window's last
// key goes, letting scanners skip the walk entirely. Caller holds mu.
func (d *Directory) shrinkFenceLocked(k txn.Key) {
	tf := d.fences.Load().find(k.Table)
	if tf == nil {
		return
	}
	s := k.ID >> tf.shift
	if s >= fenceShards {
		return
	}
	lo, hi := tf.lo[s].Load(), tf.hi[s].Load()
	if lo > hi || (k.ID != lo && k.ID != hi) {
		return
	}
	winLo := s << tf.shift
	winLast := winLo + (uint64(1)<<tf.shift - 1)
	// Surviving minimum: first key at or after {table, winLo}.
	first := d.seek(txn.Key{Table: k.Table, ID: winLo}).next[0].Load()
	if first == nil || first.k.Table != k.Table || first.k.ID > winLast {
		// Window empty: lo first, so a torn read pair is empty or a
		// superset, never a phantom narrow window.
		tf.lo[s].Store(fenceEmptyLo)
		tf.hi[s].Store(0)
		return
	}
	// Surviving maximum: last key at or before {table, winLast}.
	last := d.seekLE(txn.Key{Table: k.Table, ID: winLast})
	tf.lo[s].Store(first.k.ID)
	tf.hi[s].Store(last.k.ID)
}

// Bounds returns the smallest and largest key currently admitted by the
// fences (exact under quiescence). ok is false while the directory is
// empty.
func (d *Directory) Bounds() (min, max txn.Key, ok bool) {
	fs := d.fences.Load()
	for _, tf := range fs.tables {
		for s := 0; s < fenceShards; s++ {
			lo := tf.lo[s].Load()
			if lo <= tf.hi[s].Load() {
				min = txn.Key{Table: tf.table, ID: lo}
				ok = true
				break
			}
		}
		if ok {
			break
		}
	}
	if !ok {
		return txn.Key{}, txn.Key{}, false
	}
	for i := len(fs.tables) - 1; i >= 0; i-- {
		tf := fs.tables[i]
		for s := fenceShards - 1; s >= 0; s-- {
			hi := tf.hi[s].Load()
			if tf.lo[s].Load() <= hi {
				return min, txn.Key{Table: tf.table, ID: hi}, true
			}
		}
	}
	return min, max, true
}

// ExcludesRange reports whether the fences prove the directory holds no
// key in r: the table has no fence, the range lies beyond the fence's
// span, or every overlapped slot is empty or disjoint from [Lo, Hi). A
// false result promises nothing — the range may still be empty — but a
// true result lets scanners skip the walk. Safe for concurrent use; a key
// fully inserted before the call is never excluded by its own range.
// Unlike a single min/max pair, the sharded slots also exclude
// mid-keyspace gaps and reaped regions.
func (d *Directory) ExcludesRange(r txn.KeyRange) bool {
	if r.Empty() {
		return true
	}
	tf := d.fences.Load().find(r.Table)
	if tf == nil {
		return true
	}
	s0 := r.Lo >> tf.shift
	if s0 >= fenceShards {
		return true
	}
	s1 := (r.Hi - 1) >> tf.shift
	if s1 >= fenceShards {
		s1 = fenceShards - 1
	}
	for s := s0; s <= s1; s++ {
		lo := tf.lo[s].Load()
		hi := tf.hi[s].Load()
		if lo > hi { // empty slot
			continue
		}
		if lo >= r.Hi || hi < r.Lo { // populated, but disjoint from r
			continue
		}
		return false
	}
	return true
}
