package storage

import (
	"sync"
	"sync/atomic"
)

// ValueArena is a per-execution-worker byte-slab allocator for version
// payloads — the record-data counterpart of VersionPool. Versions got
// their Hekaton-style lifecycle in the batch/version pooling work:
// carved from slabs, retired through limbo under the engine's epoch
// watermark, recycled. Payloads stayed a fresh caller-allocated []byte
// per write. The arena closes that gap: the execution worker that
// installs a transaction's write copies the written value into the
// worker's current slab, so the engine owns payload memory and the
// caller may reuse its write buffer the moment Write returns.
//
// Lifecycle. Each slab carries an atomic reference count: one reference
// held by the arena while the slab is current, plus one per payload
// carved from it. A payload's reference is dropped by VersionPool.Release
// when its version leaves limbo — i.e. under exactly the watermark gate
// (reader epochs + checkpoint pin + retireLag) that already proves no
// reader can still be traversing the version, hence none can be reading
// its bytes. When a slab's count reaches zero it returns to the owning
// arena's free list for reuse. The count is atomic because the final
// unref happens on a CC thread (Release runs in the CC lifecycle) while
// carving happens on the arena's execution worker; everything else about
// the arena is single-threaded by the worker-ownership contract.
//
// Oversized values (> valueOversize) bypass the arena and fall back to a
// plain heap copy with no slab, so one huge record cannot pin a slab or
// blow up slab residency; the runtime GC reclaims it with the version.
type ValueArena struct {
	cur *valueSlab
	off int

	// mu guards free: slabs are pushed by whichever thread performed the
	// final unref and popped by the owning execution worker.
	mu   sync.Mutex
	free []*valueSlab

	// served counts bytes carved since the last trim check; trim state
	// mirrors VersionPool's demand-windowed high-watermark trim.
	served int

	// allocated/recycled/trimmed are observability counters: slabs newly
	// allocated, slabs reused from the free list, and slabs dropped by
	// MaybeTrim. Written by the owner (allocated, trimmed) or the
	// unreffing thread (recycled), read concurrently by Stats.
	allocated atomic.Uint64
	recycled  atomic.Uint64
	trimmed   atomic.Uint64
}

// valueSlab is one payload block. live starts at 1 (the arena's hold on
// its current slab) and gains one per carved payload; unref pushes the
// slab back to owner.free when the count drains to zero.
type valueSlab struct {
	buf   []byte
	live  atomic.Int32
	owner *ValueArena
}

const (
	// valueSlabSize is the payload block size. 64 KiB amortizes one slab
	// allocation over hundreds of typical records while staying small
	// enough that a retiring slab returns promptly.
	valueSlabSize = 64 << 10
	// valueOversize is the largest payload served from a slab; larger
	// values heap-allocate with no slab reference.
	valueOversize = 8 << 10
	// valueTrimWindow is the bytes-served window between trim checks,
	// sized so a steady workload's churn dominates the demand signal
	// (mirroring VersionPool's trimCheckEvery releases).
	valueTrimWindow = 64 * valueSlabSize
)

// NewValueArena creates an empty arena.
func NewValueArena() *ValueArena {
	return &ValueArena{}
}

// incRef adds one payload reference to the slab; nil-safe for heap
// fallbacks and loaded versions.
func (s *valueSlab) incRef() {
	if s != nil {
		s.live.Add(1)
	}
}

// unref drops one reference; the thread that drains the count recycles
// the slab into its owner's free list. nil-safe.
func (s *valueSlab) unref() {
	if s == nil {
		return
	}
	if s.live.Add(-1) == 0 {
		a := s.owner
		a.mu.Lock()
		a.free = append(a.free, s)
		a.mu.Unlock()
		a.recycled.Add(1)
	}
}

// seal drops the arena's own reference on the current slab (making the
// slab reclaimable once its carved payloads drain) and leaves the arena
// ready to start a fresh one on the next carve.
func (a *ValueArena) seal() {
	if a.cur != nil {
		a.cur.unref()
		a.cur = nil
		a.off = 0
	}
}

// next installs a fresh current slab: recycled when one is free, newly
// allocated otherwise.
func (a *ValueArena) next() {
	a.mu.Lock()
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.mu.Unlock()
		s.live.Store(1)
		a.cur, a.off = s, 0
		return
	}
	a.mu.Unlock()
	s := &valueSlab{buf: make([]byte, valueSlabSize), owner: a}
	s.live.Store(1)
	a.allocated.Add(1)
	a.cur, a.off = s, 0
}

// carve copies data into arena memory and returns the stable copy plus
// the slab holding it (nil for the oversize heap fallback). The returned
// slab already carries the payload's reference. Owner-thread only.
func (a *ValueArena) carve(data []byte) ([]byte, *valueSlab) {
	n := len(data)
	a.served += n
	if n > valueOversize {
		out := make([]byte, n)
		copy(out, data)
		return out, nil
	}
	if a.cur == nil || a.off+n > len(a.cur.buf) {
		a.seal()
		a.next()
	}
	out := a.cur.buf[a.off : a.off+n : a.off+n]
	a.off += n
	copy(out, data)
	a.cur.live.Add(1)
	return out, a.cur
}

// MaybeTrim runs the demand-windowed high-watermark trim: once enough
// bytes have been carved since the last check, the free list is capped
// at the window's demand (in slabs, plus one of slack) and the surplus
// dropped, so a burst's slabs return to the runtime as their payloads
// drain instead of parking forever. Owner-thread only; called once per
// executed batch.
func (a *ValueArena) MaybeTrim() {
	if a.served < valueTrimWindow {
		return
	}
	keep := a.served/valueSlabSize + 1
	a.served = 0
	a.mu.Lock()
	surplus := len(a.free) - keep
	if surplus <= 0 {
		a.mu.Unlock()
		return
	}
	clear(a.free[len(a.free)-surplus:])
	a.free = a.free[:len(a.free)-surplus]
	if cap(a.free)-len(a.free) >= 2*keep {
		shrunk := make([]*valueSlab, len(a.free), len(a.free)+keep)
		copy(shrunk, a.free)
		a.free = shrunk
	}
	a.mu.Unlock()
	a.trimmed.Add(uint64(surplus))
}

// Stats returns slabs allocated, slabs recycled through the free list,
// and slabs dropped by the trim. Safe from any thread.
func (a *ValueArena) Stats() (allocated, recycled, trimmed uint64) {
	return a.allocated.Load(), a.recycled.Load(), a.trimmed.Load()
}

// ValueSlabBytes is the slab size, exported for bytes-recycled
// accounting.
const ValueSlabBytes = uint64(valueSlabSize)
