package storage

import (
	"encoding/binary"
	"sync/atomic"

	"bohm/internal/txn"
)

// TID word layout for single-version records (Silo-style): the top bit is
// the write lock, the remainder a version counter that changes on every
// update. Readers validate by observing the same unlocked TID before and
// after copying the record.
const (
	TIDLockBit = uint64(1) << 63
	TIDMask    = TIDLockBit - 1
)

// metaDeleted marks a tombstone in the record's meta word; the low 32
// bits of meta hold the value length.
const (
	metaDeleted = uint64(1) << 63
	metaLenMask = uint64(1)<<32 - 1
)

// wordArr is a record's payload as 64-bit words. Payload bytes are stored
// in atomic words so the Silo seqlock read — which intentionally races
// with in-place writers and validates via the TID afterwards — is
// expressible without undefined behaviour: a torn read can return stale
// or mixed *values*, never corrupt memory, and the TID re-check discards
// it. This mirrors Silo's word-versioned record layout.
type wordArr struct {
	words []atomic.Uint64
}

// SVRecord is an update-in-place record used by the single-versioned
// engines. Writers mutate the payload under the TID lock (OCC) or an
// external lock manager (2PL); concurrent seqlock readers are allowed and
// validate against the TID.
type SVRecord struct {
	tid  atomic.Uint64
	meta atomic.Uint64 // deleted flag + payload length
	arr  atomic.Pointer[wordArr]
}

// NewSVRecord builds a record holding a private copy of data.
func NewSVRecord(data []byte) *SVRecord {
	r := &SVRecord{}
	r.storeBytes(data)
	return r
}

func wordsFor(n int) int { return (n + 7) / 8 }

// storeBytes writes data into the record's word array, growing it if
// needed, and publishes the new length.
func (r *SVRecord) storeBytes(data []byte) {
	need := wordsFor(len(data))
	a := r.arr.Load()
	if a == nil || len(a.words) < need {
		a = &wordArr{words: make([]atomic.Uint64, need)}
		r.arr.Store(a)
	}
	var tail [8]byte
	for i := 0; i < need; i++ {
		lo := i * 8
		hi := lo + 8
		if hi <= len(data) {
			a.words[i].Store(binary.LittleEndian.Uint64(data[lo:hi]))
		} else {
			copy(tail[:], data[lo:])
			for j := len(data) - lo; j < 8; j++ {
				tail[j] = 0
			}
			a.words[i].Store(binary.LittleEndian.Uint64(tail[:]))
		}
	}
	r.meta.Store(uint64(len(data)))
}

// loadBytes materializes the payload into buf (re-sliced or grown),
// returning the bytes and the tombstone flag. The read is NOT atomic as a
// whole; callers either hold a lock excluding writers (2PL) or run it
// inside the seqlock loop (OCC).
func (r *SVRecord) loadBytes(buf []byte) ([]byte, bool) {
	meta := r.meta.Load()
	n := int(meta & metaLenMask)
	del := meta&metaDeleted != 0
	if cap(buf) >= n {
		buf = buf[:n]
	} else {
		buf = make([]byte, n)
	}
	a := r.arr.Load()
	if a == nil {
		return buf[:0], del
	}
	var tail [8]byte
	for i := 0; i < wordsFor(n) && i < len(a.words); i++ {
		w := a.words[i].Load()
		lo := i * 8
		if lo+8 <= n {
			binary.LittleEndian.PutUint64(buf[lo:lo+8], w)
		} else {
			binary.LittleEndian.PutUint64(tail[:], w)
			copy(buf[lo:n], tail[:n-lo])
		}
	}
	return buf, del
}

// TID returns the record's current TID word (lock bit included).
func (r *SVRecord) TID() uint64 { return r.tid.Load() }

// Lock spins until it acquires the record's write lock, returning the TID
// observed at acquisition (without the lock bit).
func (r *SVRecord) Lock() uint64 {
	for {
		t := r.tid.Load()
		if t&TIDLockBit == 0 && r.tid.CompareAndSwap(t, t|TIDLockBit) {
			return t
		}
	}
}

// TryLock attempts a single lock acquisition, reporting success.
func (r *SVRecord) TryLock() (uint64, bool) {
	t := r.tid.Load()
	if t&TIDLockBit != 0 {
		return 0, false
	}
	if r.tid.CompareAndSwap(t, t|TIDLockBit) {
		return t, true
	}
	return 0, false
}

// Unlock releases the write lock, publishing newTID as the record's
// version number. newTID must not have the lock bit set and must differ
// from the pre-lock TID if the data changed.
func (r *SVRecord) Unlock(newTID uint64) { r.tid.Store(newTID & TIDMask) }

// UnlockUnchanged releases the lock restoring the TID observed by Lock.
func (r *SVRecord) UnlockUnchanged(oldTID uint64) { r.tid.Store(oldTID & TIDMask) }

// Data materializes the record's payload into a fresh slice. Callers must
// exclude writers (hold the TID lock, or a 2PL lock that conflicts with
// writers).
func (r *SVRecord) Data() []byte {
	b, _ := r.loadBytes(nil)
	return b
}

// DataInto is Data with a reusable buffer.
func (r *SVRecord) DataInto(buf []byte) []byte {
	b, _ := r.loadBytes(buf)
	return b
}

// Deleted reports the tombstone flag. Guarded like Data.
func (r *SVRecord) Deleted() bool { return r.meta.Load()&metaDeleted != 0 }

// Set overwrites the record in place, growing the word array only if the
// new value is larger (single-version systems "write to the same set of
// memory words", §4.2.1). Callers must hold the write lock.
func (r *SVRecord) Set(v []byte) { r.storeBytes(v) }

// SetDeleted marks the record as a tombstone. Callers must hold the lock.
func (r *SVRecord) SetDeleted() { r.meta.Store(r.meta.Load() | metaDeleted) }

// StableRead copies the record into buf using a seqlock: it loops until
// it observes the same unlocked TID before and after the copy, so the
// returned bytes are a consistent snapshot even while writers update the
// record in place. It returns the buffer (re-sliced or grown), the
// observed TID, and the tombstone flag.
func (r *SVRecord) StableRead(buf []byte) ([]byte, uint64, bool) {
	for {
		t1 := r.tid.Load()
		if t1&TIDLockBit != 0 {
			continue
		}
		var del bool
		buf, del = r.loadBytes(buf)
		if r.tid.Load() == t1 {
			return buf, t1, del
		}
	}
}

// SVStore is the single-version database: a latch-free hash index per
// table mapping keys to in-place records.
type SVStore struct {
	idx *Map[SVRecord]
}

// NewSVStore creates a store sized for n records.
func NewSVStore(n int) *SVStore {
	return &SVStore{idx: NewMap[SVRecord](n)}
}

// Load inserts a record during initial database population (not thread
// safe with respect to running transactions; engines load before serving).
func (s *SVStore) Load(k txn.Key, v []byte) error {
	_, _, err := s.idx.Insert(k, NewSVRecord(v))
	return err
}

// Get returns the record for k, or nil.
func (s *SVStore) Get(k txn.Key) *SVRecord { return s.idx.Get(k) }

// GetOrCreate returns the record for k, inserting an empty tombstone
// record if absent (used by inserting transactions: the record springs
// into existence deleted, then the writer fills it under its lock). The
// second result reports whether this call created the record, so engines
// can mirror first-ever keys into their ordered directory.
func (s *SVStore) GetOrCreate(k txn.Key) (*SVRecord, bool, error) {
	return s.idx.GetOrInsert(k, func() *SVRecord {
		r := &SVRecord{}
		r.meta.Store(metaDeleted)
		return r
	})
}

// Range iterates all records; see Map.Range.
func (s *SVStore) Range(f func(k txn.Key, r *SVRecord) bool) { s.idx.Range(f) }

// Len returns the number of records.
func (s *SVStore) Len() int { return s.idx.Len() }
