package storage

import (
	"math/rand"
	"testing"
)

// TestChainModel drives a Chain through long random sequences of pushes
// and collects, cross-checking VisibleAt against a reference model (a
// plain slice of begin timestamps) after every operation. The model
// verifies two invariants simultaneously:
//
//  1. visibility — VisibleAt(ts) returns the version with the largest
//     Begin < ts, and
//  2. GC safety — Collect(wm) never removes a version that any
//     transaction with a timestamp above the watermark horizon could
//     still need.
func TestChainModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 50; trial++ {
		c := NewChain(NewLoadedVersion([]byte{0}))
		type modelVersion struct {
			begin uint64
			batch uint64
		}
		model := []modelVersion{{0, 0}}
		ts := uint64(0)
		batch := uint64(0)
		horizon := uint64(0) // highest watermark passed to Collect so far

		for op := 0; op < 400; op++ {
			if rng.Intn(3) != 0 {
				// Push a new ready version.
				ts += uint64(1 + rng.Intn(5))
				if rng.Intn(4) == 0 {
					batch++
				}
				v := NewPlaceholder(ts, batch, nil)
				v.Install([]byte{byte(ts)}, false)
				c.Push(v)
				model = append(model, modelVersion{ts, batch})
			} else {
				// Collect at a random watermark ≤ current batch.
				wm := uint64(rng.Intn(int(batch) + 1))
				if wm > horizon {
					horizon = wm
				}
				c.Collect(wm)
			}

			// Check visibility for readers that GC must still serve: any
			// ts above the begin of the newest version in a batch ≤
			// horizon (older readers have finished by the watermark
			// protocol's definition).
			var minSafe uint64
			for _, mv := range model {
				if mv.batch <= horizon && mv.begin > minSafe {
					minSafe = mv.begin
				}
			}
			for probe := 0; probe < 10; probe++ {
				readTS := minSafe + 1 + uint64(rng.Intn(int(ts-minSafe)+2))
				// Reference: largest begin < readTS.
				var want *uint64
				for i := range model {
					b := model[i].begin
					if b < readTS && (want == nil || b > *want) {
						want = &b
					}
				}
				got := c.VisibleAt(readTS)
				if want == nil {
					if got != nil {
						t.Fatalf("trial %d op %d: VisibleAt(%d) = begin %d, want nil", trial, op, readTS, got.Begin)
					}
					continue
				}
				if got == nil {
					t.Fatalf("trial %d op %d: VisibleAt(%d) = nil, want begin %d (GC lost a live version; horizon %d)",
						trial, op, readTS, *want, horizon)
				}
				if got.Begin != *want {
					t.Fatalf("trial %d op %d: VisibleAt(%d) = begin %d, want %d", trial, op, readTS, got.Begin, *want)
				}
			}
		}
	}
}
