package storage

import (
	"math"
	"sync/atomic"
)

// TsInfinity is the end timestamp of a version that has not been
// superseded: the version is visible to every transaction at or after its
// begin timestamp.
const TsInfinity = math.MaxUint64

// Version is one entry in a record's version chain, laid out exactly as
// the paper's Figure 3: begin timestamp, end timestamp, a reference to the
// producing transaction, the data, and a pointer to the preceding version.
//
// Field ownership follows BOHM's phase separation:
//
//   - Begin, Batch, Producer and the initial Prev are written by the
//     concurrency control thread that owns the record's partition, before
//     the version is published; they are immutable afterwards.
//   - End is written only by that same CC thread (when a later transaction
//     supersedes the version) and read by execution threads, so it is
//     atomic.
//   - data/tombstone are written by the execution thread that runs the
//     producing transaction and become readable when ready flips to 1;
//     the atomic store/load pair orders the data writes.
//   - Prev is additionally cleared (never re-pointed) by the garbage
//     collector, hence atomic.
type Version struct {
	Begin uint64
	Batch uint64
	// Producer is the engine-specific handle of the transaction that must
	// run before this version's data exists (BOHM's "Txn Pointer"). It is
	// set before publication and never mutated; nil for versions created
	// by the initial load.
	Producer any

	end   atomic.Uint64
	prev  atomic.Pointer[Version]
	ready atomic.Uint32

	data      []byte
	tombstone bool
	// slab is the ValueArena block holding data, nil for heap-allocated
	// payloads (loads, oversize values, arena-disabled engines). Written
	// with data under the same ready ordering; the reference it carries
	// is dropped by VersionPool.Release under the epoch gate.
	slab *valueSlab
}

// NewLoadedVersion builds a ready version holding initially loaded data,
// visible from timestamp 0 onward.
func NewLoadedVersion(data []byte) *Version {
	v := &Version{}
	v.end.Store(TsInfinity)
	v.data = data
	v.ready.Store(1)
	return v
}

// NewPlaceholder builds the uninitialized version a CC thread inserts for
// a transaction's write (§3.2.3): begin = the transaction's timestamp,
// end = infinity, data unset.
func NewPlaceholder(begin, batch uint64, producer any) *Version {
	v := &Version{Begin: begin, Batch: batch, Producer: producer}
	v.end.Store(TsInfinity)
	return v
}

// End returns the version's end timestamp.
func (v *Version) End() uint64 { return v.end.Load() }

// SetEnd invalidates the version as of timestamp ts. Only the CC thread
// owning the record's partition calls this.
func (v *Version) SetEnd(ts uint64) { v.end.Store(ts) }

// Prev returns the preceding version, or nil at the tail (or once the
// garbage collector has unlinked older versions).
func (v *Version) Prev() *Version { return v.prev.Load() }

// SetPrev links the preceding version. Called once, before publication.
func (v *Version) SetPrev(p *Version) { v.prev.Store(p) }

// Ready reports whether the version's data has been produced.
func (v *Version) Ready() bool { return v.ready.Load() == 1 }

// Install publishes the version's data. tombstone marks a deletion. The
// atomic ready flip orders the data write before any reader's load.
func (v *Version) Install(data []byte, tombstone bool) {
	v.data = data
	v.tombstone = tombstone
	v.ready.Store(1)
}

// InstallValue publishes a copy of data as the version's payload: into
// a's current slab when a is non-nil (the copy carries a slab reference
// released with the version), a fresh heap slice otherwise. Either way
// the engine owns the installed bytes and the caller's buffer is free
// for reuse the moment this returns. Tombstones and nil data install no
// payload at all.
func (v *Version) InstallValue(a *ValueArena, data []byte, tombstone bool) {
	if tombstone || data == nil {
		v.data = nil
		v.tombstone = tombstone
		v.ready.Store(1)
		return
	}
	if a != nil {
		v.data, v.slab = a.carve(data)
	} else {
		out := make([]byte, len(data))
		copy(out, data)
		v.data = out
	}
	v.tombstone = tombstone
	v.ready.Store(1)
}

// InstallShared publishes data adopted from src — the copy-forward case,
// where an aborted or unwritten slot re-exposes its predecessor's
// payload. No copy is made: the version shares src's bytes and takes its
// own reference on src's slab (nil-safe), so the payload outlives
// whichever of the two versions retires last.
func (v *Version) InstallShared(src *Version, data []byte, tombstone bool) {
	var s *valueSlab
	if src != nil {
		s = src.slab
	}
	s.incRef()
	v.data = data
	v.tombstone = tombstone
	v.slab = s
	v.ready.Store(1)
}

// Data returns the version's value and whether the version is a tombstone.
// It must only be called after Ready reports true.
func (v *Version) Data() (data []byte, tombstone bool) {
	return v.data, v.tombstone
}

// Chain is a record's version list, newest first. BOHM's partitioning
// guarantees a single writer (the owning CC thread); readers (execution
// threads) traverse concurrently, so the head is published atomically.
type Chain struct {
	head atomic.Pointer[Version]
	// count is the number of linked versions, maintained so CollectReclaim
	// can report how many it cut without walking the cut sublist (every
	// walked version is a cold cache line on the CC critical path). Owner-
	// only, like every chain mutation: written by Push, CollectReclaim and
	// DetachAll, never read concurrently.
	count int32
}

// NewChain creates a chain whose first version is head (may be nil for a
// record that is created by a future transaction's insert).
func NewChain(head *Version) *Chain {
	c := &Chain{}
	if head != nil {
		c.head.Store(head)
		c.count = 1
	}
	return c
}

// Head returns the newest version, or nil for an empty chain.
func (c *Chain) Head() *Version { return c.head.Load() }

// Push appends v as the newest version: the previous head's end timestamp
// becomes v.Begin and v becomes the head. Single-writer: only the owning
// CC thread calls Push for a given chain.
func (c *Chain) Push(v *Version) {
	old := c.head.Load()
	v.SetPrev(old)
	if old != nil {
		old.SetEnd(v.Begin)
	}
	c.head.Store(v)
	c.count++
}

// VisibleAt returns the version a transaction with timestamp ts must read:
// the newest version with Begin < ts (its end timestamp is then ≥ ts by
// construction). A transaction never reads its own write through
// VisibleAt — BOHM gives each transaction a single timestamp at which it
// atomically reads its pre-state and installs its post-state. Returns nil
// if no version is visible (record created later, or the needed version
// was garbage collected, which the engine's watermark rules out for live
// readers).
func (c *Chain) VisibleAt(ts uint64) *Version {
	for v := c.head.Load(); v != nil; v = v.Prev() {
		if v.Begin < ts {
			return v
		}
	}
	return nil
}

// Len counts the versions currently linked. Intended for tests and stats.
func (c *Chain) Len() int {
	n := 0
	for v := c.head.Load(); v != nil; v = v.Prev() {
		n++
	}
	return n
}

// DetachAll unlinks the whole chain, returning its previous head (nil for
// an already-empty chain). The reaper uses it to retire a dead key's
// versions: the returned list hangs off the versions' prev links, ready
// for VersionPool.Retire. Single-writer like Push; concurrent readers that
// loaded the head before the detach keep traversing the immutable list,
// which the caller's epoch gate keeps unrecycled until they drain.
func (c *Chain) DetachAll() *Version {
	c.count = 0
	return c.head.Swap(nil)
}

// Collect applies the paper's GC Condition 3: every version superseded by
// a version created in a batch ≤ watermark is unreachable by any live or
// future reader and is unlinked. Returns the number of versions collected.
//
// Batches are monotonically nondecreasing from tail to head, so it
// suffices to examine the newest superseded version s (the head's
// predecessor): once s.Batch ≤ watermark, every version below s has a
// superseding version of batch ≤ watermark too, and the whole tail below
// s can be cut in one step. This makes Collect O(1) per call plus O(freed)
// for accounting, amortizing to O(1) per version ever created.
//
// Only the owning CC thread calls Collect, concurrently with readers
// (RCU-style: readers already traversing the old sublist still see
// consistent immutable data; new traversals stop at the cut).
func (c *Chain) Collect(watermark uint64) int {
	_, n := c.CollectReclaim(watermark)
	return n
}
