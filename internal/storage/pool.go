package storage

import (
	"sync/atomic"
	"unsafe"
)

// VersionPool is a per-partition block allocator for Versions, in the
// spirit of Hekaton's record allocator: versions are carved from slab
// blocks instead of individual heap allocations, and versions reclaimed by
// chain garbage collection are recycled once the engine's execution
// watermark proves no reader can still be traversing them.
//
// Ownership contract: a pool belongs to exactly one concurrency control
// thread — the owner of the partition whose chains the versions live in —
// and every method except Stats must be called from that thread only.
// This mirrors the single-writer discipline of the chains themselves and
// makes the pool lock-free by construction.
//
// Reclamation is epoch-based, with batch sequence numbers as the epochs:
// Retire(vers, seq) parks versions cut out of chains while processing
// batch seq, and Release(safeSeq) moves every generation with seq <=
// safeSeq onto the free list. The engine passes safeSeq = watermark -
// retireLag, the point past which no in-flight reader loaded before the
// cut can still exist (see core's retire-ring argument).
type VersionPool struct {
	// block is the current slab; next indexes its first unused slot.
	block []Version
	next  int
	// blockSize is the slab length for the next block allocation.
	blockSize int

	// free holds recycled versions ready for reuse.
	free []*Version

	// limbo holds retired generations awaiting their release epoch, in
	// ascending seq order (Retire is called with nondecreasing seqs).
	limbo []limboGen

	// headsFree recycles released generations' heads arrays so the retire
	// path stays allocation-free at steady state.
	headsFree [][]*Version

	// High-watermark trim state: served counts placeholders handed out
	// since the last trim check, releases counts Release calls since
	// then. Every trimCheckEvery releases the pool compares its free list
	// against the window's demand and drops the surplus (in whole
	// defaultVersionBlock multiples) so a burst's slabs can return to the
	// runtime once their last live version drains; see maybeTrim.
	served   int
	releases int

	// pooled and recycled are observability counters: versions served
	// from the free list, and versions moved into it. trimmed counts
	// block-equivalents dropped by the high-watermark trim. Written by
	// the owner thread, read concurrently by Stats.
	pooled   atomic.Uint64
	recycled atomic.Uint64
	trimmed  atomic.Uint64
}

// limboGen is one retired generation: versions cut from chains while the
// owner processed batch seq. Each Retire call contributes one list, linked
// through the versions' prev pointers exactly as the cut left them; the
// generation keeps the list heads rather than splicing the lists together,
// because splicing would walk each incoming list to its tail — touching
// every retired version's cache line on the CC critical path. Release,
// which must walk everything anyway to free it, is the only consumer.
type limboGen struct {
	seq   uint64
	heads []*Version
}

// defaultVersionBlock is the initial slab size; blocks double up to
// maxVersionBlock as demand grows so that steady state reaches one slab
// allocation per several batches, then none once recycling catches up.
const (
	defaultVersionBlock = 512
	maxVersionBlock     = 16384
)

// NewVersionPool creates an empty pool.
func NewVersionPool() *VersionPool {
	return &VersionPool{blockSize: defaultVersionBlock}
}

// NewPlaceholder returns an uninitialized version for a transaction's
// write, equivalent to the package-level NewPlaceholder but served from
// the pool: a recycled version when one is free, a slab slot otherwise.
func (p *VersionPool) NewPlaceholder(begin, batch uint64, producer any) *Version {
	var v *Version
	p.served++
	if n := len(p.free); n > 0 {
		v = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.pooled.Add(1)
		// Reset the stale fields. data, Producer and prev are already nil —
		// Release cleared them when it freed the version (and slab slots
		// start zeroed) — so only the flags the dead transaction left
		// behind need stores here, on the version's cold cache line. No
		// reader can hold the version — that is what Release's epoch gate
		// established.
		v.tombstone = false
		v.ready.Store(0)
	} else {
		if p.next == len(p.block) {
			p.block = make([]Version, p.blockSize)
			p.next = 0
			if p.blockSize < maxVersionBlock {
				p.blockSize *= 2
			}
		}
		v = &p.block[p.next]
		p.next++
	}
	v.Begin = begin
	v.Batch = batch
	v.Producer = producer
	v.end.Store(TsInfinity)
	return v
}

// GrabPlaceholders fills dst with uninitialized versions — the batched
// form of NewPlaceholder for the kernel CC path. Popping the whole run in
// one tight loop lets the resets' cache misses overlap (each recycled
// version is an independent cold line, so the CPU can keep several misses
// in flight), where per-write NewPlaceholder calls serialize the same
// misses behind the rest of the insert. Each grabbed version still needs
// Version.InitPlaceholder before it is pushed into a chain.
func (p *VersionPool) GrabPlaceholders(dst []*Version) {
	p.served += len(dst)
	pops := len(p.free)
	if pops > len(dst) {
		pops = len(dst)
	}
	if pops > 0 {
		base := len(p.free) - pops
		for i, v := range p.free[base:] {
			// Same reset contract as NewPlaceholder's free path: data,
			// Producer and prev are already nil (Release cleared them).
			v.tombstone = false
			v.ready.Store(0)
			dst[i] = v
			p.free[base+i] = nil
		}
		p.free = p.free[:base]
		p.pooled.Add(uint64(pops))
	}
	for i := pops; i < len(dst); i++ {
		if p.next == len(p.block) {
			p.block = make([]Version, p.blockSize)
			p.next = 0
			if p.blockSize < maxVersionBlock {
				p.blockSize *= 2
			}
		}
		dst[i] = &p.block[p.next]
		p.next++
	}
}

// InitPlaceholder stamps a grabbed version as transaction producer's
// uninitialized write at timestamp begin in batch batch — the second half
// of NewPlaceholder, run at the insert site where begin and producer are
// known.
func (v *Version) InitPlaceholder(begin, batch uint64, producer any) {
	v.Begin = begin
	v.Batch = batch
	v.Producer = producer
	v.end.Store(TsInfinity)
}

// Retire parks a list of versions cut out of a chain while the owner was
// processing batch seq. head is the newest cut version; the list hangs off
// its prev links exactly as Chain.CollectReclaim left them. Retire must be
// called with nondecreasing seq across calls; versions retired under the
// same seq coalesce into one generation.
func (p *VersionPool) Retire(head *Version, seq uint64) {
	if head == nil {
		return
	}
	if n := len(p.limbo); n > 0 && p.limbo[n-1].seq == seq {
		p.limbo[n-1].heads = append(p.limbo[n-1].heads, head)
		return
	}
	var hs []*Version
	if n := len(p.headsFree); n > 0 {
		hs = p.headsFree[n-1]
		p.headsFree[n-1] = nil
		p.headsFree = p.headsFree[:n-1]
	}
	p.limbo = append(p.limbo, limboGen{seq: seq, heads: append(hs, head)})
}

// Release moves every limbo generation with seq <= safeSeq onto the free
// list. The caller guarantees no live reader can still hold a pointer into
// those generations (the engine derives safeSeq from its execution
// watermark and checkpoint pin).
func (p *VersionPool) Release(safeSeq uint64) {
	i := 0
	for ; i < len(p.limbo) && p.limbo[i].seq <= safeSeq; i++ {
		n := 0
		for _, h := range p.limbo[i].heads {
			for v := h; v != nil; {
				next := v.Prev()
				// Drop the data reference now so record payloads become
				// collectable the moment their version enters the free list,
				// not when it is eventually reused. Arena payloads drop their
				// slab reference here too — this is the epoch gate the
				// ValueArena lifecycle rides: no reader can still be looking
				// at the bytes once the version is releasable.
				if s := v.slab; s != nil {
					v.slab = nil
					s.unref()
				}
				v.data = nil
				v.Producer = nil
				v.prev.Store(nil)
				p.free = append(p.free, v)
				n++
				v = next
			}
		}
		p.headsFree = append(p.headsFree, p.limbo[i].heads[:0])
		p.limbo[i] = limboGen{}
		p.recycled.Add(uint64(n))
	}
	if i > 0 {
		p.limbo = append(p.limbo[:0], p.limbo[i:]...)
	}
	p.releases++
	if p.releases >= trimCheckEvery {
		p.maybeTrim()
	}
}

// trimCheckEvery is the number of Release calls (one per batch the owner
// concurrency-controls) between high-watermark trim checks; the window is
// long enough that a steady workload's churn dominates the demand signal.
const trimCheckEvery = 64

// maybeTrim caps the free list at the demand observed over the last trim
// window plus one block of slack, dropping the surplus in whole
// defaultVersionBlock multiples. After a burst the free list holds far
// more versions than steady-state churn ever reuses; severing the
// references lets the runtime reclaim the burst's slabs as their live
// versions drain from the chains, so RSS tracks the working set instead
// of the high-water mark. A steady workload's demand meets or exceeds its
// free list and nothing is trimmed.
func (p *VersionPool) maybeTrim() {
	keep := p.served + defaultVersionBlock
	p.served, p.releases = 0, 0
	surplus := len(p.free) - keep
	if surplus < defaultVersionBlock {
		return
	}
	blocks := surplus / defaultVersionBlock
	n := blocks * defaultVersionBlock
	clear(p.free[len(p.free)-n:])
	p.free = p.free[:len(p.free)-n]
	// Right-size the pointer array too: reslicing alone would retain the
	// burst-high-water backing array forever.
	if cap(p.free)-len(p.free) >= 2*defaultVersionBlock {
		shrunk := make([]*Version, len(p.free), len(p.free)+defaultVersionBlock)
		copy(shrunk, p.free)
		p.free = shrunk
	}
	p.trimmed.Add(uint64(blocks))
}

// Stats returns the pool's counters: versions served from the free list,
// versions recycled into it, and block-equivalents dropped by the
// high-watermark trim. Safe to call from any thread.
func (p *VersionPool) Stats() (pooled, recycled, trimmed uint64) {
	return p.pooled.Load(), p.recycled.Load(), p.trimmed.Load()
}

// Free estimates the versions currently parked on the free list — the
// pool's residency gauge. Every free-list entry arrived via recycling and
// leaves by being served (pooled) or trimmed, so the population is the
// difference of the counters; the three loads race the owner thread, so
// a transient sample can skew and is clamped at zero. Safe to call from
// any thread.
func (p *VersionPool) Free() uint64 {
	recycled, pooled, trimmed := p.recycled.Load(), p.pooled.Load(), p.trimmed.Load()
	free := int64(recycled) - int64(pooled) - int64(trimmed*defaultVersionBlock)
	if free < 0 {
		return 0
	}
	return uint64(free)
}

// VersionBytes is the in-memory size of one Version struct, for
// bytes-recycled accounting.
const VersionBytes = uint64(unsafe.Sizeof(Version{}))

// CollectReclaim is Collect with reclamation: it applies the same GC
// Condition 3 cut, but instead of abandoning the unlinked sublist to the
// runtime's garbage collector it returns its head so the caller can hand
// the versions to a VersionPool. The returned list is linked through the
// versions' prev pointers; it is nil when nothing was collected.
//
// The concurrency argument for the cut itself is Collect's. The argument
// for *reuse* is stronger and belongs to the caller: a reader that loaded
// a pointer into the cut sublist did so before the cut, hence was
// executing a batch older than the one being concurrency-controlled when
// CollectReclaim ran — the caller must delay reuse until those batches
// have drained (VersionPool.Release's epoch gate).
func (c *Chain) CollectReclaim(watermark uint64) (head *Version, n int) {
	h := c.head.Load()
	if h == nil {
		return nil, 0
	}
	s := h.Prev() // newest superseded version; must itself stay visible
	if s == nil || s.Batch > watermark || !s.Ready() {
		return nil, 0
	}
	head = s.Prev()
	if head == nil {
		return nil, 0
	}
	// The chain's maintained count prices the cut without walking it: the
	// cut is everything below s, and exactly h and s survive. Walking
	// would touch every cut version's cache line right on the CC critical
	// path; the versions' lines are left for Release, which must visit
	// them anyway (off the critical path) to free them.
	n = int(c.count) - 2
	c.count = 2
	s.prev.Store(nil)
	return head, n
}
