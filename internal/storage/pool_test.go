package storage

import (
	"testing"
)

// TestVersionPoolRecycles exercises the allocate → retire → release →
// reallocate cycle and the epoch gate: versions retired under batch seq b
// must not be reused before Release(b).
func TestVersionPoolRecycles(t *testing.T) {
	p := NewVersionPool()
	c := NewChain(nil)
	for i := 1; i <= 4; i++ {
		v := p.NewPlaceholder(uint64(i), uint64(i), nil)
		v.Install([]byte{byte(i)}, false)
		c.Push(v)
	}
	// Versions with Begin 1 and 2 are below the newest superseded (Begin
	// 3) once the watermark covers batch 3.
	head, n := c.CollectReclaim(3)
	if n != 2 || head == nil {
		t.Fatalf("CollectReclaim = (%v, %d), want 2 versions", head, n)
	}
	p.Retire(head, 5)

	// Not yet released: allocation must come from fresh memory.
	v := p.NewPlaceholder(10, 10, nil)
	if pooled, _, _ := p.Stats(); pooled != 0 {
		t.Fatalf("allocation before Release came from the pool (pooled=%d)", pooled)
	}
	_ = v

	p.Release(4) // below the retire seq: still nothing freed
	p.NewPlaceholder(11, 11, nil)
	if pooled, _, _ := p.Stats(); pooled != 0 {
		t.Fatalf("Release below the retire seq freed versions (pooled=%d)", pooled)
	}

	p.Release(5)
	if _, recycled, _ := p.Stats(); recycled != 2 {
		t.Fatalf("recycled = %d, want 2", recycled)
	}
	got := p.NewPlaceholder(12, 12, nil)
	if pooled, _, _ := p.Stats(); pooled != 1 {
		t.Fatalf("allocation after Release bypassed the pool (pooled=%d)", pooled)
	}
	if got.Ready() || got.Prev() != nil || got.End() != TsInfinity {
		t.Fatalf("recycled version not reset: ready=%v prev=%v end=%d", got.Ready(), got.Prev(), got.End())
	}
	if got.Begin != 12 || got.Batch != 12 {
		t.Fatalf("recycled version stamps: begin=%d batch=%d", got.Begin, got.Batch)
	}
	if d, tomb := got.Data(); d != nil || tomb {
		// Data must not leak across incarnations (read is pre-Ready here,
		// but the slot's raw contents are what we are checking).
		t.Fatalf("recycled version leaked data %v tomb %v", d, tomb)
	}
}

// TestVersionPoolRetireCoalesces checks that multiple retire calls under
// one batch seq coalesce and all release together.
func TestVersionPoolRetireCoalesces(t *testing.T) {
	p := NewVersionPool()
	mkList := func(n int) *Version {
		var head *Version
		for i := 0; i < n; i++ {
			v := p.NewPlaceholder(uint64(i+1), 1, nil)
			v.prev.Store(head)
			head = v
		}
		return head
	}
	p.Retire(mkList(3), 7)
	p.Retire(mkList(2), 7)
	p.Retire(mkList(1), 9)
	p.Release(7)
	if _, recycled, _ := p.Stats(); recycled != 5 {
		t.Fatalf("recycled = %d, want 5 (the two seq-7 generations)", recycled)
	}
	p.Release(9)
	if _, recycled, _ := p.Stats(); recycled != 6 {
		t.Fatalf("recycled = %d, want 6", recycled)
	}
}

// TestCollectReclaimMatchesCollect checks the reclaiming variant cuts
// exactly what Collect cuts and hands back a correctly linked sublist.
func TestCollectReclaimMatchesCollect(t *testing.T) {
	build := func() *Chain {
		c := NewChain(NewLoadedVersion([]byte{0}))
		for i := 1; i <= 5; i++ {
			v := NewPlaceholder(uint64(i*10), uint64(i), nil)
			v.Install([]byte{byte(i)}, false)
			c.Push(v)
		}
		return c
	}
	c1, c2 := build(), build()
	n1 := c1.Collect(3)
	head, n2 := c2.CollectReclaim(3)
	if n1 != n2 {
		t.Fatalf("Collect=%d CollectReclaim=%d", n1, n2)
	}
	got := 0
	for v := head; v != nil; v = v.Prev() {
		got++
	}
	if got != n2 {
		t.Fatalf("reclaim list has %d versions, count says %d", got, n2)
	}
	if c1.Len() != c2.Len() {
		t.Fatalf("chains diverge after cut: %d vs %d", c1.Len(), c2.Len())
	}
}

// TestVersionPoolTrimsAfterBurst: a burst that floods the free list far
// beyond steady-state demand is trimmed back (in whole block multiples)
// within one trim window, so slab memory can return to the runtime; a
// free list matched to demand is left alone.
func TestVersionPoolTrimsAfterBurst(t *testing.T) {
	p := NewVersionPool()
	c := NewChain(nil)
	// Burst: create and immediately supersede far more versions than one
	// block, then reclaim them all into the free list.
	const burst = 4 * defaultVersionBlock
	for i := 1; i <= burst; i++ {
		v := p.NewPlaceholder(uint64(i), uint64(i), nil)
		v.Install(nil, false)
		c.Push(v)
	}
	head, n := c.CollectReclaim(uint64(burst))
	if n != burst-2 {
		t.Fatalf("CollectReclaim freed %d, want %d", n, burst-2)
	}
	p.Retire(head, uint64(burst))
	p.Release(uint64(burst))
	if _, recycled, _ := p.Stats(); int(recycled) != burst-2 {
		t.Fatalf("recycled = %d, want %d", recycled, burst-2)
	}
	freeAfterBurst := len(p.free)

	// Steady state: tiny demand per release window. The first window
	// check must trim the surplus down to demand + one block of slack.
	for w := 0; w < 2; w++ {
		for r := 0; r < trimCheckEvery; r++ {
			p.NewPlaceholder(uint64(burst+10+w*trimCheckEvery+r), uint64(burst+10), nil)
			p.Release(uint64(burst))
		}
	}
	_, _, trimmed := p.Stats()
	if trimmed == 0 {
		t.Fatalf("trimmed = 0 after a %d-version burst and quiet windows (free was %d)", burst, freeAfterBurst)
	}
	if len(p.free) > trimCheckEvery+2*defaultVersionBlock {
		t.Fatalf("free list = %d after trim, want near the window demand (%d)", len(p.free), trimCheckEvery)
	}

	// A busy window must not trim: demand covers the whole free list.
	before := trimmed
	for r := 0; r < trimCheckEvery; r++ {
		for j := 0; j < 8; j++ {
			p.NewPlaceholder(uint64(2*burst+r*8+j), uint64(2*burst), nil)
		}
		p.Release(uint64(burst))
	}
	if _, _, after := p.Stats(); after != before {
		t.Fatalf("busy window trimmed %d blocks", after-before)
	}
}
