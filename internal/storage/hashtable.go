// Package storage provides the data substrates the engines are built on:
// a latch-free insert-only hash index, BOHM-style multiversion chains, and
// an in-place single-version record store used by the single-versioned
// baselines (OCC, 2PL).
//
// The hash index follows the design the paper relies on (§3.3.1): a
// standard latch-free hash table where structural modifications are made by
// a single writer per partition and concurrent readers "need only spin on
// inconsistent or stale data".
package storage

import (
	"errors"
	"sync/atomic"

	"bohm/internal/txn"
)

// ErrTableFull is returned by Insert when the hash table has no free slot
// for a new key. Tables are sized at creation; this repository's engines
// size them for the declared table capacity plus headroom.
var ErrTableFull = errors.New("storage: hash table full")

// Slot states for the latch-free hash table. A slot moves empty→busy→ready
// exactly once; readers that observe busy spin briefly, readers that
// observe empty stop probing (insert-only table, so an empty slot
// terminates every probe sequence that could contain the key).
const (
	slotEmpty uint32 = iota
	slotBusy
	slotReady
)

type slot[V any] struct {
	state atomic.Uint32
	table uint32
	id    uint64
	val   atomic.Pointer[V]
}

// Map is a fixed-capacity, insert-only, latch-free hash table from txn.Key
// to *V. Concurrent readers never block writers and never take latches;
// inserts synchronize with a single CAS per slot claim. Get is wait-free
// except when racing the two-word key publication of an in-flight insert,
// where it spins (the paper's "readers spin on inconsistent data").
type Map[V any] struct {
	slots []slot[V]
	mask  uint64
	used  atomic.Int64
	limit int64
}

// NewMap creates a table with capacity for at least n entries. The slot
// array is sized to the next power of two of 2n so probe sequences stay
// short; inserts beyond n still succeed until the array is 7/8 full.
func NewMap[V any](n int) *Map[V] {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < 2*n {
		size <<= 1
	}
	return &Map[V]{
		slots: make([]slot[V], size),
		mask:  uint64(size - 1),
		limit: int64(size) * 7 / 8,
	}
}

// Len returns the number of keys inserted so far.
func (m *Map[V]) Len() int { return int(m.used.Load()) }

// Cap returns the insert limit of the table.
func (m *Map[V]) Cap() int { return int(m.limit) }

// Get returns the value for k, or nil if k has not been inserted.
func (m *Map[V]) Get(k txn.Key) *V {
	i := k.Hash() & m.mask
	for {
		s := &m.slots[i]
		switch s.state.Load() {
		case slotEmpty:
			return nil
		case slotReady:
			if s.table == k.Table && s.id == k.ID {
				return s.val.Load()
			}
		default: // slotBusy: key words mid-publication; spin on this slot.
			continue
		}
		i = (i + 1) & m.mask
	}
}

// Insert associates v with k. If k is already present the existing value
// pointer is returned along with false; otherwise (nil recorded as v's
// predecessor) v is installed and Insert returns v and true. Insert is safe
// for concurrent use by multiple writers, although the BOHM engine only
// ever has one writer per partition.
func (m *Map[V]) Insert(k txn.Key, v *V) (*V, bool, error) {
	if m.used.Load() >= m.limit {
		return nil, false, ErrTableFull
	}
	i := k.Hash() & m.mask
	for {
		s := &m.slots[i]
		switch s.state.Load() {
		case slotEmpty:
			if s.state.CompareAndSwap(slotEmpty, slotBusy) {
				s.table = k.Table
				s.id = k.ID
				s.val.Store(v)
				s.state.Store(slotReady)
				m.used.Add(1)
				return v, true, nil
			}
			continue // lost the race for this slot; re-inspect it
		case slotReady:
			if s.table == k.Table && s.id == k.ID {
				return s.val.Load(), false, nil
			}
		default:
			continue // publication in flight
		}
		i = (i + 1) & m.mask
	}
}

// GetOrInsert returns the existing value for k, or installs the value
// produced by mk (called at most once) if k is absent. The second result
// reports whether this call inserted the key — the hook the two-tier index
// uses to register first-ever keys in the ordered directory exactly once.
func (m *Map[V]) GetOrInsert(k txn.Key, mk func() *V) (*V, bool, error) {
	if v := m.Get(k); v != nil {
		return v, false, nil
	}
	return m.Insert(k, mk())
}

// Range calls f for every entry currently in the table, stopping early if
// f returns false. It observes entries that were fully inserted before the
// call; entries inserted concurrently may or may not be visited.
func (m *Map[V]) Range(f func(k txn.Key, v *V) bool) {
	for i := range m.slots {
		s := &m.slots[i]
		if s.state.Load() != slotReady {
			continue
		}
		if !f(txn.Key{Table: s.table, ID: s.id}, s.val.Load()) {
			return
		}
	}
}
