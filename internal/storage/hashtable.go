// Package storage provides the data substrates the engines are built on:
// a latch-free hash index, BOHM-style multiversion chains, and an in-place
// single-version record store used by the single-versioned baselines
// (OCC, 2PL).
//
// The hash index follows the design the paper relies on (§3.3.1): a
// standard latch-free hash table where structural modifications are made by
// a single writer per partition and concurrent readers "need only spin on
// inconsistent or stale data". It additionally supports deletion — the
// index-lifecycle subsystem reclaims dead keys — under the same
// single-writer-per-partition discipline.
package storage

import (
	"errors"
	"sync/atomic"

	"bohm/internal/txn"
)

// ErrTableFull is returned by Insert when the hash table has no free slot
// for a new key. Tables are sized at creation; this repository's engines
// size them for the declared table capacity plus headroom.
var ErrTableFull = errors.New("storage: hash table full")

// Slot state tags, packed into the low bits of the slot word; the high
// bits carry a generation counter bumped on every transition out of empty,
// ready or deleted, so a reader can detect that a slot changed under it.
//
// A slot cycles empty→busy→ready, then (with deletion) ready→deleted and
// deleted→busy→ready on reuse. Readers that observe busy spin briefly;
// readers that observe empty stop probing (within one slot array a slot
// never returns to empty except by tombstone absorption, which preserves
// the probe invariant — see absorb); readers that observe deleted skip the
// slot but keep probing.
const (
	slotEmpty uint32 = iota
	slotBusy
	slotReady
	slotDeleted

	slotTagMask uint32 = 3
	slotGenUnit uint32 = 4 // one generation increment
)

// slot key words (table, id) are atomics: slot reuse rewrites them while
// readers of an older generation may still be comparing them, and the
// generation re-check only makes that safe if the individual reads are
// tear-free. The pairing of the two words is still guarded by the
// generation protocol, not by the individual atomics.
type slot[V any] struct {
	state atomic.Uint32
	table atomic.Uint32
	id    atomic.Uint64
	val   atomic.Pointer[V]
}

// keyIs reports whether the slot's key words currently equal k. Callers
// must validate the slot generation afterwards to trust the pair.
func (s *slot[V]) keyIs(k txn.Key) bool {
	return s.table.Load() == k.Table && s.id.Load() == k.ID
}

func (s *slot[V]) setKey(k txn.Key) {
	s.table.Store(k.Table)
	s.id.Store(k.ID)
}

// slotArr is one immutable-size probe array. The Map swaps in a freshly
// compacted array when tombstones have eaten too many probe terminators;
// a reader that loaded the old array finishes its probe on a frozen,
// consistent snapshot (the writer never touches an array after replacing
// it).
type slotArr[V any] struct {
	slots []slot[V]
	mask  uint64
}

// Map is a fixed-capacity, latch-free hash table from txn.Key to *V.
// Concurrent readers never block writers and never take latches; inserts
// synchronize with a single CAS per slot claim. Get is wait-free except
// when racing the two-word key publication of an in-flight insert, where
// it spins (the paper's "readers spin on inconsistent data").
//
// Deletion reclaims slots: Delete marks the slot deleted (probes skip it)
// and a later Insert may reuse it for a fresh key. Because reuse rewrites
// the slot's key words, readers validate the slot's generation after
// reading them — a mismatch means the slot changed mid-read and the probe
// re-inspects it. Two mechanisms keep unbounded churn from degrading the
// table: deletes absorb tombstone runs that end at an empty slot back
// into empty (probe terminators return), and when tombstones pinned
// behind live clusters still drain the empty reserve, the writer compacts
// into a fresh slot array and atomically swaps it in. Readers holding the
// old array see a complete snapshot as of the swap; entries inserted
// after the swap are invisible to them, which the engine's phase ordering
// makes irrelevant (a reader that requires a key has a happens-before
// edge from the key's insert, so it loads the new array).
//
// Delete, deleted-slot reuse and compaction require a single writer per
// map (BOHM's per-partition CC worker); maps that are never deleted from
// keep the original multi-writer insert safety.
type Map[V any] struct {
	arr   atomic.Pointer[slotArr[V]]
	used  atomic.Int64
	limit int64
	// empties counts slots still in (or returned to) the empty state in
	// the current array — the probe terminators. Fresh inserts consume
	// them; absorption and compaction restore them.
	empties  atomic.Int64
	rebuilds atomic.Uint64
}

// NewMap creates a table with capacity for at least n entries. The slot
// array is sized to the next power of two of 2n so probe sequences stay
// short; inserts beyond n still succeed until the array is 7/8 full.
func NewMap[V any](n int) *Map[V] {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < 2*n {
		size <<= 1
	}
	m := &Map[V]{limit: int64(size) * 7 / 8}
	m.arr.Store(&slotArr[V]{slots: make([]slot[V], size), mask: uint64(size - 1)})
	m.empties.Store(int64(size))
	return m
}

// Len returns the number of keys currently present (inserted and not
// deleted).
func (m *Map[V]) Len() int { return int(m.used.Load()) }

// Cap returns the insert limit of the table.
func (m *Map[V]) Cap() int { return int(m.limit) }

// Rebuilds returns the number of compaction swaps performed.
func (m *Map[V]) Rebuilds() uint64 { return m.rebuilds.Load() }

// Get returns the value for k, or nil if k is not present.
func (m *Map[V]) Get(k txn.Key) *V { return m.GetHashed(k, k.Hash()) }

// GetHashed is Get with the caller supplying k.Hash(). The engine's CC
// kernels compute each key's hash exactly once (partition selection needs
// it anyway) and thread it through every index touch, so a plan item never
// pays the hash function twice.
func (m *Map[V]) GetHashed(k txn.Key, h uint64) *V {
	a := m.arr.Load()
	i := h & a.mask
	for {
		s := &a.slots[i]
		st := s.state.Load()
		switch st & slotTagMask {
		case slotEmpty:
			return nil
		case slotReady:
			if s.keyIs(k) {
				v := s.val.Load()
				if s.state.Load() != st {
					continue // slot mutated mid-read; re-inspect it
				}
				return v
			}
			// The key words only count if the slot did not change while we
			// compared them (a deleted slot reused for another key rewrites
			// them); a stable mismatch advances the probe.
			if s.state.Load() != st {
				continue
			}
		case slotDeleted:
			// Skip, but keep probing: the key may live past this slot.
		default: // slotBusy: key words mid-publication; spin on this slot.
			continue
		}
		i = (i + 1) & a.mask
	}
}

// Insert associates v with k. If k is already present the existing value
// pointer is returned along with false; otherwise v is installed and
// Insert returns v and true. Insert prefers reusing a deleted slot on the
// probe path over claiming a fresh empty one, so a table under
// insert/delete churn converges to a stable slot population instead of
// filling up; when pinned tombstones have drained the empty reserve
// anyway, the writer compacts the array first. Concurrent inserters are
// safe with each other only while the map holds no deleted slots (see
// Delete).
func (m *Map[V]) Insert(k txn.Key, v *V) (*V, bool, error) {
	return m.InsertHashed(k, k.Hash(), v)
}

// InsertHashed is Insert with the caller supplying k.Hash(); see GetHashed.
func (m *Map[V]) InsertHashed(k txn.Key, h uint64, v *V) (*V, bool, error) {
	if m.used.Load() >= m.limit {
		return nil, false, ErrTableFull
	}
	a := m.arr.Load()
	i := h & a.mask
	var reuse *slot[V]
	var reuseSt uint32
	for {
		s := &a.slots[i]
		st := s.state.Load()
		switch st & slotTagMask {
		case slotEmpty:
			if reuse != nil {
				// The key is absent (an empty slot ends its probe sequence);
				// take the first deleted slot seen instead of consuming a
				// fresh one.
				if !reuse.state.CompareAndSwap(reuseSt, reuseSt-(reuseSt&slotTagMask)+slotGenUnit+slotBusy) {
					// Only possible under a (forbidden) concurrent writer;
					// fall through to claiming the empty slot for safety.
					reuse = nil
					continue
				}
				reuse.setKey(k)
				reuse.val.Store(v)
				reuse.state.Add(slotGenUnit + slotReady - slotBusy)
				m.used.Add(1)
				return v, true, nil
			}
			// Preserve a reserve of empty slots — they are what terminates
			// a probe for an absent key. Insert-only tables never get near
			// the floor (the used limit trips first); churn tables compact
			// and retry.
			if m.empties.Load() <= int64(len(a.slots)/16) {
				m.compact()
				return m.InsertHashed(k, h, v)
			}
			if s.state.CompareAndSwap(st, st+slotGenUnit+slotBusy) {
				m.empties.Add(-1)
				s.setKey(k)
				s.val.Store(v)
				s.state.Add(slotGenUnit + slotReady - slotBusy)
				m.used.Add(1)
				return v, true, nil
			}
			continue // lost the race for this slot; re-inspect it
		case slotReady:
			if s.keyIs(k) {
				ex := s.val.Load()
				if s.state.Load() != st {
					continue
				}
				return ex, false, nil
			}
			if s.state.Load() != st {
				continue
			}
		case slotDeleted:
			if reuse == nil {
				reuse, reuseSt = s, st
			}
		default:
			continue // publication in flight
		}
		i = (i + 1) & a.mask
	}
}

// GetOrInsert returns the existing value for k, or installs the value
// produced by mk (called at most once) if k is absent. The second result
// reports whether this call inserted the key — the hook the two-tier index
// uses to register first-ever keys in the ordered directory exactly once.
func (m *Map[V]) GetOrInsert(k txn.Key, mk func() *V) (*V, bool, error) {
	return m.GetOrInsertHashed(k, k.Hash(), mk)
}

// GetOrInsertHashed is GetOrInsert with the caller supplying k.Hash(); see
// GetHashed.
func (m *Map[V]) GetOrInsertHashed(k txn.Key, h uint64, mk func() *V) (*V, bool, error) {
	if v := m.GetHashed(k, h); v != nil {
		return v, false, nil
	}
	return m.InsertHashed(k, h, mk())
}

// Delete removes k, returning its value and whether it was present. The
// slot is marked deleted — probes skip it, and a later Insert of any key
// may reuse it. Delete requires the map's single-writer discipline: no
// concurrent Insert or Delete may run (concurrent readers are fine; the
// generation bump makes them re-inspect the slot).
func (m *Map[V]) Delete(k txn.Key) (*V, bool) { return m.DeleteHashed(k, k.Hash()) }

// DeleteHashed is Delete with the caller supplying k.Hash(); see GetHashed.
func (m *Map[V]) DeleteHashed(k txn.Key, h uint64) (*V, bool) {
	a := m.arr.Load()
	i := h & a.mask
	for {
		s := &a.slots[i]
		st := s.state.Load()
		switch st & slotTagMask {
		case slotEmpty:
			return nil, false
		case slotReady:
			if s.keyIs(k) {
				v := s.val.Load()
				// Generation bump + deleted tag in one store: readers that
				// passed the ready check re-inspect and see the deletion.
				s.state.Store(st - slotReady + slotGenUnit + slotDeleted)
				s.val.Store(nil)
				m.used.Add(-1)
				m.absorb(a, i)
				return v, true
			}
		case slotDeleted:
			// Skip and keep probing.
		default:
			continue // publication in flight (foreign writer); spin
		}
		i = (i + 1) & a.mask
	}
}

// absorb converts the run of deleted slots ending at i back to empty when
// the following slot is empty, restoring probe terminators so tombstones
// adjacent to cluster ends do not accumulate.
//
// Correctness against concurrent lock-free readers rests on the probe
// invariant: for every present key, no slot strictly between its home and
// its residence is empty (probes may stop at the first empty slot).
// Converting slot i is safe when slot i+1 is empty — a present key whose
// probe window passed through i would have to pass through (or reside at)
// i+1, and an empty interior slot would already violate the invariant
// while an empty residence is impossible; inductively no such key exists,
// so no reader's early stop at i can hide one.
func (m *Map[V]) absorb(a *slotArr[V], i uint64) {
	if a.slots[(i+1)&a.mask].state.Load()&slotTagMask != slotEmpty {
		return
	}
	for {
		s := &a.slots[i]
		st := s.state.Load()
		if st&slotTagMask != slotDeleted {
			return
		}
		s.state.Store(st - slotDeleted + slotGenUnit + slotEmpty)
		m.empties.Add(1)
		i = (i - 1) & a.mask
	}
}

// compact rebuilds the table into a fresh slot array without tombstones
// and atomically swaps it in. Amortized O(1) per insert: a compaction
// restores every tombstone to empty, and the next one cannot trigger
// before that many fresh empty slots have been consumed again.
//
// Readers are never blocked: one that loaded the old array mid-probe
// finishes on a frozen snapshot (the writer abandons the old array
// untouched), missing only keys inserted after the swap — and any reader
// the engine requires to see such a key has a happens-before edge from
// that insert (batch barrier or snapshot establishment) to its probe, so
// it loads the new array. Requires the single-writer discipline, like
// Delete.
func (m *Map[V]) compact() {
	old := m.arr.Load()
	size := len(old.slots)
	na := &slotArr[V]{slots: make([]slot[V], size), mask: old.mask}
	empties := int64(size)
	for i := range old.slots {
		s := &old.slots[i]
		if s.state.Load()&slotTagMask != slotReady {
			continue
		}
		k := txn.Key{Table: s.table.Load(), ID: s.id.Load()}
		j := k.Hash() & na.mask
		for na.slots[j].state.Load()&slotTagMask != slotEmpty {
			j = (j + 1) & na.mask
		}
		ns := &na.slots[j]
		ns.setKey(k)
		ns.val.Store(s.val.Load())
		ns.state.Store(slotGenUnit | slotReady)
		empties--
	}
	m.empties.Store(empties)
	m.arr.Store(na)
	m.rebuilds.Add(1)
}

// Range calls f for every entry currently in the table, stopping early if
// f returns false. It observes entries that were fully inserted before the
// call; entries inserted or deleted concurrently may or may not be
// visited. Entries whose slot churns mid-read are re-inspected so f never
// sees a torn key/value pair.
func (m *Map[V]) Range(f func(k txn.Key, v *V) bool) {
	a := m.arr.Load()
	for i := range a.slots {
		s := &a.slots[i]
		for {
			st := s.state.Load()
			if st&slotTagMask != slotReady {
				break
			}
			k := txn.Key{Table: s.table.Load(), ID: s.id.Load()}
			v := s.val.Load()
			if s.state.Load() != st {
				continue // slot churned mid-read; re-inspect
			}
			if !f(k, v) {
				return
			}
			break
		}
	}
}
