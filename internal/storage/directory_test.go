package storage

import (
	"math/rand"
	"sync"
	"testing"

	"bohm/internal/txn"
)

func TestDirectoryOrderedIteration(t *testing.T) {
	d := NewDirectory()
	ids := rand.New(rand.NewSource(1)).Perm(500)
	for _, id := range ids {
		if !d.Insert(txn.Key{Table: uint32(id % 3), ID: uint64(id)}) {
			t.Fatalf("fresh insert of %d reported present", id)
		}
	}
	if d.Insert(txn.Key{Table: 1, ID: uint64(firstWithMod(ids, 1))}) {
		t.Fatal("re-insert reported absent")
	}
	if d.Len() != 500 {
		t.Fatalf("Len = %d, want 500", d.Len())
	}
	// Full-range iteration per table is sorted and complete.
	for table := uint32(0); table < 3; table++ {
		var prev uint64
		first := true
		n := 0
		d.AscendRange(txn.KeyRange{Table: table, Lo: 0, Hi: 1 << 62}, func(k txn.Key) bool {
			if k.Table != table {
				t.Fatalf("table %d iteration yielded table %d", table, k.Table)
			}
			if !first && k.ID <= prev {
				t.Fatalf("out of order: %d after %d", k.ID, prev)
			}
			prev, first = k.ID, false
			n++
			return true
		})
		want := 0
		for _, id := range ids {
			if uint32(id%3) == table {
				want++
			}
		}
		if n != want {
			t.Fatalf("table %d: visited %d keys, want %d", table, n, want)
		}
	}
}

func firstWithMod(ids []int, m int) int {
	for _, id := range ids {
		if id%3 == m {
			return id
		}
	}
	return -1
}

func TestDirectoryRangeBounds(t *testing.T) {
	d := NewDirectory()
	for i := 0; i < 100; i += 10 {
		d.Insert(txn.Key{Table: 5, ID: uint64(i)})
	}
	d.Insert(txn.Key{Table: 4, ID: 25}) // other tables must not leak in
	d.Insert(txn.Key{Table: 6, ID: 25})
	var got []uint64
	d.AscendRange(txn.KeyRange{Table: 5, Lo: 20, Hi: 60}, func(k txn.Key) bool {
		got = append(got, k.ID)
		return true
	})
	want := []uint64{20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if k, ok := d.Next(txn.Key{Table: 5, ID: 31}); !ok || k.ID != 40 {
		t.Fatalf("Next(31) = %v %v, want 40", k, ok)
	}
	if !d.Contains(txn.Key{Table: 5, ID: 50}) || d.Contains(txn.Key{Table: 5, ID: 51}) {
		t.Fatal("Contains misreported")
	}
	// Early stop.
	n := 0
	d.AscendRange(txn.KeyRange{Table: 5, Lo: 0, Hi: 100}, func(txn.Key) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestDirectoryConcurrentReadersDuringInserts: readers iterate while a
// writer inserts; every key inserted before a reader's pass must be seen,
// and iteration stays sorted. Run with -race.
func TestDirectoryConcurrentReadersDuringInserts(t *testing.T) {
	d := NewDirectory()
	const n = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev txn.Key
				first := true
				d.AscendRange(txn.KeyRange{Table: 0, Lo: 0, Hi: n}, func(k txn.Key) bool {
					if !first && !prev.Less(k) {
						t.Error("concurrent iteration out of order")
						return false
					}
					prev, first = k, false
					return true
				})
			}
		}()
	}
	// Single writer, shuffled inserts.
	ids := rand.New(rand.NewSource(7)).Perm(n)
	for _, id := range ids {
		d.Insert(txn.Key{Table: 0, ID: uint64(id)})
	}
	close(stop)
	wg.Wait()
	// After quiescence every key is visible, in order.
	count := 0
	d.AscendRange(txn.KeyRange{Table: 0, Lo: 0, Hi: n}, func(k txn.Key) bool {
		count++
		return true
	})
	if count != n {
		t.Fatalf("visited %d keys after quiescence, want %d", count, n)
	}
}

// TestDirectoryFence checks the min/max key fence: exclusion must be
// exact on an empty directory, widen with inserts, and never exclude a
// range that holds a present key.
func TestDirectoryFence(t *testing.T) {
	d := NewDirectory()
	if _, _, ok := d.Bounds(); ok {
		t.Fatal("Bounds ok on empty directory")
	}
	if !d.ExcludesRange(txn.KeyRange{Table: 0, Lo: 0, Hi: 1 << 60}) {
		t.Fatal("empty directory must exclude every range")
	}

	d.Insert(txn.Key{Table: 1, ID: 100})
	d.Insert(txn.Key{Table: 1, ID: 200})
	mn, mx, ok := d.Bounds()
	if !ok || mn != (txn.Key{Table: 1, ID: 100}) || mx != (txn.Key{Table: 1, ID: 200}) {
		t.Fatalf("Bounds = %v %v %v", mn, mx, ok)
	}

	cases := []struct {
		r       txn.KeyRange
		exclude bool
	}{
		{txn.KeyRange{Table: 1, Lo: 0, Hi: 100}, true},     // ends at min (exclusive)
		{txn.KeyRange{Table: 1, Lo: 0, Hi: 101}, false},    // covers min
		{txn.KeyRange{Table: 1, Lo: 201, Hi: 300}, true},   // starts past max
		{txn.KeyRange{Table: 1, Lo: 200, Hi: 300}, false},  // covers max
		{txn.KeyRange{Table: 1, Lo: 120, Hi: 150}, false},  // inside fence (maybe empty, still not excluded)
		{txn.KeyRange{Table: 0, Lo: 0, Hi: 1 << 62}, true}, // whole other table below min
		{txn.KeyRange{Table: 2, Lo: 0, Hi: 1 << 62}, true}, // whole other table above max
		{txn.KeyRange{Table: 1, Lo: 5, Hi: 5}, true},       // empty range
	}
	for _, c := range cases {
		if got := d.ExcludesRange(c.r); got != c.exclude {
			t.Errorf("ExcludesRange(%v) = %v, want %v", c.r, got, c.exclude)
		}
	}

	// Widening: a smaller and a larger key move the fence.
	d.Insert(txn.Key{Table: 0, ID: 7})
	d.Insert(txn.Key{Table: 2, ID: 9})
	if d.ExcludesRange(txn.KeyRange{Table: 0, Lo: 7, Hi: 8}) {
		t.Fatal("fence did not widen downward")
	}
	if d.ExcludesRange(txn.KeyRange{Table: 2, Lo: 9, Hi: 10}) {
		t.Fatal("fence did not widen upward")
	}
}

// TestDirectoryFenceNeverExcludesPresentKey cross-checks exclusion
// against a live walk under random inserts: any range the fence excludes
// must have an empty walk.
func TestDirectoryFenceNeverExcludesPresentKey(t *testing.T) {
	d := NewDirectory()
	rng := rand.New(rand.NewSource(42))
	present := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		id := uint64(rng.Intn(10_000))
		d.Insert(txn.Key{Table: 3, ID: id})
		present[id] = true
		lo := uint64(rng.Intn(10_000))
		r := txn.KeyRange{Table: 3, Lo: lo, Hi: lo + uint64(rng.Intn(50))}
		if d.ExcludesRange(r) {
			n := 0
			d.AscendRange(r, func(txn.Key) bool { n++; return false })
			if n != 0 {
				t.Fatalf("fence excluded %v but the walk found %d key(s)", r, n)
			}
		}
	}
}
