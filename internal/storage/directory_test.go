package storage

import (
	"math/rand"
	"sync"
	"testing"

	"bohm/internal/txn"
)

func TestDirectoryOrderedIteration(t *testing.T) {
	d := NewDirectory()
	ids := rand.New(rand.NewSource(1)).Perm(500)
	for _, id := range ids {
		if !d.Insert(txn.Key{Table: uint32(id % 3), ID: uint64(id)}) {
			t.Fatalf("fresh insert of %d reported present", id)
		}
	}
	if d.Insert(txn.Key{Table: 1, ID: uint64(firstWithMod(ids, 1))}) {
		t.Fatal("re-insert reported absent")
	}
	if d.Len() != 500 {
		t.Fatalf("Len = %d, want 500", d.Len())
	}
	// Full-range iteration per table is sorted and complete.
	for table := uint32(0); table < 3; table++ {
		var prev uint64
		first := true
		n := 0
		d.AscendRange(txn.KeyRange{Table: table, Lo: 0, Hi: 1 << 62}, func(k txn.Key) bool {
			if k.Table != table {
				t.Fatalf("table %d iteration yielded table %d", table, k.Table)
			}
			if !first && k.ID <= prev {
				t.Fatalf("out of order: %d after %d", k.ID, prev)
			}
			prev, first = k.ID, false
			n++
			return true
		})
		want := 0
		for _, id := range ids {
			if uint32(id%3) == table {
				want++
			}
		}
		if n != want {
			t.Fatalf("table %d: visited %d keys, want %d", table, n, want)
		}
	}
}

func firstWithMod(ids []int, m int) int {
	for _, id := range ids {
		if id%3 == m {
			return id
		}
	}
	return -1
}

func TestDirectoryRangeBounds(t *testing.T) {
	d := NewDirectory()
	for i := 0; i < 100; i += 10 {
		d.Insert(txn.Key{Table: 5, ID: uint64(i)})
	}
	d.Insert(txn.Key{Table: 4, ID: 25}) // other tables must not leak in
	d.Insert(txn.Key{Table: 6, ID: 25})
	var got []uint64
	d.AscendRange(txn.KeyRange{Table: 5, Lo: 20, Hi: 60}, func(k txn.Key) bool {
		got = append(got, k.ID)
		return true
	})
	want := []uint64{20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if k, ok := d.Next(txn.Key{Table: 5, ID: 31}); !ok || k.ID != 40 {
		t.Fatalf("Next(31) = %v %v, want 40", k, ok)
	}
	if !d.Contains(txn.Key{Table: 5, ID: 50}) || d.Contains(txn.Key{Table: 5, ID: 51}) {
		t.Fatal("Contains misreported")
	}
	// Early stop.
	n := 0
	d.AscendRange(txn.KeyRange{Table: 5, Lo: 0, Hi: 100}, func(txn.Key) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestDirectoryConcurrentReadersDuringInserts: readers iterate while a
// writer inserts; every key inserted before a reader's pass must be seen,
// and iteration stays sorted. Run with -race.
func TestDirectoryConcurrentReadersDuringInserts(t *testing.T) {
	d := NewDirectory()
	const n = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev txn.Key
				first := true
				d.AscendRange(txn.KeyRange{Table: 0, Lo: 0, Hi: n}, func(k txn.Key) bool {
					if !first && !prev.Less(k) {
						t.Error("concurrent iteration out of order")
						return false
					}
					prev, first = k, false
					return true
				})
			}
		}()
	}
	// Single writer, shuffled inserts.
	ids := rand.New(rand.NewSource(7)).Perm(n)
	for _, id := range ids {
		d.Insert(txn.Key{Table: 0, ID: uint64(id)})
	}
	close(stop)
	wg.Wait()
	// After quiescence every key is visible, in order.
	count := 0
	d.AscendRange(txn.KeyRange{Table: 0, Lo: 0, Hi: n}, func(k txn.Key) bool {
		count++
		return true
	})
	if count != n {
		t.Fatalf("visited %d keys after quiescence, want %d", count, n)
	}
}

// TestDirectoryFence checks the min/max key fence: exclusion must be
// exact on an empty directory, widen with inserts, and never exclude a
// range that holds a present key.
func TestDirectoryFence(t *testing.T) {
	d := NewDirectory()
	if _, _, ok := d.Bounds(); ok {
		t.Fatal("Bounds ok on empty directory")
	}
	if !d.ExcludesRange(txn.KeyRange{Table: 0, Lo: 0, Hi: 1 << 60}) {
		t.Fatal("empty directory must exclude every range")
	}

	d.Insert(txn.Key{Table: 1, ID: 100})
	d.Insert(txn.Key{Table: 1, ID: 200})
	mn, mx, ok := d.Bounds()
	if !ok || mn != (txn.Key{Table: 1, ID: 100}) || mx != (txn.Key{Table: 1, ID: 200}) {
		t.Fatalf("Bounds = %v %v %v", mn, mx, ok)
	}

	cases := []struct {
		r       txn.KeyRange
		exclude bool
	}{
		{txn.KeyRange{Table: 1, Lo: 0, Hi: 100}, true},     // ends at min (exclusive)
		{txn.KeyRange{Table: 1, Lo: 0, Hi: 101}, false},    // covers min
		{txn.KeyRange{Table: 1, Lo: 201, Hi: 300}, true},   // starts past max
		{txn.KeyRange{Table: 1, Lo: 200, Hi: 300}, false},  // covers max
		{txn.KeyRange{Table: 1, Lo: 120, Hi: 150}, true},   // mid-keyspace gap: sharded slots see it is empty
		{txn.KeyRange{Table: 0, Lo: 0, Hi: 1 << 62}, true}, // whole other table below min
		{txn.KeyRange{Table: 2, Lo: 0, Hi: 1 << 62}, true}, // whole other table above max
		{txn.KeyRange{Table: 1, Lo: 5, Hi: 5}, true},       // empty range
	}
	for _, c := range cases {
		if got := d.ExcludesRange(c.r); got != c.exclude {
			t.Errorf("ExcludesRange(%v) = %v, want %v", c.r, got, c.exclude)
		}
	}

	// Widening: a smaller and a larger key move the fence.
	d.Insert(txn.Key{Table: 0, ID: 7})
	d.Insert(txn.Key{Table: 2, ID: 9})
	if d.ExcludesRange(txn.KeyRange{Table: 0, Lo: 7, Hi: 8}) {
		t.Fatal("fence did not widen downward")
	}
	if d.ExcludesRange(txn.KeyRange{Table: 2, Lo: 9, Hi: 10}) {
		t.Fatal("fence did not widen upward")
	}
}

// TestDirectoryRemove checks removal end-to-end: the key disappears from
// iteration, Len and Contains, the fence shrinks back (including to empty
// when a shard's last key goes), and re-insertion works.
func TestDirectoryRemove(t *testing.T) {
	d := NewDirectory()
	for i := 0; i < 100; i++ {
		d.Insert(txn.Key{Table: 1, ID: uint64(i)})
	}
	if _, ok := d.Remove(txn.Key{Table: 1, ID: 200}); ok {
		t.Fatal("removed an absent key")
	}
	if _, ok := d.Remove(txn.Key{Table: 2, ID: 5}); ok {
		t.Fatal("removed a key of an absent table")
	}
	for i := 0; i < 100; i += 2 {
		bytes, ok := d.Remove(txn.Key{Table: 1, ID: uint64(i)})
		if !ok || bytes == 0 {
			t.Fatalf("Remove(%d) = %d bytes, %v", i, bytes, ok)
		}
	}
	if d.Len() != 50 {
		t.Fatalf("Len = %d, want 50", d.Len())
	}
	if d.Contains(txn.Key{Table: 1, ID: 4}) || !d.Contains(txn.Key{Table: 1, ID: 5}) {
		t.Fatal("Contains misreported after removal")
	}
	n := 0
	d.AscendRange(txn.KeyRange{Table: 1, Lo: 0, Hi: 100}, func(k txn.Key) bool {
		if k.ID%2 == 0 {
			t.Fatalf("removed key %d visited", k.ID)
		}
		n++
		return true
	})
	if n != 50 {
		t.Fatalf("visited %d keys, want 50", n)
	}
	// Removing a whole region shrinks its fence slots to empty: the range
	// becomes excludable even though it is interior to the population.
	for i := 1; i < 50; i += 2 {
		d.Remove(txn.Key{Table: 1, ID: uint64(i)})
	}
	if !d.ExcludesRange(txn.KeyRange{Table: 1, Lo: 0, Hi: 50}) {
		t.Fatal("fully reaped region not excluded by fences")
	}
	if d.ExcludesRange(txn.KeyRange{Table: 1, Lo: 50, Hi: 100}) {
		t.Fatal("live region wrongly excluded")
	}
	// Bounds shrank past the reaped prefix.
	mn, mx, ok := d.Bounds()
	if !ok || mn.ID != 51 || mx.ID != 99 {
		t.Fatalf("Bounds after reap = %v %v %v, want 51..99", mn, mx, ok)
	}
	// Re-insertion of reaped keys works and re-widens the fence.
	if !d.Insert(txn.Key{Table: 1, ID: 4}) {
		t.Fatal("re-insert of removed key reported present")
	}
	if d.ExcludesRange(txn.KeyRange{Table: 1, Lo: 0, Hi: 50}) {
		t.Fatal("fence did not re-widen after re-insert")
	}
	// Remove every key: the directory empties completely.
	for id := uint64(0); id < 100; id++ {
		d.Remove(txn.Key{Table: 1, ID: id})
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", d.Len())
	}
	if !d.ExcludesRange(txn.KeyRange{Table: 1, Lo: 0, Hi: 1 << 40}) {
		t.Fatal("empty directory must exclude its table's ranges")
	}
}

// TestDirectoryIterator covers the resumable iterator: ordered iteration,
// finger reuse for forward seeks, fallback for backward seeks, and the
// removed-finger fallback that keeps resumed walks exact.
func TestDirectoryIterator(t *testing.T) {
	d := NewDirectory()
	ids := rand.New(rand.NewSource(3)).Perm(1000)
	for _, id := range ids {
		d.Insert(txn.Key{Table: 0, ID: uint64(2 * id)}) // evens only
	}
	var it DirIter
	// Ordered full walk.
	got := 0
	for ok := it.SeekGE(d, txn.Key{}); ok; ok = it.Next() {
		if it.Key().ID != uint64(2*got) {
			t.Fatalf("walk position %d = id %d, want %d", got, it.Key().ID, 2*got)
		}
		got++
	}
	if got != 1000 {
		t.Fatalf("walked %d keys, want 1000", got)
	}
	// Forward seeks with a warm finger land exactly, including between
	// keys; backward seek falls back to a full descent and still lands.
	for _, target := range []uint64{0, 501, 1000, 1995, 3, 1998} {
		if !it.SeekGE(d, txn.Key{Table: 0, ID: target}) {
			t.Fatalf("SeekGE(%d) found nothing", target)
		}
		want := (target + 1) / 2 * 2
		if it.Key().ID != want {
			t.Fatalf("SeekGE(%d) = %d, want %d", target, it.Key().ID, want)
		}
	}
	if it.SeekGE(d, txn.Key{Table: 0, ID: 2000}) {
		t.Fatal("SeekGE past the end found a key")
	}
	// Park a finger, remove nodes around it, and re-seek: the walk must
	// reflect the removals exactly (the removed-flag check forces a fresh
	// descent when the finger died).
	it.SeekGE(d, txn.Key{Table: 0, ID: 1000})
	for id := uint64(900); id <= 1100; id += 2 {
		d.Remove(txn.Key{Table: 0, ID: id})
	}
	if !it.SeekGE(d, txn.Key{Table: 0, ID: 1000}) {
		t.Fatal("re-seek found nothing")
	}
	if it.Key().ID != 1102 {
		t.Fatalf("re-seek over reaped region = %d, want 1102", it.Key().ID)
	}
}

// TestDirectoryConcurrentChurn runs readers (AscendRange walks and
// resumable iterators) against a single writer performing insert/remove
// churn; iteration must stay sorted and every key present for the whole
// run must always be seen. Run with -race.
func TestDirectoryConcurrentChurn(t *testing.T) {
	d := NewDirectory()
	const stable = 512 // even ids 0..1022 never removed
	for i := 0; i < stable; i++ {
		d.Insert(txn.Key{Table: 0, ID: uint64(2 * i)})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var it DirIter
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Stable keys must all be visited, in order, regardless of
				// concurrent churn on the odd ids.
				seen := 0
				prev := txn.Key{}
				first := true
				for ok := it.SeekGE(d, txn.Key{}); ok; ok = it.Next() {
					k := it.Key()
					if !first && !prev.Less(k) {
						t.Error("iterator out of order")
						return
					}
					prev, first = k, false
					if k.ID%2 == 0 {
						seen++
					}
				}
				if seen != stable {
					t.Errorf("iterator saw %d stable keys, want %d", seen, stable)
					return
				}
			}
		}()
	}
	// Single writer churns the odd ids: insert a window, remove it, repeat.
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 300; round++ {
		base := uint64(rng.Intn(1000))
		for i := uint64(0); i < 32; i++ {
			d.Insert(txn.Key{Table: 0, ID: 2*(base+i) + 1})
		}
		for i := uint64(0); i < 32; i++ {
			d.Remove(txn.Key{Table: 0, ID: 2*(base+i) + 1})
		}
	}
	close(stop)
	wg.Wait()
}

// TestDirectoryFenceNeverExcludesPresentKey cross-checks exclusion
// against a live walk under random inserts: any range the fence excludes
// must have an empty walk.
func TestDirectoryFenceNeverExcludesPresentKey(t *testing.T) {
	d := NewDirectory()
	rng := rand.New(rand.NewSource(42))
	present := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		id := uint64(rng.Intn(10_000))
		d.Insert(txn.Key{Table: 3, ID: id})
		present[id] = true
		lo := uint64(rng.Intn(10_000))
		r := txn.KeyRange{Table: 3, Lo: lo, Hi: lo + uint64(rng.Intn(50))}
		if d.ExcludesRange(r) {
			n := 0
			d.AscendRange(r, func(txn.Key) bool { n++; return false })
			if n != 0 {
				t.Fatalf("fence excluded %v but the walk found %d key(s)", r, n)
			}
		}
	}
}
