package storage

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"bohm/internal/txn"
)

func TestMapInsertGet(t *testing.T) {
	m := NewMap[int](16)
	for i := 0; i < 16; i++ {
		v := i * 10
		got, fresh, err := m.Insert(txn.Key{Table: 1, ID: uint64(i)}, &v)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh || got == nil || *got != v {
			t.Fatalf("Insert(%d) = (%v, %v)", i, got, fresh)
		}
	}
	if m.Len() != 16 {
		t.Fatalf("Len = %d, want 16", m.Len())
	}
	for i := 0; i < 16; i++ {
		got := m.Get(txn.Key{Table: 1, ID: uint64(i)})
		if got == nil || *got != i*10 {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
}

func TestMapGetMissing(t *testing.T) {
	m := NewMap[int](8)
	v := 1
	if _, _, err := m.Insert(txn.Key{ID: 1}, &v); err != nil {
		t.Fatal(err)
	}
	if m.Get(txn.Key{ID: 2}) != nil {
		t.Error("Get of absent key returned a value")
	}
	if m.Get(txn.Key{Table: 1, ID: 1}) != nil {
		t.Error("Get with wrong table returned a value")
	}
}

func TestMapDuplicateInsert(t *testing.T) {
	m := NewMap[int](8)
	a, b := 1, 2
	if _, fresh, _ := m.Insert(txn.Key{ID: 7}, &a); !fresh {
		t.Fatal("first insert not fresh")
	}
	got, fresh, err := m.Insert(txn.Key{ID: 7}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("duplicate insert reported fresh")
	}
	if got != &a {
		t.Fatal("duplicate insert did not return the existing value")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", m.Len())
	}
}

func TestMapGetOrInsert(t *testing.T) {
	m := NewMap[int](8)
	calls := 0
	mk := func() *int { calls++; v := 5; return &v }
	v1, ins1, err := m.GetOrInsert(txn.Key{ID: 1}, mk)
	if err != nil || *v1 != 5 || calls != 1 || !ins1 {
		t.Fatalf("first GetOrInsert: v=%v calls=%d err=%v", v1, calls, err)
	}
	v2, ins2, err := m.GetOrInsert(txn.Key{ID: 1}, mk)
	if err != nil || v2 != v1 || calls != 1 || ins2 {
		t.Fatalf("second GetOrInsert: v=%v calls=%d err=%v", v2, calls, err)
	}
}

func TestMapFull(t *testing.T) {
	m := NewMap[int](1) // slots=2, limit=1
	v := 1
	var err error
	inserted := 0
	for i := 0; ; i++ {
		_, _, err = m.Insert(txn.Key{ID: uint64(i)}, &v)
		if err != nil {
			break
		}
		inserted++
		if inserted > 1<<20 {
			t.Fatal("table never filled")
		}
	}
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	// Existing entries must still be readable.
	if m.Get(txn.Key{ID: 0}) == nil {
		t.Error("existing key unreadable after table filled")
	}
}

func TestMapCapacityHolds(t *testing.T) {
	// NewMap(n) must accept at least n inserts.
	const n = 1000
	m := NewMap[int](n)
	v := 0
	for i := 0; i < n; i++ {
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &v); err != nil {
			t.Fatalf("insert %d of %d failed: %v", i, n, err)
		}
	}
}

func TestMapRange(t *testing.T) {
	m := NewMap[int](32)
	want := map[txn.Key]int{}
	for i := 0; i < 20; i++ {
		v := i
		k := txn.Key{Table: uint32(i % 3), ID: uint64(i)}
		want[k] = i
		if _, _, err := m.Insert(k, &v); err != nil {
			t.Fatal(err)
		}
	}
	got := map[txn.Key]int{}
	m.Range(func(k txn.Key, v *int) bool {
		got[k] = *v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%v] = %d, want %d", k, got[k], v)
		}
	}
}

func TestMapRangeEarlyStop(t *testing.T) {
	m := NewMap[int](32)
	v := 0
	for i := 0; i < 10; i++ {
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &v); err != nil {
			t.Fatal(err)
		}
	}
	visited := 0
	m.Range(func(txn.Key, *int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("Range visited %d after early stop, want 3", visited)
	}
}

// TestMapModel cross-checks the table against a builtin map over random
// operation sequences.
func TestMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMap[uint16](64)
		model := map[txn.Key]*uint16{}
		for _, op := range ops {
			k := txn.Key{Table: uint32(op % 3), ID: uint64(op % 41)}
			if op%2 == 0 {
				v := op
				got, _, err := m.Insert(k, &v)
				if err != nil {
					return false
				}
				if prev, ok := model[k]; ok {
					if got != prev {
						return false
					}
				} else {
					model[k] = got
				}
			} else {
				got := m.Get(k)
				want, ok := model[k]
				if ok != (got != nil) {
					return false
				}
				if ok && got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMapConcurrentReadersAndWriters exercises the latch-free protocol:
// several writers insert disjoint key ranges while readers probe
// continuously; once a writer's Insert returns, the key must be readable.
func TestMapConcurrentReadersAndWriters(t *testing.T) {
	const perWriter = 2000
	const writers = 4
	m := NewMap[uint64](writers * perWriter)
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i)
				v := id * 2
				if _, _, err := m.Insert(txn.Key{ID: id}, &v); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				// Read-your-write.
				if got := m.Get(txn.Key{ID: id}); got == nil || *got != v {
					t.Errorf("read-own-insert %d failed", id)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(rng.Intn(writers * perWriter))
				if got := m.Get(txn.Key{ID: id}); got != nil && *got != id*2 {
					t.Errorf("reader saw wrong value for %d: %d", id, *got)
					return
				}
			}
		}(int64(r))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if m.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*perWriter)
	}
}

func TestNewMapTinySizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		m := NewMap[int](n)
		v := 1
		if _, _, err := m.Insert(txn.Key{ID: 9}, &v); err != nil {
			t.Errorf("NewMap(%d): insert failed: %v", n, err)
		}
		if m.Get(txn.Key{ID: 9}) == nil {
			t.Errorf("NewMap(%d): get failed", n)
		}
	}
}

// TestMapDelete covers deletion and slot reuse: deleted keys disappear
// from Get, Len and Range; new inserts reclaim deleted slots so a
// churned table's slot population stays bounded; re-inserting a deleted
// key works.
func TestMapDelete(t *testing.T) {
	m := NewMap[int](64)
	vals := make([]int, 200)
	for i := range vals {
		vals[i] = i
	}
	for i := 0; i < 64; i++ {
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := m.Delete(txn.Key{ID: 999}); ok {
		t.Fatal("deleted an absent key")
	}
	for i := 0; i < 64; i += 2 {
		v, ok := m.Delete(txn.Key{ID: uint64(i)})
		if !ok || *v != i {
			t.Fatalf("Delete(%d) = %v, %v", i, v, ok)
		}
	}
	if m.Len() != 32 {
		t.Fatalf("Len = %d, want 32", m.Len())
	}
	if m.Get(txn.Key{ID: 2}) != nil || m.Get(txn.Key{ID: 3}) == nil {
		t.Fatal("Get misreported after delete")
	}
	seen := 0
	m.Range(func(k txn.Key, v *int) bool {
		if k.ID%2 == 0 {
			t.Fatalf("Range visited deleted key %d", k.ID)
		}
		seen++
		return true
	})
	if seen != 32 {
		t.Fatalf("Range visited %d entries, want 32", seen)
	}
	// Churn far beyond the table's capacity: inserts reuse deleted slots
	// and deletes absorb tombstone runs back into empty probe
	// terminators, so rolling insert+delete of fresh ids never fills the
	// table — even over orders of magnitude more ids than slots — and
	// probes for absent keys keep terminating.
	for i := 64; i < 5000; i++ {
		if _, _, err := m.Insert(txn.Key{ID: uint64(1000 + i)}, &vals[i%len(vals)]); err != nil {
			t.Fatalf("churn insert %d: %v", i, err)
		}
		if _, ok := m.Delete(txn.Key{ID: uint64(1000 + i)}); !ok {
			t.Fatalf("churn delete %d failed", i)
		}
		if m.Get(txn.Key{ID: uint64(500 + i)}) != nil {
			t.Fatalf("round %d: absent key resolved", i)
		}
	}
	// Re-insert previously deleted keys.
	for i := 0; i < 64; i += 2 {
		if _, inserted, err := m.Insert(txn.Key{ID: uint64(i)}, &vals[i]); err != nil || !inserted {
			t.Fatalf("re-insert %d = %v, %v", i, inserted, err)
		}
	}
	if m.Len() != 64 {
		t.Fatalf("Len = %d after re-inserts, want 64", m.Len())
	}
}

// TestMapReadersDuringDeleteChurn runs lock-free readers against a single
// writer performing delete/re-insert churn, including slot reuse by other
// keys: a reader must never see a torn key/value pair (the generation
// check) and stable keys must always resolve. Run with -race.
func TestMapReadersDuringDeleteChurn(t *testing.T) {
	m := NewMap[uint64](1 << 10)
	const stable = 256
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(i) * 2
	}
	for i := 0; i < stable; i++ {
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if id := uint64(rng.Intn(stable)); *m.Get(txn.Key{ID: id}) != id*2 {
					t.Errorf("stable key %d resolved wrong value", id)
					return
				}
				// Churned keys may or may not be present, but a hit must
				// carry the right value — a torn slot read would not.
				if id := uint64(stable + rng.Intn(2048)); true {
					if v := m.Get(txn.Key{ID: id}); v != nil && *v != id*2 {
						t.Errorf("churned key %d resolved %d, want %d", id, *v, id*2)
						return
					}
				}
			}
		}(int64(r))
	}
	// Single writer: rolling windows of inserts and deletes over ids that
	// hash into the same slot neighbourhoods the readers probe.
	for round := 0; round < 2000; round++ {
		base := stable + (round*37)%2048
		for i := 0; i < 16; i++ {
			id := uint64(base + i)
			if int(id) < len(vals)/2 {
				m.Insert(txn.Key{ID: id}, &vals[id])
			}
		}
		for i := 0; i < 16; i++ {
			m.Delete(txn.Key{ID: uint64(base + i)})
		}
	}
	close(stop)
	wg.Wait()
}

// TestMapReadersDuringCompaction drives never-repeating insert+delete
// churn hard enough to exhaust the empty reserve and force compaction
// swaps, with lock-free readers running throughout: stable keys must
// always resolve (on whichever array snapshot a reader holds) and absent
// keys must terminate cleanly. Run with -race.
func TestMapReadersDuringCompaction(t *testing.T) {
	m := NewMap[uint64](128)
	const stable = 64
	stableVals := make([]uint64, stable)
	for i := range stableVals {
		stableVals[i] = uint64(i) * 3
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &stableVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(rng.Intn(stable))
				if v := m.Get(txn.Key{ID: id}); v == nil || *v != id*3 {
					t.Errorf("stable key %d lost or corrupted", id)
					return
				}
				if m.Get(txn.Key{ID: uint64(1 << 40)}) != nil {
					t.Error("absent key resolved")
					return
				}
			}
		}(int64(r))
	}
	// Single writer: fresh ids only, so every insert that cannot reuse a
	// tombstone consumes an empty slot and compactions must eventually
	// trigger.
	for i := 0; i < 30000; i++ {
		id := uint64(100000 + i)
		v := id * 7
		if _, _, err := m.Insert(txn.Key{ID: id}, &v); err != nil {
			t.Fatalf("churn insert %d: %v", i, err)
		}
		if _, ok := m.Delete(txn.Key{ID: id}); !ok {
			t.Fatalf("churn delete %d failed", i)
		}
	}
	close(stop)
	wg.Wait()
	if m.Rebuilds() == 0 {
		t.Error("churn never triggered a compaction; the test lost its point")
	}
	if m.Len() != stable {
		t.Fatalf("Len = %d, want %d", m.Len(), stable)
	}
	for i := 0; i < stable; i++ {
		if v := m.Get(txn.Key{ID: uint64(i)}); v == nil || *v != uint64(i)*3 {
			t.Fatalf("stable key %d wrong after churn", i)
		}
	}
}
