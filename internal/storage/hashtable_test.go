package storage

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"bohm/internal/txn"
)

func TestMapInsertGet(t *testing.T) {
	m := NewMap[int](16)
	for i := 0; i < 16; i++ {
		v := i * 10
		got, fresh, err := m.Insert(txn.Key{Table: 1, ID: uint64(i)}, &v)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh || got == nil || *got != v {
			t.Fatalf("Insert(%d) = (%v, %v)", i, got, fresh)
		}
	}
	if m.Len() != 16 {
		t.Fatalf("Len = %d, want 16", m.Len())
	}
	for i := 0; i < 16; i++ {
		got := m.Get(txn.Key{Table: 1, ID: uint64(i)})
		if got == nil || *got != i*10 {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
}

func TestMapGetMissing(t *testing.T) {
	m := NewMap[int](8)
	v := 1
	if _, _, err := m.Insert(txn.Key{ID: 1}, &v); err != nil {
		t.Fatal(err)
	}
	if m.Get(txn.Key{ID: 2}) != nil {
		t.Error("Get of absent key returned a value")
	}
	if m.Get(txn.Key{Table: 1, ID: 1}) != nil {
		t.Error("Get with wrong table returned a value")
	}
}

func TestMapDuplicateInsert(t *testing.T) {
	m := NewMap[int](8)
	a, b := 1, 2
	if _, fresh, _ := m.Insert(txn.Key{ID: 7}, &a); !fresh {
		t.Fatal("first insert not fresh")
	}
	got, fresh, err := m.Insert(txn.Key{ID: 7}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("duplicate insert reported fresh")
	}
	if got != &a {
		t.Fatal("duplicate insert did not return the existing value")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", m.Len())
	}
}

func TestMapGetOrInsert(t *testing.T) {
	m := NewMap[int](8)
	calls := 0
	mk := func() *int { calls++; v := 5; return &v }
	v1, ins1, err := m.GetOrInsert(txn.Key{ID: 1}, mk)
	if err != nil || *v1 != 5 || calls != 1 || !ins1 {
		t.Fatalf("first GetOrInsert: v=%v calls=%d err=%v", v1, calls, err)
	}
	v2, ins2, err := m.GetOrInsert(txn.Key{ID: 1}, mk)
	if err != nil || v2 != v1 || calls != 1 || ins2 {
		t.Fatalf("second GetOrInsert: v=%v calls=%d err=%v", v2, calls, err)
	}
}

func TestMapFull(t *testing.T) {
	m := NewMap[int](1) // slots=2, limit=1
	v := 1
	var err error
	inserted := 0
	for i := 0; ; i++ {
		_, _, err = m.Insert(txn.Key{ID: uint64(i)}, &v)
		if err != nil {
			break
		}
		inserted++
		if inserted > 1<<20 {
			t.Fatal("table never filled")
		}
	}
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	// Existing entries must still be readable.
	if m.Get(txn.Key{ID: 0}) == nil {
		t.Error("existing key unreadable after table filled")
	}
}

func TestMapCapacityHolds(t *testing.T) {
	// NewMap(n) must accept at least n inserts.
	const n = 1000
	m := NewMap[int](n)
	v := 0
	for i := 0; i < n; i++ {
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &v); err != nil {
			t.Fatalf("insert %d of %d failed: %v", i, n, err)
		}
	}
}

func TestMapRange(t *testing.T) {
	m := NewMap[int](32)
	want := map[txn.Key]int{}
	for i := 0; i < 20; i++ {
		v := i
		k := txn.Key{Table: uint32(i % 3), ID: uint64(i)}
		want[k] = i
		if _, _, err := m.Insert(k, &v); err != nil {
			t.Fatal(err)
		}
	}
	got := map[txn.Key]int{}
	m.Range(func(k txn.Key, v *int) bool {
		got[k] = *v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%v] = %d, want %d", k, got[k], v)
		}
	}
}

func TestMapRangeEarlyStop(t *testing.T) {
	m := NewMap[int](32)
	v := 0
	for i := 0; i < 10; i++ {
		if _, _, err := m.Insert(txn.Key{ID: uint64(i)}, &v); err != nil {
			t.Fatal(err)
		}
	}
	visited := 0
	m.Range(func(txn.Key, *int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("Range visited %d after early stop, want 3", visited)
	}
}

// TestMapModel cross-checks the table against a builtin map over random
// operation sequences.
func TestMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMap[uint16](64)
		model := map[txn.Key]*uint16{}
		for _, op := range ops {
			k := txn.Key{Table: uint32(op % 3), ID: uint64(op % 41)}
			if op%2 == 0 {
				v := op
				got, _, err := m.Insert(k, &v)
				if err != nil {
					return false
				}
				if prev, ok := model[k]; ok {
					if got != prev {
						return false
					}
				} else {
					model[k] = got
				}
			} else {
				got := m.Get(k)
				want, ok := model[k]
				if ok != (got != nil) {
					return false
				}
				if ok && got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMapConcurrentReadersAndWriters exercises the latch-free protocol:
// several writers insert disjoint key ranges while readers probe
// continuously; once a writer's Insert returns, the key must be readable.
func TestMapConcurrentReadersAndWriters(t *testing.T) {
	const perWriter = 2000
	const writers = 4
	m := NewMap[uint64](writers * perWriter)
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i)
				v := id * 2
				if _, _, err := m.Insert(txn.Key{ID: id}, &v); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				// Read-your-write.
				if got := m.Get(txn.Key{ID: id}); got == nil || *got != v {
					t.Errorf("read-own-insert %d failed", id)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(rng.Intn(writers * perWriter))
				if got := m.Get(txn.Key{ID: id}); got != nil && *got != id*2 {
					t.Errorf("reader saw wrong value for %d: %d", id, *got)
					return
				}
			}
		}(int64(r))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if m.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", m.Len(), writers*perWriter)
	}
}

func TestNewMapTinySizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		m := NewMap[int](n)
		v := 1
		if _, _, err := m.Insert(txn.Key{ID: 9}, &v); err != nil {
			t.Errorf("NewMap(%d): insert failed: %v", n, err)
		}
		if m.Get(txn.Key{ID: 9}) == nil {
			t.Errorf("NewMap(%d): get failed", n)
		}
	}
}
