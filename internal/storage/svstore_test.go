package storage

import (
	"bytes"
	"sync"
	"testing"

	"bohm/internal/txn"
)

func TestSVRecordLockUnlock(t *testing.T) {
	r := NewSVRecord([]byte{1, 2, 3})
	old := r.Lock()
	if r.TID()&TIDLockBit == 0 {
		t.Fatal("lock bit not set")
	}
	if _, ok := r.TryLock(); ok {
		t.Fatal("TryLock succeeded on a locked record")
	}
	r.Unlock(old + 1)
	if r.TID() != old+1 {
		t.Fatalf("TID = %d, want %d", r.TID(), old+1)
	}
	if _, ok := r.TryLock(); !ok {
		t.Fatal("TryLock failed on an unlocked record")
	}
	r.UnlockUnchanged(old + 1)
	if r.TID() != old+1 {
		t.Fatal("UnlockUnchanged altered the TID")
	}
}

func TestSVRecordSetGrowsAndShrinks(t *testing.T) {
	r := NewSVRecord([]byte{1, 2, 3, 4})
	r.Lock()
	r.Set([]byte{9})
	if !bytes.Equal(r.Data(), []byte{9}) {
		t.Fatalf("Data = %v", r.Data())
	}
	r.Set([]byte{1, 2, 3, 4, 5, 6})
	if !bytes.Equal(r.Data(), []byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("Data = %v", r.Data())
	}
	r.Unlock(1)
}

func TestSVRecordDeleteRestore(t *testing.T) {
	r := NewSVRecord([]byte{1})
	r.Lock()
	r.SetDeleted()
	if !r.Deleted() {
		t.Fatal("not deleted")
	}
	r.Set([]byte{2})
	if r.Deleted() {
		t.Fatal("Set did not clear the tombstone")
	}
	r.Unlock(1)
}

// TestStableReadConsistency hammers a record with in-place writes while
// readers take seqlock snapshots; every snapshot must be internally
// consistent (all bytes from the same write).
func TestStableReadConsistency(t *testing.T) {
	r := NewSVRecord(make([]byte, 64))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for i := byte(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range buf {
				buf[j] = i
			}
			tid := r.Lock()
			r.Set(buf)
			r.Unlock(tid + 1)
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var buf []byte
			for n := 0; n < 3000; n++ {
				var tid uint64
				buf, tid, _ = r.StableRead(buf)
				if tid&TIDLockBit != 0 {
					t.Error("StableRead returned a locked TID")
					return
				}
				for j := 1; j < len(buf); j++ {
					if buf[j] != buf[0] {
						t.Errorf("torn read: buf[0]=%d buf[%d]=%d", buf[0], j, buf[j])
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}

func TestSVStoreLoadGet(t *testing.T) {
	s := NewSVStore(16)
	if err := s.Load(txn.Key{ID: 1}, []byte{42}); err != nil {
		t.Fatal(err)
	}
	r := s.Get(txn.Key{ID: 1})
	if r == nil || r.Data()[0] != 42 {
		t.Fatal("loaded record not readable")
	}
	if s.Get(txn.Key{ID: 2}) != nil {
		t.Fatal("absent key returned a record")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSVStoreLoadCopies(t *testing.T) {
	s := NewSVStore(4)
	src := []byte{1, 2, 3}
	if err := s.Load(txn.Key{ID: 1}, src); err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if s.Get(txn.Key{ID: 1}).Data()[0] != 1 {
		t.Fatal("Load did not copy the value")
	}
}

func TestSVStoreGetOrCreate(t *testing.T) {
	s := NewSVStore(4)
	r, created, err := s.GetOrCreate(txn.Key{ID: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first GetOrCreate should report creation")
	}
	if !r.Deleted() {
		t.Fatal("created record should start as a tombstone")
	}
	r2, created2, err := s.GetOrCreate(txn.Key{ID: 5})
	if err != nil || r2 != r || created2 {
		t.Fatal("GetOrCreate not idempotent")
	}
}

func TestSVStoreRange(t *testing.T) {
	s := NewSVStore(16)
	for i := 0; i < 5; i++ {
		if err := s.Load(txn.Key{ID: uint64(i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	s.Range(func(k txn.Key, r *SVRecord) bool {
		n++
		return true
	})
	if n != 5 {
		t.Fatalf("Range visited %d, want 5", n)
	}
}
