package storage

import (
	"testing"
	"testing/quick"
)

// buildChain constructs a chain with a loaded version followed by ready
// versions at the given begin timestamps (ascending), each carrying its
// index as batch and a one-byte payload.
func buildChain(begins ...uint64) *Chain {
	c := NewChain(NewLoadedVersion([]byte{0}))
	for i, ts := range begins {
		v := NewPlaceholder(ts, uint64(i+1), nil)
		v.Install([]byte{byte(ts)}, false)
		c.Push(v)
	}
	return c
}

func TestLoadedVersionIsReady(t *testing.T) {
	v := NewLoadedVersion([]byte{7})
	if !v.Ready() {
		t.Fatal("loaded version not ready")
	}
	if v.Begin != 0 || v.End() != TsInfinity {
		t.Fatalf("loaded version window = [%d, %d]", v.Begin, v.End())
	}
	d, tomb := v.Data()
	if tomb || d[0] != 7 {
		t.Fatalf("Data = (%v, %v)", d, tomb)
	}
}

func TestPlaceholderLifecycle(t *testing.T) {
	producer := "txn-handle"
	v := NewPlaceholder(10, 3, producer)
	if v.Ready() {
		t.Fatal("placeholder born ready")
	}
	if v.Begin != 10 || v.Batch != 3 || v.End() != TsInfinity {
		t.Fatalf("placeholder fields: begin=%d batch=%d end=%d", v.Begin, v.Batch, v.End())
	}
	if v.Producer != producer {
		t.Fatal("producer not retained")
	}
	v.Install([]byte{1}, false)
	if !v.Ready() {
		t.Fatal("Install did not mark ready")
	}
}

func TestTombstoneInstall(t *testing.T) {
	v := NewPlaceholder(5, 1, nil)
	v.Install(nil, true)
	d, tomb := v.Data()
	if !tomb || d != nil {
		t.Fatalf("tombstone Data = (%v, %v)", d, tomb)
	}
}

func TestChainPushLinksAndInvalidates(t *testing.T) {
	c := NewChain(NewLoadedVersion([]byte{0}))
	first := c.Head()
	v := NewPlaceholder(10, 1, nil)
	c.Push(v)
	if c.Head() != v {
		t.Fatal("head not updated")
	}
	if v.Prev() != first {
		t.Fatal("prev not linked")
	}
	if first.End() != 10 {
		t.Fatalf("superseded end = %d, want 10", first.End())
	}
	if v.End() != TsInfinity {
		t.Fatalf("new head end = %d, want infinity", v.End())
	}
}

func TestVisibleAt(t *testing.T) {
	c := buildChain(10, 20, 30)
	cases := []struct {
		ts   uint64
		want uint64 // Begin of expected version
	}{
		{1, 0},   // before any update: the loaded version
		{10, 0},  // the writer at ts=10 reads its pre-state
		{11, 10}, // just after the first update
		{20, 10}, // writer at 20 reads pre-state
		{25, 20},
		{30, 20},
		{31, 30},
		{1000, 30},
	}
	for _, tc := range cases {
		v := c.VisibleAt(tc.ts)
		if v == nil {
			t.Fatalf("VisibleAt(%d) = nil", tc.ts)
		}
		if v.Begin != tc.want {
			t.Errorf("VisibleAt(%d).Begin = %d, want %d", tc.ts, v.Begin, tc.want)
		}
	}
}

func TestVisibleAtEmptyAndFuture(t *testing.T) {
	c := NewChain(nil)
	if c.VisibleAt(100) != nil {
		t.Error("empty chain returned a version")
	}
	v := NewPlaceholder(50, 1, nil)
	c.Push(v)
	if c.VisibleAt(50) != nil {
		t.Error("reader at the insert's own ts must not see it")
	}
	if got := c.VisibleAt(51); got != v {
		t.Error("reader after insert must see it")
	}
}

// TestVisibleAtMatchesReference cross-checks VisibleAt against a direct
// specification: the version with the largest Begin < ts.
func TestVisibleAtMatchesReference(t *testing.T) {
	f := func(rawBegins []uint64, ts uint64) bool {
		// Build strictly increasing begins in (0, ..) from the raw input.
		begins := make([]uint64, 0, len(rawBegins))
		last := uint64(0)
		for _, b := range rawBegins {
			last += b%100 + 1
			begins = append(begins, last)
		}
		c := buildChain(begins...)
		got := c.VisibleAt(ts)
		// Reference: max Begin < ts over {0} ∪ begins.
		want := uint64(0)
		found := ts > 0
		for _, b := range begins {
			if b < ts && b > want {
				want = b
			}
		}
		if !found {
			return got == nil
		}
		return got != nil && got.Begin == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChainLen(t *testing.T) {
	c := buildChain(10, 20, 30)
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := NewChain(nil).Len(); got != 0 {
		t.Fatalf("empty Len = %d, want 0", got)
	}
}

func TestCollect(t *testing.T) {
	// Chain: loaded(batch 0) ← v1(batch 1) ← v2(batch 2) ← v3(batch 3).
	c := buildChain(10, 20, 30)

	// Watermark 0: v2 (head's prev) has batch 2 > 0; nothing collectable.
	if n := c.Collect(0); n != 0 {
		t.Fatalf("Collect(0) = %d, want 0", n)
	}
	if c.Len() != 4 {
		t.Fatalf("Len after no-op collect = %d", c.Len())
	}

	// Watermark 2: v2 (batch 2) ≤ wm, so everything below v2 (v1 and the
	// loaded version) is unreachable.
	if n := c.Collect(2); n != 2 {
		t.Fatalf("Collect(2) = %d, want 2", n)
	}
	if c.Len() != 2 {
		t.Fatalf("Len after collect = %d, want 2", c.Len())
	}
	// The survivors are head (v3) and its predecessor (v2) — exactly what
	// future readers can still need.
	if c.Head().Begin != 30 || c.Head().Prev().Begin != 20 {
		t.Fatal("wrong survivors after collect")
	}
	// Idempotent.
	if n := c.Collect(2); n != 0 {
		t.Fatalf("second Collect(2) = %d, want 0", n)
	}
}

func TestCollectKeepsUnreadySuccessors(t *testing.T) {
	c := NewChain(NewLoadedVersion([]byte{0}))
	v1 := NewPlaceholder(10, 1, nil) // never installed
	c.Push(v1)
	v2 := NewPlaceholder(20, 2, nil)
	v2.Install([]byte{2}, false)
	c.Push(v2)
	// v1 is head's prev but not ready: must not cut below it even at a
	// high watermark (defensive; the watermark protocol already implies
	// readiness).
	if n := c.Collect(99); n != 0 {
		t.Fatalf("Collect past unready version = %d, want 0", n)
	}
}

func TestCollectSingleVersionChain(t *testing.T) {
	c := NewChain(NewLoadedVersion([]byte{0}))
	if n := c.Collect(100); n != 0 {
		t.Fatalf("Collect on 1-version chain = %d, want 0", n)
	}
	c2 := NewChain(nil)
	if n := c2.Collect(100); n != 0 {
		t.Fatalf("Collect on empty chain = %d, want 0", n)
	}
}

// TestCollectPreservesVisibility: after any Collect(wm), every reader
// with a timestamp greater than all versions in batches ≤ wm still finds
// its correct version.
func TestCollectPreservesVisibility(t *testing.T) {
	begins := []uint64{10, 20, 30, 40, 50}
	for wm := uint64(0); wm <= 6; wm++ {
		c := buildChain(begins...)
		c.Collect(wm)
		// Readers after the newest version are always safe.
		if got := c.VisibleAt(1000); got == nil || got.Begin != 50 {
			t.Fatalf("wm=%d: VisibleAt(1000) wrong", wm)
		}
		// A reader between two surviving versions still resolves. The
		// oldest guaranteed-visible timestamp after collecting at wm is
		// the begin of the newest version with batch ≤ wm (the "s" that
		// stays).
		for i, b := range begins {
			batch := uint64(i + 1)
			if batch > wm {
				// Readers needing this version still find it.
				if got := c.VisibleAt(b + 1); got == nil || got.Begin != b {
					t.Fatalf("wm=%d: VisibleAt(%d) lost version %d", wm, b+1, b)
				}
			}
		}
	}
}
