package obs

import (
	"fmt"
	"io"
	"strconv"
)

// Gauge is a named value sampled at scrape time from existing engine
// state — queue depths, watermarks, pool residency. Sampling must be
// cheap and safe from any goroutine.
type Gauge struct {
	Name  string
	Help  string
	Value func() float64
}

// Counter is a named monotonic value read at scrape time.
type Counter struct {
	Name  string
	Help  string
	Value uint64
}

// WriteGauges writes gauges in Prometheus text exposition format.
func WriteGauges(w io.Writer, gs []Gauge) {
	for _, g := range gs {
		if g.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", g.Name, g.Help)
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", g.Name, g.Name,
			strconv.FormatFloat(g.Value(), 'g', -1, 64))
	}
}

// WriteCounters writes counters in Prometheus text exposition format.
func WriteCounters(w io.Writer, cs []Counter) {
	for _, c := range cs {
		if c.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", c.Name, c.Help)
		}
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
}

// WriteHistogram writes one histogram snapshot in Prometheus text
// exposition format. Recorded values are divided by scale — pass 1e9 for
// nanosecond durations (Prometheus wants seconds), 1 for dimensionless
// values like batch fill. Only populated buckets emit a line, plus the
// mandatory +Inf bucket.
func WriteHistogram(w io.Writer, name, help string, snap *HistSnapshot, scale float64) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, c := range snap.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := float64(BucketHigh(i)) / scale
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	// See WriteStageHistograms: never let +Inf undercut the cumulative
	// buckets under a racing snapshot.
	total := snap.Count
	if cum > total {
		total = cum
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %s\n", name,
		strconv.FormatFloat(float64(snap.Sum)/scale, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

// WriteStageHistograms writes every stage histogram as one Prometheus
// histogram family with a stage label, converting nanoseconds to seconds
// per Prometheus convention. Only populated buckets emit a line (plus
// the mandatory +Inf bucket), keeping the exposition compact.
func (m *Metrics) WriteStageHistograms(w io.Writer, family string) {
	fmt.Fprintf(w, "# HELP %s Batch pipeline stage and transaction latency.\n", family)
	fmt.Fprintf(w, "# TYPE %s histogram\n", family)
	for s := 0; s < NumStages; s++ {
		snap := m.Stages[s].Snapshot()
		name := stageNames[s]
		var cum uint64
		for i, c := range snap.Counts {
			if c == 0 {
				continue
			}
			cum += c
			le := float64(BucketHigh(i)) / 1e9
			fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n",
				family, name, strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		// A racing snapshot can observe bucket increments whose matching
		// count.Add has not landed yet; keep the exposition well formed by
		// never letting +Inf undercut the cumulative buckets.
		total := snap.Count
		if cum > total {
			total = cum
		}
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", family, name, total)
		fmt.Fprintf(w, "%s_sum{stage=%q} %s\n", family, name,
			strconv.FormatFloat(float64(snap.Sum)/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count{stage=%q} %d\n", family, name, total)
	}
}
