package obs

import (
	"sync"
	"testing"
)

func rec(seq uint64) BatchRecord {
	return BatchRecord{
		Seq: seq, Txns: int64(seq * 10), Aborts: int64(seq % 3),
		SubmitNS: int64(seq * 100), SequencedNS: int64(seq*100 + 10),
		CCFirstNS: int64(seq*100 + 20), CCLastNS: int64(seq*100 + 30),
		ExecDoneNS: int64(seq*100 + 40),
	}
}

func TestRecorderWindow(t *testing.T) {
	r := NewRecorder(8)
	if r.Len() != 0 {
		t.Fatalf("empty recorder Len = %d", r.Len())
	}
	for seq := uint64(1); seq <= 5; seq++ {
		r.Record(rec(seq))
	}
	got := r.Snapshot(nil)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i, g := range got {
		if g != rec(uint64(i+1)) {
			t.Fatalf("record %d = %+v", i, g)
		}
	}
	// Overflow: only the newest Cap records survive, oldest first.
	for seq := uint64(6); seq <= 20; seq++ {
		r.Record(rec(seq))
	}
	got = r.Snapshot(got[:0])
	if len(got) != 8 {
		t.Fatalf("after wrap len = %d, want 8", len(got))
	}
	for i, g := range got {
		if want := rec(uint64(13 + i)); g != want {
			t.Fatalf("after wrap record %d = %+v, want %+v", i, g, want)
		}
	}
	r.Reset()
	if got = r.Snapshot(nil); len(got) != 0 {
		t.Fatalf("after reset got %d records", len(got))
	}
}

// TestRecorderConcurrent hammers the ring from several writers while
// readers snapshot and occasionally reset. Under -race this verifies the
// seqlock discipline; the assertions verify snapshots never contain torn
// records (every field derives from Seq, so tearing is detectable).
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(32)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	var next sync.Mutex
	seq := uint64(0)
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				next.Lock()
				seq++
				s := seq
				next.Unlock()
				r.Record(rec(s))
			}
		}()
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			buf := make([]BatchRecord, 0, 32)
			for i := 0; i < 500; i++ {
				buf = r.Snapshot(buf[:0])
				for _, b := range buf {
					if b != rec(b.Seq) {
						t.Errorf("torn record: %+v", b)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestRecorderResetRace adds Reset to the mix. Reset rewinds the ticket
// counter, so records observed across it may be stale — no content
// assertions here; under -race this is purely the memory-safety check
// for reset concurrent with record/snapshot.
func TestRecorderResetRace(t *testing.T) {
	r := NewRecorder(16)
	stop := make(chan struct{})
	var writers, others sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			seq := uint64(w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq += 3
				r.Record(rec(seq))
			}
		}(w)
	}
	others.Add(2)
	go func() {
		defer others.Done()
		buf := make([]BatchRecord, 0, 16)
		for i := 0; i < 1000; i++ {
			buf = r.Snapshot(buf[:0])
		}
	}()
	go func() {
		defer others.Done()
		for i := 0; i < 100; i++ {
			r.Reset()
		}
	}()
	others.Wait()
	close(stop)
	writers.Wait()
}
