package obs

import "sync/atomic"

// BatchRecord is one batch's lifecycle as captured by the flight
// recorder: identity, sizes, abort count, and the stage timestamps in
// nanoseconds since the engine started (monotonic). A zero timestamp
// means the stage did not apply (LoggedNS when durability is off,
// SubmitNS for batches replayed during recovery).
type BatchRecord struct {
	Seq         uint64 `json:"seq"`
	Txns        int64  `json:"txns"`
	Aborts      int64  `json:"aborts"`
	SubmitNS    int64  `json:"submit_ns"`
	SequencedNS int64  `json:"sequenced_ns"`
	LoggedNS    int64  `json:"logged_ns"`
	CCFirstNS   int64  `json:"cc_first_ns"`
	CCLastNS    int64  `json:"cc_last_ns"`
	ExecDoneNS  int64  `json:"exec_done_ns"`
}

// flightSlot is one ring slot. Every field is individually atomic so the
// race detector sees clean accesses; slot-level consistency comes from
// the seqlock-style version stamp: a writer stores 2*ticket-1 (odd)
// before filling the fields and 2*ticket (even) after, and a reader
// accepts the slot only if it observes the same even stamp before and
// after copying the fields.
type flightSlot struct {
	ver    atomic.Uint64
	seq    atomic.Uint64
	txns   atomic.Int64
	aborts atomic.Int64
	stamps [6]atomic.Int64 // submit, sequenced, logged, ccFirst, ccLast, execDone
}

// Recorder is a bounded lock-free ring buffer of the most recent batch
// lifecycle records. Writers claim a monotonically increasing ticket and
// overwrite the slot ticket%size; readers reconstruct the most recent
// window, skipping slots that were mid-write or lapped during the copy.
// Record never blocks and never allocates.
type Recorder struct {
	slots []flightSlot
	next  atomic.Uint64
}

// NewRecorder creates a recorder keeping the last size records
// (minimum 1).
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	return &Recorder{slots: make([]flightSlot, size)}
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int { return len(r.slots) }

// Len returns the number of records currently reconstructable (at most
// Cap).
func (r *Recorder) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Record appends one batch record, overwriting the oldest slot when the
// ring is full.
func (r *Recorder) Record(rec BatchRecord) {
	t := r.next.Add(1) // 1-based ticket
	s := &r.slots[(t-1)%uint64(len(r.slots))]
	s.ver.Store(2*t - 1)
	s.seq.Store(rec.Seq)
	s.txns.Store(rec.Txns)
	s.aborts.Store(rec.Aborts)
	s.stamps[0].Store(rec.SubmitNS)
	s.stamps[1].Store(rec.SequencedNS)
	s.stamps[2].Store(rec.LoggedNS)
	s.stamps[3].Store(rec.CCFirstNS)
	s.stamps[4].Store(rec.CCLastNS)
	s.stamps[5].Store(rec.ExecDoneNS)
	s.ver.Store(2 * t)
}

// Snapshot appends the reconstructable window, oldest first, to dst and
// returns it. Slots overwritten while the snapshot was copying are
// skipped, so a snapshot taken under load returns the records that were
// stable for its duration.
func (r *Recorder) Snapshot(dst []BatchRecord) []BatchRecord {
	n := r.next.Load()
	size := uint64(len(r.slots))
	lo := uint64(1)
	if n > size {
		lo = n - size + 1
	}
	for t := lo; t <= n; t++ {
		s := &r.slots[(t-1)%size]
		if s.ver.Load() != 2*t {
			continue
		}
		rec := BatchRecord{
			Seq:         s.seq.Load(),
			Txns:        s.txns.Load(),
			Aborts:      s.aborts.Load(),
			SubmitNS:    s.stamps[0].Load(),
			SequencedNS: s.stamps[1].Load(),
			LoggedNS:    s.stamps[2].Load(),
			CCFirstNS:   s.stamps[3].Load(),
			CCLastNS:    s.stamps[4].Load(),
			ExecDoneNS:  s.stamps[5].Load(),
		}
		if s.ver.Load() != 2*t {
			continue
		}
		dst = append(dst, rec)
	}
	return dst
}

// Reset discards all records. Concurrent Record calls may repopulate
// slots immediately; Reset only guarantees that records written before
// the call stop being reconstructable.
func (r *Recorder) Reset() {
	r.next.Store(0)
	for i := range r.slots {
		r.slots[i].ver.Store(0)
	}
}
