// Package obs is BOHM's observability subsystem: log-linear latency
// histograms, a bounded flight recorder of batch lifecycle records, and a
// Prometheus text-format writer. Everything on the record path is a fixed
// array plus a handful of atomic operations — no locks, no allocations —
// so instrumentation can stay enabled under the repo's 0 allocs/txn
// budget. Aggregation (merging shards, computing quantiles, formatting)
// happens only at snapshot/scrape time.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Bucketing scheme: values below 16 get exact unit buckets; above that,
// each power-of-two range [2^k, 2^(k+1)) is split into 16 sub-buckets, so
// the relative quantization error is bounded by 1/16 (~6%) everywhere.
// With 64-bit values the largest shift is 59, so the largest index is
// (59+1)*16+15 = 975; at 976 buckets a shard is ~8KB of counters — small
// enough to shard per worker without caring.
const numBuckets = 976

// bucketFor maps a value to its bucket index.
func bucketFor(v uint64) int {
	if v < 16 {
		return int(v)
	}
	shift := bits.Len64(v) - 5 // v >= 16 so Len >= 5, shift >= 0
	return (shift+1)*16 + int((v>>uint(shift))&15)
}

// BucketLow returns the smallest value that maps to bucket i — the
// inclusive lower bound used when reporting quantiles (a conservative
// estimate: reported quantiles never exceed the true value by more than
// one sub-bucket width).
func BucketLow(i int) uint64 {
	if i < 16 {
		return uint64(i)
	}
	shift := uint(i/16 - 1)
	return (16 + uint64(i%16)) << shift
}

// BucketHigh returns the exclusive upper bound of bucket i.
func BucketHigh(i int) uint64 {
	if i+1 < numBuckets {
		return BucketLow(i + 1)
	}
	return ^uint64(0)
}

// histShard is one worker's private array of bucket counters. The
// trailing pad keeps adjacent shards off the same cache line; the bucket
// array itself is large enough that false sharing between shards is
// already negligible, but count/sum/max are hot.
type histShard struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	_      [40]byte
}

// Histogram is a sharded log-linear histogram of uint64 samples
// (nanoseconds, by convention). Record is wait-free: one bucket
// increment plus count/sum adds and a max CAS loop, all on the caller's
// shard. Shards exist so single-writer callers (one pipeline worker
// each) never contend; multi-writer callers may share a shard — the
// counters are atomic either way.
type Histogram struct {
	shards []histShard
}

// NewHistogram creates a histogram with the given number of shards
// (minimum 1).
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	return &Histogram{shards: make([]histShard, shards)}
}

// Shards returns the shard count, for callers that index shards by
// worker id.
func (h *Histogram) Shards() int { return len(h.shards) }

// Record adds one sample with value v to the given shard.
func (h *Histogram) Record(shard int, v uint64) { h.RecordN(shard, v, 1) }

// RecordN adds n samples, each with value v, to the given shard. It is
// the batch-amortized form used when every transaction in a submission
// shares the submission's latency.
func (h *Histogram) RecordN(shard int, v, n uint64) {
	if n == 0 {
		return
	}
	s := &h.shards[shard]
	s.counts[bucketFor(v)].Add(n)
	s.count.Add(n)
	s.sum.Add(v * n)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Reset zeroes every shard. Concurrent Record calls may straddle the
// reset; the histogram stays internally consistent enough for monitoring
// (counts and sums are independently atomic).
func (h *Histogram) Reset() {
	for i := range h.shards {
		s := &h.shards[i]
		for j := range s.counts {
			s.counts[j].Store(0)
		}
		s.count.Store(0)
		s.sum.Store(0)
		s.max.Store(0)
	}
}

// HistSnapshot is a merged, immutable copy of a histogram's counters.
type HistSnapshot struct {
	Counts [numBuckets]uint64
	Count  uint64
	Sum    uint64
	Max    uint64
}

// Snapshot merges all shards into a point-in-time copy. It allocates;
// call it from scrape/report paths only.
func (h *Histogram) Snapshot() *HistSnapshot {
	out := &HistSnapshot{}
	for i := range h.shards {
		s := &h.shards[i]
		for j := range s.counts {
			out.Counts[j] += s.counts[j].Load()
		}
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		if m := s.max.Load(); m > out.Max {
			out.Max = m
		}
	}
	return out
}

// Merge adds another snapshot's counters into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Sub subtracts an earlier snapshot of the same histogram, leaving the
// samples recorded between the two — the windowing primitive for callers
// that watch a continuously-recording histogram over sliding intervals.
// Counters are cumulative so the subtraction is exact; Max is not (a
// maximum cannot be un-seen), so the cumulative maximum is retained and
// windowed readers should rely on quantiles rather than Max.
func (s *HistSnapshot) Sub(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] -= o.Counts[i]
	}
	s.Count -= o.Count
	s.Sum -= o.Sum
}

// Mean returns the average sample value, or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the value at quantile q in [0,1], estimated as the
// lower bound of the bucket containing the q-th sample (so the estimate
// never exceeds the true value by more than one sub-bucket, ~6%). The
// exact recorded maximum is returned for q >= 1 or when the rank lands in
// the last populated bucket.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			if v := BucketLow(i); v < s.Max {
				return v
			}
			return s.Max
		}
	}
	// Counts and Count are updated by independent atomics, so a racing
	// snapshot can observe Count > sum(Counts); fall back to the maximum.
	return s.Max
}
