package obs

// Stage identifies one segment of a batch's trip through the pipeline,
// or one of the per-transaction latency measurements layered on top.
type Stage int

const (
	// StageSeqWait: earliest submission arrival in the batch → the
	// sequencer flushing (stamping) the batch.
	StageSeqWait Stage = iota
	// StageLogAppend: sequencer flush → command-log append returned
	// (durability on only).
	StageLogAppend
	// StageCC: batch handed to the CC workers → last CC worker finished
	// its partitions.
	StageCC
	// StageBarrier: first CC worker finished → last CC worker finished,
	// i.e. how long the fastest worker idled at the phase barrier.
	StageBarrier
	// StageExec: forwarder released the batch to the execution workers →
	// last execution worker finished its stripe.
	StageExec
	// StageDurableWait: time the ack worker waited for the log writer to
	// report the batch durable after execution finished.
	StageDurableWait
	// StageSubmit: full ExecuteBatch latency as seen by the submitter,
	// recorded once per transaction (all transactions in a submission
	// share the call's latency).
	StageSubmit
	// StageRORead: read-only fast-path latency — per job on the snapshot
	// read workers, per call for the inline Read/ReadRange API.
	StageRORead

	NumStages int = iota
)

// stageNames are the label values used in the Prometheus exposition and
// the bench stage-breakdown tables.
var stageNames = [NumStages]string{
	"seq_wait", "log_append", "cc", "barrier", "exec",
	"durable_wait", "submit", "ro_read",
}

// StageName returns the exposition label for a stage.
func StageName(s Stage) string { return stageNames[s] }

// Metrics bundles the stage histograms and the flight recorder for one
// engine. Histograms record nanoseconds.
type Metrics struct {
	Stages [NumStages]*Histogram
	Flight *Recorder
}

// NewMetrics creates the metrics set. Batch-stage histograms are sharded
// per execution worker (the last finisher records the whole timeline);
// the read-path histogram gets one shard per snapshot read worker plus a
// shared shard for inline reads; the submit histogram is a single shard
// updated by client goroutines.
func NewMetrics(execWorkers, readWorkers, flightSize int) *Metrics {
	m := &Metrics{Flight: NewRecorder(flightSize)}
	for s := 0; s < NumStages; s++ {
		shards := 1
		switch Stage(s) {
		case StageSeqWait, StageLogAppend, StageCC, StageBarrier, StageExec:
			shards = execWorkers
		case StageRORead:
			shards = readWorkers + 1
		}
		m.Stages[s] = NewHistogram(shards)
	}
	return m
}

// Reset zeroes every histogram and discards the flight recorder's
// contents.
func (m *Metrics) Reset() {
	for _, h := range m.Stages {
		h.Reset()
	}
	m.Flight.Reset()
}
