package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	// Exact unit buckets below 16.
	for v := uint64(0); v < 16; v++ {
		if got := bucketFor(v); got != int(v) {
			t.Fatalf("bucketFor(%d) = %d, want %d", v, got, v)
		}
		if BucketLow(int(v)) != v {
			t.Fatalf("BucketLow(%d) = %d", v, BucketLow(int(v)))
		}
	}
	// Every value maps inside its bucket's [low, high) bounds, with
	// relative width <= 1/16 above 16.
	vals := []uint64{15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 1000, 4095, 4096,
		1 << 20, (1 << 20) + 1, 1<<40 - 1, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)}
	for _, v := range vals {
		i := bucketFor(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketFor(%d) = %d out of range", v, i)
		}
		lo, hi := BucketLow(i), BucketHigh(i)
		// The last bucket's true upper bound (2^64) is unrepresentable;
		// BucketHigh saturates at MaxUint64 there, so skip its upper check.
		if v < lo || (i+1 < numBuckets && v >= hi) {
			t.Fatalf("v=%d not in bucket %d bounds [%d,%d)", v, i, lo, hi)
		}
		if v >= 16 && hi > lo {
			if width := hi - lo; width > v/8 {
				t.Fatalf("v=%d bucket width %d too coarse", v, width)
			}
		}
	}
	// Monotonic: bucket index never decreases as values grow.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 20, 31, 32, 48, 64, 1000, 1 << 30, 1 << 62} {
		i := bucketFor(v)
		if i < prev {
			t.Fatalf("bucketFor not monotonic at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
	// BucketLow is the inverse lower bound: bucketFor(BucketLow(i)) == i.
	for i := 0; i < numBuckets; i++ {
		if got := bucketFor(BucketLow(i)); got != i {
			t.Fatalf("bucketFor(BucketLow(%d)) = %d", i, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1)
	for v := uint64(1); v <= 10000; v++ {
		h.Record(0, v)
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 10000 {
		t.Fatalf("max = %d", s.Max)
	}
	wantSum := uint64(10000 * 10001 / 2)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	check := func(q float64, want uint64) {
		got := s.Quantile(q)
		// Estimate is the containing bucket's lower bound: within 1/16
		// relative error below the true value, never above it by design.
		if got > want || float64(got) < float64(want)*(1-1.0/8) {
			t.Errorf("q%.3f = %d, want ~%d", q, got, want)
		}
	}
	check(0.5, 5000)
	check(0.99, 9900)
	check(0.999, 9990)
	if s.Quantile(1) != 10000 {
		t.Errorf("q1 = %d, want exact max", s.Quantile(1))
	}
	if s.Quantile(0) == 0 {
		t.Errorf("q0 = 0, want >= 1")
	}
}

func TestHistogramMergeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	single := NewHistogram(1)
	sharded := NewHistogram(4)
	a := NewHistogram(1)
	b := NewHistogram(1)
	for i := 0; i < 50000; i++ {
		v := uint64(rng.Int63n(1 << 30))
		single.Record(0, v)
		sharded.Record(i%4, v)
		if i%2 == 0 {
			a.Record(0, v)
		} else {
			b.Record(0, v)
		}
	}
	want := single.Snapshot()
	if got := sharded.Snapshot(); *got != *want {
		t.Errorf("sharded snapshot differs from single-shard")
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	if *merged != *want {
		t.Errorf("merged snapshot differs from single-shard")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%.3f differs after merge", q)
		}
	}
}

func TestHistogramRecordN(t *testing.T) {
	h := NewHistogram(2)
	h.RecordN(0, 100, 7)
	h.RecordN(1, 200, 3)
	s := h.Snapshot()
	if s.Count != 10 || s.Sum != 100*7+200*3 || s.Max != 200 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Counts[bucketFor(100)] != 7 || s.Counts[bucketFor(200)] != 3 {
		t.Fatalf("bucket counts wrong")
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("reset left %+v", s)
	}
}

// TestHistogramConcurrent drives record/snapshot/reset from many
// goroutines; run under -race it is the memory-safety check for the
// lock-free record path.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(4)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(shard int) {
			defer writers.Done()
			v := uint64(shard + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 1000; i++ {
					h.Record(shard, v*uint64(i%100+1))
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				s := h.Snapshot()
				s.Quantile(0.99)
				if i%50 == 49 {
					h.Reset()
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
