package server

// The group batcher: the server's whole reason to exist. BOHM's costs
// amortize per batch (sequencing, CC fan-out, the log append and fsync,
// arena resets), so a single connection submitting one transaction at a
// time pays full freight per transaction. The batcher coalesces
// submissions from every connection into shared ExecuteBatch calls,
// converting connection-level parallelism directly into batch depth.
//
// Two lanes, because the two engine entry points have different
// economics. The write lane feeds ExecuteBatch and is worth waiting on:
// a fuller batch divides the fsync among more transactions. The read
// lane feeds ExecuteReadOnly, which costs nothing per call beyond the
// recency wait — reads are grouped only as far as they have already
// queued, never held back by a timer.
//
// The write-lane window adapts to arrival rate with an EWMA of
// inter-arrival times: when arrivals are sparse (EWMA at or above the
// window) a timer cannot fill the batch, so partial batches flush the
// moment the queue drains — an idle engine serves a lone client at
// near-embedded latency. When arrivals are dense the lane holds a
// partial batch until the window deadline, letting concurrent
// connections pile on.
//
// Admission control: at most MaxInFlight dispatched batches per lane.
// When the engine falls behind, flush blocks the coalescer, the lane
// queue fills, per-connection pipeline slots stop recycling, and
// readers stop reading frames — backpressure all the way to the
// client's TCP window, with no unbounded queue anywhere.

import (
	"sync"
	"time"

	"bohm/internal/txn"
)

// Flush reasons, indexed into metrics.flushes.
const (
	flushSize  = iota // batch reached MaxBatch
	flushTimer        // window deadline expired with a partial batch
	flushIdle         // queue drained under sparse arrivals (or read lane)
	flushClose        // lane closed during collection
	numFlushReasons
)

var flushReasonNames = [numFlushReasons]string{"size", "timer", "idle", "close"}

// Histogram shards, one per lane (each lane is a single goroutine).
const (
	writeLane = 0
	readLane  = 1
)

type batcher struct {
	srv      *Server
	max      int
	window   time.Duration
	in       chan *request // write lane
	ro       chan *request // read lane
	inflight [2]chan struct{}
	dispatch sync.WaitGroup // in-flight batch goroutines
	lanes    sync.WaitGroup // the two coalescers
}

func newBatcher(s *Server) *batcher {
	b := &batcher{
		srv:    s,
		max:    s.cfg.MaxBatch,
		window: s.cfg.BatchWindow,
		in:     make(chan *request, s.cfg.MaxBatch),
		ro:     make(chan *request, s.cfg.MaxBatch),
	}
	b.inflight[writeLane] = make(chan struct{}, s.cfg.MaxInFlight)
	b.inflight[readLane] = make(chan struct{}, s.cfg.MaxInFlight)
	b.lanes.Add(2)
	go b.coalesce(b.in, writeLane)
	go b.coalesce(b.ro, readLane)
	return b
}

// stop closes both lanes and waits for the coalescers and every
// dispatched batch to finish. Callers must guarantee no submitter is
// left: the server closes lanes only after every connection has drained.
func (b *batcher) stop() {
	close(b.in)
	close(b.ro)
	b.lanes.Wait()
	b.dispatch.Wait()
}

// coalesce is one lane's collection loop; see the package comment for
// the policy.
func (b *batcher) coalesce(ch chan *request, lane int) {
	defer b.lanes.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	// EWMA inter-arrival estimate; starts at the window (assume sparse)
	// and is clamped per sample so one long idle gap decays within a few
	// arrivals of a flood starting.
	iat := b.window
	var lastArrival time.Time
	observe := func() {
		now := time.Now()
		if !lastArrival.IsZero() {
			d := now.Sub(lastArrival)
			if lim := 4 * b.window; d > lim {
				d = lim
			}
			iat = (7*iat + d) / 8
		}
		lastArrival = now
	}
	buf := make([]*request, 0, b.max)
	for {
		r, ok := <-ch
		if !ok {
			return
		}
		buf = append(buf[:0], r)
		observe()
		first := time.Now()
		reason := flushSize
		closed := false
	fill:
		for len(buf) < b.max {
			// Greedy non-blocking drain: take everything already queued.
			select {
			case r, ok := <-ch:
				if !ok {
					reason, closed = flushClose, true
					break fill
				}
				buf = append(buf, r)
				observe()
				continue
			default:
			}
			// Queue momentarily empty with a partial batch.
			if lane == readLane || iat >= b.window {
				reason = flushIdle
				break fill
			}
			wait := time.Until(first.Add(b.window))
			if wait <= 0 {
				reason = flushTimer
				break fill
			}
			timer.Reset(wait)
			select {
			case r, ok := <-ch:
				if !timer.Stop() {
					<-timer.C
				}
				if !ok {
					reason, closed = flushClose, true
					break fill
				}
				buf = append(buf, r)
				observe()
			case <-timer.C:
				reason = flushTimer
				break fill
			}
		}
		b.flush(buf, lane, reason, first)
		buf = buf[:0]
		if closed {
			return
		}
	}
}

// flush records the batch's shape, takes an in-flight slot (admission
// control — this send blocking the coalescer IS the backpressure), and
// dispatches the batch to the engine on its own goroutine so the lane
// can start collecting the next one.
func (b *batcher) flush(reqs []*request, lane, reason int, first time.Time) {
	if len(reqs) == 0 {
		return
	}
	batch := make([]*request, len(reqs))
	copy(batch, reqs)
	m := b.srv.m
	m.fill.Record(lane, uint64(len(batch)))
	m.wait.Record(lane, uint64(time.Since(first).Nanoseconds()))
	m.flushes[lane][reason].Add(1)
	sem := b.inflight[lane]
	select {
	case sem <- struct{}{}:
	default:
		m.admissionStalls.Add(1)
		sem <- struct{}{}
	}
	m.queued.Add(-int64(len(batch)))
	m.inflightBatches.Add(1)
	b.dispatch.Add(1)
	go func() {
		defer b.dispatch.Done()
		b.run(batch, lane)
		m.inflightBatches.Add(-1)
		<-sem
	}()
}

// run executes one coalesced batch and fans results back to each
// request's connection. The recency token attached to every response is
// the newest acknowledged batch after completion: a client that echoes
// it on a read — on this connection or any other that observed the ack —
// is guaranteed to see these writes.
func (b *batcher) run(batch []*request, lane int) {
	eng := b.srv.eng
	ts := make([]txn.Txn, len(batch))
	for i, r := range batch {
		ts[i] = r.t
	}
	var errs []error
	if lane == readLane {
		var maxTok uint64
		for _, r := range batch {
			if r.token > maxTok {
				maxTok = r.token
			}
		}
		eng.WaitCovered(maxTok)
		errs = eng.ExecuteReadOnly(ts)
	} else {
		errs = eng.ExecuteBatch(ts)
	}
	token := eng.AckedBatch()
	for i, r := range batch {
		r.finish(errs[i], token)
	}
}
