package server

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bohm/client"
	"bohm/internal/core"
	"bohm/internal/txn"
	"bohm/internal/vfs"
	"bohm/internal/wire"
	"bohm/internal/workload"
)

const (
	accountTable   = 1
	accounts       = 64
	initialBalance = uint64(1000)
)

func acct(id uint64) txn.Key { return txn.Key{Table: accountTable, ID: id} }

// startServer builds an engine + registry (KV procedures) + server on a
// loopback port and registers cleanup in dependency order: server
// first, then engine.
func startServer(t *testing.T, cfg core.Config, scfg Config) (*core.Engine, *txn.Registry, *Server) {
	t.Helper()
	reg := txn.NewRegistry()
	workload.RegisterKV(reg)
	var (
		eng *core.Engine
		err error
	)
	if cfg.LogDir != "" {
		eng, err = core.Recover(cfg, reg)
	} else {
		eng, err = core.New(cfg)
	}
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	scfg.Addr = "127.0.0.1:0"
	srv, err := New(eng, reg, scfg)
	if err != nil {
		eng.Close()
		t.Fatalf("server: %v", err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		eng.Close()
	})
	return eng, reg, srv
}

// loadAccounts seeds the balances through the wire, like any client.
func loadAccounts(t *testing.T, reg *txn.Registry, addr string) {
	t.Helper()
	c, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	var bal [8]byte
	txn.PutU64(bal[:], initialBalance)
	ts := make([]txn.Txn, accounts)
	for i := range ts {
		ts[i] = reg.MustCall(workload.ProcKVPut, workload.KVPutArgs(acct(uint64(i)), bal[:]))
	}
	for i, err := range c.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("loading account %d: %v", i, err)
		}
	}
}

// readBalances sums every account through the read-only path on a fresh
// connection that has observed tok.
func readBalances(t *testing.T, reg *txn.Registry, addr string, tok uint64) uint64 {
	t.Helper()
	c, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.ObserveToken(tok)
	var sum uint64
	ps := make([]*client.Pending, accounts)
	for i := range ps {
		p, err := c.SubmitReadOnly(reg.MustCall(workload.ProcKVGet, workload.KVGetArgs(acct(uint64(i)))))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		ps[i] = p
	}
	for i, p := range ps {
		if err := p.Wait(); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		sum += txn.U64(p.Result())
	}
	return sum
}

// TestLoopbackSmokeConservedTransfers floods the server from concurrent
// goroutine clients doing kv.transfer among a shared account set. The
// invariant — transfers conserve the total — catches lost, duplicated,
// or misordered executions; the fill histogram proves transactions from
// different connections actually shared batches.
func TestLoopbackSmokeConservedTransfers(t *testing.T) {
	cfg := core.DefaultConfig()
	_, reg, srv := startServer(t, cfg, Config{})
	loadAccounts(t, reg, srv.Addr())

	const (
		clients = 8
		rounds  = 25
		chunk   = 16
	)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		maxTok uint64
	)
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr(), &client.Options{PipelineDepth: 8})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(ci) + 1))
			for r := 0; r < rounds; r++ {
				ts := make([]txn.Txn, chunk)
				for i := range ts {
					from := uint64(rng.Intn(accounts))
					to := uint64(rng.Intn(accounts - 1))
					if to >= from {
						to++ // from == to would be a duplicate write key
					}
					amt := uint64(rng.Intn(10) + 1)
					ts[i] = reg.MustCall(workload.ProcKVTransfer,
						workload.KVTransferArgs(acct(from), acct(to), amt))
				}
				for i, err := range c.ExecuteBatch(ts) {
					// Insufficient funds is a legal abort; anything else fails.
					if err != nil && !errors.Is(err, txn.ErrAbort) {
						errCh <- fmt.Errorf("client %d round %d txn %d: %w", ci, r, i, err)
						return
					}
				}
			}
			mu.Lock()
			if tok := c.Token(); tok > maxTok {
				maxTok = tok
			}
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if got, want := readBalances(t, reg, srv.Addr(), maxTok), initialBalance*accounts; got != want {
		t.Fatalf("balance sum after concurrent transfers = %d, want %d", got, want)
	}
	if snap := srv.m.fill.Snapshot(); snap.Max < 2 {
		t.Errorf("group batcher never coalesced: max batch fill %d", snap.Max)
	}
}

// TestCloseDrainsInFlight pushes a pipeline of unacknowledged
// submissions and closes the server concurrently: every pending must
// resolve (committed, aborted, or refused as closed) — none may hang —
// and the engine must still be healthy afterwards.
func TestCloseDrainsInFlight(t *testing.T) {
	cfg := core.DefaultConfig()
	eng, reg, srv := startServer(t, cfg, Config{PipelineDepth: 32})
	loadAccounts(t, reg, srv.Addr())

	c, err := client.Dial(srv.Addr(), &client.Options{PipelineDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var ps []*client.Pending
	for i := 0; i < 200; i++ {
		from, to := uint64(i%accounts), uint64((i+1)%accounts)
		p, err := c.Submit(reg.MustCall(workload.ProcKVTransfer,
			workload.KVTransferArgs(acct(from), acct(to), 1)))
		if err != nil {
			break // connection torn down mid-close: already resolved below
		}
		ps = append(ps, p)
		if i == 100 {
			go func() { _ = srv.Close() }()
		}
	}
	_ = c.Flush()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, p := range ps {
			err := p.Wait()
			if err != nil && !errors.Is(err, txn.ErrAbort) &&
				!errors.Is(err, core.ErrClosed) && !errors.Is(err, client.ErrConnClosed) {
				t.Errorf("pending %d resolved with unexpected error: %v", i, err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown did not drain in-flight submissions within 30s")
	}
	if h, cause := eng.Health(); h != core.Healthy {
		t.Fatalf("engine health after server close = %v (%v), want Healthy", h, cause)
	}
}

// TestDegradedEngineRejectsWritesOnWire walks the PR 9 ladder over the
// network: a persistent log-sync fault degrades the engine; writes must
// then fail fast with a typed StatusDurabilityLost the client maps back
// to ErrDurabilityLost, while reads keep serving the durable snapshot.
func TestDegradedEngineRejectsWritesOnWire(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	cfg := core.DefaultConfig()
	cfg.BatchSize = 8
	cfg.LogDir = dir
	cfg.FS = fsys
	cfg.CheckpointEveryBatches = 1000
	cfg.LogRetry = core.RetryPolicy{Attempts: 2, Backoff: 200 * time.Microsecond}
	eng, reg, srv := startServer(t, cfg, Config{})
	loadAccounts(t, reg, srv.Addr())

	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: 4, Count: -1, DropUnsynced: true})

	c, err := client.Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	degraded := false
	var bal [8]byte
	txn.PutU64(bal[:], 1)
	for i := 0; i < 200 && !degraded; i++ {
		p, err := c.Submit(reg.MustCall(workload.ProcKVPut, workload.KVPutArgs(acct(uint64(i%accounts)), bal[:])))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if werr := p.Wait(); werr != nil {
			if !errors.Is(werr, core.ErrDurabilityLost) {
				t.Fatalf("write %d failed with %v, want ErrDurabilityLost", i, werr)
			}
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("persistent log fault never surfaced ErrDurabilityLost on the wire")
	}
	if h, _ := eng.Health(); h != core.LogDegraded {
		t.Fatalf("engine health = %v, want LogDegraded", h)
	}

	// Later writes are refused fast on the server's admission path.
	rejectedBefore := srv.m.rejected.Load()
	p, err := c.Submit(reg.MustCall(workload.ProcKVPut, workload.KVPutArgs(acct(0), bal[:])))
	if err != nil {
		t.Fatal(err)
	}
	if werr := p.Wait(); !errors.Is(werr, core.ErrDurabilityLost) {
		t.Fatalf("degraded write = %v, want ErrDurabilityLost", werr)
	}
	if srv.m.rejected.Load() == rejectedBefore {
		t.Error("degraded write was not refused on the fail-fast path")
	}

	// Reads keep serving the last durable snapshot.
	rp, err := c.SubmitReadOnly(reg.MustCall(workload.ProcKVGet, workload.KVGetArgs(acct(0))))
	if err != nil {
		t.Fatal(err)
	}
	if rerr := rp.Wait(); rerr != nil {
		t.Fatalf("degraded read = %v, want success", rerr)
	}
	if got := txn.U64(rp.Result()); got == 0 {
		t.Fatal("degraded read returned an empty balance")
	}
}

// TestWireStatusesAndMetrics covers the remaining typed wire errors and
// the /metrics exposition carrying bohm_server_* next to the engine
// family.
func TestWireStatusesAndMetrics(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Metrics = true
	cfg.DebugAddr = "127.0.0.1:0"
	eng, reg, srv := startServer(t, cfg, Config{})
	loadAccounts(t, reg, srv.Addr())

	c, err := client.Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Unknown procedure.
	p, err := c.Submit(&fakeCall{proc: "no.such.proc"})
	if err != nil {
		t.Fatal(err)
	}
	if werr := p.Wait(); !errors.Is(werr, wire.ErrUnknownProc) {
		t.Fatalf("unknown proc = %v, want ErrUnknownProc", werr)
	}

	// Read-only flag on a writing transaction.
	p, err = c.SubmitReadOnly(reg.MustCall(workload.ProcKVTransfer,
		workload.KVTransferArgs(acct(0), acct(1), 1)))
	if err != nil {
		t.Fatal(err)
	}
	if werr := p.Wait(); !errors.Is(werr, core.ErrNotReadOnly) {
		t.Fatalf("read-only transfer = %v, want ErrNotReadOnly", werr)
	}

	// Missing record.
	p, err = c.SubmitReadOnly(reg.MustCall(workload.ProcKVGet, workload.KVGetArgs(txn.Key{Table: 9, ID: 9})))
	if err != nil {
		t.Fatal(err)
	}
	if werr := p.Wait(); !errors.Is(werr, txn.ErrNotFound) {
		t.Fatalf("missing record = %v, want ErrNotFound", werr)
	}

	// Result round-trip.
	p, err = c.SubmitReadOnly(reg.MustCall(workload.ProcKVGet, workload.KVGetArgs(acct(3))))
	if err != nil {
		t.Fatal(err)
	}
	if werr := p.Wait(); werr != nil {
		t.Fatal(werr)
	}
	if got := txn.U64(p.Result()); got != initialBalance {
		t.Fatalf("kv.get result = %d, want %d", got, initialBalance)
	}

	// Non-loggable transactions are refused client-side.
	if _, err := c.Submit(&txn.Proc{}); !errors.Is(err, core.ErrNotLoggable) {
		t.Fatalf("non-loggable submit = %v, want ErrNotLoggable", err)
	}

	resp, err := http.Get("http://" + eng.DebugListenAddr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bohm_engine_health",
		"bohm_server_connections",
		"bohm_server_inflight_batches",
		"bohm_server_queued_txns",
		"bohm_server_batch_fill_bucket",
		"bohm_server_batch_wait_seconds_bucket",
		"bohm_server_txns_submitted_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// fakeCall is a Loggable whose procedure id the server does not know.
type fakeCall struct {
	txn.Proc
	proc string
}

func (f *fakeCall) Procedure() (string, []byte) { return f.proc, nil }
