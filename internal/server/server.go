// Package server is bohm's TCP front-end: per-connection readers feed a
// shared group batcher (batcher.go) that packs transactions from every
// connection into one ExecuteBatch call per batching window, then fans
// acknowledgements back per connection. The wire format (internal/wire)
// is the WAL's registry encoding, so any registered procedure is
// servable without new serialization.
//
// Guarantees, as seen from a client:
//
//   - A transaction is acknowledged only after it is durable and
//     executed (the engine's own ack discipline; the server adds none).
//   - Serial order is server arrival order within a lane; transactions
//     pipelined on one connection retain their submission order in the
//     write lane (one reader goroutine enqueues them in frame order).
//   - Every response carries a recency token. Reads submitted with a
//     token observe every write whose acknowledgement produced it —
//     read-your-writes on the same connection, and across connections
//     once the token is handed over (client.ObserveToken).
//   - A degraded engine (core.LogDegraded) refuses writes fast with
//     StatusDurabilityLost but keeps serving reads from the last
//     durable snapshot; a closed engine or server refuses everything
//     with StatusClosed.
//
// Backpressure is layered: per-connection pipeline slots (PipelineDepth)
// bound a client's unacknowledged submissions — the reader stops pulling
// frames when they are gone, pushing back on the client's TCP window —
// and the lane queue plus MaxInFlight dispatched batches bound the
// server's total appetite.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/core"
	"bohm/internal/obs"
	"bohm/internal/txn"
	"bohm/internal/wire"
)

// Config tunes the front-end; zero values take the stated defaults.
type Config struct {
	// Addr is the TCP listen address, e.g. ":4455" or "127.0.0.1:0".
	Addr string
	// MaxBatch caps transactions per coalesced batch. Default 1024
	// (the engine's default sequencer batch size).
	MaxBatch int
	// BatchWindow bounds how long the write lane holds a partial batch
	// under dense arrivals; sparse traffic flushes immediately
	// regardless (see batcher.go). Default 200µs.
	BatchWindow time.Duration
	// MaxInFlight bounds dispatched-but-unfinished batches per lane.
	// Default 4.
	MaxInFlight int
	// PipelineDepth bounds unacknowledged submissions per connection.
	// Default 64.
	PipelineDepth int
}

func (c *Config) normalize() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 64
	}
}

// closeGrace bounds how long a draining connection's writer may block
// flushing responses to a slow client before the drain gives up on it.
const closeGrace = 2 * time.Second

// Server owns the listener, the connections, and the batcher. The
// engine and registry are borrowed: callers close the server first,
// then the engine.
type Server struct {
	cfg Config
	eng *core.Engine
	reg *txn.Registry
	ln  net.Listener
	b   *batcher
	m   *metrics

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
}

// New starts a server for eng on cfg.Addr. Procedures are resolved
// through reg, which must match the registry the engine recovers with.
// Server metrics are published on the engine's /metrics endpoint when
// Config.Metrics/DebugAddr are enabled.
func New(eng *core.Engine, reg *txn.Registry, cfg Config) (*Server, error) {
	if eng == nil || reg == nil {
		return nil, errors.New("server: nil engine or registry")
	}
	cfg.normalize()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		eng:   eng,
		reg:   reg,
		ln:    ln,
		m:     newMetrics(),
		conns: make(map[*conn]struct{}),
	}
	s.b = newBatcher(s)
	eng.RegisterMetricsExtra(s.writeMetrics)
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (how callers learn the port
// under ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := s.register(nc)
		if c == nil {
			_ = nc.Close()
			continue
		}
		go c.run()
	}
}

func (s *Server) register(nc net.Conn) *conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	c := &conn{
		srv:        s,
		c:          nc,
		out:        make(chan *wire.Response, s.cfg.PipelineDepth),
		slots:      make(chan struct{}, s.cfg.PipelineDepth),
		die:        make(chan struct{}),
		readerDone: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	return c
}

func (s *Server) forget(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Close drains and stops the server: stop accepting, kick every
// connection's reader, wait for all in-flight submissions to finish and
// their responses to flush (bounded by closeGrace per stalled client),
// then stop the batcher. The engine is left open — it belongs to the
// caller and is closed after.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	s.acceptWG.Wait()
	for _, c := range conns {
		c.kick()
	}
	s.connWG.Wait()
	// Every connection has drained (all pipeline slots reacquired), so no
	// submitter remains and the lanes can close.
	s.b.stop()
	return err
}

// request is one submitted transaction in flight through the batcher.
type request struct {
	c     *conn
	id    uint64
	token uint64
	t     txn.Txn // what the batch executes (wire wrapper, Loggable)
	inner txn.Txn // factory-built transaction, for txn.Resulter
}

// finish builds the response and hands it to the connection's writer.
// The request still holds its pipeline slot, so the buffered send can
// never block (cap(out) == PipelineDepth >= outstanding requests).
func (r *request) finish(err error, token uint64) {
	resp := &wire.Response{ID: r.id, Token: token}
	if err != nil {
		resp.Status = wire.StatusFor(err)
		resp.Msg = err.Error()
	} else if res, ok := r.inner.(txn.Resulter); ok {
		resp.Result = res.Result()
	}
	r.c.out <- resp
}

// wireTxn wraps a registry-built transaction with the identity and
// access sets that came over the wire, mirroring the WAL's replay
// wrapper: when the client declared sets, they are authoritative (the
// same bytes will be logged); when it declared none, the factory-built
// transaction's own sets stand.
type wireTxn struct {
	inner    txn.Txn
	rec      txn.Record
	declared bool
}

var _ txn.Loggable = (*wireTxn)(nil)

func (t *wireTxn) ReadSet() []txn.Key {
	if t.declared {
		return t.rec.Reads
	}
	return t.inner.ReadSet()
}

func (t *wireTxn) WriteSet() []txn.Key {
	if t.declared {
		return t.rec.Writes
	}
	return t.inner.WriteSet()
}

func (t *wireTxn) RangeSet() []txn.KeyRange {
	if t.declared {
		return t.rec.Ranges
	}
	return t.inner.RangeSet()
}

func (t *wireTxn) Run(ctx txn.Ctx) error { return t.inner.Run(ctx) }

func (t *wireTxn) Procedure() (string, []byte) { return t.rec.Proc, t.rec.Args }

// conn is one client connection: a reader goroutine (frames → requests →
// batcher lanes), a writer goroutine (responses → frames), and the
// pipeline-slot semaphore tying their rates together.
type conn struct {
	srv *Server
	c   net.Conn
	out chan *wire.Response
	// slots is the pipeline-depth semaphore: the reader fills a slot per
	// accepted frame, the writer empties it once the response is on the
	// wire. Draining a connection = filling every slot.
	slots      chan struct{}
	die        chan struct{}
	kickOnce   sync.Once
	readerDone chan struct{}
	writerDone chan struct{}
}

// kick unblocks a connection's goroutines for teardown: the reader via
// a past read deadline, the writer via a bounded write deadline (one
// grace period to flush pending responses to a live client).
func (c *conn) kick() {
	c.kickOnce.Do(func() {
		close(c.die)
		_ = c.c.SetReadDeadline(time.Now())
		_ = c.c.SetWriteDeadline(time.Now().Add(closeGrace))
	})
}

func (c *conn) run() {
	defer c.srv.connWG.Done()
	c.srv.m.connections.Add(1)
	go c.writeLoop()
	c.readLoop()
	close(c.readerDone)
	c.kick()
	// Drain: every outstanding request holds a slot, released only after
	// its response is written (or the writer has failed past it). Filling
	// the whole semaphore proves nothing is left in the batcher or the
	// out queue for this connection.
	for i := 0; i < cap(c.slots); i++ {
		c.slots <- struct{}{}
	}
	close(c.out)
	<-c.writerDone
	_ = c.c.Close()
	c.srv.forget(c)
	c.srv.m.connections.Add(-1)
}

func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.c, 64<<10)
	if err := wire.Handshake(readWriter{br, c.c}); err != nil {
		return
	}
	for {
		// Frames are read into fresh buffers: decoded args are retained
		// by the built transactions for the life of the request.
		payload, err := wire.ReadFrame(br, nil)
		if err != nil {
			return
		}
		if len(payload) == 0 || payload[0] != wire.MsgSubmit {
			return
		}
		req, err := wire.DecodeRequest(payload[1:])
		if err != nil {
			return
		}
		select {
		case c.slots <- struct{}{}:
		case <-c.die:
			return
		}
		c.handle(&req)
	}
}

// handle admits one decoded submit: fail-fast checks, transaction
// build, lane routing. Runs on the reader goroutine, so per-connection
// submission order is preserved into the write lane.
func (c *conn) handle(q *wire.Request) {
	s := c.srv
	m := s.m
	readOnly := q.Flags&wire.FlagReadOnly != 0

	if h, cause := s.eng.Health(); h == core.Closed {
		c.reject(q.ID, wire.StatusClosed, core.ErrClosed.Error())
		return
	} else if h == core.LogDegraded && !readOnly {
		// Fail writes fast without spending batcher capacity; reads keep
		// flowing to the degraded snapshot.
		msg := core.ErrDurabilityLost.Error()
		if cause != nil {
			msg += ": " + cause.Error()
		}
		c.reject(q.ID, wire.StatusDurabilityLost, msg)
		return
	}

	if !s.reg.Registered(q.Rec.Proc) {
		c.reject(q.ID, wire.StatusUnknownProc, fmt.Sprintf("unknown procedure %q", q.Rec.Proc))
		return
	}
	inner, err := s.reg.Build(q.Rec.Proc, q.Rec.Args)
	if err != nil {
		c.reject(q.ID, wire.StatusBadRequest, err.Error())
		return
	}
	declared := len(q.Rec.Reads)+len(q.Rec.Writes)+len(q.Rec.Ranges) > 0
	req := &request{
		c:     c,
		id:    q.ID,
		token: q.Token,
		t:     &wireTxn{inner: inner, rec: q.Rec, declared: declared},
		inner: inner,
	}
	m.submitted.Add(1)
	m.queued.Add(1)
	if readOnly {
		s.b.ro <- req
	} else {
		s.b.in <- req
	}
}

// reject responds without touching the batcher; the request's slot is
// released by the writer like any other response.
func (c *conn) reject(id uint64, status byte, msg string) {
	c.srv.m.rejected.Add(1)
	c.out <- &wire.Response{ID: id, Status: status, Token: c.srv.eng.AckedBatch(), Msg: msg}
}

// writeLoop frames responses back to the client, flushing whenever the
// queue goes momentarily empty. After a write error it keeps draining —
// and keeps releasing pipeline slots, which the drain in run() depends
// on — without writing.
func (c *conn) writeLoop() {
	defer close(c.writerDone)
	bw := bufio.NewWriterSize(c.c, 64<<10)
	var buf []byte
	failed := false
	write := func(r *wire.Response) {
		if failed {
			return
		}
		buf = wire.AppendResponse(buf[:0], r)
		if err := wire.WriteFrame(bw, buf); err != nil {
			failed = true
		}
	}
	for {
		select {
		case r, ok := <-c.out:
			if !ok {
				_ = bw.Flush()
				return
			}
			write(r)
			<-c.slots
		default:
			if !failed && bw.Flush() != nil {
				failed = true
			}
			r, ok := <-c.out
			if !ok {
				return
			}
			write(r)
			<-c.slots
		}
	}
}

// readWriter pairs the buffered reader with the raw conn for the
// handshake.
type readWriter struct {
	io.Reader
	io.Writer
}

// metrics is the server-side observability state, published on the
// engine's /metrics endpoint as the bohm_server_* family.
type metrics struct {
	fill *obs.Histogram // batch size at flush, per lane
	wait *obs.Histogram // first-enqueue → flush latency (ns), per lane

	flushes         [2][numFlushReasons]atomic.Uint64
	admissionStalls atomic.Uint64
	submitted       atomic.Uint64
	rejected        atomic.Uint64

	connections     atomic.Int64
	queued          atomic.Int64
	inflightBatches atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		fill: obs.NewHistogram(2),
		wait: obs.NewHistogram(2),
	}
}

func (s *Server) writeMetrics(w io.Writer) {
	m := s.m
	counters := []obs.Counter{
		{Name: "bohm_server_txns_submitted_total", Help: "Transactions accepted into the batcher.", Value: m.submitted.Load()},
		{Name: "bohm_server_txns_rejected_total", Help: "Submissions refused before batching (health, unknown procedure, bad request).", Value: m.rejected.Load()},
		{Name: "bohm_server_admission_stalls_total", Help: "Batch flushes that blocked on the in-flight limit.", Value: m.admissionStalls.Load()},
	}
	for lane, ln := range [2]string{"write", "read"} {
		for reason := 0; reason < numFlushReasons; reason++ {
			counters = append(counters, obs.Counter{
				Name:  fmt.Sprintf("bohm_server_batch_flush_%s_%s_total", ln, flushReasonNames[reason]),
				Value: m.flushes[lane][reason].Load(),
			})
		}
	}
	obs.WriteCounters(w, counters)
	obs.WriteGauges(w, []obs.Gauge{
		{Name: "bohm_server_connections", Help: "Open client connections.",
			Value: func() float64 { return float64(m.connections.Load()) }},
		{Name: "bohm_server_inflight_batches", Help: "Coalesced batches dispatched to the engine and not yet finished.",
			Value: func() float64 { return float64(m.inflightBatches.Load()) }},
		{Name: "bohm_server_queued_txns", Help: "Transactions accepted but not yet dispatched in a batch.",
			Value: func() float64 { return float64(m.queued.Load()) }},
	})
	obs.WriteHistogram(w, "bohm_server_batch_fill",
		"Transactions per coalesced batch at flush.", m.fill.Snapshot(), 1)
	obs.WriteHistogram(w, "bohm_server_batch_wait_seconds",
		"Batch collection time from first enqueue to flush.", m.wait.Snapshot(), 1e9)
}
