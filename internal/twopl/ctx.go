package twopl

import (
	"fmt"

	"bohm/internal/txn"
)

// svCtx implements txn.Ctx over the single-version store for a
// transaction that already holds all of its locks. Writes are buffered
// and applied at commit so a logic abort leaves the database untouched.
type svCtx struct {
	e      *Engine
	writes []txn.Key
	ranges []txn.KeyRange
	vals   [][]byte
	del    []bool
	wrote  []bool
}

func newSVCtx(e *Engine, writes []txn.Key, ranges []txn.KeyRange) *svCtx {
	n := len(writes)
	return &svCtx{
		e:      e,
		writes: writes,
		ranges: ranges,
		vals:   make([][]byte, n),
		del:    make([]bool, n),
		wrote:  make([]bool, n),
	}
}

var _ txn.Ctx = (*svCtx)(nil)

// Read implements txn.Ctx. The caller holds at least a read lock on k, so
// the record buffer is stable for the duration of the transaction.
func (c *svCtx) Read(k txn.Key) ([]byte, error) {
	for i, wk := range c.writes {
		if wk == k && c.wrote[i] {
			if c.del[i] {
				return nil, txn.ErrNotFound
			}
			return c.vals[i], nil
		}
	}
	rec := c.e.store.Get(k)
	if rec == nil || rec.Deleted() {
		return nil, txn.ErrNotFound
	}
	// Record payloads live in atomic words (see storage.SVRecord), so a
	// read materializes a fresh byte view.
	return rec.Data(), nil
}

// ReadRange implements txn.Ctx: an ordered walk of the key directory over
// r, overlaid with the transaction's own buffered writes. The range must
// lie inside a declared range — the scanner's exclusive table lock, which
// plan acquired from the declaration, is what excludes concurrent writers
// (and therefore phantoms) for the duration of the transaction; scanning
// an undeclared range would read without that protection, so it is
// refused like a write outside the write-set.
func (c *svCtx) ReadRange(r txn.KeyRange, fn func(k txn.Key, v []byte) error) error {
	if r.Empty() {
		return nil
	}
	if !txn.CoveredBy(c.ranges, r) {
		return fmt.Errorf("twopl: range scan of %v outside declared range-set", r)
	}
	var keys []txn.Key
	c.e.dir.AscendRange(r, func(k txn.Key) bool {
		keys = append(keys, k)
		return true
	})
	own := c.stagedKeys(r)
	oi := 0
	emitOwn := func(k txn.Key) error {
		oi++
		for i, wk := range c.writes {
			if wk == k {
				if c.del[i] {
					return nil
				}
				return fn(k, c.vals[i])
			}
		}
		return nil
	}
	for _, k := range keys {
		for oi < len(own) && own[oi].Less(k) {
			if err := emitOwn(own[oi]); err != nil {
				return err
			}
		}
		if oi < len(own) && own[oi] == k {
			if err := emitOwn(k); err != nil {
				return err
			}
			continue
		}
		rec := c.e.store.Get(k)
		if rec == nil || rec.Deleted() {
			continue
		}
		if err := fn(k, rec.Data()); err != nil {
			return err
		}
	}
	for oi < len(own) {
		if err := emitOwn(own[oi]); err != nil {
			return err
		}
	}
	return nil
}

// stagedKeys returns the keys the body has staged (written or deleted)
// that fall inside r, sorted for the overlay merge.
func (c *svCtx) stagedKeys(r txn.KeyRange) []txn.Key {
	var ks []txn.Key
	for i, k := range c.writes {
		if c.wrote[i] && r.Contains(k) {
			ks = append(ks, k)
		}
	}
	txn.SortKeys(ks)
	return ks
}

// Write implements txn.Ctx, buffering the new value.
func (c *svCtx) Write(k txn.Key, v []byte) error { return c.stage(k, v, false) }

// Delete implements txn.Ctx, buffering a tombstone.
func (c *svCtx) Delete(k txn.Key) error { return c.stage(k, nil, true) }

func (c *svCtx) stage(k txn.Key, v []byte, del bool) error {
	for i, wk := range c.writes {
		if wk == k {
			c.vals[i] = v
			c.del[i] = del
			c.wrote[i] = true
			return nil
		}
	}
	return fmt.Errorf("twopl: write to key %+v outside declared write-set", k)
}

// commit applies the buffered writes in place, registering first-ever keys
// in the directory. The caller holds write locks on every written key and
// a shared table lock on every written table, so no scanner is concurrent.
func (c *svCtx) commit() error {
	for i, wk := range c.writes {
		if !c.wrote[i] {
			continue
		}
		rec, created, err := c.e.store.GetOrCreate(wk)
		if err != nil {
			return err
		}
		if created {
			c.e.dir.Insert(wk)
		}
		if c.del[i] {
			rec.SetDeleted()
		} else {
			rec.Set(c.vals[i])
		}
	}
	return nil
}
