package twopl

import (
	"fmt"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// svCtx implements txn.Ctx over the single-version store for a
// transaction that already holds all of its locks. Writes are buffered
// and applied at commit so a logic abort leaves the database untouched.
type svCtx struct {
	store  *storage.SVStore
	writes []txn.Key
	vals   [][]byte
	del    []bool
	wrote  []bool
}

func newSVCtx(store *storage.SVStore, writes []txn.Key) *svCtx {
	n := len(writes)
	return &svCtx{
		store:  store,
		writes: writes,
		vals:   make([][]byte, n),
		del:    make([]bool, n),
		wrote:  make([]bool, n),
	}
}

var _ txn.Ctx = (*svCtx)(nil)

// Read implements txn.Ctx. The caller holds at least a read lock on k, so
// the record buffer is stable for the duration of the transaction.
func (c *svCtx) Read(k txn.Key) ([]byte, error) {
	for i, wk := range c.writes {
		if wk == k && c.wrote[i] {
			if c.del[i] {
				return nil, txn.ErrNotFound
			}
			return c.vals[i], nil
		}
	}
	rec := c.store.Get(k)
	if rec == nil || rec.Deleted() {
		return nil, txn.ErrNotFound
	}
	// Record payloads live in atomic words (see storage.SVRecord), so a
	// read materializes a fresh byte view.
	return rec.Data(), nil
}

// Write implements txn.Ctx, buffering the new value.
func (c *svCtx) Write(k txn.Key, v []byte) error { return c.stage(k, v, false) }

// Delete implements txn.Ctx, buffering a tombstone.
func (c *svCtx) Delete(k txn.Key) error { return c.stage(k, nil, true) }

func (c *svCtx) stage(k txn.Key, v []byte, del bool) error {
	for i, wk := range c.writes {
		if wk == k {
			c.vals[i] = v
			c.del[i] = del
			c.wrote[i] = true
			return nil
		}
	}
	return fmt.Errorf("twopl: write to key %+v outside declared write-set", k)
}

// commit applies the buffered writes in place. The caller holds write
// locks on every written key.
func (c *svCtx) commit() error {
	for i, wk := range c.writes {
		if !c.wrote[i] {
			continue
		}
		rec, err := c.store.GetOrCreate(wk)
		if err != nil {
			return err
		}
		if c.del[i] {
			rec.SetDeleted()
		} else {
			rec.Set(c.vals[i])
		}
	}
	return nil
}
