package twopl

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bohm/internal/txn"
)

func key(id uint64) txn.Key { return txn.Key{Table: 0, ID: id} }

func newEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	e, err := New(Config{Workers: workers, Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func load(t *testing.T, e *Engine, n int, val uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Load(key(uint64(i)), txn.NewValue(8, val)); err != nil {
			t.Fatal(err)
		}
	}
}

func incTxn(ids ...uint64) txn.Txn {
	ks := make([]txn.Key, len(ids))
	for i, id := range ids {
		ks[i] = key(id)
	}
	return &txn.Proc{
		Reads:  ks,
		Writes: ks,
		Body: func(ctx txn.Ctx) error {
			for _, k := range ks {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				if err := ctx.Write(k, txn.Incremented(v, 1)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func readVal(t *testing.T, e *Engine, id uint64) (uint64, error) {
	t.Helper()
	var got uint64
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads: []txn.Key{key(id)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(id))
			if err != nil {
				return err
			}
			got = txn.U64(v)
			return nil
		},
	}})
	return got, res[0]
}

// --- rwLock unit tests ---

func TestRWLockExclusive(t *testing.T) {
	var l rwLock
	l.Lock()
	acquired := make(chan struct{})
	go func() {
		l.Lock()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second writer acquired a held lock")
	case <-time.After(20 * time.Millisecond):
	}
	l.Unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("second writer never acquired after release")
	}
	l.Unlock()
}

func TestRWLockSharedReaders(t *testing.T) {
	var l rwLock
	l.RLock()
	l.RLock() // two concurrent readers are fine
	done := make(chan struct{})
	go func() {
		l.Lock()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("writer acquired while readers held")
	case <-time.After(20 * time.Millisecond):
	}
	l.RUnlock()
	l.RUnlock()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer starved after readers left")
	}
	l.Unlock()
}

func TestRWLockWriterBlocksNewReaders(t *testing.T) {
	var l rwLock
	l.RLock()
	writerIn := make(chan struct{})
	go func() {
		l.Lock() // waits; sets the pending bit
		close(writerIn)
	}()
	time.Sleep(10 * time.Millisecond) // let the writer register
	readerIn := make(chan struct{})
	go func() {
		l.RLock() // must wait behind the pending writer
		close(readerIn)
	}()
	select {
	case <-readerIn:
		t.Fatal("new reader overtook a pending writer")
	case <-time.After(20 * time.Millisecond):
	}
	l.RUnlock() // writer goes first
	<-writerIn
	l.Unlock()
	select {
	case <-readerIn:
	case <-time.After(2 * time.Second):
		t.Fatal("reader starved")
	}
	l.RUnlock()
}

func TestRWLockStress(t *testing.T) {
	var l rwLock
	var shared int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				shared++
				l.Unlock()
			}
		}()
	}
	var violations atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.RLock()
				v1 := shared
				v2 := shared
				if v1 != v2 {
					violations.Add(1)
				}
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared != 8000 {
		t.Fatalf("shared = %d, want 8000 (writer mutual exclusion broken)", shared)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d read-side violations", violations.Load())
	}
}

// --- lock plan tests ---

func TestPlanWriteModeWins(t *testing.T) {
	e := newEngine(t, 1)
	load(t, e, 3, 0)
	p, err := e.plan(&txn.Proc{
		Reads:  []txn.Key{key(0), key(1)},
		Writes: []txn.Key{key(1), key(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{0: false, 1: true, 2: true}
	if len(p.keys) != 3 {
		t.Fatalf("plan has %d keys, want 3", len(p.keys))
	}
	for i, k := range p.keys {
		if p.write[i] != want[k.ID] {
			t.Errorf("key %d write mode = %v, want %v", k.ID, p.write[i], want[k.ID])
		}
		if i > 0 && !p.keys[i-1].Less(k) {
			t.Error("plan keys not sorted")
		}
	}
}

func TestPlanDeduplicates(t *testing.T) {
	e := newEngine(t, 1)
	load(t, e, 1, 0)
	p, err := e.plan(&txn.Proc{
		Reads:  []txn.Key{key(0), key(0)},
		Writes: []txn.Key{key(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.keys) != 1 || !p.write[0] {
		t.Fatalf("plan = %+v, want single write-mode key", p)
	}
}

// --- engine behavior ---

func TestHotKeySum(t *testing.T) {
	e := newEngine(t, 4)
	load(t, e, 1, 0)
	const n = 500
	ts := make([]txn.Txn, n)
	for i := range ts {
		ts[i] = incTxn(0)
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	got, err := readVal(t, e, 0)
	if err != nil || got != n {
		t.Fatalf("value = %d (%v), want %d", got, err, n)
	}
}

// TestNoDeadlockOnReversedAccessOrder: transactions declaring keys in
// opposite orders must not deadlock (lexicographic acquisition).
func TestNoDeadlockOnReversedAccessOrder(t *testing.T) {
	e := newEngine(t, 4)
	load(t, e, 2, 0)
	const n = 400
	ts := make([]txn.Txn, n)
	for i := range ts {
		if i%2 == 0 {
			ts[i] = incTxn(0, 1)
		} else {
			ts[i] = incTxn(1, 0)
		}
	}
	done := make(chan []error, 1)
	go func() { done <- e.ExecuteBatch(ts) }()
	select {
	case res := <-done:
		for i, err := range res {
			if err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: batch did not complete")
	}
	a, _ := readVal(t, e, 0)
	b, _ := readVal(t, e, 1)
	if a != n || b != n {
		t.Fatalf("counts = %d,%d want %d", a, b, n)
	}
}

// TestConcurrentReadersOverlap: two read-only transactions on the same
// key must be able to hold their read locks simultaneously.
func TestConcurrentReadersOverlap(t *testing.T) {
	e := newEngine(t, 2)
	load(t, e, 1, 0)
	var barrier sync.WaitGroup
	barrier.Add(2)
	overlapped := make(chan bool, 2)
	mk := func() txn.Txn {
		return &txn.Proc{
			Reads: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				if _, err := ctx.Read(key(0)); err != nil {
					return err
				}
				barrier.Done()
				done := make(chan struct{})
				go func() { defer close(done); barrier.Wait() }()
				select {
				case <-done:
					overlapped <- true
				case <-time.After(time.Second):
					overlapped <- false
				}
				return nil
			},
		}
	}
	for i, err := range e.ExecuteBatch([]txn.Txn{mk(), mk()}) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if !<-overlapped || !<-overlapped {
		t.Fatal("read-only transactions failed to overlap (readers block readers?)")
	}
}

func TestAbortRollsBackAllWrites(t *testing.T) {
	e := newEngine(t, 2)
	load(t, e, 3, 7)
	boom := errors.New("boom")
	p := &txn.Proc{
		Reads:  []txn.Key{key(0), key(1), key(2)},
		Writes: []txn.Key{key(0), key(1), key(2)},
		Body: func(ctx txn.Ctx) error {
			for i := uint64(0); i < 3; i++ {
				if err := ctx.Write(key(i), txn.NewValue(8, 100+i)); err != nil {
					return err
				}
			}
			return boom
		},
	}
	res := e.ExecuteBatch([]txn.Txn{p})
	if !errors.Is(res[0], boom) {
		t.Fatal(res[0])
	}
	for i := uint64(0); i < 3; i++ {
		if got, _ := readVal(t, e, i); got != 7 {
			t.Errorf("key %d = %d after abort, want 7", i, got)
		}
	}
}

func TestWriteSkewPrevented(t *testing.T) {
	// 2PL serializes the write-skew pair via read-lock/write-lock
	// conflicts; run the contended pair repeatedly and verify serial
	// outcomes.
	for trial := 0; trial < 10; trial++ {
		e := newEngine(t, 2)
		load(t, e, 2, 0)
		seed := []txn.Txn{
			&txn.Proc{Writes: []txn.Key{key(0)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(0), txn.NewValue(8, 1))
			}},
			&txn.Proc{Writes: []txn.Key{key(1)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(1), txn.NewValue(8, 2))
			}},
		}
		for _, err := range e.ExecuteBatch(seed) {
			if err != nil {
				t.Fatal(err)
			}
		}
		x, y := key(0), key(1)
		t1 := &txn.Proc{
			Reads: []txn.Key{x, y}, Writes: []txn.Key{x},
			Body: func(ctx txn.Ctx) error {
				vx, err := ctx.Read(x)
				if err != nil {
					return err
				}
				vy, err := ctx.Read(y)
				if err != nil {
					return err
				}
				return ctx.Write(x, txn.NewValue(8, txn.U64(vx)+txn.U64(vy)))
			},
		}
		t2 := &txn.Proc{
			Reads: []txn.Key{x, y}, Writes: []txn.Key{y},
			Body: func(ctx txn.Ctx) error {
				vx, err := ctx.Read(x)
				if err != nil {
					return err
				}
				vy, err := ctx.Read(y)
				if err != nil {
					return err
				}
				return ctx.Write(y, txn.NewValue(8, txn.U64(vx)+txn.U64(vy)))
			},
		}
		for i, err := range e.ExecuteBatch([]txn.Txn{t1, t2}) {
			if err != nil {
				t.Fatalf("trial %d txn %d: %v", trial, i, err)
			}
		}
		xv, _ := readVal(t, e, 0)
		yv, _ := readVal(t, e, 1)
		ok := (xv == 3 && yv == 5) || (xv == 4 && yv == 3)
		if !ok {
			t.Fatalf("trial %d: non-serializable outcome x=%d y=%d", trial, xv, yv)
		}
	}
}

func TestLockEntriesPreallocated(t *testing.T) {
	e := newEngine(t, 1)
	load(t, e, 5, 0)
	for i := uint64(0); i < 5; i++ {
		if e.locks.Get(key(i)) == nil {
			t.Errorf("no pre-allocated lock entry for key %d", i)
		}
	}
}

func TestInsertCreatesLockEntry(t *testing.T) {
	e := newEngine(t, 1)
	load(t, e, 1, 0)
	k := key(42)
	ins := &txn.Proc{Writes: []txn.Key{k}, Body: func(ctx txn.Ctx) error {
		return ctx.Write(k, txn.NewValue(8, 9))
	}}
	if res := e.ExecuteBatch([]txn.Txn{ins}); res[0] != nil {
		t.Fatal(res[0])
	}
	if got, _ := readVal(t, e, 42); got != 9 {
		t.Fatalf("inserted = %d, want 9", got)
	}
	if e.locks.Get(k) == nil {
		t.Error("insert did not create a lock entry")
	}
}
