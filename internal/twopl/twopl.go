// Package twopl implements the paper's two-phase locking baseline (§4): a
// single-version engine with a per-bucket-latched lock table, deadlock
// freedom via lexicographic lock acquisition, and lock-table entries
// pre-allocated before a transaction is submitted. Because access sets are
// known in advance, no deadlock detection is needed: every transaction
// acquires all of its locks in global key order, holds them for the
// duration of its logic, and releases them after commit (strict 2PL).
//
// Range scans are phantom-protected with coarse table locks planned from
// the declared range-set: a scanner locks each scanned table exclusively,
// writers to a table share it among themselves, and the global acquisition
// order (table locks by table, then key locks by key) preserves deadlock
// freedom. This is deliberately naive — scans serialize against all
// writes to the table — and is the comparison point BOHM's directory-based
// design is measured against.
package twopl

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/engine"
	"bohm/internal/storage"
	"bohm/internal/txn"
)

// Config parameterizes the 2PL engine.
type Config struct {
	// Workers is the number of transaction execution threads.
	Workers int
	// Capacity sizes the record store and the lock table.
	Capacity int
}

// DefaultConfig returns a small general-purpose configuration.
func DefaultConfig() Config { return Config{Workers: 2, Capacity: 1 << 20} }

// rwLock is a spinning reader-writer lock sized for short OLTP critical
// sections. Writers set a pending bit that blocks new readers, so writers
// are not starved under read storms.
type rwLock struct {
	// state: bit 31 = writer held; bits 30..16 = writers waiting;
	// bits 15..0 = reader count.
	state atomic.Uint64
}

const (
	rwWriter     = uint64(1) << 63
	rwWaiterUnit = uint64(1) << 32
	rwWaiterMask = rwWriter - rwWaiterUnit
	rwReaderMask = rwWaiterUnit - 1
)

// RLock acquires the lock in shared mode, waiting out held or pending
// writers.
func (l *rwLock) RLock() {
	for spins := 0; ; spins++ {
		s := l.state.Load()
		if s&(rwWriter|rwWaiterMask) == 0 {
			if l.state.CompareAndSwap(s, s+1) {
				return
			}
			continue
		}
		lockPause(spins)
	}
}

// RUnlock releases a shared acquisition.
func (l *rwLock) RUnlock() { l.state.Add(^uint64(0)) }

// Lock acquires the lock exclusively; its pending bit holds off new
// readers so writers are not starved.
func (l *rwLock) Lock() {
	l.state.Add(rwWaiterUnit)
	for spins := 0; ; spins++ {
		s := l.state.Load()
		if s&(rwWriter|rwReaderMask) == 0 {
			if l.state.CompareAndSwap(s, (s-rwWaiterUnit)|rwWriter) {
				return
			}
			continue
		}
		lockPause(spins)
	}
}

// Unlock releases an exclusive acquisition.
func (l *rwLock) Unlock() { l.state.And(^rwWriter) }

// lockPause backs a contended lock acquisition off: brief Gosched yields
// first, then parked sleeps so oversubscribed hosts hand the CPU to the
// lock holder instead of burning scheduler quanta.
func lockPause(spins int) {
	switch {
	case spins < 64:
		// busy spin
	case spins < 512:
		runtime.Gosched()
	default:
		time.Sleep(5 * time.Microsecond)
	}
}

// lockEntry is one pre-allocated lock-table entry.
type lockEntry struct{ l rwLock }

// Engine is the 2PL engine.
type Engine struct {
	cfg   Config
	store *storage.SVStore
	locks *storage.Map[lockEntry]

	// dir orders every key that exists (live or tombstoned), backing
	// range scans. tableLocks holds one lock per table for phantom
	// protection: a scanner of any range in table T takes T's lock
	// exclusively, while every writer to T takes it shared — writers stay
	// concurrent with each other (key locks arbitrate them) but are
	// excluded for the duration of a scan, so no key can spring into a
	// scanned range. Point readers never touch table locks.
	dir        *storage.Directory
	tableLocks *storage.Map[lockEntry]

	committed  atomic.Uint64
	userAborts atomic.Uint64
}

// New creates a 2PL engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("twopl: need at least one worker")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1 << 20
	}
	return &Engine{
		cfg:        cfg,
		store:      storage.NewSVStore(cfg.Capacity),
		locks:      storage.NewMap[lockEntry](cfg.Capacity),
		dir:        storage.NewDirectory(),
		tableLocks: storage.NewMap[lockEntry](1 << 10),
	}, nil
}

// Load implements engine.Engine, pre-allocating the record, its lock
// table entry, and its directory entry.
func (e *Engine) Load(k txn.Key, v []byte) error {
	if err := e.store.Load(k, v); err != nil {
		return err
	}
	e.dir.Insert(k)
	_, _, err := e.locks.Insert(k, &lockEntry{})
	return err
}

// tableLockFor returns table t's scan lock, creating it on demand. Table
// locks live in their own index keyed by {Table: t}, so they can never
// collide with record keys.
func (e *Engine) tableLockFor(t uint32) (*lockEntry, error) {
	k := txn.Key{Table: t}
	if le := e.tableLocks.Get(k); le != nil {
		return le, nil
	}
	le, _, err := e.tableLocks.GetOrInsert(k, func() *lockEntry { return &lockEntry{} })
	return le, err
}

// lockFor returns k's pre-allocated lock entry, creating one on demand for
// keys that spring into existence at run time (inserts).
func (e *Engine) lockFor(k txn.Key) (*lockEntry, error) {
	if le := e.locks.Get(k); le != nil {
		return le, nil
	}
	le, _, err := e.locks.GetOrInsert(k, func() *lockEntry { return &lockEntry{} })
	return le, err
}

// lockPlan is a transaction's sorted lock acquisition schedule: table
// locks first (in table order), then key locks (in key order). The single
// global acquisition order keeps the protocol deadlock-free with ranges in
// the picture.
type lockPlan struct {
	keys  []txn.Key
	write []bool
	locks []*lockEntry

	// tlocks are the per-table scan locks this transaction takes before
	// any key lock; texcl[i] selects exclusive mode (the transaction
	// scans table i) over shared mode (it only writes there).
	tlocks []*lockEntry
	texcl  []bool
}

// plan builds the deadlock-free acquisition order: the union of the read-
// and write-sets sorted lexicographically, write mode winning when a key
// appears in both, preceded by the table locks the declared ranges and
// write tables require.
func (e *Engine) plan(t txn.Txn) (lockPlan, error) {
	reads, writes := t.ReadSet(), t.WriteSet()
	p := lockPlan{
		keys:  make([]txn.Key, 0, len(reads)+len(writes)),
		write: make([]bool, 0, len(reads)+len(writes)),
	}
	all := make([]txn.Key, 0, len(reads)+len(writes))
	all = append(all, reads...)
	all = append(all, writes...)
	all = txn.Normalize(all)
	wsorted := make([]txn.Key, len(writes))
	copy(wsorted, writes)
	wsorted = txn.Normalize(wsorted)
	for _, k := range all {
		p.keys = append(p.keys, k)
		p.write = append(p.write, txn.Contains(wsorted, k))
	}
	p.locks = make([]*lockEntry, len(p.keys))
	for i, k := range p.keys {
		le, err := e.lockFor(k)
		if err != nil {
			return lockPlan{}, err
		}
		p.locks[i] = le
	}

	// Table locks: exclusive for tables the transaction scans, shared for
	// tables it may write (insert) into. A table both scanned and written
	// is exclusive. Tables only read point-wise need no table lock.
	ranges := t.RangeSet()
	if len(ranges) > 0 || len(writes) > 0 {
		mode := map[uint32]bool{} // table -> exclusive
		for _, k := range writes {
			if _, ok := mode[k.Table]; !ok {
				mode[k.Table] = false
			}
		}
		for _, r := range ranges {
			mode[r.Table] = true
		}
		tables := make([]uint32, 0, len(mode))
		for tb := range mode {
			tables = append(tables, tb)
		}
		sort.Slice(tables, func(i, j int) bool { return tables[i] < tables[j] })
		for _, tb := range tables {
			le, err := e.tableLockFor(tb)
			if err != nil {
				return lockPlan{}, err
			}
			p.tlocks = append(p.tlocks, le)
			p.texcl = append(p.texcl, mode[tb])
		}
	}
	return p, nil
}

func (p *lockPlan) acquire() {
	for i, le := range p.tlocks {
		if p.texcl[i] {
			le.l.Lock()
		} else {
			le.l.RLock()
		}
	}
	for i, le := range p.locks {
		if p.write[i] {
			le.l.Lock()
		} else {
			le.l.RLock()
		}
	}
}

func (p *lockPlan) release() {
	for i := len(p.locks) - 1; i >= 0; i-- {
		if p.write[i] {
			p.locks[i].l.Unlock()
		} else {
			p.locks[i].l.RUnlock()
		}
	}
	for i := len(p.tlocks) - 1; i >= 0; i-- {
		if p.texcl[i] {
			p.tlocks[i].l.Unlock()
		} else {
			p.tlocks[i].l.RUnlock()
		}
	}
}

// ExecuteBatch implements engine.Engine: transactions are spread across
// cfg.Workers goroutines; each acquires its locks in global order, runs
// the logic, applies buffered writes on commit, and releases.
func (e *Engine) ExecuteBatch(ts []txn.Txn) []error {
	res := make([]error, len(ts))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := e.cfg.Workers
	if workers > len(ts) {
		workers = len(ts)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ts) {
					return
				}
				res[i] = e.runOne(ts[i])
			}
		}()
	}
	wg.Wait()
	return res
}

func (e *Engine) runOne(t txn.Txn) error {
	p, err := e.plan(t)
	if err != nil {
		e.userAborts.Add(1)
		return err
	}
	p.acquire()
	defer p.release()

	c := newSVCtx(e, t.WriteSet(), t.RangeSet())
	err = txn.RunSafely(t, c)
	if err == nil {
		err = c.commit()
	}
	if err != nil {
		e.userAborts.Add(1)
		return err
	}
	e.committed.Add(1)
	return nil
}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{
		Committed:  e.committed.Load(),
		UserAborts: e.userAborts.Load(),
	}
}

// Close implements engine.Engine. The 2PL engine has no background
// goroutines, so Close is a no-op.
func (e *Engine) Close() {}
