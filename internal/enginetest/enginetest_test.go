// Package enginetest runs the same correctness suite against every engine:
// BOHM and the four baselines must all execute serializable histories on
// these workloads (SI is included because the scenarios used here do not
// exercise the write-skew anomaly except where noted).
package enginetest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/hekaton"
	"bohm/internal/occ"
	"bohm/internal/si"
	"bohm/internal/twopl"
	"bohm/internal/txn"
)

// factories enumerates every engine under test. serializable marks the
// engines that must reject non-serializable executions.
var factories = []struct {
	name         string
	serializable bool
	make         func(t *testing.T) engine.Engine
}{
	{"bohm", true, func(t *testing.T) engine.Engine {
		cfg := core.DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 3
		cfg.BatchSize = 32
		cfg.Capacity = 1 << 12
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}},
	{"bohm-nofast", true, func(t *testing.T) engine.Engine {
		// The DisableReadOnlyFastPath ablation pipelines read-only
		// transactions like any other; unlike default BOHM it keeps the
		// paper's exact submission-order serialization even for read-only
		// transactions mixed into a writing ExecuteBatch call.
		cfg := core.DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 3
		cfg.BatchSize = 32
		cfg.Capacity = 1 << 12
		cfg.DisableReadOnlyFastPath = true
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}},
	{"bohm-nopool", true, func(t *testing.T) engine.Engine {
		// The DisablePooling ablation must be observationally identical to
		// pooled BOHM on every suite; only the allocation profile differs.
		cfg := core.DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 3
		cfg.BatchSize = 32
		cfg.Capacity = 1 << 12
		cfg.DisablePooling = true
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}},
	{"hekaton", true, func(t *testing.T) engine.Engine {
		cfg := hekaton.DefaultConfig()
		cfg.Workers = 3
		cfg.Capacity = 1 << 12
		e, err := hekaton.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}},
	{"si", false, func(t *testing.T) engine.Engine {
		cfg := si.DefaultConfig()
		cfg.Workers = 3
		cfg.Capacity = 1 << 12
		e, err := si.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}},
	{"occ", true, func(t *testing.T) engine.Engine {
		cfg := occ.DefaultConfig()
		cfg.Workers = 3
		cfg.Capacity = 1 << 12
		e, err := occ.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}},
	{"twopl", true, func(t *testing.T) engine.Engine {
		cfg := twopl.DefaultConfig()
		cfg.Workers = 3
		cfg.Capacity = 1 << 12
		e, err := twopl.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}},
}

func forEachEngine(t *testing.T, f func(t *testing.T, name string, serializable bool, e engine.Engine)) {
	for _, fc := range factories {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			e := fc.make(t)
			t.Cleanup(e.Close)
			f(t, fc.name, fc.serializable, e)
		})
	}
}

func key(id uint64) txn.Key { return txn.Key{Table: 0, ID: id} }

func load(t *testing.T, e engine.Engine, n int, val uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Load(key(uint64(i)), txn.NewValue(8, val)); err != nil {
			t.Fatal(err)
		}
	}
}

func incTxn(ids ...uint64) txn.Txn {
	ks := make([]txn.Key, len(ids))
	for i, id := range ids {
		ks[i] = key(id)
	}
	return &txn.Proc{
		Reads:  ks,
		Writes: ks,
		Body: func(ctx txn.Ctx) error {
			for _, k := range ks {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				if err := ctx.Write(k, txn.Incremented(v, 1)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func readVal(t *testing.T, e engine.Engine, id uint64) (uint64, error) {
	t.Helper()
	var got uint64
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads: []txn.Key{key(id)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(id))
			if err != nil {
				return err
			}
			got = txn.U64(v)
			return nil
		},
	}})
	return got, res[0]
}

func TestHotKeyIncrements(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 0)
		const n = 500
		ts := make([]txn.Txn, n)
		for i := range ts {
			ts[i] = incTxn(0)
		}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		}
		got, err := readVal(t, e, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Errorf("%s: hot counter = %d, want %d", name, got, n)
		}
	})
}

func TestMultiKeyTransfersConserveSum(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		const nkeys = 16
		const initial = 1000
		load(t, e, nkeys, initial)
		rng := rand.New(rand.NewSource(7))
		const n = 400
		ts := make([]txn.Txn, n)
		for i := range ts {
			a := uint64(rng.Intn(nkeys))
			b := uint64(rng.Intn(nkeys - 1))
			if b >= a {
				b++
			}
			ka, kb := key(a), key(b)
			amount := uint64(1 + rng.Intn(3))
			ts[i] = &txn.Proc{
				Reads:  []txn.Key{ka, kb},
				Writes: []txn.Key{ka, kb},
				Body: func(ctx txn.Ctx) error {
					va, err := ctx.Read(ka)
					if err != nil {
						return err
					}
					vb, err := ctx.Read(kb)
					if err != nil {
						return err
					}
					if err := ctx.Write(ka, txn.NewValue(8, txn.U64(va)-amount)); err != nil {
						return err
					}
					return ctx.Write(kb, txn.NewValue(8, txn.U64(vb)+amount))
				},
			}
		}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		}
		var sum uint64
		for i := uint64(0); i < nkeys; i++ {
			v, err := readVal(t, e, i)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum != nkeys*initial {
			t.Errorf("%s: sum = %d, want %d", name, sum, nkeys*initial)
		}
	})
}

func TestAbortRollsBack(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 42)
		boom := errors.New("boom")
		aborting := &txn.Proc{
			Reads:  []txn.Key{key(0)},
			Writes: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				if err := ctx.Write(key(0), txn.NewValue(8, 999)); err != nil {
					return err
				}
				return boom
			},
		}
		res := e.ExecuteBatch([]txn.Txn{aborting})
		if !errors.Is(res[0], boom) {
			t.Fatalf("%s: abort result = %v, want boom", name, res[0])
		}
		got, err := readVal(t, e, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Errorf("%s: value after abort = %d, want 42", name, got)
		}
	})
}

func TestReadMissingKey(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 0)
		_, err := readVal(t, e, 12345)
		if !errors.Is(err, txn.ErrNotFound) {
			t.Errorf("%s: read of missing key = %v, want ErrNotFound", name, err)
		}
	})
}

func TestInsertThenRead(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 0)
		k := key(777)
		ins := &txn.Proc{
			Writes: []txn.Key{k},
			Body: func(ctx txn.Ctx) error {
				return ctx.Write(k, txn.NewValue(8, 7))
			},
		}
		if res := e.ExecuteBatch([]txn.Txn{ins}); res[0] != nil {
			t.Fatalf("%s: insert failed: %v", name, res[0])
		}
		got, err := readVal(t, e, 777)
		if err != nil {
			t.Fatalf("%s: read after insert: %v", name, err)
		}
		if got != 7 {
			t.Errorf("%s: inserted value = %d, want 7", name, got)
		}
	})
}

func TestDeleteThenRead(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 2, 5)
		k := key(1)
		del := &txn.Proc{
			Writes: []txn.Key{k},
			Body:   func(ctx txn.Ctx) error { return ctx.Delete(k) },
		}
		if res := e.ExecuteBatch([]txn.Txn{del}); res[0] != nil {
			t.Fatalf("%s: delete failed: %v", name, res[0])
		}
		_, err := readVal(t, e, 1)
		if !errors.Is(err, txn.ErrNotFound) {
			t.Errorf("%s: read after delete = %v, want ErrNotFound", name, err)
		}
		// Unrelated key unaffected.
		got, err := readVal(t, e, 0)
		if err != nil || got != 5 {
			t.Errorf("%s: key 0 after delete = %d/%v, want 5/nil", name, got, err)
		}
	})
}

func TestWriteOutsideWriteSetAborts(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 2, 0)
		bad := &txn.Proc{
			Writes: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(1), txn.NewValue(8, 1))
			},
		}
		res := e.ExecuteBatch([]txn.Txn{bad})
		if res[0] == nil {
			t.Fatalf("%s: undeclared write committed", name)
		}
		got, err := readVal(t, e, 1)
		if err != nil || got != 0 {
			t.Errorf("%s: key 1 = %d/%v, want 0/nil", name, got, err)
		}
	})
}

func TestRMWChainsAcrossBatches(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		const nkeys = 8
		load(t, e, nkeys, 0)
		total := 0
		for round := 0; round < 20; round++ {
			ts := make([]txn.Txn, 25)
			for i := range ts {
				ts[i] = incTxn(uint64((i + round) % nkeys))
			}
			for i, err := range e.ExecuteBatch(ts) {
				if err != nil {
					t.Fatalf("round %d txn %d: %v", round, i, err)
				}
			}
			total += len(ts)
		}
		var sum uint64
		for i := uint64(0); i < nkeys; i++ {
			v, err := readVal(t, e, i)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum != uint64(total) {
			t.Errorf("%s: sum = %d, want %d", name, sum, total)
		}
	})
}

func TestLargeValuesRoundTrip(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		val := txn.NewValue(1000, 3)
		for i := 8; i < 1000; i++ {
			val[i] = byte(i)
		}
		if err := e.Load(key(0), val); err != nil {
			t.Fatal(err)
		}
		var got []byte
		res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
			Reads: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				v, err := ctx.Read(key(0))
				if err != nil {
					return err
				}
				got = append([]byte(nil), v...)
				return nil
			},
		}})
		if res[0] != nil {
			t.Fatal(res[0])
		}
		if len(got) != 1000 {
			t.Fatalf("%s: got %d bytes, want 1000", name, len(got))
		}
		for i := 8; i < 1000; i++ {
			if got[i] != byte(i) {
				t.Fatalf("%s: byte %d = %d, want %d", name, i, got[i], byte(i))
			}
		}
	})
}

// TestSerialEquivalenceRandomMix drives a randomized mix of multi-key
// read-modify-writes and verifies the final database state matches the
// reference state produced by SOME serial order of the committed
// transactions. For commutative increments, any serial order yields the
// same sums, so we verify sums per key against the committed transactions'
// increments.
func TestSerialEquivalenceRandomMix(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		const nkeys = 12
		load(t, e, nkeys, 0)
		rng := rand.New(rand.NewSource(99))
		const n = 300
		ts := make([]txn.Txn, n)
		incs := make([][]uint64, n) // keys each txn increments
		for i := range ts {
			cnt := 1 + rng.Intn(4)
			seen := map[uint64]bool{}
			var ids []uint64
			for len(ids) < cnt {
				id := uint64(rng.Intn(nkeys))
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
			incs[i] = ids
			ts[i] = incTxn(ids...)
		}
		res := e.ExecuteBatch(ts)
		want := map[uint64]uint64{}
		for i, err := range res {
			if err != nil {
				t.Fatalf("%s: txn %d: %v", name, i, err)
			}
			for _, id := range incs[i] {
				want[id]++
			}
		}
		for i := uint64(0); i < nkeys; i++ {
			got, err := readVal(t, e, i)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[i] {
				t.Errorf("%s: key %d = %d, want %d", name, i, got, want[i])
			}
		}
	})
}

// TestStatsAccounting checks that engines report sensible counters.
func TestStatsAccounting(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 4, 0)
		ts := make([]txn.Txn, 100)
		for i := range ts {
			ts[i] = incTxn(uint64(i % 4))
		}
		e.ExecuteBatch(ts)
		s := e.Stats()
		if s.Committed < 100 {
			t.Errorf("%s: committed = %d, want >= 100", name, s.Committed)
		}
	})
}

var _ = fmt.Sprintf // keep fmt import when debugging locally

// TestPanicInBodyBecomesAbort: a panicking transaction must not crash a
// worker; it aborts with *txn.PanicError and leaves the database intact.
func TestPanicInBodyBecomesAbort(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 42)
		panicky := &txn.Proc{
			Reads:  []txn.Key{key(0)},
			Writes: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				if err := ctx.Write(key(0), txn.NewValue(8, 999)); err != nil {
					return err
				}
				panic("kaboom")
			},
		}
		res := e.ExecuteBatch([]txn.Txn{panicky, incTxn(0)})
		var pe *txn.PanicError
		if !errors.As(res[0], &pe) {
			t.Fatalf("%s: result = %v, want *txn.PanicError", name, res[0])
		}
		if pe.Value != "kaboom" {
			t.Errorf("%s: panic value = %v", name, pe.Value)
		}
		if res[1] != nil {
			t.Fatalf("%s: follow-up txn failed: %v", name, res[1])
		}
		got, err := readVal(t, e, 0)
		if err != nil || got != 43 {
			t.Errorf("%s: value = %d (%v), want 43", name, got, err)
		}
	})
}
