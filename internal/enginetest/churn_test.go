package enginetest

import (
	"errors"
	"fmt"
	"testing"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// Churn suite: delete-then-scan must never resurrect a key on any engine
// — whether the engine filters tombstones at scan time (the baselines,
// and BOHM before its reaper catches up) or has fully reclaimed the key
// (BOHM's index lifecycle). The suite cycles keys through
// delete/re-insert rounds and checks scans, point reads and re-creation
// after every step, on all five engines including the bohm-nopool and
// bohm-nofast factories.

func churnScan(t *testing.T, e engine.Engine, r txn.KeyRange) map[uint64]uint64 {
	t.Helper()
	rows := map[uint64]uint64{}
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Ranges: []txn.KeyRange{r},
		Body: func(c txn.Ctx) error {
			return c.ReadRange(r, func(k txn.Key, v []byte) error {
				if _, dup := rows[k.ID]; dup {
					return fmt.Errorf("scan visited key %d twice", k.ID)
				}
				rows[k.ID] = txn.U64(v)
				return nil
			})
		},
	}})
	if res[0] != nil {
		t.Fatalf("scan: %v", res[0])
	}
	return rows
}

func TestDeleteThenScanNeverResurrects(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		const n = 64
		load(t, e, n, 5)
		full := txn.KeyRange{Table: 0, Lo: 0, Hi: n}
		for round := 0; round < 3; round++ {
			// Kill the odd keys.
			var dels []txn.Txn
			for id := uint64(1); id < n; id += 2 {
				k := key(id)
				dels = append(dels, &txn.Proc{
					Writes: []txn.Key{k},
					Body:   func(c txn.Ctx) error { return c.Delete(k) },
				})
			}
			for i, err := range e.ExecuteBatch(dels) {
				if err != nil {
					t.Fatalf("%s round %d delete %d: %v", name, round, i, err)
				}
			}
			// Scans see exactly the survivors — no resurrected keys, no
			// leftover tombstone rows — across repeated scans (the engine
			// may be reclaiming concurrently).
			for pass := 0; pass < 3; pass++ {
				rows := churnScan(t, e, full)
				if len(rows) != n/2 {
					t.Fatalf("%s round %d pass %d: scan saw %d rows, want %d", name, round, pass, len(rows), n/2)
				}
				for id := range rows {
					if id%2 != 0 {
						t.Fatalf("%s round %d: scan resurrected deleted key %d", name, round, id)
					}
				}
			}
			// Point reads agree.
			if _, err := readVal(t, e, 1); !errors.Is(err, txn.ErrNotFound) {
				t.Fatalf("%s round %d: read of deleted key = %v, want ErrNotFound", name, round, err)
			}
			if v, err := readVal(t, e, 2); err != nil || v == 0 {
				t.Fatalf("%s round %d: live key read = %d/%v", name, round, v, err)
			}
			// Rebirth: re-insert the odd keys with round-tagged values and
			// verify scans pick the fresh values up, not stale ones.
			var ins []txn.Txn
			for id := uint64(1); id < n; id += 2 {
				k := key(id)
				val := uint64(1000*(round+1)) + id
				ins = append(ins, &txn.Proc{
					Writes: []txn.Key{k},
					Body:   func(c txn.Ctx) error { return c.Write(k, txn.NewValue(8, val)) },
				})
			}
			for i, err := range e.ExecuteBatch(ins) {
				if err != nil {
					t.Fatalf("%s round %d insert %d: %v", name, round, i, err)
				}
			}
			rows := churnScan(t, e, full)
			if len(rows) != n {
				t.Fatalf("%s round %d: scan after rebirth saw %d rows, want %d", name, round, len(rows), n)
			}
			for id, v := range rows {
				if id%2 == 1 && v != uint64(1000*(round+1))+id {
					t.Fatalf("%s round %d: reborn key %d = %d, want %d", name, round, id, v, uint64(1000*(round+1))+id)
				}
			}
		}
	})
}

// TestDeleteScanInterleaved mixes deletes and a same-batch scan: the scan
// serializes somewhere inside the batch and must observe an all-or-
// nothing prefix of the deletes consistent with a serial order — at no
// point a key both deleted and visited, or a half-applied delete.
func TestDeleteScanInterleaved(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, serializable bool, e engine.Engine) {
		const n = 32
		load(t, e, n, 9)
		full := txn.KeyRange{Table: 0, Lo: 0, Hi: n}
		// One batch: delete all even keys, with scans interleaved.
		var ts []txn.Txn
		type obs struct {
			rows map[uint64]uint64
		}
		var scans []*obs
		for id := uint64(0); id < n; id += 2 {
			k := key(id)
			ts = append(ts, &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Delete(k) },
			})
			o := &obs{rows: map[uint64]uint64{}}
			scans = append(scans, o)
			ts = append(ts, &txn.Proc{
				Ranges: []txn.KeyRange{full},
				Body: func(c txn.Ctx) error {
					clear(o.rows)
					return c.ReadRange(full, func(k txn.Key, v []byte) error {
						o.rows[k.ID] = txn.U64(v)
						return nil
					})
				},
			})
		}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("%s txn %d: %v", name, i, err)
			}
		}
		if !serializable {
			return // SI scans a snapshot; prefix counting still holds, but keep the strict check to serializable engines
		}
		for i, o := range scans {
			// Every odd key is always present; the even keys form a prefix
			// count between 0 and n/2 deletions.
			odd := 0
			even := 0
			for id := range o.rows {
				if id%2 == 1 {
					odd++
				} else {
					even++
				}
			}
			if odd != n/2 {
				t.Fatalf("%s scan %d: saw %d odd keys, want %d", name, i, odd, n/2)
			}
			if even > n/2 {
				t.Fatalf("%s scan %d: saw %d even keys", name, i, even)
			}
		}
	})
}
