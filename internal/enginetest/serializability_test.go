package enginetest

import (
	"testing"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// foldTxn performs v' = v*31 + tag on the hot key: non-commutative, so
// the final value identifies the exact serialization order of the
// committed transactions.
func foldTxn(tag uint64) txn.Txn {
	k := key(0)
	return &txn.Proc{
		Reads:  []txn.Key{k},
		Writes: []txn.Key{k},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(k)
			if err != nil {
				return err
			}
			return ctx.Write(k, txn.NewValue(8, txn.U64(v)*31+tag))
		},
	}
}

// allPermutationFolds enumerates fold results of every permutation of
// tags 1..n (n! results; keep n small).
func allPermutationFolds(n int) map[uint64]bool {
	out := map[uint64]bool{}
	tags := make([]uint64, n)
	for i := range tags {
		tags[i] = uint64(i + 1)
	}
	var rec func(remaining []uint64, acc uint64)
	rec = func(remaining []uint64, acc uint64) {
		if len(remaining) == 0 {
			out[acc] = true
			return
		}
		for i := range remaining {
			next := make([]uint64, 0, len(remaining)-1)
			next = append(next, remaining[:i]...)
			next = append(next, remaining[i+1:]...)
			rec(next, acc*31+remaining[i])
		}
	}
	rec(tags, 0)
	return out
}

// TestSomeSerialOrderExists: n concurrent non-commutative updates of one
// key must fold to the result of SOME permutation — the definition of
// serializability for this workload. This holds for every engine
// including SI (single-key read-modify-writes have no write-skew).
func TestSomeSerialOrderExists(t *testing.T) {
	const n = 6
	valid := allPermutationFolds(n)
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 0)
		for trial := 0; trial < 10; trial++ {
			// Reset the key.
			reset := &txn.Proc{Writes: []txn.Key{key(0)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(0), txn.NewValue(8, 0))
			}}
			if res := e.ExecuteBatch([]txn.Txn{reset}); res[0] != nil {
				t.Fatal(res[0])
			}
			ts := make([]txn.Txn, n)
			for i := range ts {
				ts[i] = foldTxn(uint64(i + 1))
			}
			for i, err := range e.ExecuteBatch(ts) {
				if err != nil {
					t.Fatalf("%s trial %d txn %d: %v", name, trial, i, err)
				}
			}
			got, err := readVal(t, e, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !valid[got] {
				t.Fatalf("%s trial %d: fold %d matches no serial order of %d transactions", name, trial, got, n)
			}
		}
	})
}

// TestBohmSerialOrderIsSubmissionOrder: on BOHM specifically, the serial
// order is not just "some" order — it is exactly the submission order.
// (The baselines make no such promise.)
func TestBohmSerialOrderIsSubmissionOrder(t *testing.T) {
	e := factories[0].make(t) // bohm
	t.Cleanup(e.Close)
	load(t, e, 1, 0)
	const n = 64
	ts := make([]txn.Txn, n)
	want := uint64(0)
	for i := range ts {
		tag := uint64(i + 1)
		ts[i] = foldTxn(tag)
		want = want*31 + tag
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	got, err := readVal(t, e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fold = %d, want submission order %d", got, want)
	}
}
