// Read-only recency: on every engine, a read-only transaction submitted
// after ExecuteBatch acknowledged a write must observe that write. For
// default BOHM this pins down the fast path's recency bound — the
// snapshot is taken at the execution watermark, which the recency gate
// holds at or above every previously acknowledged batch — and the suite
// checks the reads actually took the fast path.
package enginetest

import (
	"sync"
	"sync/atomic"
	"testing"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// TestAckedWritesVisibleToReadOnly interleaves acknowledged writes with
// read-only transactions from the same stream: every read must observe
// the full prefix of acknowledged increments, on every engine.
func TestAckedWritesVisibleToReadOnly(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 2, 0)
		for i := uint64(1); i <= 100; i++ {
			if res := e.ExecuteBatch([]txn.Txn{incTxn(0, 1)}); res[0] != nil {
				t.Fatalf("%s: write %d: %v", name, i, res[0])
			}
			var got uint64
			read := &txn.Proc{
				Reads: []txn.Key{key(0), key(1)},
				Body: func(ctx txn.Ctx) error {
					a, err := ctx.Read(key(0))
					if err != nil {
						return err
					}
					b, err := ctx.Read(key(1))
					if err != nil {
						return err
					}
					got = txn.U64(a) + txn.U64(b)
					return nil
				},
			}
			if res := e.ExecuteBatch([]txn.Txn{read}); res[0] != nil {
				t.Fatalf("%s: read %d: %v", name, i, res[0])
			}
			if got != 2*i {
				t.Fatalf("%s: read after %d acknowledged increments observed %d, want %d",
					name, i, got, 2*i)
			}
		}
		if name == "bohm" {
			if s := e.Stats(); s.ReadOnlyFastPath == 0 {
				t.Error("bohm: reads never took the fast path")
			}
		}
	})
}

// TestAckedWritesVisibleAcrossStreams checks recency across goroutines: a
// reader that starts after a writer's ExecuteBatch returned must observe
// at least that writer's acknowledged count, even while other writers keep
// the engine busy.
func TestAckedWritesVisibleAcrossStreams(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 0)
		var acked atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
					t.Errorf("%s: writer: %v", name, res[0])
					return
				}
				acked.Add(1)
			}
		}()
		for i := 0; i < 200; i++ {
			floor := acked.Load()
			got, err := readVal(t, e, 0)
			if err != nil {
				t.Fatalf("%s: reader: %v", name, err)
			}
			if got < floor {
				t.Fatalf("%s: reader observed %d, want >= %d acknowledged before it started",
					name, got, floor)
			}
		}
		close(stop)
		wg.Wait()
	})
}
