package enginetest

import (
	"errors"
	"testing"

	"bohm/internal/engine"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// TestSmallBankConservation runs the real SmallBank mix on every engine
// and audits the books: the total money in the bank must equal the
// initial funds plus the net effect of every *committed* deposit,
// withdrawal and write-check (transfers and balance checks are neutral).
func TestSmallBankConservation(t *testing.T) {
	const customers = 40 // small enough to contend hard
	sb := workload.SmallBank{Customers: customers}

	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		if err := sb.LoadInto(e); err != nil {
			t.Fatal(err)
		}
		src := sb.NewSource(1234)
		const n = 1500
		ts := make([]txn.Txn, n)
		for i := range ts {
			ts[i] = src.Next()
		}
		res := e.ExecuteBatch(ts)

		var delta int64
		for i, err := range res {
			if err != nil {
				if errors.Is(err, workload.ErrInsufficientFunds) {
					continue // legitimate business abort
				}
				t.Fatalf("%s: txn %d (%T): %v", name, i, ts[i], err)
			}
			switch tx := ts[i].(type) {
			case *workload.DepositTxn:
				delta += tx.Amount
			case *workload.TransactSavingsTxn:
				delta += tx.Amount
			case *workload.WriteCheckTxn:
				// Amalgamates empty accounts, so overdraft penalties do
				// occur; the transaction reports the one it committed.
				delta -= tx.Amount + tx.Penalty
			}
		}

		var total int64
		for c := uint64(0); c < customers; c++ {
			for _, table := range []uint32{workload.SBSavings, workload.SBChecking} {
				k := txn.Key{Table: table, ID: c}
				var v int64
				r := e.ExecuteBatch([]txn.Txn{&txn.Proc{
					Reads: []txn.Key{k},
					Body: func(ctx txn.Ctx) error {
						b, err := ctx.Read(k)
						if err != nil {
							return err
						}
						v = int64(txn.U64(b))
						return nil
					},
				}})
				if r[0] != nil {
					t.Fatal(r[0])
				}
				total += v
			}
		}
		want := int64(customers)*2*workload.InitialBalance + delta
		if total != want {
			t.Errorf("%s: bank total = %d, want %d (money not conserved)", name, total, want)
		}
	})
}

// TestSmallBankBalanceReadsConsistent: Balance transactions interleaved
// with Amalgamates must never observe a state where funds are mid-flight
// (a torn read of the two balances), for the serializable engines.
func TestSmallBankBalanceSnapshot(t *testing.T) {
	const customers = 4
	sb := workload.SmallBank{Customers: customers}
	forEachEngine(t, func(t *testing.T, name string, serializable bool, e engine.Engine) {
		if err := sb.LoadInto(e); err != nil {
			t.Fatal(err)
		}
		// Amalgamate(0→1) zeroes customer 0; Balance(0) must read either
		// the full pre-state (2 * InitialBalance) or zero — never a
		// partial move. This holds under SI too (snapshot reads).
		var ts []txn.Txn
		balances := make([]*workload.BalanceTxn, 0, 50)
		for i := 0; i < 50; i++ {
			if i%2 == 0 {
				if i%4 == 0 {
					ts = append(ts, &workload.AmalgamateTxn{SB: sb, From: 0, To: 1})
				} else {
					ts = append(ts, &workload.DepositTxn{SB: sb, Customer: 0, Amount: 1000})
				}
			} else {
				b := &workload.BalanceTxn{SB: sb, Customer: 0}
				balances = append(balances, b)
				ts = append(ts, b)
			}
		}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("%s: txn %d: %v", name, i, err)
			}
		}
		for i, b := range balances {
			// Valid observations: 0 (just amalgamated), or any multiple
			// of 1000 up to the initial 2M plus deposits. A torn read
			// would surface as a value that is not a multiple of 1000.
			if b.Total%1000 != 0 {
				t.Errorf("%s: balance %d observed torn total %d", name, i, b.Total)
			}
		}
	})
}
