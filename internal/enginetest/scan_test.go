package enginetest

import (
	"sync"
	"testing"

	"bohm/internal/engine"
	"bohm/internal/txn"
)

// scanCount builds a read-only transaction that counts live rows and sums
// counters in [lo, hi), declaring the range.
func scanCount(lo, hi uint64, rows *int, sum *uint64) txn.Txn {
	r := txn.KeyRange{Table: 0, Lo: lo, Hi: hi}
	return &txn.Proc{
		Ranges: []txn.KeyRange{r},
		Body: func(ctx txn.Ctx) error {
			n, s := 0, uint64(0)
			err := ctx.ReadRange(r, func(_ txn.Key, v []byte) error {
				n++
				s += txn.U64(v)
				return nil
			})
			if err != nil {
				return err
			}
			*rows = n
			*sum = s
			return nil
		},
	}
}

// insertN builds a transaction inserting k fresh rows (value 1 each) at
// base, base+1, ... — the all-or-nothing unit of the phantom test.
func insertN(base uint64, k int) txn.Txn {
	ks := make([]txn.Key, k)
	for i := range ks {
		ks[i] = key(base + uint64(i))
	}
	return &txn.Proc{
		Writes: ks,
		Body: func(ctx txn.Ctx) error {
			for _, kk := range ks {
				if err := ctx.Write(kk, txn.NewValue(8, 1)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// TestPhantomScanAllOrNothing: scans interleaved with multi-row inserters
// into the scanned range must observe each inserter entirely or not at
// all — a torn count is a phantom. On BOHM the serial order is the
// submission order, so each scan's count is checked exactly; on the other
// serializable engines (and SI, whose snapshots are also atomic) any
// multiple of the insert width up to the scan's position is legal... but
// serializability still demands the count be SOME multiple of the width.
func TestPhantomScanAllOrNothing(t *testing.T) {
	const (
		base  = 50_000
		width = 3 // rows per inserter
		waves = 24
	)
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 0) // unrelated key so the table exists
		rows := make([]int, waves+1)
		sums := make([]uint64, waves+1)
		var batch []txn.Txn
		batch = append(batch, scanCount(base, base+10_000, &rows[0], &sums[0]))
		for w := 0; w < waves; w++ {
			batch = append(batch, insertN(base+uint64(width*w), width))
			batch = append(batch, scanCount(base, base+10_000, &rows[w+1], &sums[w+1]))
		}
		for i, err := range e.ExecuteBatch(batch) {
			if err != nil {
				t.Fatalf("%s: txn %d: %v", name, i, err)
			}
		}
		for i, n := range rows {
			if n%width != 0 {
				t.Errorf("%s: scan %d saw %d rows — a torn insert (phantom)", name, i, n)
			}
			if n > width*waves {
				t.Errorf("%s: scan %d saw %d rows, more than ever inserted", name, i, n)
			}
			if sums[i] != uint64(n) {
				t.Errorf("%s: scan %d rows %d but sum %d", name, i, n, sums[i])
			}
			// Pipelined BOHM serializes the scan at its exact submission
			// position; default BOHM diverts it to the snapshot fast path,
			// which serializes it at the execution watermark — some batch
			// prefix of the call, so the generic multiple-of-width checks
			// above still pin it to a wave boundary.
			if name == "bohm-nofast" && n != width*i {
				t.Errorf("bohm-nofast: scan %d saw %d rows, want exactly %d (submission order)", i, n, width*i)
			}
		}
	})
}

// TestPhantomScanConcurrentStreams: inserters and scanners race from
// separate ExecuteBatch streams; every observed count must still be a
// multiple of the insert width. Run with -race in CI.
func TestPhantomScanConcurrentStreams(t *testing.T) {
	const (
		base  = 80_000
		width = 5
		ins   = 40
		scans = 60
	)
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 1, 0)
		var wg sync.WaitGroup
		errs := make(chan error, ins+scans)
		counts := make([]int, scans)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for w := 0; w < ins; w++ {
				res := e.ExecuteBatch([]txn.Txn{insertN(base+uint64(width*w), width)})
				if res[0] != nil {
					errs <- res[0]
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < scans; i++ {
				var sum uint64
				res := e.ExecuteBatch([]txn.Txn{scanCount(base, base+10_000, &counts[i], &sum)})
				if res[0] != nil {
					errs <- res[0]
				}
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", name, err)
		}
		for i, n := range counts {
			if n%width != 0 || n > width*ins {
				t.Errorf("%s: concurrent scan %d saw %d rows (width %d, max %d)", name, i, n, width, width*ins)
			}
		}
	})
}

// TestRangeScanSumInvariant mirrors the core scan test across every
// engine: transfers shuffle value between keys inside the range while
// scans run; every scan must observe the invariant total.
func TestRangeScanSumInvariant(t *testing.T) {
	const (
		nkeys   = 64
		initial = 100
	)
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, nkeys, initial)
		transfer := func(i int) txn.Txn {
			a, b := key(uint64(i%nkeys)), key(uint64((i+7)%nkeys))
			if a == b {
				b = key(uint64((i + 8) % nkeys))
			}
			return &txn.Proc{
				Reads:  []txn.Key{a, b},
				Writes: []txn.Key{a, b},
				Body: func(ctx txn.Ctx) error {
					va, err := ctx.Read(a)
					if err != nil {
						return err
					}
					vb, err := ctx.Read(b)
					if err != nil {
						return err
					}
					if err := ctx.Write(a, txn.NewValue(8, txn.U64(va)-1)); err != nil {
						return err
					}
					return ctx.Write(b, txn.NewValue(8, txn.U64(vb)+1))
				},
			}
		}
		const nscans = 10
		rows := make([]int, nscans)
		sums := make([]uint64, nscans)
		var batch []txn.Txn
		si := 0
		for i := 0; i < 200; i++ {
			batch = append(batch, transfer(i))
			if i%20 == 10 {
				batch = append(batch, scanCount(0, nkeys, &rows[si], &sums[si]))
				si++
			}
		}
		for i, err := range e.ExecuteBatch(batch) {
			if err != nil {
				t.Fatalf("%s: txn %d: %v", name, i, err)
			}
		}
		for i := 0; i < si; i++ {
			if rows[i] != nkeys {
				t.Errorf("%s: scan %d saw %d rows, want %d", name, i, rows[i], nkeys)
			}
			if sums[i] != nkeys*initial {
				t.Errorf("%s: scan %d sum = %d, want %d (torn transfers)", name, i, sums[i], nkeys*initial)
			}
		}
	})
}

// TestScanOwnWritesAcrossEngines: on every engine a transaction's scan
// observes its own earlier writes, including inserts into the range.
func TestScanOwnWritesAcrossEngines(t *testing.T) {
	forEachEngine(t, func(t *testing.T, name string, _ bool, e engine.Engine) {
		load(t, e, 4, 10) // keys 0..3, value 10
		r := txn.KeyRange{Table: 0, Lo: 0, Hi: 100}
		kNew, kDel := key(50), key(2)
		var rows int
		var sum uint64
		p := &txn.Proc{
			Writes: []txn.Key{kNew, kDel},
			Ranges: []txn.KeyRange{r},
			Body: func(ctx txn.Ctx) error {
				if err := ctx.Write(kNew, txn.NewValue(8, 7)); err != nil {
					return err
				}
				if err := ctx.Delete(kDel); err != nil {
					return err
				}
				rows, sum = 0, 0
				return ctx.ReadRange(r, func(_ txn.Key, v []byte) error {
					rows++
					sum += txn.U64(v)
					return nil
				})
			},
		}
		if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
			t.Fatalf("%s: %v", name, res[0])
		}
		// 4 loaded - 1 deleted + 1 inserted = 4 rows; sum = 3*10 + 7.
		if rows != 4 || sum != 37 {
			t.Errorf("%s: own-write scan = %d rows sum %d, want 4 rows sum 37", name, rows, sum)
		}
	})
}
