package enginetest

// Cross-client read-your-writes over the network front-end. The
// guarantee under test (internal/server, core.AckedBatch/WaitCovered):
// a write acknowledged on connection A is visible to an immediately
// following read on A — the connection's recency token covers its own
// acks — and to any read on connection B submitted after B observed A's
// token. The server's group batcher must preserve this while freely
// re-grouping transactions from other connections.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"bohm/client"
	"bohm/internal/core"
	"bohm/internal/server"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

func startRWServer(t *testing.T) (*txn.Registry, *server.Server) {
	t.Helper()
	reg := txn.NewRegistry()
	workload.RegisterKV(reg)
	eng, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(eng, reg, server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		eng.Close()
	})
	return reg, srv
}

func dialRW(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func putVal(t *testing.T, reg *txn.Registry, c *client.Conn, k txn.Key, v uint64) {
	t.Helper()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p, err := c.Submit(reg.MustCall(workload.ProcKVPut, workload.KVPutArgs(k, b[:])))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("put: %v", err)
	}
}

func getVal(t *testing.T, reg *txn.Registry, c *client.Conn, k txn.Key) uint64 {
	t.Helper()
	p, err := c.SubmitReadOnly(reg.MustCall(workload.ProcKVGet, workload.KVGetArgs(k)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("get: %v", err)
	}
	return txn.U64(p.Result())
}

// TestServerReadYourWritesSameConn: every acked write on a connection
// is visible to the read submitted right after it on that connection.
func TestServerReadYourWritesSameConn(t *testing.T) {
	reg, srv := startRWServer(t)
	a := dialRW(t, srv.Addr())
	k := txn.Key{Table: 3, ID: 42}
	for i := uint64(1); i <= 100; i++ {
		putVal(t, reg, a, k, i)
		if got := getVal(t, reg, a, k); got != i {
			t.Fatalf("iteration %d: same-connection read = %d, want %d", i, got, i)
		}
	}
}

// TestServerReadYourWritesAcrossConns: after B observes A's token
// (simulating any out-of-band "A told B about its write" channel), B's
// reads must include A's acked writes.
func TestServerReadYourWritesAcrossConns(t *testing.T) {
	reg, srv := startRWServer(t)
	a := dialRW(t, srv.Addr())
	b := dialRW(t, srv.Addr())
	k := txn.Key{Table: 3, ID: 43}
	for i := uint64(1); i <= 100; i++ {
		putVal(t, reg, a, k, i)
		b.ObserveToken(a.Token())
		if got := getVal(t, reg, b, k); got != i {
			t.Fatalf("iteration %d: cross-connection read = %d, want %d", i, got, i)
		}
	}
}

// TestServerReadYourWritesConcurrent races a writer connection against
// reader connections that learn tokens through a channel, while
// unrelated traffic keeps the group batcher mixing connections. A
// reader must never observe a value older than the write its token
// covers (newer is fine — the writer keeps going).
func TestServerReadYourWritesConcurrent(t *testing.T) {
	reg, srv := startRWServer(t)
	k := txn.Key{Table: 3, ID: 44}

	type stamp struct {
		val uint64
		tok uint64
	}
	stamps := make(chan stamp, 64)
	var wg sync.WaitGroup

	// Writer on its own connection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stamps)
		w := dialRW(t, srv.Addr())
		for i := uint64(1); i <= 300; i++ {
			putVal(t, reg, w, k, i)
			stamps <- stamp{val: i, tok: w.Token()}
		}
	}()

	// Noise connections keep batches mixed while the test runs.
	noiseDone := make(chan struct{})
	for n := 0; n < 2; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := dialRW(t, srv.Addr())
			nk := txn.Key{Table: 4, ID: uint64(n)}
			for i := uint64(1); ; i++ {
				select {
				case <-noiseDone:
					return
				default:
				}
				putVal(t, reg, c, nk, i)
			}
		}(n)
	}

	// Readers race the writer, gated only by the token handoff.
	readerErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(noiseDone)
		r := dialRW(t, srv.Addr())
		for s := range stamps {
			r.ObserveToken(s.tok)
			if got := getVal(t, reg, r, k); got < s.val {
				select {
				case readerErr <- fmt.Errorf("stale read: got %d, token covers %d", got, s.val):
				default:
				}
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent read-your-writes test wedged")
	}
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
}
