// Package wire defines bohm's client/server binary protocol: a
// handshake, length-prefixed frames, and two message shapes (submit,
// result). The transaction payload inside a submit frame is the WAL's
// txn.Record encoding — registered procedures travel to the server in
// the exact bytes the command log would persist, so the protocol adds no
// serialization of its own.
//
// Framing: after an 8-byte magic exchanged in both directions, every
// message is [u32 LE payload length][payload]. Lengths above MaxFrame
// indicate a broken or hostile peer and close the connection.
//
// A connection is a full-duplex pipeline: clients send submits without
// waiting, the server replies in any order, and the u64 request id
// correlates them. Every result carries a recency token — the newest
// acknowledged batch at completion — which clients echo on read-only
// submits to get read-your-writes across connections (see
// core.AckedBatch/WaitCovered).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"bohm/internal/core"
	"bohm/internal/txn"
)

// Magic opens every connection in both directions.
const Magic = "BOHMSRV1"

// MaxFrame bounds one framed payload; bigger lengths are protocol
// errors, not allocation requests.
const MaxFrame = 1 << 24

// Message kinds (first payload byte).
const (
	MsgSubmit byte = 1 // client -> server: one transaction
	MsgResult byte = 2 // server -> client: one transaction's outcome
)

// Submit flags.
const (
	// FlagReadOnly routes the transaction to the read-only fast path
	// (ExecuteReadOnly): snapshot reads off the group-commit critical
	// path. The transaction must declare no writes.
	FlagReadOnly byte = 1 << 0
)

// Status codes carried by result messages. Non-OK statuses map to the
// engine's error ladder so errors.Is works across the wire.
const (
	StatusOK                byte = 0
	StatusError             byte = 1  // application abort or other txn error
	StatusNotFound          byte = 2  // txn.ErrNotFound
	StatusAborted           byte = 3  // txn.ErrAbort
	StatusNotLoggable       byte = 4  // core.ErrNotLoggable
	StatusNotReadOnly       byte = 5  // core.ErrNotReadOnly
	StatusDuplicateWriteKey byte = 6  // core.ErrDuplicateWriteKey
	StatusDurabilityLost    byte = 7  // core.ErrDurabilityLost
	StatusClosed            byte = 8  // core.ErrClosed (engine or server shut down)
	StatusUnknownProc       byte = 9  // procedure id not registered on the server
	StatusBadRequest        byte = 10 // malformed frame or protocol violation
)

// ErrProtocol reports a malformed frame, bad magic, or oversized length;
// the connection is unusable after it.
var ErrProtocol = errors.New("wire: protocol error")

// ErrUnknownProc is the client-side sentinel for StatusUnknownProc.
var ErrUnknownProc = errors.New("wire: unknown procedure")

// Request is one decoded submit message.
type Request struct {
	ID    uint64
	Flags byte
	Token uint64 // recency token echoed from earlier results; 0 = none
	Rec   txn.Record
}

// Response is one decoded result message.
type Response struct {
	ID     uint64
	Status byte
	Token  uint64 // newest acknowledged batch when the result was produced
	Msg    string // error detail, empty on OK
	Result []byte // Resulter payload, nil unless OK
}

// AppendRequest appends r's submit-message encoding (without framing).
func AppendRequest(buf []byte, r *Request) []byte {
	buf = append(buf, MsgSubmit)
	buf = txn.AppendU64(buf, r.ID)
	buf = append(buf, r.Flags)
	buf = txn.AppendU64(buf, r.Token)
	return txn.AppendRecord(buf, &r.Rec)
}

// AppendResponse appends r's result-message encoding (without framing).
func AppendResponse(buf []byte, r *Response) []byte {
	buf = append(buf, MsgResult)
	buf = txn.AppendU64(buf, r.ID)
	buf = append(buf, r.Status)
	buf = txn.AppendU64(buf, r.Token)
	buf = txn.AppendU32(buf, uint32(len(r.Msg)))
	buf = append(buf, r.Msg...)
	buf = txn.AppendU32(buf, uint32(len(r.Result)))
	return append(buf, r.Result...)
}

// DecodeRequest parses a submit payload (after the kind byte has been
// checked). The record's Args alias payload.
func DecodeRequest(payload []byte) (Request, error) {
	d := txn.NewDecoder(payload)
	var r Request
	r.ID = d.U64()
	f := d.Bytes(1)
	if d.Err() == nil {
		r.Flags = f[0]
	}
	r.Token = d.U64()
	r.Rec = d.Record()
	if d.Err() != nil || d.Rem() != 0 {
		return Request{}, fmt.Errorf("%w: bad submit payload", ErrProtocol)
	}
	return r, nil
}

// DecodeResponse parses a result payload (after the kind byte). Msg and
// Result are copied; the payload buffer may be reused.
func DecodeResponse(payload []byte) (Response, error) {
	d := txn.NewDecoder(payload)
	var r Response
	r.ID = d.U64()
	s := d.Bytes(1)
	if d.Err() == nil {
		r.Status = s[0]
	}
	r.Token = d.U64()
	r.Msg = string(d.Bytes(int(d.U32())))
	if n := int(d.U32()); d.Err() == nil && n > 0 {
		r.Result = append([]byte(nil), d.Bytes(n)...)
	}
	if d.Err() != nil || d.Rem() != 0 {
		return Response{}, fmt.Errorf("%w: bad result payload", ErrProtocol)
	}
	return r, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame into buf (grown as needed) and returns the
// payload slice, which aliases buf.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds %d", ErrProtocol, n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Handshake exchanges the magic: writes ours, reads and checks the
// peer's.
func Handshake(rw io.ReadWriter) error {
	if _, err := io.WriteString(rw, Magic); err != nil {
		return err
	}
	var got [len(Magic)]byte
	if _, err := io.ReadFull(rw, got[:]); err != nil {
		return err
	}
	if string(got[:]) != Magic {
		return fmt.Errorf("%w: bad magic %q", ErrProtocol, got[:])
	}
	return nil
}

// StatusFor maps an engine error to its wire status. Order matters:
// specific sentinels before the generic fallback.
func StatusFor(err error) byte {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, core.ErrDurabilityLost):
		return StatusDurabilityLost
	case errors.Is(err, core.ErrClosed):
		return StatusClosed
	case errors.Is(err, core.ErrNotLoggable):
		return StatusNotLoggable
	case errors.Is(err, core.ErrNotReadOnly):
		return StatusNotReadOnly
	case errors.Is(err, core.ErrDuplicateWriteKey):
		return StatusDuplicateWriteKey
	case errors.Is(err, txn.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, txn.ErrAbort):
		return StatusAborted
	default:
		return StatusError
	}
}

// sentinelFor is StatusFor's inverse: the errors.Is target a remote
// error of this status unwraps to. Nil for OK and the generic statuses.
func sentinelFor(status byte) error {
	switch status {
	case StatusNotFound:
		return txn.ErrNotFound
	case StatusAborted:
		return txn.ErrAbort
	case StatusNotLoggable:
		return core.ErrNotLoggable
	case StatusNotReadOnly:
		return core.ErrNotReadOnly
	case StatusDuplicateWriteKey:
		return core.ErrDuplicateWriteKey
	case StatusDurabilityLost:
		return core.ErrDurabilityLost
	case StatusClosed:
		return core.ErrClosed
	case StatusUnknownProc:
		return ErrUnknownProc
	case StatusBadRequest:
		return ErrProtocol
	}
	return nil
}

// RemoteError reconstructs a server-side error on the client so that
// errors.Is against the public sentinels (bohm.ErrDurabilityLost,
// bohm.ErrNotFound, ...) behaves as it would embedded.
type RemoteError struct {
	Status   byte
	Msg      string
	sentinel error
}

// ErrorFor turns a non-OK response status and message back into an
// error. When the message adds nothing over the sentinel the sentinel
// itself is returned, preserving err == bohm.ErrNotFound comparisons for
// the common cases.
func ErrorFor(status byte, msg string) error {
	if status == StatusOK {
		return nil
	}
	s := sentinelFor(status)
	if s != nil && (msg == "" || msg == s.Error()) {
		return s
	}
	if msg == "" {
		msg = fmt.Sprintf("wire: remote error (status %d)", status)
	}
	return &RemoteError{Status: status, Msg: msg, sentinel: s}
}

func (e *RemoteError) Error() string { return e.Msg }

// Unwrap exposes the mapped sentinel to errors.Is; nil for generic
// application errors.
func (e *RemoteError) Unwrap() error { return e.sentinel }
