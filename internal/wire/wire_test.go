package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"bohm/internal/core"
	"bohm/internal/txn"
)

func TestRequestRoundTrip(t *testing.T) {
	req := Request{
		ID:    42,
		Flags: FlagReadOnly,
		Token: 7,
		Rec: txn.Record{
			Proc:   "kv.put",
			Args:   []byte{1, 2, 3},
			Reads:  []txn.Key{{Table: 1, ID: 10}},
			Writes: []txn.Key{{Table: 1, ID: 10}, {Table: 2, ID: 20}},
			Ranges: []txn.KeyRange{{Table: 3, Lo: 5, Hi: 9}},
		},
	}
	buf := AppendRequest(nil, &req)
	if buf[0] != MsgSubmit {
		t.Fatalf("kind byte = %d, want %d", buf[0], MsgSubmit)
	}
	got, err := DecodeRequest(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || got.Flags != req.Flags || got.Token != req.Token {
		t.Errorf("header mismatch: %+v vs %+v", got, req)
	}
	if got.Rec.Proc != req.Rec.Proc || !bytes.Equal(got.Rec.Args, req.Rec.Args) {
		t.Errorf("record proc/args mismatch: %+v", got.Rec)
	}
	if len(got.Rec.Reads) != 1 || len(got.Rec.Writes) != 2 || len(got.Rec.Ranges) != 1 {
		t.Errorf("access sets mismatch: %+v", got.Rec)
	}
	if got.Rec.Writes[1] != (txn.Key{Table: 2, ID: 20}) {
		t.Errorf("write key mismatch: %+v", got.Rec.Writes)
	}

	// Truncations at every prefix must error, never panic.
	for n := 0; n < len(buf)-1; n++ {
		if _, err := DecodeRequest(buf[1:][:n]); err == nil && n < len(buf)-1 {
			t.Fatalf("truncation at %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is a protocol error too.
	if _, err := DecodeRequest(append(buf[1:], 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Response{
		ID:     9,
		Status: StatusNotFound,
		Token:  101,
		Msg:    "key not found",
		Result: []byte{0xde, 0xad},
	}
	buf := AppendResponse(nil, &resp)
	if buf[0] != MsgResult {
		t.Fatalf("kind byte = %d, want %d", buf[0], MsgResult)
	}
	got, err := DecodeResponse(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != resp.ID || got.Status != resp.Status || got.Token != resp.Token ||
		got.Msg != resp.Msg || !bytes.Equal(got.Result, resp.Result) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, resp)
	}
}

func TestFrameRoundTripAndLimit(t *testing.T) {
	var b bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&b, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("frame round trip: %q", got)
	}

	// An oversized length must be rejected before any allocation.
	b.Reset()
	b.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&b, nil); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized frame error = %v, want ErrProtocol", err)
	}
}

type rwPair struct {
	r io.Reader
	w io.Writer
}

func (p rwPair) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p rwPair) Write(b []byte) (int, error) { return p.w.Write(b) }

func TestHandshakeRejectsBadMagic(t *testing.T) {
	var out bytes.Buffer
	rw := rwPair{r: bytes.NewReader([]byte("NOTBOHM!")), w: &out}
	if err := Handshake(rw); !errors.Is(err, ErrProtocol) {
		t.Errorf("bad magic error = %v, want ErrProtocol", err)
	}
	if out.String() != Magic {
		t.Errorf("our magic not written: %q", out.String())
	}
}

func TestStatusErrorMapping(t *testing.T) {
	// Every status produced by StatusFor must come back as an error that
	// errors.Is-matches the original sentinel.
	for _, sentinel := range []error{
		core.ErrDurabilityLost,
		core.ErrClosed,
		core.ErrNotLoggable,
		core.ErrNotReadOnly,
		core.ErrDuplicateWriteKey,
		txn.ErrNotFound,
		txn.ErrAbort,
	} {
		status := StatusFor(sentinel)
		if status == StatusOK || status == StatusError {
			t.Errorf("%v mapped to generic status %d", sentinel, status)
			continue
		}
		back := ErrorFor(status, sentinel.Error())
		if !errors.Is(back, sentinel) {
			t.Errorf("status %d does not unwrap to %v (got %v)", status, sentinel, back)
		}
	}
	if got := StatusFor(nil); got != StatusOK {
		t.Errorf("StatusFor(nil) = %d", got)
	}
	if got := ErrorFor(StatusOK, ""); got != nil {
		t.Errorf("ErrorFor(OK) = %v", got)
	}
	// A wrapped error keeps its message and its sentinel.
	wrapped := ErrorFor(StatusAborted, "insufficient funds: abort")
	if !errors.Is(wrapped, txn.ErrAbort) || wrapped.Error() != "insufficient funds: abort" {
		t.Errorf("wrapped remote error = %v", wrapped)
	}
	// Generic errors survive with their message and match nothing.
	generic := ErrorFor(StatusError, "boom")
	if generic.Error() != "boom" || errors.Is(generic, txn.ErrAbort) {
		t.Errorf("generic remote error = %v", generic)
	}
}
