// Package si exposes the paper's Snapshot Isolation baseline: the Hekaton
// codebase (internal/hekaton) run at the Snapshot level, exactly as the
// paper built its SI comparison point "within our Hekaton codebase" (§4).
// Transactions read as of their begin timestamp, write-write conflicts
// abort via first-writer-wins, and no read validation is performed — so
// SI permits the write-skew anomaly and is not serializable. Range scans
// (Ctx.ReadRange) read the same begin-timestamp snapshot: each scan is
// internally consistent (concurrent inserts are all-or-nothing), but
// without the Serializable level's commit-time rescan they are only
// snapshot-consistent, like every other SI read.
package si

import (
	"bohm/internal/engine"
	"bohm/internal/hekaton"
)

// Config parameterizes the SI engine; see hekaton.Config. The Level field
// is ignored (forced to Snapshot).
type Config = hekaton.Config

// DefaultConfig returns a small general-purpose configuration.
func DefaultConfig() Config {
	cfg := hekaton.DefaultConfig()
	cfg.Level = hekaton.Snapshot
	return cfg
}

// New creates a snapshot isolation engine.
func New(cfg Config) (engine.Engine, error) {
	cfg.Level = hekaton.Snapshot
	return hekaton.New(cfg)
}
