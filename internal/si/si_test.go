package si

import (
	"testing"

	"bohm/internal/hekaton"
	"bohm/internal/txn"
)

func TestDefaultConfigIsSnapshot(t *testing.T) {
	if DefaultConfig().Level != hekaton.Snapshot {
		t.Fatal("DefaultConfig is not Snapshot level")
	}
}

// TestNewForcesSnapshotLevel: even a config asking for Serializable must
// come out as the SI baseline.
func TestNewForcesSnapshotLevel(t *testing.T) {
	cfg := hekaton.DefaultConfig()
	cfg.Level = hekaton.Serializable
	cfg.Capacity = 64
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	k := txn.Key{ID: 1}
	if err := e.Load(k, txn.NewValue(8, 1)); err != nil {
		t.Fatal(err)
	}
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads:  []txn.Key{k},
		Writes: []txn.Key{k},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(k)
			if err != nil {
				return err
			}
			return ctx.Write(k, txn.Incremented(v, 1))
		},
	}})
	if res[0] != nil {
		t.Fatal(res[0])
	}
	// SI never validates reads, so a read-only transaction costs exactly
	// two timestamp fetches and always commits.
	s := e.Stats()
	if s.Committed != 1 {
		t.Fatalf("committed = %d, want 1", s.Committed)
	}
	if s.TimestampFetches < 2 {
		t.Fatalf("tsFetches = %d, want >= 2", s.TimestampFetches)
	}
}
