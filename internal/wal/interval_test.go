package wal

import (
	"testing"
	"time"

	"bohm/internal/vfs"
)

// TestIntervalSyncDoesNotBlockAppends: with SyncByInterval, the fsync runs
// outside the writer mutex, so the sequencer keeps appending while the
// disk is slow. The test blocks the first fsync on a gate, appends a pile
// of batches while it is held, and verifies they all completed before the
// fsync was released — then releases it and checks durability still
// advances (on a later sync covering the new appends).
func TestIntervalSyncDoesNotBlockAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncByInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	first := true
	w.mu.Lock() // the syncer goroutine reads w.fsync under mu-published state
	w.fsync = func(f vfs.File) error {
		if first {
			first = false
			close(started)
			<-release
		}
		return f.Sync()
	}
	w.mu.Unlock()

	if err := w.Append(mkBatch(1, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("interval syncer never started an fsync")
	}

	// The first fsync is now parked. Appends must still complete.
	const extra = 50
	appended := make(chan error, 1)
	go func() {
		for seq := uint64(2); seq <= 1+extra; seq++ {
			if err := w.Append(mkBatch(seq, 1)); err != nil {
				appended <- err
				return
			}
		}
		appended <- nil
	}()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatalf("append during slow sync: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("appends blocked behind the interval fsync")
	}

	close(release)
	if err := w.WaitDurable(1 + extra); err != nil {
		t.Fatalf("WaitDurable after release: %v", err)
	}
}
