// Package wal is BOHM's durability subsystem: a segmented, checksummed,
// append-only command log plus consistent checkpoints.
//
// # Why command logging suffices
//
// BOHM's serial order equals its submission order: the sequencer assigns
// timestamps by log position, and execution installs exactly the state a
// serial run in that order would produce. Transaction logic is required to
// be deterministic given its reads. Logging the *input* — each batch's
// transactions as (procedure id, args, access sets), Calvin-style — is
// therefore enough for recovery: re-submitting the logged batches in order
// to a fresh engine deterministically reproduces the lost state. There is
// no per-version redo or undo, and the log is written once per batch by
// the single sequencer goroutine, so logging adds one sequential write
// (and, depending on SyncPolicy, one fsync) per batch to the whole system.
//
// # On-disk layout
//
// A log directory holds numbered segment files and checkpoint files:
//
//	wal-00000000000000000001.log    segments, named by first batch seq
//	wal-00000000000000004097.log
//	ckpt-00000000000000004096.ckpt  checkpoints, named by batch watermark
//
// A segment starts with an 8-byte magic and contains framed records:
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// Each payload is one encoded batch. A torn final record (partial write at
// crash, detected by length or CRC) is discarded at recovery; corruption
// anywhere else is reported as ErrCorrupt.
//
// A checkpoint is a consistent snapshot of every record visible at a batch
// watermark W, written atomically (temp file + rename). After a checkpoint
// at W is durable, segments entirely below W+1 are deleted; recovery loads
// the newest checkpoint and replays only the batches above its watermark.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"bohm/internal/txn"
)

// SyncPolicy selects when the log writer calls fsync.
type SyncPolicy int

const (
	// SyncEveryBatch fsyncs before every batch is acknowledged: no
	// committed transaction is ever lost. One fsync per sequencer batch;
	// group commit happens naturally because the sequencer coalesces all
	// waiting submissions into one batch.
	SyncEveryBatch SyncPolicy = iota
	// SyncByInterval fsyncs on a fixed interval (group commit):
	// acknowledgements wait for the next interval sync, trading commit
	// latency for a bounded fsync rate.
	SyncByInterval
	// SyncNever leaves flushing to the OS page cache. A process crash
	// still leaves a consistent prefix (the kernel has every flushed
	// byte), but an OS or power failure can persist page-cache writeback
	// out of order, leaving mid-log corruption that recovery refuses
	// (ErrCorrupt) rather than a shorter prefix. Use it only where
	// losing the database on a machine failure is acceptable.
	SyncNever
)

// String implements fmt.Stringer for reports and bench labels.
func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryBatch:
		return "batch"
	case SyncByInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// TxnRecord is the logged form of one transaction: the registry-dispatched
// procedure plus the declared access sets. It is the shared wire encoding
// from internal/txn — the network protocol (internal/wire) transmits the
// exact bytes the log persists, so registered procedures round-trip
// between client, server and log with one encoder.
type TxnRecord = txn.Record

// Batch is the unit of logging and replay: one sequencer batch, identified
// by its batch sequence number.
type Batch struct {
	Seq  uint64
	Txns []TxnRecord
}

// ErrCorrupt reports log or checkpoint damage that is not a torn tail:
// a CRC mismatch or malformed record followed by more data, a sequence
// gap, or a truncated non-final segment. Recovery cannot safely proceed
// past it.
var ErrCorrupt = errors.New("wal: log corrupt")

// castagnoli is the CRC-32C table used for every checksum in the package.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes bounds a single framed record; a length above it is
// treated as corruption rather than an allocation request.
const maxRecordBytes = 1 << 30

// The segment magic was bumped to 2 when TxnRecord gained declared key
// ranges; version-1 logs are refused with a clear error rather than
// misdecoded.
const (
	segMagic  = "BOHMWAL2"
	ckptMagic = "BOHMCKP1"
)

// Fixed-width little-endian encoding shared with internal/txn: batches
// are written once and scanned once, so simplicity beats byte-shaving.

func appendU32(b []byte, x uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, x)
}

func putU32(b []byte, x uint32) {
	binary.LittleEndian.PutUint32(b, x)
}

func appendU64(b []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, x)
}

// encodeBatch appends b's payload encoding to buf and returns it.
func encodeBatch(buf []byte, b *Batch) []byte {
	buf = appendU64(buf, b.Seq)
	buf = appendU32(buf, uint32(len(b.Txns)))
	for i := range b.Txns {
		buf = txn.AppendRecord(buf, &b.Txns[i])
	}
	return buf
}

// decodeBatch parses one payload. The returned batch aliases payload's
// argument bytes; callers that retain it must not reuse the buffer.
func decodeBatch(payload []byte) (*Batch, error) {
	d := txn.NewDecoder(payload)
	b := &Batch{Seq: d.U64()}
	n := int(d.U32())
	if d.Err() != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad batch header", ErrCorrupt)
	}
	b.Txns = make([]TxnRecord, 0, n)
	for i := 0; i < n; i++ {
		r := d.Record()
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
		}
		b.Txns = append(b.Txns, r)
	}
	if d.Rem() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in batch payload", ErrCorrupt, d.Rem())
	}
	return b, nil
}
