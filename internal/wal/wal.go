// Package wal is BOHM's durability subsystem: a segmented, checksummed,
// append-only command log plus consistent checkpoints.
//
// # Why command logging suffices
//
// BOHM's serial order equals its submission order: the sequencer assigns
// timestamps by log position, and execution installs exactly the state a
// serial run in that order would produce. Transaction logic is required to
// be deterministic given its reads. Logging the *input* — each batch's
// transactions as (procedure id, args, access sets), Calvin-style — is
// therefore enough for recovery: re-submitting the logged batches in order
// to a fresh engine deterministically reproduces the lost state. There is
// no per-version redo or undo, and the log is written once per batch by
// the single sequencer goroutine, so logging adds one sequential write
// (and, depending on SyncPolicy, one fsync) per batch to the whole system.
//
// # On-disk layout
//
// A log directory holds numbered segment files and checkpoint files:
//
//	wal-00000000000000000001.log    segments, named by first batch seq
//	wal-00000000000000004097.log
//	ckpt-00000000000000004096.ckpt  checkpoints, named by batch watermark
//
// A segment starts with an 8-byte magic and contains framed records:
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// Each payload is one encoded batch. A torn final record (partial write at
// crash, detected by length or CRC) is discarded at recovery; corruption
// anywhere else is reported as ErrCorrupt.
//
// A checkpoint is a consistent snapshot of every record visible at a batch
// watermark W, written atomically (temp file + rename). After a checkpoint
// at W is durable, segments entirely below W+1 are deleted; recovery loads
// the newest checkpoint and replays only the batches above its watermark.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"bohm/internal/txn"
)

// SyncPolicy selects when the log writer calls fsync.
type SyncPolicy int

const (
	// SyncEveryBatch fsyncs before every batch is acknowledged: no
	// committed transaction is ever lost. One fsync per sequencer batch;
	// group commit happens naturally because the sequencer coalesces all
	// waiting submissions into one batch.
	SyncEveryBatch SyncPolicy = iota
	// SyncByInterval fsyncs on a fixed interval (group commit):
	// acknowledgements wait for the next interval sync, trading commit
	// latency for a bounded fsync rate.
	SyncByInterval
	// SyncNever leaves flushing to the OS page cache. A process crash
	// still leaves a consistent prefix (the kernel has every flushed
	// byte), but an OS or power failure can persist page-cache writeback
	// out of order, leaving mid-log corruption that recovery refuses
	// (ErrCorrupt) rather than a shorter prefix. Use it only where
	// losing the database on a machine failure is acceptable.
	SyncNever
)

// String implements fmt.Stringer for reports and bench labels.
func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryBatch:
		return "batch"
	case SyncByInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// TxnRecord is the logged form of one transaction: the registry-dispatched
// procedure plus the declared access sets. The access sets (point keys and
// key ranges) are logged so replay does not depend on factories
// recomputing them identically.
type TxnRecord struct {
	Proc   string
	Args   []byte
	Reads  []txn.Key
	Writes []txn.Key
	Ranges []txn.KeyRange
}

// Batch is the unit of logging and replay: one sequencer batch, identified
// by its batch sequence number.
type Batch struct {
	Seq  uint64
	Txns []TxnRecord
}

// ErrCorrupt reports log or checkpoint damage that is not a torn tail:
// a CRC mismatch or malformed record followed by more data, a sequence
// gap, or a truncated non-final segment. Recovery cannot safely proceed
// past it.
var ErrCorrupt = errors.New("wal: log corrupt")

// castagnoli is the CRC-32C table used for every checksum in the package.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes bounds a single framed record; a length above it is
// treated as corruption rather than an allocation request.
const maxRecordBytes = 1 << 30

// The segment magic was bumped to 2 when TxnRecord gained declared key
// ranges; version-1 logs are refused with a clear error rather than
// misdecoded.
const (
	segMagic  = "BOHMWAL2"
	ckptMagic = "BOHMCKP1"
)

// appendUvarint-free fixed-width little-endian encoding: batches are
// written once and scanned once, so simplicity beats byte-shaving.

func appendU32(b []byte, x uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, x)
}

func putU32(b []byte, x uint32) {
	binary.LittleEndian.PutUint32(b, x)
}

func appendU64(b []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, x)
}

func appendKeys(b []byte, ks []txn.Key) []byte {
	b = appendU32(b, uint32(len(ks)))
	for _, k := range ks {
		b = appendU32(b, k.Table)
		b = appendU64(b, k.ID)
	}
	return b
}

func appendRanges(b []byte, rs []txn.KeyRange) []byte {
	b = appendU32(b, uint32(len(rs)))
	for _, r := range rs {
		b = appendU32(b, r.Table)
		b = appendU64(b, r.Lo)
		b = appendU64(b, r.Hi)
	}
	return b
}

// encodeBatch appends b's payload encoding to buf and returns it.
func encodeBatch(buf []byte, b *Batch) []byte {
	buf = appendU64(buf, b.Seq)
	buf = appendU32(buf, uint32(len(b.Txns)))
	for i := range b.Txns {
		r := &b.Txns[i]
		buf = appendU32(buf, uint32(len(r.Proc)))
		buf = append(buf, r.Proc...)
		buf = appendU32(buf, uint32(len(r.Args)))
		buf = append(buf, r.Args...)
		buf = appendKeys(buf, r.Reads)
		buf = appendKeys(buf, r.Writes)
		buf = appendRanges(buf, r.Ranges)
	}
	return buf
}

// decoder is a bounds-checked cursor over an encoded payload.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return x
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return x
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) keys() []txn.Key {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+12*n > len(d.b) {
		d.fail()
		return nil
	}
	ks := make([]txn.Key, n)
	for i := range ks {
		ks[i] = txn.Key{Table: d.u32(), ID: d.u64()}
	}
	return ks
}

func (d *decoder) ranges() []txn.KeyRange {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+20*n > len(d.b) {
		d.fail()
		return nil
	}
	rs := make([]txn.KeyRange, n)
	for i := range rs {
		rs[i] = txn.KeyRange{Table: d.u32(), Lo: d.u64(), Hi: d.u64()}
	}
	return rs
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
}

// decodeBatch parses one payload. The returned batch aliases payload's
// argument bytes; callers that retain it must not reuse the buffer.
func decodeBatch(payload []byte) (*Batch, error) {
	d := &decoder{b: payload}
	b := &Batch{Seq: d.u64()}
	n := int(d.u32())
	if d.err != nil || n < 0 {
		return nil, fmt.Errorf("%w: bad batch header", ErrCorrupt)
	}
	b.Txns = make([]TxnRecord, 0, n)
	for i := 0; i < n; i++ {
		var r TxnRecord
		r.Proc = string(d.bytes(int(d.u32())))
		r.Args = d.bytes(int(d.u32()))
		r.Reads = d.keys()
		r.Writes = d.keys()
		r.Ranges = d.ranges()
		if d.err != nil {
			return nil, d.err
		}
		b.Txns = append(b.Txns, r)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes in batch payload", ErrCorrupt, len(payload)-d.off)
	}
	return b, nil
}
