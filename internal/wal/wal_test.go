package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bohm/internal/txn"
	"bohm/internal/vfs"
)

// mkBatch builds a recognizable test batch.
func mkBatch(seq uint64, txns int) *Batch {
	b := &Batch{Seq: seq}
	for i := 0; i < txns; i++ {
		b.Txns = append(b.Txns, TxnRecord{
			Proc:   fmt.Sprintf("proc-%d", i%3),
			Args:   []byte(fmt.Sprintf("args-%d-%d", seq, i)),
			Reads:  []txn.Key{{Table: 1, ID: seq*100 + uint64(i)}},
			Writes: []txn.Key{{Table: 2, ID: seq*100 + uint64(i)}, {Table: 2, ID: seq}},
			Ranges: []txn.KeyRange{{Table: 3, Lo: seq, Hi: seq + uint64(i) + 1}},
		})
	}
	return b
}

func readAll(t *testing.T, dir string, after uint64) (got []*Batch, last uint64, torn bool) {
	t.Helper()
	last, torn, err := ReadLog(dir, after, func(b *Batch) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	return got, last, torn
}

func checkBatches(t *testing.T, got []*Batch, wantSeqs ...uint64) {
	t.Helper()
	if len(got) != len(wantSeqs) {
		t.Fatalf("got %d batches, want %d", len(got), len(wantSeqs))
	}
	for i, b := range got {
		want := mkBatch(wantSeqs[i], len(b.Txns))
		if b.Seq != wantSeqs[i] {
			t.Fatalf("batch %d: seq %d, want %d", i, b.Seq, wantSeqs[i])
		}
		for j := range b.Txns {
			g, w := b.Txns[j], want.Txns[j]
			if g.Proc != w.Proc || !bytes.Equal(g.Args, w.Args) ||
				len(g.Reads) != len(w.Reads) || len(g.Writes) != len(w.Writes) ||
				g.Reads[0] != w.Reads[0] || g.Writes[1] != w.Writes[1] ||
				len(g.Ranges) != len(w.Ranges) || g.Ranges[0] != w.Ranges[0] {
				t.Fatalf("batch %d txn %d: got %+v want %+v", i, j, g, w)
			}
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.Append(mkBatch(seq, 4)); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
		if err := w.WaitDurable(seq); err != nil {
			t.Fatalf("WaitDurable(%d): %v", seq, err)
		}
	}
	st := w.Stats()
	if st.Batches != 5 || st.Syncs < 5 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, last, torn := readAll(t, dir, 0)
	if torn || last != 5 {
		t.Fatalf("last=%d torn=%v", last, torn)
	}
	checkBatches(t, got, 1, 2, 3, 4, 5)

	// afterSeq filters replay but still validates the prefix.
	got, _, _ = readAll(t, dir, 3)
	checkBatches(t, got, 4, 5)
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for seq := uint64(1); seq <= n; seq++ {
		if err := w.Append(mkBatch(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	got, last, torn := readAll(t, dir, 0)
	if torn || last != n {
		t.Fatalf("last=%d torn=%v", last, torn)
	}
	if len(got) != n {
		t.Fatalf("read %d batches, want %d", len(got), n)
	}

	// Truncating below batch 10 must keep everything >= 10 readable.
	if err := w.TruncateBelow(10); err != nil {
		t.Fatal(err)
	}
	left, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) >= len(segs) {
		t.Fatalf("truncate removed nothing (%d -> %d segments)", len(segs), len(left))
	}
	got = nil
	_, _, err = ReadLog(dir, 9, func(b *Batch) error { got = append(got, b); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n-9 || got[0].Seq != 10 {
		t.Fatalf("after truncate: %d batches, first %d", len(got), got[0].Seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// corrupt the newest segment with f, then verify the log reads as a torn
// tail containing wantSeqs.
func tornCase(t *testing.T, name string, f func(t *testing.T, path string), wantSeqs ...uint64) {
	t.Run(name, func(t *testing.T) {
		dir := t.TempDir()
		w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 3; seq++ {
			if err := w.Append(mkBatch(seq, 3)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(vfs.OS, dir)
		if len(segs) != 1 {
			t.Fatalf("want one segment, got %d", len(segs))
		}
		f(t, segs[0].path)

		got, _, torn := readAll(t, dir, 0)
		if !torn {
			t.Fatal("torn tail not detected")
		}
		var seqs []uint64
		for _, b := range got {
			seqs = append(seqs, b.Seq)
		}
		if len(seqs) != len(wantSeqs) {
			t.Fatalf("replayed %v, want %v", seqs, wantSeqs)
		}
		for i := range seqs {
			if seqs[i] != wantSeqs[i] {
				t.Fatalf("replayed %v, want %v", seqs, wantSeqs)
			}
		}
	})
}

func TestTornTail(t *testing.T) {
	truncateBy := func(n int) func(*testing.T, string) {
		return func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-int64(n)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A few bytes of the final record lost: last batch discarded.
	tornCase(t, "short-payload", truncateBy(3), 1, 2)
	// Only the final record's header landed.
	tornCase(t, "header-only", func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Find the last record's start: re-scan sizes from the front.
		off := len(segMagic)
		lastStart := off
		for off < len(raw) {
			lastStart = off
			n := int(binary.LittleEndian.Uint32(raw[off:]))
			off += 8 + n
		}
		if err := os.Truncate(path, int64(lastStart+5)); err != nil {
			t.Fatal(err)
		}
	}, 1, 2)
	// Bit flip inside the final record: CRC catches it.
	tornCase(t, "bitflip-tail", func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-2] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}, 1, 2)
}

func TestCorruptionMidLogIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if err := w.Append(mkBatch(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(vfs.OS, dir)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	// Damage the FIRST segment: that is corruption, not a torn tail.
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadLog(dir, 0, func(*Batch) error { return nil })
	if err == nil {
		t.Fatal("mid-log corruption not reported")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := map[txn.Key][]byte{}
	scan := func(emit func(k txn.Key, v []byte) error) error {
		for i := 0; i < 100; i++ {
			k := txn.Key{Table: 3, ID: uint64(i)}
			v := []byte(fmt.Sprintf("value-%03d", i))
			want[k] = v
			if err := emit(k, v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := WriteCheckpoint(dir, 42, scan); err != nil {
		t.Fatal(err)
	}
	wm, recs, found, err := LoadCheckpoint(dir)
	if err != nil || !found || wm != 42 {
		t.Fatalf("LoadCheckpoint: wm=%d found=%v err=%v", wm, found, err)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for _, r := range recs {
		if !bytes.Equal(want[r.Key], r.Val) {
			t.Fatalf("record %+v = %q, want %q", r.Key, r.Val, want[r.Key])
		}
	}

	// A newer damaged checkpoint falls back to the older valid one.
	if err := WriteCheckpoint(dir, 50, scan); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(checkpointPath(dir, 50))
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xff
	if err := os.WriteFile(checkpointPath(dir, 50), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	wm, _, found, err = LoadCheckpoint(dir)
	if err != nil || !found || wm != 42 {
		t.Fatalf("fallback: wm=%d found=%v err=%v", wm, found, err)
	}

	if err := RemoveCheckpointsBelow(dir, 50); err != nil {
		t.Fatal(err)
	}
	cks, _ := listCheckpoints(vfs.OS, dir)
	if len(cks) != 1 || cks[0].watermark != 50 {
		t.Fatalf("after RemoveCheckpointsBelow: %+v", cks)
	}
}

func TestEmptyDirAndHasState(t *testing.T) {
	dir := t.TempDir()
	if got, _, found, err := LoadCheckpoint(dir); err != nil || found || got != 0 {
		t.Fatalf("empty dir checkpoint: %v %v", found, err)
	}
	if _, _, err := ReadLog(filepath.Join(dir, "missing"), 0, nil); err != nil {
		t.Fatalf("missing dir: %v", err)
	}
	has, err := HasState(dir)
	if err != nil || has {
		t.Fatalf("HasState(empty) = %v, %v", has, err)
	}
	w, err := OpenWriter(WriterOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(mkBatch(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if has, err = HasState(dir); err != nil || !has {
		t.Fatalf("HasState(with log) = %v, %v", has, err)
	}
	if err := RemoveAllState(dir, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if has, err = HasState(dir); err != nil || has {
		t.Fatalf("HasState(after reset) = %v, %v", has, err)
	}
}

func TestSyncByIntervalAndKill(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncByInterval, Interval: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(mkBatch(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WaitDurable(3); err != nil {
		t.Fatalf("WaitDurable under interval sync: %v", err)
	}
	// Appended but unsynced data is dropped by Kill...
	if err := w.Append(mkBatch(4, 2)); err != nil {
		t.Fatal(err)
	}
	w.Kill()
	got, last, _ := readAll(t, dir, 0)
	if last < 3 {
		t.Fatalf("durable batches lost: last=%d", last)
	}
	// ...but everything WaitDurable acknowledged survives.
	if len(got) < 3 {
		t.Fatalf("only %d batches survived kill", len(got))
	}
}
