package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"bohm/internal/vfs"
)

// segment is one log segment file on disk.
type segment struct {
	start uint64 // first batch seq (from the file name)
	path  string
}

// listSegments returns the directory's segment files ordered by starting
// batch sequence. Files that do not match the segment naming scheme are
// ignored.
func listSegments(fsys vfs.FS, dir string) ([]segment, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing log dir: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{start: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// ReadLog scans the directory's segments on the real filesystem; see
// ReadLogFS.
func ReadLog(dir string, afterSeq uint64, fn func(*Batch) error) (lastSeq uint64, torn bool, err error) {
	return ReadLogFS(vfs.OS, dir, afterSeq, fn)
}

// ReadLogFS scans the directory's segments in order and calls fn for every
// intact batch with Seq > afterSeq, in sequence order. It returns the
// highest intact sequence seen (zero if none) and whether a torn tail —
// a partial or checksum-failing record at the end of the newest segment,
// the signature of a crash mid-write — was detected and discarded.
//
// Sequences must be contiguous across the retained log; a gap, or damage
// anywhere other than the tail of the newest segment, returns ErrCorrupt.
func ReadLogFS(fsys vfs.FS, dir string, afterSeq uint64, fn func(*Batch) error) (lastSeq uint64, torn bool, err error) {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return 0, false, err
	}
	// Start at the newest segment that can contain afterSeq+1 and ignore
	// everything older. Stale segments below the replay point are not
	// validated: a failed removal during log truncation (checkpointing on
	// a faulty disk) can leave gaps among them, and recovery must not
	// mistake that debris — which it would never replay — for corruption.
	// When every segment starts above afterSeq+1 nothing is skipped; the
	// caller's own contiguity check against afterSeq reports the gap.
	first := 0
	for i, seg := range segs {
		if seg.start <= afterSeq+1 {
			first = i
		}
	}
	segs = segs[first:]
	var prev uint64 // last seq seen across segments; 0 = none yet
	for i, seg := range segs {
		last := i == len(segs)-1
		prev, torn, err = readSegment(fsys, seg, last, prev, afterSeq, fn)
		if err != nil {
			return prev, false, err
		}
		if torn && !last {
			// readSegment only reports torn on the last segment.
			return prev, false, fmt.Errorf("%w: internal: torn mid-log", ErrCorrupt)
		}
	}
	return prev, torn, nil
}

// readSegment scans one segment. A decode failure is a torn tail if this
// is the newest segment (isLast), otherwise corruption.
func readSegment(fsys vfs.FS, seg segment, isLast bool, prev, afterSeq uint64, fn func(*Batch) error) (uint64, bool, error) {
	f, err := fsys.Open(seg.path)
	if err != nil {
		return prev, false, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	fail := func(what string) (uint64, bool, error) {
		if isLast {
			return prev, true, nil
		}
		return prev, false, fmt.Errorf("%w: %s in %s", ErrCorrupt, what, seg.path)
	}

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fail("short segment header")
	}
	if string(magic) != segMagic {
		return fail("bad segment magic")
	}

	hdr := make([]byte, 8)
	var payload []byte
	first := true
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return prev, false, nil // clean end of segment
			}
			return fail("short record header")
		}
		length := int(binary.LittleEndian.Uint32(hdr[0:]))
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length <= 0 || length > maxRecordBytes {
			return fail("implausible record length")
		}
		if cap(payload) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return fail("short record payload")
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return fail("record checksum mismatch")
		}
		b, err := decodeBatch(payload)
		if err != nil {
			return fail("undecodable record")
		}
		if first {
			first = false
			if b.Seq != seg.start {
				return prev, false, fmt.Errorf("%w: segment %s starts at batch %d, name says %d",
					ErrCorrupt, seg.path, b.Seq, seg.start)
			}
		}
		if prev != 0 && b.Seq != prev+1 {
			return prev, false, fmt.Errorf("%w: batch sequence jumps %d -> %d", ErrCorrupt, prev, b.Seq)
		}
		prev = b.Seq
		if b.Seq > afterSeq {
			// The batch retains payload's arg bytes; stop sharing the
			// scratch buffer with subsequent reads.
			payload = nil
			if err := fn(b); err != nil {
				return prev, false, err
			}
		}
	}
}

// HasState reports on the real filesystem; see HasStateFS.
func HasState(dir string) (bool, error) { return HasStateFS(vfs.OS, dir) }

// HasStateFS reports whether dir contains any log segments or checkpoints
// — i.e. whether an engine previously ran here and Recover (not a fresh
// New) is the right way in.
func HasStateFS(fsys vfs.FS, dir string) (bool, error) {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return false, err
	}
	if len(segs) > 0 {
		return true, nil
	}
	cks, err := listCheckpoints(fsys, dir)
	if err != nil {
		return false, err
	}
	return len(cks) > 0, nil
}

// RemoveAllState removes on the real filesystem; see RemoveAllStateFS.
func RemoveAllState(dir string, keepWatermark uint64) error {
	return RemoveAllStateFS(vfs.OS, dir, keepWatermark)
}

// RemoveAllStateFS deletes every segment and checkpoint in dir except the
// checkpoint whose watermark equals keepWatermark (when none matches,
// everything is removed). Recovery uses it to reset the directory to
// exactly one checkpoint before re-opening a fresh log.
func RemoveAllStateFS(fsys vfs.FS, dir string, keepWatermark uint64) error {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := fsys.Remove(s.path); err != nil {
			return fmt.Errorf("wal: removing segment: %w", err)
		}
	}
	cks, err := listCheckpoints(fsys, dir)
	if err != nil {
		return err
	}
	for _, c := range cks {
		if c.watermark == keepWatermark {
			continue
		}
		if err := fsys.Remove(c.path); err != nil {
			return fmt.Errorf("wal: removing checkpoint: %w", err)
		}
	}
	return nil
}
