package wal

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// WriterOptions parameterizes a log writer. The zero Dir is invalid;
// everything else has usable defaults.
type WriterOptions struct {
	// Dir is the log directory, created if absent.
	Dir string
	// Policy selects when fsync happens; see SyncPolicy.
	Policy SyncPolicy
	// Interval is the group-commit period for SyncByInterval (default 2ms).
	Interval time.Duration
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 16 MiB).
	SegmentBytes int64
}

func (o *WriterOptions) normalize() error {
	if o.Dir == "" {
		return fmt.Errorf("wal: WriterOptions.Dir is empty")
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return nil
}

// WriterStats counts a writer's activity; retrieved via Writer.Stats.
type WriterStats struct {
	// Batches is the number of batches appended.
	Batches uint64
	// Bytes is the number of framed bytes appended (including headers).
	Bytes uint64
	// Syncs is the number of fsync calls issued.
	Syncs uint64
}

// Writer is the append side of the command log. Append is called by the
// engine's sequencer; WaitDurable is called by the acknowledgement path
// and blocks until a batch's bytes are known to be on disk under the
// configured policy. A Writer is safe for concurrent use.
type Writer struct {
	opts WriterOptions

	// mu guards the current segment (file, buffer, byte counts) and the
	// appended high-water mark. fsync is performed while holding mu: this
	// serializes appends with syncs, which keeps segment rotation trivially
	// safe; the sequencer is the only appender and tolerates the pause.
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	segStart uint64 // first batch seq in the current segment
	segSize  int64
	appended uint64 // highest batch seq appended
	scratch  []byte

	// durable is the highest batch seq guaranteed on disk; guarded by durMu
	// and broadcast on durCond. syncErr, once set, poisons the writer:
	// WaitDurable returns it so acknowledgements can report lost durability.
	durMu   sync.Mutex
	durCond *sync.Cond
	durable uint64
	syncErr error

	batches atomic.Uint64
	bytes   atomic.Uint64
	syncs   atomic.Uint64

	stop       chan struct{}
	syncerDone chan struct{}

	// fsync performs the file synchronization; tests substitute a slow
	// or instrumented implementation.
	fsync func(*os.File) error
}

// OpenWriter creates (or reuses) the log directory and returns a writer.
// The first segment file is created lazily on the first Append, named by
// that batch's sequence number. OpenWriter does not examine existing files;
// the engine decides whether the directory must be empty (fresh start) or
// is being re-opened after recovery truncated it.
func OpenWriter(o WriterOptions) (*Writer, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating log dir: %w", err)
	}
	w := &Writer{opts: o, stop: make(chan struct{})}
	w.fsync = (*os.File).Sync
	w.durCond = sync.NewCond(&w.durMu)
	if o.Policy == SyncByInterval {
		w.syncerDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// segmentPath names the segment whose first batch is seq.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.log", seq))
}

// Append encodes b, frames it with a CRC, and writes it to the current
// segment, rotating first if the segment is full. Under SyncEveryBatch the
// batch is durable when Append returns; under the other policies Append
// only buffers and durability is tracked separately (WaitDurable).
func (w *Writer) Append(b *Batch) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	// Fail-stop: once a write or sync has failed, the on-disk suffix is
	// suspect (the kernel may have dropped the failed pages and cleared
	// the fd's error state), so no later operation may advance the
	// durable mark past the hole.
	if err := w.failedErr(); err != nil {
		return err
	}

	if w.f == nil || w.segSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(b.Seq); err != nil {
			w.fail(err)
			return err
		}
	}

	w.scratch = w.scratch[:0]
	w.scratch = appendU32(w.scratch, 0) // length, patched below
	w.scratch = appendU32(w.scratch, 0) // crc, patched below
	w.scratch = encodeBatch(w.scratch, b)
	payload := w.scratch[8:]
	if len(payload) > maxRecordBytes {
		// The reader rejects records this large, so appending one would
		// acknowledge a batch recovery cannot replay. Fail it instead.
		err := fmt.Errorf("wal: batch %d encodes to %d bytes, above the %d-byte record limit",
			b.Seq, len(payload), maxRecordBytes)
		w.fail(err)
		return err
	}
	putU32(w.scratch[0:], uint32(len(payload)))
	putU32(w.scratch[4:], crc32.Checksum(payload, castagnoli))

	if _, err := w.bw.Write(w.scratch); err != nil {
		w.fail(err)
		return fmt.Errorf("wal: appending batch %d: %w", b.Seq, err)
	}
	w.segSize += int64(len(w.scratch))
	w.appended = b.Seq
	w.batches.Add(1)
	w.bytes.Add(uint64(len(w.scratch)))

	switch w.opts.Policy {
	case SyncEveryBatch:
		if err := w.syncLocked(); err != nil {
			return err
		}
	case SyncNever:
		// No durability promise: acknowledge immediately.
		w.advance(w.appended)
	}
	return nil
}

// rotateLocked syncs and closes the current segment (if any) and opens a
// fresh one whose name records firstSeq. Called with mu held.
func (w *Writer) rotateLocked(firstSeq uint64) error {
	if w.f != nil {
		// Make the old segment fully durable before moving on, so the
		// durable high-water mark never points into an unsynced file that
		// later records sort after.
		if err := w.syncLocked(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		w.f = nil
	}
	f, err := os.OpenFile(segmentPath(w.opts.Dir, firstSeq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	// Persist the directory entry: fsyncing the file later covers its
	// data and inode, but not the dirent — without this, a power failure
	// could make the whole acknowledged segment vanish.
	if err := syncDir(w.opts.Dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segStart = firstSeq
	w.segSize = 0
	if _, err := w.bw.WriteString(segMagic); err != nil {
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	w.segSize += int64(len(segMagic))
	return nil
}

// syncLocked flushes the buffer, fsyncs the segment, and advances the
// durable mark to everything appended so far. Called with mu held. Once
// the writer has failed it refuses: a "successful" fsync after an EIO
// proves nothing (the kernel reports a writeback error once, then drops
// the pages), so advancing would acknowledge lost data.
func (w *Writer) syncLocked() error {
	if err := w.failedErr(); err != nil {
		return err
	}
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return fmt.Errorf("wal: flushing segment: %w", err)
	}
	if err := w.fsync(w.f); err != nil {
		w.fail(err)
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.syncs.Add(1)
	w.advance(w.appended)
	return nil
}

// Sync forces everything appended so far to disk regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// syncLoop is the SyncByInterval group-commit goroutine. It holds the
// writer mutex only long enough to flush the in-memory buffer to the OS,
// then performs the fsync — the slow part — with the mutex released, so
// the sequencer's appends proceed at memory speed while the disk syncs.
// Bytes appended during the fsync are simply covered by the next tick:
// the durable mark only advances to what was flushed before this fsync
// began.
func (w *Writer) syncLoop() {
	defer close(w.syncerDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.syncOnce()
		}
	}
}

// syncOnce performs one interval group commit: flush under the mutex,
// fsync outside it.
func (w *Writer) syncOnce() {
	w.mu.Lock()
	if w.f == nil || w.appended <= w.durableMark() || w.failedErr() != nil {
		w.mu.Unlock()
		return
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err) // surfaces via WaitDurable
		w.mu.Unlock()
		return
	}
	f := w.f
	mark := w.appended
	w.mu.Unlock()

	// Concurrent appends to the same fd are fine: fsync covers at least
	// every byte flushed before it started. If a rotation closed f in the
	// meantime, rotateLocked already synced the whole segment (advancing
	// the durable mark past ours) before closing, so a closed-file error
	// with the mark already durable is benign. Every other error
	// fail-stops, even if a concurrent rotation fsync on the same fd
	// reported success: the kernel hands a pending writeback error to
	// only one of two racing fsync callers, so the "successful" one
	// proves nothing about our bytes.
	if err := w.fsync(f); err != nil {
		if errors.Is(err, fs.ErrClosed) && w.durableMark() >= mark {
			return
		}
		w.fail(err)
		return
	}
	w.syncs.Add(1)
	w.advance(mark)
}

// advance publishes seq as durable and wakes waiters. A failed writer
// never advances: the durable mark must not move past a write hole.
func (w *Writer) advance(seq uint64) {
	w.durMu.Lock()
	if w.syncErr == nil && seq > w.durable {
		w.durable = seq
		w.durCond.Broadcast()
	}
	w.durMu.Unlock()
}

// fail poisons the writer with err and wakes waiters so acknowledgements
// can report the durability loss instead of blocking forever.
func (w *Writer) fail(err error) {
	w.durMu.Lock()
	if w.syncErr == nil {
		w.syncErr = err
	}
	w.durCond.Broadcast()
	w.durMu.Unlock()
}

// durableMark reads the durable high-water mark.
func (w *Writer) durableMark() uint64 {
	w.durMu.Lock()
	defer w.durMu.Unlock()
	return w.durable
}

// failedErr returns the recorded write/sync error, if any.
func (w *Writer) failedErr() error {
	w.durMu.Lock()
	defer w.durMu.Unlock()
	return w.syncErr
}

// WaitDurable blocks until batch seq is durable under the configured
// policy, returning nil, or until the writer has failed, returning the
// write/sync error.
func (w *Writer) WaitDurable(seq uint64) error {
	w.durMu.Lock()
	defer w.durMu.Unlock()
	for w.durable < seq && w.syncErr == nil {
		w.durCond.Wait()
	}
	if w.durable >= seq {
		return nil
	}
	return w.syncErr
}

// Stats returns the writer's counters.
func (w *Writer) Stats() WriterStats {
	return WriterStats{
		Batches: w.batches.Load(),
		Bytes:   w.bytes.Load(),
		Syncs:   w.syncs.Load(),
	}
}

// TruncateBelow deletes segment files every one of whose batches is below
// seq: a segment is removable when the next segment starts at or below seq
// (so nothing at or above seq lives in it) and it is not the open segment.
// Called by the checkpointer after a checkpoint at seq-1 is durable.
func (w *Writer) TruncateBelow(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.opts.Dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		if w.f != nil && s.start == w.segStart {
			continue
		}
		if i+1 < len(segs) && segs[i+1].start <= seq {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: truncating: %w", err)
			}
		}
	}
	return nil
}

// Close syncs outstanding data and closes the segment. The writer must not
// be used afterwards.
func (w *Writer) Close() error {
	w.stopSyncer()
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}

// Kill abandons the writer without flushing: buffered but unflushed bytes
// are dropped, simulating the data loss profile of a crash (everything
// past the last flush/sync vanishes; everything before it survives). Used
// by crash-recovery tests; a real crash needs no call at all.
func (w *Writer) Kill() {
	w.stopSyncer()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
	w.fail(fmt.Errorf("wal: writer killed"))
}

func (w *Writer) stopSyncer() {
	w.mu.Lock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.mu.Unlock()
	if w.syncerDone != nil {
		<-w.syncerDone
	}
}
