package wal

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/vfs"
)

// RetryPolicy bounds how hard a durability path tries before giving up.
// The first attempt is immediate; later attempts back off exponentially
// from Backoff with ±25% jitter.
type RetryPolicy struct {
	// Attempts is the number of repair attempts per failure (default 4).
	// A negative value disables retrying: the first error fail-stops.
	Attempts int
	// Backoff is the base delay before the second attempt, doubling each
	// attempt after that (default 1ms).
	Backoff time.Duration
}

func (r *RetryPolicy) normalize(defAttempts int, defBackoff time.Duration) {
	if r.Attempts == 0 {
		r.Attempts = defAttempts
	}
	if r.Backoff <= 0 {
		r.Backoff = defBackoff
	}
}

// WriterOptions parameterizes a log writer. The zero Dir is invalid;
// everything else has usable defaults.
type WriterOptions struct {
	// Dir is the log directory, created if absent.
	Dir string
	// Policy selects when fsync happens; see SyncPolicy.
	Policy SyncPolicy
	// Interval is the group-commit period for SyncByInterval (default 2ms).
	Interval time.Duration
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 16 MiB).
	SegmentBytes int64
	// FS is the filesystem implementation (nil means the real one); tests
	// substitute a fault-injecting FS.
	FS vfs.FS
	// Retry bounds write-hole repair after an append/flush/sync error
	// (default 4 attempts, 1ms base backoff; negative Attempts fail-stop).
	Retry RetryPolicy
	// RetainBytes bounds the ring of encoded frames kept above the durable
	// mark for repair (default 8 MiB). If non-durable frames ever exceed
	// it, repair of a fault in that window fail-stops instead.
	RetainBytes int64
}

func (o *WriterOptions) normalize() error {
	if o.Dir == "" {
		return fmt.Errorf("wal: WriterOptions.Dir is empty")
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.FS == nil {
		o.FS = vfs.OS
	}
	o.Retry.normalize(4, time.Millisecond)
	if o.RetainBytes <= 0 {
		o.RetainBytes = 8 << 20
	}
	return nil
}

// WriterStats counts a writer's activity; retrieved via Writer.Stats.
type WriterStats struct {
	// Batches is the number of batches appended.
	Batches uint64
	// Bytes is the number of framed bytes appended (including headers).
	Bytes uint64
	// Syncs is the number of fsync calls issued.
	Syncs uint64
	// Retries is the number of write-hole repair attempts made after
	// storage errors (successful or not).
	Retries uint64
}

// retainedFrame is one encoded, not-yet-durable batch kept for repair.
type retainedFrame struct {
	seq uint64
	buf []byte
}

// Writer is the append side of the command log. Append is called by the
// engine's sequencer; WaitDurable is called by the acknowledgement path
// and blocks until a batch's bytes are known to be on disk under the
// configured policy. A Writer is safe for concurrent use.
//
// Storage errors do not immediately poison the writer: every encoded
// frame above the durable mark is retained in a bounded ring, so on an
// append/flush/fsync error the writer can cut the current segment back to
// its durable prefix and re-write the suspect suffix into a fresh segment
// (see repairLocked). That is sound where "retry the fsync" is not — a
// post-error fsync on the same fd proves nothing because the kernel
// reports a writeback error once and may drop the dirty pages, but a new
// segment rewritten from retained frames re-establishes the acknowledged
// prefix byte for byte. Only when bounded retries are exhausted does the
// writer fail-stop.
type Writer struct {
	opts WriterOptions
	fs   vfs.FS

	// mu guards the current segment (file, buffer, byte counts), the
	// appended high-water mark and the retained-frame ring. fsync is
	// performed while holding mu: this serializes appends with syncs, which
	// keeps segment rotation trivially safe; the sequencer is the only
	// appender and tolerates the pause.
	mu         sync.Mutex
	f          vfs.File
	bw         *bufio.Writer
	segStart   uint64 // first batch seq in the current segment
	segSize    int64
	durableOff int64  // bytes of the current segment covered by an fsync
	appended   uint64 // highest batch seq appended
	scratch    []byte

	// retained holds encoded frames above the durable mark, oldest first;
	// retainedBytes tracks their total size against opts.RetainBytes and
	// frameFree recycles buffers so steady-state retention allocates
	// nothing.
	retained      []retainedFrame
	retainedBytes int64
	frameFree     [][]byte

	// durable is the highest batch seq guaranteed on disk; guarded by durMu
	// and broadcast on durCond. syncErr, once set, poisons the writer:
	// WaitDurable returns it so acknowledgements can report lost durability.
	durMu   sync.Mutex
	durCond *sync.Cond
	durable uint64
	syncErr error

	batches atomic.Uint64
	bytes   atomic.Uint64
	syncs   atomic.Uint64
	retries atomic.Uint64

	stop       chan struct{}
	stopOnce   sync.Once
	syncerDone chan struct{}

	// fsync performs the file synchronization; tests substitute a slow
	// or instrumented implementation.
	fsync func(vfs.File) error
}

// OpenWriter creates (or reuses) the log directory and returns a writer.
// The first segment file is created lazily on the first Append, named by
// that batch's sequence number. OpenWriter does not examine existing files;
// the engine decides whether the directory must be empty (fresh start) or
// is being re-opened after recovery truncated it.
func OpenWriter(o WriterOptions) (*Writer, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	if err := o.FS.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating log dir: %w", err)
	}
	w := &Writer{opts: o, fs: o.FS, stop: make(chan struct{})}
	w.fsync = vfs.File.Sync
	w.durCond = sync.NewCond(&w.durMu)
	if o.Policy == SyncByInterval {
		w.syncerDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// segmentPath names the segment whose first batch is seq.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.log", seq))
}

// Append encodes b, frames it with a CRC, and writes it to the current
// segment, rotating first if the segment is full. Under SyncEveryBatch the
// batch is durable when Append returns; under the other policies Append
// only buffers and durability is tracked separately (WaitDurable). A
// storage error triggers write-hole repair; Append only returns an error
// once repair attempts are exhausted and the writer has failed.
func (w *Writer) Append(b *Batch) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	// Fail-stop: once repair has given up, the on-disk suffix is suspect
	// and no later operation may advance the durable mark past the hole.
	if err := w.failedErr(); err != nil {
		return err
	}

	w.scratch = w.scratch[:0]
	w.scratch = appendU32(w.scratch, 0) // length, patched below
	w.scratch = appendU32(w.scratch, 0) // crc, patched below
	w.scratch = encodeBatch(w.scratch, b)
	payload := w.scratch[8:]
	if len(payload) > maxRecordBytes {
		// The reader rejects records this large, so appending one would
		// acknowledge a batch recovery cannot replay. Fail it instead.
		err := fmt.Errorf("wal: batch %d encodes to %d bytes, above the %d-byte record limit",
			b.Seq, len(payload), maxRecordBytes)
		w.fail(err)
		return err
	}
	putU32(w.scratch[0:], uint32(len(payload)))
	putU32(w.scratch[4:], crc32.Checksum(payload, castagnoli))

	// Retain the frame before the disk sees it: repair replays retained
	// frames into a fresh segment, so the copy must exist whatever fails.
	w.retain(b.Seq)

	if err := w.writeLocked(b.Seq); err != nil {
		if err := w.repairLocked(err); err != nil {
			return fmt.Errorf("wal: appending batch %d: %w", b.Seq, err)
		}
	}
	w.batches.Add(1)
	w.bytes.Add(uint64(len(w.scratch)))

	switch w.opts.Policy {
	case SyncEveryBatch:
		if err := w.syncLocked(); err != nil {
			return err
		}
	case SyncNever:
		// No durability promise: acknowledge immediately.
		w.advance(w.appended)
		w.trimRetained()
	}
	return nil
}

// writeLocked puts the encoded frame in scratch on disk as batch seq,
// rotating to a fresh segment first when needed. Errors are returned raw
// for repairLocked; nothing here fail-stops. Called with mu held.
func (w *Writer) writeLocked(seq uint64) error {
	if w.f == nil || w.segSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(seq); err != nil {
			return err
		}
	}
	if _, err := w.bw.Write(w.scratch); err != nil {
		return fmt.Errorf("wal: appending batch %d: %w", seq, err)
	}
	w.segSize += int64(len(w.scratch))
	w.appended = seq
	return nil
}

// rotateLocked syncs and closes the current segment (if any) and opens a
// fresh one whose name records firstSeq. Because the old segment is made
// fully durable before the new one exists, non-durable frames are only
// ever confined to the newest segment — the invariant repair relies on.
// Called with mu held; errors are returned raw for repairLocked.
func (w *Writer) rotateLocked(firstSeq uint64) error {
	if w.f != nil {
		// Make the old segment fully durable before moving on, so the
		// durable high-water mark never points into an unsynced file that
		// later records sort after.
		if err := w.flushSyncLocked(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		w.f = nil
	}
	f, err := w.fs.OpenFile(segmentPath(w.opts.Dir, firstSeq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	// Persist the directory entry: fsyncing the file later covers its
	// data and inode, but not the dirent — without this, a power failure
	// could make the whole acknowledged segment vanish.
	if err := syncDirFS(w.fs, w.opts.Dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segStart = firstSeq
	w.segSize = 0
	w.durableOff = 0
	if _, err := w.bw.WriteString(segMagic); err != nil {
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	w.segSize += int64(len(segMagic))
	return nil
}

// flushSyncLocked flushes the buffer, fsyncs the segment, and advances the
// durable mark to everything appended so far. Errors are returned raw for
// repairLocked. Called with mu held.
func (w *Writer) flushSyncLocked() error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing segment: %w", err)
	}
	if err := w.fsync(w.f); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.syncs.Add(1)
	w.durableOff = w.segSize
	w.advance(w.appended)
	w.trimRetained()
	return nil
}

// syncLocked is flushSyncLocked behind the fail-stop gate, with repair on
// error. Called with mu held.
func (w *Writer) syncLocked() error {
	if err := w.failedErr(); err != nil {
		return err
	}
	if err := w.flushSyncLocked(); err != nil {
		return w.repairLocked(err)
	}
	return nil
}

// Sync forces everything appended so far to disk regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// retain appends a copy of scratch (the encoded frame for seq) to the
// retained ring, recycling buffers from earlier trims. Called with mu
// held, before the frame is handed to the disk.
func (w *Writer) retain(seq uint64) {
	var buf []byte
	if n := len(w.frameFree); n > 0 && cap(w.frameFree[n-1]) >= len(w.scratch) {
		buf = w.frameFree[n-1][:0]
		w.frameFree = w.frameFree[:n-1]
	}
	buf = append(buf, w.scratch...)
	w.retained = append(w.retained, retainedFrame{seq: seq, buf: buf})
	w.retainedBytes += int64(len(buf))
	w.trimRetained()
}

// trimRetained drops frames at or below the durable mark, returning their
// buffers to the free list. If the non-durable window still exceeds the
// retention budget, the oldest frames are dropped too — repair of a fault
// inside that window then fails its coverage check and fail-stops, which
// is the documented trade for bounded memory. Called with mu held.
func (w *Writer) trimRetained() {
	durable := w.durableMark()
	i, left := 0, w.retainedBytes
	for i < len(w.retained) && w.retained[i].seq <= durable {
		left -= int64(len(w.retained[i].buf))
		i++
	}
	for i < len(w.retained)-1 && left > w.opts.RetainBytes {
		left -= int64(len(w.retained[i].buf))
		i++
	}
	if i == 0 {
		return
	}
	for j := 0; j < i; j++ {
		fr := &w.retained[j]
		w.retainedBytes -= int64(len(fr.buf))
		if len(w.frameFree) < 8 {
			w.frameFree = append(w.frameFree, fr.buf)
		}
		fr.buf = nil
	}
	n := copy(w.retained, w.retained[i:])
	w.retained = w.retained[:n]
}

// repairLocked runs bounded write-hole repair after cause. The first
// attempt is immediate; later attempts back off exponentially with
// jitter, aborting early if the writer is stopping. On success the
// suspect suffix has been re-established on disk, the durable mark covers
// everything appended, and the caller's operation is complete. On
// exhaustion the writer fail-stops with the last error. Called with mu
// held (the sequencer stalls for the few milliseconds of backoff; every
// other path already treats the writer as slow storage).
func (w *Writer) repairLocked(cause error) error {
	if w.opts.Retry.Attempts < 0 {
		w.fail(cause)
		return cause
	}
	err := cause
	for a := 0; a < w.opts.Retry.Attempts; a++ {
		if a > 0 {
			d := w.opts.Retry.Backoff << (a - 1)
			d += time.Duration(rand.Int63n(int64(d)/2+1)) - d/4 // ±25% jitter
			select {
			case <-time.After(d):
			case <-w.stop:
				err = fmt.Errorf("wal: writer stopped during repair: %w", err)
				w.fail(err)
				w.scrubLocked()
				return err
			}
		}
		w.retries.Add(1)
		rerr := w.repairOnce()
		if rerr == nil {
			return nil
		}
		err = rerr
	}
	err = fmt.Errorf("wal: repair exhausted after %d attempts: %w", w.opts.Retry.Attempts, err)
	w.fail(err)
	w.scrubLocked()
	return err
}

// scrubLocked is the fail-stop epilogue: a best-effort removal of every
// readable-but-not-durable byte the abandoned repair may have left on
// disk. The clients of those frames were (or are about to be) told their
// durability is lost, so a later recovery on healed storage must not
// quietly resurrect them. Errors are deliberately ignored — the storage
// is already known bad, and recovery tolerates a torn newest segment —
// but on the common failure profile (fsync errors, full disk) these
// metadata operations succeed and the on-disk log ends exactly at the
// durable mark. Called with mu held, after fail().
func (w *Writer) scrubLocked() {
	durable := w.durableMark()
	if w.f != nil {
		_ = w.f.Close()
		w.f, w.bw = nil, nil
	}
	if w.segStart != 0 {
		// The current segment: keep its fsync-covered prefix, drop the rest.
		path := segmentPath(w.opts.Dir, w.segStart)
		if w.durableOff > 0 {
			_ = w.fs.Truncate(path, w.durableOff)
		} else {
			_ = w.fs.Remove(path)
		}
	}
	if w.segStart != durable+1 {
		// Debris of a partially-built repair segment (entirely non-durable).
		_ = w.fs.Remove(segmentPath(w.opts.Dir, durable+1))
	}
	_ = w.fs.SyncDir(w.opts.Dir)
}

// repairOnce makes one attempt at re-establishing the log's durable
// prefix plus the retained suffix:
//
//  1. close the suspect fd — its unflushed/unsynced bytes are unrecoverable;
//  2. cut the current segment file back to its durable prefix (or remove
//     it when nothing in it is durable) and persist the cut;
//  3. re-create a segment starting at durable+1 and re-write every
//     retained frame into it, flush, fsync, fsync the directory.
//
// Afterwards the on-disk log is byte-equivalent to one where every append
// succeeded the first time. Called with mu held.
func (w *Writer) repairOnce() error {
	durable := w.durableMark()
	if w.f != nil {
		_ = w.f.Close() // close errors are moot: the fd is being abandoned
		w.f = nil
		w.bw = nil
	}
	if w.segStart != 0 {
		path := segmentPath(w.opts.Dir, w.segStart)
		if w.durableOff > 0 {
			// The prefix up to durableOff was covered by a successful
			// fsync; everything after it is suspect. Cut and re-persist.
			if err := w.fs.Truncate(path, w.durableOff); err != nil {
				return fmt.Errorf("wal: repair truncating segment: %w", err)
			}
			f, err := w.fs.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				return fmt.Errorf("wal: repair reopening segment: %w", err)
			}
			serr := w.fsync(f)
			cerr := f.Close()
			if serr != nil {
				return fmt.Errorf("wal: repair syncing cut segment: %w", serr)
			}
			if cerr != nil {
				return fmt.Errorf("wal: repair closing cut segment: %w", cerr)
			}
		} else if err := w.fs.Remove(path); err != nil && !os.IsNotExist(err) {
			// No durable byte ever reached this segment; recovery must not
			// see its (possibly torn) remains ahead of the replacement.
			return fmt.Errorf("wal: repair removing segment: %w", err)
		}
		if err := syncDirFS(w.fs, w.opts.Dir); err != nil {
			return err
		}
	}
	// Detach the current-segment state either way; a later append rotates.
	w.segStart, w.segSize, w.durableOff = 0, 0, 0

	w.trimRetained()
	frames := w.retained
	if len(frames) == 0 {
		// Nothing above the durable mark is outstanding (the failure hit a
		// sync with no new bytes, or the suffix was already re-established).
		return nil
	}
	// Coverage check: the ring must hold exactly durable+1..appended. A gap
	// means retention overflowed its budget and the hole cannot be rebuilt.
	if frames[0].seq != durable+1 {
		return fmt.Errorf("wal: repair ring starts at batch %d, need %d (retention overflow)",
			frames[0].seq, durable+1)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].seq != frames[i-1].seq+1 {
			return fmt.Errorf("wal: repair ring gap at batch %d", frames[i-1].seq)
		}
	}

	path := segmentPath(w.opts.Dir, durable+1)
	if err := w.fs.Remove(path); err != nil && !os.IsNotExist(err) {
		// Debris from a previous failed repair attempt.
		return fmt.Errorf("wal: repair clearing segment: %w", err)
	}
	f, err := w.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: repair creating segment: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	size := int64(0)
	if _, err := bw.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: repair writing segment header: %w", err)
	}
	size += int64(len(segMagic))
	for i := range frames {
		if _, err := bw.Write(frames[i].buf); err != nil {
			f.Close()
			return fmt.Errorf("wal: repair rewriting batch %d: %w", frames[i].seq, err)
		}
		size += int64(len(frames[i].buf))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("wal: repair flushing segment: %w", err)
	}
	if err := w.fsync(f); err != nil {
		f.Close()
		return fmt.Errorf("wal: repair syncing segment: %w", err)
	}
	if err := syncDirFS(w.fs, w.opts.Dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bw
	w.segStart = durable + 1
	w.segSize = size
	w.durableOff = size
	w.appended = frames[len(frames)-1].seq
	w.syncs.Add(1)
	w.advance(w.appended)
	w.trimRetained()
	return nil
}

// syncLoop is the SyncByInterval group-commit goroutine. It holds the
// writer mutex only long enough to flush the in-memory buffer to the OS,
// then performs the fsync — the slow part — with the mutex released, so
// the sequencer's appends proceed at memory speed while the disk syncs.
// Bytes appended during the fsync are simply covered by the next tick:
// the durable mark only advances to what was flushed before this fsync
// began.
func (w *Writer) syncLoop() {
	defer close(w.syncerDone)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.syncOnce()
		}
	}
}

// syncOnce performs one interval group commit: flush under the mutex,
// fsync outside it. Storage errors here go through the same repair path
// as synchronous appends.
func (w *Writer) syncOnce() {
	w.mu.Lock()
	if w.f == nil || w.appended <= w.durableMark() || w.failedErr() != nil {
		w.mu.Unlock()
		return
	}
	if err := w.bw.Flush(); err != nil {
		_ = w.repairLocked(fmt.Errorf("wal: flushing segment: %w", err))
		w.mu.Unlock()
		return
	}
	f := w.f
	mark := w.appended
	off := w.segSize
	w.mu.Unlock()

	// Concurrent appends to the same fd are fine: fsync covers at least
	// every byte flushed before it started. If a rotation closed f in the
	// meantime, rotateLocked already synced the whole segment (advancing
	// the durable mark past ours) before closing, so a closed-file error
	// with the mark already durable is benign. Every other error goes to
	// repair — even if a concurrent rotation fsync on the same fd reported
	// success, the kernel hands a pending writeback error to only one of
	// two racing fsync callers, so the "successful" one proves nothing
	// about our bytes.
	if err := w.fsync(f); err != nil {
		if errors.Is(err, fs.ErrClosed) && w.durableMark() >= mark {
			return
		}
		w.mu.Lock()
		// The world may have moved on while the lock was dropped (a
		// rotation or an append-triggered repair); only repair if the mark
		// is genuinely still not durable.
		if w.durableMark() < mark && w.failedErr() == nil {
			_ = w.repairLocked(fmt.Errorf("wal: fsync: %w", err))
		}
		w.mu.Unlock()
		return
	}
	w.syncs.Add(1)
	w.advance(mark)
	w.mu.Lock()
	if w.f == f && off > w.durableOff {
		w.durableOff = off
	}
	w.trimRetained()
	w.mu.Unlock()
}

// advance publishes seq as durable and wakes waiters. A failed writer
// never advances: the durable mark must not move past a write hole.
func (w *Writer) advance(seq uint64) {
	w.durMu.Lock()
	if w.syncErr == nil && seq > w.durable {
		w.durable = seq
		w.durCond.Broadcast()
	}
	w.durMu.Unlock()
}

// fail poisons the writer with err and wakes waiters so acknowledgements
// can report the durability loss instead of blocking forever.
func (w *Writer) fail(err error) {
	w.durMu.Lock()
	if w.syncErr == nil {
		w.syncErr = err
	}
	w.durCond.Broadcast()
	w.durMu.Unlock()
}

// durableMark reads the durable high-water mark.
func (w *Writer) durableMark() uint64 {
	w.durMu.Lock()
	defer w.durMu.Unlock()
	return w.durable
}

// DurableMark returns the highest batch sequence known to be on disk —
// the watermark degraded engines keep serving reads at.
func (w *Writer) DurableMark() uint64 { return w.durableMark() }

// failedErr returns the recorded write/sync error, if any.
func (w *Writer) failedErr() error {
	w.durMu.Lock()
	defer w.durMu.Unlock()
	return w.syncErr
}

// WaitDurable blocks until batch seq is durable under the configured
// policy, returning nil, or until the writer has failed, returning the
// write/sync error.
func (w *Writer) WaitDurable(seq uint64) error {
	w.durMu.Lock()
	defer w.durMu.Unlock()
	for w.durable < seq && w.syncErr == nil {
		w.durCond.Wait()
	}
	if w.durable >= seq {
		return nil
	}
	return w.syncErr
}

// Stats returns the writer's counters.
func (w *Writer) Stats() WriterStats {
	return WriterStats{
		Batches: w.batches.Load(),
		Bytes:   w.bytes.Load(),
		Syncs:   w.syncs.Load(),
		Retries: w.retries.Load(),
	}
}

// TruncateBelow deletes segment files every one of whose batches is below
// seq: a segment is removable when the next segment starts at or below seq
// (so nothing at or above seq lives in it) and it is not the open segment.
// Called by the checkpointer after a checkpoint at seq-1 is durable.
func (w *Writer) TruncateBelow(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.fs, w.opts.Dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		if w.f != nil && s.start == w.segStart {
			continue
		}
		if i+1 < len(segs) && segs[i+1].start <= seq {
			if err := w.fs.Remove(s.path); err != nil {
				return fmt.Errorf("wal: truncating: %w", err)
			}
		}
	}
	return nil
}

// Close syncs outstanding data and closes the segment. The writer must not
// be used afterwards. A storage fault during the final sync gets one
// immediate repair attempt but no backoff (the stop signal is already up).
func (w *Writer) Close() error {
	w.stopSyncer()
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}

// Kill abandons the writer without flushing: buffered but unflushed bytes
// are dropped, simulating the data loss profile of a crash (everything
// past the last flush/sync vanishes; everything before it survives). Used
// by crash-recovery tests; a real crash needs no call at all.
func (w *Writer) Kill() {
	w.stopSyncer()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
	w.fail(fmt.Errorf("wal: writer killed"))
}

// stopSyncer signals shutdown and waits out the interval goroutine. It
// must not take w.mu: a repair backoff sleeps under the mutex and watches
// w.stop, so closing the channel lock-free is what lets Close/Kill
// interrupt an in-flight repair instead of deadlocking behind it.
func (w *Writer) stopSyncer() {
	w.stopOnce.Do(func() { close(w.stop) })
	if w.syncerDone != nil {
		<-w.syncerDone
	}
}
