package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"bohm/internal/txn"
	"bohm/internal/vfs"
)

// A checkpoint file is a consistent snapshot of every live record at a
// batch watermark W:
//
//	[8]  magic "BOHMCKP1"
//	[8]  watermark W (little endian)
//	per record: [1]=1 tag, [4] table, [8] id, [4] value length, value
//	[1]=0 end tag
//	[8]  record count
//	[4]  CRC-32C of everything above
//
// It is written to a temp file and renamed into place, so a crash mid-
// checkpoint leaves the previous checkpoint intact and the partial temp
// file ignored.

// CheckpointRecord is one record restored from a checkpoint.
type CheckpointRecord struct {
	Key txn.Key
	Val []byte
}

// checkpointFile is one checkpoint on disk.
type checkpointFile struct {
	watermark uint64
	path      string
}

func checkpointPath(dir string, watermark uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%020d.ckpt", watermark))
}

// listCheckpoints returns dir's checkpoint files ordered by watermark.
func listCheckpoints(fsys vfs.FS, dir string) ([]checkpointFile, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing log dir: %w", err)
	}
	var cks []checkpointFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		wm, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt"), 10, 64)
		if err != nil {
			continue
		}
		cks = append(cks, checkpointFile{watermark: wm, path: filepath.Join(dir, name)})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].watermark < cks[j].watermark })
	return cks, nil
}

// WriteCheckpoint writes on the real filesystem; see WriteCheckpointFS.
func WriteCheckpoint(dir string, watermark uint64, scan func(emit func(k txn.Key, v []byte) error) error) error {
	return WriteCheckpointFS(vfs.OS, dir, watermark, scan)
}

// WriteCheckpointFS atomically writes a checkpoint at the given watermark.
// scan must call emit once per live record; it runs while the snapshot is
// streamed, so the caller is responsible for emitting a consistent view
// (the engine reads every chain at a fixed timestamp boundary). On any
// error the partial temp file is removed — a failed attempt leaves no
// debris behind.
func WriteCheckpointFS(fsys vfs.FS, dir string, watermark uint64, scan func(emit func(k txn.Key, v []byte) error) error) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: creating log dir: %w", err)
	}
	tmp, err := fsys.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure, leave no temp debris behind.
	defer func() {
		if tmp != nil {
			tmp.Close()
			fsys.Remove(tmpName)
		}
	}()

	crc := crc32.New(castagnoli)
	bw := bufio.NewWriterSize(io.MultiWriter(tmp, crc), 1<<16)

	var hdr [16]byte
	copy(hdr[:8], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[8:], watermark)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}

	var count uint64
	// Record header: tag(1) + table(4) + id(8) + value length(4). The value
	// is written straight from the engine's buffer — for arena-held
	// payloads that is the slab itself — so checkpointing never re-copies
	// what the store already owns; bufio does the batching and the
	// MultiWriter keeps the CRC identical to the old accumulate-then-write
	// encoding.
	var hdr17 [17]byte
	hdr17[0] = 1
	emit := func(k txn.Key, v []byte) error {
		binary.LittleEndian.PutUint32(hdr17[1:], k.Table)
		binary.LittleEndian.PutUint64(hdr17[5:], k.ID)
		binary.LittleEndian.PutUint32(hdr17[13:], uint32(len(v)))
		if _, err := bw.Write(hdr17[:]); err != nil {
			return fmt.Errorf("wal: writing checkpoint record: %w", err)
		}
		if _, err := bw.Write(v); err != nil {
			return fmt.Errorf("wal: writing checkpoint record: %w", err)
		}
		count++
		return nil
	}
	if err := scan(emit); err != nil {
		return err
	}

	var trailer [9]byte
	trailer[0] = 0
	binary.LittleEndian.PutUint64(trailer[1:], count)
	if _, err := bw.Write(trailer[:]); err != nil {
		return fmt.Errorf("wal: writing checkpoint trailer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing checkpoint: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := tmp.Write(sum[:]); err != nil {
		return fmt.Errorf("wal: writing checkpoint checksum: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("wal: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	tmp = nil
	if err := fsys.Rename(tmpName, checkpointPath(dir, watermark)); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	return syncDirFS(fsys, dir)
}

// syncDirFS fsyncs a directory so a just-renamed file survives a crash.
func syncDirFS(fsys vfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: syncing log dir: %w", err)
	}
	return nil
}

// LoadCheckpoint loads from the real filesystem; see LoadCheckpointFS.
func LoadCheckpoint(dir string) (watermark uint64, recs []CheckpointRecord, found bool, err error) {
	return LoadCheckpointFS(vfs.OS, dir)
}

// LoadCheckpointFS loads the newest valid checkpoint in dir, returning its
// watermark and records. found is false when the directory holds no valid
// checkpoint (fresh database). A damaged newer checkpoint makes it fall
// back to an older valid one; validation failures are only returned when
// no checkpoint loads at all.
func LoadCheckpointFS(fsys vfs.FS, dir string) (watermark uint64, recs []CheckpointRecord, found bool, err error) {
	cks, err := listCheckpoints(fsys, dir)
	if err != nil {
		return 0, nil, false, err
	}
	var firstErr error
	for i := len(cks) - 1; i >= 0; i-- {
		recs, err := readCheckpoint(fsys, cks[i].path)
		if err == nil {
			return cks[i].watermark, recs, true, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return 0, nil, false, firstErr
	}
	return 0, nil, false, nil
}

// readCheckpoint parses and validates one checkpoint file.
func readCheckpoint(fsys vfs.FS, path string) ([]CheckpointRecord, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading checkpoint: %w", err)
	}
	// Smallest valid file: header(16) + end tag(1) + count(8) + crc(4).
	if len(raw) < 29 {
		return nil, fmt.Errorf("%w: checkpoint %s too short", ErrCorrupt, path)
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checkpoint %s checksum mismatch", ErrCorrupt, path)
	}
	if string(body[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: checkpoint %s bad magic", ErrCorrupt, path)
	}
	d := txn.NewDecoder(body[16:])
	var recs []CheckpointRecord
	for {
		tag := d.Bytes(1)
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: checkpoint %s truncated", ErrCorrupt, path)
		}
		if tag[0] == 0 {
			break
		}
		if tag[0] != 1 {
			return nil, fmt.Errorf("%w: checkpoint %s bad record tag", ErrCorrupt, path)
		}
		k := txn.Key{Table: d.U32(), ID: d.U64()}
		v := d.Bytes(int(d.U32()))
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: checkpoint %s truncated record", ErrCorrupt, path)
		}
		// Copy out of the file buffer: records outlive raw.
		recs = append(recs, CheckpointRecord{Key: k, Val: append([]byte(nil), v...)})
	}
	count := d.U64()
	if d.Err() != nil || d.Rem() != 0 || count != uint64(len(recs)) {
		return nil, fmt.Errorf("%w: checkpoint %s bad trailer", ErrCorrupt, path)
	}
	return recs, nil
}

// RemoveCheckpointsBelow removes on the real filesystem; see
// RemoveCheckpointsBelowFS.
func RemoveCheckpointsBelow(dir string, watermark uint64) error {
	return RemoveCheckpointsBelowFS(vfs.OS, dir, watermark)
}

// RemoveCheckpointsBelowFS deletes checkpoints older than watermark;
// called after a newer checkpoint is durable.
func RemoveCheckpointsBelowFS(fsys vfs.FS, dir string, watermark uint64) error {
	cks, err := listCheckpoints(fsys, dir)
	if err != nil {
		return err
	}
	for _, c := range cks {
		if c.watermark < watermark {
			if err := fsys.Remove(c.path); err != nil {
				return fmt.Errorf("wal: removing old checkpoint: %w", err)
			}
		}
	}
	return nil
}
