package wal

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bohm/internal/txn"
	"bohm/internal/vfs"
)

// appendN appends batches first..last and fails the test on any error.
func appendN(t *testing.T, w *Writer, first, last uint64) {
	t.Helper()
	for seq := first; seq <= last; seq++ {
		if err := w.Append(mkBatch(seq, 2)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

// verifyLog closes nothing; it re-reads dir through the clean OS
// filesystem and checks batches 1..last are intact and contiguous.
func verifyLog(t *testing.T, dir string, last uint64) {
	t.Helper()
	var seqs []uint64
	lastSeq, torn, err := ReadLog(dir, 0, func(b *Batch) error {
		seqs = append(seqs, b.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if torn {
		t.Fatalf("unexpected torn tail")
	}
	if lastSeq != last || uint64(len(seqs)) != last {
		t.Fatalf("read %d batches up to %d, want %d contiguous", len(seqs), lastSeq, last)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("batch %d has seq %d", i, s)
		}
	}
}

// TestRepairTransientWriteFault: a transient EIO on a segment write is
// absorbed by write-hole repair — every Append succeeds, retries are
// counted, and the log is fully readable afterwards.
func TestRepairTransientWriteFault(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil, vfs.Fault{Op: vfs.OpWrite, Path: "wal-", After: 2, Count: 1})
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 10)
	if got := w.Stats().Retries; got == 0 {
		t.Fatalf("Retries = 0, want > 0 after an injected write fault")
	}
	if fsys.Injected() == 0 {
		t.Fatalf("fault never fired")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, dir, 10)
}

// TestRepairDroppedPagesFsyncFault: the nastiest real-world profile — the
// fsync fails AND the kernel drops the dirty pages, so the bytes are gone
// from the old fd. Repair must rebuild them from the retained ring, across
// two back-to-back failures (the injected fault also hits the first repair
// attempt's own fsync).
func TestRepairDroppedPagesFsyncFault(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil,
		vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: 2, Count: 2, DropUnsynced: true})
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, FS: fsys,
		Retry: RetryPolicy{Attempts: 4, Backoff: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 8)
	if got := w.Stats().Retries; got < 2 {
		t.Fatalf("Retries = %d, want >= 2 (second failure hit the repair itself)", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, dir, 8)
}

// TestRepairENOSPCOnRotation: a full disk exactly when the writer rotates
// to a new segment is repaired once space returns (transient ENOSPC).
func TestRepairENOSPCOnRotation(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil,
		vfs.Fault{Op: vfs.OpCreate, Path: "wal-", After: 1, Count: 1, Err: syscall.ENOSPC})
	// Tiny segments force a rotation after the first batch.
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, FS: fsys, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, dir, 5)
	segs, err := listSegments(vfs.OS, dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want multiple segments after forced rotation, got %d (%v)", len(segs), err)
	}
}

// TestRepairTornWrite: a write that lands only a prefix of the frame
// before erroring leaves a torn record; repair cuts it away and rewrites,
// so recovery never sees the tear.
func TestRepairTornWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil,
		vfs.Fault{Op: vfs.OpWrite, Path: "wal-", After: 1, Count: 1, Torn: 5})
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	verifyLog(t, dir, 6)
}

// TestPersistentFaultFailsStop: when every fsync fails, bounded repair
// gives up, the writer poisons, the durable mark never crosses the hole,
// and both Append and WaitDurable report the error.
func TestPersistentFaultFailsStop(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil,
		vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: 2, Count: -1, DropUnsynced: true})
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, FS: fsys,
		Retry: RetryPolicy{Attempts: 3, Backoff: 100 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 2) // durable prefix
	err = w.Append(mkBatch(3, 2))
	if err == nil {
		t.Fatal("append under a persistent sync fault must eventually fail")
	}
	if got := w.durableMark(); got != 2 {
		t.Fatalf("durable mark = %d after failure, want 2 (never past the hole)", got)
	}
	if werr := w.WaitDurable(3); werr == nil {
		t.Fatal("WaitDurable(3) must report the poisoned writer")
	}
	if aerr := w.Append(mkBatch(4, 2)); aerr == nil {
		t.Fatal("appends after fail-stop must be refused")
	}
	w.Kill()
	// The durable prefix survives on disk even though the suffix is lost.
	verifyLog(t, dir, 2)
}

// TestRepairDisabledFailsStopImmediately: Attempts < 0 restores the old
// fail-stop behaviour — one error, no repair, poisoned writer.
func TestRepairDisabledFailsStopImmediately(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil, vfs.Fault{Op: vfs.OpSync, Path: "wal-", DropUnsynced: true})
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, FS: fsys,
		Retry: RetryPolicy{Attempts: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(mkBatch(1, 2)); err == nil {
		t.Fatal("append must fail when repair is disabled")
	}
	if got := w.Stats().Retries; got != 0 {
		t.Fatalf("Retries = %d with repair disabled, want 0", got)
	}
	w.Kill()
}

// TestCheckpointFaultLeavesNoTemp: a failure anywhere in checkpoint
// writing — the data sync or the publishing rename — must remove the
// partial temp file so later directory listings never trip over debris.
func TestCheckpointFaultLeavesNoTemp(t *testing.T) {
	scan := func(emit func(k txn.Key, v []byte) error) error {
		return emit(txn.Key{Table: 1, ID: 7}, []byte("v"))
	}
	for _, tc := range []struct {
		name  string
		fault vfs.Fault
	}{
		{"sync", vfs.Fault{Op: vfs.OpSync, Path: ".ckpt-"}},
		{"write", vfs.Fault{Op: vfs.OpWrite, Path: ".ckpt-"}},
		{"rename", vfs.Fault{Op: vfs.OpRename, Err: syscall.ENOSPC}},
		{"close", vfs.Fault{Op: vfs.OpClose, Path: ".ckpt-"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fsys := vfs.NewFaultFS(nil, tc.fault)
			if err := WriteCheckpointFS(fsys, dir, 42, scan); err == nil {
				t.Fatal("checkpoint under fault must fail")
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.Contains(e.Name(), ".tmp") {
					t.Fatalf("temp debris left behind: %s", e.Name())
				}
			}
			if _, _, found, err := LoadCheckpoint(dir); err != nil || found {
				t.Fatalf("no checkpoint should be published (found=%v err=%v)", found, err)
			}
			// The disk heals; the same checkpoint then succeeds cleanly.
			fsys.Clear()
			if err := WriteCheckpointFS(fsys, dir, 42, scan); err != nil {
				t.Fatalf("checkpoint after heal: %v", err)
			}
			if wm, recs, found, err := LoadCheckpoint(dir); err != nil || !found || wm != 42 || len(recs) != 1 {
				t.Fatalf("reload after heal = wm %d, %d recs, found %v, err %v", wm, len(recs), found, err)
			}
		})
	}
}

// TestCloseKillRaceOnFaultedWriter: Close and Kill racing each other and a
// writer whose storage is persistently failing (with repair backoff in
// flight) must not deadlock or double-close, and every WaitDurable waiter
// must be woken. Run under -race in CI.
func TestCloseKillRaceOnFaultedWriter(t *testing.T) {
	for i := 0; i < 8; i++ {
		dir := t.TempDir()
		fsys := vfs.NewFaultFS(nil,
			vfs.Fault{Op: vfs.OpSync, Path: "wal-", Count: -1, DropUnsynced: true})
		w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncByInterval,
			Interval: 200 * time.Microsecond, FS: fsys,
			Retry: RetryPolicy{Attempts: 10, Backoff: 5 * time.Millisecond}})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(4)
		go func() { // appender: keeps the writer busy hitting the fault
			defer wg.Done()
			for seq := uint64(1); seq <= 50; seq++ {
				if err := w.Append(mkBatch(seq, 1)); err != nil {
					return
				}
			}
		}()
		woken := make(chan error, 1)
		go func() { // waiter: must be woken by fail or advance
			defer wg.Done()
			woken <- w.WaitDurable(50)
		}()
		go func() { // closer
			defer wg.Done()
			time.Sleep(time.Duration(i) * 300 * time.Microsecond)
			_ = w.Close()
		}()
		go func() { // killer
			defer wg.Done()
			time.Sleep(time.Duration(7-i) * 300 * time.Microsecond)
			w.Kill()
		}()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Close/Kill race deadlocked on a faulted writer")
		}
		select {
		case <-woken:
		case <-time.After(10 * time.Second):
			t.Fatal("WaitDurable waiter was never woken")
		}
	}
}

// TestRetentionOverflowFailsStop: when the non-durable window outgrows the
// retention budget, a fault inside it cannot be repaired; the writer must
// fail-stop (detected by the ring coverage check) rather than fabricate a
// log with a hole.
func TestRetentionOverflowFailsStop(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	// A huge interval means nothing becomes durable on its own, so with a
	// 1-byte budget the ring sheds every frame but the newest.
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncByInterval, Interval: time.Hour,
		FS: fsys, RetainBytes: 1, Retry: RetryPolicy{Attempts: 2, Backoff: 100 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 5)
	w.mu.Lock()
	n := len(w.retained)
	w.mu.Unlock()
	if n > 1 {
		t.Fatalf("retained ring holds %d frames over a 1-byte budget, want <= 1", n)
	}
	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", Count: -1, DropUnsynced: true})
	if err := w.Sync(); err == nil {
		t.Fatal("sync must fail: the dropped frames cannot be rebuilt")
	}
	if werr := w.WaitDurable(1); werr == nil {
		t.Fatal("writer must be poisoned after an unrepairable fault")
	}
	w.Kill()
}

// TestRepairKeepsOldSegmentsIntact: a fault in the newest segment must not
// disturb already-rotated segments — repair surgery is confined to the
// suspect file.
func TestRepairKeepsOldSegmentsIntact(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	w, err := OpenWriter(WriterOptions{Dir: dir, Policy: SyncEveryBatch, FS: fsys, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 3) // three one-batch segments
	before, _ := os.ReadFile(filepath.Join(dir, "wal-00000000000000000001.log"))
	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", Count: 1, DropUnsynced: true})
	appendN(t, w, 4, 6)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, "wal-00000000000000000001.log"))
	if string(before) != string(after) {
		t.Fatal("repair modified a sealed segment")
	}
	verifyLog(t, dir, 6)
}
