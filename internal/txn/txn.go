// Package txn defines the transaction model shared by every concurrency
// control engine in this repository: stored-procedure transactions with
// declared read- and write-sets, the data-access context handed to a
// transaction's logic, and utilities for manipulating access sets.
//
// The model follows the BOHM paper (Faleiro & Abadi, VLDB 2015): a
// transaction is submitted to the system in its entirety, and its write-set
// must be known before execution begins. Read-sets are optional for
// correctness but enable BOHM's read-reference optimization (§3.2.3).
package txn

import (
	"errors"
	"fmt"
)

// ErrNotFound is returned by Ctx.Read when no version of the record is
// visible to the transaction (the record was never inserted, or was deleted
// as of the transaction's snapshot).
var ErrNotFound = errors.New("txn: record not found")

// ErrAbort is a convenience sentinel a transaction body may return to
// request a rollback without describing a reason.
var ErrAbort = errors.New("txn: aborted by transaction logic")

// PanicError is the abort reason reported when a transaction's logic
// panics: the engine recovers the panic, rolls the transaction back, and
// returns a PanicError in the result slot instead of crashing a worker.
type PanicError struct {
	// Value is the value the transaction panicked with.
	Value any
}

// Error implements the error interface.
func (p *PanicError) Error() string {
	return fmt.Sprintf("txn: transaction logic panicked: %v", p.Value)
}

// RunSafely invokes t.Run(ctx), converting a panic in the transaction
// body into a *PanicError. Engines use it so one faulty stored procedure
// cannot take down a worker thread.
func RunSafely(t Txn, ctx Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	return t.Run(ctx)
}

// Key identifies a record: a table number plus a 64-bit row identifier.
// Keys are value types and are ordered lexicographically by (Table, ID).
type Key struct {
	Table uint32
	ID    uint64
}

// Less reports whether k orders before o in the global lexicographic key
// order used for deadlock-free lock acquisition.
func (k Key) Less(o Key) bool {
	if k.Table != o.Table {
		return k.Table < o.Table
	}
	return k.ID < o.ID
}

// Hash returns a well-mixed 64-bit hash of the key, suitable for
// partitioning records across concurrency control threads and for hash
// index placement. It is a Fibonacci-style multiplicative mix of both
// fields (splitmix64 finalizer).
func (k Key) Hash() uint64 {
	x := k.ID ^ (uint64(k.Table)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ctx is the data-access interface an engine hands to a transaction's
// logic. Implementations are engine-specific; the contract is shared:
//
//   - Read returns the record's value as of the transaction's logical
//     time. The returned slice is owned by the engine and MUST NOT be
//     modified or retained beyond the call to Run.
//   - Write installs a new value for a key that appears in the
//     transaction's declared write-set. The slice must stay unmodified
//     until the submitting ExecuteBatch call returns; engines that copy
//     the value out at install (BOHM does, into its payload arena or the
//     heap) then release it, so a transaction instance may reuse one
//     scratch buffer per written key across executions (see
//     txn.IncrementedInto). Engines that instead retain the slice as the
//     stored value rely on the harness never re-executing a committed
//     instance, which the fresh-transactions-per-call discipline of this
//     repository's workloads preserves. Writing a key outside the
//     declared write-set returns an error from Run.
//   - Delete removes the record (installs a tombstone in multiversion
//     engines). Like Write, the key must be in the declared write-set.
//   - ReadRange calls fn once per live record in r, in ascending key
//     order, at the transaction's logical time — a serializable range
//     scan (no phantoms). fn's value slice follows the same ownership
//     rule as Read; a non-nil error from fn stops the scan and is
//     returned. The transaction's own buffered writes inside r are
//     visible to its scans. Declaring the range (Txn.RangeSet) is
//     mandatory on 2PL (locks are planned from declarations) and
//     enables BOHM's annotation fast path; the optimistic engines
//     revalidate scans at commit whether declared or not.
type Ctx interface {
	Read(k Key) ([]byte, error)
	Write(k Key, v []byte) error
	Delete(k Key) error
	ReadRange(r KeyRange, fn func(k Key, v []byte) error) error
}

// Txn is a transaction: a stored procedure with declared access sets.
//
// ReadSet and WriteSet must return the same contents every time they are
// called for a given transaction instance, and must cover every key the
// body touches; WriteSet must not contain duplicate keys (each entry
// allocates one version). Run must be safe to invoke more than once
// (optimistic engines re-run aborted transactions, and BOHM may restart a
// transaction whose read dependency was being produced by another
// thread).
type Txn interface {
	// ReadSet returns the keys the transaction may read. Engines other
	// than BOHM ignore it unless they need it for lock pre-acquisition.
	ReadSet() []Key
	// WriteSet returns the keys the transaction may write or delete.
	WriteSet() []Key
	// RangeSet returns the key ranges the transaction may scan with
	// Ctx.ReadRange. Like ReadSet it is an optimization hint for BOHM
	// (declared ranges are annotated with version references at
	// concurrency control time) and a requirement for 2PL (range locks
	// are acquired from the declaration). Implementations with no scans
	// return nil.
	RangeSet() []KeyRange
	// Run executes the transaction's logic against ctx. Returning a
	// non-nil error aborts the transaction: none of its writes become
	// visible and the error is reported to the submitter.
	Run(ctx Ctx) error
}

// Proc is a ready-made Txn built from closures, convenient for tests,
// examples, and ad-hoc workloads.
type Proc struct {
	Reads  []Key
	Writes []Key
	Ranges []KeyRange
	Body   func(ctx Ctx) error
}

// ReadSet implements Txn.
func (p *Proc) ReadSet() []Key { return p.Reads }

// WriteSet implements Txn.
func (p *Proc) WriteSet() []Key { return p.Writes }

// RangeSet implements Txn.
func (p *Proc) RangeSet() []KeyRange { return p.Ranges }

// Run implements Txn.
func (p *Proc) Run(ctx Ctx) error {
	if p.Body == nil {
		return nil
	}
	return p.Body(ctx)
}
