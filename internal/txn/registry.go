package txn

import (
	"fmt"
	"sync"
)

// Transaction bodies are closures and cannot be serialized, so a command
// log records transactions as (procedure id, argument bytes) pairs —
// Calvin-style command logging. A Registry maps procedure ids to factories
// that rebuild the transaction from its arguments; recovery replays the
// log by dispatching every logged pair through the same registry.

// Loggable is a Txn that can be recorded in a command log and rebuilt at
// recovery time. Engines with durability enabled require every submitted
// transaction to implement it; Registry.Call is the standard way to obtain
// one.
type Loggable interface {
	Txn
	// Procedure returns the registered procedure id and the serialized
	// arguments. The pair, dispatched through the same Registry, must
	// rebuild a transaction with identical access sets and deterministic
	// logic, or recovery will diverge from the original run.
	Procedure() (id string, args []byte)
}

// Factory rebuilds a transaction from its serialized arguments. It must be
// deterministic: the same args always yield a transaction with the same
// access sets and the same logic.
type Factory func(args []byte) (Txn, error)

// Registry is a named collection of transaction factories. It is safe for
// concurrent use after registration; registrations typically happen once
// at startup, before the engine processes transactions.
type Registry struct {
	mu    sync.RWMutex
	procs map[string]Factory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{procs: make(map[string]Factory)}
}

// Register associates id with factory f. It panics on an empty id or a
// duplicate registration: both are programming errors that would corrupt
// recovery, so they should fail loudly at startup.
func (r *Registry) Register(id string, f Factory) {
	if id == "" {
		panic("txn: Register with empty procedure id")
	}
	if f == nil {
		panic("txn: Register with nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.procs[id]; dup {
		panic(fmt.Sprintf("txn: duplicate registration of procedure %q", id))
	}
	r.procs[id] = f
}

// Registered reports whether id has a factory. The network server uses
// it to distinguish "unknown procedure" from "bad arguments" when a
// remote submit fails to build.
func (r *Registry) Registered(id string) bool {
	r.mu.RLock()
	_, ok := r.procs[id]
	r.mu.RUnlock()
	return ok
}

// Build rebuilds the transaction registered under id from args. Recovery
// uses it to turn logged commands back into runnable transactions.
func (r *Registry) Build(id string, args []byte) (Txn, error) {
	r.mu.RLock()
	f, ok := r.procs[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("txn: unknown procedure %q", id)
	}
	t, err := f(args)
	if err != nil {
		return nil, fmt.Errorf("txn: building procedure %q: %w", id, err)
	}
	if t == nil {
		return nil, fmt.Errorf("txn: factory for %q returned nil transaction", id)
	}
	return t, nil
}

// Call builds the transaction registered under id and wraps it so it
// remembers its own (id, args) pair, making it Loggable. This is how
// applications submit transactions to an engine with durability enabled.
func (r *Registry) Call(id string, args []byte) (Txn, error) {
	t, err := r.Build(id, args)
	if err != nil {
		return nil, err
	}
	return &Call{Txn: t, id: id, args: args}, nil
}

// MustCall is Call, panicking on error; convenient when the id is a
// compile-time constant known to be registered.
func (r *Registry) MustCall(id string, args []byte) Txn {
	t, err := r.Call(id, args)
	if err != nil {
		panic(err)
	}
	return t
}

// Call is a registry-built transaction bundled with the (procedure id,
// args) pair that rebuilds it; it is what Registry.Call returns.
type Call struct {
	Txn
	id   string
	args []byte
}

var _ Loggable = (*Call)(nil)

// Procedure implements Loggable.
func (c *Call) Procedure() (string, []byte) { return c.id, c.args }
