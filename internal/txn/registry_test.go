package txn

import (
	"encoding/binary"
	"testing"
)

func TestRegistryCallRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Register("incr", func(args []byte) (Txn, error) {
		k := Key{Table: 0, ID: binary.LittleEndian.Uint64(args)}
		return &Proc{
			Reads:  []Key{k},
			Writes: []Key{k},
		}, nil
	})

	args := make([]byte, 8)
	binary.LittleEndian.PutUint64(args, 42)
	tx, err := reg.Call("incr", args)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	lg, ok := tx.(Loggable)
	if !ok {
		t.Fatalf("Call result does not implement Loggable")
	}
	id, gotArgs := lg.Procedure()
	if id != "incr" || binary.LittleEndian.Uint64(gotArgs) != 42 {
		t.Fatalf("Procedure() = %q, %v", id, gotArgs)
	}
	if got := tx.WriteSet(); len(got) != 1 || got[0].ID != 42 {
		t.Fatalf("WriteSet = %v", got)
	}

	// Rebuilding through the registry must reproduce the access sets.
	rebuilt, err := reg.Build(id, gotArgs)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := rebuilt.WriteSet(); len(got) != 1 || got[0].ID != 42 {
		t.Fatalf("rebuilt WriteSet = %v", got)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Build("missing", nil); err == nil {
		t.Fatal("Build of unregistered procedure succeeded")
	}
	reg.Register("p", func([]byte) (Txn, error) { return &Proc{}, nil })
	mustPanic(t, func() { reg.Register("p", func([]byte) (Txn, error) { return &Proc{}, nil }) })
	mustPanic(t, func() { reg.Register("", func([]byte) (Txn, error) { return &Proc{}, nil }) })
	mustPanic(t, func() { reg.Register("q", nil) })
	mustPanic(t, func() { reg.MustCall("missing", nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
