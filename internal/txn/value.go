package txn

import "encoding/binary"

// Value helpers shared by workloads and examples. Records in this
// repository are opaque byte slices; benchmarks that perform read-modify-
// write increments store a little-endian uint64 counter in the first eight
// bytes of the record, mirroring the single-integer-attribute records of
// the paper's microbenchmarks (§4.1).

// U64 decodes the counter at the front of a record value. Values shorter
// than eight bytes decode as zero.
func U64(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// PutU64 encodes x into the first eight bytes of v, which must be at least
// eight bytes long.
func PutU64(v []byte, x uint64) {
	binary.LittleEndian.PutUint64(v, x)
}

// NewValue allocates a record value of the given size holding counter x.
// Size is clamped up to eight bytes so the counter always fits.
func NewValue(size int, x uint64) []byte {
	if size < 8 {
		size = 8
	}
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, x)
	return v
}

// Incremented returns a fresh copy of v with the leading counter
// incremented by delta. It never aliases v, so it is safe to pass the
// result to Ctx.Write while v came from Ctx.Read.
func Incremented(v []byte, delta uint64) []byte {
	out := make([]byte, len(v))
	copy(out, v)
	if len(out) < 8 {
		out = NewValue(8, delta)
		return out
	}
	PutU64(out, U64(out)+delta)
	return out
}

// IncrementedInto is the scratch-buffer form of Incremented: the
// incremented copy of v is written into dst — grown only when too small —
// and the slice holding it is returned. dst must not alias v. Against an
// engine whose Write copies the staged value out before returning results
// (BOHM's install path does, arena or not), a transaction holding one
// scratch buffer per written key reaches steady-state zero allocations
// per execution; see the Ctx.Write buffer-reuse contract.
func IncrementedInto(dst, v []byte, delta uint64) []byte {
	if len(v) < 8 {
		if cap(dst) < 8 {
			dst = make([]byte, 8)
		}
		dst = dst[:8]
		PutU64(dst, delta)
		return dst
	}
	if cap(dst) < len(v) {
		dst = make([]byte, len(v))
	}
	dst = dst[:len(v)]
	copy(dst, v)
	PutU64(dst, U64(dst)+delta)
	return dst
}
