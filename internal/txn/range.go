package txn

import "fmt"

// KeyRange identifies a half-open interval of row identifiers within one
// table: every Key k with k.Table == Table and Lo <= k.ID < Hi. Ranges are
// the unit of declaration for range scans, mirroring how Keys are the unit
// of declaration for point accesses.
//
// BOHM serves a declared range phantom-free by construction: the
// concurrency control phase inserts a placeholder for every write before
// execution begins and registers every new key in an ordered per-partition
// directory at the same moment, so by the time a scan executes, every key
// any earlier-timestamped transaction will ever create already exists to
// be scanned. The comparison engines each bolt on their own protection
// (table locks, commit-time range revalidation); see their package docs.
type KeyRange struct {
	Table uint32
	// Lo is the first row id in the range.
	Lo uint64
	// Hi is the first row id past the range (exclusive).
	Hi uint64
}

// String implements fmt.Stringer.
func (r KeyRange) String() string {
	return fmt.Sprintf("table %d [%d, %d)", r.Table, r.Lo, r.Hi)
}

// Empty reports whether the range contains no ids.
func (r KeyRange) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether k falls inside the range.
func (r KeyRange) Contains(k Key) bool {
	return k.Table == r.Table && r.Lo <= k.ID && k.ID < r.Hi
}

// ContainsRange reports whether o lies entirely within r. Engines use it to
// match a scan request against the transaction's declared range-set: a body
// may scan any sub-interval of a declared range.
func (r KeyRange) ContainsRange(o KeyRange) bool {
	return o.Table == r.Table && r.Lo <= o.Lo && o.Hi <= r.Hi
}

// FirstKey returns the smallest key in the range.
func (r KeyRange) FirstKey() Key { return Key{Table: r.Table, ID: r.Lo} }

// LimitKey returns the first key past the range: iteration covers every
// key k with FirstKey() <= k < LimitKey() in the Less order.
func (r KeyRange) LimitKey() Key { return Key{Table: r.Table, ID: r.Hi} }

// CoveredBy reports whether r lies entirely within one of the declared
// ranges. Engines that plan range protection from declarations (2PL locks,
// BOHM annotations) use it to match scan requests against the declaration.
func CoveredBy(declared []KeyRange, r KeyRange) bool {
	for _, d := range declared {
		if d.ContainsRange(r) {
			return true
		}
	}
	return false
}

// FindDuplicateKey reports a key that occurs more than once in ks. Small
// sets (the common OLTP shape) are checked quadratically without
// allocating; larger sets sort a copy.
func FindDuplicateKey(ks []Key) (Key, bool) {
	if len(ks) < 2 {
		return Key{}, false
	}
	if len(ks) <= 32 {
		for i := 1; i < len(ks); i++ {
			for j := 0; j < i; j++ {
				if ks[i] == ks[j] {
					return ks[i], true
				}
			}
		}
		return Key{}, false
	}
	sorted := make([]Key, len(ks))
	copy(sorted, ks)
	SortKeys(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return sorted[i], true
		}
	}
	return Key{}, false
}
