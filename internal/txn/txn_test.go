package txn

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{Key{0, 1}, Key{0, 2}, true},
		{Key{0, 2}, Key{0, 1}, false},
		{Key{0, 5}, Key{1, 0}, true},
		{Key{1, 0}, Key{0, 5}, false},
		{Key{1, 1}, Key{1, 1}, false},
		{Key{0, 0}, Key{0, 0}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestKeyLessIsStrictWeakOrder(t *testing.T) {
	f := func(a, b Key) bool {
		switch {
		case a == b:
			return !a.Less(b) && !b.Less(a)
		default:
			return a.Less(b) != b.Less(a) // exactly one direction for distinct keys
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyHashDeterministic(t *testing.T) {
	k := Key{Table: 3, ID: 123456}
	if k.Hash() != k.Hash() {
		t.Fatal("hash not deterministic")
	}
}

func TestKeyHashTableSeparation(t *testing.T) {
	// Same ID in different tables must hash differently (tables share the
	// partitioned index space).
	a := Key{Table: 0, ID: 42}.Hash()
	b := Key{Table: 1, ID: 42}.Hash()
	if a == b {
		t.Fatal("table number does not affect hash")
	}
}

func TestKeyHashSpreadsLowBits(t *testing.T) {
	// Sequential IDs (the common dense-table layout) must spread across
	// low bits — the hash index probes with them.
	buckets := make([]int, 16)
	for i := 0; i < 16000; i++ {
		buckets[Key{ID: uint64(i)}.Hash()&15]++
	}
	for b, n := range buckets {
		if n < 500 || n > 1500 {
			t.Errorf("bucket %d has %d of 16000 keys; distribution too skewed", b, n)
		}
	}
}

func TestKeyHashSpreadsHighBits(t *testing.T) {
	// Partition selection uses the high bits; sequential IDs must spread
	// there too.
	buckets := make([]int, 16)
	for i := 0; i < 16000; i++ {
		buckets[(Key{ID: uint64(i)}.Hash()>>40)%16]++
	}
	for b, n := range buckets {
		if n < 500 || n > 1500 {
			t.Errorf("high-bit bucket %d has %d of 16000 keys", b, n)
		}
	}
}

func TestNormalize(t *testing.T) {
	ks := []Key{{1, 5}, {0, 9}, {1, 5}, {0, 1}, {0, 9}}
	got := Normalize(ks)
	want := []Key{{0, 1}, {0, 9}, {1, 5}}
	if len(got) != len(want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
}

func TestNormalizeEmptyAndSingle(t *testing.T) {
	if got := Normalize(nil); len(got) != 0 {
		t.Errorf("Normalize(nil) = %v", got)
	}
	one := []Key{{2, 2}}
	if got := Normalize(one); len(got) != 1 || got[0] != one[0] {
		t.Errorf("Normalize(single) = %v", got)
	}
}

func TestNormalizeProperties(t *testing.T) {
	f := func(ks []Key) bool {
		orig := map[Key]bool{}
		for _, k := range ks {
			orig[k] = true
		}
		cp := make([]Key, len(ks))
		copy(cp, ks)
		out := Normalize(cp)
		// Sorted, unique, same key set.
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Less(out[j]) }) {
			return false
		}
		if len(out) != len(orig) {
			return false
		}
		for _, k := range out {
			if !orig[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	ks := Normalize([]Key{{0, 1}, {0, 5}, {2, 3}})
	for _, k := range ks {
		if !Contains(ks, k) {
			t.Errorf("Contains(%v) = false for member", k)
		}
	}
	for _, k := range []Key{{0, 0}, {0, 2}, {1, 3}, {2, 4}, {3, 0}} {
		if Contains(ks, k) {
			t.Errorf("Contains(%v) = true for non-member", k)
		}
	}
}

func TestContainsMatchesLinear(t *testing.T) {
	f := func(ks []Key, probe Key) bool {
		cp := Normalize(append([]Key(nil), ks...))
		return Contains(cp, probe) == ContainsLinear(cp, probe)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	a := []Key{{0, 1}, {0, 2}}
	b := []Key{{0, 2}, {1, 1}}
	got := Union(a, b)
	want := []Key{{0, 1}, {0, 2}, {1, 1}}
	if len(got) != len(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Union = %v, want %v", got, want)
		}
	}
	// Inputs unmodified.
	if a[0] != (Key{0, 1}) || b[0] != (Key{0, 2}) {
		t.Error("Union modified its inputs")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b []Key
		want bool
	}{
		{nil, nil, false},
		{[]Key{{0, 1}}, nil, false},
		{[]Key{{0, 1}}, []Key{{0, 1}}, true},
		{[]Key{{0, 1}, {0, 3}}, []Key{{0, 2}, {0, 4}}, false},
		{[]Key{{0, 1}, {0, 3}}, []Key{{0, 3}}, true},
		{[]Key{{0, 1}, {1, 1}}, []Key{{0, 2}, {1, 1}}, true},
	}
	for _, c := range cases {
		if got := Intersect(c.a, c.b); got != c.want {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		mk := func() []Key {
			n := rng.Intn(8)
			ks := make([]Key, n)
			for i := range ks {
				ks[i] = Key{Table: uint32(rng.Intn(2)), ID: uint64(rng.Intn(10))}
			}
			return Normalize(ks)
		}
		a, b := mk(), mk()
		brute := false
		for _, x := range a {
			for _, y := range b {
				if x == y {
					brute = true
				}
			}
		}
		if got := Intersect(a, b); got != brute {
			t.Fatalf("Intersect(%v, %v) = %v, want %v", a, b, got, brute)
		}
	}
}

func TestSortKeysMatchesLess(t *testing.T) {
	f := func(ks []Key) bool {
		cp := make([]Key, len(ks))
		copy(cp, ks)
		SortKeys(cp)
		return sort.SliceIsSorted(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueHelpers(t *testing.T) {
	v := NewValue(16, 42)
	if len(v) != 16 {
		t.Fatalf("NewValue length = %d, want 16", len(v))
	}
	if U64(v) != 42 {
		t.Fatalf("U64 = %d, want 42", U64(v))
	}
	PutU64(v, 7)
	if U64(v) != 7 {
		t.Fatalf("after PutU64, U64 = %d, want 7", U64(v))
	}
}

func TestNewValueClampsSize(t *testing.T) {
	v := NewValue(3, 9)
	if len(v) != 8 {
		t.Fatalf("NewValue(3) length = %d, want clamped to 8", len(v))
	}
	if U64(v) != 9 {
		t.Fatalf("U64 = %d, want 9", U64(v))
	}
}

func TestU64ShortValue(t *testing.T) {
	if U64([]byte{1, 2}) != 0 {
		t.Error("U64 of short slice should be 0")
	}
	if U64(nil) != 0 {
		t.Error("U64(nil) should be 0")
	}
}

func TestIncremented(t *testing.T) {
	v := NewValue(12, 10)
	v[11] = 0xAB // payload byte beyond the counter must survive
	w := Incremented(v, 5)
	if U64(w) != 15 {
		t.Fatalf("Incremented counter = %d, want 15", U64(w))
	}
	if w[11] != 0xAB {
		t.Error("Incremented lost payload bytes")
	}
	if U64(v) != 10 {
		t.Error("Incremented modified its input")
	}
	if &v[0] == &w[0] {
		t.Error("Incremented aliases its input")
	}
}

func TestIncrementedShortInput(t *testing.T) {
	w := Incremented([]byte{1, 2}, 3)
	if U64(w) != 3 {
		t.Fatalf("Incremented(short) = %d, want 3", U64(w))
	}
}

func TestProc(t *testing.T) {
	reads := []Key{{0, 1}}
	writes := []Key{{0, 2}}
	ran := false
	p := &Proc{Reads: reads, Writes: writes, Body: func(Ctx) error { ran = true; return nil }}
	if got := p.ReadSet(); len(got) != 1 || got[0] != reads[0] {
		t.Error("ReadSet mismatch")
	}
	if got := p.WriteSet(); len(got) != 1 || got[0] != writes[0] {
		t.Error("WriteSet mismatch")
	}
	if err := p.Run(nil); err != nil || !ran {
		t.Error("Run did not invoke Body")
	}
}

func TestProcNilBody(t *testing.T) {
	p := &Proc{}
	if err := p.Run(nil); err != nil {
		t.Errorf("nil body Run = %v, want nil", err)
	}
}

func TestProcPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	p := &Proc{Body: func(Ctx) error { return boom }}
	if err := p.Run(nil); !errors.Is(err, boom) {
		t.Errorf("Run = %v, want boom", err)
	}
}

func TestRunSafelyRecoversPanic(t *testing.T) {
	p := &Proc{Body: func(Ctx) error { panic(42) }}
	err := RunSafely(p, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != 42 {
		t.Errorf("panic value = %v, want 42", pe.Value)
	}
	if pe.Error() == "" {
		t.Error("empty error string")
	}
}

func TestRunSafelyPassesThrough(t *testing.T) {
	boom := errors.New("boom")
	if err := RunSafely(&Proc{Body: func(Ctx) error { return boom }}, nil); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if err := RunSafely(&Proc{}, nil); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
}
