package txn

// Wire encoding of transactions. A Record is the serialized form of one
// transaction — the registry-dispatched procedure plus the declared
// access sets — used both by the command log (one record per logged
// transaction, see internal/wal) and by the network protocol
// (internal/wire): a registered procedure round-trips between client,
// server and log with a single encoding.
//
// The format is fixed-width little-endian throughout: records are
// written once and scanned once, so simplicity beats byte-shaving, and
// sharing the helpers keeps the two consumers bit-compatible by
// construction.

import (
	"encoding/binary"
	"errors"
)

// Record is the serialized form of one transaction: the procedure id and
// argument bytes that rebuild it through a Registry, plus the declared
// access sets (logged and transmitted so neither replay nor a remote
// server depends on factories recomputing them identically).
type Record struct {
	Proc   string
	Args   []byte
	Reads  []Key
	Writes []Key
	Ranges []KeyRange
}

// ErrTruncated reports a Decoder that ran out of bytes (or met a
// malformed length); consumers wrap it in their own corruption errors.
var ErrTruncated = errors.New("txn: truncated record encoding")

// AppendRecord appends r's encoding to buf and returns the extended
// slice: proc and args as length-prefixed bytes, then the three access
// sets as counted fixed-width entries.
func AppendRecord(buf []byte, r *Record) []byte {
	buf = AppendU32(buf, uint32(len(r.Proc)))
	buf = append(buf, r.Proc...)
	buf = AppendU32(buf, uint32(len(r.Args)))
	buf = append(buf, r.Args...)
	buf = AppendKeys(buf, r.Reads)
	buf = AppendKeys(buf, r.Writes)
	buf = AppendRanges(buf, r.Ranges)
	return buf
}

// AppendU32 appends x little-endian.
func AppendU32(b []byte, x uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, x)
}

// AppendU64 appends x little-endian.
func AppendU64(b []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, x)
}

// AppendKeys appends a counted key list (12 bytes per key).
func AppendKeys(b []byte, ks []Key) []byte {
	b = AppendU32(b, uint32(len(ks)))
	for _, k := range ks {
		b = AppendU32(b, k.Table)
		b = AppendU64(b, k.ID)
	}
	return b
}

// AppendRanges appends a counted range list (20 bytes per range).
func AppendRanges(b []byte, rs []KeyRange) []byte {
	b = AppendU32(b, uint32(len(rs)))
	for _, r := range rs {
		b = AppendU32(b, r.Table)
		b = AppendU64(b, r.Lo)
		b = AppendU64(b, r.Hi)
	}
	return b
}

// Decoder is a bounds-checked cursor over an encoded payload. Every
// accessor returns a zero value once the decoder has failed; check Err
// after the reads (not between them) and treat a non-nil result as
// corruption of the whole payload. Byte slices returned by Bytes and
// Record alias the input buffer; callers that retain them must not reuse
// it.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a decoder positioned at the start of b.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Rem returns the number of undecoded bytes remaining.
func (d *Decoder) Rem() int { return len(d.b) - d.off }

// U32 decodes a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return x
}

// U64 decodes a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return x
}

// Bytes returns the next n bytes, aliasing the input buffer.
func (d *Decoder) Bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// Keys decodes a counted key list.
func (d *Decoder) Keys() []Key {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+12*n > len(d.b) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key{Table: d.U32(), ID: d.U64()}
	}
	return ks
}

// Ranges decodes a counted range list.
func (d *Decoder) Ranges() []KeyRange {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+20*n > len(d.b) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	rs := make([]KeyRange, n)
	for i := range rs {
		rs[i] = KeyRange{Table: d.U32(), Lo: d.U64(), Hi: d.U64()}
	}
	return rs
}

// Record decodes one AppendRecord encoding. The Proc string is copied;
// Args aliases the input buffer.
func (d *Decoder) Record() Record {
	var r Record
	r.Proc = string(d.Bytes(int(d.U32())))
	r.Args = d.Bytes(int(d.U32()))
	r.Reads = d.Keys()
	r.Writes = d.Keys()
	r.Ranges = d.Ranges()
	return r
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

// Resulter is an optional interface for transactions that produce a
// result payload for their submitter — the wire protocol's way of
// returning read values to a remote client (the embedded API reads
// inside the transaction closure instead). The server calls Result after
// a successful Run; the returned bytes must be owned by the transaction
// (copy inside Run — values handed to Ctx.Read callbacks are only valid
// during execution).
type Resulter interface {
	Result() []byte
}
