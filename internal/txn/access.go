package txn

import "sort"

// SortKeys orders ks lexicographically in place. Deterministic global key
// order is what makes 2PL lock acquisition deadlock-free and OCC write-set
// locking livelock-free.
func SortKeys(ks []Key) {
	sort.Slice(ks, func(i, j int) bool { return ks[i].Less(ks[j]) })
}

// Normalize sorts ks and removes duplicates in place, returning the
// (possibly shorter) normalized slice.
func Normalize(ks []Key) []Key {
	if len(ks) < 2 {
		return ks
	}
	SortKeys(ks)
	out := ks[:1]
	for _, k := range ks[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// Contains reports whether sorted set ks contains k. ks must be sorted
// (e.g. by Normalize); lookup is a binary search.
func Contains(ks []Key, k Key) bool {
	i := sort.Search(len(ks), func(i int) bool { return !ks[i].Less(k) })
	return i < len(ks) && ks[i] == k
}

// ContainsLinear reports whether ks (in any order) contains k. Engines use
// it for the short unsorted access sets typical of OLTP transactions, where
// a linear scan beats a sort.
func ContainsLinear(ks []Key, k Key) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

// Union returns the sorted, deduplicated union of two access sets. Neither
// input is modified; inputs need not be sorted.
func Union(a, b []Key) []Key {
	out := make([]Key, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return Normalize(out)
}

// Intersect reports whether two normalized (sorted, deduplicated) access
// sets share at least one key. It runs in O(len(a)+len(b)).
func Intersect(a, b []Key) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Less(b[j]):
			i++
		case b[j].Less(a[i]):
			j++
		default:
			return true
		}
	}
	return false
}
