package hekaton

import (
	"sync"
	"testing"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

func TestDefaultConfigUsable(t *testing.T) {
	cfg := DefaultConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Close() // exercise the no-op Close too
}

// TestClaimTargetConflictBranches drives claimTarget through its
// first-writer-wins branches over hand-built chains.
func TestClaimTargetConflictBranches(t *testing.T) {
	e := newEngine(t, Serializable, 1)

	// Branch: head written by an active transaction → conflict.
	ch := &chain{}
	base := committedVersion(10, 1)
	ch.head.Store(base)
	other := mkTxn(30, 0, txActive)
	inflight := &version{owner: ch, data: []byte{2}}
	inflight.end.Store(storage.TsInfinity)
	inflight.writer.Store(other)
	inflight.prev.Store(base)
	base.endTxn.Store(other)
	ch.head.Store(inflight)

	me := mkTxn(40, 0, txActive)
	c := &hCtx{e: e, r: me}
	if got := c.claimTarget(ch); got != nil || !c.conflict {
		t.Errorf("active writer: target=%v conflict=%v, want nil/true", got, c.conflict)
	}

	// Branch: committed version newer than our begin timestamp.
	ch2 := &chain{}
	newer := committedVersion(50, 3)
	ch2.head.Store(newer)
	me2 := mkTxn(40, 0, txActive)
	c2 := &hCtx{e: e, r: me2}
	if got := c2.claimTarget(ch2); got != nil || !c2.conflict {
		t.Errorf("newer committed: target=%v conflict=%v, want nil/true", got, c2.conflict)
	}

	// Branch: committed version already claimed by another transaction.
	ch3 := &chain{}
	claimed := committedVersion(10, 1)
	claimed.endTxn.Store(other)
	ch3.head.Store(claimed)
	me3 := mkTxn(40, 0, txActive)
	c3 := &hCtx{e: e, r: me3}
	if got := c3.claimTarget(ch3); got != nil || !c3.conflict {
		t.Errorf("claimed: target=%v conflict=%v, want nil/true", got, c3.conflict)
	}

	// Branch: clean claim succeeds.
	ch4 := &chain{}
	clean := committedVersion(10, 1)
	ch4.head.Store(clean)
	me4 := mkTxn(40, 0, txActive)
	c4 := &hCtx{e: e, r: me4}
	if got := c4.claimTarget(ch4); got != clean || c4.conflict {
		t.Errorf("clean: target=%v conflict=%v, want clean/false", got, c4.conflict)
	}

	// Branch: aborted garbage above a committed version is skipped.
	ch5 := &chain{}
	base5 := committedVersion(10, 1)
	dead := &version{owner: ch5, data: []byte{9}}
	dead.end.Store(storage.TsInfinity)
	dead.writer.Store(mkTxn(30, 0, txAborted))
	dead.prev.Store(base5)
	ch5.head.Store(dead)
	me5 := mkTxn(40, 0, txActive)
	c5 := &hCtx{e: e, r: me5}
	if got := c5.claimTarget(ch5); got != base5 || c5.conflict {
		t.Errorf("aborted garbage: target=%v conflict=%v, want base/false", got, c5.conflict)
	}
}

// TestEndVisibleBranches exercises the end-field visibility rules.
func TestEndVisibleBranches(t *testing.T) {
	e := newEngine(t, Serializable, 1)
	r := mkTxn(40, 0, txActive)

	// Committed end timestamp: visible strictly before it.
	v := committedVersion(10, 1)
	v.end.Store(30)
	if e.endVisible(v, 25, r) != true {
		t.Error("ts 25 < end 30 should be visible")
	}
	if e.endVisible(v, 30, r) != false {
		t.Error("ts 30 == end 30 should be invisible (end exclusive)")
	}

	// Claim by self: visible.
	v2 := committedVersion(10, 1)
	v2.endTxn.Store(r)
	if !e.endVisible(v2, 40, r) {
		t.Error("own claim should stay visible")
	}

	// Claim by an active transaction: still visible.
	v3 := committedVersion(10, 1)
	v3.endTxn.Store(mkTxn(20, 0, txActive))
	if !e.endVisible(v3, 40, r) {
		t.Error("active claimer should not hide the version")
	}

	// Claim by a committed transaction: end = its end timestamp.
	v4 := committedVersion(10, 1)
	v4.endTxn.Store(mkTxn(20, 35, txCommitted))
	if e.endVisible(v4, 40, r) {
		t.Error("ts 40 >= committed end 35 should be invisible")
	}
	if !e.endVisible(v4, 30, r) {
		t.Error("ts 30 < committed end 35 should be visible")
	}

	// Claim by an aborted transaction: the claim is void.
	v5 := committedVersion(10, 1)
	v5.endTxn.Store(mkTxn(20, 35, txAborted))
	if !e.endVisible(v5, 40, r) {
		t.Error("aborted claim should keep the version visible")
	}

	// Preparing claimer, reader before its end timestamp: visible, no dep.
	v6 := committedVersion(10, 1)
	v6.endTxn.Store(mkTxn(20, 60, txPreparing))
	if !e.endVisible(v6, 40, r) {
		t.Error("reader before preparing end should see the version")
	}
	if r.depCount.Load() != 0 {
		t.Error("no dependency expected for reader before preparing end")
	}

	// Preparing claimer, reader after its end timestamp: speculatively
	// superseded, dependency registered.
	r2 := mkTxn(70, 0, txActive)
	w := mkTxn(20, 60, txPreparing)
	v7 := committedVersion(10, 1)
	v7.endTxn.Store(w)
	if e.endVisible(v7, 70, r2) {
		t.Error("reader after preparing end should speculatively skip")
	}
	if r2.depCount.Load() != 1 {
		t.Errorf("depCount = %d, want 1", r2.depCount.Load())
	}
	w.releaseDependents(false)
}

// TestSlotExhaustionDisablesTrim: more concurrent transactions than
// active slots must disable trimming rather than corrupt it.
func TestSlotExhaustionDisablesTrim(t *testing.T) {
	e, err := New(Config{Workers: 1, Capacity: 64, TrimChains: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	// Advance the timestamp counter past the slot timestamps used below,
	// since minActive is bounded by the counter as well.
	for e.counter.Load() < 500 {
		e.nextTS()
	}
	// Claim every slot by hand.
	var claimed []int
	for i := 0; i < len(e.active); i++ {
		claimed = append(claimed, e.claimSlot(uint64(100+i)))
	}
	// Next claim is slotless; minActive must return 0 (nothing trimmable).
	s := e.claimSlot(999)
	if s != -1 {
		t.Fatalf("claimSlot = %d, want -1 when exhausted", s)
	}
	if got := e.minActive(); got != 0 {
		t.Fatalf("minActive = %d with slotless txns, want 0", got)
	}
	e.releaseSlot(s)
	if got := e.minActive(); got != 100 {
		t.Fatalf("minActive = %d, want 100", got)
	}
	for _, c := range claimed {
		e.releaseSlot(c)
	}
}

// TestRepeatedWriteSameKey: a transaction writing the same key twice
// updates its in-flight version in place.
func TestRepeatedWriteSameKey(t *testing.T) {
	e := newEngine(t, Serializable, 1)
	load(t, e, 1, 0)
	p := &txn.Proc{
		Writes: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			if err := ctx.Write(key(0), txn.NewValue(8, 1)); err != nil {
				return err
			}
			return ctx.Write(key(0), txn.NewValue(8, 2))
		},
	}
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
		t.Fatal(res[0])
	}
	got, err := readVal(t, e, 0)
	if err != nil || got != 2 {
		t.Fatalf("value = %d (%v), want 2", got, err)
	}
	s := e.Stats()
	if s.VersionsCreated != 1 {
		t.Errorf("versions created = %d, want 1 (second write updates in place)", s.VersionsCreated)
	}
}

// TestWriteOutsideWriteSet surfaces the declared-set violation.
func TestWriteOutsideWriteSet(t *testing.T) {
	e := newEngine(t, Serializable, 1)
	load(t, e, 2, 0)
	p := &txn.Proc{
		Writes: []txn.Key{key(0)},
		Body:   func(ctx txn.Ctx) error { return ctx.Write(key(1), txn.NewValue(8, 1)) },
	}
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] == nil {
		t.Fatal("undeclared write committed")
	}
	got, err := readVal(t, e, 1)
	if err != nil || got != 0 {
		t.Fatalf("key 1 = %d (%v), want 0", got, err)
	}
}

// TestStressMixedLevels hammers both isolation levels concurrently with
// conflicting increments to exercise abort/cascade paths.
func TestStressMixedLevels(t *testing.T) {
	for _, level := range []Level{Serializable, Snapshot} {
		e := newEngine(t, level, 4)
		load(t, e, 4, 0)
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for round := 0; round < 20; round++ {
					ts := make([]txn.Txn, 10)
					for i := range ts {
						ts[i] = incTxn(uint64((seed + i) % 4))
					}
					for _, err := range e.ExecuteBatch(ts) {
						if err != nil {
							t.Errorf("level %d: %v", level, err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		var sum uint64
		for i := uint64(0); i < 4; i++ {
			v, err := readVal(t, e, i)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum != 600 {
			t.Fatalf("level %d: sum = %d, want 600", level, sum)
		}
	}
}
