package hekaton

import (
	"runtime"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// visible walks ch newest-first and returns the version a transaction r
// observes at timestamp ts, or nil when no version is visible. It
// implements Larson et al.'s visibility rules, consulting writer state for
// in-flight begin fields and claimer state for in-flight end fields, and
// registering commit dependencies for decisions that speculate on a
// preparing transaction's outcome.
//
// skipOwn excludes versions written by r itself — used during
// serializable validation, where a read is judged against the version a
// *different* transaction would see at r's end timestamp.
func (e *Engine) visible(ch *chain, ts uint64, r *hTxn, skipOwn bool) *version {
	for v := ch.head.Load(); v != nil; {
		switch e.beginVisible(v, ts, r, skipOwn) {
		case beginRetry:
			continue
		case beginSkip:
			v = v.prev.Load()
			continue
		}
		if e.endVisible(v, ts, r) {
			return v
		}
		v = v.prev.Load()
	}
	return nil
}

type beginResult int

const (
	beginOK beginResult = iota
	beginSkip
	beginRetry
)

// beginVisible decides whether v's begin field admits visibility at ts.
func (e *Engine) beginVisible(v *version, ts uint64, r *hTxn, skipOwn bool) beginResult {
	b := v.begin.Load()
	if b == 0 {
		w := v.writer.Load()
		if w == nil {
			// Finalized between the two loads; re-read.
			if v.begin.Load() == 0 {
				runtime.Gosched()
			}
			return beginRetry
		}
		if w == r {
			if skipOwn {
				return beginSkip
			}
			return beginOK // own writes are always visible to self
		}
		switch w.state.Load() {
		case txActive:
			return beginSkip // uncommitted data of an active transaction
		case txPreparing:
			// Speculative visibility (commit dependency): if w commits,
			// this version's begin becomes w.endTS.
			if ts >= w.endTS {
				if !w.registerDependent(r) {
					return beginRetry // w reached a final state; re-evaluate
				}
				r.specReads = true
				return beginOK
			}
			return beginSkip
		case txCommitted:
			b = w.endTS // begin finalization is lazy
		default: // txAborted
			return beginSkip
		}
	}
	if b > ts {
		return beginSkip
	}
	return beginOK
}

// endVisible decides whether v's end field admits visibility at ts.
func (e *Engine) endVisible(v *version, ts uint64, r *hTxn) bool {
	en := v.end.Load()
	if en != storage.TsInfinity {
		return ts < en
	}
	c := v.endTxn.Load()
	if c == nil {
		// Re-check: the claimer may have finalized between the loads.
		if en2 := v.end.Load(); en2 != storage.TsInfinity {
			return ts < en2
		}
		return true
	}
	if c == r {
		return true // r claimed v; v is r's own pre-image
	}
	switch c.state.Load() {
	case txActive:
		return true // invalidation not committed yet
	case txPreparing:
		if ts >= c.endTS {
			// Speculatively superseded if c commits.
			if !c.registerDependent(r) {
				return e.endVisible(v, ts, r) // re-evaluate final state
			}
			r.specReads = true
			return false
		}
		return true
	case txCommitted:
		return ts < c.endTS
	default: // txAborted: the claim is void
		return true
	}
}

// validate implements serializable read validation: every read must
// observe the same version at the end timestamp as it did at the begin
// timestamp (read stability; with point accesses this also covers the
// repeatable "not found" case), and every scanned range must contain no
// phantom — no key outside the scan's observed key set may have a version
// visible at the end timestamp (Larson et al.'s repeat-the-scan rule,
// restricted to the keys the original scan did not already cover, which
// the per-key read entries revalidate above).
func (e *Engine) validate(r *hTxn) bool {
	for _, re := range r.reads {
		if re.v != nil && re.v.writer.Load() == r {
			// The transaction read its own in-flight write (a scan over a
			// range it inserted into, or a read after write). Own writes
			// are private until commit and cannot be invalidated; they
			// are not reads of committed state and need no validation —
			// comparing them against the skipOwn visibility below would
			// spuriously (and permanently) fail.
			continue
		}
		ch := re.ch
		if ch == nil {
			// The record had no chain at read time; an insert may have
			// created one since.
			ch = e.idx.Get(re.k)
			if ch == nil {
				continue
			}
		}
		v := e.visible(ch, r.endTS, r, true)
		if v != re.v && !(re.v == nil && v != nil && v.tomb) {
			return false
		}
	}
	for _, sc := range r.scans {
		ok := true
		e.dir.AscendRange(sc.r, func(k txn.Key) bool {
			if txn.Contains(sc.keys, k) {
				return true // revalidated by its read entry
			}
			ch := e.idx.Get(k)
			if ch == nil {
				return true
			}
			// skipOwn: our own insert into a range we scanned is not a
			// phantom — we see our writes, others serialize around us.
			if v := e.visible(ch, r.endTS, r, true); v != nil && !v.tomb {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}
