// Package hekaton implements the paper's main multiversion comparison
// points: the optimistic concurrency control protocol of Larson et al.,
// "High-performance concurrency control mechanisms for main-memory
// databases" (PVLDB 2011) — the protocol behind Microsoft Hekaton — and,
// via the Snapshot isolation level, the SI baseline the paper implemented
// inside its Hekaton codebase.
//
// The defining properties reproduced here:
//
//   - a global 64-bit timestamp counter incremented with an atomic
//     fetch-and-increment at least twice per transaction (begin and end),
//     which is the scalability bottleneck the paper demonstrates in
//     Figures 6, 7, and 10;
//   - versions with begin/end timestamp pairs, where in-flight versions
//     carry a reference to their writer and visibility consults the
//     writer's state;
//   - first-writer-wins write-write conflict detection by claiming the
//     end field of the predecessor version;
//   - commit dependencies: a reader may speculatively read a version whose
//     writer is preparing (end timestamp assigned, validation pending) and
//     registers a dependency that defers its own commit, cascading aborts;
//   - serializable validation by re-checking read visibility at the end
//     timestamp (Serializable level), or no read validation at all
//     (Snapshot level).
package hekaton

import (
	"sync"
	"sync/atomic"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// Transaction states, per Larson et al. §2.
const (
	txActive int32 = iota
	txPreparing
	txCommitted
	txAborted
)

// version is one entry in a record's version chain, newest first.
//
// begin is 0 while the creating transaction is in flight (consult writer);
// after commit it holds the creator's end timestamp. end is TsInfinity
// until a superseding transaction commits; an in-flight claim is held in
// endTxn. Loaded versions have begin=1 and writer=nil.
type version struct {
	begin  atomic.Uint64
	end    atomic.Uint64
	writer atomic.Pointer[hTxn]
	endTxn atomic.Pointer[hTxn]
	prev   atomic.Pointer[version]
	owner  *chain // back-pointer for unlinking aborted versions
	data   []byte
	tomb   bool
}

func newLoadedVersion(data []byte) *version {
	v := &version{data: data}
	v.begin.Store(1)
	v.end.Store(storage.TsInfinity)
	return v
}

// chain is a record's version list. Pushing is serialized by the
// first-writer-wins claim on the predecessor version, so the head is a
// simple atomic pointer.
type chain struct {
	head atomic.Pointer[version]
	// insertClaim serializes transactions that insert the record's very
	// first version (no predecessor to claim).
	insertClaim atomic.Pointer[hTxn]
}

// hTxn is the engine's per-transaction-attempt state.
type hTxn struct {
	beginTS uint64
	endTS   uint64
	state   atomic.Int32

	// Commit dependencies (Larson et al. §2.7): depCount is the number of
	// preparing transactions this transaction speculatively read from;
	// dependents are transactions waiting on this one. cascade marks this
	// transaction for abort because a dependency aborted.
	depCount   atomic.Int32
	cascade    atomic.Bool
	depMu      sync.Mutex
	dependents []*hTxn

	reads     []hReadEntry
	scans     []hScanEntry // ranges scanned, for phantom revalidation
	written   []*version   // versions this transaction pushed
	claimed   []*version   // predecessor versions whose end this txn claimed
	chains    []*chain     // chains where this txn holds the insert claim
	specReads bool         // whether any read was speculative
}

// hScanEntry records one range scan for serializable validation: the range
// and the directory keys the scan examined (in key order). Validation
// rescans the directory; a key absent from keys whose chain has a visible
// version at the end timestamp is a phantom.
type hScanEntry struct {
	r    txn.KeyRange
	keys []txn.Key
}

// hReadEntry records a read for serializable validation: the key, the
// chain, and the version that was visible at beginTS (nil version when
// the read observed "not found"; nil chain when the record had no chain
// at all at read time).
type hReadEntry struct {
	ch *chain
	k  txn.Key
	v  *version
}

// registerDependent adds r as a commit dependent of w if w is still
// preparing, incrementing r's dependency count. Returns false if w has
// already reached a final state (the caller re-evaluates visibility).
func (w *hTxn) registerDependent(r *hTxn) bool {
	w.depMu.Lock()
	defer w.depMu.Unlock()
	if w.state.Load() != txPreparing {
		return false
	}
	r.depCount.Add(1)
	w.dependents = append(w.dependents, r)
	return true
}

// releaseDependents wakes every dependent after w reaches a final state,
// cascading aborts when w aborted.
func (w *hTxn) releaseDependents(aborted bool) {
	w.depMu.Lock()
	deps := w.dependents
	w.dependents = nil
	w.depMu.Unlock()
	for _, r := range deps {
		if aborted {
			r.cascade.Store(true)
		}
		r.depCount.Add(-1)
	}
}
