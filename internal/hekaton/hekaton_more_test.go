package hekaton

import (
	"sync"
	"testing"
	"time"

	"bohm/internal/txn"
)

// TestConcurrentInsertsSameKey: two transactions inserting the same
// previously nonexistent key overlap; the chain-level insert claim must
// serialize them (one retries), and exactly one final value survives.
func TestConcurrentInsertsSameKey(t *testing.T) {
	e := newEngine(t, Snapshot, 2)
	load(t, e, 1, 0) // unrelated key so the table is not empty
	k := key(500)
	var barrier sync.WaitGroup
	barrier.Add(2)
	mk := func(val uint64) txn.Txn {
		return &rendezvousTxn{
			reads:         []txn.Key{k},
			writes:        []txn.Key{k},
			barrier:       &barrier,
			ignoreMissing: true,
			apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
				return ctx.Write(k, txn.NewValue(8, val))
			},
		}
	}
	for i, err := range e.ExecuteBatch([]txn.Txn{mk(111), mk(222)}) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	got, err := readVal(t, e, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got != 111 && got != 222 {
		t.Fatalf("inserted value = %d, want 111 or 222", got)
	}
}

// TestSnapshotReadsAreStable: a transaction that reads the same key twice
// while a concurrent writer commits in between must observe the same
// value both times (reads as of the begin timestamp) — under both
// Snapshot and Serializable levels.
func TestSnapshotReadsAreStable(t *testing.T) {
	for _, level := range []Level{Snapshot, Serializable} {
		e := newEngine(t, level, 2)
		load(t, e, 1, 7)

		readerInFlight := make(chan struct{})
		writerDone := make(chan struct{})
		var first, second uint64
		var mismatch bool
		var once sync.Once
		reader := &txn.Proc{
			Reads: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				v, err := ctx.Read(key(0))
				if err != nil {
					return err
				}
				f := txn.U64(v)
				once.Do(func() {
					close(readerInFlight)
					select {
					case <-writerDone:
					case <-time.After(time.Second):
					}
				})
				v, err = ctx.Read(key(0))
				if err != nil {
					return err
				}
				s := txn.U64(v)
				first, second = f, s
				if f != s {
					mismatch = true
				}
				return nil
			},
		}
		writer := &txn.Proc{
			Reads:  []txn.Key{key(0)},
			Writes: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				<-readerInFlight
				v, err := ctx.Read(key(0))
				if err != nil {
					return err
				}
				return ctx.Write(key(0), txn.Incremented(v, 100))
			},
		}
		done := make(chan []error, 1)
		go func() {
			res := e.ExecuteBatch([]txn.Txn{writer})
			close(writerDone)
			done <- res
		}()
		rres := e.ExecuteBatch([]txn.Txn{reader})
		wres := <-done
		if rres[0] != nil || wres[0] != nil {
			t.Fatalf("level %d: reader %v writer %v", level, rres[0], wres[0])
		}
		if mismatch {
			t.Fatalf("level %d: snapshot violated: first read %d, second read %d", level, first, second)
		}
	}
}

// TestReadOnlyNeverAborts: read-only transactions under Snapshot commit
// without validation even when everything they read is concurrently
// overwritten.
func TestReadOnlyNeverAborts(t *testing.T) {
	e := newEngine(t, Snapshot, 4)
	load(t, e, 8, 1)
	var ts []txn.Txn
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			ts = append(ts, incTxn(uint64(i%8)))
		} else {
			keys := make([]txn.Key, 8)
			for j := range keys {
				keys[j] = key(uint64(j))
			}
			ts = append(ts, &txn.Proc{
				Reads: keys,
				Body: func(ctx txn.Ctx) error {
					for _, k := range keys {
						if _, err := ctx.Read(k); err != nil {
							return err
						}
					}
					return nil
				},
			})
		}
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
}

// TestDeleteVisibility under both levels.
func TestDeleteVisibility(t *testing.T) {
	for _, level := range []Level{Snapshot, Serializable} {
		e := newEngine(t, level, 2)
		load(t, e, 2, 9)
		del := &txn.Proc{Writes: []txn.Key{key(0)}, Body: func(ctx txn.Ctx) error {
			return ctx.Delete(key(0))
		}}
		if res := e.ExecuteBatch([]txn.Txn{del}); res[0] != nil {
			t.Fatal(res[0])
		}
		if _, err := readVal(t, e, 0); err == nil {
			t.Fatalf("level %d: deleted key still readable", level)
		}
		// Re-insert over the tombstone.
		re := &txn.Proc{Writes: []txn.Key{key(0)}, Body: func(ctx txn.Ctx) error {
			return ctx.Write(key(0), txn.NewValue(8, 4))
		}}
		if res := e.ExecuteBatch([]txn.Txn{re}); res[0] != nil {
			t.Fatal(res[0])
		}
		got, err := readVal(t, e, 0)
		if err != nil || got != 4 {
			t.Fatalf("level %d: reinsert = %d (%v), want 4", level, got, err)
		}
	}
}

// TestConcurrentExecuteBatchWithTrim: multiple concurrent ExecuteBatch
// calls must register their in-flight transactions independently, so
// chain trimming never collects a version a concurrent reader still
// needs (regression test for shared active-slot indices).
func TestConcurrentExecuteBatchWithTrim(t *testing.T) {
	e, err := New(Config{Workers: 2, Capacity: 256, TrimChains: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	load(t, e, 8, 0)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				ts := make([]txn.Txn, 10)
				for i := range ts {
					if (seed+i)%3 == 0 {
						// Reader of all keys.
						keys := make([]txn.Key, 8)
						for j := range keys {
							keys[j] = key(uint64(j))
						}
						ts[i] = &txn.Proc{Reads: keys, Body: func(ctx txn.Ctx) error {
							for _, k := range keys {
								if _, err := ctx.Read(k); err != nil {
									return err
								}
							}
							return nil
						}}
					} else {
						ts[i] = incTxn(uint64((seed + i) % 8))
					}
				}
				for _, err := range e.ExecuteBatch(ts) {
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent batch failed: %v", err)
	}
}
