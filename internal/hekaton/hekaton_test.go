package hekaton

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

func key(id uint64) txn.Key { return txn.Key{Table: 0, ID: id} }

func newEngine(t *testing.T, level Level, workers int) *Engine {
	t.Helper()
	e, err := New(Config{Workers: workers, Capacity: 1 << 12, Level: level})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func load(t *testing.T, e *Engine, n int, val uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Load(key(uint64(i)), txn.NewValue(8, val)); err != nil {
			t.Fatal(err)
		}
	}
}

func incTxn(ids ...uint64) txn.Txn {
	ks := make([]txn.Key, len(ids))
	for i, id := range ids {
		ks[i] = key(id)
	}
	return &txn.Proc{
		Reads:  ks,
		Writes: ks,
		Body: func(ctx txn.Ctx) error {
			for _, k := range ks {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				if err := ctx.Write(k, txn.Incremented(v, 1)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func readVal(t *testing.T, e *Engine, id uint64) (uint64, error) {
	t.Helper()
	var got uint64
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads: []txn.Key{key(id)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(id))
			if err != nil {
				return err
			}
			got = txn.U64(v)
			return nil
		},
	}})
	return got, res[0]
}

// --- Unit tests of the visibility rules over hand-built chains ---

func mkTxn(begin, end uint64, state int32) *hTxn {
	h := &hTxn{beginTS: begin, endTS: end}
	h.state.Store(state)
	return h
}

func committedVersion(beginTS uint64, data byte) *version {
	v := &version{data: []byte{data}}
	v.begin.Store(beginTS)
	v.end.Store(storage.TsInfinity)
	return v
}

func TestVisibilityCommittedChain(t *testing.T) {
	e := newEngine(t, Serializable, 1)
	ch := &chain{}
	v1 := committedVersion(10, 1)
	ch.head.Store(v1)
	v2 := committedVersion(20, 2)
	v2.prev.Store(v1)
	v1.end.Store(20)
	ch.head.Store(v2)

	r := mkTxn(25, 0, txActive)
	if got := e.visible(ch, 25, r, false); got != v2 {
		t.Errorf("ts 25: got %v, want v2", got)
	}
	r = mkTxn(15, 0, txActive)
	if got := e.visible(ch, 15, r, false); got != v1 {
		t.Errorf("ts 15: got %v, want v1", got)
	}
	r = mkTxn(5, 0, txActive)
	if got := e.visible(ch, 5, r, false); got != nil {
		t.Errorf("ts 5: got %v, want nil", got)
	}
	// Boundary: begin is inclusive.
	r = mkTxn(20, 0, txActive)
	if got := e.visible(ch, 20, r, false); got != v2 {
		t.Errorf("ts 20: got %v, want v2 (begin inclusive)", got)
	}
}

func TestVisibilityActiveWriterInvisible(t *testing.T) {
	e := newEngine(t, Serializable, 1)
	ch := &chain{}
	base := committedVersion(10, 1)
	ch.head.Store(base)

	w := mkTxn(30, 0, txActive)
	inflight := &version{data: []byte{2}}
	inflight.end.Store(storage.TsInfinity)
	inflight.writer.Store(w)
	inflight.prev.Store(base)
	base.endTxn.Store(w)
	ch.head.Store(inflight)

	r := mkTxn(40, 0, txActive)
	if got := e.visible(ch, 40, r, false); got != base {
		t.Errorf("active writer's version visible to another txn: got %v", got)
	}
	// The writer itself sees its own version.
	if got := e.visible(ch, 30, w, false); got != inflight {
		t.Errorf("writer does not see own write: got %v", got)
	}
	// skipOwn (validation mode) sees the pre-image.
	if got := e.visible(ch, 99, w, true); got != base {
		t.Errorf("skipOwn returned %v, want base", got)
	}
}

func TestVisibilitySpeculativePreparing(t *testing.T) {
	e := newEngine(t, Serializable, 1)
	ch := &chain{}
	base := committedVersion(10, 1)
	ch.head.Store(base)

	w := mkTxn(30, 50, txPreparing) // end timestamp 50 assigned, validating
	inflight := &version{data: []byte{2}}
	inflight.end.Store(storage.TsInfinity)
	inflight.writer.Store(w)
	inflight.prev.Store(base)
	base.endTxn.Store(w)
	ch.head.Store(inflight)

	// Reader at ts 60 > 50: speculatively reads the preparing version and
	// takes a commit dependency.
	r := mkTxn(60, 0, txActive)
	if got := e.visible(ch, 60, r, false); got != inflight {
		t.Errorf("speculative read returned %v, want in-flight version", got)
	}
	if r.depCount.Load() != 1 {
		t.Errorf("depCount = %d, want 1", r.depCount.Load())
	}
	if len(w.dependents) != 1 || w.dependents[0] != r {
		t.Error("dependent not registered on the writer")
	}

	// Reader at ts 40 < 50: the preparing version cannot be visible; the
	// base version is (its invalidation would be at 50 > 40, no dep).
	r2 := mkTxn(40, 0, txActive)
	if got := e.visible(ch, 40, r2, false); got != base {
		t.Errorf("pre-prepare reader got %v, want base", got)
	}
	if r2.depCount.Load() != 0 {
		t.Errorf("pre-prepare reader took %d deps, want 0", r2.depCount.Load())
	}
}

func TestVisibilityAbortedVersionSkipped(t *testing.T) {
	e := newEngine(t, Serializable, 1)
	ch := &chain{}
	base := committedVersion(10, 1)
	ch.head.Store(base)

	w := mkTxn(30, 0, txAborted)
	dead := &version{data: []byte{2}}
	dead.end.Store(storage.TsInfinity)
	dead.writer.Store(w)
	dead.prev.Store(base)
	ch.head.Store(dead)

	r := mkTxn(40, 0, txActive)
	if got := e.visible(ch, 40, r, false); got != base {
		t.Errorf("aborted version not skipped: got %v", got)
	}
}

func TestReleaseDependentsCascade(t *testing.T) {
	w := mkTxn(10, 20, txPreparing)
	r := mkTxn(30, 0, txActive)
	if !w.registerDependent(r) {
		t.Fatal("registration failed while preparing")
	}
	w.releaseDependents(true)
	if r.depCount.Load() != 0 {
		t.Error("dependency not released")
	}
	if !r.cascade.Load() {
		t.Error("cascade flag not set on abort")
	}
	// Registration after a final state must fail.
	w2 := mkTxn(10, 20, txCommitted)
	if w2.registerDependent(r) {
		t.Error("registered on a committed txn")
	}
}

// --- Engine-level behavior ---

func TestHotKeySum(t *testing.T) {
	for _, level := range []Level{Serializable, Snapshot} {
		e := newEngine(t, level, 4)
		load(t, e, 1, 0)
		const n = 400
		ts := make([]txn.Txn, n)
		for i := range ts {
			ts[i] = incTxn(0)
		}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("level %d txn %d: %v", level, i, err)
			}
		}
		got, err := readVal(t, e, 0)
		if err != nil || got != n {
			t.Fatalf("level %d: value = %d (%v), want %d", level, got, err, n)
		}
	}
}

func TestTimestampFetchesCounted(t *testing.T) {
	e := newEngine(t, Serializable, 2)
	load(t, e, 4, 0)
	ts := make([]txn.Txn, 50)
	for i := range ts {
		ts[i] = incTxn(uint64(i % 4))
	}
	e.ExecuteBatch(ts)
	s := e.Stats()
	// Begin + end per attempt: at least two fetches per committed txn —
	// the §2.1 bottleneck this baseline exists to demonstrate.
	if s.TimestampFetches < 2*s.Committed {
		t.Errorf("tsFetches = %d, want >= %d", s.TimestampFetches, 2*s.Committed)
	}
}

// rendezvousTxn reads its keys, then waits at a barrier before writing,
// forcing two transactions to overlap in time.
type rendezvousTxn struct {
	reads, writes []txn.Key
	barrier       *sync.WaitGroup
	apply         func(ctx txn.Ctx, vals map[txn.Key]uint64) error
	once          sync.Once
	// ignoreMissing lets insert transactions read a key that does not
	// exist yet without aborting.
	ignoreMissing bool
}

func (r *rendezvousTxn) ReadSet() []txn.Key       { return r.reads }
func (r *rendezvousTxn) WriteSet() []txn.Key      { return r.writes }
func (r *rendezvousTxn) RangeSet() []txn.KeyRange { return nil }
func (r *rendezvousTxn) Run(ctx txn.Ctx) error {
	vals := map[txn.Key]uint64{}
	for _, k := range r.reads {
		v, err := ctx.Read(k)
		if err != nil {
			if r.ignoreMissing && errors.Is(err, txn.ErrNotFound) {
				continue
			}
			return err
		}
		vals[k] = txn.U64(v)
	}
	// Rendezvous only on the first attempt; retries proceed alone.
	r.once.Do(func() {
		r.barrier.Done()
		waitTimeout(r.barrier, time.Second)
	})
	return r.apply(ctx, vals)
}

// waitTimeout waits for wg but gives up after d (so a retried partner
// cannot deadlock the test).
func waitTimeout(wg *sync.WaitGroup, d time.Duration) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(d):
	}
}

// writeSkewPair builds the classic anomaly: both transactions read x and
// y, then T1 writes x := x+y and T2 writes y := x+y concurrently.
func writeSkewPair(barrier *sync.WaitGroup) (t1, t2 txn.Txn) {
	x, y := key(0), key(1)
	t1 = &rendezvousTxn{
		reads:   []txn.Key{x, y},
		writes:  []txn.Key{x},
		barrier: barrier,
		apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
			return ctx.Write(x, txn.NewValue(8, vals[x]+vals[y]))
		},
	}
	t2 = &rendezvousTxn{
		reads:   []txn.Key{x, y},
		writes:  []txn.Key{y},
		barrier: barrier,
		apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
			return ctx.Write(y, txn.NewValue(8, vals[x]+vals[y]))
		},
	}
	return t1, t2
}

// serializableSkewOutcomes enumerates the two serial outcomes of the
// write-skew pair starting from x=1, y=2: T1 first gives (3, 5); T2
// first gives (6, 3)... computed directly here.
func skewOutcomeOK(x, y uint64) bool {
	// T1 then T2: x=1+2=3, y=3+2=5 → (3,5).
	// T2 then T1: y=1+2=3, x=1+3=4 → (4,3).
	return (x == 3 && y == 5) || (x == 4 && y == 3)
}

// TestSerializableRejectsWriteSkew: under the Serializable level the
// overlapping pair must produce a serial outcome (one side revalidates or
// retries).
func TestSerializableRejectsWriteSkew(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		e := newEngine(t, Serializable, 2)
		load(t, e, 2, 0)
		// x=1, y=2.
		seed := []txn.Txn{
			&txn.Proc{Writes: []txn.Key{key(0)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(0), txn.NewValue(8, 1))
			}},
			&txn.Proc{Writes: []txn.Key{key(1)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(1), txn.NewValue(8, 2))
			}},
		}
		for _, err := range e.ExecuteBatch(seed) {
			if err != nil {
				t.Fatal(err)
			}
		}
		var barrier sync.WaitGroup
		barrier.Add(2)
		t1, t2 := writeSkewPair(&barrier)
		for i, err := range e.ExecuteBatch([]txn.Txn{t1, t2}) {
			if err != nil {
				t.Fatalf("trial %d txn %d: %v", trial, i, err)
			}
		}
		x, _ := readVal(t, e, 0)
		y, _ := readVal(t, e, 1)
		if !skewOutcomeOK(x, y) {
			t.Fatalf("trial %d: non-serializable outcome x=%d y=%d", trial, x, y)
		}
	}
}

// TestSnapshotAllowsWriteSkew: under SI the same pair can commit with
// both reads from the old snapshot — the anomaly the paper describes in
// §1. We assert the anomaly occurs at least once across trials (it is
// scheduling dependent) and that SI always reports both as committed.
func TestSnapshotAllowsWriteSkew(t *testing.T) {
	anomalies := 0
	for trial := 0; trial < 20; trial++ {
		e := newEngine(t, Snapshot, 2)
		load(t, e, 2, 0)
		seed := []txn.Txn{
			&txn.Proc{Writes: []txn.Key{key(0)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(0), txn.NewValue(8, 1))
			}},
			&txn.Proc{Writes: []txn.Key{key(1)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(1), txn.NewValue(8, 2))
			}},
		}
		for _, err := range e.ExecuteBatch(seed) {
			if err != nil {
				t.Fatal(err)
			}
		}
		var barrier sync.WaitGroup
		barrier.Add(2)
		t1, t2 := writeSkewPair(&barrier)
		for i, err := range e.ExecuteBatch([]txn.Txn{t1, t2}) {
			if err != nil {
				t.Fatalf("trial %d txn %d: %v", trial, i, err)
			}
		}
		x, _ := readVal(t, e, 0)
		y, _ := readVal(t, e, 1)
		if x == 3 && y == 3 {
			anomalies++ // both applied over the old snapshot
		} else if !skewOutcomeOK(x, y) {
			t.Fatalf("trial %d: outcome x=%d y=%d is neither serial nor write-skew", trial, x, y)
		}
	}
	if anomalies == 0 {
		t.Skip("write-skew interleaving never occurred in this run (scheduling dependent)")
	}
	t.Logf("write-skew anomaly observed in %d/20 trials under SI", anomalies)
}

// TestFirstWriterWins: two overlapping writers of the same key — one
// must abort-and-retry internally (ccAborts > 0), both eventually apply.
func TestFirstWriterWins(t *testing.T) {
	e := newEngine(t, Snapshot, 2)
	load(t, e, 1, 0)
	var barrier sync.WaitGroup
	barrier.Add(2)
	mk := func() txn.Txn {
		return &rendezvousTxn{
			reads:   []txn.Key{key(0)},
			writes:  []txn.Key{key(0)},
			barrier: &barrier,
			apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
				return ctx.Write(key(0), txn.NewValue(8, vals[key(0)]+1))
			},
		}
	}
	for i, err := range e.ExecuteBatch([]txn.Txn{mk(), mk()}) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	got, _ := readVal(t, e, 0)
	if got != 2 {
		t.Fatalf("value = %d, want 2 (no lost update)", got)
	}
}

func TestUserAbortRollsBack(t *testing.T) {
	boom := errors.New("boom")
	for _, level := range []Level{Serializable, Snapshot} {
		e := newEngine(t, level, 2)
		load(t, e, 1, 7)
		p := &txn.Proc{
			Reads:  []txn.Key{key(0)},
			Writes: []txn.Key{key(0)},
			Body: func(ctx txn.Ctx) error {
				if err := ctx.Write(key(0), txn.NewValue(8, 100)); err != nil {
					return err
				}
				return boom
			},
		}
		res := e.ExecuteBatch([]txn.Txn{p})
		if !errors.Is(res[0], boom) {
			t.Fatalf("res = %v", res[0])
		}
		got, err := readVal(t, e, 0)
		if err != nil || got != 7 {
			t.Fatalf("level %d: after abort = %d (%v), want 7", level, got, err)
		}
		// A later update over the aborted garbage still works.
		if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
			t.Fatal(res[0])
		}
		got, _ = readVal(t, e, 0)
		if got != 8 {
			t.Fatalf("after abort+inc = %d, want 8", got)
		}
	}
}

func TestTrimChainsBoundsMemory(t *testing.T) {
	e, err := New(Config{Workers: 2, Capacity: 64, TrimChains: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	load(t, e, 1, 0)
	for round := 0; round < 50; round++ {
		ts := make([]txn.Txn, 20)
		for i := range ts {
			ts[i] = incTxn(0)
		}
		for _, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if s := e.Stats(); s.VersionsCollected == 0 {
		t.Error("TrimChains collected nothing")
	}
	ch := e.idx.Get(key(0))
	n := 0
	for v := ch.head.Load(); v != nil; v = v.prev.Load() {
		n++
	}
	if n > 100 {
		t.Errorf("chain length %d after 1000 updates with trimming", n)
	}
	got, _ := readVal(t, e, 0)
	if got != 1000 {
		t.Fatalf("value = %d, want 1000", got)
	}
}

func TestMaxRetriesSurfaces(t *testing.T) {
	// With MaxRetries=1 a conflicting pair may surface ErrTooManyRetries;
	// mostly this test checks the path compiles/behaves — conflicts are
	// scheduling dependent, so accept both outcomes.
	e, err := New(Config{Workers: 2, Capacity: 64, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	load(t, e, 1, 0)
	ts := make([]txn.Txn, 100)
	for i := range ts {
		ts[i] = incTxn(0)
	}
	res := e.ExecuteBatch(ts)
	for _, err := range res {
		if err != nil && !errors.Is(err, ErrTooManyRetries) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}
