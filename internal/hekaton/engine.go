package hekaton

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/engine"
	"bohm/internal/storage"
	"bohm/internal/txn"
)

// Level selects the isolation level the engine enforces.
type Level int

const (
	// Serializable is Hekaton's optimistic serializable protocol: reads
	// are validated at commit time (read stability).
	Serializable Level = iota
	// Snapshot is snapshot isolation: transactions read as of their begin
	// timestamp and only write-write conflicts abort. This is the paper's
	// SI baseline, "implemented within our Hekaton codebase" (§4).
	Snapshot
)

// Config parameterizes the engine.
type Config struct {
	// Workers is the number of transaction execution threads.
	Workers int
	// Capacity sizes the record index.
	Capacity int
	// Level is the isolation level (Serializable or Snapshot).
	Level Level
	// TrimChains unlinks versions no longer visible to any active or
	// future transaction. The paper ran Hekaton and SI *without* garbage
	// collection (favoring them slightly); trimming defaults off in the
	// benchmarks but is available to bound memory in long runs.
	TrimChains bool
	// MaxRetries bounds internal retries of concurrency-control aborts;
	// 0 means retry forever (the paper's configuration).
	MaxRetries int
}

// DefaultConfig returns a small general-purpose configuration.
func DefaultConfig() Config { return Config{Workers: 2, Capacity: 1 << 20} }

// ErrTooManyRetries is returned when MaxRetries is exceeded.
var ErrTooManyRetries = fmt.Errorf("hekaton: transaction exceeded retry limit")

// errConflict marks concurrency-control-induced aborts (first-writer-wins
// write conflicts, validation failures, cascaded aborts); they are retried.
var errConflict = fmt.Errorf("hekaton: concurrency control conflict")

// Engine is the Hekaton-style optimistic multiversion engine.
type Engine struct {
	cfg Config
	idx *storage.Map[chain]

	// dir is the ordered key directory backing range scans: every key
	// ever given a chain is registered (at Load, or when a writer creates
	// the chain). Scans walk it in key order and apply the usual
	// visibility rules per key; the Serializable level revalidates each
	// scanned range at commit to catch phantoms, per Larson et al.'s
	// "repeat the scan at end of transaction" rule.
	dir *storage.Directory

	// counter is the global timestamp counter — the contended fetch-and-
	// increment this baseline is known for (§2.1).
	counter atomic.Uint64

	// active holds the begin timestamps of in-flight transactions (0 =
	// free slot); the minimum bounds chain trimming. Slots are claimed
	// with a CAS so concurrent ExecuteBatch calls never share one.
	active []atomic.Uint64
	// slotless counts in-flight transactions that found no free slot;
	// while any exist, trimming is disabled (minActive returns 0).
	slotless atomic.Int64

	committed  atomic.Uint64
	userAborts atomic.Uint64
	ccAborts   atomic.Uint64
	tsFetches  atomic.Uint64
	versions   atomic.Uint64
	collected  atomic.Uint64
}

var _ engine.Engine = (*Engine)(nil)

// New creates an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("hekaton: need at least one worker")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1 << 20
	}
	e := &Engine{
		cfg: cfg,
		idx: storage.NewMap[chain](cfg.Capacity),
		dir: storage.NewDirectory(),
		// 8x headroom so several concurrent ExecuteBatch calls can all
		// register their in-flight transactions.
		active: make([]atomic.Uint64, 8*cfg.Workers),
	}
	e.counter.Store(1) // loaded versions have begin timestamp 1
	return e, nil
}

// Load implements engine.Engine.
func (e *Engine) Load(k txn.Key, v []byte) error {
	data := make([]byte, len(v))
	copy(data, v)
	ch := &chain{}
	ch.head.Store(newLoadedVersion(data))
	_, ok, err := e.idx.Insert(k, ch)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("hekaton: duplicate load of key %+v", k)
	}
	e.dir.Insert(k)
	return nil
}

// Close implements engine.Engine; there is no background work.
func (e *Engine) Close() {}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{
		Committed:         e.committed.Load(),
		UserAborts:        e.userAborts.Load(),
		CCAborts:          e.ccAborts.Load(),
		TimestampFetches:  e.tsFetches.Load(),
		VersionsCreated:   e.versions.Load(),
		VersionsCollected: e.collected.Load(),
	}
}

// nextTS atomically fetches the next timestamp from the global counter.
func (e *Engine) nextTS() uint64 {
	e.tsFetches.Add(1)
	return e.counter.Add(1)
}

// minActive returns the smallest begin timestamp of any in-flight
// transaction, or the current counter value if none are active. If any
// transaction is running unregistered (slot exhaustion), it returns 0 so
// nothing is trimmed.
func (e *Engine) minActive() uint64 {
	if e.slotless.Load() > 0 {
		return 0
	}
	min := e.counter.Load()
	for i := range e.active {
		if ts := e.active[i].Load(); ts != 0 && ts < min {
			min = ts
		}
	}
	return min
}

// claimSlot registers beginTS in a free active slot, returning its index
// or -1 (counted in slotless) when all slots are busy.
func (e *Engine) claimSlot(beginTS uint64) int {
	for i := range e.active {
		if e.active[i].Load() == 0 && e.active[i].CompareAndSwap(0, beginTS) {
			return i
		}
	}
	e.slotless.Add(1)
	return -1
}

// releaseSlot frees a slot claimed by claimSlot.
func (e *Engine) releaseSlot(slot int) {
	if slot < 0 {
		e.slotless.Add(-1)
		return
	}
	e.active[slot].Store(0)
}

// ExecuteBatch implements engine.Engine.
func (e *Engine) ExecuteBatch(ts []txn.Txn) []error {
	res := make([]error, len(ts))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := e.cfg.Workers
	if workers > len(ts) {
		workers = len(ts)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ts) {
					return
				}
				res[i] = e.runWithRetry(ts[i])
			}
		}()
	}
	wg.Wait()
	return res
}

// runWithRetry executes t until commit or user abort, retrying
// concurrency-control aborts (the paper's configuration, §4).
func (e *Engine) runWithRetry(t txn.Txn) error {
	for attempt := 0; ; attempt++ {
		err := e.runOnce(t)
		if err != errConflict {
			if err != nil {
				e.userAborts.Add(1)
			} else {
				e.committed.Add(1)
			}
			return err
		}
		e.ccAborts.Add(1)
		if e.cfg.MaxRetries > 0 && attempt+1 >= e.cfg.MaxRetries {
			e.userAborts.Add(1)
			return ErrTooManyRetries
		}
		runtime.Gosched()
	}
}

// runOnce performs one attempt of t's logic plus the commit protocol.
func (e *Engine) runOnce(t txn.Txn) error {
	r := &hTxn{beginTS: e.nextTS()}
	slot := e.claimSlot(r.beginTS)
	defer e.releaseSlot(slot)

	c := &hCtx{e: e, r: r, writes: t.WriteSet()}
	err := txn.RunSafely(t, c)
	if c.conflict {
		e.abort(r)
		return errConflict
	}
	if err == nil && c.writeErr != nil {
		err = c.writeErr
	}
	if err != nil {
		e.abort(r)
		if r.cascade.Load() {
			// A speculative read fed the logic data from a transaction
			// that aborted; the user error is not trustworthy. Retry.
			return errConflict
		}
		return err
	}
	return e.commit(r)
}

// commit runs the commit protocol: acquire the end timestamp, validate
// reads (Serializable), wait out commit dependencies, then finalize all
// written and claimed versions.
func (e *Engine) commit(r *hTxn) error {
	r.endTS = e.nextTS()
	r.state.Store(txPreparing)

	if e.cfg.Level == Serializable {
		if !e.validate(r) {
			e.abort(r)
			return errConflict
		}
	}

	// Wait for the preparing transactions we speculatively read from.
	for spins := 0; r.depCount.Load() > 0; spins++ {
		if r.cascade.Load() {
			break
		}
		if spins > 256 {
			time.Sleep(5 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	if r.cascade.Load() {
		e.abort(r)
		return errConflict
	}

	r.state.Store(txCommitted)
	for _, v := range r.written {
		v.begin.Store(r.endTS)
		v.writer.Store(nil)
	}
	for _, v := range r.claimed {
		v.end.Store(r.endTS)
		v.endTxn.Store(nil)
	}
	for _, ch := range r.chains {
		ch.insertClaim.Store(nil)
	}
	r.releaseDependents(false)

	if e.cfg.TrimChains {
		e.trim(r)
	}
	r.reads = nil
	return nil
}

// abort rolls back every effect of r: pushed versions are unlinked where
// possible (and remain skippable garbage otherwise), claims are released,
// and dependents cascade.
func (e *Engine) abort(r *hTxn) {
	r.state.Store(txAborted)
	for i := len(r.written) - 1; i >= 0; i-- {
		v := r.written[i]
		if ch := v.owner; ch != nil {
			ch.head.CompareAndSwap(v, v.prev.Load())
		}
	}
	for _, v := range r.claimed {
		v.endTxn.CompareAndSwap(r, nil)
	}
	for _, ch := range r.chains {
		ch.insertClaim.CompareAndSwap(r, nil)
	}
	r.releaseDependents(true)
	r.reads = nil
}

// trim unlinks versions invisible to every active and future transaction:
// once a committed version's begin timestamp is at or below the oldest
// active begin timestamp, nothing older on its chain can ever be read.
func (e *Engine) trim(r *hTxn) {
	oldest := e.minActive()
	for _, v := range r.claimed {
		// v is the version r superseded. Find the newest version at or
		// below the horizon and cut below it.
		for w := v; w != nil; w = w.prev.Load() {
			b := w.begin.Load()
			if b == 0 || b > oldest {
				continue
			}
			n := 0
			for x := w.prev.Load(); x != nil; x = x.prev.Load() {
				n++
			}
			if n > 0 {
				w.prev.Store(nil)
				e.collected.Add(uint64(n))
			}
			break
		}
	}
}
