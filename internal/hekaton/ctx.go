package hekaton

import (
	"fmt"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// hCtx implements txn.Ctx for one execution attempt. Reads record entries
// for validation; writes install in-flight versions immediately (visible
// only through the commit-dependency rules), per Larson et al.
type hCtx struct {
	e      *Engine
	r      *hTxn
	writes []txn.Key
	// conflict poisons the attempt on a first-writer-wins conflict even
	// if the transaction body swallows the returned error.
	conflict bool
	writeErr error
}

var _ txn.Ctx = (*hCtx)(nil)

// Read implements txn.Ctx: it returns the value visible at the
// transaction's begin timestamp (own writes included) and records the
// observation for serializable validation.
func (c *hCtx) Read(k txn.Key) ([]byte, error) {
	ch := c.e.idx.Get(k)
	if ch == nil {
		c.r.reads = append(c.r.reads, hReadEntry{k: k})
		return nil, txn.ErrNotFound
	}
	v := c.e.visible(ch, c.r.beginTS, c.r, false)
	c.r.reads = append(c.r.reads, hReadEntry{ch: ch, k: k, v: v})
	if v == nil || v.tomb {
		return nil, txn.ErrNotFound
	}
	return v.data, nil
}

// ReadRange implements txn.Ctx: it walks the ordered directory over r and
// applies the usual visibility rules to each key's chain at the begin
// timestamp. Own in-flight writes are installed in the chains (and the
// directory) immediately, so a transaction's scans see its own inserts
// without any overlay. Every examined key is recorded as a read entry for
// serializable validation, and the range itself is recorded so validation
// can rescan it for phantoms (keys that gained a visible version between
// begin and end timestamps).
func (c *hCtx) ReadRange(r txn.KeyRange, fn func(k txn.Key, v []byte) error) error {
	if r.Empty() {
		return nil
	}
	sc := hScanEntry{r: r}
	var ferr error
	c.e.dir.AscendRange(r, func(k txn.Key) bool {
		ch := c.e.idx.Get(k)
		if ch == nil {
			return true // directory entry racing the chain insert; no version yet
		}
		v := c.e.visible(ch, c.r.beginTS, c.r, false)
		c.r.reads = append(c.r.reads, hReadEntry{ch: ch, k: k, v: v})
		sc.keys = append(sc.keys, k)
		if v == nil || v.tomb {
			return true
		}
		if err := fn(k, v.data); err != nil {
			ferr = err
			return false
		}
		return true
	})
	c.r.scans = append(c.r.scans, sc)
	return ferr
}

// Write implements txn.Ctx.
func (c *hCtx) Write(k txn.Key, v []byte) error { return c.install(k, v, false) }

// Delete implements txn.Ctx.
func (c *hCtx) Delete(k txn.Key) error { return c.install(k, nil, true) }

// install pushes an in-flight version for k, claiming the predecessor's
// end field (first-writer-wins: a predecessor already claimed or
// concurrently superseded aborts this transaction).
func (c *hCtx) install(k txn.Key, val []byte, tomb bool) error {
	if !txn.ContainsLinear(c.writes, k) {
		err := fmt.Errorf("hekaton: write to key %+v outside declared write-set", k)
		if c.writeErr == nil {
			c.writeErr = err
		}
		return err
	}
	ch, created, err := c.e.idx.GetOrInsert(k, func() *chain { return &chain{} })
	if err != nil {
		if c.writeErr == nil {
			c.writeErr = err
		}
		return err
	}
	if created {
		// Register first-ever keys in the ordered directory immediately —
		// before the version is even installed — so a concurrent
		// serializable scanner's commit-time rescan can see the insert
		// and abort. Aborted inserts leave a harmless directory entry
		// with no visible version, like the insert-only hash index.
		c.e.dir.Insert(k)
	}

	// Repeated write by the same transaction: update the in-flight
	// version in place (it is visible only to us).
	if head := ch.head.Load(); head != nil && head.writer.Load() == c.r {
		head.data = val
		head.tomb = tomb
		return nil
	}

	target := c.claimTarget(ch)
	if target == nil && !c.conflict {
		// Inserting the record's first (live) version: serialize against
		// concurrent inserters with the chain-level claim.
		if !ch.insertClaim.CompareAndSwap(nil, c.r) {
			c.conflict = true
		} else {
			c.r.chains = append(c.r.chains, ch)
		}
	}
	if c.conflict {
		return errConflict
	}
	if target != nil {
		if !target.endTxn.CompareAndSwap(nil, c.r) {
			c.conflict = true
			return errConflict
		}
		c.r.claimed = append(c.r.claimed, target)
	}

	nv := &version{owner: ch, data: val, tomb: tomb}
	nv.end.Store(storage.TsInfinity)
	nv.writer.Store(c.r)
	nv.prev.Store(ch.head.Load())
	ch.head.Store(nv)
	c.r.written = append(c.r.written, nv)
	c.e.versions.Add(1)
	return nil
}

// claimTarget finds the committed version whose end field must be claimed
// to supersede the record: the newest committed version with infinite end.
// It sets c.conflict when the record is being written by another in-flight
// transaction or was superseded by a transaction concurrent with us.
func (c *hCtx) claimTarget(ch *chain) *version {
	for v := ch.head.Load(); v != nil; v = v.prev.Load() {
		b := v.begin.Load()
		if b == 0 {
			w := v.writer.Load()
			if w == nil {
				// Finalized between the two loads; re-read the begin
				// field, which is now committed.
				b = v.begin.Load()
			} else if w == c.r {
				// Own in-flight version below the head is impossible
				// while we hold the predecessor claim; treat it as a
				// conflict defensively.
				c.conflict = true
				return nil
			} else if w.state.Load() == txAborted {
				continue // skippable garbage
			} else {
				// Another transaction is writing this record right now:
				// first-writer-wins.
				c.conflict = true
				return nil
			}
		}
		if b > c.r.beginTS {
			// Superseding version committed after we began: write-write
			// conflict with a concurrent transaction.
			c.conflict = true
			return nil
		}
		if v.end.Load() != storage.TsInfinity {
			// Already superseded by a committed transaction; with
			// b <= beginTS handled above this means our snapshot is
			// stale for writing.
			c.conflict = true
			return nil
		}
		if claimer := v.endTxn.Load(); claimer != nil && claimer != c.r {
			c.conflict = true
			return nil
		}
		return v
	}
	return nil
}
