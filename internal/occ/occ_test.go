package occ

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bohm/internal/txn"
)

func key(id uint64) txn.Key { return txn.Key{Table: 0, ID: id} }

func newEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Capacity = 1 << 12
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func load(t *testing.T, e *Engine, n int, val uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := e.Load(key(uint64(i)), txn.NewValue(8, val)); err != nil {
			t.Fatal(err)
		}
	}
}

func incTxn(ids ...uint64) txn.Txn {
	ks := make([]txn.Key, len(ids))
	for i, id := range ids {
		ks[i] = key(id)
	}
	return &txn.Proc{
		Reads:  ks,
		Writes: ks,
		Body: func(ctx txn.Ctx) error {
			for _, k := range ks {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				if err := ctx.Write(k, txn.Incremented(v, 1)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func readVal(t *testing.T, e *Engine, id uint64) (uint64, error) {
	t.Helper()
	var got uint64
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads: []txn.Key{key(id)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(id))
			if err != nil {
				return err
			}
			got = txn.U64(v)
			return nil
		},
	}})
	return got, res[0]
}

func TestHotKeyNoLostUpdates(t *testing.T) {
	e := newEngine(t, 4)
	load(t, e, 1, 0)
	const n = 500
	ts := make([]txn.Txn, n)
	for i := range ts {
		ts[i] = incTxn(0)
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	got, err := readVal(t, e, 0)
	if err != nil || got != n {
		t.Fatalf("value = %d (%v), want %d", got, err, n)
	}
}

// rendezvousTxn reads, waits at a barrier, then applies — forcing two
// transactions to overlap.
type rendezvousTxn struct {
	reads, writes []txn.Key
	barrier       *sync.WaitGroup
	apply         func(ctx txn.Ctx, vals map[txn.Key]uint64) error
	once          sync.Once
}

func (r *rendezvousTxn) ReadSet() []txn.Key       { return r.reads }
func (r *rendezvousTxn) WriteSet() []txn.Key      { return r.writes }
func (r *rendezvousTxn) RangeSet() []txn.KeyRange { return nil }
func (r *rendezvousTxn) Run(ctx txn.Ctx) error {
	vals := map[txn.Key]uint64{}
	for _, k := range r.reads {
		v, err := ctx.Read(k)
		if err != nil {
			return err
		}
		vals[k] = txn.U64(v)
	}
	r.once.Do(func() {
		r.barrier.Done()
		done := make(chan struct{})
		go func() { defer close(done); r.barrier.Wait() }()
		select {
		case <-done:
		case <-time.After(time.Second):
		}
	})
	return r.apply(ctx, vals)
}

// TestValidationCatchesConflictingRead: T1 reads x and writes y while T2
// overwrites x concurrently. T1's read validation must fail at least one
// attempt (ccAborts > 0) and the final state must be serializable.
func TestValidationCatchesConflictingRead(t *testing.T) {
	e := newEngine(t, 2)
	load(t, e, 2, 10)
	var barrier sync.WaitGroup
	barrier.Add(2)
	t1 := &rendezvousTxn{
		reads:   []txn.Key{key(0)},
		writes:  []txn.Key{key(1)},
		barrier: &barrier,
		apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
			return ctx.Write(key(1), txn.NewValue(8, vals[key(0)]*100))
		},
	}
	t2 := &rendezvousTxn{
		reads:   []txn.Key{key(0)},
		writes:  []txn.Key{key(0)},
		barrier: &barrier,
		apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
			return ctx.Write(key(0), txn.NewValue(8, vals[key(0)]+1))
		},
	}
	for i, err := range e.ExecuteBatch([]txn.Txn{t1, t2}) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	x, _ := readVal(t, e, 0)
	y, _ := readVal(t, e, 1)
	// Serial outcomes: T1;T2 → y=1000, x=11. T2;T1 → x=11, y=1100.
	if x != 11 || (y != 1000 && y != 1100) {
		t.Fatalf("non-serializable outcome x=%d y=%d", x, y)
	}
}

func TestWriteSkewRejected(t *testing.T) {
	// OCC is serializable: the write-skew pair must produce a serial
	// outcome.
	for trial := 0; trial < 10; trial++ {
		e := newEngine(t, 2)
		load(t, e, 2, 0)
		seed := []txn.Txn{
			&txn.Proc{Writes: []txn.Key{key(0)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(0), txn.NewValue(8, 1))
			}},
			&txn.Proc{Writes: []txn.Key{key(1)}, Body: func(ctx txn.Ctx) error {
				return ctx.Write(key(1), txn.NewValue(8, 2))
			}},
		}
		for _, err := range e.ExecuteBatch(seed) {
			if err != nil {
				t.Fatal(err)
			}
		}
		var barrier sync.WaitGroup
		barrier.Add(2)
		x, y := key(0), key(1)
		t1 := &rendezvousTxn{
			reads: []txn.Key{x, y}, writes: []txn.Key{x}, barrier: &barrier,
			apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
				return ctx.Write(x, txn.NewValue(8, vals[x]+vals[y]))
			},
		}
		t2 := &rendezvousTxn{
			reads: []txn.Key{x, y}, writes: []txn.Key{y}, barrier: &barrier,
			apply: func(ctx txn.Ctx, vals map[txn.Key]uint64) error {
				return ctx.Write(y, txn.NewValue(8, vals[x]+vals[y]))
			},
		}
		for i, err := range e.ExecuteBatch([]txn.Txn{t1, t2}) {
			if err != nil {
				t.Fatalf("trial %d txn %d: %v", trial, i, err)
			}
		}
		xv, _ := readVal(t, e, 0)
		yv, _ := readVal(t, e, 1)
		ok := (xv == 3 && yv == 5) || (xv == 4 && yv == 3)
		if !ok {
			t.Fatalf("trial %d: non-serializable outcome x=%d y=%d", trial, xv, yv)
		}
	}
}

func TestUserAbortNoEffect(t *testing.T) {
	e := newEngine(t, 2)
	load(t, e, 1, 5)
	boom := errors.New("boom")
	p := &txn.Proc{
		Reads:  []txn.Key{key(0)},
		Writes: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			if err := ctx.Write(key(0), txn.NewValue(8, 99)); err != nil {
				return err
			}
			return boom
		},
	}
	res := e.ExecuteBatch([]txn.Txn{p})
	if !errors.Is(res[0], boom) {
		t.Fatal(res[0])
	}
	got, _ := readVal(t, e, 0)
	if got != 5 {
		t.Fatalf("after abort = %d, want 5", got)
	}
	if s := e.Stats(); s.UserAborts != 1 {
		t.Errorf("userAborts = %d, want 1", s.UserAborts)
	}
}

func TestReadsWriteNoSharedMemory(t *testing.T) {
	// A read-only workload must not change any record TIDs (Silo's "no
	// shared-memory writes for reads" property).
	e := newEngine(t, 2)
	load(t, e, 8, 1)
	before := make([]uint64, 8)
	for i := range before {
		before[i] = e.store.Get(key(uint64(i))).TID()
	}
	ts := make([]txn.Txn, 50)
	for i := range ts {
		i := i
		ts[i] = &txn.Proc{
			Reads: []txn.Key{key(uint64(i % 8))},
			Body: func(ctx txn.Ctx) error {
				_, err := ctx.Read(key(uint64(i % 8)))
				return err
			},
		}
	}
	for _, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range before {
		if got := e.store.Get(key(uint64(i))).TID(); got != before[i] {
			t.Errorf("record %d TID changed by reads: %d → %d", i, before[i], got)
		}
	}
}

func TestScratchBufferIsolation(t *testing.T) {
	// Multiple reads in one transaction must each get stable data even
	// though the worker reuses buffers across reads.
	e := newEngine(t, 1)
	load(t, e, 3, 0)
	// Distinct values per record.
	seed := make([]txn.Txn, 3)
	for i := range seed {
		i := i
		seed[i] = &txn.Proc{Writes: []txn.Key{key(uint64(i))}, Body: func(ctx txn.Ctx) error {
			return ctx.Write(key(uint64(i)), txn.NewValue(8, uint64(i+1)*11))
		}}
	}
	for _, err := range e.ExecuteBatch(seed) {
		if err != nil {
			t.Fatal(err)
		}
	}
	var got [3]uint64
	p := &txn.Proc{
		Reads: []txn.Key{key(0), key(1), key(2)},
		Body: func(ctx txn.Ctx) error {
			var bufs [3][]byte
			for i := uint64(0); i < 3; i++ {
				v, err := ctx.Read(key(i))
				if err != nil {
					return err
				}
				bufs[i] = v
			}
			// All three must still hold their own values (no aliasing).
			for i := uint64(0); i < 3; i++ {
				got[i] = txn.U64(bufs[i])
			}
			return nil
		},
	}
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
		t.Fatal(res[0])
	}
	for i := uint64(0); i < 3; i++ {
		if got[i] != (i+1)*11 {
			t.Errorf("read %d = %d, want %d (scratch buffers aliased)", i, got[i], (i+1)*11)
		}
	}
}

func TestTransfersConserve(t *testing.T) {
	e := newEngine(t, 4)
	const nkeys = 8
	load(t, e, nkeys, 100)
	ts := make([]txn.Txn, 300)
	for i := range ts {
		a := uint64(i % nkeys)
		b := uint64((i + 1) % nkeys)
		ka, kb := key(a), key(b)
		ts[i] = &txn.Proc{
			Reads:  []txn.Key{ka, kb},
			Writes: []txn.Key{ka, kb},
			Body: func(ctx txn.Ctx) error {
				va, err := ctx.Read(ka)
				if err != nil {
					return err
				}
				vb, err := ctx.Read(kb)
				if err != nil {
					return err
				}
				if err := ctx.Write(ka, txn.NewValue(8, txn.U64(va)-1)); err != nil {
					return err
				}
				return ctx.Write(kb, txn.NewValue(8, txn.U64(vb)+1))
			},
		}
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	var sum uint64
	for i := uint64(0); i < nkeys; i++ {
		v, _ := readVal(t, e, i)
		sum += v
	}
	if sum != nkeys*100 {
		t.Fatalf("sum = %d, want %d", sum, nkeys*100)
	}
}
