// Package occ implements the paper's single-version optimistic baseline: a
// direct implementation of Silo's commit protocol (Tu et al., SOSP 2013).
// Transactions read without writing any shared memory, buffer writes in a
// worker-local buffer reused across transactions, and validate at commit
// by locking the write-set in global key order and re-checking the TIDs of
// every record read. TID assignment is decentralized: each worker derives
// the next TID from the TIDs it observed, so there is no global counter.
// Aborted transactions retry after an exponential back-off, which is what
// lets Silo degrade gracefully under write contention (§4.2.1).
//
// Range scans follow Silo's node-set validation, with the ordered key
// directory playing the B-tree node's role: a scan records the key set
// the directory returned for the range, and commit revalidates that the
// set is unchanged (the directory is insert-only, so only phantom
// inserts can invalidate it) on top of the usual per-record TID checks.
package occ

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/engine"
	"bohm/internal/storage"
	"bohm/internal/txn"
)

// Config parameterizes the OCC engine.
type Config struct {
	// Workers is the number of transaction execution threads.
	Workers int
	// Capacity sizes the record store.
	Capacity int
	// MaxBackoffSpins caps the exponential back-off after an abort.
	MaxBackoffSpins int
}

// DefaultConfig returns a small general-purpose configuration.
func DefaultConfig() Config {
	return Config{Workers: 2, Capacity: 1 << 20, MaxBackoffSpins: 1 << 12}
}

// Engine is the Silo-style OCC engine.
type Engine struct {
	cfg   Config
	store *storage.SVStore

	// dir orders every key a record has ever been created for; range
	// scans walk it and revalidate at commit that no key appeared inside
	// a scanned range since the scan (Silo's node-set validation, with
	// the directory playing the tree-node role).
	dir *storage.Directory

	committed  atomic.Uint64
	userAborts atomic.Uint64
	ccAborts   atomic.Uint64
}

// New creates an OCC engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("occ: need at least one worker")
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 1 << 20
	}
	if cfg.MaxBackoffSpins < 1 {
		cfg.MaxBackoffSpins = 1 << 12
	}
	return &Engine{cfg: cfg, store: storage.NewSVStore(cfg.Capacity), dir: storage.NewDirectory()}, nil
}

// Load implements engine.Engine.
func (e *Engine) Load(k txn.Key, v []byte) error {
	if err := e.store.Load(k, v); err != nil {
		return err
	}
	e.dir.Insert(k)
	return nil
}

// Close implements engine.Engine; the OCC engine has no background work.
func (e *Engine) Close() {}

// Stats implements engine.Engine.
func (e *Engine) Stats() engine.Stats {
	return engine.Stats{
		Committed:  e.committed.Load(),
		UserAborts: e.userAborts.Load(),
		CCAborts:   e.ccAborts.Load(),
	}
}

// errConflict signals a validation failure; the worker retries.
var errConflict = fmt.Errorf("occ: validation conflict")

// readEntry records one read for commit-time validation.
type readEntry struct {
	rec *storage.SVRecord
	tid uint64
}

// worker holds per-thread scratch state reused across transactions: the
// write buffer reuse is the cache-locality advantage the paper credits to
// OCC over multiversion systems (§4.2.1).
type worker struct {
	e       *Engine
	lastTID uint64
	reads   []readEntry
	scratch [][]byte // per-read stable copies, buffers reused across txns
	nextBuf int
}

// occScan records one range scan for commit-time revalidation: the range
// and the directory keys observed, in key order. At validation the
// directory is rescanned; any key now in the range that was not observed
// (and is not the transaction's own insert) is a phantom.
type occScan struct {
	r    txn.KeyRange
	keys []txn.Key
}

// occCtx implements txn.Ctx for one execution attempt.
type occCtx struct {
	w      *worker
	writes []txn.Key
	recs   []*storage.SVRecord
	vals   [][]byte
	del    []bool
	wrote  []bool
	scans  []occScan
}

var _ txn.Ctx = (*occCtx)(nil)

func (w *worker) newCtx(writes []txn.Key) *occCtx {
	w.reads = w.reads[:0]
	w.nextBuf = 0
	n := len(writes)
	return &occCtx{
		w:      w,
		writes: writes,
		recs:   make([]*storage.SVRecord, n),
		vals:   make([][]byte, n),
		del:    make([]bool, n),
		wrote:  make([]bool, n),
	}
}

// buf returns the worker's next reusable read buffer.
func (w *worker) buf() []byte {
	if w.nextBuf == len(w.scratch) {
		w.scratch = append(w.scratch, nil)
	}
	b := w.scratch[w.nextBuf]
	w.nextBuf++
	return b
}

// Read implements txn.Ctx: a seqlock-stable copy of the record plus a TID
// observation for commit-time validation. Reads write no shared memory.
func (c *occCtx) Read(k txn.Key) ([]byte, error) {
	for i, wk := range c.writes {
		if wk == k && c.wrote[i] {
			if c.del[i] {
				return nil, txn.ErrNotFound
			}
			return c.vals[i], nil
		}
	}
	rec := c.w.e.store.Get(k)
	if rec == nil {
		return nil, txn.ErrNotFound
	}
	slot := c.w.nextBuf
	buf, tid, deleted := rec.StableRead(c.w.buf())
	c.w.scratch[slot] = buf
	c.w.reads = append(c.w.reads, readEntry{rec: rec, tid: tid})
	if deleted {
		return nil, txn.ErrNotFound
	}
	return buf, nil
}

// ReadRange implements txn.Ctx: an ordered directory walk over r with
// seqlock-stable reads of each record, every record added to the read-set
// for TID validation and the observed key set recorded for phantom
// revalidation at commit. The transaction's own buffered writes inside r
// are overlaid (they are not in the directory until commit).
func (c *occCtx) ReadRange(r txn.KeyRange, fn func(k txn.Key, v []byte) error) error {
	if r.Empty() {
		return nil
	}
	sc := occScan{r: r}
	c.w.e.dir.AscendRange(r, func(k txn.Key) bool {
		sc.keys = append(sc.keys, k)
		return true
	})
	c.scans = append(c.scans, sc)

	own := c.stagedInRange(r)
	oi := 0
	emitOwn := func() error {
		k := own[oi]
		oi++
		for i, wk := range c.writes {
			if wk == k {
				if c.del[i] {
					return nil
				}
				return fn(k, c.vals[i])
			}
		}
		return nil
	}
	for _, k := range sc.keys {
		for oi < len(own) && own[oi].Less(k) {
			if err := emitOwn(); err != nil {
				return err
			}
		}
		if oi < len(own) && own[oi] == k {
			if err := emitOwn(); err != nil {
				return err
			}
			continue
		}
		rec := c.w.e.store.Get(k)
		if rec == nil {
			continue // directory racing the record insert; nothing to read
		}
		slot := c.w.nextBuf
		buf, tid, deleted := rec.StableRead(c.w.buf())
		c.w.scratch[slot] = buf
		c.w.reads = append(c.w.reads, readEntry{rec: rec, tid: tid})
		if deleted {
			continue
		}
		if err := fn(k, buf); err != nil {
			return err
		}
	}
	for oi < len(own) {
		if err := emitOwn(); err != nil {
			return err
		}
	}
	return nil
}

// stagedInRange returns the staged (written or deleted) keys inside r,
// sorted for the overlay merge.
func (c *occCtx) stagedInRange(r txn.KeyRange) []txn.Key {
	var ks []txn.Key
	for i, k := range c.writes {
		if c.wrote[i] && r.Contains(k) {
			ks = append(ks, k)
		}
	}
	txn.SortKeys(ks)
	return ks
}

// Write implements txn.Ctx, buffering the new value locally.
func (c *occCtx) Write(k txn.Key, v []byte) error { return c.stage(k, v, false) }

// Delete implements txn.Ctx.
func (c *occCtx) Delete(k txn.Key) error { return c.stage(k, nil, true) }

func (c *occCtx) stage(k txn.Key, v []byte, del bool) error {
	for i, wk := range c.writes {
		if wk == k {
			c.vals[i] = v
			c.del[i] = del
			c.wrote[i] = true
			return nil
		}
	}
	return fmt.Errorf("occ: write to key %+v outside declared write-set", k)
}

// commit runs Silo's three-phase commit: lock the write-set in global key
// order, validate the read-set, then install writes under a fresh TID.
func (c *occCtx) commit() error {
	type lockSlot struct {
		k   txn.Key
		idx int
	}
	slots := make([]lockSlot, 0, len(c.writes))
	for i := range c.writes {
		if c.wrote[i] {
			slots = append(slots, lockSlot{c.writes[i], i})
		}
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a].k.Less(slots[b].k) })

	// Phase 1: lock the write-set.
	locked := make([]*storage.SVRecord, 0, len(slots))
	oldTIDs := make([]uint64, 0, len(slots))
	unlockAll := func() {
		for j := len(locked) - 1; j >= 0; j-- {
			locked[j].UnlockUnchanged(oldTIDs[j])
		}
	}
	maxTID := c.w.lastTID
	for _, s := range slots {
		rec, created, err := c.w.e.store.GetOrCreate(s.k)
		if err != nil {
			unlockAll()
			return err
		}
		if created {
			// Publish the insert in the directory before validation, so
			// any scanner that validates after this point sees the new
			// key in its rescan and aborts. Our own scans skip write-set
			// keys during revalidation below.
			c.w.e.dir.Insert(s.k)
		}
		c.recs[s.idx] = rec
		t := rec.Lock()
		locked = append(locked, rec)
		oldTIDs = append(oldTIDs, t)
		if t > maxTID {
			maxTID = t
		}
	}

	// Phase 2: validate the read-set. A read is valid if the record's TID
	// is unchanged and the record is not locked by another transaction.
	for _, r := range c.w.reads {
		cur := r.rec.TID()
		if cur&storage.TIDMask != r.tid {
			unlockAll()
			return errConflict
		}
		if cur&storage.TIDLockBit != 0 && !c.ownsLock(r.rec) {
			unlockAll()
			return errConflict
		}
		if r.tid > maxTID {
			maxTID = r.tid
		}
	}

	// Phase 2½: revalidate scanned ranges against the directory. A key
	// that appeared inside a scanned range since the scan is a phantom —
	// unless it is one of our own inserts (registered in phase 1). Keys
	// that were present at scan time are covered by the TID checks above;
	// the directory is insert-only, so disappearance is impossible.
	for _, sc := range c.scans {
		ok := true
		c.w.e.dir.AscendRange(sc.r, func(k txn.Key) bool {
			if txn.Contains(sc.keys, k) || c.ownsWriteKey(k) {
				return true
			}
			ok = false
			return false
		})
		if !ok {
			unlockAll()
			return errConflict
		}
	}

	// Phase 3: install writes under the new TID.
	newTID := maxTID + 1
	c.w.lastTID = newTID
	for j, rec := range locked {
		i := slots[j].idx
		if c.del[i] {
			rec.SetDeleted()
		} else {
			rec.Set(c.vals[i])
		}
		rec.Unlock(newTID)
	}
	return nil
}

// ownsWriteKey reports whether k is one of this transaction's staged
// writes (whose phase-1 insert must not count as a phantom).
func (c *occCtx) ownsWriteKey(k txn.Key) bool {
	for i, wk := range c.writes {
		if wk == k && c.wrote[i] {
			return true
		}
	}
	return false
}

func (c *occCtx) ownsLock(rec *storage.SVRecord) bool {
	for i, r := range c.recs {
		if r == rec && c.wrote[i] {
			return true
		}
	}
	return false
}

// ExecuteBatch implements engine.Engine.
func (e *Engine) ExecuteBatch(ts []txn.Txn) []error {
	res := make([]error, len(ts))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := e.cfg.Workers
	if workers > len(ts) {
		workers = len(ts)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &worker{e: e}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ts) {
					return
				}
				res[i] = w.runWithRetry(ts[i])
			}
		}()
	}
	wg.Wait()
	return res
}

// runWithRetry executes t until it commits or aborts for a user-level
// reason, backing off exponentially after validation conflicts.
func (w *worker) runWithRetry(t txn.Txn) error {
	backoff := 4
	for {
		c := w.newCtx(t.WriteSet())
		err := txn.RunSafely(t, c)
		if err == nil {
			err = c.commit()
		}
		switch err {
		case nil:
			w.e.committed.Add(1)
			return nil
		case errConflict:
			w.e.ccAborts.Add(1)
			for i := 0; i < backoff; i++ {
				if i%256 == 255 {
					runtime.Gosched()
				}
			}
			if backoff >= 1024 {
				// Long back-offs park the thread so contended peers run.
				time.Sleep(time.Duration(backoff/1024) * time.Microsecond)
			}
			runtime.Gosched()
			if backoff < w.e.cfg.MaxBackoffSpins {
				backoff *= 2
			}
		default:
			w.e.userAborts.Add(1)
			return err
		}
	}
}
