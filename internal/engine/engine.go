// Package engine defines the interface every concurrency control engine in
// this repository implements, plus the statistics snapshot they report.
// The benchmark harness and the public facade program against this
// interface, so BOHM and the four baselines (Hekaton, SI, OCC, 2PL) are
// interchangeable.
package engine

import "bohm/internal/txn"

// Engine is a transaction processing engine over an in-memory store.
//
// Load populates the database before transaction processing starts; it is
// not safe to call concurrently with ExecuteBatch. ExecuteBatch submits a
// set of transactions and blocks until all of them have committed or
// aborted, returning one error slot per transaction (nil = committed).
// Engines with internal retry (the optimistic ones) retry concurrency-
// control-induced aborts internally and only surface user aborts.
type Engine interface {
	Load(k txn.Key, v []byte) error
	ExecuteBatch(ts []txn.Txn) []error
	Stats() Stats
	Close()
}

// Stats is a point-in-time snapshot of an engine's counters. Fields not
// meaningful for a given engine are zero.
type Stats struct {
	// Committed counts transactions that committed.
	Committed uint64
	// UserAborts counts transactions whose logic returned an error.
	UserAborts uint64
	// CCAborts counts concurrency-control-induced aborts (validation
	// failures, write-write conflicts). Retried executions count once per
	// abort.
	CCAborts uint64
	// VersionsCreated counts multiversion placeholder/version allocations.
	VersionsCreated uint64
	// VersionsCollected counts versions reclaimed by garbage collection.
	VersionsCollected uint64
	// ReadRefHits counts reads served through BOHM's read-reference
	// annotation without traversing the version chain.
	ReadRefHits uint64
	// RangeRefHits counts range-scan entries served through BOHM's
	// CC-time range annotation: the version was resolved directly, with
	// no chain traversal.
	RangeRefHits uint64
	// ChainSteps counts version-chain hops performed by reads.
	ChainSteps uint64
	// Requeues counts BOHM executions suspended because a read dependency
	// was being produced by another thread.
	Requeues uint64
	// RecursiveExecs counts transactions executed by a thread other than
	// the one responsible for them (BOHM's cooperative execution).
	RecursiveExecs uint64
	// Batches counts concurrency-control batches processed.
	Batches uint64
	// ArenaBatchesRecycled counts batch objects (node slabs plus their
	// slice arenas) recycled through BOHM's watermark-gated retire ring
	// instead of being handed to the runtime's garbage collector.
	ArenaBatchesRecycled uint64
	// VersionsPooled counts placeholder versions served from a partition's
	// recycled-version free list rather than freshly allocated.
	VersionsPooled uint64
	// BytesRecycled estimates the bytes of engine memory reused through
	// pooling (node slabs, arena windows, recycled version structs).
	BytesRecycled uint64
	// RangeFenceSkips counts partition range walks skipped because the
	// partition directory's min/max key fence excluded the whole range.
	RangeFenceSkips uint64
	// ReadOnlyFastPath counts read-only transactions served by BOHM's
	// snapshot-read fast path — they bypassed the sequencer → CC →
	// execution pipeline entirely and read the multiversion store at the
	// execution watermark. Zero for other engines; under
	// Config.DisableReadOnlyFastPath only the inline Read API (which
	// always serves from the snapshot) still counts here.
	ReadOnlyFastPath uint64
	// KeysReaped counts dead keys fully reclaimed by BOHM's index
	// lifecycle: the newest surviving version was a tombstone below the
	// execution watermark, so the reaper unlinked the directory entry,
	// deleted the hash-index slot and retired the version chain.
	KeysReaped uint64
	// DirBytesReclaimed estimates the ordered-directory bytes (skiplist
	// nodes and towers) unlinked by reaping.
	DirBytesReclaimed uint64
	// PoolBlocksTrimmed counts block-equivalents of surplus recycled
	// versions released back to the runtime by the version pools'
	// high-watermark trim, so RSS tracks the steady-state working set
	// after a burst.
	PoolBlocksTrimmed uint64
	// ValueSlabsRecycled counts payload slabs whose carved values all
	// drained through the version-pool epoch gate and that returned to
	// their execution worker's value arena for reuse.
	ValueSlabsRecycled uint64
	// ValueSlabsTrimmed counts surplus recycled payload slabs released
	// back to the runtime by the value arenas' high-watermark trim.
	ValueSlabsTrimmed uint64
	// IdleTicks counts empty lifecycle batches a quiescent BOHM engine
	// injected to finish reclamation (see Config.DisableIdleReap).
	IdleTicks uint64
	// TimestampFetches counts atomic fetch-and-increment operations on a
	// global timestamp counter (Hekaton/SI; zero for BOHM by design).
	TimestampFetches uint64
	// LogBatches counts batches appended to the command log (BOHM with
	// durability enabled; zero otherwise).
	LogBatches uint64
	// LogBytes counts bytes appended to the command log.
	LogBytes uint64
	// LogSyncs counts fsync calls issued by the command log writer.
	LogSyncs uint64
	// LogRetries counts command-log write-hole repair attempts: a failed
	// append or fsync retained the un-durable frames, rotated to a fresh
	// segment and replayed them. Non-zero with zero client-visible errors
	// means transient storage faults were healed in place.
	LogRetries uint64
	// CheckpointRetries counts checkpoint attempts re-run after a failed
	// try (each retried attempt counts once, whatever its outcome).
	CheckpointRetries uint64
	// DegradedSince is the unix-nanosecond time the engine stepped down
	// to its degraded read-only mode after exhausting log repair; 0 while
	// fully healthy. Not a counter, but carried here so the degradation
	// is visible on any stats export.
	DegradedSince uint64
	// Checkpoints counts consistent checkpoints written.
	Checkpoints uint64
	// CheckpointFailures counts background checkpoint attempts that
	// failed (and will be retried). A growing value means the log is not
	// being truncated and version garbage collection is pinned.
	CheckpointFailures uint64
	// WorkerMigrations counts workers the adaptive governor has moved
	// across the CC/exec split (always 0 without AdaptiveWorkers).
	WorkerMigrations uint64
}

// Sub returns the element-wise difference s - o, for measuring an
// interval between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Committed:            s.Committed - o.Committed,
		UserAborts:           s.UserAborts - o.UserAborts,
		CCAborts:             s.CCAborts - o.CCAborts,
		VersionsCreated:      s.VersionsCreated - o.VersionsCreated,
		VersionsCollected:    s.VersionsCollected - o.VersionsCollected,
		ReadRefHits:          s.ReadRefHits - o.ReadRefHits,
		RangeRefHits:         s.RangeRefHits - o.RangeRefHits,
		ChainSteps:           s.ChainSteps - o.ChainSteps,
		Requeues:             s.Requeues - o.Requeues,
		RecursiveExecs:       s.RecursiveExecs - o.RecursiveExecs,
		Batches:              s.Batches - o.Batches,
		ArenaBatchesRecycled: s.ArenaBatchesRecycled - o.ArenaBatchesRecycled,
		VersionsPooled:       s.VersionsPooled - o.VersionsPooled,
		BytesRecycled:        s.BytesRecycled - o.BytesRecycled,
		RangeFenceSkips:      s.RangeFenceSkips - o.RangeFenceSkips,
		ReadOnlyFastPath:     s.ReadOnlyFastPath - o.ReadOnlyFastPath,
		KeysReaped:           s.KeysReaped - o.KeysReaped,
		DirBytesReclaimed:    s.DirBytesReclaimed - o.DirBytesReclaimed,
		PoolBlocksTrimmed:    s.PoolBlocksTrimmed - o.PoolBlocksTrimmed,
		ValueSlabsRecycled:   s.ValueSlabsRecycled - o.ValueSlabsRecycled,
		ValueSlabsTrimmed:    s.ValueSlabsTrimmed - o.ValueSlabsTrimmed,
		IdleTicks:            s.IdleTicks - o.IdleTicks,
		TimestampFetches:     s.TimestampFetches - o.TimestampFetches,
		LogBatches:           s.LogBatches - o.LogBatches,
		LogBytes:             s.LogBytes - o.LogBytes,
		LogSyncs:             s.LogSyncs - o.LogSyncs,
		LogRetries:           s.LogRetries - o.LogRetries,
		CheckpointRetries:    s.CheckpointRetries - o.CheckpointRetries,
		DegradedSince:        s.DegradedSince - o.DegradedSince,
		Checkpoints:          s.Checkpoints - o.Checkpoints,
		CheckpointFailures:   s.CheckpointFailures - o.CheckpointFailures,
		WorkerMigrations:     s.WorkerMigrations - o.WorkerMigrations,
	}
}
