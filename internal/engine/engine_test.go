package engine

import (
	"reflect"
	"testing"
)

func TestStatsSub(t *testing.T) {
	a := Stats{
		Committed: 100, UserAborts: 10, CCAborts: 5, VersionsCreated: 1000,
		VersionsCollected: 900, ReadRefHits: 50, ChainSteps: 25, Requeues: 3,
		RecursiveExecs: 2, Batches: 7, TimestampFetches: 222,
	}
	b := Stats{
		Committed: 40, UserAborts: 4, CCAborts: 1, VersionsCreated: 300,
		VersionsCollected: 200, ReadRefHits: 20, ChainSteps: 5, Requeues: 1,
		RecursiveExecs: 1, Batches: 2, TimestampFetches: 22,
	}
	d := a.Sub(b)
	want := Stats{
		Committed: 60, UserAborts: 6, CCAborts: 4, VersionsCreated: 700,
		VersionsCollected: 700, ReadRefHits: 30, ChainSteps: 20, Requeues: 2,
		RecursiveExecs: 1, Batches: 5, TimestampFetches: 200,
	}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
}

// TestStatsSubCoversAllFields protects the hand-written Sub against new
// Stats fields: every field is set to a distinct value and the reflected
// difference must come out right for each by name. A field added to Stats
// but forgotten in Sub subtracts to its raw value instead of the delta and
// fails here with the field's name.
func TestStatsSubCoversAllFields(t *testing.T) {
	var a, b Stats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	typ := av.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			t.Fatalf("Stats.%s is %s; Stats is assumed to be all uint64 counters (update Sub and this test)", f.Name, f.Type)
		}
		// Distinct per-field values so a transposed subtraction in Sub
		// cannot cancel out: a-b must equal 1000+i for field i.
		av.Field(i).SetUint(uint64(2000 + 3*i))
		bv.Field(i).SetUint(uint64(1000 + 2*i))
	}
	dv := reflect.ValueOf(a.Sub(b))
	for i := 0; i < typ.NumField(); i++ {
		if got, want := dv.Field(i).Uint(), uint64(1000+i); got != want {
			t.Errorf("Sub does not cover Stats.%s: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}
}

func TestStatsSubZero(t *testing.T) {
	var z Stats
	s := Stats{Committed: 5}
	if s.Sub(z) != s {
		t.Error("Sub of zero changed the value")
	}
	if z.Sub(z) != (Stats{}) {
		t.Error("zero minus zero not zero")
	}
}
