package engine

import "testing"

func TestStatsSub(t *testing.T) {
	a := Stats{
		Committed: 100, UserAborts: 10, CCAborts: 5, VersionsCreated: 1000,
		VersionsCollected: 900, ReadRefHits: 50, ChainSteps: 25, Requeues: 3,
		RecursiveExecs: 2, Batches: 7, TimestampFetches: 222,
	}
	b := Stats{
		Committed: 40, UserAborts: 4, CCAborts: 1, VersionsCreated: 300,
		VersionsCollected: 200, ReadRefHits: 20, ChainSteps: 5, Requeues: 1,
		RecursiveExecs: 1, Batches: 2, TimestampFetches: 22,
	}
	d := a.Sub(b)
	want := Stats{
		Committed: 60, UserAborts: 6, CCAborts: 4, VersionsCreated: 700,
		VersionsCollected: 700, ReadRefHits: 30, ChainSteps: 20, Requeues: 2,
		RecursiveExecs: 1, Batches: 5, TimestampFetches: 200,
	}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
}

func TestStatsSubZero(t *testing.T) {
	var z Stats
	s := Stats{Committed: 5}
	if s.Sub(z) != s {
		t.Error("Sub of zero changed the value")
	}
	if z.Sub(z) != (Stats{}) {
		t.Error("zero minus zero not zero")
	}
}
