package bench

import (
	"strings"
	"testing"

	"bohm/internal/txn"
	"bohm/internal/workload"
)

func TestTableFormat(t *testing.T) {
	tb := &Table{
		ID:     "figX",
		Title:  "test table",
		Param:  "threads",
		Series: []string{"A", "B"},
		Notes:  []string{"a note"},
	}
	tb.AddRow("1", 1234, 2_500_000) // 1234 renders as 1.2k
	tb.AddRow("40", 999, 0)
	out := tb.Format()
	for _, want := range []string{"figX", "test table", "threads", "A", "B", "1.2k", "2.50M", "999", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	// Zero throughput renders as a dash.
	if !strings.Contains(out, "-") {
		t.Errorf("zero throughput not dashed:\n%s", out)
	}
}

func TestFormatTput(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "-"},
		{-5, "-"},
		{500, "500"},
		{1500, "1.5k"},
		{2_000_000, "2.00M"},
	}
	for _, c := range cases {
		if got := formatTput(c.v); got != c.want {
			t.Errorf("formatTput(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize(Bohm)
	if o.Txns < 1 || o.WarmupTxns < 1 || o.Streams < 2 || o.Chunk < 1 {
		t.Errorf("Bohm defaults: %+v", o)
	}
	o = Options{}.normalize(OCC)
	if o.Streams != 1 {
		t.Errorf("OCC streams = %d, want 1", o.Streams)
	}
	o = Options{WarmupTxns: -1}.normalize(OCC)
	if o.WarmupTxns != -1 {
		t.Error("explicit no-warmup overridden")
	}
}

func TestMakeEngineAllKinds(t *testing.T) {
	for _, kind := range AllEngines {
		e, err := MakeEngine(kind, 2, 128)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := e.Load(txn.Key{ID: 1}, txn.NewValue(8, 0)); err != nil {
			t.Fatalf("%s load: %v", kind, err)
		}
		res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
			Reads: []txn.Key{{ID: 1}},
			Body: func(ctx txn.Ctx) error {
				_, err := ctx.Read(txn.Key{ID: 1})
				return err
			},
		}})
		if res[0] != nil {
			t.Fatalf("%s exec: %v", kind, res[0])
		}
		e.Close()
	}
	if _, err := MakeEngine("nope", 2, 128); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMakeEngineSingleThread(t *testing.T) {
	// threads=1 must still give BOHM one CC and one exec worker.
	e, err := MakeEngine(Bohm, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Load(txn.Key{ID: 1}, txn.NewValue(8, 0)); err != nil {
		t.Fatal(err)
	}
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads:  []txn.Key{{ID: 1}},
		Writes: []txn.Key{{ID: 1}},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(txn.Key{ID: 1})
			if err != nil {
				return err
			}
			return ctx.Write(txn.Key{ID: 1}, txn.Incremented(v, 1))
		},
	}})
	if res[0] != nil {
		t.Fatal(res[0])
	}
}

func TestRunMeasuresThroughput(t *testing.T) {
	y := workload.YCSB{Records: 256, RecordSize: 16}
	for _, kind := range []EngineKind{Bohm, TwoPL} {
		e, err := MakeEngine(kind, 2, 256)
		if err != nil {
			t.Fatal(err)
		}
		if err := y.LoadInto(e); err != nil {
			t.Fatal(err)
		}
		r := Run(kind, e, Options{Txns: 500, WarmupTxns: 50, Chunk: 64},
			func(stream int) func() txn.Txn {
				src := y.NewSource(int64(stream+1), 0)
				return func() txn.Txn { return src.RMW10() }
			})
		e.Close()
		if r.Stats.Committed != 500 {
			t.Errorf("%s: committed = %d, want 500", kind, r.Stats.Committed)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: throughput = %v", kind, r.Throughput)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, ex := range Experiments {
		if ex.ID == "" || ex.Run == nil || ex.Title == "" {
			t.Errorf("incomplete experiment %+v", ex)
		}
		if seen[ex.ID] {
			t.Errorf("duplicate experiment id %s", ex.ID)
		}
		seen[ex.ID] = true
		got, ok := ExperimentByID(ex.ID)
		if !ok || got.ID != ex.ID {
			t.Errorf("ExperimentByID(%s) failed", ex.ID)
		}
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if !seen[id] {
			t.Errorf("missing experiment %s (paper figure)", id)
		}
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown id found")
	}
}

// TestTinyExperimentEndToEnd runs a micro-scaled fig10 and fig4 to keep
// the whole experiment pipeline wired.
func TestTinyExperimentEndToEnd(t *testing.T) {
	s := Quick
	s.Records = 512
	s.RecordSize = 16
	s.Txns = 200
	s.Threads = []int{2}
	s.MaxThreads = 2
	s.Thetas = []float64{0, 0.9}
	s.ScanSize = 50
	s.ReadOnlyPct = []int{0, 10}
	s.Fig4CC = []int{1}
	s.Fig4Exec = []int{1}
	s.SBCustomersHigh = 10
	s.SBCustomersLow = 100

	ids := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation-readrefs", "ablation-gc", "ablation-batch", "ablation-preprocess"}
	if testing.Short() {
		ids = []string{"fig4", "fig10", "fig8"}
	}
	var exps []Experiment
	for _, id := range ids {
		exps = append(exps, mustExperiment(t, id))
	}
	for _, ex := range exps {
		tables := ex.Run(s)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", ex.ID)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s table %s has no rows", ex.ID, tb.ID)
			}
			for _, row := range tb.Rows {
				for i, v := range row.Values {
					if v <= 0 {
						t.Errorf("%s %s row %s col %d: throughput %v", ex.ID, tb.ID, row.Label, i, v)
					}
				}
			}
			_ = tb.Format()
		}
	}
}

// TestTinyScalability runs the scalability sweep at micro scale. It is
// separate from TestTinyExperimentEndToEnd because its latency and stage
// tables legitimately contain zero cells (a single-CC-worker barrier wait
// is exactly 0ns), which that test's all-positive throughput check
// rejects.
func TestTinyScalability(t *testing.T) {
	s := Quick
	s.Records = 512
	s.RecordSize = 16
	s.Txns = 300
	s.ScaleProcs = []int{2}
	s.ScaleThetas = []float64{0}

	StartCollecting()
	tables := Scalability(s)
	runs := CollectedRuns()

	byID := map[string]*Table{}
	for _, tb := range tables {
		byID[tb.ID] = tb
	}
	for _, id := range []string{"scale-theta0.00", "scale-latency", "scale-split", "scale-stages", "scale-obs"} {
		if byID[id] == nil {
			t.Fatalf("missing table %s (have %v)", id, len(tables))
		}
	}
	tput := byID["scale-theta0.00"]
	if len(tput.Rows) != 1 || len(tput.Rows[0].Values) != len(AllEngines) {
		t.Fatalf("throughput table shape: %+v", tput.Rows)
	}
	for i, v := range tput.Rows[0].Values {
		if v <= 0 {
			t.Errorf("engine %s throughput %v", tput.Series[i], v)
		}
	}
	if got := len(byID["scale-latency"].Rows); got != len(AllEngines) {
		t.Errorf("latency rows = %d, want %d", got, len(AllEngines))
	}
	if len(byID["scale-stages"].Rows) == 0 {
		t.Error("stage breakdown empty")
	}
	if got := len(byID["scale-obs"].Rows); got != 2 {
		t.Errorf("obs ablation rows = %d, want 2", got)
	}
	// Every sweep run carries a label so BENCH_scale.json rows are
	// identifiable without table positions.
	labeled := 0
	for _, r := range runs {
		if r.Label != "" {
			labeled++
		}
	}
	if labeled != len(runs) || len(runs) == 0 {
		t.Errorf("labeled runs = %d of %d", labeled, len(runs))
	}
}

func mustExperiment(t *testing.T, id string) Experiment {
	t.Helper()
	ex, ok := ExperimentByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	return ex
}

func TestRunReportsLatencyPercentiles(t *testing.T) {
	y := workload.YCSB{Records: 128, RecordSize: 16}
	e, err := MakeEngine(TwoPL, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		t.Fatal(err)
	}
	r := Run(TwoPL, e, Options{Txns: 400, WarmupTxns: -1, Chunk: 50},
		func(stream int) func() txn.Txn {
			src := y.NewSource(9, 0)
			return func() txn.Txn { return src.RMW10() }
		})
	if r.P50 <= 0 || r.P99 < r.P50 || r.P999 < r.P99 || r.Max < r.P999 {
		t.Errorf("latency percentiles not ordered: p50=%v p99=%v p999=%v max=%v",
			r.P50, r.P99, r.P999, r.Max)
	}
}

// TestTinyServerSweep runs the network front-end experiment at micro
// scale: two connections, two depths plus the no-grouping ablation, over
// loopback. It checks table shape, positive throughput, and that every
// run carries a label for BENCH_server.json.
func TestTinyServerSweep(t *testing.T) {
	s := Quick
	s.Records = 512
	s.RecordSize = 16
	s.Txns = 300
	s.MaxThreads = 2
	s.ServerConns = []int{2}
	s.ServerDepths = []int{1, 4}

	StartCollecting()
	tables := ServerSweep(s)
	runs := CollectedRuns()

	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	tput := tables[0]
	if len(tput.Series) != 3 || len(tput.Rows) != 1 {
		t.Fatalf("throughput table shape: series=%v rows=%d", tput.Series, len(tput.Rows))
	}
	for i, v := range tput.Rows[0].Values {
		if v <= 0 {
			t.Errorf("series %s throughput %v", tput.Series[i], v)
		}
	}
	if got := len(runs); got != 3 {
		t.Fatalf("collected runs = %d, want 3", got)
	}
	for _, r := range runs {
		if r.Label == "" {
			t.Errorf("run without label: %+v", r)
		}
		if r.P99Micros < r.P50Micros {
			t.Errorf("run %s: p99 %v < p50 %v", r.Label, r.P99Micros, r.P50Micros)
		}
	}
}
