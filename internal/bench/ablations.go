package bench

import (
	"fmt"

	"bohm/internal/core"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Ablations isolate the design choices DESIGN.md calls out: the read-
// reference annotation (§3.2.3), incremental garbage collection (§3.3.2),
// and batch-granularity coordination (§3.2.4, including BatchSize=1,
// which degenerates to the per-transaction barrier the paper rejects).

// measureBohmConfig runs a given BOHM configuration on one workload point.
func measureBohmConfig(cfg core.Config, s Scale, theta float64, recordSize int,
	pick func(src *workload.YCSBSource) txn.Txn) float64 {
	y := workload.YCSB{Records: s.Records, RecordSize: recordSize}
	cfg.Capacity = s.Records
	e, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	r := Run(Bohm, e, Options{Txns: s.Txns, Procs: cfg.CCWorkers + cfg.ExecWorkers}, ycsbGen(y, theta, pick))
	return r.Throughput
}

func bohmSplit(threads int) (cc, exec int) {
	cc = threads / 2
	if cc < 1 {
		cc = 1
	}
	exec = threads - cc
	if exec < 1 {
		exec = 1
	}
	return cc, exec
}

// AblationReadRefs compares BOHM with and without read-reference
// annotation on a read-heavy mix: without annotations every read pays the
// version-chain traversal the paper attributes to conventional
// multiversion systems (§4.2.3).
func AblationReadRefs(s Scale) []*Table {
	t := &Table{
		ID:     "ablation-readrefs",
		Title:  "read-reference annotation vs chain traversal (2RMW-8R)",
		Param:  "theta",
		Series: []string{"annotated", "traversal"},
	}
	cc, exec := bohmSplit(s.MaxThreads)
	pick := func(src *workload.YCSBSource) txn.Txn { return src.RMW2Read8() }
	for _, theta := range []float64{0, 0.9} {
		on := core.Config{CCWorkers: cc, ExecWorkers: exec, BatchSize: 1024, GC: true}
		off := on
		off.DisableReadRefs = true
		t.AddRow(fmt.Sprintf("%.2f", theta),
			measureBohmConfig(on, s, theta, s.RecordSize, pick),
			measureBohmConfig(off, s, theta, s.RecordSize, pick))
	}
	return []*Table{t}
}

// AblationGC compares BOHM with and without incremental garbage
// collection under the version-churn-heavy contended 10RMW workload.
func AblationGC(s Scale) []*Table {
	t := &Table{
		ID:     "ablation-gc",
		Title:  "incremental GC on/off (10RMW, theta=0.9)",
		Param:  "config",
		Series: []string{"txns/sec"},
	}
	cc, exec := bohmSplit(s.MaxThreads)
	pick := func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }
	on := core.Config{CCWorkers: cc, ExecWorkers: exec, BatchSize: 1024, GC: true}
	off := on
	off.GC = false
	t.AddRow("gc on", measureBohmConfig(on, s, 0.9, s.RecordSize, pick))
	t.AddRow("gc off", measureBohmConfig(off, s, 0.9, s.RecordSize, pick))
	return []*Table{t}
}

// AblationPreprocess compares the base CC design (every CC worker scans
// every transaction) against the §3.2.2 pre-processing layer that
// forwards per-partition work lists.
func AblationPreprocess(s Scale) []*Table {
	t := &Table{
		ID:     "ablation-preprocess",
		Title:  "CC scan-all vs pre-processed work lists (10RMW, theta=0)",
		Param:  "config",
		Series: []string{"txns/sec"},
	}
	cc, exec := bohmSplit(s.MaxThreads)
	pick := func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }
	base := core.Config{CCWorkers: cc, ExecWorkers: exec, BatchSize: 1024, GC: true}
	pp := base
	pp.Preprocess = true
	pp.PreprocessWorkers = 2
	t.AddRow("scan-all", measureBohmConfig(base, s, 0, s.RecordSize, pick))
	t.AddRow("preprocessed", measureBohmConfig(pp, s, 0, s.RecordSize, pick))
	return []*Table{t}
}

// AblationBatch sweeps the coordination batch size; size 1 is the
// per-transaction global barrier of §3.2.4's strawman.
func AblationBatch(s Scale) []*Table {
	t := &Table{
		ID:     "ablation-batch",
		Title:  "coordination batch size (10RMW, theta=0)",
		Param:  "batch size",
		Series: []string{"txns/sec"},
	}
	cc, exec := bohmSplit(s.MaxThreads)
	pick := func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }
	for _, bs := range []int{1, 16, 128, 1024, 8192} {
		cfg := core.Config{CCWorkers: cc, ExecWorkers: exec, BatchSize: bs, GC: true}
		t.AddRow(fmt.Sprintf("%d", bs), measureBohmConfig(cfg, s, 0, s.RecordSize, pick))
	}
	return []*Table{t}
}
