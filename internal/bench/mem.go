package bench

import (
	"runtime"
	"time"

	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Mem measures the steady-state allocation profile of the transaction hot
// path: allocs/txn and bytes/txn on a single-key YCSB point-write
// workload, per engine, plus the BOHM ablation ladder — payload arena on
// (the default), DisableValueArena (installs copy to the heap instead of
// a recycled slab), and DisablePooling (no recycling at all). The
// workload side is allocation-free by construction — a fixed ring of
// pre-built transactions is resubmitted in fixed windows — so the numbers
// isolate the engines' own allocation behaviour. The committed
// BENCH_alloc.json is generated from this experiment.
func Mem(s Scale) []*Table {
	t := &Table{
		ID:    "mem",
		Title: "allocation profile, single-key point writes",
		Param: "engine",
		Series: []string{
			"allocs/txn", "B/txn", "txns/sec", "recycled B/txn",
		},
		Notes: []string{
			"allocs and bytes are process-wide runtime counters over the measured interval; the driver itself allocates nothing per transaction",
			"recycled B/txn is BOHM's estimate of memory reused through its arenas and version pools instead of reallocated",
			"Bohm installs payloads into epoch-recycled value slabs; the DisableValueArena row pays a heap copy per install, DisablePooling abandons versions and payloads to the runtime GC",
		},
	}
	for _, k := range AllEngines {
		if k == Bohm {
			// BOHM is measured by the explicit ablation ladder below;
			// MakeEngine's default would duplicate the arena-on row.
			continue
		}
		e, err := MakeEngine(k, s.MaxThreads, s.Records)
		if err != nil {
			panic(err)
		}
		t.AddRow(string(k), memPoint(k, e, s)...)
	}
	for _, v := range []struct {
		label          string
		pooling, arena bool
	}{
		{"Bohm", true, true},
		{"Bohm (DisableValueArena)", true, false},
		{"Bohm (DisablePooling)", false, false},
	} {
		cc, exec := bohmSplit(s.MaxThreads)
		cfg := core.DefaultConfig()
		cfg.CCWorkers, cfg.ExecWorkers = cc, exec
		cfg.Capacity = s.Records
		cfg.DisablePooling = !v.pooling
		cfg.DisableValueArena = !v.arena
		e, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		t.AddRow(v.label, memPoint(Bohm, e, s)...)
	}
	return []*Table{t}
}

// pointWrite is a pre-built single-key blind write; resubmitting it
// allocates nothing on the driver side.
type pointWrite struct {
	ws  []txn.Key
	val []byte
}

func (t *pointWrite) ReadSet() []txn.Key       { return nil }
func (t *pointWrite) WriteSet() []txn.Key      { return t.ws }
func (t *pointWrite) RangeSet() []txn.KeyRange { return nil }
func (t *pointWrite) Run(ctx txn.Ctx) error    { return ctx.Write(t.ws[0], t.val) }

// singleKeyWindows clamps the ring to the table (keys stay distinct
// within each window — ExecuteBatch rejects duplicate write keys per
// submission), builds one single-key transaction per slot, and slices
// the ring into submission windows. Driving the windows through
// ExecuteBatch in a loop allocates nothing per transaction on the
// caller's side, so measurements isolate the engine's own behaviour.
func singleKeyWindows(records, ring, window int, build func(k txn.Key) txn.Txn) [][]txn.Txn {
	if ring > records {
		ring = records / window * window
		if ring < window {
			ring = window
		}
	}
	txns := make([]txn.Txn, ring)
	for i := range txns {
		txns[i] = build(txn.Key{Table: workload.YCSBTable, ID: uint64(i % records)})
	}
	windows := make([][]txn.Txn, 0, ring/window)
	for i := 0; i+window <= ring; i += window {
		windows = append(windows, txns[i:i+window])
	}
	return windows
}

// PointWriteWindows pre-builds a ring of single-key blind writes over the
// first `records` YCSB ids. The alloc-budget benchmark and the mem
// experiment share this driver so they measure the same workload.
func PointWriteWindows(records, recordSize, ring, window int) [][]txn.Txn {
	val := txn.NewValue(recordSize, 7)
	return singleKeyWindows(records, ring, window, func(k txn.Key) txn.Txn {
		return &pointWrite{ws: []txn.Key{k}, val: val}
	})
}

// PointWriteCallWindows is PointWriteWindows with registry-built
// (loggable) transactions, for measuring the durability-on point-write
// allocation profile: the same blind single-key writes, expressed as
// ProcPut calls so a durable engine accepts and logs them. reg must have
// been set up with workload.RegisterYCSB.
func PointWriteCallWindows(reg *txn.Registry, records, ring, window int) [][]txn.Txn {
	return singleKeyWindows(records, ring, window, func(k txn.Key) txn.Txn {
		return reg.MustCall(workload.ProcPut, workload.EncodeKeys([]txn.Key{k}))
	})
}

// RMWWindows pre-builds a ring of single-key read-modify-write
// transactions. Unlike the blind writes above, each transaction produces
// a fresh value per execution — staged in the instance's internal scratch
// buffer, which the engine's copy-at-install contract lets it reuse — so
// driving the ring measures the whole write path including workload-side
// value production, and still allocates nothing per transaction in
// steady state.
func RMWWindows(records, recordSize, ring, window int) [][]txn.Txn {
	return singleKeyWindows(records, ring, window, func(k txn.Key) txn.Txn {
		return &workload.RMWTxn{Keys: []txn.Key{k}, Size: recordSize}
	})
}

// PointReadWindows pre-builds a ring of single-key read-only point reads
// over the first `records` YCSB ids — on BOHM these ride the snapshot
// fast path, whose target is zero allocations per read.
func PointReadWindows(records, ring, window int) [][]txn.Txn {
	return singleKeyWindows(records, ring, window, func(k txn.Key) txn.Txn {
		return &workload.ScanTxn{Keys: []txn.Key{k}}
	})
}

// memPoint loads e, warms it up, then measures allocations and throughput
// over s.Txns point writes. It closes the engine before returning so the
// next engine's measurement starts from a quiet process.
func memPoint(kind EngineKind, e engine.Engine, s Scale) []float64 {
	defer e.Close()
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}

	const window = 256
	windows := PointWriteWindows(s.Records, s.RecordSize, 4*window, window)

	feed := func(total int) {
		done := 0
		for done < total {
			for _, w := range windows {
				e.ExecuteBatch(w)
				done += len(w)
				if done >= total {
					break
				}
			}
		}
	}

	// Warm the pipeline and, for BOHM, the arenas, then measure from a
	// collected heap so the runtime counters cover only the interval.
	feed(s.Txns / 4)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	before := e.Stats()
	start := time.Now()
	feed(s.Txns)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	st := e.Stats().Sub(before)

	n := float64(s.Txns)
	res := Result{
		Txns:       s.Txns,
		Elapsed:    elapsed,
		Throughput: float64(st.Committed) / elapsed.Seconds(),
		Stats:      st,
	}
	recordRun(kind, res)
	return []float64{
		float64(m1.Mallocs-m0.Mallocs) / n,
		float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		res.Throughput,
		float64(st.BytesRecycled) / n,
	}
}
