package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Scale sizes the experiments. Paper reproduces the published
// configuration; Quick is a CI-friendly reduction that preserves each
// experiment's shape (same workloads and skew, smaller tables and runs).
type Scale struct {
	Name        string
	Records     int       // YCSB table rows (paper: 1,000,000)
	RecordSize  int       // YCSB record bytes (paper: 1,000)
	Txns        int       // measured transactions per point
	Threads     []int     // swept thread counts (paper: up to 44)
	MaxThreads  int       // thread count for fixed-thread sweeps (paper: 40)
	Thetas      []float64 // contention sweep for Figure 7
	ScanSize    int       // reads per long read-only transaction (paper: 10,000)
	ReadOnlyPct []int     // read-only mix sweep for Figure 8

	ScanMaxLen   int   // max rows per YCSB-E range scan
	ScanMixPcts  []int // range-scan percentage sweep for the scans experiment
	ScanLenSweep []int // max-scan-length sweep (annotation amortization curve)
	ReadMixPcts  []int // read-percentage sweep for the reads experiment (YCSB-B/C)

	ChurnDeadPcts []int // dead-key-fraction sweep for the churn experiment
	ChurnScanLen  int   // ids per churn range scan

	Fig4CC   []int // CC thread counts (paper: 1, 2, 4, 8)
	Fig4Exec []int // execution thread counts (paper: 1..10)

	ScaleProcs  []int     // GOMAXPROCS sweep for the scalability experiment
	ScaleThetas []float64 // zipf sweep for the scalability experiment

	SBCustomersHigh int           // SmallBank high contention (paper: 50)
	SBCustomersLow  int           // SmallBank low contention (paper: 100,000)
	SBSpin          time.Duration // per-transaction spin (paper: 50µs)

	ServerConns  []int // client connection sweep for the server experiment
	ServerDepths []int // per-connection pipeline depths for the server experiment
}

// Quick is the scaled-down configuration used by `go test -bench` and CI.
var Quick = Scale{
	Name:         "quick",
	Records:      20_000,
	RecordSize:   100,
	Txns:         4_000,
	Threads:      []int{1, 2, 4},
	MaxThreads:   4,
	Thetas:       []float64{0, 0.6, 0.9, 0.99},
	ScanSize:     1_000,
	ReadOnlyPct:  []int{0, 1, 10, 100},
	ScanMaxLen:   64,
	ScanMixPcts:  []int{50, 95, 100},
	ScanLenSweep: []int{4, 16, 64, 256},
	ReadMixPcts:  []int{50, 95, 100},

	ChurnDeadPcts: []int{0, 50, 75, 90},
	ChurnScanLen:  64,

	Fig4CC:   []int{1, 2},
	Fig4Exec: []int{1, 2, 4},

	ScaleProcs:  []int{1, 2, 4},
	ScaleThetas: []float64{0, 0.9},

	SBCustomersHigh: 50,
	SBCustomersLow:  20_000,
	SBSpin:          0,

	ServerConns:  []int{1, 4, 16, 64},
	ServerDepths: []int{1, 8, 32},
}

// Ref is the reference configuration for EXPERIMENTS.md on small hosts:
// the paper's table and record sizes with shorter runs and a thread sweep
// sized for single-digit core counts.
var Ref = Scale{
	Name:         "ref",
	Records:      100_000,
	RecordSize:   1_000,
	Txns:         20_000,
	Threads:      []int{1, 2, 4, 8},
	MaxThreads:   8,
	Thetas:       []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99},
	ScanSize:     10_000,
	ReadOnlyPct:  []int{0, 1, 10, 100},
	ScanMaxLen:   100,
	ScanMixPcts:  []int{50, 95, 100},
	ScanLenSweep: []int{10, 100, 1000},
	ReadMixPcts:  []int{0, 50, 95, 100},

	ChurnDeadPcts: []int{0, 50, 75, 90},
	ChurnScanLen:  100,

	Fig4CC:   []int{1, 2, 4},
	Fig4Exec: []int{1, 2, 4, 8},

	ScaleProcs:  []int{1, 2, 4, 8},
	ScaleThetas: []float64{0, 0.9},

	SBCustomersHigh: 50,
	SBCustomersLow:  20_000,
	SBSpin:          0,

	ServerConns:  []int{1, 4, 16, 64},
	ServerDepths: []int{1, 8, 32},
}

// Paper is the published configuration (§4). On hardware smaller than the
// paper's 40-core machine the absolute numbers shrink but the relative
// shapes remain.
var Paper = Scale{
	Name:         "paper",
	Records:      1_000_000,
	RecordSize:   1_000,
	Txns:         100_000,
	Threads:      []int{4, 8, 12, 16, 20, 24, 28, 32, 36, 40},
	MaxThreads:   40,
	Thetas:       []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99},
	ScanSize:     10_000,
	ReadOnlyPct:  []int{0, 1, 10, 100},
	ScanMaxLen:   100,
	ScanMixPcts:  []int{50, 95, 100},
	ScanLenSweep: []int{10, 100, 1000, 10000},
	ReadMixPcts:  []int{0, 50, 95, 100},

	ChurnDeadPcts: []int{0, 50, 75, 90},
	ChurnScanLen:  100,

	Fig4CC:   []int{1, 2, 4, 8},
	Fig4Exec: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},

	ScaleProcs:  []int{4, 8, 16, 24, 32, 40},
	ScaleThetas: []float64{0, 0.9, 0.99},

	SBCustomersHigh: 50,
	SBCustomersLow:  100_000,
	SBSpin:          50 * time.Microsecond,

	ServerConns:  []int{1, 8, 64, 256},
	ServerDepths: []int{1, 16, 64},
}

// Experiment binds an experiment id to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) []*Table
}

// Experiments lists every reproducible figure and table plus the design
// ablations; ids match DESIGN.md's experiment index.
var Experiments = []Experiment{
	{"fig4", "Concurrency control / execution module interaction", Fig4},
	{"fig5", "YCSB 10RMW throughput (high and low contention)", Fig5},
	{"fig6", "YCSB 2RMW-8R throughput (high and low contention)", Fig6},
	{"fig7", "YCSB 2RMW-8R throughput varying contention", Fig7},
	{"fig8", "YCSB throughput with long read-only transactions", Fig8},
	{"fig9", "YCSB throughput at 1% long read-only transactions", Fig9},
	{"fig10", "SmallBank throughput (high and low contention)", Fig10},
	{"scans", "YCSB-E range-scan mix (zipfian start keys, 5-50% inserts)", Scans},
	{"churn", "insert+delete+scan churn: index lifecycle vs insert-only directories", Churn},
	{"reads", "YCSB-B/C read-heavy mix (snapshot fast path vs pipeline)", Reads},
	{"mem", "allocation profile of the transaction hot path (allocs/txn, B/txn)", Mem},
	{"scalability", "GOMAXPROCS x worker x zipf core sweep with per-stage latency breakdown", Scalability},
	{"ablation-readrefs", "BOHM read-reference annotation on/off", AblationReadRefs},
	{"ablation-gc", "BOHM garbage collection on/off", AblationGC},
	{"ablation-batch", "BOHM batch size sweep (barrier amortization)", AblationBatch},
	{"ablation-preprocess", "BOHM pre-processing layer on/off", AblationPreprocess},
	{"durability", "BOHM command logging overhead (sync policy sweep)", AblationDurability},
	{"server", "network front-end: loopback conns x pipeline-depth sweep vs no-grouping ablation", ServerSweep},
}

// ExperimentByID returns the experiment with the given id.
func ExperimentByID(id string) (Experiment, bool) {
	for _, ex := range Experiments {
		if ex.ID == id {
			return ex, true
		}
	}
	return Experiment{}, false
}

// hostNote records the hardware caveat attached to thread-sweep tables:
// when the host has fewer cores than the simulated thread count, threads
// are emulated by GOMAXPROCS oversubscription, which preserves contention
// behaviour (aborts, blocking, counter contention) but not parallel
// speedup — rising thread counts add scheduling overhead instead.
func hostNote() string {
	return fmt.Sprintf("host has %d CPU core(s); thread counts above that are emulated by oversubscription (no parallel speedup)", runtime.NumCPU())
}

// ycsbGen returns a per-stream generator for the given transaction shape.
func ycsbGen(y workload.YCSB, theta float64, pick func(src *workload.YCSBSource) txn.Txn) func(stream int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := y.NewSource(int64(1000+stream*7919), theta)
		return func() txn.Txn { return pick(src) }
	}
}

// measureYCSB builds an engine, loads the YCSB table, and measures one
// point.
func measureYCSB(kind EngineKind, threads int, s Scale, theta float64, txns int,
	pick func(src *workload.YCSBSource) txn.Txn) float64 {
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	e, err := MakeEngine(kind, threads, s.Records)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	r := Run(kind, e, Options{Txns: txns, Procs: threads}, ycsbGen(y, theta, pick))
	return r.Throughput
}

// Fig4 reproduces Figure 4: BOHM alone on short uniform 10RMW
// transactions over 8-byte records, sweeping execution threads (rows)
// against concurrency control threads (series). Throughput rises with
// execution threads until the CC layer saturates, and the plateau rises
// with more CC threads.
func Fig4(s Scale) []*Table {
	t := &Table{
		ID:    "fig4",
		Title: "CC/execution interaction, 10RMW uniform, 8-byte records",
		Param: "exec threads",
		Notes: []string{hostNote()},
	}
	for _, cc := range s.Fig4CC {
		t.Series = append(t.Series, fmt.Sprintf("cc=%d", cc))
	}
	y := workload.YCSB{Records: s.Records, RecordSize: 8}
	for _, ex := range s.Fig4Exec {
		var vals []float64
		for _, cc := range s.Fig4CC {
			e, err := MakeBohm(cc, ex, s.Records)
			if err != nil {
				panic(err)
			}
			if err := y.LoadInto(e); err != nil {
				panic(err)
			}
			r := Run(Bohm, e, Options{Txns: s.Txns, Procs: cc + ex},
				ycsbGen(y, 0, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }))
			e.Close()
			vals = append(vals, r.Throughput)
		}
		t.AddRow(fmt.Sprintf("%d", ex), vals...)
	}
	return []*Table{t}
}

// contentionSweep runs one YCSB transaction shape over the thread sweep at
// the given theta, one series per engine.
func contentionSweep(id, title string, s Scale, theta float64,
	pick func(src *workload.YCSBSource) txn.Txn) *Table {
	t := &Table{ID: id, Title: title, Param: "threads", Notes: []string{hostNote()}}
	for _, k := range AllEngines {
		t.Series = append(t.Series, string(k))
	}
	for _, th := range s.Threads {
		var vals []float64
		for _, k := range AllEngines {
			vals = append(vals, measureYCSB(k, th, s, theta, s.Txns, pick))
		}
		t.AddRow(fmt.Sprintf("%d", th), vals...)
	}
	return t
}

// Fig5 reproduces Figure 5: the 10RMW workload under high (theta 0.9) and
// low (theta 0) contention.
func Fig5(s Scale) []*Table {
	pick := func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }
	return []*Table{
		contentionSweep("fig5-high", "YCSB 10RMW, high contention (theta=0.9)", s, 0.9, pick),
		contentionSweep("fig5-low", "YCSB 10RMW, low contention (theta=0)", s, 0, pick),
	}
}

// Fig6 reproduces Figure 6: the 2RMW-8R workload under high and low
// contention.
func Fig6(s Scale) []*Table {
	pick := func(src *workload.YCSBSource) txn.Txn { return src.RMW2Read8() }
	return []*Table{
		contentionSweep("fig6-high", "YCSB 2RMW-8R, high contention (theta=0.9)", s, 0.9, pick),
		contentionSweep("fig6-low", "YCSB 2RMW-8R, low contention (theta=0)", s, 0, pick),
	}
}

// Fig7 reproduces Figure 7: 2RMW-8R at the maximum thread count while
// sweeping the zipfian theta.
func Fig7(s Scale) []*Table {
	t := &Table{
		ID:    "fig7",
		Title: fmt.Sprintf("YCSB 2RMW-8R at %d threads, varying theta", s.MaxThreads),
		Param: "theta",
	}
	for _, k := range AllEngines {
		t.Series = append(t.Series, string(k))
	}
	pick := func(src *workload.YCSBSource) txn.Txn { return src.RMW2Read8() }
	for _, theta := range s.Thetas {
		var vals []float64
		for _, k := range AllEngines {
			vals = append(vals, measureYCSB(k, s.MaxThreads, s, theta, s.Txns, pick))
		}
		t.AddRow(fmt.Sprintf("%.2f", theta), vals...)
	}
	return []*Table{t}
}

// mixedGen generates the Figure 8 mix: low-contention 10RMW updates plus
// pct% long read-only transactions of s.ScanSize uniform reads.
func mixedGen(y workload.YCSB, s Scale, pct int) func(stream int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := y.NewSource(int64(5000+stream*104729), 0)
		rng := rand.New(rand.NewSource(int64(31 + stream)))
		return func() txn.Txn {
			if rng.Intn(100) < pct {
				return src.ReadOnly(s.ScanSize)
			}
			return src.RMW10()
		}
	}
}

// fig8Point measures one engine at one read-only percentage.
func fig8Point(kind EngineKind, s Scale, pct int) float64 {
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	// Long read-only transactions do ScanSize reads each; shrink the
	// transaction count so each point does comparable total work.
	avgOps := 10.0 + float64(pct)/100.0*float64(s.ScanSize)
	txns := int(float64(s.Txns) * 10.0 / avgOps)
	if txns < 200 {
		txns = 200
	}
	e, err := MakeEngine(kind, s.MaxThreads, s.Records)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	r := Run(kind, e, Options{Txns: txns, Procs: s.MaxThreads}, mixedGen(y, s, pct))
	return r.Throughput
}

// Fig8 reproduces Figure 8: throughput while varying the fraction of long
// read-only transactions.
func Fig8(s Scale) []*Table {
	t := &Table{
		ID:    "fig8",
		Title: fmt.Sprintf("long read-only mix at %d threads (scan=%d records)", s.MaxThreads, s.ScanSize),
		Param: "% read-only",
	}
	for _, k := range AllEngines {
		t.Series = append(t.Series, string(k))
	}
	for _, pct := range s.ReadOnlyPct {
		var vals []float64
		for _, k := range AllEngines {
			vals = append(vals, fig8Point(k, s, pct))
		}
		t.AddRow(fmt.Sprintf("%d%%", pct), vals...)
	}
	return []*Table{t}
}

// Fig9 reproduces Figure 9 (a table in the paper): throughput at exactly
// 1% read-only transactions, with each engine normalized to BOHM.
func Fig9(s Scale) []*Table {
	t := &Table{
		ID:     "fig9",
		Title:  "1% long read-only transactions",
		Param:  "engine",
		Series: []string{"txns/sec", "% of Bohm"},
	}
	tput := map[EngineKind]float64{}
	order := []EngineKind{Bohm, SI, Hekaton, TwoPL, OCC} // paper's row order
	for _, k := range order {
		tput[k] = fig8Point(k, s, 1)
	}
	base := tput[Bohm]
	for _, k := range order {
		pct := 0.0
		if base > 0 {
			pct = tput[k] / base * 100
		}
		t.AddRow(string(k), tput[k], pct)
	}
	return []*Table{t}
}

// sbGen returns a per-stream SmallBank mix generator.
func sbGen(sb workload.SmallBank) func(stream int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := sb.NewSource(int64(9000 + stream*6151))
		return func() txn.Txn { return src.Next() }
	}
}

// fig10Sweep measures the SmallBank mix over the thread sweep for a given
// customer count.
func fig10Sweep(id, title string, s Scale, customers int) *Table {
	t := &Table{ID: id, Title: title, Param: "threads"}
	for _, k := range AllEngines {
		t.Series = append(t.Series, string(k))
	}
	sb := workload.SmallBank{Customers: customers, Spin: s.SBSpin}
	for _, th := range s.Threads {
		var vals []float64
		for _, k := range AllEngines {
			e, err := MakeEngine(k, th, 3*customers+64)
			if err != nil {
				panic(err)
			}
			if err := sb.LoadInto(e); err != nil {
				panic(err)
			}
			r := Run(k, e, Options{Txns: s.Txns, Procs: th}, sbGen(sb))
			e.Close()
			vals = append(vals, r.Throughput)
		}
		t.AddRow(fmt.Sprintf("%d", th), vals...)
	}
	return t
}

// Fig10 reproduces Figure 10: SmallBank under high contention (50
// customers) and low contention (100,000 customers in the paper).
func Fig10(s Scale) []*Table {
	return []*Table{
		fig10Sweep("fig10-high", fmt.Sprintf("SmallBank, %d customers (high contention)", s.SBCustomersHigh), s, s.SBCustomersHigh),
		fig10Sweep("fig10-low", fmt.Sprintf("SmallBank, %d customers (low contention)", s.SBCustomersLow), s, s.SBCustomersLow),
	}
}
