package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a labeled grid of throughput numbers,
// one column per series (usually an engine), one row per swept parameter
// value — the same rows/series the paper's figure reports.
type Table struct {
	// ID is the experiment identifier, e.g. "fig5-high".
	ID string
	// Title describes the experiment.
	Title string
	// Param names the swept row parameter ("threads", "theta", …).
	Param string
	// Series names each column.
	Series []string
	// Rows holds the measurements.
	Rows []Row
	// Notes carry caveats (substitutions, scaling) for the record.
	Notes []string
}

// Row is one measurement row.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a measurement row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)

	width := len(t.Param)
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	colw := make([]int, len(t.Series))
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			cells[i][j] = formatTput(v)
		}
	}
	for j, s := range t.Series {
		colw[j] = len(s)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > colw[j] {
				colw[j] = len(cells[i][j])
			}
		}
	}

	fmt.Fprintf(&b, "%-*s", width, t.Param)
	for j, s := range t.Series {
		fmt.Fprintf(&b, "  %*s", colw[j], s)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width, r.Label)
		for j := range r.Values {
			fmt.Fprintf(&b, "  %*s", colw[j], cells[i][j])
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// formatTput prints a throughput in the paper's "M txns/sec" style.
func formatTput(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
