package bench

import (
	"fmt"
	"sync"
	"time"

	"bohm/client"
	"bohm/internal/core"
	"bohm/internal/obs"
	"bohm/internal/server"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// ServerSweep measures the network front-end on loopback TCP: closed-loop
// clients (each keeping `depth` submissions in flight) drive the uniform
// 10RMW workload through internal/server's group batcher, sweeping
// connection count x per-connection pipeline depth. The final series is
// the ablation — MaxBatch=1 disables cross-connection grouping, so every
// ExecuteBatch carries one transaction and pays the sequencer barrier
// alone. The gap between the two is the thesis of the front-end: batch
// costs amortize only if someone forms batches, and with many thin
// connections only the server can.
func ServerSweep(s Scale) []*Table {
	depths := s.ServerDepths
	maxDepth := depths[len(depths)-1]
	series := make([]string, 0, len(depths)+1)
	for _, d := range depths {
		series = append(series, fmt.Sprintf("depth=%d", d))
	}
	series = append(series, fmt.Sprintf("no-group d=%d", maxDepth))

	notes := []string{
		"loopback TCP, closed-loop clients; uniform 10RMW via the registered ycsb.rmw procedure",
		"no-group: server MaxBatch=1, one transaction per ExecuteBatch (grouping ablation)",
		hostNote(),
	}
	tput := &Table{
		ID:     "server",
		Title:  "network front-end: cross-connection group batching (txns/sec)",
		Param:  "connections",
		Series: series,
		Notes:  notes,
	}
	p99 := &Table{
		ID:     "server-p99",
		Title:  "network front-end: p99 submit-to-ack latency (µs)",
		Param:  "connections",
		Series: series,
		Notes:  []string{"per-transaction latency from Submit to acknowledgement, pipeline wait included"},
	}

	for _, conns := range s.ServerConns {
		var tv, lv []float64
		for _, d := range depths {
			r := measureServer(s, conns, d, 0)
			tv = append(tv, r.Throughput)
			lv = append(lv, float64(r.P99.Microseconds()))
		}
		r := measureServer(s, conns, maxDepth, 1)
		tv = append(tv, r.Throughput)
		lv = append(lv, float64(r.P99.Microseconds()))
		tput.AddRow(fmt.Sprintf("%d", conns), tv...)
		p99.AddRow(fmt.Sprintf("%d", conns), lv...)
	}
	return []*Table{tput, p99}
}

// measureServer runs one (connections, depth) point: a fresh engine and
// server, `conns` client connections each holding `depth` transactions in
// flight, s.Txns measured transactions after a 10% warmup. Large grids
// raise the count so every point runs several multiples of its total
// outstanding window — 64 connections x depth 32 needs more than a
// handful of transactions per connection to reach steady state. maxBatch
// > 0 overrides the server's coalescing cap (1 = grouping off).
func measureServer(s Scale, conns, depth, maxBatch int) Result {
	txns := s.Txns
	if m := conns * depth * 8; txns < m {
		txns = m
	}
	reg := txn.NewRegistry()
	workload.RegisterYCSB(reg, s.RecordSize)
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}

	cc, exec := bohmSplit(s.MaxThreads)
	cfg := core.DefaultConfig()
	cfg.CCWorkers = cc
	cfg.ExecWorkers = exec
	cfg.Capacity = s.Records
	cfg.BatchSize = 1024
	cfg.GC = true
	eng, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	if err := y.LoadInto(eng); err != nil {
		panic(err)
	}

	scfg := server.Config{Addr: "127.0.0.1:0", PipelineDepth: depth}
	if maxBatch > 0 {
		scfg.MaxBatch = maxBatch
	}
	srv, err := server.New(eng, reg, scfg)
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	clients := make([]*client.Conn, conns)
	for i := range clients {
		c, err := client.Dial(srv.Addr(), &client.Options{PipelineDepth: depth})
		if err != nil {
			panic(err)
		}
		clients[i] = c
		defer c.Close()
	}

	// drive pushes `total` transactions through the clients, each
	// connection a closed loop with at most `depth` outstanding; when hist
	// is non-nil every transaction's submit-to-ack duration is recorded.
	drive := func(total int, hist *obs.Histogram) {
		var wg sync.WaitGroup
		per := (total + conns - 1) / conns
		for i, c := range clients {
			wg.Add(1)
			go func(stream int, c *client.Conn) {
				defer wg.Done()
				src := y.NewSource(int64(4242+stream*7919), 0)
				type flight struct {
					p     *client.Pending
					start time.Time
				}
				settle := func(f flight) {
					if err := f.p.Wait(); err != nil {
						panic(fmt.Sprintf("bench: server submit failed: %v", err))
					}
					if hist != nil {
						hist.Record(stream, uint64(time.Since(f.start)))
					}
				}
				win := make([]flight, 0, per)
				head := 0
				for n := 0; n < per; n++ {
					if len(win)-head == depth {
						settle(win[head])
						head++
					}
					t := src.RMW10Call(reg)
					start := time.Now()
					p, err := c.Submit(t)
					if err != nil {
						panic(fmt.Sprintf("bench: submit: %v", err))
					}
					win = append(win, flight{p: p, start: start})
				}
				for ; head < len(win); head++ {
					settle(win[head])
				}
			}(i, c)
		}
		wg.Wait()
	}

	if warm := txns / 10; warm > 0 {
		drive(warm, nil)
	}
	before := eng.Stats()
	hist := obs.NewHistogram(conns)
	start := time.Now()
	drive(txns, hist)
	elapsed := time.Since(start)
	stats := eng.Stats().Sub(before)

	snap := hist.Snapshot()
	label := fmt.Sprintf("server,conns=%d,depth=%d", conns, depth)
	if maxBatch == 1 {
		label += ",nogroup"
	}
	res := Result{
		Txns:       txns,
		Elapsed:    elapsed,
		Throughput: float64(stats.Committed) / elapsed.Seconds(),
		Stats:      stats,
		Label:      label,
		P50:        time.Duration(snap.Quantile(0.50)),
		P99:        time.Duration(snap.Quantile(0.99)),
		P999:       time.Duration(snap.Quantile(0.999)),
		Max:        time.Duration(snap.Max),
	}
	recordRun(Bohm, res)
	return res
}
