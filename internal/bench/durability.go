package bench

import (
	"os"
	"time"

	"bohm/internal/core"
	"bohm/internal/txn"
	"bohm/internal/vfs"
	"bohm/internal/wal"
	"bohm/internal/workload"
)

// AblationDurability measures the cost of the durability subsystem on
// BOHM: the uniform 10RMW workload with logging off, then with command
// logging under each sync policy, then with periodic checkpointing on
// top. Uniform keys keep concurrency control cheap, so the delta is
// dominated by the logging path itself — the logged-vs-unlogged
// comparison the paper's "logging disabled" setup leaves open.
func AblationDurability(s Scale) []*Table {
	t := &Table{
		ID:     "durability",
		Title:  "command logging overhead (10RMW, theta=0)",
		Param:  "config",
		Series: []string{"txns/sec"},
		Notes: []string{
			"log written to a temp dir on local disk; sync=batch pays one fsync per sequencer batch",
		},
	}
	cc, exec := bohmSplit(s.MaxThreads)
	base := core.Config{CCWorkers: cc, ExecWorkers: exec, BatchSize: 1024, GC: true}
	for _, row := range []struct {
		label   string
		durable bool
		policy  wal.SyncPolicy
		ckpt    int
	}{
		{"off", false, 0, 0},
		{"log sync=never", true, wal.SyncNever, 0},
		{"log sync=2ms", true, wal.SyncByInterval, 0},
		{"log sync=batch", true, wal.SyncEveryBatch, 0},
		{"log+ckpt/64 sync=2ms", true, wal.SyncByInterval, 64},
	} {
		cfg := base
		if row.durable {
			cfg.SyncPolicy = row.policy
			cfg.SyncInterval = 2 * time.Millisecond
			cfg.CheckpointEveryBatches = row.ckpt
		}
		t.AddRow(row.label, measureDurability(s, cfg, row.durable))
	}

	// Fault-injected row: the same sync=batch configuration on a disk
	// that fails sixteen fsyncs (dropping the dirty pages each time)
	// across the run. Every fault is healed by the write-hole repair —
	// clients see no errors — and the row prices that repair work
	// against the fault-free sync=batch row above.
	{
		cfg := base
		cfg.SyncPolicy = wal.SyncEveryBatch
		cfg.LogRetry = core.RetryPolicy{Attempts: 5, Backoff: 500 * time.Microsecond}
		fsys := vfs.NewFaultFS(nil)
		for i := 0; i < 16; i++ {
			fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: 25 + i*50, Count: 1, DropUnsynced: true})
		}
		cfg.FS = fsys
		t.AddRow("log sync=batch, 16 healed fsync faults", measureDurability(s, cfg, true))
	}
	return []*Table{t}
}

// measureDurability runs the uniform 10RMW workload through one BOHM
// configuration, with the command log (when enabled) in a temp dir that
// is removed afterwards. Durable and non-durable runs use the same
// registry-built transactions, so the measured delta is the durability
// subsystem, not the transaction representation.
func measureDurability(s Scale, cfg core.Config, durable bool) float64 {
	reg := txn.NewRegistry()
	workload.RegisterYCSB(reg, s.RecordSize)
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	cfg.Capacity = s.Records
	if durable {
		dir, err := os.MkdirTemp("", "bohm-bench-wal-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		cfg.LogDir = dir
	}
	e, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	if durable {
		// Seal the bulk load into the first checkpoint (see Load).
		if err := e.CheckpointNow(); err != nil {
			panic(err)
		}
	}
	gen := func(stream int) func() txn.Txn {
		src := y.NewSource(int64(1234+stream*7919), 0)
		return func() txn.Txn { return src.RMW10Call(reg) }
	}
	r := Run(Bohm, e, Options{Txns: s.Txns, Procs: cfg.CCWorkers + cfg.ExecWorkers}, gen)
	return r.Throughput
}
