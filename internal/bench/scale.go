package bench

import (
	"fmt"
	"time"

	"bohm/internal/core"
	"bohm/internal/obs"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// The scalability experiment is the core-sweep harness from ROADMAP
// direction 5: instead of reproducing one of the paper's figures it maps
// where each engine's scaling stops on the host at hand, and uses the obs
// subsystem to attribute BOHM's cliff to a pipeline stage. It sweeps
// GOMAXPROCS x worker count x zipfian theta over all five engines (10RMW
// point writes, the paper's §4.2 shape), reports true per-transaction
// latency percentiles per configuration, then breaks BOHM's batch
// timeline down by stage at the largest configuration and measures the
// observability overhead itself (metrics on vs off).

// scalePoint measures one engine at one (procs, theta) configuration.
// Worker counts track procs — the sweep oversubscribes both together,
// mirroring how a deployment would size the engine to the machine.
func scalePoint(kind EngineKind, s Scale, procs int, theta float64) Result {
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	e, err := MakeEngine(kind, procs, s.Records)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	return Run(kind, e, Options{
		Txns:  s.Txns,
		Procs: procs,
		Label: fmt.Sprintf("procs=%d,theta=%.2f", procs, theta),
	}, ycsbGen(y, theta, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }))
}

// Scalability runs the full sweep. Tables:
//
//	scale-theta*    — throughput per engine over the GOMAXPROCS sweep,
//	                  one table per theta
//	scale-latency   — p50/p99/p999/max per-txn latency for every
//	                  (engine, procs) cell at the highest theta
//	scale-split     — BOHM CC/exec worker split at the largest proc count
//	scale-stages    — BOHM per-stage batch timeline at the largest
//	                  configuration (obs histograms)
//	scale-obs       — BOHM throughput with metrics off vs on (the
//	                  instrumentation's own overhead)
func Scalability(s Scale) []*Table {
	maxProcs := s.ScaleProcs[len(s.ScaleProcs)-1]
	maxTheta := s.ScaleThetas[len(s.ScaleThetas)-1]

	var tables []*Table
	latency := &Table{
		ID:     "scale-latency",
		Title:  fmt.Sprintf("per-txn submission latency (us), 10RMW, theta=%.2f", maxTheta),
		Param:  "engine@procs",
		Series: []string{"p50", "p99", "p999", "max"},
		Notes:  []string{hostNote()},
	}
	for _, theta := range s.ScaleThetas {
		t := &Table{
			ID:    fmt.Sprintf("scale-theta%.2f", theta),
			Title: fmt.Sprintf("YCSB 10RMW throughput, theta=%.2f, GOMAXPROCS sweep", theta),
			Param: "procs",
			Notes: []string{hostNote()},
		}
		for _, k := range AllEngines {
			t.Series = append(t.Series, string(k))
		}
		for _, p := range s.ScaleProcs {
			var vals []float64
			for _, k := range AllEngines {
				r := scalePoint(k, s, p, theta)
				vals = append(vals, r.Throughput)
				if theta == maxTheta {
					latency.AddRow(fmt.Sprintf("%s@%d", k, p),
						us(r.P50), us(r.P99), us(r.P999), us(r.Max))
				}
			}
			t.AddRow(fmt.Sprintf("%d", p), vals...)
		}
		tables = append(tables, t)
	}
	tables = append(tables, latency)
	tables = append(tables, scaleSplit(s, maxProcs))
	tables = append(tables, scaleStages(s, maxProcs))
	tables = append(tables, scaleObsOverhead(s, maxProcs))
	return tables
}

// us converts a duration to whole microseconds for table cells.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// scaleSplit sweeps BOHM's CC/exec worker split at a fixed total worker
// count — where on the CC-vs-exec axis the balanced default sits.
func scaleSplit(s Scale, procs int) *Table {
	t := &Table{
		ID:     "scale-split",
		Title:  fmt.Sprintf("BOHM CC/exec split at %d workers, 10RMW, theta=0", procs),
		Param:  "split",
		Series: []string{"txns/sec", "p99_us"},
		Notes:  []string{hostNote()},
	}
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	for cc := 1; cc < procs; cc++ {
		exec := procs - cc
		e, err := MakeBohm(cc, exec, s.Records)
		if err != nil {
			panic(err)
		}
		if err := y.LoadInto(e); err != nil {
			panic(err)
		}
		r := Run(Bohm, e, Options{
			Txns:  s.Txns,
			Procs: procs,
			Label: fmt.Sprintf("cc=%d,exec=%d", cc, exec),
		}, ycsbGen(y, 0, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }))
		e.Close()
		t.AddRow(fmt.Sprintf("%d/%d", cc, exec), r.Throughput, us(r.P99))
	}
	return t
}

// scaleStages runs a metrics-enabled BOHM engine at the largest sweep
// configuration and reports each pipeline stage's latency distribution —
// the table that names which stage a scaling cliff lives in.
func scaleStages(s Scale, procs int) *Table {
	t := &Table{
		ID:     "scale-stages",
		Title:  fmt.Sprintf("BOHM per-stage latency (us) at %d workers, 10RMW, theta=0", procs),
		Param:  "stage",
		Series: []string{"count", "p50", "p99", "p999", "max"},
		Notes: []string{
			"batch stages (seq_wait..exec) count batches; submit counts transactions",
			hostNote(),
		},
	}
	cc := procs / 2
	if cc < 1 {
		cc = 1
	}
	exec := procs - cc
	if exec < 1 {
		exec = 1
	}
	cfg := core.DefaultConfig()
	cfg.CCWorkers = cc
	cfg.ExecWorkers = exec
	cfg.Capacity = s.Records
	cfg.BatchSize = 1024
	cfg.GC = true
	cfg.Metrics = true
	e, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	gen := ycsbGen(y, 0, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() })
	// Warm up with the default slice, reset the histograms so the table
	// covers only the measured interval, then run without extra warmup.
	Run(Bohm, e, Options{Txns: s.Txns / 10, WarmupTxns: -1, Procs: procs, Label: "stage-warmup"}, gen)
	m := e.Metrics()
	m.Reset()
	Run(Bohm, e, Options{Txns: s.Txns, WarmupTxns: -1, Procs: procs, Label: "stage-breakdown"}, gen)
	for st := obs.Stage(0); int(st) < obs.NumStages; st++ {
		snap := m.Stages[st].Snapshot()
		if snap.Count == 0 {
			continue // no durability/read-path traffic in this workload
		}
		t.AddRow(obs.StageName(st),
			float64(snap.Count),
			float64(snap.Quantile(0.50))/1e3,
			float64(snap.Quantile(0.99))/1e3,
			float64(snap.Quantile(0.999))/1e3,
			float64(snap.Max)/1e3)
	}
	return t
}

// scaleObsOverhead measures the observability subsystem against itself:
// the same BOHM configuration and workload with metrics off and on. The
// acceptance bar is on-throughput within 3% of off.
func scaleObsOverhead(s Scale, procs int) *Table {
	t := &Table{
		ID:     "scale-obs",
		Title:  fmt.Sprintf("BOHM metrics overhead at %d workers, 10RMW, theta=0", procs),
		Param:  "metrics",
		Series: []string{"txns/sec", "p99_us"},
	}
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	run := func(metrics bool, label string) Result {
		cc := procs / 2
		if cc < 1 {
			cc = 1
		}
		exec := procs - cc
		if exec < 1 {
			exec = 1
		}
		cfg := core.DefaultConfig()
		cfg.CCWorkers = cc
		cfg.ExecWorkers = exec
		cfg.Capacity = s.Records
		cfg.BatchSize = 1024
		cfg.GC = true
		cfg.Metrics = metrics
		e, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		defer e.Close()
		if err := y.LoadInto(e); err != nil {
			panic(err)
		}
		return Run(Bohm, e, Options{Txns: s.Txns, Procs: procs, Label: label},
			ycsbGen(y, 0, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }))
	}
	// Alternate off/on and keep each side's best of three: a single short
	// run is dominated by scheduler and GC noise (far larger than the
	// instrumentation's cost), and alternating decorrelates slow drift.
	var off, on Result
	for i := 0; i < 3; i++ {
		if r := run(false, fmt.Sprintf("metrics=off,rep=%d", i)); r.Throughput > off.Throughput {
			off = r
		}
		if r := run(true, fmt.Sprintf("metrics=on,rep=%d", i)); r.Throughput > on.Throughput {
			on = r
		}
	}
	t.AddRow("off", off.Throughput, us(off.P99))
	t.AddRow("on", on.Throughput, us(on.P99))
	if off.Throughput > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("metrics-on throughput is %.1f%% of metrics-off (best of 3 each)",
			on.Throughput/off.Throughput*100))
	}
	return t
}
