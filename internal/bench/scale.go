package bench

import (
	"fmt"
	"sort"
	"time"

	"bohm/internal/core"
	"bohm/internal/obs"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// The scalability experiment is the core-sweep harness from ROADMAP
// direction 5: instead of reproducing one of the paper's figures it maps
// where each engine's scaling stops on the host at hand, and uses the obs
// subsystem to attribute BOHM's cliff to a pipeline stage. It sweeps
// GOMAXPROCS x worker count x zipfian theta over all five engines (10RMW
// point writes, the paper's §4.2 shape), reports true per-transaction
// latency percentiles per configuration, then breaks BOHM's batch
// timeline down by stage at the largest configuration and measures the
// observability overhead itself (metrics on vs off).

// scalePoint measures one engine at one (procs, theta) configuration.
// Worker counts track procs — the sweep oversubscribes both together,
// mirroring how a deployment would size the engine to the machine.
func scalePoint(kind EngineKind, s Scale, procs int, theta float64) Result {
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	e, err := MakeEngine(kind, procs, s.Records)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	return Run(kind, e, Options{
		Txns:  s.Txns,
		Procs: procs,
		Label: fmt.Sprintf("procs=%d,theta=%.2f", procs, theta),
	}, ycsbGen(y, theta, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }))
}

// Scalability runs the full sweep. Tables:
//
//	scale-theta*    — throughput per engine over the GOMAXPROCS sweep,
//	                  one table per theta
//	scale-latency   — p50/p99/p999/max per-txn latency for every
//	                  (engine, procs) cell at the highest theta
//	scale-split     — BOHM CC/exec worker split at the largest proc count
//	scale-stages    — BOHM per-stage batch timeline at the largest
//	                  configuration (obs histograms)
//	scale-obs       — BOHM throughput with metrics off vs on (the
//	                  instrumentation's own overhead)
func Scalability(s Scale) []*Table {
	maxProcs := s.ScaleProcs[len(s.ScaleProcs)-1]
	maxTheta := s.ScaleThetas[len(s.ScaleThetas)-1]

	var tables []*Table
	latency := &Table{
		ID:     "scale-latency",
		Title:  fmt.Sprintf("per-txn submission latency (us), 10RMW, theta=%.2f", maxTheta),
		Param:  "engine@procs",
		Series: []string{"p50", "p99", "p999", "max"},
		Notes:  []string{hostNote()},
	}
	for _, theta := range s.ScaleThetas {
		t := &Table{
			ID:    fmt.Sprintf("scale-theta%.2f", theta),
			Title: fmt.Sprintf("YCSB 10RMW throughput, theta=%.2f, GOMAXPROCS sweep", theta),
			Param: "procs",
			Notes: []string{hostNote()},
		}
		for _, k := range AllEngines {
			t.Series = append(t.Series, string(k))
		}
		for _, p := range s.ScaleProcs {
			var vals []float64
			for _, k := range AllEngines {
				r := scalePoint(k, s, p, theta)
				vals = append(vals, r.Throughput)
				if theta == maxTheta {
					latency.AddRow(fmt.Sprintf("%s@%d", k, p),
						us(r.P50), us(r.P99), us(r.P999), us(r.Max))
				}
			}
			t.AddRow(fmt.Sprintf("%d", p), vals...)
		}
		tables = append(tables, t)
	}
	tables = append(tables, latency)
	tables = append(tables, scaleSplit(s, maxProcs))
	tables = append(tables, scaleStages(s, maxProcs))
	tables = append(tables, scaleCC(s, maxProcs))
	tables = append(tables, scaleObsOverhead(s, maxProcs))
	return tables
}

// us converts a duration to whole microseconds for table cells.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// scaleSplit sweeps BOHM's CC/exec worker split at a fixed total worker
// count — where on the CC-vs-exec axis the balanced default sits.
func scaleSplit(s Scale, procs int) *Table {
	t := &Table{
		ID:     "scale-split",
		Title:  fmt.Sprintf("BOHM CC/exec split at %d workers, 10RMW, theta=0", procs),
		Param:  "split",
		Series: []string{"txns/sec", "p99_us"},
		Notes:  []string{hostNote()},
	}
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	for cc := 1; cc < procs; cc++ {
		exec := procs - cc
		e, err := MakeBohm(cc, exec, s.Records)
		if err != nil {
			panic(err)
		}
		if err := y.LoadInto(e); err != nil {
			panic(err)
		}
		r := Run(Bohm, e, Options{
			Txns:  s.Txns,
			Procs: procs,
			Label: fmt.Sprintf("cc=%d,exec=%d", cc, exec),
		}, ycsbGen(y, 0, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }))
		e.Close()
		t.AddRow(fmt.Sprintf("%d/%d", cc, exec), r.Throughput, us(r.P99))
	}
	return t
}

// scaleStages runs a metrics-enabled BOHM engine at the largest sweep
// configuration and reports each pipeline stage's latency distribution —
// the table that names which stage a scaling cliff lives in.
func scaleStages(s Scale, procs int) *Table {
	t := &Table{
		ID:     "scale-stages",
		Title:  fmt.Sprintf("BOHM per-stage latency (us) at %d workers, 10RMW, theta=0", procs),
		Param:  "stage",
		Series: []string{"count", "p50", "p99", "p999", "max"},
		Notes: []string{
			"batch stages (seq_wait..exec) count batches; submit counts transactions",
			hostNote(),
		},
	}
	cc := procs / 2
	if cc < 1 {
		cc = 1
	}
	exec := procs - cc
	if exec < 1 {
		exec = 1
	}
	cfg := core.DefaultConfig()
	cfg.CCWorkers = cc
	cfg.ExecWorkers = exec
	cfg.Capacity = s.Records
	cfg.BatchSize = 1024
	cfg.GC = true
	cfg.Metrics = true
	e, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	gen := ycsbGen(y, 0, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() })
	// Warm up with the default slice, reset the histograms so the table
	// covers only the measured interval, then run without extra warmup.
	Run(Bohm, e, Options{Txns: s.Txns / 10, WarmupTxns: -1, Procs: procs, Label: "stage-warmup"}, gen)
	m := e.Metrics()
	m.Reset()
	Run(Bohm, e, Options{Txns: s.Txns, WarmupTxns: -1, Procs: procs, Label: "stage-breakdown"}, gen)
	for st := obs.Stage(0); int(st) < obs.NumStages; st++ {
		snap := m.Stages[st].Snapshot()
		if snap.Count == 0 {
			continue // no durability/read-path traffic in this workload
		}
		t.AddRow(obs.StageName(st),
			float64(snap.Count),
			float64(snap.Quantile(0.50))/1e3,
			float64(snap.Quantile(0.99))/1e3,
			float64(snap.Quantile(0.999))/1e3,
			float64(snap.Max)/1e3)
	}
	return t
}

// scaleCC is the CC-kernel ablation: a preprocessed BOHM engine with the
// amortized kernels on vs the DisableCCKernels baseline, swept over the
// zipfian thetas, reporting throughput and the CC stage's p50 batch
// latency from the obs histograms. The last column is the machine-
// readable p50 delta (positive = kernels faster), the number the
// kernels' acceptance bar reads.
//
// Methodology: throughput comes from a flooded run (the harness's default
// multi-stream feed), but the CC p50 comes from a separate closed-loop
// pass — one batch in flight (Streams: 1, Chunk: BatchSize) — because a
// flooded pipeline's CC histogram measures queue depth, not the stage's
// service time: batches spend most of the sequenced→cc window waiting
// behind each other, and that wait dilates with whatever stage is
// slowest. As with scale-obs, a single short run on a shared host is
// dominated by scheduler noise, so each theta row is three interleaved
// on/off reps: throughput keeps each side's best, the p50 columns keep
// each side's median, and the delta column is the median of the per-rep
// paired deltas (pairing cancels host-speed drift between reps).
func scaleCC(s Scale, procs int) *Table {
	t := &Table{
		ID:     "scale-cc",
		Title:  fmt.Sprintf("BOHM CC-kernel ablation at %d workers, 10RMW, preprocessed", procs),
		Param:  "theta",
		Series: []string{"kernels_tps", "baseline_tps", "cc_p50_on_us", "cc_p50_off_us", "cc_p50_delta_pct"},
		Notes: []string{
			"baseline = DisableCCKernels; cc_p50 from the CC stage histogram over a closed-loop pass (one batch in flight), median of 3 interleaved reps",
			"tps best of 3 flooded runs per side; delta = median per-rep paired delta",
			hostNote(),
		},
	}
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	cc := procs / 2
	if cc < 1 {
		cc = 1
	}
	exec := procs - cc
	if exec < 1 {
		exec = 1
	}
	// Floors keep this table meaningful even in quick mode: the ablation
	// resolves a ~10-20% effect, which a 4k-txn flooded run (tens of
	// milliseconds) or a 30-batch closed-loop p50 cannot.
	floodTxns := s.Txns
	if floodTxns < 32*1024 {
		floodTxns = 32 * 1024
	}
	closedTxns := 3 * s.Txns
	if closedTxns < 96*1024 {
		closedTxns = 96 * 1024
	}
	run := func(disable bool, theta float64, label string) (Result, float64) {
		cfg := core.DefaultConfig()
		cfg.CCWorkers = cc
		cfg.ExecWorkers = exec
		cfg.Capacity = s.Records
		cfg.BatchSize = 1024
		cfg.GC = true
		cfg.Metrics = true
		cfg.Preprocess = true
		cfg.PreprocessWorkers = 2
		cfg.DisableCCKernels = disable
		e, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		defer e.Close()
		if err := y.LoadInto(e); err != nil {
			panic(err)
		}
		gen := ycsbGen(y, theta, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() })
		Run(Bohm, e, Options{Txns: closedTxns / 4, WarmupTxns: -1, Procs: procs, Label: label + ",warmup"}, gen)
		r := Run(Bohm, e, Options{Txns: floodTxns, WarmupTxns: -1, Procs: procs, Label: label}, gen)
		m := e.Metrics()
		m.Reset()
		Run(Bohm, e, Options{Txns: closedTxns, WarmupTxns: -1, Procs: procs,
			Streams: 1, Chunk: cfg.BatchSize, Label: label + ",closed"}, gen)
		return r, float64(m.Stages[obs.StageCC].Snapshot().Quantile(0.50)) / 1e3
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	for _, theta := range s.ScaleThetas {
		var on, off Result
		var onP, offP, deltas []float64
		for rep := 0; rep < 3; rep++ {
			rOn, pOn := run(false, theta, fmt.Sprintf("kernels,theta=%.2f,rep=%d", theta, rep))
			rOff, pOff := run(true, theta, fmt.Sprintf("baseline,theta=%.2f,rep=%d", theta, rep))
			if rOn.Throughput > on.Throughput {
				on = rOn
			}
			if rOff.Throughput > off.Throughput {
				off = rOff
			}
			onP, offP = append(onP, pOn), append(offP, pOff)
			if pOff > 0 {
				deltas = append(deltas, (pOff-pOn)/pOff*100)
			}
		}
		delta := 0.0
		if len(deltas) > 0 {
			delta = median(deltas)
		}
		t.AddRow(fmt.Sprintf("%.2f", theta), on.Throughput, off.Throughput, median(onP), median(offP), delta)
	}
	return t
}

// scaleObsOverhead measures the observability subsystem against itself:
// the same BOHM configuration and workload with metrics off and on. The
// acceptance bar is on-throughput within 3% of off.
func scaleObsOverhead(s Scale, procs int) *Table {
	t := &Table{
		ID:     "scale-obs",
		Title:  fmt.Sprintf("BOHM metrics overhead at %d workers, 10RMW, theta=0", procs),
		Param:  "metrics",
		Series: []string{"txns/sec", "p99_us"},
	}
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	run := func(metrics bool, label string) Result {
		cc := procs / 2
		if cc < 1 {
			cc = 1
		}
		exec := procs - cc
		if exec < 1 {
			exec = 1
		}
		cfg := core.DefaultConfig()
		cfg.CCWorkers = cc
		cfg.ExecWorkers = exec
		cfg.Capacity = s.Records
		cfg.BatchSize = 1024
		cfg.GC = true
		cfg.Metrics = metrics
		e, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		defer e.Close()
		if err := y.LoadInto(e); err != nil {
			panic(err)
		}
		return Run(Bohm, e, Options{Txns: s.Txns, Procs: procs, Label: label},
			ycsbGen(y, 0, func(src *workload.YCSBSource) txn.Txn { return src.RMW10() }))
	}
	// Alternate off/on and keep each side's best of three: a single short
	// run is dominated by scheduler and GC noise (far larger than the
	// instrumentation's cost), and alternating decorrelates slow drift.
	var off, on Result
	for i := 0; i < 3; i++ {
		if r := run(false, fmt.Sprintf("metrics=off,rep=%d", i)); r.Throughput > off.Throughput {
			off = r
		}
		if r := run(true, fmt.Sprintf("metrics=on,rep=%d", i)); r.Throughput > on.Throughput {
			on = r
		}
	}
	t.AddRow("off", off.Throughput, us(off.P99))
	t.AddRow("on", on.Throughput, us(on.P99))
	if off.Throughput > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("metrics-on throughput is %.1f%% of metrics-off (best of 3 each)",
			on.Throughput/off.Throughput*100))
	}
	return t
}
