package bench

import (
	"fmt"
	"math/rand"

	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Scans is the YCSB-E style scan-mix experiment the two-tier index opens
// up: short range scans over zipfian start keys mixed with inserts of
// fresh records, swept over the scan percentage, one series per engine.
// The paper's evaluation stops at multi-point reads; this experiment is
// the natural extension once range scans are first-class, and the second
// table verifies BOHM's claim to fame here — declared scans are served
// from CC-time annotations (resolved version references), not chain
// traversals.
func Scans(s Scale) []*Table {
	mix := &Table{
		ID:    "scans",
		Title: fmt.Sprintf("YCSB-E scan mix at %d threads (theta=0.9, scans of 1..%d rows)", s.MaxThreads, s.ScanMaxLen),
		Param: "% scans",
		Notes: []string{
			hostNote(),
			"non-scan transactions insert fresh records (YCSB-E), so every scan is exposed to phantoms",
		},
	}
	for _, k := range AllEngines {
		mix.Series = append(mix.Series, string(k))
	}
	anno := &Table{
		ID:     "scans-annotation",
		Title:  "BOHM scan service: CC-annotated range entries vs chain steps",
		Param:  "% scans",
		Series: []string{"range entries (annotated)", "chain steps"},
	}
	for _, pct := range s.ScanMixPcts {
		var vals []float64
		for _, k := range AllEngines {
			tput, st := scanPoint(k, s, pct, s.ScanMaxLen)
			vals = append(vals, tput)
			if k == Bohm {
				anno.AddRow(fmt.Sprintf("%d%%", pct), float64(st.Stats.RangeRefHits), float64(st.Stats.ChainSteps))
			}
		}
		mix.AddRow(fmt.Sprintf("%d%%", pct), vals...)
	}
	return []*Table{mix, anno, scanLengthSweep(s)}
}

// scanLengthSweep holds the scan percentage fixed and sweeps the maximum
// scan length instead, exposing the amortization curve of BOHM's CC-time
// range annotation: the per-scan fixed cost (directory seek, annotation
// set-up) is spread over more rows as scans lengthen, so BOHM's per-row
// advantage over revalidating engines grows with the length.
func scanLengthSweep(s Scale) *Table {
	t := &Table{
		ID:    "scans-length",
		Title: fmt.Sprintf("YCSB-E scan-length sweep at %d threads (95%% scans, theta=0.9)", s.MaxThreads),
		Param: "max scan len",
		Notes: []string{
			hostNote(),
			"rows/sec normalizes throughput by the expected rows per scan, isolating the per-row cost",
		},
	}
	for _, k := range AllEngines {
		t.Series = append(t.Series, string(k))
	}
	t.Series = append(t.Series, "Bohm rows/sec")
	const pct = 95
	for _, maxLen := range s.ScanLenSweep {
		var vals []float64
		var bohmTput float64
		for _, k := range AllEngines {
			tput, _ := scanPoint(k, s, pct, maxLen)
			vals = append(vals, tput)
			if k == Bohm {
				bohmTput = tput
			}
		}
		// Expected rows touched per transaction in the mix: pct% scans of
		// mean (maxLen+1)/2 rows, the rest single-row inserts.
		avgRows := float64(pct)/100.0*float64(maxLen+1)/2.0 + float64(100-pct)/100.0
		vals = append(vals, bohmTput*avgRows)
		t.AddRow(fmt.Sprintf("%d", maxLen), vals...)
	}
	return t
}

// scanPoint measures one engine at one scan percentage and maximum scan
// length, returning throughput and the run's counter delta.
func scanPoint(kind EngineKind, s Scale, pct, maxLen int) (float64, Result) {
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	// Scale the transaction count so each point does comparable row work
	// regardless of the scan share.
	avgOps := 1.0 + float64(pct)/100.0*float64(maxLen)/2.0
	txns := int(float64(s.Txns) * 10.0 / avgOps)
	if txns < 500 {
		txns = 500
	}
	// Capacity covers the loaded table plus every possible insert.
	e, err := MakeEngine(kind, s.MaxThreads, s.Records+txns)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	gen := func(stream int) func() txn.Txn {
		src := y.NewSource(int64(7000+stream*31337), 0.9)
		rng := rand.New(rand.NewSource(int64(59 + stream)))
		return func() txn.Txn {
			if rng.Intn(100) < pct {
				return src.ScanE(maxLen)
			}
			return src.InsertE()
		}
	}
	r := Run(kind, e, Options{Txns: txns, Procs: s.MaxThreads}, gen)
	return r.Throughput, r
}
