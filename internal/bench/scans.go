package bench

import (
	"fmt"
	"math/rand"

	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Scans is the YCSB-E style scan-mix experiment the two-tier index opens
// up: short range scans over zipfian start keys mixed with inserts of
// fresh records, swept over the scan percentage, one series per engine.
// The paper's evaluation stops at multi-point reads; this experiment is
// the natural extension once range scans are first-class, and the second
// table verifies BOHM's claim to fame here — declared scans are served
// from CC-time annotations (resolved version references), not chain
// traversals.
func Scans(s Scale) []*Table {
	mix := &Table{
		ID:    "scans",
		Title: fmt.Sprintf("YCSB-E scan mix at %d threads (theta=0.9, scans of 1..%d rows)", s.MaxThreads, s.ScanMaxLen),
		Param: "% scans",
		Notes: []string{
			hostNote(),
			"non-scan transactions insert fresh records (YCSB-E), so every scan is exposed to phantoms",
		},
	}
	for _, k := range AllEngines {
		mix.Series = append(mix.Series, string(k))
	}
	anno := &Table{
		ID:     "scans-annotation",
		Title:  "BOHM scan service: CC-annotated range entries vs chain steps",
		Param:  "% scans",
		Series: []string{"range entries (annotated)", "chain steps"},
	}
	for _, pct := range s.ScanMixPcts {
		var vals []float64
		for _, k := range AllEngines {
			tput, st := scanPoint(k, s, pct)
			vals = append(vals, tput)
			if k == Bohm {
				anno.AddRow(fmt.Sprintf("%d%%", pct), float64(st.Stats.RangeRefHits), float64(st.Stats.ChainSteps))
			}
		}
		mix.AddRow(fmt.Sprintf("%d%%", pct), vals...)
	}
	return []*Table{mix, anno}
}

// scanPoint measures one engine at one scan percentage, returning
// throughput and the run's counter delta.
func scanPoint(kind EngineKind, s Scale, pct int) (float64, Result) {
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	// Scale the transaction count so each point does comparable row work
	// regardless of the scan share.
	avgOps := 1.0 + float64(pct)/100.0*float64(s.ScanMaxLen)/2.0
	txns := int(float64(s.Txns) * 10.0 / avgOps)
	if txns < 500 {
		txns = 500
	}
	// Capacity covers the loaded table plus every possible insert.
	e, err := MakeEngine(kind, s.MaxThreads, s.Records+txns)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	gen := func(stream int) func() txn.Txn {
		src := y.NewSource(int64(7000+stream*31337), 0.9)
		rng := rand.New(rand.NewSource(int64(59 + stream)))
		return func() txn.Txn {
			if rng.Intn(100) < pct {
				return src.ScanE(s.ScanMaxLen)
			}
			return src.InsertE()
		}
	}
	r := Run(kind, e, Options{Txns: txns, Procs: s.MaxThreads}, gen)
	return r.Throughput, r
}
