// Package bench is the experiment harness that regenerates every figure
// and table of the paper's evaluation (§4). Each experiment builds fresh
// engines, loads the workload's tables, runs a warmup slice, then measures
// committed-transaction throughput, printing rows shaped like the paper's
// plots.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/hekaton"
	"bohm/internal/obs"
	"bohm/internal/occ"
	"bohm/internal/si"
	"bohm/internal/twopl"
	"bohm/internal/txn"
)

// EngineKind names one of the five engines under test.
type EngineKind string

// The engines of the paper's evaluation.
const (
	Bohm    EngineKind = "Bohm"
	Hekaton EngineKind = "Hekaton"
	SI      EngineKind = "SI"
	OCC     EngineKind = "OCC"
	TwoPL   EngineKind = "2PL"
)

// AllEngines lists the engines in the paper's plotting order.
var AllEngines = []EngineKind{TwoPL, Bohm, OCC, SI, Hekaton}

// MultiVersionEngines lists only the multiversion systems.
var MultiVersionEngines = []EngineKind{Bohm, SI, Hekaton}

// MakeEngine builds an engine of the given kind configured for `threads`
// worker threads over a store of `capacity` records. For BOHM the threads
// are split evenly between concurrency control and execution workers
// (minimum one each), matching the paper's accounting where the plotted
// thread count is the total across both modules.
func MakeEngine(kind EngineKind, threads, capacity int) (engine.Engine, error) {
	if threads < 1 {
		threads = 1
	}
	switch kind {
	case Bohm:
		cc := threads / 2
		if cc < 1 {
			cc = 1
		}
		exec := threads - cc
		if exec < 1 {
			exec = 1
		}
		return MakeBohm(cc, exec, capacity)
	case Hekaton:
		// TrimChains is off to match the paper: its Hekaton and SI
		// implementations "do not incrementally garbage collect versions"
		// (§4), which the paper counts in their favor.
		return hekaton.New(hekaton.Config{
			Workers: threads, Capacity: capacity,
			Level: hekaton.Serializable,
		})
	case SI:
		return si.New(si.Config{Workers: threads, Capacity: capacity})
	case OCC:
		cfg := occ.DefaultConfig()
		cfg.Workers = threads
		cfg.Capacity = capacity
		return occ.New(cfg)
	case TwoPL:
		return twopl.New(twopl.Config{Workers: threads, Capacity: capacity})
	}
	return nil, fmt.Errorf("bench: unknown engine kind %q", kind)
}

// MakeBohm builds a BOHM engine with an explicit CC/execution split.
func MakeBohm(cc, exec, capacity int) (engine.Engine, error) {
	cfg := core.DefaultConfig()
	cfg.CCWorkers = cc
	cfg.ExecWorkers = exec
	cfg.Capacity = capacity
	cfg.BatchSize = 1024
	cfg.GC = true
	return core.New(cfg)
}

// Options controls one measured run.
type Options struct {
	// Txns is the number of transactions measured.
	Txns int
	// WarmupTxns run before the measured interval (defaults to Txns/10).
	WarmupTxns int
	// Streams is the number of submitter goroutines; BOHM wants several
	// to keep its pipeline full, the baselines parallelize internally.
	Streams int
	// Chunk is the number of transactions per ExecuteBatch call.
	Chunk int
	// Procs, when positive, sets GOMAXPROCS for the duration of the run.
	// On machines with fewer cores than the simulated thread count this
	// oversubscribes the cores, letting the kernel timeslice the worker
	// threads so that contention effects interleave at fine grain (see
	// DESIGN.md's substitution table).
	Procs int
	// Label tags the run in machine-readable reports; sweeps use it to
	// distinguish configurations of the same engine (e.g. "procs=4,theta=0.9").
	Label string
}

// normalize fills defaults for the given engine kind.
func (o Options) normalize(kind EngineKind) Options {
	if o.Txns < 1 {
		o.Txns = 10_000
	}
	if o.WarmupTxns == 0 {
		o.WarmupTxns = o.Txns / 10
	}
	if o.Streams < 1 {
		if kind == Bohm {
			o.Streams = 4
		} else {
			o.Streams = 1
		}
	}
	if o.Chunk < 1 {
		o.Chunk = 4096
	}
	return o
}

// Result is the outcome of one measured run.
type Result struct {
	Txns       int
	Elapsed    time.Duration
	Throughput float64 // committed transactions per second
	Stats      engine.Stats
	Label      string
	// Per-transaction submission latency percentiles: every transaction
	// carries its ExecuteBatch call's full duration (submission to
	// completion), weighted into an obs histogram, so a 4096-transaction
	// chunk counts 4096 times — true per-transaction percentiles, unlike
	// the old per-chunk samples that weighted a 64-txn straggler chunk
	// equally with a full one. On a garbage-collected runtime the tail
	// (P999, Max) makes GC pauses visible in a way mean throughput hides.
	P50, P99, P999, Max time.Duration
}

// Run drives gen's transactions through e and measures throughput. gen is
// called once per stream and must return an independent transaction
// source; sources are used from a single goroutine each.
func Run(kind EngineKind, e engine.Engine, o Options, gen func(stream int) func() txn.Txn) Result {
	o = o.normalize(kind)
	if o.Procs > 0 {
		old := runtime.GOMAXPROCS(o.Procs)
		defer runtime.GOMAXPROCS(old)
	}

	sources := make([]func() txn.Txn, o.Streams)
	for s := range sources {
		sources[s] = gen(s)
	}

	// feed drives `total` transactions through the engine; when hist is
	// non-nil each ExecuteBatch call's duration is recorded once per
	// transaction it carried (one sharded, allocation-free RecordN per
	// call), so the histogram holds the per-transaction submission
	// latency distribution.
	feed := func(total int, hist *obs.Histogram) {
		var wg sync.WaitGroup
		per := (total + o.Streams - 1) / o.Streams
		for s := 0; s < o.Streams; s++ {
			wg.Add(1)
			go func(stream int, src func() txn.Txn) {
				defer wg.Done()
				remaining := per
				for remaining > 0 {
					n := o.Chunk
					if n > remaining {
						n = remaining
					}
					ts := make([]txn.Txn, n)
					for i := range ts {
						ts[i] = src()
					}
					start := time.Now()
					e.ExecuteBatch(ts)
					if hist != nil {
						hist.RecordN(stream, uint64(time.Since(start)), uint64(n))
					}
					remaining -= n
				}
			}(s, sources[s])
		}
		wg.Wait()
	}

	if o.WarmupTxns > 0 {
		feed(o.WarmupTxns, nil)
	}
	runtime.GC()
	before := e.Stats()
	hist := obs.NewHistogram(o.Streams)
	start := time.Now()
	feed(o.Txns, hist)
	elapsed := time.Since(start)
	stats := e.Stats().Sub(before)

	snap := hist.Snapshot()
	res := Result{
		Txns:       o.Txns,
		Elapsed:    elapsed,
		Throughput: float64(stats.Committed) / elapsed.Seconds(),
		Stats:      stats,
		Label:      o.Label,
		P50:        time.Duration(snap.Quantile(0.50)),
		P99:        time.Duration(snap.Quantile(0.99)),
		P999:       time.Duration(snap.Quantile(0.999)),
		Max:        time.Duration(snap.Max),
	}
	recordRun(kind, res)
	return res
}
