package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"bohm/internal/engine"
)

// Machine-readable benchmark output: alongside the human-oriented tables,
// the harness can record every measured run — throughput, abort rate,
// latency percentiles and the full counter snapshot — so successive PRs
// can track the performance trajectory from committed BENCH_*.json files.

// RunRecord is one measured run in a machine-readable report.
type RunRecord struct {
	// Engine is the engine kind ("Bohm", "OCC", ...).
	Engine string `json:"engine"`
	// Label distinguishes sweep configurations of the same engine, e.g.
	// "procs=4,theta=0.9" in the scalability experiment. Empty for runs
	// that are identified by their table position alone.
	Label string `json:"label,omitempty"`
	// Txns is the number of measured transactions.
	Txns int `json:"txns"`
	// ElapsedMS is the measured interval in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ThroughputTPS is committed transactions per second.
	ThroughputTPS float64 `json:"throughput_tps"`
	// AbortRate is user aborts over attempted transactions (0..1).
	AbortRate float64 `json:"abort_rate"`
	// P50Micros through MaxMicros are per-transaction submission latency
	// percentiles in microseconds (each transaction weighted by its
	// ExecuteBatch call's full duration; see Result).
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MaxMicros  float64 `json:"max_us"`
	// Stats is the engine's counter delta over the measured interval.
	Stats engine.Stats `json:"stats"`
}

var collector struct {
	mu   sync.Mutex
	on   bool
	runs []RunRecord
}

// StartCollecting makes every subsequent Run append a RunRecord to the
// collector (until CollectedRuns drains it). The bench command turns this
// on when asked for JSON output.
func StartCollecting() {
	collector.mu.Lock()
	collector.on = true
	collector.runs = nil
	collector.mu.Unlock()
}

// CollectedRuns returns and clears the runs recorded since
// StartCollecting.
func CollectedRuns() []RunRecord {
	collector.mu.Lock()
	defer collector.mu.Unlock()
	runs := collector.runs
	collector.runs = nil
	return runs
}

// recordRun appends one run to the collector if it is on.
func recordRun(kind EngineKind, r Result) {
	collector.mu.Lock()
	defer collector.mu.Unlock()
	if !collector.on {
		return
	}
	attempted := r.Stats.Committed + r.Stats.UserAborts
	rate := 0.0
	if attempted > 0 {
		rate = float64(r.Stats.UserAborts) / float64(attempted)
	}
	collector.runs = append(collector.runs, RunRecord{
		Engine:        string(kind),
		Label:         r.Label,
		Txns:          r.Txns,
		ElapsedMS:     float64(r.Elapsed.Microseconds()) / 1e3,
		ThroughputTPS: r.Throughput,
		AbortRate:     rate,
		P50Micros:     float64(r.P50.Nanoseconds()) / 1e3,
		P99Micros:     float64(r.P99.Nanoseconds()) / 1e3,
		P999Micros:    float64(r.P999.Nanoseconds()) / 1e3,
		MaxMicros:     float64(r.Max.Nanoseconds()) / 1e3,
		Stats:         r.Stats,
	})
}

// Report is the top-level JSON document bohm-bench emits.
type Report struct {
	// GeneratedAt is an RFC 3339 timestamp.
	GeneratedAt string `json:"generated_at"`
	// Scale names the experiment scale ("quick", "ref", "paper").
	Scale string `json:"scale"`
	// GoMaxProcs is the GOMAXPROCS the experiments ran under.
	GoMaxProcs int `json:"gomaxprocs"`
	// Records and TxnsPerPoint echo the scale's table size and measured
	// transaction count after command-line overrides.
	Records      int `json:"records"`
	TxnsPerPoint int `json:"txns_per_point"`
	// Experiments lists the experiment ids that ran.
	Experiments []string `json:"experiments"`
	// Tables are the per-figure grids, as printed.
	Tables []*Table `json:"tables"`
	// Runs are the individual measurements behind the tables, in
	// execution order.
	Runs []RunRecord `json:"runs"`
}

// WriteReport marshals rep and writes it to path.
func WriteReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing report: %w", err)
	}
	return nil
}
