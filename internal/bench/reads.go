package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Reads measures the read-heavy YCSB mixes the read-only fast path is
// built for: single-key zipfian operations with the read fraction swept
// through YCSB-B (95/5) up to YCSB-C (100/0). The first table compares
// all five engines; the second isolates BOHM's fast path against the
// pipelined ablation (Config.DisableReadOnlyFastPath) on identical
// configurations — the committed BENCH_reads.json pins the speedup.
func Reads(s Scale) []*Table {
	engines := &Table{
		ID:    "reads",
		Title: fmt.Sprintf("YCSB-B/C single-key read mix at %d threads (zipfian theta=0.9)", s.MaxThreads),
		Param: "% reads",
		Notes: []string{
			hostNote(),
			"reads are single-key read-only transactions (YCSB-C = 100%); writes are single-key RMW",
			"BOHM serves the reads on its snapshot fast path (Stats.ReadOnlyFastPath in the JSON runs)",
		},
	}
	for _, k := range AllEngines {
		engines.Series = append(engines.Series, string(k))
	}
	for _, pct := range s.ReadMixPcts {
		var vals []float64
		for _, k := range AllEngines {
			e, err := MakeEngine(k, s.MaxThreads, s.Records)
			if err != nil {
				panic(err)
			}
			vals = append(vals, readMixPoint(k, e, s, pct))
		}
		engines.AddRow(fmt.Sprintf("%d%%", pct), vals...)
	}

	cc, exec := bohmSplit(s.MaxThreads)
	ablation := &Table{
		ID:    "reads-ablation",
		Title: fmt.Sprintf("BOHM read-only fast path vs pipeline (%d CC + %d exec workers)", cc, exec),
		Param: "% reads",
		Series: []string{
			"fast path", "pipeline", "speedup %",
		},
		Notes: []string{
			"identical configurations; \"pipeline\" sets Config.DisableReadOnlyFastPath",
			"speedup % is fast-path throughput over pipelined throughput at the same mix, in percent",
			"transactions are pre-built and resubmitted in a ring from a single submitter stream, so the numbers isolate the engine paths from driver-side generation and scheduler oversubscription",
			"the 100% row is YCSB-C: reads bypass the sequencer, CC partitions, batch barrier and execution scheduler entirely",
		},
	}
	for _, pct := range s.ReadMixPcts {
		once := func(disable bool) float64 {
			cfg := core.DefaultConfig()
			cfg.CCWorkers, cfg.ExecWorkers = cc, exec
			cfg.Capacity = s.Records
			cfg.DisableReadOnlyFastPath = disable
			e, err := core.New(cfg)
			if err != nil {
				panic(err)
			}
			defer e.Close()
			y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
			if err := y.LoadInto(e); err != nil {
				panic(err)
			}
			// No GOMAXPROCS override: the ablation measures the two engine
			// paths at the host's real parallelism; oversubscription noise
			// would swamp the per-operation delta.
			r := Run(Bohm, e, Options{Txns: s.Txns, Streams: 1},
				prebuiltMixGen(y, 0.9, pct, 8192))
			return r.Throughput
		}
		// Best of three: scheduler interference only ever subtracts, so
		// the maximum is the least-noisy estimate of each path's capacity.
		point := func(disable bool) float64 {
			best := 0.0
			for i := 0; i < 3; i++ {
				if v := once(disable); v > best {
					best = v
				}
			}
			return best
		}
		fast := point(false)
		piped := point(true)
		speedup := 0.0
		if piped > 0 {
			speedup = 100 * fast / piped
		}
		ablation.AddRow(fmt.Sprintf("%d%%", pct), fast, piped, speedup)
	}

	// The mixed-call table measures the split heuristic itself, so it
	// sweeps read fractions around the majority threshold rather than the
	// read-heavy YCSB-B/C region above.
	mixed := &Table{
		ID:    "reads-mixed",
		Title: fmt.Sprintf("BOHM mixed-call heuristic: majority split vs always split (%d CC + %d exec workers)", cc, exec),
		Param: "% reads",
		Series: []string{
			"heuristic", "always split", "heuristic %",
		},
		Notes: []string{
			"every submission mixes single-key reads and RMWs in one ExecuteBatch call; the heuristic diverts the reads to the snapshot fast path only when they are the strict majority of the call",
			"\"always split\" sets Config.DisableMixedPipelining — the unconditional diversion, which at read-minority mixes pays the two-path coordination cost for little fast-path work",
			"heuristic % is heuristic throughput over always-split throughput at the same mix, in percent; at and below 50% reads the heuristic keeps the reads pipelined and must not regress",
			"median of interleaved paired reps (scale-cc methodology): the two arms alternate within each rep so scheduler drift hits both equally, and the median ratio discards the outlier runs a 1-core host produces",
		},
	}
	for _, pct := range []int{25, 50, 75} {
		once := func(alwaysSplit bool) float64 {
			cfg := core.DefaultConfig()
			cfg.CCWorkers, cfg.ExecWorkers = cc, exec
			cfg.Capacity = s.Records
			cfg.DisableMixedPipelining = alwaysSplit
			e, err := core.New(cfg)
			if err != nil {
				panic(err)
			}
			defer e.Close()
			y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
			if err := y.LoadInto(e); err != nil {
				panic(err)
			}
			r := Run(Bohm, e, Options{Txns: s.Txns, Streams: 1},
				prebuiltMixGen(y, 0.9, pct, 8192))
			return r.Throughput
		}
		// Interleaved paired reps, median ratio: best-of-N per arm assumes
		// noise only subtracts uniformly, but a 1-core host's interference
		// is bursty enough to starve one arm's entire run block. Pairing
		// the arms back-to-back inside each rep exposes both to the same
		// conditions; the median pair is the representative one.
		const reps = 5
		type pair struct{ heuristic, split float64 }
		pairs := make([]pair, reps)
		for i := range pairs {
			pairs[i] = pair{heuristic: once(false), split: once(true)}
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].heuristic/pairs[i].split < pairs[j].heuristic/pairs[j].split
		})
		med := pairs[reps/2]
		mixed.AddRow(fmt.Sprintf("%d%%", pct), med.heuristic, med.split,
			100*med.heuristic/med.split)
	}
	return []*Table{engines, ablation, mixed}
}

// readMixGen mixes single-key zipfian point reads and RMW updates at the
// given read percentage, one independent source and rng per stream.
func readMixGen(y workload.YCSB, theta float64, readPct int) func(stream int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := y.NewSource(int64(7000+stream*31337), theta)
		rng := rand.New(rand.NewSource(int64(41 + stream)))
		return func() txn.Txn {
			if rng.Intn(100) < readPct {
				return src.PointRead()
			}
			return src.RMW1()
		}
	}
}

// prebuiltMixGen pre-builds a per-stream ring of the read mix and cycles
// it: resubmission costs nothing on the driver side, so ablation points
// measure the engine paths alone. A stream never has the same transaction
// instance in flight twice (submission is synchronous per stream).
func prebuiltMixGen(y workload.YCSB, theta float64, readPct, ring int) func(stream int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := y.NewSource(int64(8000+stream*127), theta)
		rng := rand.New(rand.NewSource(int64(97 + stream)))
		txns := make([]txn.Txn, ring)
		for i := range txns {
			if rng.Intn(100) < readPct {
				txns[i] = src.PointRead()
			} else {
				txns[i] = src.RMW1()
			}
		}
		i := 0
		return func() txn.Txn {
			t := txns[i%ring]
			i++
			return t
		}
	}
}

// readMixPoint loads e, runs the mix, closes the engine, and returns the
// committed throughput.
func readMixPoint(kind EngineKind, e engine.Engine, s Scale, readPct int) float64 {
	defer e.Close()
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	r := Run(kind, e, Options{Txns: s.Txns, Procs: s.MaxThreads}, readMixGen(y, 0.9, readPct))
	return r.Throughput
}
