package bench

import (
	"fmt"
	"math/rand"

	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Reads measures the read-heavy YCSB mixes the read-only fast path is
// built for: single-key zipfian operations with the read fraction swept
// through YCSB-B (95/5) up to YCSB-C (100/0). The first table compares
// all five engines; the second isolates BOHM's fast path against the
// pipelined ablation (Config.DisableReadOnlyFastPath) on identical
// configurations — the committed BENCH_reads.json pins the speedup.
func Reads(s Scale) []*Table {
	engines := &Table{
		ID:    "reads",
		Title: fmt.Sprintf("YCSB-B/C single-key read mix at %d threads (zipfian theta=0.9)", s.MaxThreads),
		Param: "% reads",
		Notes: []string{
			hostNote(),
			"reads are single-key read-only transactions (YCSB-C = 100%); writes are single-key RMW",
			"BOHM serves the reads on its snapshot fast path (Stats.ReadOnlyFastPath in the JSON runs)",
		},
	}
	for _, k := range AllEngines {
		engines.Series = append(engines.Series, string(k))
	}
	for _, pct := range s.ReadMixPcts {
		var vals []float64
		for _, k := range AllEngines {
			e, err := MakeEngine(k, s.MaxThreads, s.Records)
			if err != nil {
				panic(err)
			}
			vals = append(vals, readMixPoint(k, e, s, pct))
		}
		engines.AddRow(fmt.Sprintf("%d%%", pct), vals...)
	}

	cc, exec := bohmSplit(s.MaxThreads)
	ablation := &Table{
		ID:    "reads-ablation",
		Title: fmt.Sprintf("BOHM read-only fast path vs pipeline (%d CC + %d exec workers)", cc, exec),
		Param: "% reads",
		Series: []string{
			"fast path", "pipeline", "speedup %",
		},
		Notes: []string{
			"identical configurations; \"pipeline\" sets Config.DisableReadOnlyFastPath",
			"speedup % is fast-path throughput over pipelined throughput at the same mix, in percent",
			"transactions are pre-built and resubmitted in a ring from a single submitter stream, so the numbers isolate the engine paths from driver-side generation and scheduler oversubscription",
			"the 100% row is YCSB-C: reads bypass the sequencer, CC partitions, batch barrier and execution scheduler entirely",
		},
	}
	for _, pct := range s.ReadMixPcts {
		once := func(disable bool) float64 {
			cfg := core.DefaultConfig()
			cfg.CCWorkers, cfg.ExecWorkers = cc, exec
			cfg.Capacity = s.Records
			cfg.DisableReadOnlyFastPath = disable
			e, err := core.New(cfg)
			if err != nil {
				panic(err)
			}
			defer e.Close()
			y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
			if err := y.LoadInto(e); err != nil {
				panic(err)
			}
			// No GOMAXPROCS override: the ablation measures the two engine
			// paths at the host's real parallelism; oversubscription noise
			// would swamp the per-operation delta.
			r := Run(Bohm, e, Options{Txns: s.Txns, Streams: 1},
				prebuiltMixGen(y, 0.9, pct, 8192))
			return r.Throughput
		}
		// Best of three: scheduler interference only ever subtracts, so
		// the maximum is the least-noisy estimate of each path's capacity.
		point := func(disable bool) float64 {
			best := 0.0
			for i := 0; i < 3; i++ {
				if v := once(disable); v > best {
					best = v
				}
			}
			return best
		}
		fast := point(false)
		piped := point(true)
		speedup := 0.0
		if piped > 0 {
			speedup = 100 * fast / piped
		}
		ablation.AddRow(fmt.Sprintf("%d%%", pct), fast, piped, speedup)
	}
	return []*Table{engines, ablation}
}

// readMixGen mixes single-key zipfian point reads and RMW updates at the
// given read percentage, one independent source and rng per stream.
func readMixGen(y workload.YCSB, theta float64, readPct int) func(stream int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := y.NewSource(int64(7000+stream*31337), theta)
		rng := rand.New(rand.NewSource(int64(41 + stream)))
		return func() txn.Txn {
			if rng.Intn(100) < readPct {
				return src.PointRead()
			}
			return src.RMW1()
		}
	}
}

// prebuiltMixGen pre-builds a per-stream ring of the read mix and cycles
// it: resubmission costs nothing on the driver side, so ablation points
// measure the engine paths alone. A stream never has the same transaction
// instance in flight twice (submission is synchronous per stream).
func prebuiltMixGen(y workload.YCSB, theta float64, readPct, ring int) func(stream int) func() txn.Txn {
	return func(stream int) func() txn.Txn {
		src := y.NewSource(int64(8000+stream*127), theta)
		rng := rand.New(rand.NewSource(int64(97 + stream)))
		txns := make([]txn.Txn, ring)
		for i := range txns {
			if rng.Intn(100) < readPct {
				txns[i] = src.PointRead()
			} else {
				txns[i] = src.RMW1()
			}
		}
		i := 0
		return func() txn.Txn {
			t := txns[i%ring]
			i++
			return t
		}
	}
}

// readMixPoint loads e, runs the mix, closes the engine, and returns the
// committed throughput.
func readMixPoint(kind EngineKind, e engine.Engine, s Scale, readPct int) float64 {
	defer e.Close()
	y := workload.YCSB{Records: s.Records, RecordSize: s.RecordSize}
	if err := y.LoadInto(e); err != nil {
		panic(err)
	}
	r := Run(kind, e, Options{Txns: s.Txns, Procs: s.MaxThreads}, readMixGen(y, 0.9, readPct))
	return r.Throughput
}
