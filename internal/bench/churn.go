package bench

import (
	"fmt"

	"bohm/internal/core"
	"bohm/internal/engine"
	"bohm/internal/txn"
	"bohm/internal/workload"
)

// Churn is the index-lifecycle experiment: a table where a fraction of the
// keys has been deleted (queue/session/TTL churn), measured under a
// scan-heavy mix with ongoing delete/re-insert rotation. An insert-only
// index pays for every key that ever existed — dead directory entries and
// tombstone chains sit on every scan's path — while BOHM's reaper
// converges the index to the live working set. The "Bohm (DisableReaping)"
// series is the ablation: identical engine, lifecycle off; the gap between
// the two BOHM rows is what reaping buys, and it widens with the dead
// fraction. The second table reports the reclamation counters.
func Churn(s Scale) []*Table {
	mix := &Table{
		ID: "churn",
		Title: fmt.Sprintf("churn scan mix at %d threads (%d%% scans of %d ids, delete/re-insert rotation)",
			s.MaxThreads, churnScanPct, s.ChurnScanLen),
		Param: "% dead keys",
		Notes: []string{
			hostNote(),
			"dead keys are spread uniformly over the id space (id % 100 < pct), so every scan window crosses them",
			"Bohm (DisableReaping) is the insert-only-index ablation: same engine, index lifecycle off",
		},
	}
	for _, k := range AllEngines {
		mix.Series = append(mix.Series, string(k))
	}
	mix.Series = append(mix.Series, "Bohm (DisableReaping)")

	reclaim := &Table{
		ID:     "churn-reclaim",
		Title:  "BOHM index lifecycle during the churn run (reaping on)",
		Param:  "% dead keys",
		Series: []string{"keys reaped", "dir KiB reclaimed", "fence skips", "live dir entries/records"},
		Notes: []string{
			"counters cover the whole point (kill + settle + measured mix); entries/records near 1.0 means the directory converged to the live set",
		},
	}

	for _, pct := range s.ChurnDeadPcts {
		var vals []float64
		var reap churnResult
		for _, k := range AllEngines {
			tput, r := churnPoint(k, s, pct, false)
			vals = append(vals, tput)
			if k == Bohm {
				reap = r
			}
		}
		tput, _ := churnPoint(Bohm, s, pct, true)
		vals = append(vals, tput)
		mix.AddRow(fmt.Sprintf("%d%%", pct), vals...)

		live := float64(s.Records) * float64(100-pct) / 100.0
		reclaim.AddRow(fmt.Sprintf("%d%%", pct),
			float64(reap.Stats.KeysReaped),
			float64(reap.Stats.DirBytesReclaimed)/1024.0,
			float64(reap.Stats.RangeFenceSkips),
			float64(reap.DirEntries)/live,
		)
	}
	return []*Table{mix, reclaim}
}

// churnScanPct is the scan share of the measured mix; the rest is
// delete/re-insert rotation, which keeps the reaper exercised while the
// measurement runs.
const churnScanPct = 90

// churnPoint measures one engine at one dead-key fraction: load the
// table, kill pct% of the keys (spread uniformly), let the index settle
// (for BOHM, enough batches for the reap sweep to cover the directory),
// then measure the scan-heavy mix.
func churnPoint(kind EngineKind, s Scale, pct int, disableReaping bool) (float64, churnResult) {
	c := workload.Churn{Records: s.Records, RecordSize: s.RecordSize}
	e := makeChurnEngine(kind, s, disableReaping)
	defer e.Close()
	if err := c.LoadInto(e); err != nil {
		panic(err)
	}

	// Kill phase: delete every id whose residue falls below pct.
	const chunk = 1024
	var dels []txn.Txn
	for id := 0; id < s.Records; id++ {
		if id%100 < pct {
			dels = append(dels, &workload.DeleteTxn{K: txn.Key{Table: workload.ChurnTable, ID: uint64(id)}})
		}
		if len(dels) == chunk {
			mustCommit(e.ExecuteBatch(dels))
			dels = dels[:0]
		}
	}
	if len(dels) > 0 {
		mustCommit(e.ExecuteBatch(dels))
	}

	// Settle phase: single-transaction batches tick BOHM's per-batch reap
	// sweep until it has covered the directory several times over; for the
	// other engines this is a no-op warmup. The settle key's residue 99
	// stays live for every swept fraction.
	settleKey := txn.Key{Table: workload.ChurnTable, ID: uint64(s.Records - s.Records%100 - 1)}
	val := txn.NewValue(s.RecordSize, 1)
	settleBatches := s.Records/128 + 64
	for i := 0; i < settleBatches; i++ {
		mustCommit(e.ExecuteBatch([]txn.Txn{&workload.PutTxn{Keys: []txn.Key{settleKey}, Val: val}}))
	}

	gen := func(stream int) func() txn.Txn {
		src := c.NewSource(int64(31+stream*7919), 0) // uniform scan starts
		n := 0
		return func() txn.Txn {
			n++
			if n%100 < churnScanPct {
				return src.Scan(s.ChurnScanLen)
			}
			return src.Rotate(pct)
		}
	}
	// Scale the transaction count so each point does comparable row work.
	txns := s.Txns * 10 / (1 + s.ChurnScanLen/2)
	if txns < 500 {
		txns = 500
	}
	r := Run(kind, e, Options{Txns: txns, Procs: s.MaxThreads}, gen)
	// Lifecycle counters are lifetime totals (the kill and settle phases
	// are where most reaping happens), unlike r.Stats' measured interval.
	res := churnResult{Stats: e.Stats()}
	if b, ok := e.(*core.Engine); ok {
		res.DirEntries = b.DirectoryEntries()
	}
	return r.Throughput, res
}

// preparedScan is a pre-built read-only range scan whose callback and
// range declaration are constructed once: resubmitting it allocates
// nothing on the driver side, so the alloc-budget benchmark isolates the
// engine's own scan machinery.
type preparedScan struct {
	ranges []txn.KeyRange
	fn     func(k txn.Key, v []byte) error
	rows   int
	sum    uint64
}

func newPreparedScan(r txn.KeyRange) *preparedScan {
	t := &preparedScan{ranges: []txn.KeyRange{r}}
	t.fn = func(_ txn.Key, v []byte) error {
		t.rows++
		t.sum += txn.U64(v)
		return nil
	}
	return t
}

func (t *preparedScan) ReadSet() []txn.Key       { return nil }
func (t *preparedScan) WriteSet() []txn.Key      { return nil }
func (t *preparedScan) RangeSet() []txn.KeyRange { return t.ranges }
func (t *preparedScan) Run(ctx txn.Ctx) error {
	t.rows, t.sum = 0, 0
	return ctx.ReadRange(t.ranges[0], t.fn)
}

// ChurnScanWindows pre-builds a ring of fixed-length read-only range
// scans over the churn table, sliced into submission windows; the
// alloc-budget benchmark drives them over a churned-and-reaped table with
// a target of zero allocations per scan.
func ChurnScanWindows(records, scanLen, ring, window int) [][]txn.Txn {
	if scanLen >= records {
		scanLen = records - 1
	}
	txns := make([]txn.Txn, ring)
	for i := range txns {
		lo := uint64((i * 97) % (records - scanLen))
		txns[i] = newPreparedScan(txn.KeyRange{Table: workload.ChurnTable, Lo: lo, Hi: lo + uint64(scanLen)})
	}
	windows := make([][]txn.Txn, 0, ring/window)
	for i := 0; i+window <= ring; i += window {
		windows = append(windows, txns[i:i+window])
	}
	return windows
}

// churnResult carries the per-point counters the reclamation table needs.
type churnResult struct {
	Stats      engine.Stats
	DirEntries int
}

func makeChurnEngine(kind EngineKind, s Scale, disableReaping bool) engine.Engine {
	if kind == Bohm {
		cc, exec := bohmSplit(s.MaxThreads)
		cfg := core.DefaultConfig()
		cfg.CCWorkers, cfg.ExecWorkers = cc, exec
		cfg.Capacity = s.Records + s.Records/4 + 1024
		cfg.DisableReaping = disableReaping
		e, err := core.New(cfg)
		if err != nil {
			panic(err)
		}
		return e
	}
	e, err := MakeEngine(kind, s.MaxThreads, s.Records+s.Records/4+1024)
	if err != nil {
		panic(err)
	}
	return e
}

func mustCommit(res []error) {
	for _, err := range res {
		if err != nil {
			panic(err)
		}
	}
}
