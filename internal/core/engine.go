package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bohm/internal/engine"
	"bohm/internal/storage"
	"bohm/internal/txn"
)

// ErrClosed is returned by ExecuteBatch after Close.
var ErrClosed = errors.New("bohm: engine closed")

// Config parameterizes a BOHM engine. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// CCWorkers is the number of concurrency control threads (m in the
	// paper). Records are hash-partitioned across them.
	CCWorkers int
	// ExecWorkers is the number of transaction execution threads (n).
	ExecWorkers int
	// BatchSize is the number of transactions per coordination batch
	// (§3.2.4). Larger batches amortize the inter-phase barrier.
	BatchSize int
	// Capacity is the expected number of records across all tables; the
	// partitioned hash index is sized from it.
	Capacity int
	// GC enables incremental garbage collection of superseded versions
	// (§3.3.2, Condition 3).
	GC bool
	// DisableReadRefs turns off the read-reference annotation of §3.2.3,
	// forcing reads to traverse version chains (ablation).
	DisableReadRefs bool
	// Preprocess enables the §3.2.2 pre-processing layer: transactions
	// are analyzed once and per-partition work lists are forwarded to the
	// CC workers, so a CC worker no longer examines transactions that
	// write nothing in its partition.
	Preprocess bool
	// PreprocessWorkers sizes the pre-processing pool (default 1). The
	// analysis is embarrassingly parallel; each worker handles a
	// contiguous stripe of every batch.
	PreprocessWorkers int
}

// DefaultConfig returns a small general-purpose configuration.
func DefaultConfig() Config {
	return Config{
		CCWorkers:   2,
		ExecWorkers: 2,
		BatchSize:   1024,
		Capacity:    1 << 20,
		GC:          true,
	}
}

func (c *Config) normalize() error {
	if c.CCWorkers < 1 || c.ExecWorkers < 1 {
		return fmt.Errorf("bohm: need at least one CC and one execution worker (got %d, %d)", c.CCWorkers, c.ExecWorkers)
	}
	if c.BatchSize < 1 {
		c.BatchSize = 1024
	}
	if c.Capacity < 1 {
		c.Capacity = 1 << 20
	}
	if c.Preprocess && c.PreprocessWorkers < 1 {
		c.PreprocessWorkers = 1
	}
	return nil
}

// stats holds the engine's counters; padded alignment is not needed since
// hot-path counters are sharded per worker and folded on read.
type workerStats struct {
	committed         uint64
	userAborts        uint64
	readRefHits       uint64
	chainSteps        uint64
	requeues          uint64
	recursiveExecs    uint64
	versionsCreated   uint64
	versionsCollected uint64
	_                 [8]uint64 // pad to a cache line to avoid false sharing
}

// Engine is a running BOHM instance. Create with New, feed with
// ExecuteBatch, and Close when done.
type Engine struct {
	cfg Config

	// parts[p] is the version-chain index owned by CC worker p. Only
	// worker p inserts; execution workers read concurrently.
	parts []*storage.Map[storage.Chain]

	subCh   chan *submission
	seqOut  []chan *batch // sequencer's output stage: ppIn or ccIn
	ppIn    []chan *batch
	ppDone  []chan *batch
	ccIn    []chan *batch
	ccDone  []chan *batch
	execIn  []chan *batch
	ccWG    sync.WaitGroup
	execWG  sync.WaitGroup
	seqWG   sync.WaitGroup
	closed  atomic.Bool
	batches atomic.Uint64

	// execBatch[i] is the newest batch sequence fully handled by
	// execution worker i; the minimum over workers is the GC watermark.
	execBatch []atomic.Uint64

	ccStats   []workerStats // one per CC worker, owner-written
	execStats []workerStats // one per execution worker
}

// New starts a BOHM engine with the given configuration: one sequencer
// goroutine, cfg.CCWorkers concurrency control goroutines and
// cfg.ExecWorkers execution goroutines.
func New(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		parts:     make([]*storage.Map[storage.Chain], cfg.CCWorkers),
		subCh:     make(chan *submission, 64),
		ccIn:      make([]chan *batch, cfg.CCWorkers),
		ccDone:    make([]chan *batch, cfg.CCWorkers),
		execIn:    make([]chan *batch, cfg.ExecWorkers),
		execBatch: make([]atomic.Uint64, cfg.ExecWorkers),
		ccStats:   make([]workerStats, cfg.CCWorkers),
		execStats: make([]workerStats, cfg.ExecWorkers),
	}
	perPart := cfg.Capacity/cfg.CCWorkers + cfg.Capacity/(4*cfg.CCWorkers) + 64
	for p := range e.parts {
		e.parts[p] = storage.NewMap[storage.Chain](perPart)
	}
	for i := range e.ccIn {
		e.ccIn[i] = make(chan *batch, 2)
		e.ccDone[i] = make(chan *batch, 2)
	}
	for i := range e.execIn {
		e.execIn[i] = make(chan *batch, 2)
	}
	e.seqOut = e.ccIn
	if cfg.Preprocess {
		e.ppIn = make([]chan *batch, cfg.PreprocessWorkers)
		e.ppDone = make([]chan *batch, cfg.PreprocessWorkers)
		for i := range e.ppIn {
			e.ppIn[i] = make(chan *batch, 2)
			e.ppDone[i] = make(chan *batch, 2)
		}
		e.seqOut = e.ppIn
		for j := 0; j < cfg.PreprocessWorkers; j++ {
			go e.preprocWorker(j)
		}
		go e.ppForwarder()
	}

	e.seqWG.Add(1)
	go e.sequencer()
	for w := 0; w < cfg.CCWorkers; w++ {
		e.ccWG.Add(1)
		go e.ccWorker(w)
	}
	go e.forwarder()
	for w := 0; w < cfg.ExecWorkers; w++ {
		e.execWG.Add(1)
		go e.execWorker(w)
	}
	return e, nil
}

// forwarder implements the batch barrier between the phases: it collects
// each batch's completion report from every CC worker (workers emit
// batches in sequence order) and releases the batch to every execution
// worker, preserving sequence order end-to-end.
func (e *Engine) forwarder() {
	for {
		var b *batch
		for w := range e.ccDone {
			bw, ok := <-e.ccDone[w]
			if !ok {
				for _, ch := range e.execIn {
					close(ch)
				}
				return
			}
			if b == nil {
				b = bw
			} else if b != bw {
				panic("bohm: CC workers emitted batches out of order")
			}
		}
		for _, ch := range e.execIn {
			ch <- b
		}
	}
}

// partitionOf returns the CC worker owning key k. Partition selection uses
// the high hash bits; the per-partition hash index probes with the low
// bits, so the two placements stay independent.
func (e *Engine) partitionOf(k txn.Key) int {
	return int((k.Hash() >> 40) % uint64(len(e.parts)))
}

// chainFor returns the version chain of k, or nil if the record has never
// existed.
func (e *Engine) chainFor(k txn.Key) *storage.Chain {
	return e.parts[e.partitionOf(k)].Get(k)
}

// Load inserts an initial record visible to every transaction. It must be
// called before any ExecuteBatch and is not safe for concurrent use with
// transaction processing.
func (e *Engine) Load(k txn.Key, v []byte) error {
	data := make([]byte, len(v))
	copy(data, v)
	chain := storage.NewChain(storage.NewLoadedVersion(data))
	_, ok, err := e.parts[e.partitionOf(k)].Insert(k, chain)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bohm: duplicate load of key %+v", k)
	}
	return nil
}

// ExecuteBatch submits transactions for serializable execution and blocks
// until every one has committed or aborted. The returned slice has one
// entry per transaction: nil for commit, the transaction's own error for a
// logic abort. The serialization order of the whole system is the
// submission order.
func (e *Engine) ExecuteBatch(ts []txn.Txn) []error {
	res := make([]error, len(ts))
	if len(ts) == 0 {
		return res
	}
	if e.closed.Load() {
		for i := range res {
			res[i] = ErrClosed
		}
		return res
	}
	sub := &submission{txns: ts, res: res, done: make(chan struct{})}
	sub.remaining.Store(int64(len(ts)))
	e.subCh <- sub
	<-sub.done
	return res
}

// Close drains the pipeline and stops all goroutines. ExecuteBatch must
// not be called concurrently with or after Close.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	close(e.subCh)
	e.seqWG.Wait()
	e.execWG.Wait()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() engine.Stats {
	var s engine.Stats
	for i := range e.ccStats {
		w := &e.ccStats[i]
		s.VersionsCreated += atomic.LoadUint64(&w.versionsCreated)
		s.VersionsCollected += atomic.LoadUint64(&w.versionsCollected)
	}
	for i := range e.execStats {
		w := &e.execStats[i]
		s.Committed += atomic.LoadUint64(&w.committed)
		s.UserAborts += atomic.LoadUint64(&w.userAborts)
		s.ReadRefHits += atomic.LoadUint64(&w.readRefHits)
		s.ChainSteps += atomic.LoadUint64(&w.chainSteps)
		s.Requeues += atomic.LoadUint64(&w.requeues)
		s.RecursiveExecs += atomic.LoadUint64(&w.recursiveExecs)
	}
	s.Batches = e.batches.Load()
	return s
}

// watermark returns the newest batch sequence every execution worker has
// finished (§3.3.2): versions superseded at or before it are collectable.
func (e *Engine) watermark() uint64 {
	wm := e.execBatch[0].Load()
	for i := 1; i < len(e.execBatch); i++ {
		if b := e.execBatch[i].Load(); b < wm {
			wm = b
		}
	}
	return wm
}
