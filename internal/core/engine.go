package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/engine"
	"bohm/internal/storage"
	"bohm/internal/txn"
	"bohm/internal/wal"
)

// ErrClosed is returned by ExecuteBatch after Close.
var ErrClosed = errors.New("bohm: engine closed")

// ErrDuplicateWriteKey is reported (wrapped, with the offending key) for a
// transaction whose declared write-set contains the same key twice. Each
// write-set entry allocates one placeholder version; duplicates would make
// the later placeholder's predecessor the earlier one — an intra-
// transaction dependency the executor can never satisfy (it would wait on
// its own unfinished attempt, livelocking the batch). ExecuteBatch rejects
// such transactions at submission; the rest of the batch runs normally.
var ErrDuplicateWriteKey = errors.New("bohm: duplicate key in declared write-set")

// Config parameterizes a BOHM engine. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// CCWorkers is the number of concurrency control threads (m in the
	// paper). Records are hash-partitioned across them.
	CCWorkers int
	// ExecWorkers is the number of transaction execution threads (n).
	ExecWorkers int
	// BatchSize is the number of transactions per coordination batch
	// (§3.2.4). Larger batches amortize the inter-phase barrier.
	BatchSize int
	// Capacity is the expected number of records across all tables; the
	// partitioned hash index is sized from it.
	Capacity int
	// GC enables incremental garbage collection of superseded versions
	// (§3.3.2, Condition 3).
	GC bool
	// DisableReadRefs turns off the read-reference annotation of §3.2.3,
	// forcing reads to traverse version chains (ablation).
	DisableReadRefs bool
	// DisablePooling turns off the engine's memory recycling (ablation):
	// batch, node and annotation memory is allocated per transaction and
	// abandoned to the runtime's garbage collector, and placeholder
	// versions are individually heap-allocated instead of drawn from
	// per-partition blocks. With pooling on (the default) the steady-state
	// transaction path performs no allocation: batches cycle through a
	// retire ring gated on the execution watermark (and the checkpoint
	// pin, when checkpointing), and versions collected by GC return to the
	// owning partition's pool under the same epoch argument. Results are
	// identical either way; only the allocation profile differs.
	DisablePooling bool
	// Preprocess enables the §3.2.2 pre-processing layer: transactions
	// are analyzed once and per-partition work lists are forwarded to the
	// CC workers, so a CC worker no longer examines transactions that
	// write nothing in its partition.
	Preprocess bool
	// PreprocessWorkers sizes the pre-processing pool (default 1). The
	// analysis is embarrassingly parallel; each worker handles a
	// contiguous stripe of every batch.
	PreprocessWorkers int

	// LogDir, when non-empty, enables the durability subsystem: every
	// batch is appended to a command log in LogDir before execution and
	// ExecuteBatch acknowledges a transaction only once its batch is
	// durable under SyncPolicy. Durability requires every submitted
	// transaction to implement txn.Loggable (see txn.Registry). New
	// demands an empty directory; Recover reopens an existing one.
	LogDir string
	// SyncPolicy selects when the command log is fsynced; the default,
	// wal.SyncEveryBatch, never loses an acknowledged transaction.
	SyncPolicy wal.SyncPolicy
	// SyncInterval is the group-commit period for wal.SyncByInterval
	// (default 2ms). Ignored under other policies.
	SyncInterval time.Duration
	// SegmentBytes caps a log segment file before rotation (default 16
	// MiB). Smaller segments truncate at finer grain after checkpoints.
	SegmentBytes int64
	// CheckpointEveryBatches, when > 0 with durability enabled, runs a
	// background checkpointer: every time that many batches have executed
	// it snapshots the database at a fixed batch watermark — concurrently
	// with execution, courtesy of the multiversion store — then truncates
	// the log below the checkpoint. While checkpointing is enabled the
	// garbage collector trails the newest checkpoint instead of the
	// execution watermark, so snapshot reads stay safe.
	CheckpointEveryBatches int
}

// DefaultConfig returns a small general-purpose configuration.
func DefaultConfig() Config {
	return Config{
		CCWorkers:   2,
		ExecWorkers: 2,
		BatchSize:   1024,
		Capacity:    1 << 20,
		GC:          true,
	}
}

func (c *Config) normalize() error {
	if c.CCWorkers < 1 || c.ExecWorkers < 1 {
		return fmt.Errorf("bohm: need at least one CC and one execution worker (got %d, %d)", c.CCWorkers, c.ExecWorkers)
	}
	if c.BatchSize < 1 {
		c.BatchSize = 1024
	}
	if c.Capacity < 1 {
		c.Capacity = 1 << 20
	}
	if c.Preprocess && c.PreprocessWorkers < 1 {
		c.PreprocessWorkers = 1
	}
	if c.CheckpointEveryBatches < 0 {
		c.CheckpointEveryBatches = 0
	}
	return nil
}

// pinActive reports whether the checkpoint GC pin is in force: with
// periodic checkpointing enabled, garbage collection is capped at the
// newest checkpoint so snapshot scans never race a chain truncation.
func (c *Config) pinActive() bool {
	return c.LogDir != "" && c.CheckpointEveryBatches > 0
}

// stats holds the engine's counters; padded alignment is not needed since
// hot-path counters are sharded per worker and folded on read.
type workerStats struct {
	committed         uint64
	userAborts        uint64
	readRefHits       uint64
	rangeRefHits      uint64
	chainSteps        uint64
	requeues          uint64
	recursiveExecs    uint64
	versionsCreated   uint64
	versionsCollected uint64
	rangeFenceSkips   uint64
	_                 [8]uint64 // pad to a cache line to avoid false sharing
}

// Engine is a running BOHM instance. Create with New, feed with
// ExecuteBatch, and Close when done.
type Engine struct {
	cfg Config

	// parts[p] is the version-chain index owned by CC worker p. Only
	// worker p inserts; execution workers read concurrently.
	parts []*storage.Map[storage.Chain]

	// dirs[p] is partition p's ordered key directory — the second tier of
	// the two-tier index. Worker p registers every first-ever key at
	// placeholder-insertion time, so when a batch reaches execution the
	// directory already names every key any earlier-timestamped
	// transaction will ever write; a range scan that walks it and
	// resolves visible versions is phantom-free by construction.
	dirs []*storage.Directory

	subCh   chan *submission
	seqOut  []chan *batch // sequencer's output stage: ppIn or ccIn
	ppIn    []chan *batch
	ppDone  []chan *batch
	ccIn    []chan *batch
	ccDone  []chan *batch
	execIn  []chan *batch
	ccWG    sync.WaitGroup
	execWG  sync.WaitGroup
	seqWG   sync.WaitGroup
	closed  atomic.Bool
	batches atomic.Uint64

	// seqBase offsets batch numbering: the first batch is seqBase+1.
	// Zero on a fresh engine; Recover sets it to the loaded checkpoint's
	// watermark so batch sequences — and therefore checkpoint watermarks
	// and log record numbering — stay monotone across crash epochs. A
	// checkpoint written after recovery can then never sort below a
	// stale pre-crash checkpoint left behind by an interrupted cleanup.
	seqBase uint64

	// execBatch[i] is the newest batch sequence fully handled by
	// execution worker i; the minimum over workers is the GC watermark.
	// Workers that have not yet finished a batch of this epoch read as
	// seqBase, not zero.
	execBatch []atomic.Uint64

	ccStats   []workerStats // one per CC worker, owner-written
	execStats []workerStats // one per execution worker

	// Pooling state (nil / unused under Config.DisablePooling). vpools[p]
	// is CC worker p's version block allocator; retireCh carries executed
	// batches back to the sequencer, which recycles them once the
	// watermark gate (retireLag) passes. arenaBatches and arenaBytes are
	// the recycling observability counters.
	vpools       []*storage.VersionPool
	retireCh     chan *batch
	arenaBatches atomic.Uint64
	arenaBytes   atomic.Uint64

	// Durability state; see durability.go. wal and ackCh are nil when
	// Config.LogDir is empty. logOn flips on only while the pipeline is
	// quiescent (at New, or at the end of Recover's replay).
	wal     *wal.Writer
	logOn   atomic.Bool
	ackCh   chan *submission
	ackWG   sync.WaitGroup
	trackTS bool // sequencer records batch-end timestamp boundaries

	ckptStop chan struct{}
	ckptWG   sync.WaitGroup
	ckptMu   sync.Mutex    // serializes checkpoint writers
	ckptPin  atomic.Uint64 // GC cap (newest checkpoint); ^0 when inactive
	lastCkpt atomic.Uint64 // newest checkpointed batch watermark
	// hasCkpt records that a checkpoint covering lastCkpt exists on disk
	// (written by this engine, or restored by Recover). Written under
	// ckptMu or before the engine's goroutines start.
	hasCkpt    bool
	ckptCount  atomic.Uint64
	ckptFailed atomic.Uint64

	batchTSMu sync.Mutex
	batchTS   map[uint64]uint64 // batch seq -> first timestamp after it
}

// New starts a BOHM engine with the given configuration: one sequencer
// goroutine, cfg.CCWorkers concurrency control goroutines and
// cfg.ExecWorkers execution goroutines. With cfg.LogDir set, New demands a
// directory without prior durable state — reopening an existing database
// goes through Recover.
func New(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.LogDir != "" {
		has, err := wal.HasState(cfg.LogDir)
		if err != nil {
			return nil, err
		}
		if has {
			return nil, fmt.Errorf("bohm: %s holds an existing log or checkpoint; use Recover", cfg.LogDir)
		}
	}
	e := build(cfg)
	if cfg.LogDir != "" {
		if err := e.startDurability(); err != nil {
			return nil, err
		}
	}
	e.start()
	return e, nil
}

// build allocates an engine's passive state: partitions, channels and
// counters, but no goroutines and no durability wiring.
func build(cfg Config) *Engine {
	e := &Engine{
		cfg:       cfg,
		parts:     make([]*storage.Map[storage.Chain], cfg.CCWorkers),
		dirs:      make([]*storage.Directory, cfg.CCWorkers),
		subCh:     make(chan *submission, 64),
		ccIn:      make([]chan *batch, cfg.CCWorkers),
		ccDone:    make([]chan *batch, cfg.CCWorkers),
		execIn:    make([]chan *batch, cfg.ExecWorkers),
		execBatch: make([]atomic.Uint64, cfg.ExecWorkers),
		ccStats:   make([]workerStats, cfg.CCWorkers),
		execStats: make([]workerStats, cfg.ExecWorkers),
	}
	perPart := cfg.Capacity/cfg.CCWorkers + cfg.Capacity/(4*cfg.CCWorkers) + 64
	for p := range e.parts {
		e.parts[p] = storage.NewMap[storage.Chain](perPart)
		e.dirs[p] = storage.NewDirectory()
	}
	for i := range e.ccIn {
		e.ccIn[i] = make(chan *batch, 2)
		e.ccDone[i] = make(chan *batch, 2)
	}
	for i := range e.execIn {
		// The buffer depth is part of the retire ring's lifetime argument;
		// see retireLag before changing it.
		e.execIn[i] = make(chan *batch, execQueueCap)
	}
	if !cfg.DisablePooling {
		e.vpools = make([]*storage.VersionPool, cfg.CCWorkers)
		for p := range e.vpools {
			e.vpools[p] = storage.NewVersionPool()
		}
		// Sized past the free-list bound so execution workers never block
		// on retirement; overflow batches are simply dropped to the
		// runtime GC by the non-blocking send.
		e.retireCh = make(chan *batch, 2*maxFreeBatches)
	}
	e.seqOut = e.ccIn
	if cfg.Preprocess {
		e.ppIn = make([]chan *batch, cfg.PreprocessWorkers)
		e.ppDone = make([]chan *batch, cfg.PreprocessWorkers)
		for i := range e.ppIn {
			e.ppIn[i] = make(chan *batch, 2)
			e.ppDone[i] = make(chan *batch, 2)
		}
		e.seqOut = e.ppIn
	}
	e.ckptPin.Store(^uint64(0))
	if cfg.LogDir != "" {
		e.trackTS = true
		e.batchTS = make(map[uint64]uint64)
		if cfg.pinActive() {
			// GC trails the newest checkpoint; until the first one lands,
			// nothing is collected (bounded by the checkpoint interval).
			e.ckptPin.Store(0)
		}
	}
	return e
}

// start launches the pipeline goroutines. Durability wiring, when any,
// must be in place first: the sequencer reads e.wal.
func (e *Engine) start() {
	if e.cfg.Preprocess {
		for j := 0; j < e.cfg.PreprocessWorkers; j++ {
			go e.preprocWorker(j)
		}
		go e.ppForwarder()
	}
	e.seqWG.Add(1)
	go e.sequencer()
	for w := 0; w < e.cfg.CCWorkers; w++ {
		e.ccWG.Add(1)
		go e.ccWorker(w)
	}
	go e.forwarder()
	for w := 0; w < e.cfg.ExecWorkers; w++ {
		e.execWG.Add(1)
		go e.execWorker(w)
	}
}

// forwarder implements the batch barrier between the phases: it collects
// each batch's completion report from every CC worker (workers emit
// batches in sequence order) and releases the batch to every execution
// worker, preserving sequence order end-to-end.
func (e *Engine) forwarder() {
	for {
		var b *batch
		for w := range e.ccDone {
			bw, ok := <-e.ccDone[w]
			if !ok {
				for _, ch := range e.execIn {
					close(ch)
				}
				return
			}
			if b == nil {
				b = bw
			} else if b != bw {
				panic("bohm: CC workers emitted batches out of order")
			}
		}
		for _, ch := range e.execIn {
			ch <- b
		}
	}
}

// partitionOf returns the CC worker owning key k. Partition selection uses
// the high hash bits; the per-partition hash index probes with the low
// bits, so the two placements stay independent.
func (e *Engine) partitionOf(k txn.Key) int {
	return int((k.Hash() >> 40) % uint64(len(e.parts)))
}

// chainFor returns the version chain of k, or nil if the record has never
// existed.
func (e *Engine) chainFor(k txn.Key) *storage.Chain {
	return e.parts[e.partitionOf(k)].Get(k)
}

// Load inserts an initial record visible to every transaction. It must be
// called before any ExecuteBatch and is not safe for concurrent use with
// transaction processing. Loads bypass the command log; with durability
// enabled, call CheckpointNow after the last Load to seal them into the
// first checkpoint, or recovery will replay against an empty database.
func (e *Engine) Load(k txn.Key, v []byte) error {
	data := make([]byte, len(v))
	copy(data, v)
	chain := storage.NewChain(storage.NewLoadedVersion(data))
	p := e.partitionOf(k)
	_, ok, err := e.parts[p].Insert(k, chain)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bohm: duplicate load of key %+v", k)
	}
	e.dirs[p].Insert(k)
	return nil
}

// ExecuteBatch submits transactions for serializable execution and blocks
// until every one has committed or aborted. The returned slice has one
// entry per transaction: nil for commit, the transaction's own error for a
// logic abort. The serialization order of the whole system is the
// submission order.
func (e *Engine) ExecuteBatch(ts []txn.Txn) []error {
	res := make([]error, len(ts))
	if len(ts) == 0 {
		return res
	}
	if e.closed.Load() {
		for i := range res {
			res[i] = ErrClosed
		}
		return res
	}

	// Reject transactions whose write-set repeats a key before they can
	// reach the pipeline: a duplicate would chain a placeholder onto the
	// transaction's own earlier placeholder and livelock the executor.
	// Only the offending transactions are refused; the rest proceed.
	valid := ts
	var orig []int
	for i, t := range ts {
		if k, dup := txn.FindDuplicateKey(t.WriteSet()); dup {
			if orig == nil {
				orig = make([]int, 0, len(ts)-1)
				valid = make([]txn.Txn, 0, len(ts)-1)
				for j := 0; j < i; j++ {
					orig = append(orig, j)
					valid = append(valid, ts[j])
				}
			}
			res[i] = fmt.Errorf("%w: key %+v", ErrDuplicateWriteKey, k)
			continue
		}
		if orig != nil {
			orig = append(orig, i)
			valid = append(valid, t)
		}
	}
	if len(valid) == 0 {
		return res
	}

	sub := &submission{txns: valid, res: res, orig: orig, done: make(chan struct{})}
	if e.logOn.Load() {
		for _, t := range valid {
			if _, ok := t.(txn.Loggable); !ok {
				// Reject the whole submission: a half-logged batch could
				// not be replayed in order.
				err := fmt.Errorf("%w (got %T)", ErrNotLoggable, t)
				for i := range res {
					if res[i] == nil {
						res[i] = err
					}
				}
				return res
			}
		}
		sub.ackCh = e.ackCh
	}
	sub.remaining.Store(int64(len(valid)))
	e.subCh <- sub
	<-sub.done
	return res
}

// Close drains the pipeline, makes the log durable, and stops all
// goroutines. ExecuteBatch must not be called concurrently with or after
// Close.
func (e *Engine) Close() {
	e.shutdown(false)
}

// Kill simulates a crash for durability testing: it stops the engine like
// Close but abandons the command log without flushing, so bytes the
// writer had buffered past the last sync are dropped — the data-loss
// profile of a process crash. Acknowledged transactions survive under
// wal.SyncEveryBatch and wal.SyncByInterval; everything else is at the
// mercy of the sync policy, exactly as it would be for a real crash.
// Like Close, it must not run concurrently with ExecuteBatch.
func (e *Engine) Kill() {
	e.shutdown(true)
}

func (e *Engine) shutdown(kill bool) {
	if e.closed.Swap(true) {
		return
	}
	close(e.subCh)
	e.seqWG.Wait()
	e.execWG.Wait()
	if e.ckptStop != nil {
		close(e.ckptStop)
		e.ckptWG.Wait()
	}
	if e.ackCh != nil {
		close(e.ackCh)
		e.ackWG.Wait()
	}
	if e.wal != nil {
		if kill {
			e.wal.Kill()
		} else {
			_ = e.wal.Close()
		}
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() engine.Stats {
	var s engine.Stats
	for i := range e.ccStats {
		w := &e.ccStats[i]
		s.VersionsCreated += atomic.LoadUint64(&w.versionsCreated)
		s.VersionsCollected += atomic.LoadUint64(&w.versionsCollected)
		s.RangeFenceSkips += atomic.LoadUint64(&w.rangeFenceSkips)
	}
	for i := range e.execStats {
		w := &e.execStats[i]
		s.Committed += atomic.LoadUint64(&w.committed)
		s.UserAborts += atomic.LoadUint64(&w.userAborts)
		s.ReadRefHits += atomic.LoadUint64(&w.readRefHits)
		s.RangeRefHits += atomic.LoadUint64(&w.rangeRefHits)
		s.ChainSteps += atomic.LoadUint64(&w.chainSteps)
		s.Requeues += atomic.LoadUint64(&w.requeues)
		s.RecursiveExecs += atomic.LoadUint64(&w.recursiveExecs)
		s.RangeFenceSkips += atomic.LoadUint64(&w.rangeFenceSkips)
	}
	s.Batches = e.batches.Load()
	s.ArenaBatchesRecycled = e.arenaBatches.Load()
	s.BytesRecycled = e.arenaBytes.Load()
	for _, p := range e.vpools {
		pooled, recycled := p.Stats()
		s.VersionsPooled += pooled
		s.BytesRecycled += recycled * storage.VersionBytes
	}
	if e.wal != nil {
		ws := e.wal.Stats()
		s.LogBatches = ws.Batches
		s.LogBytes = ws.Bytes
		s.LogSyncs = ws.Syncs
	}
	s.Checkpoints = e.ckptCount.Load()
	s.CheckpointFailures = e.ckptFailed.Load()
	return s
}

// execWatermark returns the newest batch sequence every execution worker
// has finished (§3.3.2).
func (e *Engine) execWatermark() uint64 {
	wm := e.execBatch[0].Load()
	for i := 1; i < len(e.execBatch); i++ {
		if b := e.execBatch[i].Load(); b < wm {
			wm = b
		}
	}
	return wm
}

// watermark returns the garbage collection watermark: versions superseded
// at or before it are collectable. Normally this is the execution
// watermark; while periodic checkpointing is active it is capped at the
// newest checkpoint, so a snapshot scan at the checkpoint boundary never
// races a chain truncation (the snapshotter reads strictly above what GC
// may cut).
func (e *Engine) watermark() uint64 {
	wm := e.execWatermark()
	if pin := e.ckptPin.Load(); pin < wm {
		wm = pin
	}
	return wm
}
