package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bohm/internal/engine"
	"bohm/internal/obs"
	"bohm/internal/storage"
	"bohm/internal/txn"
	"bohm/internal/vfs"
	"bohm/internal/wal"
)

// RetryPolicy bounds the retry/backoff loops of the durability
// subsystem's two storage writers (Config.LogRetry, CheckpointRetry).
type RetryPolicy = wal.RetryPolicy

// ErrClosed is returned by ExecuteBatch after Close.
var ErrClosed = errors.New("bohm: engine closed")

// ErrDuplicateWriteKey is reported (wrapped, with the offending key) for a
// transaction whose declared write-set contains the same key twice. Each
// write-set entry allocates one placeholder version; duplicates would make
// the later placeholder's predecessor the earlier one — an intra-
// transaction dependency the executor can never satisfy (it would wait on
// its own unfinished attempt, livelocking the batch). ExecuteBatch rejects
// such transactions at submission; the rest of the batch runs normally.
var ErrDuplicateWriteKey = errors.New("bohm: duplicate key in declared write-set")

// Config parameterizes a BOHM engine. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// CCWorkers is the number of concurrency control threads (m in the
	// paper). Records are hash-partitioned across them.
	CCWorkers int
	// ExecWorkers is the number of transaction execution threads (n).
	ExecWorkers int
	// BatchSize is the number of transactions per coordination batch
	// (§3.2.4). Larger batches amortize the inter-phase barrier.
	BatchSize int
	// Capacity is the expected number of records across all tables; the
	// partitioned hash index is sized from it.
	Capacity int
	// GC enables incremental garbage collection of superseded versions
	// (§3.3.2, Condition 3).
	GC bool
	// DisableReadRefs turns off the read-reference annotation of §3.2.3,
	// forcing reads to traverse version chains (ablation).
	DisableReadRefs bool
	// DisablePooling turns off the engine's memory recycling (ablation):
	// batch, node and annotation memory is allocated per transaction and
	// abandoned to the runtime's garbage collector, and placeholder
	// versions are individually heap-allocated instead of drawn from
	// per-partition blocks. With pooling on (the default) the steady-state
	// transaction path performs no allocation: batches cycle through a
	// retire ring gated on the execution watermark (and the checkpoint
	// pin, when checkpointing), and versions collected by GC return to the
	// owning partition's pool under the same epoch argument. Results are
	// identical either way; only the allocation profile differs.
	DisablePooling bool
	// DisableReaping turns off the index lifecycle (ablation): dead keys —
	// records whose newest surviving version is a tombstone below the
	// execution watermark — keep their directory entries, hash slots and
	// version chains forever, the insert-only behaviour of the original
	// two-tier index. With reaping on (the default, when GC is on), each CC
	// worker sweeps a bounded slice of its partition's directory per batch
	// and fully reclaims proven-dead keys: the directory entry is unlinked
	// (shrinking the key fences), the hash slot is freed for reuse, and
	// the chain's versions retire through the version-pool limbo under the
	// same watermark epoch that gates chain GC. Results are identical
	// either way — a reaped key and a tombstoned key are equally invisible
	// — only memory and scan cost differ.
	DisableReaping bool
	// ReadWorkers sizes the snapshot-read pool serving the read-only fast
	// path (default: ExecWorkers). Read-only transactions never enter the
	// sequencer → CC → execution pipeline; they run on these workers
	// against the multiversion store at the execution watermark, where
	// every version is final.
	ReadWorkers int
	// DisableReadOnlyFastPath sends read-only transactions through the
	// full pipeline like any other transaction (ablation). The results
	// are identical for sequential submitters either way — the fast path
	// serializes a read-only transaction at the execution watermark,
	// which its recency gate keeps at or above every previously
	// acknowledged write — but concurrent submitters may observe
	// read-only transactions of a mixed ExecuteBatch call serializing
	// before, rather than after, that same call's writes. With the fast
	// path off, read-only transactions submitted to a durable engine must
	// be Loggable again (on the fast path they bypass the command log —
	// they contribute nothing to replay). The inline Read API is
	// unaffected: it always serves from the protected snapshot.
	DisableReadOnlyFastPath bool
	// Preprocess enables the §3.2.2 pre-processing layer: transactions
	// are analyzed once and per-partition work lists are forwarded to the
	// CC workers, so a CC worker no longer examines transactions that
	// write nothing in its partition.
	Preprocess bool
	// PreprocessWorkers sizes the pre-processing pool (default 1). The
	// analysis is embarrassingly parallel; each worker handles a
	// contiguous stripe of every batch.
	PreprocessWorkers int
	// DisableCCKernels turns off the amortized CC-phase kernels
	// (ablation): plans revert to ragged per-preproc-worker sub-slices,
	// every index probe re-hashes its key, and the per-batch hot-key memo
	// is bypassed — the pre-kernel baseline. Results are bit-identical
	// either way (pinned by TestDisableCCKernelsIdenticalResults); only
	// the CC stage's cache behaviour and hashing work differ.
	DisableCCKernels bool
	// DisableAdaptiveReap pins the index-lifecycle sweep budget at its
	// fixed default instead of scaling it by each sweep's observed
	// tombstone hit rate (ablation). Results are identical; only how fast
	// the directory converges after churn — and how much lifecycle work a
	// quiescent table pays per batch — differs.
	DisableAdaptiveReap bool
	// DisableValueArena turns off the payload arena (ablation): each
	// committed write's value is copied into a fresh heap allocation
	// abandoned to the runtime GC instead of being carved from the
	// executing worker's payload slab. The caller-buffer contract is
	// identical either way — install always copies the staged value, so a
	// transaction may reuse its write buffer the moment Run returns — and
	// results are bit-identical (pinned by
	// TestDisableValueArenaIdenticalResults); only the allocation profile
	// differs. Implied by DisablePooling: payload slabs recycle through
	// the version-pool limbo, so without version pooling there is no
	// epoch-gated release for the slabs to ride.
	DisableValueArena bool
	// DisableIdleReap turns off the idle reclamation tick (ablation): a
	// quiescent engine stops advancing reclamation the moment its last
	// submitted batch executes, leaving retired versions parked in limbo
	// and dead keys unswept until the next real submission arrives. With
	// the tick on (the default, when GC is on), an idle engine feeds
	// itself empty batches at a millisecond cadence — each one advances
	// the execution watermark, releases limbo generations, runs the
	// bounded reap sweep and trims pool blocks and payload slabs — until
	// a full directory sweep's worth of ticks passes without reclamation
	// progress. Results are unaffected; only how fast a quiescent
	// engine's memory converges to its live working set differs.
	DisableIdleReap bool
	// DisableMixedPipelining always splits a mixed ExecuteBatch call
	// (ablation): its read-only transactions divert to the snapshot-read
	// pool no matter how few they are. By default a mixed call whose
	// readers are not the majority keeps everything pipelined — the
	// split's bookkeeping and the half-empty batches it feeds the
	// sequencer cost more than the reads it relieves the pipeline of.
	// Serialization stays correct either way (pipelined reads serialize
	// in submission order, exactly as under DisableReadOnlyFastPath);
	// only the mixed call's throughput profile differs.
	DisableMixedPipelining bool
	// AdaptiveWorkers enables the histogram-driven CC/exec rebalancing
	// governor: the combined worker budget (CCWorkers + ExecWorkers)
	// stays fixed, but a background governor samples the per-stage
	// latency histograms over a sliding window and migrates one worker
	// across the CC/exec boundary when one phase sustainedly dominates
	// the other. Migration is batch-atomic — the sequencer stamps the
	// split into each batch at flush, so no batch is ever processed under
	// two assignments. Implies Metrics (the governor reads the stage
	// histograms). Requires CCWorkers+ExecWorkers >= 3 to have room to
	// rebalance; with a smaller budget the flag is inert.
	AdaptiveWorkers bool

	// LogDir, when non-empty, enables the durability subsystem: every
	// batch is appended to a command log in LogDir before execution and
	// ExecuteBatch acknowledges a transaction only once its batch is
	// durable under SyncPolicy. Durability requires every submitted
	// transaction to implement txn.Loggable (see txn.Registry). New
	// demands an empty directory; Recover reopens an existing one.
	LogDir string
	// SyncPolicy selects when the command log is fsynced; the default,
	// wal.SyncEveryBatch, never loses an acknowledged transaction.
	SyncPolicy wal.SyncPolicy
	// SyncInterval is the group-commit period for wal.SyncByInterval
	// (default 2ms). Ignored under other policies.
	SyncInterval time.Duration
	// SegmentBytes caps a log segment file before rotation (default 16
	// MiB). Smaller segments truncate at finer grain after checkpoints.
	SegmentBytes int64
	// CheckpointEveryBatches, when > 0 with durability enabled, runs a
	// background checkpointer: every time that many batches have executed
	// it snapshots the database at a fixed batch watermark — concurrently
	// with execution, courtesy of the multiversion store — then truncates
	// the log below the checkpoint. While checkpointing is enabled the
	// garbage collector trails the newest checkpoint instead of the
	// execution watermark, so snapshot reads stay safe.
	CheckpointEveryBatches int
	// LogRetry bounds the command log's write-hole repair: a failed
	// append or fsync retains the un-durable frames in memory, rotates to
	// a fresh segment and replays them, retrying up to Attempts times
	// with exponential backoff from Backoff (defaults 4 and 1ms; a
	// negative Attempts disables repair). Only when the budget is
	// exhausted does the engine step down to LogDegraded — see
	// Engine.Health and ErrDurabilityLost.
	LogRetry RetryPolicy
	// CheckpointRetry bounds a checkpoint attempt the same way (defaults
	// 3 attempts, 2ms backoff). Exhaustion does not degrade the engine —
	// the log retains everything a checkpoint would have truncated and
	// the background checkpointer tries again later — it only surfaces
	// through LastCheckpointError and Stats.CheckpointFailures.
	CheckpointRetry RetryPolicy
	// FS overrides the filesystem under the durability subsystem (the
	// command log, checkpoints, recovery). Nil means the real filesystem;
	// tests and the torture harness inject vfs.FaultFS here.
	FS vfs.FS

	// Metrics enables the observability subsystem (internal/obs): per-stage
	// latency histograms over every batch's pipeline timeline, per-
	// transaction submission and fast-path read latency, and the flight
	// recorder of recent batch lifecycle records. The record path is
	// allocation-free and lock-free; with Metrics off the instrumentation
	// sites reduce to a nil check. Snapshot through Engine.Metrics,
	// Engine.FlightRecords, or the debug endpoint.
	Metrics bool
	// DebugAddr, when non-empty, serves the debug HTTP endpoint on that
	// address: /metrics (Prometheus text format), /debug/flight (JSON
	// flight-recorder dump), /debug/vars (expvar) and /debug/pprof/*.
	// Setting it implies Metrics. Use ":0" to bind an ephemeral port and
	// Engine.DebugListenAddr to discover it.
	DebugAddr string
	// FlightRecorderSize is the number of recent batch records the flight
	// recorder retains (default 256).
	FlightRecorderSize int
}

// DefaultConfig returns a small general-purpose configuration.
func DefaultConfig() Config {
	return Config{
		CCWorkers:   2,
		ExecWorkers: 2,
		BatchSize:   1024,
		Capacity:    1 << 20,
		GC:          true,
	}
}

func (c *Config) normalize() error {
	if c.CCWorkers < 1 || c.ExecWorkers < 1 {
		return fmt.Errorf("bohm: need at least one CC and one execution worker (got %d, %d)", c.CCWorkers, c.ExecWorkers)
	}
	if c.BatchSize < 1 {
		c.BatchSize = 1024
	}
	if c.Capacity < 1 {
		c.Capacity = 1 << 20
	}
	if c.Preprocess && c.PreprocessWorkers < 1 {
		c.PreprocessWorkers = 1
	}
	if c.ReadWorkers < 1 {
		c.ReadWorkers = c.ExecWorkers
	}
	if c.CheckpointEveryBatches < 0 {
		c.CheckpointEveryBatches = 0
	}
	if c.CheckpointRetry.Attempts == 0 {
		c.CheckpointRetry.Attempts = 3
	}
	if c.CheckpointRetry.Backoff <= 0 {
		c.CheckpointRetry.Backoff = 2 * time.Millisecond
	}
	if c.DebugAddr != "" {
		c.Metrics = true
	}
	if c.AdaptiveWorkers {
		c.Metrics = true
	}
	if c.Metrics && c.FlightRecorderSize < 1 {
		c.FlightRecorderSize = 256
	}
	return nil
}

// fs returns the filesystem the durability subsystem runs on.
func (c *Config) fs() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS
}

// pinActive reports whether the checkpoint GC pin is in force: with
// periodic checkpointing enabled, garbage collection is capped at the
// newest checkpoint so snapshot scans never race a chain truncation.
func (c *Config) pinActive() bool {
	return c.LogDir != "" && c.CheckpointEveryBatches > 0
}

// stats holds the engine's counters; padded alignment is not needed since
// hot-path counters are sharded per worker and folded on read.
type workerStats struct {
	committed         uint64
	userAborts        uint64
	readRefHits       uint64
	rangeRefHits      uint64
	chainSteps        uint64
	requeues          uint64
	recursiveExecs    uint64
	versionsCreated   uint64
	versionsCollected uint64
	rangeFenceSkips   uint64
	roFastPath        uint64
	keysReaped        uint64
	dirBytesReclaimed uint64
	_                 [6]uint64 // pad to a cache line to avoid false sharing
}

// Engine is a running BOHM instance. Create with New, feed with
// ExecuteBatch, and Close when done.
type Engine struct {
	cfg Config

	// Worker-budget geometry. nparts is the number of hash partitions —
	// fixed for the engine's lifetime, because keys are never
	// repartitioned. maxCC and maxExec are the goroutine counts actually
	// spawned for the two phases; every spawned goroutine receives every
	// batch, and the batch's stamped split decides which of them do work
	// (the rest report immediately, keeping barriers and the watermark
	// well-formed under any split). Without AdaptiveWorkers all three
	// collapse to the configured worker counts and the split never moves.
	nparts  int
	maxCC   int
	maxExec int

	// split is the current CC/exec worker assignment; the sequencer
	// stamps it into each batch at flush time (batch-atomic migration)
	// and the governor republishes it. ccLife[w] is CC worker w's
	// lifecycle frontier — the newest batch for which w has finished
	// *everything*, including the post-report lifecycle work the kernel
	// path defers past the barrier — which workers quiesce on before
	// adopting a new split (the happens-before edge for partition-state
	// handoff).
	split            atomic.Pointer[workerSplit]
	ccLife           []atomic.Uint64
	workerMigrations atomic.Uint64

	// parts[p] is the version-chain index of hash partition p. Only the
	// partition's owning CC worker under the current split inserts;
	// execution workers read concurrently.
	parts []*storage.Map[storage.Chain]

	// dirs[p] is partition p's ordered key directory — the second tier of
	// the two-tier index. The owning worker registers every first-ever
	// key at placeholder-insertion time, so when a batch reaches
	// execution the directory already names every key any earlier-
	// timestamped transaction will ever write; a range scan that walks it
	// and resolves visible versions is phantom-free by construction.
	dirs []*storage.Directory

	// partCC[p] is partition p's cross-batch CC state (iterators, sweep
	// cursor, adaptive reap budget); owner-only access, handed off under
	// the ccLife quiesce.
	partCC []ccPartState

	subCh   chan *submission
	seqOut  []chan *batch // sequencer's output stage: ppIn or ccIn
	ppIn    []chan *batch
	ppDone  []chan *batch
	ccIn    []chan *batch
	ccDone  []chan *batch
	execIn  []chan *batch
	ccWG    sync.WaitGroup
	execWG  sync.WaitGroup
	seqWG   sync.WaitGroup
	closed  atomic.Bool
	batches atomic.Uint64

	// seqBase offsets batch numbering: the first batch is seqBase+1.
	// Zero on a fresh engine; Recover sets it to the loaded checkpoint's
	// watermark so batch sequences — and therefore checkpoint watermarks
	// and log record numbering — stay monotone across crash epochs. A
	// checkpoint written after recovery can then never sort below a
	// stale pre-crash checkpoint left behind by an interrupted cleanup.
	seqBase uint64

	// execBatch[i] is the newest batch sequence fully handled by
	// execution worker i; the minimum over workers is the GC watermark.
	// Workers that have not yet finished a batch of this epoch read as
	// seqBase, not zero.
	execBatch []atomic.Uint64

	// execTS[i] is execution worker i's snapshot-boundary contribution:
	// the limit timestamp of its newest finished batch (stored before the
	// matching execBatch entry). The minimum over workers is a timestamp
	// at which every version is final — the read-only fast path's
	// snapshot point. Initialized to 1, the boundary that sees exactly
	// the loaded (or checkpoint-restored) records.
	execTS []atomic.Uint64

	// Read-only fast path state; see readpath.go. fastCh carries chunks
	// of read-only transactions to the snapshot-read workers; roEpochs
	// holds one published reader epoch per worker plus inlineROSlots
	// claimable slots for the inline Read API (inactiveEpoch when idle);
	// ackedBatch is the newest batch sequence containing an acknowledged
	// write, the fast path's recency floor. All nil/unused under
	// Config.DisableReadOnlyFastPath.
	fastCh     chan roJob
	roEpochs   []atomic.Uint64
	roWG       sync.WaitGroup
	ackedBatch atomic.Uint64

	ccStats   []workerStats // one per CC worker, owner-written
	execStats []workerStats // one per execution worker
	roStats   []workerStats // one per snapshot-read worker

	// Pooling state (nil / unused under Config.DisablePooling). vpools[p]
	// is CC worker p's version block allocator; retireCh carries executed
	// batches back to the sequencer, which recycles them once the
	// watermark gate (retireLag) passes. arenaBatches and arenaBytes are
	// the recycling observability counters.
	vpools       []*storage.VersionPool
	retireCh     chan *batch
	arenaBatches atomic.Uint64
	arenaBytes   atomic.Uint64

	// varenas[w] is execution worker w's payload arena (nil under
	// DisablePooling or DisableValueArena): install copies each written
	// value into the worker's current slab, and the slab's references
	// drop in VersionPool.Release under the same epoch gate that
	// recycles the versions holding them. See storage.ValueArena.
	varenas []*storage.ValueArena

	// Idle reclamation tick state (see idleLoop); idleStop is nil when
	// GC is off or DisableIdleReap is set. idleTicks counts empty
	// batches injected while quiescent — the observability counter the
	// idle-reap tests drain on.
	idleStop  chan struct{}
	idleWG    sync.WaitGroup
	idleTicks atomic.Uint64

	// Durability state; see durability.go. wal and ackCh are nil when
	// Config.LogDir is empty. logOn flips on only while the pipeline is
	// quiescent (at New, or at the end of Recover's replay).
	wal *wal.Writer
	// logRec is the reusable command-log record logBatch encodes into;
	// touched only by the sequencer goroutine.
	logRec  wal.Batch
	logOn   atomic.Bool
	ackCh   chan *submission
	ackWG   sync.WaitGroup
	trackTS bool // sequencer records batch-end timestamp boundaries

	// Durability health ladder (see health.go). health holds a Health
	// value; healthCause (under healthMu) is the storage error that
	// caused the step down; degradedSince is the transition's unix-nano
	// stamp (0 while Healthy). degradeTS is the timestamp boundary
	// degraded reads clamp to (0 when clamping is unsafe and reads must
	// fail instead) and degradePin caps the GC watermark at the degraded
	// snapshot's batch (^0 while Healthy).
	health        atomic.Int32
	degradedSince atomic.Int64
	degradeTS     atomic.Uint64
	degradePin    atomic.Uint64
	healthMu      sync.Mutex
	healthCause   error
	ckptRetries   atomic.Uint64

	// obs is the observability root (stage histograms, flight recorder,
	// debug endpoint); nil unless Config.Metrics is on, and every
	// instrumentation site in the pipeline is gated on that nil check.
	obs *obsState

	// gov is the AdaptiveWorkers rebalancing governor; nil when the flag
	// is off or the worker budget leaves no room to rebalance.
	gov *governor

	ckptStop chan struct{}
	ckptWG   sync.WaitGroup
	ckptMu   sync.Mutex    // serializes checkpoint writers
	ckptPin  atomic.Uint64 // GC cap (newest checkpoint); ^0 when inactive
	lastCkpt atomic.Uint64 // newest checkpointed batch watermark
	// ckptErr retains the most recent checkpoint attempt's outcome for
	// LastCheckpointError and the debug endpoint (nil after a success);
	// ckptHook, when set by tests, runs inside checkpointOnce to inject
	// failures. Both under ckptErrMu.
	ckptErrMu sync.Mutex
	ckptErr   error
	ckptHook  func() error
	// hasCkpt records that a checkpoint covering lastCkpt exists on disk
	// (written by this engine, or restored by Recover). Written under
	// ckptMu or before the engine's goroutines start.
	hasCkpt    bool
	ckptCount  atomic.Uint64
	ckptFailed atomic.Uint64

	batchTSMu sync.Mutex
	batchTS   map[uint64]uint64 // batch seq -> first timestamp after it
}

// New starts a BOHM engine with the given configuration: one sequencer
// goroutine, cfg.CCWorkers concurrency control goroutines and
// cfg.ExecWorkers execution goroutines. With cfg.LogDir set, New demands a
// directory without prior durable state — reopening an existing database
// goes through Recover.
func New(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.LogDir != "" {
		has, err := wal.HasStateFS(cfg.fs(), cfg.LogDir)
		if err != nil {
			return nil, err
		}
		if has {
			return nil, fmt.Errorf("bohm: %s holds an existing log or checkpoint; use Recover", cfg.LogDir)
		}
	}
	e := build(cfg)
	if err := e.startDebug(); err != nil {
		return nil, err
	}
	if cfg.LogDir != "" {
		if err := e.startDurability(); err != nil {
			e.stopDebug()
			return nil, err
		}
	}
	e.start()
	e.startIdle()
	return e, nil
}

// build allocates an engine's passive state: partitions, channels and
// counters, but no goroutines and no durability wiring.
func build(cfg Config) *Engine {
	// Worker geometry. Keys are hash-partitioned once, at engine build,
	// and never repartitioned — so the partition count must cover every
	// CC worker that could ever be active. Without AdaptiveWorkers that
	// is exactly the configured pools. With it, the governor may hand all
	// but one of the combined budget to either phase, so both goroutine
	// pools are sized total-1 and there is one partition per
	// potentially-active CC worker; a worker the current split leaves
	// idle still receives every batch and reports through every barrier,
	// which keeps the forwarder and the execution watermark shape-stable
	// across migrations.
	total := cfg.CCWorkers + cfg.ExecWorkers
	maxCC, maxExec := cfg.CCWorkers, cfg.ExecWorkers
	adaptive := cfg.AdaptiveWorkers && total >= 3
	if adaptive {
		maxCC, maxExec = total-1, total-1
	}
	nparts := maxCC
	e := &Engine{
		cfg:       cfg,
		nparts:    nparts,
		maxCC:     maxCC,
		maxExec:   maxExec,
		parts:     make([]*storage.Map[storage.Chain], nparts),
		dirs:      make([]*storage.Directory, nparts),
		partCC:    make([]ccPartState, nparts),
		subCh:     make(chan *submission, 64),
		ccIn:      make([]chan *batch, maxCC),
		ccDone:    make([]chan *batch, maxCC),
		execIn:    make([]chan *batch, maxExec),
		execBatch: make([]atomic.Uint64, maxExec),
		execTS:    make([]atomic.Uint64, maxExec),
		ccStats:   make([]workerStats, nparts),
		execStats: make([]workerStats, maxExec),
	}
	e.split.Store(&workerSplit{cc: cfg.CCWorkers, exec: cfg.ExecWorkers})
	e.degradePin.Store(^uint64(0))
	for i := range e.partCC {
		e.partCC[i].reapBudget = reapSweepPerBatch
	}
	for i := range e.execTS {
		e.execTS[i].Store(1)
	}
	// The epoch slots and their stats exist regardless of the ablation:
	// the inline Read API always reads at a protected snapshot (only
	// ExecuteBatch diversion is switched by DisableReadOnlyFastPath, via
	// fastCh below). Idle slots cost watermark() a handful of loads.
	e.roEpochs = make([]atomic.Uint64, cfg.ReadWorkers+inlineROSlots)
	for i := range e.roEpochs {
		e.roEpochs[i].Store(inactiveEpoch)
	}
	e.roStats = make([]workerStats, cfg.ReadWorkers+inlineROSlots)
	if !cfg.DisableReadOnlyFastPath {
		e.fastCh = make(chan roJob, 4*cfg.ReadWorkers)
	}
	perPart := cfg.Capacity/nparts + cfg.Capacity/(4*nparts) + 64
	for p := range e.parts {
		e.parts[p] = storage.NewMap[storage.Chain](perPart)
		e.dirs[p] = storage.NewDirectory()
	}
	for i := range e.ccIn {
		e.ccIn[i] = make(chan *batch, 2)
		e.ccDone[i] = make(chan *batch, 2)
	}
	for i := range e.execIn {
		// The buffer depth is part of the retire ring's lifetime argument;
		// see retireLag before changing it.
		e.execIn[i] = make(chan *batch, execQueueCap)
	}
	if !cfg.DisablePooling {
		e.vpools = make([]*storage.VersionPool, nparts)
		for p := range e.vpools {
			e.vpools[p] = storage.NewVersionPool()
		}
		// Sized past the free-list bound so execution workers never block
		// on retirement; overflow batches are simply dropped to the
		// runtime GC by the non-blocking send.
		e.retireCh = make(chan *batch, 2*maxFreeBatches)
		if !cfg.DisableValueArena {
			e.varenas = make([]*storage.ValueArena, maxExec)
			for w := range e.varenas {
				e.varenas[w] = storage.NewValueArena()
			}
		}
	}
	e.seqOut = e.ccIn
	if cfg.Preprocess {
		e.ppIn = make([]chan *batch, cfg.PreprocessWorkers)
		e.ppDone = make([]chan *batch, cfg.PreprocessWorkers)
		for i := range e.ppIn {
			e.ppIn[i] = make(chan *batch, 2)
			e.ppDone[i] = make(chan *batch, 2)
		}
		e.seqOut = e.ppIn
	}
	if cfg.Metrics {
		e.obs = newObsState(&cfg, maxExec)
	}
	if adaptive {
		e.gov = newGovernor(e, total)
	}
	e.ckptPin.Store(^uint64(0))
	if cfg.LogDir != "" {
		e.trackTS = true
		e.batchTS = make(map[uint64]uint64)
		if cfg.pinActive() {
			// GC trails the newest checkpoint; until the first one lands,
			// nothing is collected (bounded by the checkpoint interval).
			e.ckptPin.Store(0)
		}
	}
	return e
}

// start launches the pipeline goroutines. Durability wiring, when any,
// must be in place first: the sequencer reads e.wal.
func (e *Engine) start() {
	if e.cfg.Preprocess {
		for j := 0; j < e.cfg.PreprocessWorkers; j++ {
			go e.preprocWorker(j)
		}
		go e.ppForwarder()
	}
	e.seqWG.Add(1)
	go e.sequencer()
	// Lifecycle frontiers start at the sequence floor so the first
	// batch's split-adoption quiesce (if any) is already satisfied.
	e.ccLife = make([]atomic.Uint64, e.maxCC)
	for w := range e.ccLife {
		e.ccLife[w].Store(e.seqBase)
	}
	for w := 0; w < e.maxCC; w++ {
		e.ccWG.Add(1)
		go e.ccWorker(w)
	}
	go e.forwarder()
	for w := 0; w < e.maxExec; w++ {
		e.execWG.Add(1)
		go e.execWorker(w)
	}
	if e.gov != nil {
		e.gov.startLoop()
	}
	if e.fastCh != nil {
		for w := 0; w < e.cfg.ReadWorkers; w++ {
			e.roWG.Add(1)
			go e.roWorker(w)
		}
	}
}

// startIdle launches the idle reclamation ticker. It is separate from
// start because recovery must not run it during replay: an idle tick
// injects an unlogged empty batch, and a batch sequence consumed without
// a matching log record would leave a gap the next recovery's
// contiguity check rejects. New calls it right after start; Recover
// calls it only once replay has drained and logging is re-enabled.
func (e *Engine) startIdle() {
	if !e.cfg.GC || e.cfg.DisableIdleReap {
		return
	}
	e.idleStop = make(chan struct{})
	e.idleWG.Add(1)
	go e.idleLoop()
}

// idleTickInterval is the idle loop's polling cadence; idleTickSlack is
// the extra ticks granted past one full directory sweep so the
// watermark can advance through retireLag and drain limbo even when the
// sweep itself finds nothing.
const (
	idleTickInterval = time.Millisecond
	idleTickSlack    = 8
)

// idleLoop drives reclamation on a quiescent engine. A busy pipeline
// finishes its own reclamation — every batch's CC lifecycle releases
// limbo generations and advances the bounded reap sweep — but the last
// few batches before quiescence leave work parked: generations under
// the retireLag gate, dead keys the sweep cursor has not reached, and
// arena slabs waiting for a trim check. The loop watches for quiescence
// (every submitted batch executed, nothing queued) and feeds the
// sequencer empty tick batches; each one runs the full CC lifecycle and
// execution-watermark advance with zero transactions, which is exactly
// the reclamation machinery with no work attached.
//
// Pacing: on each transition to idle the loop grants itself enough
// ticks for one full directory sweep (plus slack), renewed whenever a
// tick makes reclamation progress — so a converged engine goes quiet
// after one sweep's worth of empty batches instead of ticking forever,
// mirroring the demand-windowed high-watermark trims it drives.
func (e *Engine) idleLoop() {
	defer e.idleWG.Done()
	t := time.NewTicker(idleTickInterval)
	defer t.Stop()
	idle := false
	credit := 0
	var last uint64
	for {
		select {
		case <-e.idleStop:
			return
		case <-t.C:
		}
		if e.execWatermark() != e.seqBase+e.batches.Load() || len(e.subCh) != 0 {
			idle = false
			continue
		}
		if p := e.reclaimProgress(); !idle || p != last {
			idle, last = true, p
			credit = e.DirectoryEntries()/reapSweepPerBatch + idleTickSlack
		}
		if credit <= 0 {
			continue
		}
		credit--
		e.idleTicks.Add(1)
		select {
		case e.subCh <- &submission{tick: true}:
		case <-e.idleStop:
			return
		}
	}
}

// reclaimProgress folds every counter an idle tick can advance: keys
// reaped, versions collected into limbo, and versions recycled out of
// it. The idle loop renews its tick credit while this moves.
func (e *Engine) reclaimProgress() uint64 {
	var p uint64
	for i := range e.ccStats {
		p += atomic.LoadUint64(&e.ccStats[i].keysReaped)
		p += atomic.LoadUint64(&e.ccStats[i].versionsCollected)
	}
	for _, vp := range e.vpools {
		_, recycled, _ := vp.Stats()
		p += recycled
	}
	return p
}

// forwarder implements the batch barrier between the phases: it collects
// each batch's completion report from every CC worker (workers emit
// batches in sequence order) and releases the batch to every execution
// worker, preserving sequence order end-to-end.
func (e *Engine) forwarder() {
	for {
		var b *batch
		for w := range e.ccDone {
			bw, ok := <-e.ccDone[w]
			if !ok {
				for _, ch := range e.execIn {
					close(ch)
				}
				return
			}
			if b == nil {
				b = bw
			} else if b != bw {
				panic("bohm: CC workers emitted batches out of order")
			}
		}
		for _, ch := range e.execIn {
			ch <- b
		}
	}
}

// partitionOf returns the hash partition owning key k; it is the engine's
// view of the one shared partition function (keyHashPart).
func (e *Engine) partitionOf(k txn.Key) int {
	_, p := keyHashPart(k, e.nparts)
	return p
}

// chainFor returns the version chain of k, or nil if the record has never
// existed.
func (e *Engine) chainFor(k txn.Key) *storage.Chain {
	return e.parts[e.partitionOf(k)].Get(k)
}

// Load inserts an initial record visible to every transaction. It must be
// called before any ExecuteBatch and is not safe for concurrent use with
// transaction processing. Loads bypass the command log; with durability
// enabled, call CheckpointNow after the last Load to seal them into the
// first checkpoint, or recovery will replay against an empty database.
func (e *Engine) Load(k txn.Key, v []byte) error {
	data := make([]byte, len(v))
	copy(data, v)
	chain := storage.NewChain(storage.NewLoadedVersion(data))
	p := e.partitionOf(k)
	_, ok, err := e.parts[p].Insert(k, chain)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bohm: duplicate load of key %+v", k)
	}
	e.dirs[p].Insert(k)
	return nil
}

// ExecuteBatch submits transactions for serializable execution and blocks
// until every one has committed or aborted. The returned slice has one
// entry per transaction: nil for commit, the transaction's own error for a
// logic abort. The serialization order of the whole system is the
// submission order.
func (e *Engine) ExecuteBatch(ts []txn.Txn) []error {
	res := make([]error, len(ts))
	if len(ts) == 0 {
		return res
	}
	if e.closed.Load() {
		for i := range res {
			res[i] = ErrClosed
		}
		return res
	}
	// Submission arrival stamp: the sequencer copies it into the first
	// batch holding one of this call's transactions (seq_wait stage), and
	// the full call latency is recorded per transaction on return.
	o := e.obs
	var t0 int64
	if o != nil {
		t0 = o.now()
	}

	// Reject transactions whose write-set repeats a key before they can
	// reach the pipeline: a duplicate would chain a placeholder onto the
	// transaction's own earlier placeholder and livelock the executor.
	// Only the offending transactions are refused; the rest proceed.
	valid := ts
	var orig []int
	// Fast-path classification happens in the same pass: nro counts
	// read-only transactions, and roValid materializes their indices into
	// valid — but only once the submission turns out to be mixed, so the
	// pure cases (all-read or all-write, the hot ones) never pay for it
	// and WriteSet is consulted exactly once per transaction.
	fastOn := e.fastCh != nil
	nro := 0
	var roValid []int
	mixed := false
	for i, t := range ts {
		ws := t.WriteSet()
		if k, dup := txn.FindDuplicateKey(ws); dup {
			if orig == nil {
				orig = make([]int, 0, len(ts)-1)
				valid = make([]txn.Txn, 0, len(ts)-1)
				for j := 0; j < i; j++ {
					orig = append(orig, j)
					valid = append(valid, ts[j])
				}
			}
			res[i] = fmt.Errorf("%w: key %+v", ErrDuplicateWriteKey, k)
			continue
		}
		vi := i
		if orig != nil {
			vi = len(valid)
			orig = append(orig, i)
			valid = append(valid, t)
		}
		if !fastOn {
			continue
		}
		isRO := len(ws) == 0
		if isRO {
			nro++
		}
		if !mixed {
			if isRO && nro-1 != vi {
				mixed = true // first reader after writers
			} else if !isRO && nro > 0 {
				// First writer after an all-read-only prefix: backfill it.
				mixed = true
				roValid = make([]int, vi, len(ts))
				for j := range roValid {
					roValid[j] = j
				}
			}
		}
		if mixed && isRO {
			roValid = append(roValid, vi)
		}
	}
	if len(valid) == 0 {
		return res
	}

	// The acknowledged-batch bound is maintained unconditionally (one
	// compare-and-swap per completed submission): the inline Read API
	// depends on it for recency even under DisableReadOnlyFastPath.
	sub := &submission{txns: valid, res: res, orig: orig, done: make(chan struct{})}
	sub.obsT0 = t0
	sub.acked = &e.ackedBatch
	sub.recency = e.ackedBatch.Load()

	// Read-only fast path: transactions with an empty write-set insert no
	// placeholders and constrain no other transaction, so they skip the
	// sequencer → CC → execution pipeline entirely and run on the
	// snapshot-read pool at the execution watermark (see readpath.go). A
	// submission mixing writers and readers splits only when the readers
	// are the majority; below that the split costs more than it saves —
	// index bookkeeping plus a reader-starved batch that no longer fills
	// — so the whole call stays pipelined (reads serialize in submission
	// order, which is always correct; the fast path is an optimization,
	// not a semantic). Durable engines keep the unconditional split:
	// diverted readers are exempt from the Loggable requirement, and
	// pipelining them would retroactively reject mixed calls carrying
	// non-loggable readers.
	var roTxns []txn.Txn
	var roIdx []int
	if fastOn && nro > 0 {
		if nro == len(valid) {
			roTxns, roIdx = valid, orig // idxs nil means identity
			sub.txns = nil
		} else if nro*2 > len(valid) || e.cfg.DisableMixedPipelining || e.logOn.Load() {
			roTxns = make([]txn.Txn, 0, nro)
			roIdx = make([]int, 0, nro)
			piped := make([]txn.Txn, 0, len(valid)-nro)
			pipedIdx := make([]int, 0, len(valid)-nro)
			r := 0
			for i, t := range valid {
				if r < len(roValid) && roValid[r] == i {
					r++
					roTxns = append(roTxns, t)
					roIdx = append(roIdx, sub.origIdx(i))
				} else {
					piped = append(piped, t)
					pipedIdx = append(pipedIdx, sub.origIdx(i))
				}
			}
			sub.txns, sub.orig = piped, pipedIdx
		}
	}

	if e.logOn.Load() && len(sub.txns) > 0 {
		if e.degraded() {
			// Fail fast: the command log is gone, so no pipelined
			// transaction can ever be acknowledged. Diverted read-only
			// transactions still run below, clamped to the last durable
			// snapshot (see waitSnapshotDurable).
			err := e.durabilityLostError()
			for i := range sub.txns {
				res[sub.origIdx(i)] = err
			}
			sub.txns = nil
		}
	}
	if e.logOn.Load() && len(sub.txns) > 0 {
		for _, t := range sub.txns {
			if _, ok := t.(txn.Loggable); !ok {
				// Reject every pipelined transaction: a half-logged batch
				// could not be replayed in order. Diverted read-only
				// transactions are exempt — they bypass the log — and
				// still run below.
				err := fmt.Errorf("%w (got %T)", ErrNotLoggable, t)
				for i := range sub.txns {
					res[sub.origIdx(i)] = err
				}
				sub.txns = nil
				break
			}
		}
		if len(sub.txns) > 0 {
			sub.ackCh = e.ackCh
		}
	}
	if len(sub.txns) == 0 && len(roTxns) == 0 {
		return res
	}
	n := int64(len(sub.txns) + len(roTxns))
	sub.remaining.Store(n)
	if len(sub.txns) > 0 {
		e.subCh <- sub
	}
	if len(roTxns) > 0 {
		e.enqueueReadOnly(sub, roTxns, roIdx)
	}
	<-sub.done
	if o != nil {
		// Every transaction in the call shares its end-to-end latency; one
		// weighted record covers them all.
		o.m.Stages[obs.StageSubmit].RecordN(0, uint64(o.now()-t0), uint64(n))
	}
	return res
}

// Close drains the pipeline, makes the log durable, and stops all
// goroutines. ExecuteBatch must not be called concurrently with or after
// Close.
func (e *Engine) Close() {
	e.shutdown(false)
}

// Kill simulates a crash for durability testing: it stops the engine like
// Close but abandons the command log without flushing, so bytes the
// writer had buffered past the last sync are dropped — the data-loss
// profile of a process crash. Acknowledged transactions survive under
// wal.SyncEveryBatch and wal.SyncByInterval; everything else is at the
// mercy of the sync policy, exactly as it would be for a real crash.
// Like Close, it must not run concurrently with ExecuteBatch.
func (e *Engine) Kill() {
	e.shutdown(true)
}

func (e *Engine) shutdown(kill bool) {
	if e.closed.Swap(true) {
		return
	}
	if e.gov != nil {
		// Stop the governor before draining: no split republish can land
		// once the pipeline starts shutting down.
		e.gov.stopLoop()
	}
	if e.idleStop != nil {
		// The idle ticker sends on subCh; it must be provably stopped
		// before the channel closes.
		close(e.idleStop)
		e.idleWG.Wait()
	}
	close(e.subCh)
	e.seqWG.Wait()
	e.execWG.Wait()
	if e.fastCh != nil {
		// After execWG the watermark is final, so any read-only jobs still
		// queued satisfy their recency gate immediately and drain fast.
		close(e.fastCh)
		e.roWG.Wait()
	}
	if e.ckptStop != nil {
		close(e.ckptStop)
		e.ckptWG.Wait()
	}
	if e.ackCh != nil {
		close(e.ackCh)
		e.ackWG.Wait()
	}
	if e.wal != nil {
		if kill {
			e.wal.Kill()
		} else {
			_ = e.wal.Close()
		}
	}
	// Terminal rung of the health ladder; healthCause (if the engine
	// degraded first) stays readable through Health.
	e.health.Store(int32(Closed))
	e.stopDebug()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() engine.Stats {
	var s engine.Stats
	for i := range e.ccStats {
		w := &e.ccStats[i]
		s.VersionsCreated += atomic.LoadUint64(&w.versionsCreated)
		s.VersionsCollected += atomic.LoadUint64(&w.versionsCollected)
		s.RangeFenceSkips += atomic.LoadUint64(&w.rangeFenceSkips)
		s.KeysReaped += atomic.LoadUint64(&w.keysReaped)
		s.DirBytesReclaimed += atomic.LoadUint64(&w.dirBytesReclaimed)
	}
	for i := range e.execStats {
		w := &e.execStats[i]
		s.Committed += atomic.LoadUint64(&w.committed)
		s.UserAborts += atomic.LoadUint64(&w.userAborts)
		s.ReadRefHits += atomic.LoadUint64(&w.readRefHits)
		s.RangeRefHits += atomic.LoadUint64(&w.rangeRefHits)
		s.ChainSteps += atomic.LoadUint64(&w.chainSteps)
		s.Requeues += atomic.LoadUint64(&w.requeues)
		s.RecursiveExecs += atomic.LoadUint64(&w.recursiveExecs)
		s.RangeFenceSkips += atomic.LoadUint64(&w.rangeFenceSkips)
	}
	for i := range e.roStats {
		w := &e.roStats[i]
		s.Committed += atomic.LoadUint64(&w.committed)
		s.UserAborts += atomic.LoadUint64(&w.userAborts)
		s.ChainSteps += atomic.LoadUint64(&w.chainSteps)
		s.RangeFenceSkips += atomic.LoadUint64(&w.rangeFenceSkips)
		s.ReadOnlyFastPath += atomic.LoadUint64(&w.roFastPath)
	}
	s.Batches = e.batches.Load()
	s.ArenaBatchesRecycled = e.arenaBatches.Load()
	s.BytesRecycled = e.arenaBytes.Load()
	for _, p := range e.vpools {
		pooled, recycled, trimmed := p.Stats()
		s.VersionsPooled += pooled
		s.BytesRecycled += recycled * storage.VersionBytes
		s.PoolBlocksTrimmed += trimmed
	}
	for _, a := range e.varenas {
		_, recycled, trimmed := a.Stats()
		s.ValueSlabsRecycled += recycled
		s.ValueSlabsTrimmed += trimmed
		s.BytesRecycled += recycled * storage.ValueSlabBytes
	}
	s.IdleTicks = e.idleTicks.Load()
	if e.wal != nil {
		ws := e.wal.Stats()
		s.LogBatches = ws.Batches
		s.LogBytes = ws.Bytes
		s.LogSyncs = ws.Syncs
		s.LogRetries = ws.Retries
	}
	s.Checkpoints = e.ckptCount.Load()
	s.CheckpointFailures = e.ckptFailed.Load()
	s.CheckpointRetries = e.ckptRetries.Load()
	s.DegradedSince = uint64(e.degradedSince.Load())
	s.WorkerMigrations = e.workerMigrations.Load()
	return s
}

// DirectoryEntries returns the total ordered-directory entry count across
// all partitions. With the index lifecycle active it converges to the live
// key count instead of growing with every key that ever existed — the
// observability hook the churn experiment and the convergence tests use.
func (e *Engine) DirectoryEntries() int {
	n := 0
	for _, d := range e.dirs {
		n += d.Len()
	}
	return n
}

// ResidentChains returns the total hash-index entry (version chain) count
// across all partitions; like DirectoryEntries it converges to the live
// working set under reaping.
func (e *Engine) ResidentChains() int {
	n := 0
	for _, p := range e.parts {
		n += p.Len()
	}
	return n
}

// execWatermark returns the newest batch sequence every execution worker
// has finished (§3.3.2).
func (e *Engine) execWatermark() uint64 {
	wm := e.execBatch[0].Load()
	for i := 1; i < len(e.execBatch); i++ {
		if b := e.execBatch[i].Load(); b < wm {
			wm = b
		}
	}
	return wm
}

// watermark returns the garbage collection watermark: versions superseded
// at or before it are collectable. Normally this is the execution
// watermark; while periodic checkpointing is active it is capped at the
// newest checkpoint, so a snapshot scan at the checkpoint boundary never
// races a chain truncation (the snapshotter reads strictly above what GC
// may cut). It is further capped at the oldest published reader epoch, so
// a fast-path snapshot read keeps every version it can observe linked and
// unrecycled for the duration of the read — the same cap also gates the
// version-pool limbo release and the batch retire ring, which both derive
// their safe sequence from this function. Reader epochs add loads here
// (once per CC batch via wmLookup), never atomics to the write path.
func (e *Engine) watermark() uint64 {
	wm := e.execWatermark()
	if pin := e.ckptPin.Load(); pin < wm {
		wm = pin
	}
	// While degraded, reads are clamped to the frozen durable snapshot;
	// this pin keeps that snapshot's versions linked indefinitely.
	if pin := e.degradePin.Load(); pin < wm {
		wm = pin
	}
	for i := range e.roEpochs {
		if s := e.roEpochs[i].Load(); s < wm {
			wm = s
		}
	}
	return wm
}
