package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"bohm/internal/txn"
	"bohm/internal/wal"
)

// Tests for the allocation-free hot path: the batch/node arenas, the
// watermark-gated retire ring, the per-partition version pools, and the
// DisablePooling ablation. The stress test is the load-bearing one — run
// under -race it checks that no recycled node or version is ever observed
// by a live reader.

// stressRegistry builds the stress workload's procedures: conserved-sum
// transfers between account keys, and full-table scans that verify the
// invariant from inside a serializable transaction.
const (
	stressProc     = "stress.op"
	stressKeys     = 64
	stressTotal    = uint64(stressKeys) * 100
	stressOpMove   = 0
	stressOpScan   = 1
	stressOpInsert = 2
)

func stressRegistry() *txn.Registry {
	reg := txn.NewRegistry()
	allAccounts := txn.KeyRange{Table: 0, Lo: 0, Hi: stressKeys}
	reg.Register(stressProc, func(args []byte) (txn.Txn, error) {
		if len(args) != 17 {
			return nil, fmt.Errorf("bad stress args: %d bytes", len(args))
		}
		a := binary.LittleEndian.Uint64(args)
		b := binary.LittleEndian.Uint64(args[8:])
		switch args[16] {
		case stressOpScan:
			// A serializable scan must observe the transfers' conserved
			// sum — any torn read of recycled memory breaks it.
			return &txn.Proc{
				Ranges: []txn.KeyRange{allAccounts},
				Body: func(c txn.Ctx) error {
					sum, rows := uint64(0), 0
					err := c.ReadRange(allAccounts, func(_ txn.Key, v []byte) error {
						sum += txn.U64(v)
						rows++
						return nil
					})
					if err != nil {
						return err
					}
					if rows != stressKeys || sum != stressTotal {
						return fmt.Errorf("scan saw %d rows summing %d, want %d/%d", rows, sum, stressKeys, stressTotal)
					}
					return nil
				},
			}, nil
		case stressOpInsert:
			// Fresh keys in a side table: exercises directory inserts and
			// the fences while the account table churns.
			k := txn.Key{Table: 1, ID: a<<32 | b}
			return &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Write(k, txn.NewValue(8, a^b)) },
			}, nil
		default:
			ka, kb := key(a%stressKeys), key(b%stressKeys)
			if ka == kb {
				kb = key((b + 1) % stressKeys)
			}
			return &txn.Proc{
				Reads:  []txn.Key{ka, kb},
				Writes: []txn.Key{ka, kb},
				Body: func(c txn.Ctx) error {
					va, err := c.Read(ka)
					if err != nil {
						return err
					}
					vb, err := c.Read(kb)
					if err != nil {
						return err
					}
					if err := c.Write(ka, txn.NewValue(16, txn.U64(va)-1)); err != nil {
						return err
					}
					return c.Write(kb, txn.NewValue(16, txn.U64(vb)+1))
				},
			}, nil
		}
	})
	return reg
}

func stressCall(t testing.TB, reg *txn.Registry, a, b uint64, op byte) txn.Txn {
	t.Helper()
	args := make([]byte, 17)
	binary.LittleEndian.PutUint64(args, a)
	binary.LittleEndian.PutUint64(args[8:], b)
	args[16] = op
	return reg.MustCall(stressProc, args)
}

// TestPoolingStress hammers recycled nodes and versions: concurrent
// submitter streams mix conserved-sum transfers, serializable full-table
// scans and side-table inserts over a small batch size (fast recycle
// churn) with GC on and periodic checkpointing (so the retire gate runs
// against the checkpoint pin, not just the execution watermark). Any
// reuse of a node or version still reachable by a reader shows up as a
// broken scan invariant, a wrong read — or a report from the race
// detector, which is the mode CI runs this under.
func TestPoolingStress(t *testing.T) {
	reg := stressRegistry()
	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 3
	cfg.BatchSize = 32
	cfg.Capacity = 1 << 14
	cfg.GC = true
	cfg.LogDir = t.TempDir()
	cfg.SyncPolicy = wal.SyncNever
	cfg.CheckpointEveryBatches = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for id := uint64(0); id < stressKeys; id++ {
		if err := e.Load(key(id), txn.NewValue(16, 100)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		streams = 4
		rounds  = 150
		perSub  = 24
	)
	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			next := func() uint64 {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return x
			}
			for r := 0; r < rounds; r++ {
				ts := make([]txn.Txn, perSub)
				for i := range ts {
					switch next() % 5 {
					case 0:
						ts[i] = stressCall(t, reg, next(), next(), stressOpScan)
					case 1:
						ts[i] = stressCall(t, reg, seed, next(), stressOpInsert)
					default:
						ts[i] = stressCall(t, reg, next(), next(), stressOpMove)
					}
				}
				for i, err := range e.ExecuteBatch(ts) {
					if err != nil {
						errCh <- fmt.Errorf("stream %d round %d txn %d: %w", seed, r, i, err)
						return
					}
				}
			}
		}(uint64(s))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The counters below depend on the background checkpointer advancing
	// the GC pin, which a loaded host can starve for the whole concurrent
	// phase. Keep the pipeline moving with single-transaction batches
	// until every pooling mechanism has provably engaged (watermarks,
	// pin and retire gate all advance with each batch), bounded by a
	// generous deadline.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := e.Stats()
		if st.ArenaBatchesRecycled > 0 && st.VersionsPooled > 0 && st.Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooling machinery did not engage: recycled=%d pooled=%d checkpoints=%d",
				st.ArenaBatchesRecycled, st.VersionsPooled, st.Checkpoints)
		}
		if res := e.ExecuteBatch([]txn.Txn{stressCall(t, reg, 1, 2, stressOpMove)}); res[0] != nil {
			t.Fatal(res[0])
		}
	}
	// Final consistency check from outside the pipeline.
	sum := uint64(0)
	for k, v := range dumpState(e) {
		if k.Table == 0 {
			sum += v
		}
	}
	if sum != stressTotal {
		t.Errorf("final account sum = %d, want %d", sum, stressTotal)
	}
}

// TestDisablePoolingIdenticalResults runs the durability suite's
// deterministic mixed workload (increments, deletes, aborts) plus
// declared scans against a pooled and an unpooled engine and requires
// per-transaction outcomes and final states to match exactly: pooling
// must be invisible except in the allocation profile.
func TestDisablePoolingIdenticalResults(t *testing.T) {
	run := func(disable bool) ([]string, map[txn.Key]uint64) {
		reg := durRegistry()
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 64
		cfg.Capacity = 1 << 12
		cfg.DisablePooling = disable
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		loadInitial(t, e)
		var outcomes []string
		for i := 0; i < 60; i++ {
			for _, err := range e.ExecuteBatch(workloadBatch(t, reg, i)) {
				if err == nil {
					outcomes = append(outcomes, "commit")
				} else {
					outcomes = append(outcomes, err.Error())
				}
			}
		}
		return outcomes, dumpState(e)
	}

	pooledRes, pooledState := run(false)
	plainRes, plainState := run(true)
	if len(pooledRes) != len(plainRes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(pooledRes), len(plainRes))
	}
	for i := range pooledRes {
		if pooledRes[i] != plainRes[i] {
			t.Fatalf("txn %d: pooled %q vs unpooled %q", i, pooledRes[i], plainRes[i])
		}
	}
	sameState(t, "pooled vs DisablePooling", pooledState, plainState)
}

// TestRangeFenceSkips checks the per-partition directory fences: a
// declared scan over a table no partition holds keys for must be answered
// entirely by fence exclusions — every CC worker skips its directory walk
// — and still return the empty result.
func TestRangeFenceSkips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 2
	cfg.Capacity = 1 << 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for id := uint64(0); id < 32; id++ {
		if err := e.Load(key(id), txn.NewValue(8, id)); err != nil {
			t.Fatal(err)
		}
	}

	scan := func(r txn.KeyRange) int {
		rows := 0
		res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
			Ranges: []txn.KeyRange{r},
			Body: func(c txn.Ctx) error {
				return c.ReadRange(r, func(txn.Key, []byte) error { rows++; return nil })
			},
		}})
		if res[0] != nil {
			t.Fatalf("scan: %v", res[0])
		}
		return rows
	}

	// Table 9 holds nothing: both partitions' fences exclude the range.
	before := e.Stats().RangeFenceSkips
	if rows := scan(txn.KeyRange{Table: 9, Lo: 0, Hi: 1 << 40}); rows != 0 {
		t.Fatalf("scan of empty table returned %d rows", rows)
	}
	skips := e.Stats().RangeFenceSkips - before
	if skips != uint64(cfg.CCWorkers) {
		t.Fatalf("empty-table scan skipped %d partition walks, want %d", skips, cfg.CCWorkers)
	}

	// A populated range must not be fence-skipped, and must see its rows.
	before = e.Stats().RangeFenceSkips
	if rows := scan(txn.KeyRange{Table: 0, Lo: 0, Hi: 32}); rows != 32 {
		t.Fatalf("scan of loaded table returned %d rows, want 32", rows)
	}
	if d := e.Stats().RangeFenceSkips - before; d != 0 {
		t.Fatalf("populated scan was fence-skipped %d times", d)
	}
}
