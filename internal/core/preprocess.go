package core

// Pre-processing (§3.2.2): with many CC threads, the fact that *every* CC
// thread examines *every* transaction becomes a serial component (Amdahl's
// law). The paper's remedy is a pre-processing layer that analyzes each
// transaction once and forwards per-partition work lists to the CC
// threads, and notes that the analysis is embarrassingly parallel.
//
// When Config.Preprocess is on, a pool of preprocessing workers sits
// between the sequencer and the CC stage. Worker j handles a contiguous
// stripe of each batch's transactions, appending one planItem per owned
// key to plans[cc][j]; a CC worker then walks plans[cc][0..P-1] in order,
// which preserves timestamp order because the stripes are contiguous and
// ascending.

import "bohm/internal/storage"

// planItem kinds: insert a write placeholder, annotate a read reference,
// or annotate a declared range over the partition's directory.
const (
	itemWrite uint8 = iota
	itemRead
	itemRange
)

// planItem is one unit of CC work: annotate a read or a range, or insert
// a write placeholder, for key/range index keyIdx of node nd.
type planItem struct {
	nd     *node
	keyIdx int32
	kind   uint8
}

// preprocWorker analyzes its stripe of every batch.
func (e *Engine) preprocWorker(j int) {
	p := e.cfg.PreprocessWorkers
	m := len(e.parts)
	for b := range e.ppIn[j] {
		stripe := len(b.nodes) / p
		lo := j * stripe
		hi := lo + stripe
		if j == p-1 {
			hi = len(b.nodes)
		}
		for _, nd := range b.nodes[lo:hi] {
			if nd.readRefs != nil {
				for i, k := range nd.reads {
					part := int((k.Hash() >> 40) % uint64(m))
					b.plans[part][j] = append(b.plans[part][j], planItem{nd: nd, keyIdx: int32(i), kind: itemRead})
				}
			}
			if nd.rangeRefs != nil {
				// Keys are hash-partitioned, so a range overlaps every
				// partition: each CC worker annotates its own slice.
				for r := range nd.ranges {
					for part := 0; part < m; part++ {
						b.plans[part][j] = append(b.plans[part][j], planItem{nd: nd, keyIdx: int32(r), kind: itemRange})
					}
				}
			}
			for i, k := range nd.writes {
				part := int((k.Hash() >> 40) % uint64(m))
				b.plans[part][j] = append(b.plans[part][j], planItem{nd: nd, keyIdx: int32(i), kind: itemWrite})
			}
		}
		e.ppDone[j] <- b
	}
	close(e.ppDone[j])
}

// ppForwarder is the order-preserving barrier between preprocessing and
// concurrency control, mirroring the CC→execution forwarder.
func (e *Engine) ppForwarder() {
	for {
		var b *batch
		for j := range e.ppDone {
			bj, ok := <-e.ppDone[j]
			if !ok {
				for _, ch := range e.ccIn {
					close(ch)
				}
				return
			}
			if b == nil {
				b = bj
			} else if b != bj {
				panic("bohm: preprocessing workers emitted batches out of order")
			}
		}
		for _, ch := range e.ccIn {
			ch <- b
		}
	}
}

// runPlanned is the CC worker's fast path over a preprocessed plan: only
// the keys this partition owns are visited, in timestamp order.
func (e *Engine) runPlanned(w int, b *batch, pool *storage.VersionPool,
	annoIter *storage.DirIter, wmLookup func() uint64) {
	part := e.parts[w]
	st := &e.ccStats[w]
	for _, items := range b.plans[w] {
		for _, it := range items {
			nd := it.nd
			switch it.kind {
			case itemRead:
				if c := part.Get(nd.reads[it.keyIdx]); c != nil {
					nd.readRefs[it.keyIdx] = c.Head()
				}
			case itemRange:
				e.annotateRange(w, b, nd, int(it.keyIdx), annoIter)
			default:
				e.insertPlaceholder(part, st, pool, nd, int(it.keyIdx), b.seq, wmLookup)
			}
		}
	}
}
