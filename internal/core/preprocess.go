package core

// Pre-processing (§3.2.2): with many CC threads, the fact that *every* CC
// thread examines *every* transaction becomes a serial component (Amdahl's
// law). The paper's remedy is a pre-processing layer that analyzes each
// transaction once and forwards per-partition work lists to the CC
// threads, and notes that the analysis is embarrassingly parallel.
//
// When Config.Preprocess is on, a pool of preprocessing workers sits
// between the sequencer and the CC stage. Worker j handles a contiguous
// stripe of each batch's transactions. Two plan representations exist:
//
//   - Kernel (default): each worker bucket-sorts its stripe into its own
//     dense, partition-major slab of widened plan items — carrying each
//     key's precomputed hash — with a private two-pass counting sort
//     (count, prefix-sum, fill; no staging buffer, no cross-worker
//     synchronization). A CC worker walks one contiguous, cache-linear
//     window per (worker, owned partition) pair, and every index touch
//     reuses the carried hash.
//   - Legacy (Config.DisableCCKernels): workers append to ragged
//     plans[part][j] sub-slices and CC workers re-hash per item — the
//     pre-kernel baseline, kept bit-identical for ablation.
//
// Both preserve timestamp order per partition: stripes are contiguous and
// ascending, and worker windows within a partition's slab are laid out in
// stripe order.

import (
	"bohm/internal/storage"
)

// planItem kinds: insert a write placeholder, annotate a read reference,
// or annotate a declared range over the partition's directory.
const (
	itemWrite uint8 = iota
	itemRead
	itemRange
)

// planItem is one unit of CC work: annotate a read or a range, or insert
// a write placeholder, for key/range index keyIdx of node nd. On the
// kernel path hash is the key's precomputed 64-bit hash (for range items,
// a synthesized value whose high bits encode the target partition); the
// legacy path leaves it zero.
type planItem struct {
	nd     *node
	hash   uint64
	keyIdx int32
	kind   uint8
}

// partOfHash recovers the partition a plan item's carried hash routes to —
// the second half of keyHashPart, without re-hashing.
func partOfHash(h uint64, nparts int) int {
	return int((h >> 40) % uint64(nparts))
}

// rangeHash synthesizes a hash routing to partition p: range items carry
// no key, but the bucketing pass still needs their destination. p < nparts
// < 2^24, so (p<<40)>>40 % nparts == p.
func rangeHash(p int) uint64 { return uint64(p) << 40 }

// preprocWorker analyzes its stripe of every batch.
func (e *Engine) preprocWorker(j int) {
	p := e.cfg.PreprocessWorkers
	m := e.nparts
	kernels := !e.cfg.DisableCCKernels
	for b := range e.ppIn[j] {
		stripe := len(b.nodes) / p
		lo := j * stripe
		hi := lo + stripe
		if j == p-1 {
			hi = len(b.nodes)
		}
		if kernels {
			e.preprocKernel(j, b, b.nodes[lo:hi])
		} else {
			for _, nd := range b.nodes[lo:hi] {
				if nd.readRefs != nil {
					for i, k := range nd.reads {
						_, part := keyHashPart(k, m)
						b.plans[part][j] = append(b.plans[part][j], planItem{nd: nd, keyIdx: int32(i), kind: itemRead})
					}
				}
				if nd.rangeRefs != nil {
					// Keys are hash-partitioned, so a range overlaps every
					// partition: each CC worker annotates its own slice.
					for r := range nd.ranges {
						for part := 0; part < m; part++ {
							b.plans[part][j] = append(b.plans[part][j], planItem{nd: nd, keyIdx: int32(r), kind: itemRange})
						}
					}
				}
				for i, k := range nd.writes {
					_, part := keyHashPart(k, m)
					b.plans[part][j] = append(b.plans[part][j], planItem{nd: nd, keyIdx: int32(i), kind: itemWrite})
				}
			}
		}
		e.ppDone[j] <- b
	}
	close(e.ppDone[j])
}

// preprocKernel is the counting-sort plan builder: two passes over the
// stripe, all state private to this worker. Count pass: tally items per
// partition. Prefix-sum: turn tallies into this worker's slab offsets
// (ppOff[j]) and fill cursors (ppCur[j]). Fill pass: write each item at
// its final, partition-major position in the worker's own slab. Hashing
// twice (once per pass) costs a few ns per key and buys the absence of
// any staging buffer or cross-worker handshake — the slab is written
// exactly once, and the pp forwarder is the only barrier in the stage.
func (e *Engine) preprocKernel(j int, b *batch, nodes []*node) {
	m := e.nparts
	off := b.ppOff[j] // len m+1; off[p+1] doubles as partition p's tally
	for p := range off {
		off[p] = 0
	}
	nw := b.ppNW[j] // write items per partition: the placeholder grab count
	for p := range nw {
		nw[p] = 0
	}
	for _, nd := range nodes {
		if nd.readRefs != nil {
			for _, k := range nd.reads {
				_, part := keyHashPart(k, m)
				off[part+1]++
			}
		}
		if nd.rangeRefs != nil {
			// Keys are hash-partitioned, so a range overlaps every
			// partition: each CC worker annotates its own slice.
			n := int32(len(nd.ranges))
			for part := 0; part < m; part++ {
				off[part+1] += n
			}
		}
		for _, k := range nd.writes {
			_, part := keyHashPart(k, m)
			off[part+1]++
			nw[part]++
		}
	}
	cur := b.ppCur[j]
	for p := 0; p < m; p++ {
		off[p+1] += off[p]
		cur[p] = off[p]
	}
	items := b.ppItems[j]
	if total := int(off[m]); total > cap(items) {
		items = make([]planItem, total)
	} else {
		items = items[:total]
	}
	b.ppItems[j] = items // keep grown capacity for the next epoch
	for _, nd := range nodes {
		if nd.readRefs != nil {
			for i, k := range nd.reads {
				h, part := keyHashPart(k, m)
				items[cur[part]] = planItem{nd: nd, hash: h, keyIdx: int32(i), kind: itemRead}
				cur[part]++
			}
		}
		if nd.rangeRefs != nil {
			for r := range nd.ranges {
				for part := 0; part < m; part++ {
					items[cur[part]] = planItem{nd: nd, hash: rangeHash(part), keyIdx: int32(r), kind: itemRange}
					cur[part]++
				}
			}
		}
		for i, k := range nd.writes {
			h, part := keyHashPart(k, m)
			items[cur[part]] = planItem{nd: nd, hash: h, keyIdx: int32(i), kind: itemWrite}
			cur[part]++
		}
	}
}

// ppForwarder is the order-preserving barrier between preprocessing and
// concurrency control, mirroring the CC→execution forwarder.
func (e *Engine) ppForwarder() {
	for {
		var b *batch
		for j := range e.ppDone {
			bj, ok := <-e.ppDone[j]
			if !ok {
				for _, ch := range e.ccIn {
					close(ch)
				}
				return
			}
			if b == nil {
				b = bj
			} else if b != bj {
				panic("bohm: preprocessing workers emitted batches out of order")
			}
		}
		for _, ch := range e.ccIn {
			ch <- b
		}
	}
}

// runPlanned is the legacy CC path over a preprocessed plan for partition
// p: only the keys the partition owns are visited, in timestamp order.
func (e *Engine) runPlanned(p int, b *batch, pool *storage.VersionPool,
	annoIter *storage.DirIter, wmLookup func() uint64) {
	part := e.parts[p]
	st := &e.ccStats[p]
	for _, items := range b.plans[p] {
		for _, it := range items {
			nd := it.nd
			switch it.kind {
			case itemRead:
				if c := part.Get(nd.reads[it.keyIdx]); c != nil {
					nd.readRefs[it.keyIdx] = c.Head()
				}
			case itemRange:
				e.annotateRange(p, b, nd, int(it.keyIdx), annoIter)
			default:
				e.insertPlaceholder(part, st, pool, nd, int(it.keyIdx), b.seq, wmLookup)
			}
		}
	}
}

// runPlannedKernel is the kernel CC path for partition p: one dense,
// cache-linear window per preprocessing worker (walked in stripe order,
// so the partition stays in timestamp order), every probe reusing the
// carried hash through the per-worker memo — repeat touches of a hot key
// resolve in the 40KB memo instead of re-probing the DRAM-sized hash
// table, so under skew the slot loads a batch performs group into runs
// that stay in cache.
//
// Placeholder versions for the partition's writes are grabbed from the
// pool up front in one run (the preprocess stage counted them): each
// recycled version is an independent cold cache line, and the tight grab
// loop keeps several of those misses in flight where per-write allocation
// would serialize them behind the chain and index work. grab is the
// worker's reusable scratch for the grabbed run.
func (e *Engine) runPlannedKernel(p int, b *batch, pool *storage.VersionPool, memo *ccMemo,
	annoIter *storage.DirIter, wmLookup func() uint64, grab *[]*storage.Version) {
	part := e.parts[p]
	var ks kernelStats
	var vs []*storage.Version
	if pool != nil {
		nw := 0
		for j := range b.ppNW {
			nw += int(b.ppNW[j][p])
		}
		if nw > 0 {
			vs = *grab
			if cap(vs) < nw {
				vs = make([]*storage.Version, nw)
				*grab = vs
			}
			vs = vs[:nw]
			pool.GrabPlaceholders(vs)
		}
	}
	wi := 0
	for j := range b.ppItems {
		items := b.ppItems[j][b.ppOff[j][p]:b.ppOff[j][p+1]]
		for i := range items {
			it := &items[i]
			nd := it.nd
			switch it.kind {
			case itemRead:
				k := nd.reads[it.keyIdx]
				ch, hit := memo.get(it.hash, k, b.seq)
				if !hit {
					ch = part.GetHashed(k, it.hash)
					memo.put(it.hash, k, ch, b.seq)
				}
				if ch != nil {
					nd.readRefs[it.keyIdx] = ch.Head()
				}
			case itemRange:
				e.annotateRange(p, b, nd, int(it.keyIdx), annoIter)
			default:
				var v *storage.Version
				if vs != nil {
					v = vs[wi]
					wi++
				}
				e.insertPlaceholderHashed(p, part, &ks, pool, memo, nd, int(it.keyIdx), it.hash, b.seq, wmLookup, v)
			}
		}
	}
	// The grabbed versions now live in chains; drop the scratch references
	// so the scratch can never pin a later-trimmed slab.
	clear(vs)
	ks.flush(&e.ccStats[p])
}
