package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// errDepBusy is the internal signal that a read dependency is currently
// being produced by another worker: the attempt is suspended, the
// transaction goes back to Unprocessed, and it is retried later (§3.3.1).
var errDepBusy = errors.New("bohm: read dependency busy")

// execWorker is one transaction execution thread. Worker w is responsible
// for nodes w, w+n, w+2n, … of every batch (§3.3.1); it may also execute
// other workers' transactions while chasing read dependencies, and other
// workers may execute its. It moves to the next batch only when all the
// transactions it is responsible for are Complete, then publishes the
// batch sequence as its garbage collection watermark contribution.
func (e *Engine) execWorker(w int) {
	defer e.execWG.Done()
	st := &e.execStats[w]
	n := e.cfg.ExecWorkers
	for b := range e.execIn[w] {
		for {
			incomplete := false
			for i := w; i < len(b.nodes); i += n {
				nd := b.nodes[i]
				if nd.state.Load() == stComplete {
					continue
				}
				if nd.state.CompareAndSwap(stUnprocessed, stExecuting) {
					e.execute(nd, st)
				}
				if nd.state.Load() != stComplete {
					incomplete = true
				}
			}
			if !incomplete {
				break
			}
			// All remaining responsibilities are blocked on other
			// workers' progress; park briefly instead of spinning.
			time.Sleep(5 * time.Microsecond)
		}
		e.execBatch[w].Store(b.seq)
	}
}

// execute runs one attempt of nd. The caller must have won the
// Unprocessed→Executing CAS. Returns true when the transaction reached
// Complete, false when it was suspended on a busy dependency.
func (e *Engine) execute(nd *node, st *workerStats) bool {
	err := e.runOnce(nd, st)
	if err == errDepBusy {
		nd.state.Store(stUnprocessed)
		atomic.AddUint64(&st.requeues, 1)
		return false
	}
	nd.err = err
	nd.state.Store(stComplete)
	if err != nil {
		atomic.AddUint64(&st.userAborts, 1)
	} else {
		atomic.AddUint64(&st.committed, 1)
	}
	nd.sub.complete(nd)
	return true
}

// runOnce performs a single evaluation attempt of nd's logic and, on
// success, installs the produced data into the placeholder versions the CC
// phase created. Nothing is installed until every input the finalization
// needs is available, so a suspended attempt leaves no partial state.
func (e *Engine) runOnce(nd *node, st *workerStats) error {
	c := &execCtx{e: e, nd: nd, st: st}
	if n := len(nd.writes); n > 0 {
		c.vals = make([][]byte, n)
		c.wrote = make([]bool, n)
		c.del = make([]bool, n)
	}
	err := txn.RunSafely(nd.t, c)
	if c.busy {
		return errDepBusy
	}
	if err == nil && c.writeErr != nil {
		err = c.writeErr
	}

	// Copy-forward pass: placeholder slots the body did not fill — every
	// slot on abort, undeclared-but-unwritten slots on commit — take the
	// preceding version's data so later readers observe the pre-state
	// (§3.3.1, write dependencies). Resolve all inputs before installing
	// anything, so a busy dependency suspends the attempt cleanly.
	aborted := err != nil
	for i := range nd.writes {
		if aborted || !c.wrote[i] {
			v := nd.writeVers[i]
			prev := v.Prev()
			if prev == nil {
				c.vals[i] = nil
				c.del[i] = true
				continue
			}
			data, tomb, rerr := c.resolve(prev)
			if rerr != nil {
				return errDepBusy
			}
			c.vals[i] = data
			c.del[i] = tomb
		}
	}
	for i := range nd.writes {
		nd.writeVers[i].Install(c.vals[i], c.del[i])
	}
	return err
}

// execCtx implements txn.Ctx for one execution attempt. Writes are
// buffered and installed at commit; reads resolve versions through the
// dependency machinery.
type execCtx struct {
	e  *Engine
	nd *node
	st *workerStats

	vals  [][]byte
	wrote []bool
	del   []bool

	// busy poisons the attempt when a read hit an in-flight dependency;
	// checked by runOnce even if the transaction body swallowed the error.
	busy bool
	// writeErr records an access-set violation, turning into an abort.
	writeErr error
	// readCursor makes annotated-reference lookup O(1) for bodies that
	// read their declared read-set in order (the common stored-procedure
	// shape); out-of-order reads fall back to a linear scan.
	readCursor int
}

var _ txn.Ctx = (*execCtx)(nil)

// Read implements txn.Ctx: it returns nd's own buffered write if the
// transaction already wrote k, otherwise the value of the version visible
// at nd.ts — the newest version with Begin < ts (a transaction observes
// exactly the database state preceding its own timestamp).
func (c *execCtx) Read(k txn.Key) ([]byte, error) {
	for i, wk := range c.nd.writes {
		if wk == k && c.wrote[i] {
			if c.del[i] {
				return nil, txn.ErrNotFound
			}
			return c.vals[i], nil
		}
	}
	v := c.annotatedRef(k)
	if v == nil {
		chain := c.e.chainFor(k)
		if chain == nil {
			return nil, txn.ErrNotFound
		}
		for w := chain.Head(); w != nil; w = w.Prev() {
			atomic.AddUint64(&c.st.chainSteps, 1)
			if w.Begin < c.nd.ts {
				v = w
				break
			}
		}
		if v == nil {
			return nil, txn.ErrNotFound
		}
	}
	data, tomb, err := c.resolve(v)
	if err != nil {
		c.busy = true
		return nil, err
	}
	if tomb {
		return nil, txn.ErrNotFound
	}
	return data, nil
}

// annotatedRef returns the version reference the CC phase attached for k,
// if the read-reference optimization is on and k was in the declared
// read-set of a record that existed at CC time.
func (c *execCtx) annotatedRef(k txn.Key) *storage.Version {
	if c.nd.readRefs == nil {
		return nil
	}
	if cur := c.readCursor; cur < len(c.nd.reads) && c.nd.reads[cur] == k {
		c.readCursor++
		if v := c.nd.readRefs[cur]; v != nil {
			atomic.AddUint64(&c.st.readRefHits, 1)
			return v
		}
		return nil
	}
	for i, rk := range c.nd.reads {
		if rk == k {
			c.readCursor = i + 1
			if v := c.nd.readRefs[i]; v != nil {
				atomic.AddUint64(&c.st.readRefHits, 1)
				return v
			}
			return nil
		}
	}
	return nil
}

// resolve waits for v's data, recursively executing the producing
// transaction when it has not started. When another worker is
// mid-execution of the producer, resolve spin-waits briefly — the wait is
// deadlock-free because dependencies always point to strictly older
// timestamps, so the globally oldest executing transaction never waits —
// and suspends the attempt (errDepBusy) only if the producer stays busy,
// handing the transaction back to the scheduler per §3.3.1.
func (c *execCtx) resolve(v *storage.Version) (data []byte, tombstone bool, err error) {
	spins := 0
	for !v.Ready() {
		p, _ := v.Producer.(*node)
		if p == nil {
			// Loaded versions are born ready; an unready version always
			// has a producer. Yield and re-check.
			runtime.Gosched()
			continue
		}
		switch p.state.Load() {
		case stComplete:
			// Install precedes Complete; the next Ready check sees it.
			continue
		case stUnprocessed:
			if p.state.CompareAndSwap(stUnprocessed, stExecuting) {
				atomic.AddUint64(&c.st.recursiveExecs, 1)
				c.e.execute(p, c.st)
			}
		default: // stExecuting on another worker
			spins++
			switch {
			case spins > 512:
				return nil, false, errDepBusy
			case spins > 32:
				// Oversubscribed hosts: a parked sleep releases the OS
				// thread, letting the producer's goroutine run instead of
				// burning a scheduler quantum on Gosched ping-pong.
				time.Sleep(5 * time.Microsecond)
			default:
				runtime.Gosched()
			}
		}
	}
	data, tombstone = v.Data()
	return data, tombstone, nil
}

// Write implements txn.Ctx, buffering v as the new value of k. The engine
// takes ownership of v.
func (c *execCtx) Write(k txn.Key, v []byte) error {
	return c.stage(k, v, false)
}

// Delete implements txn.Ctx, buffering a tombstone for k.
func (c *execCtx) Delete(k txn.Key) error {
	return c.stage(k, nil, true)
}

func (c *execCtx) stage(k txn.Key, v []byte, del bool) error {
	for i, wk := range c.nd.writes {
		if wk == k {
			c.vals[i] = v
			c.del[i] = del
			c.wrote[i] = true
			return nil
		}
	}
	err := fmt.Errorf("bohm: write to key %+v outside declared write-set", k)
	if c.writeErr == nil {
		c.writeErr = err
	}
	return err
}
