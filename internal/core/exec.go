package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// errDepBusy is the internal signal that a read dependency is currently
// being produced by another worker: the attempt is suspended, the
// transaction goes back to Unprocessed, and it is retried later (§3.3.1).
var errDepBusy = errors.New("bohm: read dependency busy")

// execWorker is one transaction execution thread. Worker w is responsible
// for nodes w, w+n, w+2n, … of every batch (§3.3.1); it may also execute
// other workers' transactions while chasing read dependencies, and other
// workers may execute its. It moves to the next batch only when all the
// transactions it is responsible for are Complete, then publishes the
// batch sequence as its garbage collection watermark contribution.
func (e *Engine) execWorker(w int) {
	defer e.execWG.Done()
	st := &e.execStats[w]
	var sc *ctxPool
	if e.retireCh != nil {
		sc = &ctxPool{}
		if e.varenas != nil {
			sc.va = e.varenas[w]
		}
		sc.iters = make([]storage.DirIter, e.nparts)
		sc.iterTag = make([]uint64, e.nparts)
	}
	for b := range e.execIn[w] {
		if sc != nil {
			// New batch barrier: age out the scan-iterator fingers. A finger
			// is only resumed within the batch it was parked in (see
			// readRange), so each partition's first fallback scan per batch
			// pays one full descent and later scans resume in O(log
			// distance).
			sc.iterEpoch++
		}
		// The batch's stamped split decides how many execution workers
		// stripe its nodes; a worker the split leaves idle skips straight
		// to the bookkeeping below, so the watermark and retirement
		// barriers keep their shape across governor migrations.
		n := b.split.exec
		if w < n {
			for {
				incomplete := false
				for i := w; i < len(b.nodes); i += n {
					nd := b.nodes[i]
					if nd.state.Load() == stComplete {
						continue
					}
					if nd.state.CompareAndSwap(stUnprocessed, stExecuting) {
						e.execute(nd, st, sc)
					}
					if nd.state.Load() != stComplete {
						incomplete = true
					}
				}
				if !incomplete {
					break
				}
				// All remaining responsibilities are blocked on other
				// workers' progress; park briefly instead of spinning.
				time.Sleep(5 * time.Microsecond)
			}
		}
		// The timestamp boundary is published before the batch sequence:
		// anyone who observes execBatch[w] >= b.seq is then guaranteed to
		// read execTS[w] >= b.limitTS, so the fast path's snapshot
		// timestamp (min execTS) never lags the batch watermark its
		// reader epoch was published at.
		e.execTS[w].Store(b.limitTS)
		e.execBatch[w].Store(b.seq)
		// The last worker out folds the batch's stage timeline into the
		// histograms and pushes its flight record; the obs.done counter
		// orders every node's completion before that read. This precedes
		// the execDone increment below, so batch retirement (and hence
		// reuse) always waits for the recording to finish.
		if o := e.obs; o != nil && b.obs.done.Add(1) == int32(e.maxExec) {
			e.obsRecordBatch(w, b, o)
		}
		if sc != nil && sc.va != nil {
			sc.va.MaybeTrim()
		}
		if e.retireCh != nil && b.execDone.Add(1) == int32(e.maxExec) {
			// Last worker out retires the batch to the sequencer's
			// recycle ring. The send is non-blocking: if the ring is
			// full the batch is simply left to the runtime collector.
			select {
			case e.retireCh <- b:
			default:
			}
		}
	}
}

// ctxPool is one execution worker's free stack of execution contexts. A
// stack (not a single slot) because dependency resolution executes
// producer transactions recursively, so several contexts can be live on
// one worker at once. A nil pool allocates fresh contexts — the
// DisablePooling ablation.
//
// The pool doubles as the worker's per-batch amortization state: the
// payload arena the worker installs written values into, and the
// per-partition directory-iterator cache its fallback scans resume from
// (both nil/disabled under the respective ablations).
type ctxPool struct {
	free []*execCtx

	// va is the worker's payload arena; nil under DisableValueArena (or
	// DisablePooling), in which case installs heap-copy instead.
	va *storage.ValueArena

	// iters caches one directory iterator per partition, valid only for
	// fingers parked under the current iterEpoch (bumped per batch).
	// itersBusy marks the cache as claimed by an in-progress scan, so a
	// nested ReadRange — or a recursive producer execution issuing its own
	// scan — falls back to a scan-local iterator instead of repositioning
	// the outer scan's parked fingers.
	iters     []storage.DirIter
	iterTag   []uint64
	iterEpoch uint64
	itersBusy bool
}

// arena returns the worker's payload arena, nil-safe for the
// DisablePooling ablation (nil pool → nil arena → heap-copy installs).
func (p *ctxPool) arena() *storage.ValueArena {
	if p == nil {
		return nil
	}
	return p.va
}

func (p *ctxPool) get() *execCtx {
	if p == nil {
		return &execCtx{}
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return c
	}
	return &execCtx{}
}

// put recycles c after an attempt. The context's slices are retained at
// capacity; get's user re-initializes lengths and contents. vals is
// cleared through its full capacity so a context that once staged large
// write-sets does not pin old record payloads while serving small ones.
func (p *ctxPool) put(c *execCtx) {
	if p == nil {
		return
	}
	c.nd = nil
	c.st = nil
	clear(c.vals[:cap(c.vals)])
	clear(c.srcs[:cap(c.srcs)])
	p.free = append(p.free, c)
}

// execute runs one attempt of nd. The caller must have won the
// Unprocessed→Executing CAS. Returns true when the transaction reached
// Complete, false when it was suspended on a busy dependency.
func (e *Engine) execute(nd *node, st *workerStats, sc *ctxPool) bool {
	err := e.runOnce(nd, st, sc)
	if err == errDepBusy {
		nd.state.Store(stUnprocessed)
		atomic.AddUint64(&st.requeues, 1)
		return false
	}
	nd.err = err
	nd.state.Store(stComplete)
	if err != nil {
		atomic.AddUint64(&st.userAborts, 1)
	} else {
		atomic.AddUint64(&st.committed, 1)
	}
	nd.sub.complete(nd)
	return true
}

// runOnce performs a single evaluation attempt of nd's logic and, on
// success, installs the produced data into the placeholder versions the CC
// phase created. Nothing is installed until every input the finalization
// needs is available, so a suspended attempt leaves no partial state. The
// execution context (and its staging slices) comes from the worker's pool
// and returns to it on every exit path.
func (e *Engine) runOnce(nd *node, st *workerStats, sc *ctxPool) error {
	c := sc.get()
	defer sc.put(c)
	c.e, c.nd, c.st, c.sc = e, nd, st, sc
	c.busy, c.writeErr, c.readCursor, c.nStaged = false, nil, 0, 0
	if n := len(nd.writes); n > 0 {
		if cap(c.vals) >= n {
			c.vals = c.vals[:n]
			c.wrote = c.wrote[:n]
			c.del = c.del[:n]
			c.srcs = c.srcs[:n]
			clear(c.vals)
			clear(c.wrote)
			clear(c.del)
			clear(c.srcs)
		} else {
			c.vals = make([][]byte, n)
			c.wrote = make([]bool, n)
			c.del = make([]bool, n)
			c.srcs = make([]*storage.Version, n)
		}
	} else {
		c.vals, c.wrote, c.del, c.srcs = c.vals[:0], c.wrote[:0], c.del[:0], c.srcs[:0]
	}
	err := txn.RunSafely(nd.t, c)
	if c.busy {
		return errDepBusy
	}
	if err == nil && c.writeErr != nil {
		err = c.writeErr
	}

	// Copy-forward pass: placeholder slots the body did not fill — every
	// slot on abort, undeclared-but-unwritten slots on commit — take the
	// preceding version's data so later readers observe the pre-state
	// (§3.3.1, write dependencies). Resolve all inputs before installing
	// anything, so a busy dependency suspends the attempt cleanly.
	aborted := err != nil
	for i := range nd.writes {
		if aborted || !c.wrote[i] {
			v := nd.writeVers[i]
			prev := v.Prev()
			if prev == nil {
				c.vals[i] = nil
				c.del[i] = true
				continue
			}
			data, tomb, rerr := c.resolve(prev)
			if rerr != nil {
				return errDepBusy
			}
			c.vals[i] = data
			c.del[i] = tomb
			c.srcs[i] = prev
		}
	}
	// Install: values the body staged are copied out — into the worker's
	// arena when it has one, a fresh heap slice otherwise — so the caller's
	// write buffer is reusable the moment execution finishes and the engine
	// owns every payload it serves. Copied-forward slots adopt their
	// predecessor's payload pointer instead (no copy) and take a reference
	// on its slab, so the shared bytes outlive whichever version retires
	// last.
	arena := c.sc.arena()
	for i := range nd.writes {
		if src := c.srcs[i]; src != nil {
			nd.writeVers[i].InstallShared(src, c.vals[i], c.del[i])
		} else {
			nd.writeVers[i].InstallValue(arena, c.vals[i], c.del[i])
		}
	}
	return err
}

// execCtx implements txn.Ctx for one execution attempt. Writes are
// buffered and installed at commit; reads resolve versions through the
// dependency machinery.
type execCtx struct {
	e  *Engine
	nd *node
	st *workerStats
	// sc is the owning worker's context pool, threaded through so that
	// recursive dependency execution draws from the same pool.
	sc *ctxPool

	vals  [][]byte
	wrote []bool
	del   []bool
	// srcs marks copy-forward slots: the predecessor version whose payload
	// the slot re-exposes (nil for body-staged slots). The install pass
	// dispatches on it — shared adoption versus arena copy-out.
	srcs []*storage.Version
	// nStaged counts distinct write slots the body has staged so far; scans
	// early-out of the own-write overlay when it is zero.
	nStaged int

	// sb is the context's scan scratch (merge sources, fallback buffers,
	// loser tree), detached while a scan runs so nesting stays safe.
	sb *scanBufs

	// busy poisons the attempt when a read hit an in-flight dependency;
	// checked by runOnce even if the transaction body swallowed the error.
	busy bool
	// writeErr records an access-set violation, turning into an abort.
	writeErr error
	// readCursor makes annotated-reference lookup O(1) for bodies that
	// read their declared read-set in order (the common stored-procedure
	// shape); out-of-order reads fall back to a linear scan.
	readCursor int
}

var _ txn.Ctx = (*execCtx)(nil)

// Read implements txn.Ctx: it returns nd's own buffered write if the
// transaction already wrote k, otherwise the value of the version visible
// at nd.ts — the newest version with Begin < ts (a transaction observes
// exactly the database state preceding its own timestamp).
func (c *execCtx) Read(k txn.Key) ([]byte, error) {
	for i, wk := range c.nd.writes {
		if wk == k && c.wrote[i] {
			if c.del[i] {
				return nil, txn.ErrNotFound
			}
			return c.vals[i], nil
		}
	}
	v := c.annotatedRef(k)
	if v == nil {
		chain := c.e.chainFor(k)
		if chain == nil {
			return nil, txn.ErrNotFound
		}
		for w := chain.Head(); w != nil; w = w.Prev() {
			atomic.AddUint64(&c.st.chainSteps, 1)
			if w.Begin < c.nd.ts {
				v = w
				break
			}
		}
		if v == nil {
			return nil, txn.ErrNotFound
		}
	}
	data, tomb, err := c.resolve(v)
	if err != nil {
		c.busy = true
		return nil, err
	}
	if tomb {
		return nil, txn.ErrNotFound
	}
	return data, nil
}

// annotatedRef returns the version reference the CC phase attached for k,
// if the read-reference optimization is on and k was in the declared
// read-set of a record that existed at CC time.
func (c *execCtx) annotatedRef(k txn.Key) *storage.Version {
	if c.nd.readRefs == nil {
		return nil
	}
	if cur := c.readCursor; cur < len(c.nd.reads) && c.nd.reads[cur] == k {
		c.readCursor++
		if v := c.nd.readRefs[cur]; v != nil {
			atomic.AddUint64(&c.st.readRefHits, 1)
			return v
		}
		return nil
	}
	for i, rk := range c.nd.reads {
		if rk == k {
			c.readCursor = i + 1
			if v := c.nd.readRefs[i]; v != nil {
				atomic.AddUint64(&c.st.readRefHits, 1)
				return v
			}
			return nil
		}
	}
	return nil
}

// resolve waits for v's data, recursively executing the producing
// transaction when it has not started. When another worker is
// mid-execution of the producer, resolve spin-waits briefly — the wait is
// deadlock-free because dependencies always point to strictly older
// timestamps, so the globally oldest executing transaction never waits —
// and suspends the attempt (errDepBusy) only if the producer stays busy,
// handing the transaction back to the scheduler per §3.3.1.
func (c *execCtx) resolve(v *storage.Version) (data []byte, tombstone bool, err error) {
	spins := 0
	for !v.Ready() {
		p, _ := v.Producer.(*node)
		if p == nil {
			// Loaded versions are born ready; an unready version always
			// has a producer. Yield and re-check.
			runtime.Gosched()
			continue
		}
		switch p.state.Load() {
		case stComplete:
			// Install precedes Complete; the next Ready check sees it.
			continue
		case stUnprocessed:
			if p.state.CompareAndSwap(stUnprocessed, stExecuting) {
				atomic.AddUint64(&c.st.recursiveExecs, 1)
				c.e.execute(p, c.st, c.sc)
			}
		default: // stExecuting on another worker
			spins++
			switch {
			case spins > 512:
				return nil, false, errDepBusy
			case spins > 32:
				// Oversubscribed hosts: a parked sleep releases the OS
				// thread, letting the producer's goroutine run instead of
				// burning a scheduler quantum on Gosched ping-pong.
				time.Sleep(5 * time.Microsecond)
			default:
				runtime.Gosched()
			}
		}
	}
	data, tombstone = v.Data()
	return data, tombstone, nil
}

// scanBufs is an execution context's reusable scan state: merge sources,
// per-partition entry buffers for the fallback walk, the own-write index
// scratch and the loser tree. It is detached from the context for the
// duration of a scan, so a nested ReadRange (issued from inside a scan's
// callback) falls back to fresh buffers instead of corrupting the outer
// scan.
type scanBufs struct {
	srcs [][]rangeEntry
	ents [][]rangeEntry
	own  []int
	lt   loserTree
}

// ReadRange implements txn.Ctx: a serializable scan of r at nd.ts. The
// scan is phantom-free by construction — every key any earlier-timestamped
// transaction will ever write was registered in the partition directories
// before this batch reached execution — so no read tracking and no
// revalidation exist here, mirroring BOHM's point-read design. When the
// range was declared (and read references are enabled), the CC phase has
// already resolved every key's visible version and the scan touches no
// chains at all; otherwise it walks the partition directories live and
// traverses chains. Keys created by later-timestamped transactions may
// appear in the directories but have no version below nd.ts and are
// skipped; keys reaped by the lifecycle sweep are gone entirely, which for
// every possible nd.ts means exactly what their tombstone meant. The
// transaction's own buffered writes inside r are merged in.
func (c *execCtx) ReadRange(r txn.KeyRange, fn func(k txn.Key, v []byte) error) error {
	if r.Empty() {
		return nil
	}
	sb := c.sb
	c.sb = nil
	if sb == nil {
		sb = &scanBufs{}
	}
	err := c.readRange(r, sb, fn)
	// Scrub entry references before parking the scratch: retained version
	// pointers would pin dead record payloads until the next scan.
	for i := range sb.srcs {
		sb.srcs[i] = nil
	}
	sb.srcs = sb.srcs[:0]
	for i := range sb.ents {
		clear(sb.ents[i])
		sb.ents[i] = sb.ents[i][:0]
	}
	sb.own = sb.own[:0]
	c.sb = sb
	return err
}

func (c *execCtx) readRange(r txn.KeyRange, sb *scanBufs, fn func(k txn.Key, v []byte) error) error {
	own := c.stagedInRange(r, sb)
	if ri := c.annotatedRangeIndex(r); ri >= 0 {
		srcs := sb.srcs[:0]
		for _, ents := range c.nd.rangeRefs[ri] {
			// The annotation covers the declared range; narrow each
			// partition's sorted slice to the requested sub-range.
			lo := sort.Search(len(ents), func(i int) bool { return !ents[i].k.Less(r.FirstKey()) })
			hi := sort.Search(len(ents), func(i int) bool { return !ents[i].k.Less(r.LimitKey()) })
			if lo < hi {
				srcs = append(srcs, ents[lo:hi])
			}
		}
		sb.srcs = srcs
		return c.mergeScan(srcs, own, true, sb, fn)
	}
	// Fallback (undeclared range, or DisableReadRefs): walk the partition
	// directories at execution time and resolve visibility per chain.
	//
	// Iterator amortization: the worker caches one iterator per partition
	// (ctxPool.iters), so repeat fallback scans within one batch resume
	// from the previous scan's finger in O(log distance) instead of a full
	// skiplist descent per partition per scan. The cache is keyed on the
	// batch barrier — fingers age out when the worker starts its next
	// batch — which keeps the correctness argument local: every key a scan
	// at any timestamp of batch b must see was inserted before b's CC
	// barrier, so nothing this batch's scans require appears between two of
	// its scans; later-batch inserts are above every nd.ts in b and may be
	// missed or seen indifferently. Fingers parked on reaped nodes are
	// caught by SeekGE's removed-flag validation (full-descent fallback),
	// and a removal landing after that check only hides keys whose
	// tombstone was already visible at nd.ts. Only the outermost scan on a
	// worker uses the cache: a nested ReadRange (from inside a scan
	// callback) or a recursive producer execution borrowing this worker
	// takes the scan-local iterator below, so it cannot reposition the
	// outer scan's parked fingers.
	nparts := len(c.e.parts)
	if cap(sb.ents) < nparts {
		sb.ents = make([][]rangeEntry, nparts)
	}
	sb.ents = sb.ents[:nparts]
	srcs := sb.srcs[:0]
	cached := c.sc != nil && c.sc.iters != nil && !c.sc.itersBusy
	if cached {
		c.sc.itersBusy = true
	}
	var local storage.DirIter
	limit := r.LimitKey()
	for p := 0; p < nparts; p++ {
		if c.e.dirs[p].ExcludesRange(r) {
			// The partition's key fences exclude the whole range; the
			// walk would visit nothing. Safe for the same reason the walk
			// is: every key an earlier-timestamped transaction will ever
			// write was fenced in before this batch reached execution.
			atomic.AddUint64(&c.st.rangeFenceSkips, 1)
			continue
		}
		it := &local
		if cached {
			it = &c.sc.iters[p]
			if c.sc.iterTag[p] != c.sc.iterEpoch {
				it.Invalidate()
				c.sc.iterTag[p] = c.sc.iterEpoch
			}
		}
		part := c.e.parts[p]
		ents := sb.ents[p][:0]
		for ok := it.SeekGE(c.e.dirs[p], r.FirstKey()); ok && it.Key().Less(limit); ok = it.Next() {
			if ch := part.Get(it.Key()); ch != nil {
				for w := ch.Head(); w != nil; w = w.Prev() {
					atomic.AddUint64(&c.st.chainSteps, 1)
					if w.Begin < c.nd.ts {
						ents = append(ents, rangeEntry{k: it.Key(), v: w})
						break
					}
				}
			}
		}
		sb.ents[p] = ents
		if len(ents) > 0 {
			srcs = append(srcs, ents)
		}
	}
	sb.srcs = srcs
	err := c.mergeScan(srcs, own, false, sb, fn)
	if cached {
		// Released only after the merge: resolve() may recursively execute
		// producers on this worker, and their scans must keep falling back
		// to scan-local iterators while the fingers above are parked.
		c.sc.itersBusy = false
	}
	return err
}

// stagedInRange collects the indices of nd.writes the body has already
// staged (written or deleted) that fall inside r, in key order; the scan
// overlays them so a transaction sees its own writes. Scan-only
// transactions (no staged writes) early-out without touching the scratch,
// and the index sort is an in-place insertion sort — the whole path
// allocates nothing in steady state.
func (c *execCtx) stagedInRange(r txn.KeyRange, sb *scanBufs) []int {
	if c.nStaged == 0 {
		return nil
	}
	idxs := sb.own[:0]
	for i, k := range c.nd.writes {
		if c.wrote[i] && r.Contains(k) {
			idxs = append(idxs, i)
		}
	}
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && c.nd.writes[idxs[j]].Less(c.nd.writes[idxs[j-1]]); j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	sb.own = idxs
	return idxs
}

// annotatedRangeIndex returns the index of a declared range covering r, or
// -1 when the scan must fall back to live directory traversal.
func (c *execCtx) annotatedRangeIndex(r txn.KeyRange) int {
	if c.nd.rangeRefs == nil {
		return -1
	}
	for i, d := range c.nd.ranges {
		if d.ContainsRange(r) {
			return i
		}
	}
	return -1
}

// mergeScan merges the per-partition sorted entry lists with the
// transaction's own staged writes (which shadow annotated entries for the
// same key) and emits live records in ascending key order. The
// per-partition lists merge through a loser tree — O(log partitions) per
// emitted key instead of the old linear min over every partition.
// Versions resolve through the same dependency machinery as point reads,
// so a busy producer suspends the attempt cleanly.
func (c *execCtx) mergeScan(sources [][]rangeEntry, own []int, annotated bool,
	sb *scanBufs, fn func(k txn.Key, v []byte) error) error {
	lt := &sb.lt
	lt.init(sources)
	oi := 0
	for {
		hasTree := lt.ok()
		if oi < len(own) {
			k := c.nd.writes[own[oi]]
			if !hasTree || !lt.head().k.Less(k) {
				if hasTree && lt.head().k == k {
					lt.pop() // shadowed by own write
				}
				i := own[oi]
				oi++
				if !c.del[i] {
					if err := fn(k, c.vals[i]); err != nil {
						return err
					}
				}
				continue
			}
		}
		if !hasTree {
			return nil
		}
		ent := lt.pop()
		data, tomb, err := c.resolve(ent.v)
		if err != nil {
			c.busy = true
			return err
		}
		if annotated {
			atomic.AddUint64(&c.st.rangeRefHits, 1)
		}
		if tomb {
			continue
		}
		if err := fn(ent.k, data); err != nil {
			return err
		}
	}
}

// Write implements txn.Ctx, buffering v as the new value of k. The buffer
// must stay unmodified until the transaction's Run returns (the staged
// pointer may be read back by the transaction's own reads and scans);
// install then copies it out — into the worker's payload arena, or a heap
// slice under the ablations — so the caller may reuse v across
// executions.
func (c *execCtx) Write(k txn.Key, v []byte) error {
	return c.stage(k, v, false)
}

// Delete implements txn.Ctx, buffering a tombstone for k.
func (c *execCtx) Delete(k txn.Key) error {
	return c.stage(k, nil, true)
}

func (c *execCtx) stage(k txn.Key, v []byte, del bool) error {
	for i, wk := range c.nd.writes {
		if wk == k {
			c.vals[i] = v
			c.del[i] = del
			if !c.wrote[i] {
				c.wrote[i] = true
				c.nStaged++
			}
			return nil
		}
	}
	err := fmt.Errorf("bohm: write to key %+v outside declared write-set", k)
	if c.writeErr == nil {
		c.writeErr = err
	}
	return err
}
