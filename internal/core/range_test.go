package core

import (
	"errors"
	"testing"

	"bohm/internal/txn"
)

// scanRange builds a read-only transaction scanning [lo, hi) on table 0,
// declaring the range, and reporting the rows and counter sum it saw.
type scanResult struct {
	rows int
	sum  uint64
}

func scanTxn(lo, hi uint64, out *scanResult) txn.Txn {
	r := txn.KeyRange{Table: 0, Lo: lo, Hi: hi}
	return &txn.Proc{
		Ranges: []txn.KeyRange{r},
		Body: func(ctx txn.Ctx) error {
			rows, sum := 0, uint64(0)
			err := ctx.ReadRange(r, func(_ txn.Key, v []byte) error {
				rows++
				sum += txn.U64(v)
				return nil
			})
			if err != nil {
				return err
			}
			*out = scanResult{rows: rows, sum: sum}
			return nil
		},
	}
}

// TestDeclaredScanAnnotationServed: a declared range scan inside a batch
// of conflicting updates observes a consistent snapshot and is served from
// CC-time range annotations — zero chain traversals for the scan itself.
func TestDeclaredScanAnnotationServed(t *testing.T) {
	const nkeys = 600
	cfg := DefaultConfig()
	cfg.BatchSize = 64
	// The CC-time annotation is the machinery under test; keep the
	// read-only scan in the pipeline instead of the snapshot fast path.
	cfg.DisableReadOnlyFastPath = true
	e := newTestEngine(t, cfg, nkeys)

	// Updates move one unit between adjacent keys (sum invariant 0).
	mkUpdate := func(i int) txn.Txn {
		a, b := key(uint64(i%nkeys)), key(uint64((i+1)%nkeys))
		return &txn.Proc{
			Reads:  []txn.Key{a, b},
			Writes: []txn.Key{a, b},
			Body: func(ctx txn.Ctx) error {
				va, err := ctx.Read(a)
				if err != nil {
					return err
				}
				vb, err := ctx.Read(b)
				if err != nil {
					return err
				}
				if err := ctx.Write(a, txn.NewValue(8, txn.U64(va)+1)); err != nil {
					return err
				}
				return ctx.Write(b, txn.NewValue(8, txn.U64(vb)-1))
			},
		}
	}
	var sc scanResult
	batch := make([]txn.Txn, 0, 161)
	for i := 0; i < 80; i++ {
		batch = append(batch, mkUpdate(i))
	}
	batch = append(batch, scanTxn(0, nkeys, &sc))
	for i := 80; i < 160; i++ {
		batch = append(batch, mkUpdate(i))
	}
	before := e.Stats()
	for i, err := range e.ExecuteBatch(batch) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if sc.rows != nkeys {
		t.Fatalf("scan rows = %d, want %d", sc.rows, nkeys)
	}
	if sc.sum != 0 {
		t.Fatalf("scan sum = %d, want 0 (inconsistent snapshot)", int64(sc.sum))
	}
	d := e.Stats().Sub(before)
	if d.RangeRefHits < nkeys {
		t.Errorf("rangeRefHits = %d, want >= %d (declared scan should be annotation-served)", d.RangeRefHits, nkeys)
	}
}

// TestScanSeesEarlierInsertsNotLater: within one batch, a scan observes
// exactly the keys inserted by earlier-submitted transactions — the
// phantom-freedom-by-construction property.
func TestScanSeesEarlierInsertsNotLater(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 256
	// The scan's exact position between same-call inserts is the property
	// under test — pipeline semantics, not watermark-snapshot semantics.
	cfg.DisableReadOnlyFastPath = true
	e := newTestEngine(t, cfg, 0)

	const base = 10_000
	ins := func(id uint64) txn.Txn {
		k := key(base + id)
		return &txn.Proc{
			Writes: []txn.Key{k},
			Body:   func(ctx txn.Ctx) error { return ctx.Write(k, txn.NewValue(8, 1)) },
		}
	}
	const waves = 20
	var scans [waves + 1]scanResult
	var batch []txn.Txn
	batch = append(batch, scanTxn(base, base+1000, &scans[0]))
	for w := 0; w < waves; w++ {
		batch = append(batch, ins(uint64(3*w)), ins(uint64(3*w+1)), ins(uint64(3*w+2)))
		batch = append(batch, scanTxn(base, base+1000, &scans[w+1]))
	}
	for i, err := range e.ExecuteBatch(batch) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	for w := 0; w <= waves; w++ {
		if scans[w].rows != 3*w {
			t.Errorf("scan %d saw %d rows, want exactly %d (submission-order phantoms)", w, scans[w].rows, 3*w)
		}
	}
}

// TestScanFallbackWithoutAnnotations: with read references disabled the
// scan walks the directories and chains live — same results, no
// annotation hits.
func TestScanFallbackWithoutAnnotations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableReadRefs = true
	e := newTestEngine(t, cfg, 50)
	for _, err := range e.ExecuteBatch([]txn.Txn{incTxn(7), incTxn(7), incTxn(12)}) {
		if err != nil {
			t.Fatal(err)
		}
	}
	var sc scanResult
	if res := e.ExecuteBatch([]txn.Txn{scanTxn(0, 50, &sc)}); res[0] != nil {
		t.Fatal(res[0])
	}
	if sc.rows != 50 || sc.sum != 3 {
		t.Fatalf("fallback scan = %d rows sum %d, want 50 rows sum 3", sc.rows, sc.sum)
	}
	if d := e.Stats(); d.RangeRefHits != 0 {
		t.Errorf("rangeRefHits = %d, want 0 with DisableReadRefs", d.RangeRefHits)
	}
}

// TestUndeclaredScanFallsBack: scanning a range outside the declaration is
// legal (like undeclared point reads) and still serializable via the live
// directory walk.
func TestUndeclaredScanFallsBack(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 20)
	var rows int
	p := &txn.Proc{ // no Ranges declared
		Body: func(ctx txn.Ctx) error {
			return ctx.ReadRange(txn.KeyRange{Table: 0, Lo: 5, Hi: 15}, func(txn.Key, []byte) error {
				rows++
				return nil
			})
		},
	}
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
		t.Fatal(res[0])
	}
	if rows != 10 {
		t.Fatalf("undeclared scan rows = %d, want 10", rows)
	}
}

// TestScanSubrangeOfDeclared: a body may scan any sub-interval of a
// declared range and still ride the annotation.
func TestScanSubrangeOfDeclared(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableReadOnlyFastPath = true // annotation riding is the point
	e := newTestEngine(t, cfg, 100)
	full := txn.KeyRange{Table: 0, Lo: 0, Hi: 100}
	var rows int
	p := &txn.Proc{
		Ranges: []txn.KeyRange{full},
		Body: func(ctx txn.Ctx) error {
			return ctx.ReadRange(txn.KeyRange{Table: 0, Lo: 30, Hi: 40}, func(txn.Key, []byte) error {
				rows++
				return nil
			})
		},
	}
	before := e.Stats()
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
		t.Fatal(res[0])
	}
	if rows != 10 {
		t.Fatalf("subrange rows = %d, want 10", rows)
	}
	if d := e.Stats().Sub(before); d.RangeRefHits != 10 {
		t.Errorf("rangeRefHits = %d, want 10", d.RangeRefHits)
	}
}

// TestScanSeesOwnWrites: a transaction's scan observes its own staged
// writes — updates, inserts, and deletes — overlaid on the snapshot.
func TestScanSeesOwnWrites(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 10)
	r := txn.KeyRange{Table: 0, Lo: 0, Hi: 20}
	kNew, kUpd, kDel := key(15), key(3), key(7)
	var rows int
	var sum uint64
	p := &txn.Proc{
		Reads:  []txn.Key{kUpd},
		Writes: []txn.Key{kNew, kUpd, kDel},
		Ranges: []txn.KeyRange{r},
		Body: func(ctx txn.Ctx) error {
			if err := ctx.Write(kNew, txn.NewValue(8, 100)); err != nil {
				return err
			}
			if err := ctx.Write(kUpd, txn.NewValue(8, 50)); err != nil {
				return err
			}
			if err := ctx.Delete(kDel); err != nil {
				return err
			}
			return ctx.ReadRange(r, func(_ txn.Key, v []byte) error {
				rows++
				sum += txn.U64(v)
				return nil
			})
		},
	}
	if res := e.ExecuteBatch([]txn.Txn{p}); res[0] != nil {
		t.Fatal(res[0])
	}
	// 10 loaded - 1 deleted + 1 inserted = 10 rows; sum = 100 + 50.
	if rows != 10 || sum != 150 {
		t.Fatalf("own-write scan = %d rows sum %d, want 10 rows sum 150", rows, sum)
	}
}

// TestDuplicateWriteSetRejected: a write-set repeating a key is refused
// with ErrDuplicateWriteKey at submission (it used to livelock the
// executor); the rest of the batch commits normally.
func TestDuplicateWriteSetRejected(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 4)
	dup := &txn.Proc{
		Writes: []txn.Key{key(1), key(2), key(1)},
		Body:   func(ctx txn.Ctx) error { return ctx.Write(key(1), txn.NewValue(8, 9)) },
	}
	res := e.ExecuteBatch([]txn.Txn{incTxn(0), dup, incTxn(0)})
	if res[0] != nil || res[2] != nil {
		t.Fatalf("healthy txns failed: %v / %v", res[0], res[2])
	}
	if !errors.Is(res[1], ErrDuplicateWriteKey) {
		t.Fatalf("duplicate write-set result = %v, want ErrDuplicateWriteKey", res[1])
	}
	if got := readCounter(t, e, 0); got != 2 {
		t.Fatalf("key 0 = %d, want 2", got)
	}
	if got := readCounter(t, e, 1); got != 0 {
		t.Fatalf("key 1 = %d, want 0 (rejected txn must not run)", got)
	}
}
