package core

import (
	"fmt"
	"testing"

	"bohm/internal/txn"
)

func key(id uint64) txn.Key { return txn.Key{Table: 0, ID: id} }

// incTxn returns a transaction performing read-modify-write increments on
// the given keys.
func incTxn(keys ...uint64) txn.Txn {
	ks := make([]txn.Key, len(keys))
	for i, id := range keys {
		ks[i] = key(id)
	}
	return &txn.Proc{
		Reads:  ks,
		Writes: ks,
		Body: func(ctx txn.Ctx) error {
			for _, k := range ks {
				v, err := ctx.Read(k)
				if err != nil {
					return err
				}
				if err := ctx.Write(k, txn.Incremented(v, 1)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func newTestEngine(t *testing.T, cfg Config, nkeys int) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for i := 0; i < nkeys; i++ {
		if err := e.Load(key(uint64(i)), txn.NewValue(8, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func readCounter(t *testing.T, e *Engine, id uint64) uint64 {
	t.Helper()
	var got uint64
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Reads: []txn.Key{key(id)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(id))
			if err != nil {
				return err
			}
			got = txn.U64(v)
			return nil
		},
	}})
	if res[0] != nil {
		t.Fatalf("read of key %d failed: %v", id, res[0])
	}
	return got
}

func TestSmokeSequentialIncrements(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 8
	e := newTestEngine(t, cfg, 4)

	const rounds = 100
	for r := 0; r < rounds; r++ {
		ts := []txn.Txn{incTxn(0, 1), incTxn(1, 2), incTxn(2, 3)}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("round %d txn %d: %v", r, i, err)
			}
		}
	}
	want := map[uint64]uint64{0: rounds, 1: 2 * rounds, 2: 2 * rounds, 3: rounds}
	for id, w := range want {
		if got := readCounter(t, e, id); got != w {
			t.Errorf("key %d = %d, want %d", id, got, w)
		}
	}
}

func TestSmokeHotKeyConflicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 3
	cfg.ExecWorkers = 4
	cfg.BatchSize = 64
	e := newTestEngine(t, cfg, 1)

	const n = 1000
	ts := make([]txn.Txn, n)
	for i := range ts {
		ts[i] = incTxn(0)
	}
	for i, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if got := readCounter(t, e, 0); got != n {
		t.Errorf("hot key = %d, want %d", got, n)
	}
	if s := e.Stats(); s.Committed < n {
		t.Errorf("committed = %d, want >= %d", s.Committed, n)
	}
}

func TestSmokeAbortCopyForward(t *testing.T) {
	e := newTestEngine(t, DefaultConfig(), 1)

	if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
		t.Fatal(res[0])
	}
	boom := fmt.Errorf("boom")
	abort := &txn.Proc{
		Reads:  []txn.Key{key(0)},
		Writes: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(0))
			if err != nil {
				return err
			}
			if err := ctx.Write(key(0), txn.Incremented(v, 100)); err != nil {
				return err
			}
			return boom
		},
	}
	res := e.ExecuteBatch([]txn.Txn{abort, incTxn(0)})
	if res[0] != boom {
		t.Fatalf("abort result = %v, want boom", res[0])
	}
	if res[1] != nil {
		t.Fatalf("increment after abort failed: %v", res[1])
	}
	// 1 from the first increment, +1 from the post-abort increment; the
	// aborted +100 must not be visible.
	if got := readCounter(t, e, 0); got != 2 {
		t.Errorf("counter = %d, want 2", got)
	}
}
