package core

import (
	"testing"

	"bohm/internal/txn"
)

// TestPreprocessSerializationOrder re-runs the non-commutative fold check
// with the pre-processing stage enabled at several pool sizes.
func TestPreprocessSerializationOrder(t *testing.T) {
	for _, pp := range []int{1, 2, 3} {
		cfg := DefaultConfig()
		cfg.CCWorkers = 3
		cfg.ExecWorkers = 2
		cfg.BatchSize = 16
		cfg.Preprocess = true
		cfg.PreprocessWorkers = pp
		e := newTestEngine(t, cfg, 1)

		const n = 300
		ts := make([]txn.Txn, n)
		want := uint64(0)
		for i := range ts {
			tag := uint64(i + 1)
			ts[i] = setTxn(0, tag)
			want = want*31 + tag
		}
		for i, err := range e.ExecuteBatch(ts) {
			if err != nil {
				t.Fatalf("pp=%d txn %d: %v", pp, i, err)
			}
		}
		if got := readCounter(t, e, 0); got != want {
			t.Fatalf("pp=%d: fold = %d, want %d", pp, got, want)
		}
	}
}

// TestPreprocessMatchesBaseline runs the same workload with and without
// pre-processing; final states must be identical.
func TestPreprocessMatchesBaseline(t *testing.T) {
	mkWork := func() []txn.Txn {
		var ts []txn.Txn
		for i := 0; i < 400; i++ {
			a := uint64(i % 13)
			b := uint64((i*7 + 3) % 13)
			if a == b {
				b = (b + 1) % 13
			}
			ts = append(ts, incTxn(a, b))
		}
		return ts
	}
	run := func(preprocess bool) []uint64 {
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 32
		cfg.Preprocess = preprocess
		cfg.PreprocessWorkers = 2
		e := newTestEngine(t, cfg, 13)
		for i, err := range e.ExecuteBatch(mkWork()) {
			if err != nil {
				t.Fatalf("preprocess=%v txn %d: %v", preprocess, i, err)
			}
		}
		out := make([]uint64, 13)
		for i := range out {
			out[i] = readCounter(t, e, uint64(i))
		}
		return out
	}
	base := run(false)
	pp := run(true)
	for i := range base {
		if base[i] != pp[i] {
			t.Errorf("key %d: baseline %d, preprocessed %d", i, base[i], pp[i])
		}
	}
}

// TestPreprocessReadRefsAnnotated: the plan path must still produce read
// annotations.
func TestPreprocessReadRefsAnnotated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Preprocess = true
	e := newTestEngine(t, cfg, 4)
	ts := make([]txn.Txn, 40)
	for i := range ts {
		ts[i] = incTxn(uint64(i % 4))
	}
	for _, err := range e.ExecuteBatch(ts) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.ReadRefHits == 0 {
		t.Error("no read-reference hits on the preprocessed path")
	}
}

// TestPreprocessAbortsAndInserts covers the abort copy-forward and
// first-version insert paths under pre-processing.
func TestPreprocessAbortsAndInserts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Preprocess = true
	cfg.PreprocessWorkers = 2
	cfg.BatchSize = 8
	e := newTestEngine(t, cfg, 1)

	if res := e.ExecuteBatch([]txn.Txn{incTxn(0)}); res[0] != nil {
		t.Fatal(res[0])
	}
	boom := txn.ErrAbort
	abort := &txn.Proc{
		Reads:  []txn.Key{key(0)},
		Writes: []txn.Key{key(0)},
		Body: func(ctx txn.Ctx) error {
			v, err := ctx.Read(key(0))
			if err != nil {
				return err
			}
			if err := ctx.Write(key(0), txn.Incremented(v, 100)); err != nil {
				return err
			}
			return boom
		},
	}
	ins := &txn.Proc{
		Writes: []txn.Key{key(55)},
		Body:   func(ctx txn.Ctx) error { return ctx.Write(key(55), txn.NewValue(8, 9)) },
	}
	res := e.ExecuteBatch([]txn.Txn{abort, ins, incTxn(0)})
	if res[0] != boom || res[1] != nil || res[2] != nil {
		t.Fatalf("results: %v", res)
	}
	if got := readCounter(t, e, 0); got != 2 {
		t.Errorf("key 0 = %d, want 2", got)
	}
	if got := readCounter(t, e, 55); got != 9 {
		t.Errorf("key 55 = %d, want 9", got)
	}
}

// TestPreprocessTinyBatches: batches smaller than the preprocessing pool
// must still be fully planned (stripe arithmetic edge case).
func TestPreprocessTinyBatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Preprocess = true
	cfg.PreprocessWorkers = 4
	cfg.BatchSize = 64
	e := newTestEngine(t, cfg, 2)
	for i := 0; i < 10; i++ {
		// Single-transaction submissions flush one-node batches.
		if res := e.ExecuteBatch([]txn.Txn{incTxn(uint64(i % 2))}); res[0] != nil {
			t.Fatalf("round %d: %v", i, res[0])
		}
	}
	if got := readCounter(t, e, 0); got != 5 {
		t.Errorf("key 0 = %d, want 5", got)
	}
	if got := readCounter(t, e, 1); got != 5 {
		t.Errorf("key 1 = %d, want 5", got)
	}
}
