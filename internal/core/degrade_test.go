package core

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"bohm/internal/txn"
	"bohm/internal/vfs"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// The degradation-ladder tests drive the durable engine against an
// injected filesystem (vfs.FaultFS) and check the two contractual
// outcomes of a storage fault:
//
//   - transient: the write-hole repair heals the log in place, every
//     ExecuteBatch call acknowledges normally, and the only trace is a
//     non-zero Stats.LogRetries;
//   - persistent: repair exhausts its budget, the engine steps down to
//     LogDegraded — new pipelined transactions fail fast with
//     ErrDurabilityLost while reads keep serving the last durable
//     snapshot — and a recovery from the healed directory reproduces
//     every acknowledged write.

// mutOp is one operation of the fault workload, kept as data so the test
// can replay it against an in-memory model map. Semantics mirror the
// mutProc registry procedure exactly (see durRegistry).
type mutOp struct {
	id, delta uint64
	op        byte
}

// randOps draws n operations over the shared key space from rng.
func randOps(rng interface{ Intn(int) int }, n int) []mutOp {
	ops := make([]mutOp, n)
	for i := range ops {
		ops[i] = mutOp{
			id:    uint64(rng.Intn(mutKeys + 16)),
			delta: uint64(rng.Intn(1000)) + 1,
			op:    opIncrement,
		}
		switch rng.Intn(10) {
		case 0:
			ops[i].op = opDelete
		case 1:
			ops[i].op = opAbort
		}
	}
	return ops
}

func opsTxns(t testing.TB, reg *txn.Registry, ops []mutOp) []txn.Txn {
	t.Helper()
	ts := make([]txn.Txn, len(ops))
	for i, o := range ops {
		ts[i] = mutCall(t, reg, o.id, o.delta, o.op)
	}
	return ts
}

// applyOps folds ops[:n] into the model with the engine's semantics: an
// increment writes cur*31+delta (missing key reads as zero), a delete
// removes the key, an abort is a no-op.
func applyOps(model map[txn.Key]uint64, ops []mutOp, n int) {
	for _, o := range ops[:n] {
		k := key(o.id)
		switch o.op {
		case opDelete:
			delete(model, k)
		case opAbort:
		default:
			model[k] = model[k]*31 + o.delta
		}
	}
}

// initialModel is the state loadInitial installs.
func initialModel() map[txn.Key]uint64 {
	m := make(map[txn.Key]uint64, mutKeys)
	for id := uint64(0); id < mutKeys; id++ {
		m[key(id)] = 7 + id
	}
	return m
}

func cloneModel(m map[txn.Key]uint64) map[txn.Key]uint64 {
	c := make(map[txn.Key]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func equalStates(a, b map[txn.Key]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func isDurabilityErr(err error) bool { return errors.Is(err, ErrDurabilityLost) }

// classifyCall buckets one ExecuteBatch result slice: acked means every
// transaction either committed or user-aborted (the call is durably
// acknowledged); durability means at least one slot carries
// ErrDurabilityLost (nothing in the call is acknowledged); any other
// error is returned for the caller to fail on.
func classifyCall(res []error) (acked, durability bool, other error) {
	acked = true
	for _, err := range res {
		switch {
		case err == nil || errors.Is(err, txn.ErrAbort):
		case isDurabilityErr(err):
			acked, durability = false, true
		default:
			acked, other = false, err
		}
	}
	return acked, durability, other
}

// degradedConfig wires a FaultFS and a tight repair budget into the
// standard durable test config.
func degradedConfig(dir string, fs vfs.FS) Config {
	cfg := durableConfig(dir)
	cfg.FS = fs
	cfg.LogRetry = RetryPolicy{Attempts: 2, Backoff: 200 * time.Microsecond}
	return cfg
}

// TestTransientLogFaultHealsInvisibly is the first acceptance schedule: a
// bounded run of fsync faults that drop the unsynced pages must be healed
// entirely inside the write-hole repair — zero client-visible errors,
// Stats.LogRetries > 0 — and a later crash+recovery must reproduce the
// exact reference state.
func TestTransientLogFaultHealsInvisibly(t *testing.T) {
	const n = 12
	wantState, _, _ := runReference(t, n)

	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	cfg := durableConfig(dir)
	cfg.FS = fsys
	cfg.LogRetry = RetryPolicy{Attempts: 5, Backoff: 200 * time.Microsecond}
	reg := durRegistry()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatalf("sealing loads: %v", err)
	}
	// Two fsync faults on the live segment, dirty pages dropped: the
	// second typically lands inside the first repair's own sync, so the
	// schedule exercises retry-within-repair as well.
	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: 3, Count: 2, DropUnsynced: true})

	for i := 0; i < n; i++ {
		res := e.ExecuteBatch(workloadBatch(t, reg, i))
		for j, err := range res {
			if err != nil && !errors.Is(err, txn.ErrAbort) {
				t.Fatalf("call %d txn %d: client-visible error through a transient fault: %v", i, j, err)
			}
		}
	}
	if fsys.Injected() == 0 {
		t.Fatal("fault schedule never fired; schedule is miscalibrated")
	}
	if st := e.Stats(); st.LogRetries == 0 {
		t.Fatal("transient fault healed without any recorded log retry")
	}
	if h, cause := e.Health(); h != Healthy || cause != nil {
		t.Fatalf("engine left Healthy after a healed fault: %v (%v)", h, cause)
	}
	e.Kill()

	fsys.Clear()
	r, err := Recover(degradedConfig(dir, fsys), reg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer r.Close()
	sameState(t, "recovered after healed faults", dumpState(r), wantState)
}

// TestPersistentLogFaultDegrades is the second acceptance schedule: a
// persistent fsync fault exhausts the repair budget and the engine must
// walk the whole ladder — ErrDurabilityLost on the failing call, fast
// rejection of later writes, reads frozen at the durable snapshot,
// checkpoints refused — and recovery from the healed directory must land
// on an acknowledged-prefix state.
func TestPersistentLogFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	reg := durRegistry()
	e, err := New(degradedConfig(dir, fsys))
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatalf("sealing loads: %v", err)
	}
	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", After: 6, Count: -1, DropUnsynced: true})

	rng := newTestRand(1)
	model := initialModel()
	var failOps []mutOp
	for i := 0; i < 60; i++ {
		ops := randOps(rng, 12)
		acked, durability, other := classifyCall(e.ExecuteBatch(opsTxns(t, reg, ops)))
		if other != nil {
			t.Fatalf("call %d: unexpected error class: %v", i, other)
		}
		if durability {
			failOps = ops
			break
		}
		if !acked {
			t.Fatalf("call %d: neither acknowledged nor durability-failed", i)
		}
		applyOps(model, ops, len(ops))
	}
	if failOps == nil {
		t.Fatal("persistent fsync fault never surfaced ErrDurabilityLost")
	}

	if h, cause := e.Health(); h != LogDegraded || cause == nil {
		t.Fatalf("Health = %v (cause %v), want LogDegraded with a cause", h, cause)
	}
	st := e.Stats()
	if st.LogRetries == 0 {
		t.Error("degradation without any recorded repair attempt")
	}
	if st.DegradedSince == 0 {
		t.Error("Stats.DegradedSince not stamped")
	}

	// Later writes are refused fast, before execution.
	probe := e.ExecuteBatch(opsTxns(t, reg, randOps(rng, 3)))
	for i, err := range probe {
		if !isDurabilityErr(err) {
			t.Fatalf("degraded ExecuteBatch slot %d = %v, want ErrDurabilityLost", i, err)
		}
	}

	// Checkpoints are refused: they would durably capture executed but
	// never-logged batches.
	if err := e.CheckpointNow(); !isDurabilityErr(err) {
		t.Fatalf("degraded CheckpointNow = %v, want ErrDurabilityLost", err)
	}

	// Reads serve every write acknowledged before the fault. Keys the
	// failing call touched are indeterminate (its transactions may or may
	// not be on durable storage) and are excluded.
	tainted := make(map[txn.Key]bool)
	for _, o := range failOps {
		tainted[key(o.id)] = true
	}
	checkDegradedReads(t, e, model, tainted)

	// The diverted read-only path serves the same frozen snapshot.
	var roKey txn.Key
	var roWant uint64
	found := false
	for k, v := range model {
		if !tainted[k] {
			roKey, roWant, found = k, v, true
			break
		}
	}
	if !found {
		t.Fatal("workload left no untainted key to read")
	}
	var roGot uint64
	ro := &txn.Proc{Reads: []txn.Key{roKey}, Body: func(c txn.Ctx) error {
		v, err := c.Read(roKey)
		if err != nil {
			return err
		}
		roGot = txn.U64(v)
		return nil
	}}
	if res := e.ExecuteReadOnly([]txn.Txn{ro}); res[0] != nil {
		t.Fatalf("degraded ExecuteReadOnly: %v", res[0])
	}
	if roGot != roWant {
		t.Fatalf("degraded ExecuteReadOnly read %d, want %d", roGot, roWant)
	}

	e.Kill()
	if h, _ := e.Health(); h != Closed {
		t.Fatalf("Health after Kill = %v, want Closed", h)
	}

	// Recovery from the healed directory: the state must be the
	// acknowledged model plus at most a prefix of the failing call's
	// internal batches (those frames may have reached the disk before the
	// fault; their clients were told ErrDurabilityLost, which promises
	// nothing either way).
	fsys.Clear()
	r, err := Recover(degradedConfig(dir, fsys), reg)
	if err != nil {
		t.Fatalf("Recover after heal: %v", err)
	}
	defer r.Close()
	got := dumpState(r)
	if !matchesAnyPrefix(got, model, failOps, 8) {
		t.Fatalf("recovered state matches no acknowledged-prefix candidate")
	}
}

// checkDegradedReads asserts the inline Read API serves exactly the
// acknowledged model (untainted keys only): present keys with their
// values, deleted/absent keys with ErrNotFound.
func checkDegradedReads(t *testing.T, e *Engine, model map[txn.Key]uint64, tainted map[txn.Key]bool) {
	t.Helper()
	for id := uint64(0); id < mutKeys+16; id++ {
		k := key(id)
		if tainted[k] {
			continue
		}
		v, err := e.Read(k, nil)
		want, present := model[k]
		switch {
		case present && err != nil:
			t.Fatalf("degraded Read(%d): %v, want value %d", id, err, want)
		case present && txn.U64(v) != want:
			t.Fatalf("degraded Read(%d) = %d, want %d", id, txn.U64(v), want)
		case !present && !errors.Is(err, txn.ErrNotFound):
			t.Fatalf("degraded Read(%d) = (%v, %v), want ErrNotFound", id, v, err)
		}
	}
}

// matchesAnyPrefix reports whether got equals the acked model extended by
// some internal-batch prefix of failOps (boundaries at multiples of
// batchSize, plus the full call). failOps nil means got must equal the
// model exactly.
func matchesAnyPrefix(got, model map[txn.Key]uint64, failOps []mutOp, batchSize int) bool {
	if failOps == nil {
		return equalStates(got, model)
	}
	for n := 0; ; n += batchSize {
		if n > len(failOps) {
			n = len(failOps)
		}
		cand := cloneModel(model)
		applyOps(cand, failOps, n)
		if equalStates(got, cand) {
			return true
		}
		if n == len(failOps) {
			return false
		}
	}
}

// TestDegradedMetricsExposition: the health gauge and the new counters
// appear in the Prometheus text exposition of a degraded engine.
func TestDegradedMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	cfg := degradedConfig(dir, fsys)
	cfg.Metrics = true
	reg := durRegistry()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	loadInitial(t, e)
	fsys.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-", Count: -1})

	deadline := time.Now().Add(5 * time.Second)
	for {
		res := e.ExecuteBatch(opsTxns(t, reg, randOps(newTestRand(2), 4)))
		if _, durability, _ := classifyCall(res); durability {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never degraded")
		}
	}

	var buf bytes.Buffer
	e.writeMetrics(&buf)
	text := buf.String()
	for _, want := range []string{
		"bohm_engine_health 1",
		"bohm_log_retries_total",
		"bohm_checkpoint_retries_total",
		"bohm_degraded_since_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestDegradedEngineCloseClean: Close on a degraded engine (poisoned
// writer, failed syncs) must terminate promptly and land on Closed.
func TestDegradedEngineCloseClean(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	reg := durRegistry()
	e, err := New(degradedConfig(dir, fsys))
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	fsys.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: "wal-", Count: -1})

	rng := newTestRand(3)
	for i := 0; i < 60; i++ {
		if _, durability, _ := classifyCall(e.ExecuteBatch(opsTxns(t, reg, randOps(rng, 4)))); durability {
			break
		}
	}
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a degraded engine")
	}
	if h, _ := e.Health(); h != Closed {
		t.Fatalf("Health after Close = %v, want Closed", h)
	}
}

// TestCheckpointRetryHealsTransientFault: a single fault on the
// checkpoint temp file must be absorbed by the checkpoint retry loop —
// CheckpointNow succeeds and Stats.CheckpointRetries records the rerun.
func TestCheckpointRetryHealsTransientFault(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.NewFaultFS(nil)
	cfg := degradedConfig(dir, fsys)
	cfg.CheckpointRetry = RetryPolicy{Attempts: 3, Backoff: 200 * time.Microsecond}
	reg := durRegistry()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	loadInitial(t, e)
	e.ExecuteBatch(workloadBatch(t, reg, 0))

	fsys.AddFault(vfs.Fault{Op: vfs.OpCreate, Path: "ckpt", Count: 1})
	if err := e.CheckpointNow(); err != nil {
		t.Fatalf("CheckpointNow through a transient fault: %v", err)
	}
	if st := e.Stats(); st.CheckpointRetries == 0 {
		t.Fatal("checkpoint healed without a recorded retry")
	}
	if fsys.Injected() == 0 {
		t.Fatal("checkpoint fault never fired")
	}
}
