// Package core implements BOHM, the concurrency control protocol of
// Faleiro & Abadi, "Rethinking serializable multiversion concurrency
// control" (VLDB 2015).
//
// A transaction flows through two phases run by two disjoint sets of
// goroutines (§3):
//
//  1. Concurrency control: a single sequencer assigns each transaction a
//     timestamp (its position in the transaction log), then m CC workers —
//     each owning a hash partition of the keyspace — insert uninitialized
//     placeholder versions for every write and annotate reads with direct
//     version references. CC workers never coordinate except at batch
//     boundaries.
//  2. Execution: n execution workers evaluate transaction logic, filling
//     in placeholder data. Read dependencies on unproduced versions are
//     resolved by recursively executing the producing transaction, or by
//     suspending and retrying when another worker holds it.
//
// Reads never block writes; no reads are tracked; no global counter is
// touched on the transaction execution path.
package core

import (
	"sync/atomic"
	"unsafe"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// Transaction execution states (§3.3.1).
const (
	stUnprocessed int32 = iota
	stExecuting
	stComplete
)

// node is the engine's per-transaction record: the user transaction plus
// everything the two phases attach to it.
type node struct {
	t  txn.Txn
	ts uint64

	// Cached access sets (Txn implementations may rebuild slices per
	// call; the engine reads them many times).
	reads  []txn.Key
	writes []txn.Key
	ranges []txn.KeyRange

	// writeVers[i] is the placeholder version the CC phase inserted for
	// writes[i]. Written by exactly one CC worker per slot, read by
	// execution workers after the batch barrier.
	writeVers []*storage.Version

	// readRefs[i] is the version reads[i] must observe, annotated by the
	// CC phase when the read-reference optimization is enabled (§3.2.3).
	// nil slots fall back to version-chain traversal.
	readRefs []*storage.Version

	// rangeRefs[r][p] is CC worker p's annotation of declared range
	// ranges[r]: the keys of partition p inside the range, in key order,
	// each with the version visible at nd.ts (the partition head at the
	// moment worker p processed this transaction — exactly the newest
	// version below nd.ts, by the same in-timestamp-order argument as
	// readRefs). Each [r][p] slot is written by exactly one CC worker and
	// read by execution workers after the batch barrier. nil when range
	// annotation is disabled; scans then walk the directories live.
	rangeRefs [][][]rangeEntry

	// state is the Unprocessed → Executing → Complete machine. The
	// worker that CASes Unprocessed→Executing owns the attempt; it either
	// finalizes to Complete or restores Unprocessed when suspended on a
	// busy dependency.
	state atomic.Int32

	// err is the transaction's outcome, written before state flips to
	// Complete.
	err error

	// sub points back to the submission this transaction arrived in, and
	// idx is its slot in the submission's result slice.
	sub *submission
	idx int
}

// rangeEntry is one key of a CC-time range annotation: the key and the
// version a scan at the annotated transaction's timestamp must observe.
type rangeEntry struct {
	k txn.Key
	v *storage.Version
}

// submission is one ExecuteBatch call: a slice of transactions awaiting
// results.
type submission struct {
	txns      []txn.Txn
	res       []error
	remaining atomic.Int64
	done      chan struct{}

	// tick marks an idle-reclamation nudge rather than a real submission
	// (see Engine.idleLoop): the sequencer answers it with an empty batch
	// — pure lifecycle work — when the pipeline is drained, and discards
	// it otherwise. Every other field is zero; nothing waits on done.
	tick bool

	// orig maps txns indices back to result slots when ExecuteBatch
	// rejected some transactions before submission (duplicate write-set
	// keys); nil means the identity mapping.
	orig []int

	// ackCh, when non-nil (durability enabled at submit time), receives
	// the submission once every transaction has completed; the acker
	// goroutine closes done only after lastBatch is durable. When nil,
	// complete closes done directly.
	ackCh chan *submission
	// lastBatch is the newest batch containing one of the submission's
	// transactions. The sequencer writes it before batch fan-out; the
	// acker reads it after execution completes, so the channel hand-offs
	// between the phases order the accesses. (A completing fast-path
	// reader may also load it, synchronized through the remaining
	// counter: the pipelined transactions' decrements order the
	// sequencer's store before the final decrement's load.) Zero for a
	// submission with no pipelined transactions.
	lastBatch uint64

	// obsT0 is the ExecuteBatch arrival stamp (nanoseconds on the obs
	// clock) when metrics are on, 0 otherwise; the sequencer copies it
	// into each batch's earliest-submission stamp.
	obsT0 int64

	// acked, when the read-only fast path is enabled, points at the
	// engine's acknowledged-batch high-water mark; see finish.
	acked *atomic.Uint64

	// noAck suppresses the acknowledged-batch bump: set by the sequencer
	// before failing a submission whose batch was dropped on a log
	// failure. The dropped batch never executes, so publishing its
	// sequence as the recency floor would make later reads wait on a
	// watermark that can never be reached. Atomic because the final
	// release may run on any worker.
	noAck atomic.Bool

	// recency is the acknowledged-batch bound loaded at submission time:
	// the fast path's snapshot must cover every batch acknowledged before
	// this submission arrived — and deliberately nothing newer, so reads
	// never queue behind writes acknowledged after them.
	recency uint64
}

// origIdx returns the result slot for txns[i].
func (s *submission) origIdx(i int) int {
	if s.orig == nil {
		return i
	}
	return s.orig[i]
}

// complete records the outcome of node nd and, if it is the submission's
// last outstanding transaction, wakes the submitter — directly, or via
// the durability acknowledgement queue when the engine is logging.
func (s *submission) complete(nd *node) {
	s.finish(nd.idx, nd.err)
}

// finish records err as the outcome of result slot idx.
func (s *submission) finish(idx int, err error) {
	s.res[idx] = err
	s.release(1)
}

// release retires n completed transactions. The last outstanding one
// publishes the submission's newest batch to the engine's
// acknowledged-batch bound (the read-only fast path's recency target)
// before waking the submitter, so a reader submitted after the wake never
// misses these writes. Result-slot writes by the retiring workers are
// ordered before the submitter's reads by the counter and the wake.
func (s *submission) release(n int64) {
	if s.remaining.Add(-n) == 0 {
		if s.acked != nil && s.lastBatch > 0 && !s.noAck.Load() {
			for {
				cur := s.acked.Load()
				if s.lastBatch <= cur || s.acked.CompareAndSwap(cur, s.lastBatch) {
					break
				}
			}
		}
		if s.ackCh != nil {
			s.ackCh <- s
		} else {
			close(s.done)
		}
	}
}

// batch is the unit of coordination between phases (§3.2.4): CC workers
// synchronize once per batch; a forwarder goroutine implements the batch
// barrier and hands batches to the execution phase in sequence order.
//
// With pooling enabled (the default), a batch is also the unit of memory
// recycling: its nodes live in a slab, its per-node slices are carved from
// per-batch arenas, and the whole object cycles back to the sequencer
// through the engine's retire ring once the execution watermark proves no
// reader can still touch it (see the retireLag argument below).
type batch struct {
	seq   uint64
	nodes []*node
	// limitTS is the first timestamp after the batch (exclusive upper
	// bound of its transactions' timestamps). The sequencer writes it at
	// flush time; execution workers republish it as their snapshot
	// boundary contribution when the batch completes, which is how the
	// read-only fast path converts the execution watermark from batch
	// space into timestamp space.
	limitTS uint64
	// plans, when pre-processing is enabled (§3.2.2) with the CC kernels
	// disabled, holds per-partition work lists: plans[p][pp] is the
	// sequence of items preprocessing worker pp extracted for partition p,
	// in timestamp order.
	plans [][][]planItem

	// Kernel plan state (pre-processing with kernels on — the default):
	// ppItems[j] is preprocessing worker j's dense partition-major slab of
	// hash-carrying plan items, built by a private counting sort;
	// ppOff[j][p]..ppOff[j][p+1] is worker j's window of partition p's
	// work, ppCur[j] its fill cursors, and ppNW[j][p] the number of write
	// items in that window — the CC worker's batched-placeholder grab count
	// (see preprocKernel). Every row is touched by exactly one worker, so
	// the stage needs no shared state; all of it persists across batch
	// epochs.
	ppItems [][]planItem
	ppOff   [][]int32
	ppCur   [][]int32
	ppNW    [][]int32

	// split is the CC/exec worker assignment this batch is processed
	// under; the sequencer stamps the current assignment at flush time, so
	// an adaptive-governor migration lands exactly at a batch boundary.
	split *workerSplit

	// Arena state, populated only when pooling is on.
	//
	// nodeBuf is the slab backing the batch's nodes: node i of the batch
	// is &nodeBuf[i], so a steady-state batch allocates no node memory at
	// all. refs backs the writeVers and readRefs slices; rangeSpines and
	// rangeRows back the two outer levels of rangeRefs; ents[w] is CC
	// worker w's private arena for range-annotation entries. All are
	// reset — not freed — when the batch recycles.
	nodeBuf     []node
	refs        arena[*storage.Version]
	rangeSpines arena[[][]rangeEntry]
	rangeRows   arena[[]rangeEntry]
	ents        []entArena

	// execDone counts execution workers finished with the batch; the
	// worker that completes it pushes the batch into the retire ring.
	execDone atomic.Int32

	// obs carries the batch's stage timestamps when metrics are on; all
	// zero (and untouched) otherwise.
	obs batchObs
}

// batchObs is one batch's stage-timestamp record, nanoseconds on the
// engine's obs clock. submit/seq/log are written by the sequencer before
// fan-out (channel sends order them for all downstream readers); ccFirst
// and ccLast are racing CC-worker stamps, and done is the obs-private
// completion counter — distinct from execDone, which only exists under
// pooling — whose final increment elects the execution worker that folds
// the timeline into the histograms (obsRecordBatch).
type batchObs struct {
	submit  int64 // earliest submission arrival in the batch
	seq     int64 // sequencer flush
	log     int64 // command-log append returned (0 when not logging)
	ccFirst atomic.Int64
	ccLast  atomic.Int64
	done    atomic.Int32
}

// reset clears the stamps for the batch's next epoch. Only the sequencer
// calls it, after the retire gate proved the batch unreachable.
func (bo *batchObs) reset() {
	bo.submit, bo.seq, bo.log = 0, 0, 0
	bo.ccFirst.Store(0)
	bo.ccLast.Store(0)
	bo.done.Store(0)
}

// newNode returns the next node of the batch's slab. Only the sequencer
// calls it, and only when pooling is on.
func (b *batch) newNode() *node {
	if b.nodeBuf == nil {
		b.nodeBuf = make([]node, cap(b.nodes))
	}
	return &b.nodeBuf[len(b.nodes)]
}

// execQueueCap is the buffer depth of each execution input channel. The
// retire-ring lifetime argument depends on it; see retireLag.
const execQueueCap = 2

// retireLag is how far past a batch's sequence the execution watermark
// must advance before the batch's memory (nodes, arenas) and the versions
// superseded during its CC step may be reused.
//
// The hazard is a stale pointer: an execution worker resolves a read
// dependency by loading Version.Producer — a *node — but only when the
// version is not yet Ready, and placeholder versions of batch B all become
// Ready before the watermark reaches B (Install precedes Complete precedes
// the worker's watermark store). So after the watermark passes B, no NEW
// load can reach B's nodes; the only danger is a worker that loaded the
// pointer earlier — while some version of B was still unready — and is
// still executing. Such a worker's current batch C was in flight while B
// was: the forwarder releases batches to every worker in sequence order
// through channels of capacity execQueueCap, so while any worker is still
// executing B, the forwarder cannot have handed out any batch past
// B + execQueueCap + 1. Once the watermark reaches B + retireLag, every
// such C has fully drained and no stale pointer into B can exist.
//
// The same bound covers versions cut out of chains by GC during the CC
// step of batch b: a reader can hold a pointer into the cut sublist only
// if it loaded it before the cut, and at cut time execution had not
// reached b (CC precedes execution), so every such reader is in a batch
// ≤ b + retireLag - 1. Fresh traversals never enter a cut region at all —
// the newest superseded version s (which always stays linked) satisfies
// every live reader's and the checkpoint snapshotter's visibility bound,
// so walks stop at or above s.
//
// While periodic checkpointing is active the gate uses watermark(), which
// is additionally capped at the checkpoint pin, so recycling also trails
// the newest checkpoint exactly like garbage collection does.
const retireLag = execQueueCap + 1

// maxFreeBatches bounds the sequencer's batch free list. The pipeline
// holds only a handful of batches in flight (CC and execution queue
// depths plus retireLag), so anything above that is workload burst that
// should return to the runtime.
const maxFreeBatches = 8

// resetForReuse clears a retired batch for the next sequencer epoch and
// returns an estimate of the bytes made reusable. Only the sequencer calls
// it, and only after the watermark gate has proven the batch unreachable.
func (b *batch) resetForReuse() uint64 {
	bytes := uint64(len(b.nodes)) * nodeBytes
	for _, nd := range b.nodes {
		// Drop references eagerly so user transactions, submissions and
		// version slices become collectable now rather than when the slot
		// is next used.
		nd.t = nil
		nd.sub = nil
		nd.reads, nd.writes, nd.ranges = nil, nil, nil
		nd.writeVers, nd.readRefs, nd.rangeRefs = nil, nil, nil
		nd.err = nil
	}
	b.nodes = b.nodes[:0]
	b.execDone.Store(0)
	b.obs.reset()
	bytes += b.refs.reset()
	bytes += b.rangeSpines.reset()
	bytes += b.rangeRows.reset()
	for i := range b.ents {
		bytes += b.ents[i].reset()
	}
	for c := range b.plans {
		for j := range b.plans[c] {
			bytes += uint64(len(b.plans[c][j])) * planItemBytes
			b.plans[c][j] = b.plans[c][j][:0]
		}
	}
	for j := range b.ppItems {
		bytes += uint64(len(b.ppItems[j])) * planItemBytes
		b.ppItems[j] = b.ppItems[j][:0]
	}
	return bytes
}

// arena is a per-batch bump allocator: carve hands out fixed-size windows
// of a backing buffer, and reset clears the used prefix for the next
// epoch. When a batch's demand exceeds the buffer, carve falls back to a
// fresh chunk (earlier windows keep the old chunk alive until the batch
// retires) and reset grows the buffer to the observed demand, so a steady
// workload converges to zero allocations per batch.
type arena[T any] struct {
	buf    []T
	used   int
	demand int
}

// arenaMinChunk is the smallest chunk an arena allocates.
const arenaMinChunk = 1024

func (a *arena[T]) carve(n int) []T {
	a.demand += n
	if a.used+n > len(a.buf) {
		sz := n
		if sz < arenaMinChunk {
			sz = arenaMinChunk
		}
		a.buf = make([]T, sz)
		a.used = 0
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// reset prepares the arena for the next batch and returns the bytes of
// the recycled used prefix. Windows carved this epoch must be dead (the
// retire gate): the clear below severs their contents, and the next epoch
// reuses their memory.
func (a *arena[T]) reset() uint64 {
	var z T
	bytes := uint64(a.used) * uint64(unsafe.Sizeof(z))
	if a.demand > len(a.buf) {
		a.buf = make([]T, a.demand)
	} else {
		clear(a.buf[:a.used])
	}
	a.used, a.demand = 0, 0
	return bytes
}

// entArena is a per-CC-worker, per-batch arena for range-annotation
// entries. Unlike arena, allocation size is unknown up front — annotations
// grow by append — so the protocol is take (an empty window over the
// buffer's free tail), append at will, then commit (adopt the window into
// the buffer if the appends stayed in place, or record the overflow so
// reset can grow the buffer for the next epoch).
type entArena struct {
	buf      []rangeEntry
	overflow int
}

func (a *entArena) take() []rangeEntry { return a.buf[len(a.buf):] }

func (a *entArena) commit(s []rangeEntry) []rangeEntry {
	if n := len(a.buf) + len(s); n <= cap(a.buf) {
		// The appends never outgrew the tail, so s still aliases buf.
		a.buf = a.buf[:n]
	} else {
		a.overflow += len(s)
	}
	return s
}

func (a *entArena) reset() uint64 {
	bytes := uint64(len(a.buf)) * entBytes
	if a.overflow > 0 {
		n := cap(a.buf) + a.overflow
		if n < arenaMinChunk {
			n = arenaMinChunk
		}
		a.buf = make([]rangeEntry, 0, n)
		a.overflow = 0
	} else {
		// Clear through cap: an overflowing append may have written
		// entries into the tail before escaping.
		clear(a.buf[:cap(a.buf)])
		a.buf = a.buf[:0]
	}
	return bytes
}

// Struct sizes for the bytes-recycled estimate.
var (
	nodeBytes     = uint64(unsafe.Sizeof(node{}))
	entBytes      = uint64(unsafe.Sizeof(rangeEntry{}))
	planItemBytes = uint64(unsafe.Sizeof(planItem{}))
)
