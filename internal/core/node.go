// Package core implements BOHM, the concurrency control protocol of
// Faleiro & Abadi, "Rethinking serializable multiversion concurrency
// control" (VLDB 2015).
//
// A transaction flows through two phases run by two disjoint sets of
// goroutines (§3):
//
//  1. Concurrency control: a single sequencer assigns each transaction a
//     timestamp (its position in the transaction log), then m CC workers —
//     each owning a hash partition of the keyspace — insert uninitialized
//     placeholder versions for every write and annotate reads with direct
//     version references. CC workers never coordinate except at batch
//     boundaries.
//  2. Execution: n execution workers evaluate transaction logic, filling
//     in placeholder data. Read dependencies on unproduced versions are
//     resolved by recursively executing the producing transaction, or by
//     suspending and retrying when another worker holds it.
//
// Reads never block writes; no reads are tracked; no global counter is
// touched on the transaction execution path.
package core

import (
	"sync/atomic"

	"bohm/internal/storage"
	"bohm/internal/txn"
)

// Transaction execution states (§3.3.1).
const (
	stUnprocessed int32 = iota
	stExecuting
	stComplete
)

// node is the engine's per-transaction record: the user transaction plus
// everything the two phases attach to it.
type node struct {
	t  txn.Txn
	ts uint64

	// Cached access sets (Txn implementations may rebuild slices per
	// call; the engine reads them many times).
	reads  []txn.Key
	writes []txn.Key
	ranges []txn.KeyRange

	// writeVers[i] is the placeholder version the CC phase inserted for
	// writes[i]. Written by exactly one CC worker per slot, read by
	// execution workers after the batch barrier.
	writeVers []*storage.Version

	// readRefs[i] is the version reads[i] must observe, annotated by the
	// CC phase when the read-reference optimization is enabled (§3.2.3).
	// nil slots fall back to version-chain traversal.
	readRefs []*storage.Version

	// rangeRefs[r][p] is CC worker p's annotation of declared range
	// ranges[r]: the keys of partition p inside the range, in key order,
	// each with the version visible at nd.ts (the partition head at the
	// moment worker p processed this transaction — exactly the newest
	// version below nd.ts, by the same in-timestamp-order argument as
	// readRefs). Each [r][p] slot is written by exactly one CC worker and
	// read by execution workers after the batch barrier. nil when range
	// annotation is disabled; scans then walk the directories live.
	rangeRefs [][][]rangeEntry

	// state is the Unprocessed → Executing → Complete machine. The
	// worker that CASes Unprocessed→Executing owns the attempt; it either
	// finalizes to Complete or restores Unprocessed when suspended on a
	// busy dependency.
	state atomic.Int32

	// err is the transaction's outcome, written before state flips to
	// Complete.
	err error

	// sub points back to the submission this transaction arrived in, and
	// idx is its slot in the submission's result slice.
	sub *submission
	idx int
}

// rangeEntry is one key of a CC-time range annotation: the key and the
// version a scan at the annotated transaction's timestamp must observe.
type rangeEntry struct {
	k txn.Key
	v *storage.Version
}

// submission is one ExecuteBatch call: a slice of transactions awaiting
// results.
type submission struct {
	txns      []txn.Txn
	res       []error
	remaining atomic.Int64
	done      chan struct{}

	// orig maps txns indices back to result slots when ExecuteBatch
	// rejected some transactions before submission (duplicate write-set
	// keys); nil means the identity mapping.
	orig []int

	// ackCh, when non-nil (durability enabled at submit time), receives
	// the submission once every transaction has completed; the acker
	// goroutine closes done only after lastBatch is durable. When nil,
	// complete closes done directly.
	ackCh chan *submission
	// lastBatch is the newest batch containing one of the submission's
	// transactions. The sequencer writes it before batch fan-out; the
	// acker reads it after execution completes, so the channel hand-offs
	// between the phases order the accesses.
	lastBatch uint64
}

// origIdx returns the result slot for txns[i].
func (s *submission) origIdx(i int) int {
	if s.orig == nil {
		return i
	}
	return s.orig[i]
}

// complete records the outcome of node nd and, if it is the submission's
// last outstanding transaction, wakes the submitter — directly, or via
// the durability acknowledgement queue when the engine is logging.
func (s *submission) complete(nd *node) {
	s.res[nd.idx] = nd.err
	if s.remaining.Add(-1) == 0 {
		if s.ackCh != nil {
			s.ackCh <- s
		} else {
			close(s.done)
		}
	}
}

// batch is the unit of coordination between phases (§3.2.4): CC workers
// synchronize once per batch; a forwarder goroutine implements the batch
// barrier and hands batches to the execution phase in sequence order.
type batch struct {
	seq   uint64
	nodes []*node
	// plans, when pre-processing is enabled (§3.2.2), holds per-CC-worker
	// work lists: plans[cc][pp] is the sequence of items preprocessing
	// worker pp extracted for CC worker cc, in timestamp order.
	plans [][][]planItem
}

func newBatch(seq uint64, capacity int) *batch {
	return &batch{seq: seq, nodes: make([]*node, 0, capacity)}
}
