package core

// loserTree is a k-way merge over sorted rangeEntry runs (one run per CC
// partition, in practice). mergeScan's old linear min paid O(partitions)
// comparisons per emitted key; the tree pays O(log partitions) — the
// classic tournament structure (Knuth 5.4.1): internal node t holds the
// loser of its subtree's match, ls[0] holds the overall winner, and
// advancing the winner replays only its leaf-to-root path.
//
// Runs never contain the same key (a key belongs to exactly one
// partition), so comparisons need no tie-breaking. An exhausted run
// compares as +infinity. The struct is embedded in per-worker scan
// scratch and reused across scans: init re-slices the existing arrays, so
// steady-state merging allocates nothing.
type loserTree struct {
	srcs [][]rangeEntry
	pos  []int
	ls   []int32
}

// init loads the tree with runs; empty runs are fine. Reuses the
// receiver's slices when they are large enough.
func (lt *loserTree) init(srcs [][]rangeEntry) {
	lt.srcs = srcs
	k := len(srcs)
	if cap(lt.pos) < k {
		lt.pos = make([]int, k)
		lt.ls = make([]int32, k)
	}
	lt.pos = lt.pos[:k]
	lt.ls = lt.ls[:k]
	for i := 0; i < k; i++ {
		lt.pos[i] = 0
		lt.ls[i] = -1
	}
	// Insert each run: its candidate ascends the path to the root,
	// swapping with any stored loser it loses to; the last survivor on a
	// fully-played path becomes the winner at ls[0].
	for s := 0; s < k; s++ {
		c := int32(s)
		t := (s + k) / 2
		for t > 0 && lt.ls[t] != -1 {
			if lt.beats(lt.ls[t], c) {
				c, lt.ls[t] = lt.ls[t], c
			}
			t /= 2
		}
		lt.ls[t] = c
	}
}

// beats reports whether run a's head orders before run b's; an exhausted
// run loses to everything.
func (lt *loserTree) beats(a, b int32) bool {
	if lt.pos[a] >= len(lt.srcs[a]) {
		return false
	}
	if lt.pos[b] >= len(lt.srcs[b]) {
		return true
	}
	return lt.srcs[a][lt.pos[a]].k.Less(lt.srcs[b][lt.pos[b]].k)
}

// ok reports whether any run still has entries. Meaningless before init or
// on an empty tree.
func (lt *loserTree) ok() bool {
	if len(lt.ls) == 0 {
		return false
	}
	w := lt.ls[0]
	return lt.pos[w] < len(lt.srcs[w])
}

// head returns the smallest pending entry. Only valid when ok.
func (lt *loserTree) head() rangeEntry {
	w := lt.ls[0]
	return lt.srcs[w][lt.pos[w]]
}

// pop removes and returns the smallest pending entry, then replays the
// winner's path. Only valid when ok.
func (lt *loserTree) pop() rangeEntry {
	w := lt.ls[0]
	ent := lt.srcs[w][lt.pos[w]]
	lt.pos[w]++
	c := w
	for t := (int(w) + len(lt.ls)) / 2; t > 0; t /= 2 {
		if lt.beats(lt.ls[t], c) {
			c, lt.ls[t] = lt.ls[t], c
		}
	}
	lt.ls[0] = c
	return ent
}
