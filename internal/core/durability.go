package core

// Durability integration: BOHM's deterministic pipeline makes command
// logging sufficient for recovery. The serial order of the system is the
// submission order, transaction logic is deterministic given its reads,
// and the sequencer is a single goroutine — so appending each batch's
// inputs to a log (wal package) and re-submitting them in order after a
// crash reproduces the lost state exactly. No per-version redo or undo
// exists anywhere in the system.
//
// The moving parts, all owned by this file:
//
//   - logBatch: sequencer hook that appends a batch to the command log.
//   - acker: closes each submission's done channel only once its newest
//     batch is durable, so ExecuteBatch never acknowledges volatile state.
//   - checkpointer/checkpointOnce: consistent snapshots at a batch
//     watermark, taken from the multiversion store while execution
//     continues, followed by log truncation.
//   - Recover: checkpoint load + ordered replay of the logged batches.

import (
	"errors"
	"fmt"
	"time"

	"bohm/internal/obs"
	"bohm/internal/storage"
	"bohm/internal/txn"
	"bohm/internal/wal"
)

// ErrNotLoggable is reported (wrapped, for every transaction in the
// submission) when a batch submitted to a durable engine contains a
// transaction that does not implement txn.Loggable. Build transactions
// with txn.Registry.Call to make them loggable.
var ErrNotLoggable = errors.New("bohm: durability requires registry-built (txn.Loggable) transactions")

// startDurability opens the command log and launches the acknowledgement
// and checkpoint goroutines. The pipeline must be quiescent (not yet
// started, or drained by Recover's replay).
func (e *Engine) startDurability() error {
	w, err := wal.OpenWriter(wal.WriterOptions{
		Dir:          e.cfg.LogDir,
		Policy:       e.cfg.SyncPolicy,
		Interval:     e.cfg.SyncInterval,
		SegmentBytes: e.cfg.SegmentBytes,
		FS:           e.cfg.fs(),
		Retry:        e.cfg.LogRetry,
	})
	if err != nil {
		return err
	}
	e.wal = w
	if e.ackCh == nil {
		e.ackCh = make(chan *submission, 256)
		e.ackWG.Add(1)
		go e.acker()
	}
	if e.cfg.pinActive() && e.ckptStop == nil {
		e.ckptStop = make(chan struct{})
		e.ckptWG.Add(1)
		go e.checkpointer()
	}
	e.logOn.Store(true)
	return nil
}

// logBatch encodes one sequencer batch as a wal record and appends it.
// Called from the sequencer goroutine only. An error means the writer
// exhausted its repair budget and is poisoned; the sequencer reacts by
// degrading the engine and dropping the batch before fan-out (emit), so
// a never-logged batch can never execute.
//
// The record and its TxnRecord slice are reused across appends (the
// sequencer is the only caller, and Append retains nothing), so in steady
// state the durability path allocates only inside the OS write itself;
// the wal writer's frame buffer is likewise recycled across appends.
func (e *Engine) logBatch(b *batch) error {
	e.logRec.Seq = b.seq
	if cap(e.logRec.Txns) < len(b.nodes) {
		e.logRec.Txns = make([]wal.TxnRecord, 0, cap(b.nodes))
	}
	e.logRec.Txns = e.logRec.Txns[:0]
	for _, nd := range b.nodes {
		lg, ok := nd.t.(txn.Loggable)
		if !ok {
			// ExecuteBatch rejects non-loggable transactions while logging
			// is on, and logging only toggles while the pipeline is
			// quiescent; reaching here is a bug worth failing loudly over.
			panic(fmt.Sprintf("bohm: non-loggable %T reached the sequencer with logging enabled", nd.t))
		}
		id, args := lg.Procedure()
		e.logRec.Txns = append(e.logRec.Txns, wal.TxnRecord{
			Proc: id, Args: args, Reads: nd.reads, Writes: nd.writes, Ranges: nd.ranges,
		})
	}
	err := e.wal.Append(&e.logRec)
	// Drop the argument and access-set references now rather than at the
	// next append, so a quiet log does not pin the last batch's
	// transactions in memory.
	clear(e.logRec.Txns)
	e.logRec.Txns = e.logRec.Txns[:0]
	return err
}

// acker is the durability gate: submissions whose transactions have all
// completed arrive here, wait until their newest batch is durable, and
// only then wake the submitter. Durability advances monotonically, so
// waiting in arrival order never blocks a submission behind a newer one
// for longer than its own batch's sync.
func (e *Engine) acker() {
	defer e.ackWG.Done()
	o := e.obs
	var t0 int64
	for sub := range e.ackCh {
		if o != nil {
			t0 = o.now()
		}
		err := e.wal.WaitDurable(sub.lastBatch)
		if o != nil {
			o.m.Stages[obs.StageDurableWait].Record(0, uint64(o.now()-t0))
		}
		if err != nil {
			// The log failed: the pipelined transactions executed but
			// would not survive a crash. Degrade the engine and surface
			// that on their slots — and only theirs: diverted fast-path
			// readers in the same submission observed exclusively durable
			// state (their own snapshot gate enforced it) and their
			// results stand.
			e.setDegraded(err)
			derr := fmt.Errorf("bohm: commit not durable: %w", e.durabilityLostError())
			for i := range sub.txns {
				if idx := sub.origIdx(i); sub.res[idx] == nil {
					sub.res[idx] = derr
				}
			}
		}
		close(sub.done)
	}
}

// batchTSKeep bounds the batch-boundary map: the sequencer remembers the
// timestamp boundary of this many recent batches. Checkpoints always
// target a watermark within the pipeline's depth of the newest batch, far
// inside this window.
const batchTSKeep = 4096

// recordBatchTS notes that batch seq ends just below ts (ts is the first
// timestamp of the next batch). Called from the sequencer.
func (e *Engine) recordBatchTS(seq, ts uint64) {
	e.batchTSMu.Lock()
	e.batchTS[seq] = ts
	delete(e.batchTS, seq-batchTSKeep)
	e.batchTSMu.Unlock()
}

// batchBoundary returns the snapshot timestamp for a checkpoint at batch
// seq: reading every chain at this timestamp observes exactly the state
// after every batch up to seq. Watermark seqBase (nothing executed this
// epoch) is timestamp 1, which sees only loaded or restored records.
func (e *Engine) batchBoundary(seq uint64) (uint64, bool) {
	if seq == e.seqBase {
		return 1, true
	}
	e.batchTSMu.Lock()
	ts, ok := e.batchTS[seq]
	e.batchTSMu.Unlock()
	return ts, ok
}

// checkpointer wakes periodically and checkpoints once
// CheckpointEveryBatches batches have executed since the last checkpoint.
func (e *Engine) checkpointer() {
	defer e.ckptWG.Done()
	every := uint64(e.cfg.CheckpointEveryBatches)
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-e.ckptStop:
			return
		case <-t.C:
			if e.degraded() {
				// doCheckpoint would refuse anyway; don't spin the
				// failure counter while the engine is known-degraded.
				continue
			}
			if e.execWatermark() >= e.lastCkpt.Load()+every {
				// A failed attempt (e.g. transient IO error) is retried on
				// a later tick; the log retains everything meanwhile. The
				// failure counter makes persistent trouble observable —
				// while checkpoints fail, the GC pin cannot advance and
				// superseded versions accumulate.
				if err := e.checkpointOnce(); err != nil {
					e.ckptFailed.Add(1)
				}
			}
		}
	}
}

// CheckpointNow synchronously takes a consistent checkpoint at the current
// execution watermark and truncates the log below it.
//
// The command log records only ExecuteBatch inputs, so records installed
// with Load are durable from the first checkpoint onward — an application
// that bulk-loads its initial state must call CheckpointNow after loading
// (and before submitting transactions) to seal the loads; a recovery
// without any checkpoint replays the log against an empty database.
//
// Outside that quiescent post-load window, CheckpointNow requires
// periodic checkpointing to be active (Config.CheckpointEveryBatches > 0)
// or garbage collection to be off: the GC pin that makes snapshot scans
// safe against concurrent chain truncation only exists in those modes.
func (e *Engine) CheckpointNow() error {
	if e.wal == nil {
		return errors.New("bohm: CheckpointNow without durability enabled")
	}
	if !e.cfg.pinActive() && e.cfg.GC && e.batches.Load() > 0 {
		return errors.New("bohm: CheckpointNow requires CheckpointEveryBatches > 0 or GC disabled")
	}
	return e.checkpointOnce()
}

// LastCheckpointError returns the error of the most recent checkpoint
// attempt, or nil when it succeeded (or none has run). The background
// checkpointer retries failures on later ticks; while this returns
// non-nil the log is not being truncated and the GC pin cannot advance,
// so the cause is worth surfacing — the debug endpoint includes it in
// /debug/flight.
func (e *Engine) LastCheckpointError() error {
	e.ckptErrMu.Lock()
	defer e.ckptErrMu.Unlock()
	return e.ckptErr
}

// checkpointOnce runs one checkpoint, retrying transient storage
// failures under Config.CheckpointRetry (exponential backoff,
// interruptible by shutdown), and retains the final outcome for
// LastCheckpointError (a success clears a previously recorded failure).
// Every attempt leaves no temp-file debris (see wal.WriteCheckpointFS),
// so retrying is always safe.
func (e *Engine) checkpointOnce() error {
	var err error
	attempts := e.cfg.CheckpointRetry.Attempts
	if attempts < 0 {
		attempts = 1
	}
	for a := 0; a < attempts; a++ {
		if a > 0 {
			e.ckptRetries.Add(1)
			select {
			case <-time.After(e.cfg.CheckpointRetry.Backoff << (a - 1)):
			case <-e.ckptStop: // nil without a background checkpointer: never fires
				e.ckptErrMu.Lock()
				e.ckptErr = err
				e.ckptErrMu.Unlock()
				return err
			}
		}
		if err = e.doCheckpoint(); err == nil {
			break
		}
	}
	e.ckptErrMu.Lock()
	e.ckptErr = err
	e.ckptErrMu.Unlock()
	return err
}

// doCheckpoint snapshots the database at the current execution watermark
// and, on success, truncates log segments and checkpoints below it.
// Execution continues concurrently: the snapshot reads every chain at the
// watermark's timestamp boundary, which the multiversion store serves
// without blocking writers, and the GC pin (see watermark) keeps those
// versions linked until the next checkpoint moves the pin forward.
func (e *Engine) doCheckpoint() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if e.ckptHook != nil {
		if err := e.ckptHook(); err != nil {
			return err
		}
	}

	if e.degraded() {
		// The execution watermark may cover batches that were executed
		// but never durably logged; checkpointing them would make a
		// crash resurrect state no client was ever acknowledged for.
		return fmt.Errorf("bohm: checkpoint refused: %w", e.durabilityLostError())
	}

	w := e.execWatermark()
	if e.hasCkpt && w <= e.lastCkpt.Load() {
		return nil // a checkpoint already covers everything executed
	}
	boundary, ok := e.batchBoundary(w)
	if !ok {
		return fmt.Errorf("bohm: no timestamp boundary recorded for batch %d", w)
	}
	if err := wal.WriteCheckpointFS(e.cfg.fs(), e.cfg.LogDir, w, e.snapshotScan(boundary)); err != nil {
		return err
	}
	e.lastCkpt.Store(w)
	e.hasCkpt = true
	if e.cfg.pinActive() {
		e.ckptPin.Store(w)
	}
	e.ckptCount.Add(1)
	// Cleanup failures are harmless (stale files are re-deleted by the
	// next checkpoint; recovery ignores batches below the watermark), so
	// they do not fail the checkpoint.
	if e.wal != nil {
		_ = e.wal.TruncateBelow(w + 1)
	}
	_ = wal.RemoveCheckpointsBelowFS(e.cfg.fs(), e.cfg.LogDir, w)
	return nil
}

// snapshotScan emits every record live at the given timestamp boundary.
func (e *Engine) snapshotScan(boundary uint64) func(emit func(k txn.Key, v []byte) error) error {
	return func(emit func(k txn.Key, v []byte) error) error {
		for _, part := range e.parts {
			var ferr error
			part.Range(func(k txn.Key, c *storage.Chain) bool {
				v := c.VisibleAt(boundary)
				if v == nil {
					return true // created after the snapshot point
				}
				if !v.Ready() {
					// Every version below the boundary belongs to an
					// executed batch; an unready one means the snapshot
					// invariant broke. Fail the checkpoint, keep the log.
					ferr = fmt.Errorf("bohm: unready version below checkpoint boundary (key %+v)", k)
					return false
				}
				data, tomb := v.Data()
				if tomb {
					return true
				}
				if err := emit(k, data); err != nil {
					ferr = err
					return false
				}
				return true
			})
			if ferr != nil {
				return ferr
			}
		}
		return nil
	}
}

// waitQuiesce blocks until every flushed batch has fully executed. Only
// used on the recovery path, where the caller guarantees no new
// submissions arrive.
func (e *Engine) waitQuiesce() {
	for e.execWatermark() < e.seqBase+e.batches.Load() {
		time.Sleep(50 * time.Microsecond)
	}
}

// replayTxn wraps a registry-rebuilt transaction with the access sets
// recorded in the log, so replay matches the original run even if a
// factory were to compute access sets differently across versions.
type replayTxn struct {
	t      txn.Txn
	reads  []txn.Key
	writes []txn.Key
	ranges []txn.KeyRange
}

func (r *replayTxn) ReadSet() []txn.Key       { return r.reads }
func (r *replayTxn) WriteSet() []txn.Key      { return r.writes }
func (r *replayTxn) RangeSet() []txn.KeyRange { return r.ranges }
func (r *replayTxn) Run(c txn.Ctx) error      { return r.t.Run(c) }

// Recover rebuilds an engine from the durable state in cfg.LogDir: it
// loads the newest checkpoint, re-executes the logged batches above it in
// order — BOHM's serial order is its submission order, so replay is
// deterministic — then re-establishes durability by writing a fresh
// checkpoint of the recovered state, clearing the old log, and resuming
// logging. A torn final record (crash mid-append) is discarded, matching
// the guarantee that only unacknowledged work can be affected.
//
// reg must hold every procedure id that appears in the log; recovery
// fails otherwise. On an empty or absent directory Recover degenerates to
// New, so applications can use it unconditionally at startup.
func Recover(cfg Config, reg *txn.Registry) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.LogDir == "" {
		return nil, errors.New("bohm: Recover requires Config.LogDir")
	}
	if reg == nil {
		return nil, errors.New("bohm: Recover requires a procedure registry")
	}

	ckWM, ckRecs, ckFound, err := wal.LoadCheckpointFS(cfg.fs(), cfg.LogDir)
	if err != nil {
		return nil, err
	}

	e := build(cfg)
	if err := e.startDebug(); err != nil {
		return nil, err
	}
	// Continue the previous epoch's batch numbering so the post-recovery
	// checkpoint's watermark sorts above every pre-crash checkpoint, and
	// leftover pre-crash segments (all below it) are skipped, not treated
	// as gaps, if a crash interrupts the cleanup below.
	e.seqBase = ckWM
	for i := range e.execBatch {
		e.execBatch[i].Store(ckWM)
	}
	e.start()
	fail := func(err error) (*Engine, error) {
		e.Close()
		return nil, err
	}

	for _, r := range ckRecs {
		if err := e.Load(r.Key, r.Val); err != nil {
			return fail(fmt.Errorf("bohm: restoring checkpoint: %w", err))
		}
	}

	// Replay is pipelined: a reader goroutine streams the log — decoding
	// records and rebuilding transactions through the registry — while
	// this goroutine executes the previous batch. The two-slot channel is
	// the prefetch window: decode of batch n+1 (and n+2) overlaps
	// execution of batch n, and the log is never materialized in memory
	// at once (the pre-pipelining replay held every batch simultaneously).
	type replayBatch struct {
		seq uint64
		ts  []txn.Txn
		err error
	}
	stream := make(chan replayBatch, 2)
	go func() {
		defer close(stream)
		_, _, rerr := wal.ReadLogFS(cfg.fs(), cfg.LogDir, ckWM, func(b *wal.Batch) error {
			ts := make([]txn.Txn, len(b.Txns))
			for i := range b.Txns {
				r := &b.Txns[i]
				body, berr := reg.Build(r.Proc, r.Args)
				if berr != nil {
					return fmt.Errorf("bohm: replaying batch %d: %w", b.Seq, berr)
				}
				ts[i] = &replayTxn{t: body, reads: r.Reads, writes: r.Writes, ranges: r.Ranges}
			}
			stream <- replayBatch{seq: b.Seq, ts: ts}
			return nil
		})
		if rerr != nil {
			stream <- replayBatch{err: rerr}
		}
	}()
	replayed := 0
	var replayErr error
	expected := ckWM + 1
	for rb := range stream {
		if replayErr != nil {
			continue // drain so the reader goroutine can exit
		}
		if rb.err != nil {
			replayErr = rb.err
			continue
		}
		if rb.seq != expected {
			replayErr = fmt.Errorf("%w: log resumes at batch %d, checkpoint covers %d", wal.ErrCorrupt, rb.seq, expected-1)
			continue
		}
		expected++
		replayed++
		// Transaction errors here are user aborts re-occurring exactly as
		// they did originally; they are part of a faithful replay.
		//
		// A zero-transaction record — an idle-reclamation tick the previous
		// epoch logged — replays as a no-op: it carried no timestamps, so
		// skipping it reproduces the state exactly, and the engine's own
		// batch numbering stays dense (the fresh checkpoint below renumbers
		// the log epoch anyway).
		e.ExecuteBatch(rb.ts)
	}
	if replayErr != nil {
		return fail(replayErr)
	}

	// Re-establish durability: make sure one checkpoint covers the
	// recovered state, clear everything else, and resume logging above
	// it. When the replay was empty the loaded checkpoint already equals
	// the in-memory state, so a clean restart skips the O(database)
	// checkpoint rewrite and only removes stale segments.
	if ckFound || replayed > 0 {
		e.waitQuiesce()
		w := e.seqBase + e.batches.Load()
		if replayed > 0 || !ckFound {
			boundary, ok := e.batchBoundary(w)
			if !ok {
				return fail(fmt.Errorf("bohm: no timestamp boundary for recovered batch %d", w))
			}
			if err := wal.WriteCheckpointFS(cfg.fs(), cfg.LogDir, w, e.snapshotScan(boundary)); err != nil {
				return fail(err)
			}
			e.ckptCount.Add(1)
		}
		if err := wal.RemoveAllStateFS(cfg.fs(), cfg.LogDir, w); err != nil {
			return fail(err)
		}
		e.lastCkpt.Store(w)
		e.hasCkpt = true
		if cfg.pinActive() {
			e.ckptPin.Store(w)
		}
	}
	if err := e.startDurability(); err != nil {
		return fail(err)
	}
	// Only now that replay has drained and logging is back on may the idle
	// ticker run: a tick during replay would consume a batch sequence
	// without a log record and leave a gap for the next recovery.
	e.startIdle()
	return e, nil
}
