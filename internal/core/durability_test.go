package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"bohm/internal/storage"
	"bohm/internal/txn"
	"bohm/internal/wal"
)

// The durability tests drive one deterministic workload — increments,
// inserts, deletes and aborts over a small key space, all registry-built —
// against (a) a plain in-memory engine and (b) a durable engine that is
// killed and recovered, and require the two to agree exactly.

const (
	mutProc     = "test.mut"
	mutKeys     = 96
	opIncrement = 0
	opDelete    = 1
	opAbort     = 2
)

func durRegistry() *txn.Registry {
	reg := txn.NewRegistry()
	reg.Register(mutProc, func(args []byte) (txn.Txn, error) {
		if len(args) != 17 {
			return nil, errors.New("bad mut args")
		}
		id := binary.LittleEndian.Uint64(args)
		delta := binary.LittleEndian.Uint64(args[8:])
		op := args[16]
		k := key(id)
		return &txn.Proc{
			Reads:  []txn.Key{k},
			Writes: []txn.Key{k},
			Body: func(c txn.Ctx) error {
				switch op {
				case opDelete:
					return c.Delete(k)
				case opAbort:
					return txn.ErrAbort
				default:
					var cur uint64
					v, err := c.Read(k)
					if err == nil {
						cur = txn.U64(v)
					} else if err != txn.ErrNotFound {
						return err
					}
					// Non-commutative fold: the result pins down the order.
					return c.Write(k, txn.NewValue(16, cur*31+delta))
				}
			},
		}, nil
	})
	return reg
}

func mutCall(t testing.TB, reg *txn.Registry, id, delta uint64, op byte) txn.Txn {
	t.Helper()
	args := make([]byte, 17)
	binary.LittleEndian.PutUint64(args, id)
	binary.LittleEndian.PutUint64(args[8:], delta)
	args[16] = op
	return reg.MustCall(mutProc, args)
}

// workloadBatch builds batch i of the deterministic workload; the same i
// always yields the same transactions.
func workloadBatch(t testing.TB, reg *txn.Registry, i int) []txn.Txn {
	rng := rand.New(rand.NewSource(int64(i)*2654435761 + 17))
	ts := make([]txn.Txn, 25)
	for j := range ts {
		id := uint64(rng.Intn(mutKeys + 16)) // some ids beyond the loaded range: inserts
		delta := uint64(rng.Intn(1000)) + 1
		op := byte(opIncrement)
		switch r := rng.Intn(10); {
		case r == 0:
			op = opDelete
		case r == 1:
			op = opAbort
		}
		ts[j] = mutCall(t, reg, id, delta, op)
	}
	return ts
}

func loadInitial(t testing.TB, e *Engine) {
	t.Helper()
	for id := uint64(0); id < mutKeys; id++ {
		if err := e.Load(key(id), txn.NewValue(16, 7+id)); err != nil {
			t.Fatalf("Load: %v", err)
		}
	}
}

// dumpState reads every live record at the maximum timestamp. The engine
// must be quiescent (all ExecuteBatch calls returned). The dump publishes
// a reader epoch for its duration: with GC on, idle-reclamation ticks keep
// reaping and releasing versions even on a quiescent engine, and the pin
// is what keeps a chain head loaded here from being recycled mid-read.
func dumpState(e *Engine) map[txn.Key]uint64 {
	slot, _ := e.claimROSlot()
	e.settleEpoch(slot, slot.Load())
	defer slot.Store(inactiveEpoch)
	m := make(map[txn.Key]uint64)
	for _, part := range e.parts {
		part.Range(func(k txn.Key, c *storage.Chain) bool {
			v := c.VisibleAt(^uint64(0))
			if v == nil || !v.Ready() {
				return true
			}
			if data, tomb := v.Data(); !tomb {
				m[k] = txn.U64(data)
			}
			return true
		})
	}
	return m
}

func sameState(t *testing.T, label string, got, want map[txn.Key]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d live records, want %d", label, len(got), len(want))
	}
	keys := make([]txn.Key, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, k := range keys {
		if got[k] != want[k] {
			t.Fatalf("%s: key %+v = %d, want %d", label, k, got[k], want[k])
		}
	}
}

func durableConfig(dir string) Config {
	cfg := DefaultConfig()
	cfg.BatchSize = 8 // split submissions across several internal batches
	cfg.LogDir = dir
	cfg.CheckpointEveryBatches = 1000 // pin active; checkpoints on demand only
	return cfg
}

// runReference executes batches [0, n) on a fresh in-memory engine and
// returns its final state and stats.
func runReference(t *testing.T, n int) (map[txn.Key]uint64, uint64, uint64) {
	t.Helper()
	reg := durRegistry()
	cfg := DefaultConfig()
	cfg.BatchSize = 8
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	loadInitial(t, ref)
	for i := 0; i < n; i++ {
		ref.ExecuteBatch(workloadBatch(t, reg, i))
	}
	st := ref.Stats()
	return dumpState(ref), st.Committed, st.UserAborts
}

// TestCrashAtEveryBatchBoundary is the recovery property test: for every
// prefix length k, killing a durable engine after k submissions and
// recovering must reproduce exactly the state and stats of an
// uninterrupted in-memory run of the same k submissions — including when
// a checkpoint landed mid-log, so recovery replays only a suffix.
func TestCrashAtEveryBatchBoundary(t *testing.T) {
	const n = 8
	for k := 0; k <= n; k++ {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			wantState, _, _ := runReference(t, k)

			dir := t.TempDir()
			reg := durRegistry()
			e, err := New(durableConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			loadInitial(t, e)
			if err := e.CheckpointNow(); err != nil {
				t.Fatalf("sealing loads: %v", err)
			}
			for i := 0; i < k; i++ {
				e.ExecuteBatch(workloadBatch(t, reg, i))
				if i == k/2 {
					// Force a mid-log checkpoint so recovery starts from
					// it and replays only the suffix.
					if err := e.CheckpointNow(); err != nil {
						t.Fatalf("mid-log checkpoint: %v", err)
					}
				}
			}
			e.Kill()

			r, err := Recover(durableConfig(dir), reg)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer r.Close()
			sameState(t, "recovered", dumpState(r), wantState)
			// Exactly one checkpoint must cover the recovered state on
			// disk (rewritten after replay, or the loaded one kept as-is
			// on a clean restart with nothing to replay).
			if wms := ckptWatermarks(t, dir); len(wms) != 1 {
				t.Fatalf("recovery left %d checkpoints: %v", len(wms), wms)
			}

			// The recovered engine keeps working and stays durable.
			r.ExecuteBatch(workloadBatch(t, reg, 1000+k))
			after := dumpState(r)
			r.Close()
			r2, err := Recover(durableConfig(dir), reg)
			if err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			defer r2.Close()
			sameState(t, "re-recovered", dumpState(r2), after)
		})
	}
}

// workloadBatchDeleteHeavy builds batch i of a delete-heavy deterministic
// workload: roughly half the operations are deletes (churn-table shape),
// the rest increments that re-create missing keys, plus a few aborts. It
// exercises the index lifecycle against durability: deletes produce
// tombstones the reaper fully reclaims once the GC pin advances, so a
// crash and recovery must reconstruct state across reaped keys without
// resurrecting them.
func workloadBatchDeleteHeavy(t testing.TB, reg *txn.Registry, i int) []txn.Txn {
	rng := rand.New(rand.NewSource(int64(i)*1099511628211 + 41))
	ts := make([]txn.Txn, 25)
	for j := range ts {
		id := uint64(rng.Intn(mutKeys + 16))
		delta := uint64(rng.Intn(1000)) + 1
		op := byte(opIncrement)
		switch r := rng.Intn(10); {
		case r < 5:
			op = opDelete
		case r == 5:
			op = opAbort
		}
		ts[j] = mutCall(t, reg, id, delta, op)
	}
	return ts
}

// TestCrashAtEveryBatchBoundaryDeleteHeavy is the recovery property test
// over the delete-heavy workload: for every prefix length k, a kill after
// k submissions — with a mid-log checkpoint, so the pin advances and the
// reaper actually reclaims tombstoned keys before the crash — must
// recover to exactly the state of an uninterrupted in-memory run.
// Checkpoints omit tombstoned and reaped keys alike, and replayed deletes
// re-tombstone (then re-reap) them, so reaped keys never resurrect.
func TestCrashAtEveryBatchBoundaryDeleteHeavy(t *testing.T) {
	const n = 8
	for k := 0; k <= n; k++ {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			// Reference: plain in-memory engine, same batches.
			reg := durRegistry()
			cfg := DefaultConfig()
			cfg.BatchSize = 8
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			loadInitial(t, ref)
			for i := 0; i < k; i++ {
				ref.ExecuteBatch(workloadBatchDeleteHeavy(t, reg, i))
			}
			wantState := dumpState(ref)
			ref.Close()

			dir := t.TempDir()
			e, err := New(durableConfig(dir))
			if err != nil {
				t.Fatal(err)
			}
			loadInitial(t, e)
			if err := e.CheckpointNow(); err != nil {
				t.Fatalf("sealing loads: %v", err)
			}
			for i := 0; i < k; i++ {
				e.ExecuteBatch(workloadBatchDeleteHeavy(t, reg, i))
				if i == k/2 {
					if err := e.CheckpointNow(); err != nil {
						t.Fatalf("mid-log checkpoint: %v", err)
					}
				}
			}
			e.Kill()

			r, err := Recover(durableConfig(dir), reg)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer r.Close()
			sameState(t, "recovered", dumpState(r), wantState)

			// The recovered engine keeps churning and stays durable:
			// another delete-heavy round, another recovery, same state.
			r.ExecuteBatch(workloadBatchDeleteHeavy(t, reg, 2000+k))
			after := dumpState(r)
			r.Close()
			r2, err := Recover(durableConfig(dir), reg)
			if err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			defer r2.Close()
			sameState(t, "re-recovered", dumpState(r2), after)
		})
	}
}

// TestRecoverReplayStats checks that a recovery replaying the whole log
// (no mid-log checkpoint) reproduces the reference run's commit and abort
// counters, not just its state.
func TestRecoverReplayStats(t *testing.T) {
	const n = 6
	wantState, wantCommits, wantAborts := runReference(t, n)

	dir := t.TempDir()
	reg := durRegistry()
	e, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e.ExecuteBatch(workloadBatch(t, reg, i))
	}
	e.Kill()

	r, err := Recover(durableConfig(dir), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sameState(t, "recovered", dumpState(r), wantState)
	st := r.Stats()
	if st.Committed != wantCommits || st.UserAborts != wantAborts {
		t.Fatalf("replay stats: committed=%d aborts=%d, want %d/%d",
			st.Committed, st.UserAborts, wantCommits, wantAborts)
	}
}

// TestTornTailDiscarded appends a half-written record to the newest
// segment — what a crash mid-append leaves behind — and checks recovery
// detects it via CRC and recovers the intact prefix.
func TestTornTailDiscarded(t *testing.T) {
	const n = 5
	wantState, _, _ := runReference(t, n)

	dir := t.TempDir()
	reg := durRegistry()
	e, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e.ExecuteBatch(workloadBatch(t, reg, i))
	}
	e.Kill()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	sort.Strings(segs)
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A record header claiming 64 bytes, followed by only 10: torn.
	garbage := make([]byte, 18)
	binary.LittleEndian.PutUint32(garbage, 64)
	binary.LittleEndian.PutUint32(garbage[4:], 0xdeadbeef)
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Recover(durableConfig(dir), reg)
	if err != nil {
		t.Fatalf("Recover with torn tail: %v", err)
	}
	defer r.Close()
	sameState(t, "torn-tail", dumpState(r), wantState)
}

// TestBackgroundCheckpointerUnderLoad runs the periodic checkpointer at a
// small interval concurrently with execution and GC, then recovers.
func TestBackgroundCheckpointerUnderLoad(t *testing.T) {
	const n = 40
	wantState, _, _ := runReference(t, n)

	dir := t.TempDir()
	reg := durRegistry()
	cfg := durableConfig(dir)
	cfg.CheckpointEveryBatches = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e.ExecuteBatch(workloadBatch(t, reg, i))
	}
	st := e.Stats()
	e.Kill()
	if st.Checkpoints == 0 {
		t.Skip("checkpointer never fired; timing-dependent")
	}

	r, err := Recover(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sameState(t, "bg-checkpointer", dumpState(r), wantState)
}

func TestSyncPoliciesRoundTrip(t *testing.T) {
	for _, pol := range []wal.SyncPolicy{wal.SyncEveryBatch, wal.SyncByInterval, wal.SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			wantState, _, _ := runReference(t, 4)
			dir := t.TempDir()
			reg := durRegistry()
			cfg := durableConfig(dir)
			cfg.SyncPolicy = pol
			cfg.SyncInterval = 1e5 // 100µs: keep the test fast
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			loadInitial(t, e)
			if err := e.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				e.ExecuteBatch(workloadBatch(t, reg, i))
			}
			// Clean Close flushes even under SyncNever.
			e.Close()
			r, err := Recover(cfg, reg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			sameState(t, pol.String(), dumpState(r), wantState)
		})
	}
}

func TestDurabilityRejectsUnloggableTxns(t *testing.T) {
	dir := t.TempDir()
	e, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	k := key(1)
	w := &txn.Proc{Writes: []txn.Key{k}, Body: func(c txn.Ctx) error {
		return c.Write(k, txn.NewValue(8, 1))
	}}
	res := e.ExecuteBatch([]txn.Txn{w})
	if res[0] == nil || !errors.Is(res[0], ErrNotLoggable) {
		t.Fatalf("plain writing Proc accepted by durable engine: %v", res[0])
	}
	// Read-only transactions bypass the command log on the fast path —
	// they contribute nothing to replay — so a plain Proc with no declared
	// writes is accepted even while logging.
	if res := e.ExecuteBatch([]txn.Txn{&txn.Proc{}}); res[0] != nil {
		t.Fatalf("read-only Proc refused by durable engine: %v", res[0])
	}
	// Mixed submission: the rejection covers only the pipelined slots;
	// diverted readers still run.
	var got uint64
	read := &txn.Proc{Reads: []txn.Key{k}, Body: func(c txn.Ctx) error {
		v, err := c.Read(k)
		if errors.Is(err, txn.ErrNotFound) {
			return nil // the rejected writer never created k
		}
		if err != nil {
			return err
		}
		got = txn.U64(v)
		return nil
	}}
	res = e.ExecuteBatch([]txn.Txn{read, w})
	if res[0] != nil {
		t.Fatalf("diverted reader rejected alongside an unloggable writer: %v", res[0])
	}
	if !errors.Is(res[1], ErrNotLoggable) {
		t.Fatalf("unloggable writer in mixed call: %v", res[1])
	}
	if got != 0 {
		t.Fatalf("reader observed %d; the rejected writer must not have run", got)
	}
}

func TestNewRefusesUsedLogDir(t *testing.T) {
	dir := t.TempDir()
	reg := durRegistry()
	e, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	e.ExecuteBatch([]txn.Txn{mutCall(t, reg, 1, 2, opIncrement)})
	e.Close()
	if _, err := New(durableConfig(dir)); err == nil {
		t.Fatal("New on a used log dir succeeded; must demand Recover")
	}
	// Recover on an empty dir degenerates to a fresh start.
	r, err := Recover(durableConfig(t.TempDir()), reg)
	if err != nil {
		t.Fatalf("Recover on empty dir: %v", err)
	}
	r.Close()
}

// ckptWatermarks lists the watermarks of the checkpoint files in dir.
func ckptWatermarks(t *testing.T, dir string) []uint64 {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	var wms []uint64
	for _, p := range paths {
		var wm uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "ckpt-%d.ckpt", &wm); err != nil {
			t.Fatalf("bad checkpoint name %s", p)
		}
		wms = append(wms, wm)
	}
	sort.Slice(wms, func(i, j int) bool { return wms[i] < wms[j] })
	return wms
}

// TestRecoveryWatermarkMonotone guards the cross-epoch numbering: the
// checkpoint a recovery writes must never sort below a pre-crash
// checkpoint, or an interrupted cleanup could leave a stale checkpoint
// that a later recovery would prefer, silently dropping acknowledged
// transactions.
func TestRecoveryWatermarkMonotone(t *testing.T) {
	dir := t.TempDir()
	reg := durRegistry()
	e, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	loadInitial(t, e)
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e.ExecuteBatch(workloadBatch(t, reg, i))
	}
	if err := e.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ {
		e.ExecuteBatch(workloadBatch(t, reg, i))
	}
	e.Kill()
	pre := ckptWatermarks(t, dir)
	if len(pre) == 0 {
		t.Fatal("no pre-crash checkpoint")
	}
	preMax := pre[len(pre)-1]

	r, err := Recover(durableConfig(dir), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	post := ckptWatermarks(t, dir)
	if len(post) != 1 {
		t.Fatalf("recovery left %d checkpoints: %v", len(post), post)
	}
	if post[0] < preMax {
		t.Fatalf("recovery checkpoint watermark %d sorts below pre-crash %d", post[0], preMax)
	}
}

func TestRecoverUnknownProcedureFails(t *testing.T) {
	dir := t.TempDir()
	reg := durRegistry()
	e, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	e.ExecuteBatch([]txn.Txn{mutCall(t, reg, 1, 2, opIncrement)})
	e.Close()
	if _, err := Recover(durableConfig(dir), txn.NewRegistry()); err == nil {
		t.Fatal("Recover with empty registry succeeded")
	}
}

// BenchmarkRecoverReplay measures recovery throughput: the cost of
// rebuilding an engine from a checkpoint plus a log of batches. Replay is
// pipelined — the next batch decodes and rebuilds through the registry
// while the current one executes — so this benchmark tracks the win of
// the two-slot prefetch over strictly sequential replay. Each iteration
// recovers from a fresh copy of the same durable state (recovery itself
// rewrites the directory).
func BenchmarkRecoverReplay(b *testing.B) {
	const batches = 48
	reg := durRegistry()
	src := b.TempDir()
	cfg := DefaultConfig()
	cfg.CCWorkers, cfg.ExecWorkers = 2, 2
	cfg.BatchSize = 64
	cfg.Capacity = 1 << 12
	cfg.LogDir = src
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	loadInitial(b, e)
	if err := e.CheckpointNow(); err != nil {
		b.Fatal(err)
	}
	txnsLogged := 0
	for i := 0; i < batches; i++ {
		ts := workloadBatch(b, reg, i)
		e.ExecuteBatch(ts)
		txnsLogged += len(ts)
	}
	e.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("copy%d", i))
		if err := os.CopyFS(dir, os.DirFS(src)); err != nil {
			b.Fatal(err)
		}
		c := cfg
		c.LogDir = dir
		b.StartTimer()
		re, err := Recover(c, reg)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		re.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.N*txnsLogged)/b.Elapsed().Seconds(), "replayed-txns/sec")
}
