package core

import (
	"sync"
	"time"

	"bohm/internal/obs"
)

// The adaptive worker governor (Config.AdaptiveWorkers): BOHM fixes the
// CC/exec thread split at configuration time, but the right split is a
// workload property — write-heavy skew loads the CC phase, read-heavy or
// logic-heavy transactions load execution. The governor closes the loop
// using instrumentation the engine already pays for: it samples the CC and
// exec stage histograms over sliding windows and, when one phase's median
// batch latency sustainedly dominates the other's, migrates one worker
// across the boundary by republishing the split the sequencer stamps into
// batches. Everything it does is control-plane: no hot-path atomics, no
// locks the pipeline can observe — workers only ever see a different
// *workerSplit pointer on a fresh batch.

const (
	// govInterval is the sampling period; each tick closes one window.
	govInterval = 200 * time.Millisecond
	// govRatio is how much one phase's windowed p50 must exceed the
	// other's to count the window as leaning — hysteresis against noise.
	govRatio = 1.3
	// govPatience is how many consecutive leaning windows trigger a
	// migration; govCooldown is how many windows are skipped after one,
	// letting the pipeline re-equilibrate before re-measuring.
	govPatience = 3
	govCooldown = 2
	// govMinBatches is the minimum batches per window for a verdict; an
	// idle or trickling engine never migrates.
	govMinBatches = 8
)

// governor owns the sliding-window state. The mutex serializes tick
// against itself (tests drive tick directly while the loop may run) and
// guards the baselines; the published split itself is an atomic pointer
// on the engine.
type governor struct {
	e     *Engine
	total int // combined worker budget; cc+exec == total always

	mu         sync.Mutex
	prevCC     *obs.HistSnapshot // cumulative baselines of the last tick
	prevExec   *obs.HistSnapshot
	leanDir    int // +1 CC-heavy, -1 exec-heavy, 0 balanced
	leanStreak int // consecutive windows leaning leanDir
	cooldown   int // windows left to skip after a migration

	stop chan struct{}
	wg   sync.WaitGroup
}

func newGovernor(e *Engine, total int) *governor {
	return &governor{e: e, total: total}
}

// startLoop launches the background sampling loop.
func (g *governor) startLoop() {
	g.stop = make(chan struct{})
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(govInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.tick()
			}
		}
	}()
}

// stopLoop halts the background loop; idempotent so tests can stop it to
// drive tick deterministically before engine shutdown stops it again.
func (g *governor) stopLoop() {
	if g.stop == nil {
		return
	}
	close(g.stop)
	g.wg.Wait()
	g.stop = nil
}

// tick closes one sampling window: it diffs the cumulative CC and exec
// stage histograms against the previous tick's baselines (HistSnapshot.Sub)
// to get this window's samples, classifies the window, and migrates after
// govPatience consecutive windows leaning the same way. The first tick
// only establishes baselines.
func (g *governor) tick() {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.e.obs.m
	cc := m.Stages[obs.StageCC].Snapshot()
	ex := m.Stages[obs.StageExec].Snapshot()
	if g.prevCC == nil {
		g.prevCC, g.prevExec = cc, ex
		return
	}
	wcc, wex := *cc, *ex
	wcc.Sub(g.prevCC)
	wex.Sub(g.prevExec)
	g.prevCC, g.prevExec = cc, ex

	if g.cooldown > 0 {
		// Post-migration quiet period: the window straddling a split
		// change mixes two regimes, so its verdict would be noise.
		g.cooldown--
		g.leanDir, g.leanStreak = 0, 0
		return
	}
	if wcc.Count < govMinBatches || wex.Count < govMinBatches {
		g.leanDir, g.leanStreak = 0, 0
		return
	}
	ccP50 := float64(wcc.Quantile(0.50))
	exP50 := float64(wex.Quantile(0.50))
	dir := 0
	switch {
	case ccP50 >= govRatio*exP50 && ccP50 > 0:
		dir = 1
	case exP50 >= govRatio*ccP50 && exP50 > 0:
		dir = -1
	}
	if dir == 0 || dir != g.leanDir {
		g.leanDir = dir
		g.leanStreak = 0
		if dir != 0 {
			g.leanStreak = 1
		}
		return
	}
	g.leanStreak++
	if g.leanStreak < govPatience {
		return
	}
	if g.migrate(dir) {
		g.cooldown = govCooldown
	}
	g.leanDir, g.leanStreak = 0, 0
}

// migrate republishes the split with one worker moved toward the slower
// phase (dir > 0: CC gains; dir < 0: exec gains). The new split only ever
// applies to batches the sequencer flushes after the store — no batch is
// ever processed under two assignments. Reports false at the bounds:
// each phase keeps at least one worker, CC never exceeds the partition
// count, exec never exceeds its spawned pool.
func (g *governor) migrate(dir int) bool {
	e := g.e
	next := *e.split.Load()
	if dir > 0 {
		next.cc++
		next.exec--
	} else {
		next.cc--
		next.exec++
	}
	if next.cc < 1 || next.exec < 1 || next.cc > e.nparts || next.exec > e.maxExec {
		return false
	}
	e.split.Store(&next)
	e.workerMigrations.Add(1)
	return true
}
