package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bohm/internal/obs"
	"bohm/internal/txn"
)

// Tests for the adaptive worker governor: deterministic migration
// decisions driven by injected histogram samples (the background loop is
// stopped so tick runs only under test control), bounds and cooldown
// behaviour, and a -race stress that forces migrations under live load.

// newAdaptiveEngine builds an AdaptiveWorkers engine and detaches the
// governor's background loop so the test owns every tick.
func newAdaptiveEngine(t *testing.T, cc, exec int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CCWorkers = cc
	cfg.ExecWorkers = exec
	cfg.AdaptiveWorkers = true
	cfg.BatchSize = 32
	cfg.Capacity = 1 << 12
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.gov == nil {
		t.Fatal("AdaptiveWorkers engine built without a governor")
	}
	e.gov.stopLoop()
	return e
}

// leanWindow records one window's worth of skewed stage samples: ccNS and
// exNS are the per-batch stage latencies the window should report.
func leanWindow(e *Engine, ccNS, exNS uint64) {
	m := e.obs.m
	m.Stages[obs.StageCC].RecordN(0, ccNS, govMinBatches)
	m.Stages[obs.StageExec].RecordN(0, exNS, govMinBatches)
}

// TestGovernorMigratesTowardCC: sustained CC-heavy windows move one
// worker from exec to CC after govPatience consecutive windows — and the
// migration is visible in the split, the Stats counter and the gauges.
func TestGovernorMigratesTowardCC(t *testing.T) {
	e := newAdaptiveEngine(t, 2, 2)
	defer e.Close()
	if e.maxCC != 3 || e.maxExec != 3 || e.nparts != 3 {
		t.Fatalf("geometry = maxCC %d maxExec %d nparts %d, want 3/3/3", e.maxCC, e.maxExec, e.nparts)
	}
	e.gov.tick() // establish baselines
	for i := 0; i < govPatience; i++ {
		if s := e.split.Load(); s.cc != 2 || s.exec != 2 {
			t.Fatalf("window %d: split moved early to %d/%d", i, s.cc, s.exec)
		}
		leanWindow(e, 2_000_000, 200_000)
		e.gov.tick()
	}
	s := e.split.Load()
	if s.cc != 3 || s.exec != 1 {
		t.Fatalf("split after CC-heavy windows = %d/%d, want 3/1", s.cc, s.exec)
	}
	if got := e.Stats().WorkerMigrations; got != 1 {
		t.Fatalf("WorkerMigrations = %d, want 1", got)
	}
	found := map[string]float64{}
	for _, g := range e.gauges() {
		if g.Name == "bohm_worker_split_cc" || g.Name == "bohm_worker_split_exec" {
			found[g.Name] = g.Value()
		}
	}
	if found["bohm_worker_split_cc"] != 3 || found["bohm_worker_split_exec"] != 1 {
		t.Fatalf("split gauges = %v, want cc=3 exec=1", found)
	}
}

// TestGovernorMigratesTowardExec: the symmetric case.
func TestGovernorMigratesTowardExec(t *testing.T) {
	e := newAdaptiveEngine(t, 2, 2)
	defer e.Close()
	e.gov.tick()
	for i := 0; i < govPatience; i++ {
		leanWindow(e, 200_000, 2_000_000)
		e.gov.tick()
	}
	if s := e.split.Load(); s.cc != 1 || s.exec != 3 {
		t.Fatalf("split after exec-heavy windows = %d/%d, want 1/3", s.cc, s.exec)
	}
	if got := e.Stats().WorkerMigrations; got != 1 {
		t.Fatalf("WorkerMigrations = %d, want 1", got)
	}
}

// TestGovernorCooldownAndBounds: after a migration the governor sits out
// its cooldown windows, and at the edge of the worker budget it refuses
// to strand a phase with zero workers — the split and the counter freeze.
func TestGovernorCooldownAndBounds(t *testing.T) {
	e := newAdaptiveEngine(t, 2, 2)
	defer e.Close()
	e.gov.tick()
	drive := func(n int) {
		for i := 0; i < n; i++ {
			leanWindow(e, 2_000_000, 200_000)
			e.gov.tick()
		}
	}
	drive(govPatience) // first migration: 2/2 -> 3/1
	if s := e.split.Load(); s.cc != 3 || s.exec != 1 {
		t.Fatalf("split = %d/%d, want 3/1", s.cc, s.exec)
	}
	// Cooldown windows must not move the split however hard they lean.
	for i := 0; i < govCooldown; i++ {
		leanWindow(e, 5_000_000, 100_000)
		e.gov.tick()
		if s := e.split.Load(); s.cc != 3 || s.exec != 1 {
			t.Fatalf("cooldown window %d moved the split to %d/%d", i, s.cc, s.exec)
		}
	}
	// Past cooldown, the bound holds: exec cannot drop below one worker,
	// so the leaning windows change nothing and the counter stays at 1.
	drive(3 * govPatience)
	if s := e.split.Load(); s.cc != 3 || s.exec != 1 {
		t.Fatalf("split crossed the bound: %d/%d", s.cc, s.exec)
	}
	if got := e.Stats().WorkerMigrations; got != 1 {
		t.Fatalf("WorkerMigrations = %d, want 1 (bound must refuse)", got)
	}
}

// TestGovernorIdleNeverMigrates: windows below the sample floor — an idle
// or trickling engine — never trigger, whatever their shape.
func TestGovernorIdleNeverMigrates(t *testing.T) {
	e := newAdaptiveEngine(t, 2, 2)
	defer e.Close()
	e.gov.tick()
	m := e.obs.m
	for i := 0; i < 4*govPatience; i++ {
		m.Stages[obs.StageCC].RecordN(0, 2_000_000, govMinBatches-1)
		m.Stages[obs.StageExec].RecordN(0, 100_000, govMinBatches-1)
		e.gov.tick()
	}
	if s := e.split.Load(); s.cc != 2 || s.exec != 2 {
		t.Fatalf("idle engine migrated to %d/%d", s.cc, s.exec)
	}
	if got := e.Stats().WorkerMigrations; got != 0 {
		t.Fatalf("WorkerMigrations = %d, want 0", got)
	}
}

// TestGovernorInertWithoutBudget: AdaptiveWorkers with a two-worker
// budget has no room to rebalance; the flag must be inert, not fatal.
func TestGovernorInertWithoutBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 1
	cfg.ExecWorkers = 1
	cfg.AdaptiveWorkers = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.gov != nil {
		t.Fatal("two-worker budget built a governor")
	}
	if e.maxCC != 1 || e.maxExec != 1 || e.nparts != 1 {
		t.Fatalf("geometry inflated: maxCC %d maxExec %d nparts %d", e.maxCC, e.maxExec, e.nparts)
	}
	res := e.ExecuteBatch([]txn.Txn{putTxn(1, 10)})
	if res[0] != nil {
		t.Fatal(res[0])
	}
}

// TestAdaptiveWorkersStress forces the split back and forth under live
// concurrent load — conserved-sum transfers, scans and churn — so worker
// handoffs of partitions (iterators, reap cursors, memo epochs) happen
// while transfers are in flight. Migration is batch-atomic by
// construction (the sequencer stamps the split at flush); any violation
// of the handoff protocol shows up as a torn sum, a duplicate scan row,
// or a -race report. CI runs this under -race.
func TestAdaptiveWorkersStress(t *testing.T) {
	reg := reapStressRegistry()
	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 2
	cfg.AdaptiveWorkers = true
	cfg.BatchSize = 16
	cfg.Capacity = 1 << 14
	cfg.GC = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.gov.stopLoop() // the test owns the migration schedule
	for id := uint64(0); id < reapKeys; id++ {
		if err := e.Load(key(id), txn.NewValue(8, 100)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		streams = 3
		rounds  = 100
		perSub  = 12
	)
	stop := make(chan struct{})
	var migWG sync.WaitGroup
	migWG.Add(1)
	go func() {
		// Sweep the split across its whole range and back, repeatedly, as
		// fast as the pipeline consumes batches.
		defer migWG.Done()
		dir := 1
		for {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if !e.gov.migrate(dir) {
				dir = -dir
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*48271 + 11
			next := func() uint64 {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return x
			}
			churnID := seed * 500
			for r := 0; r < rounds; r++ {
				ts := make([]txn.Txn, perSub)
				for i := range ts {
					switch next() % 6 {
					case 0:
						ts[i] = reapCall(t, reg, next(), next(), reapOpScan)
					case 1:
						churnID++
						ts[i] = reapCall(t, reg, churnID, 0, reapOpChurnIns)
					case 2:
						ts[i] = reapCall(t, reg, churnID, 0, reapOpChurnDel)
					default:
						ts[i] = reapCall(t, reg, next()%4, next()%4, reapOpMove)
					}
				}
				for i, err := range e.ExecuteBatch(ts) {
					if err != nil {
						errCh <- fmt.Errorf("stream %d round %d txn %d: %w", seed, r, i, err)
						return
					}
				}
			}
		}(uint64(s))
	}
	wg.Wait()
	close(stop)
	migWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := e.Stats().WorkerMigrations; got == 0 {
		t.Fatal("stress completed without a single migration")
	}
	sum := uint64(0)
	for k, v := range dumpState(e) {
		if k.Table == 0 {
			sum += v
		}
	}
	if sum != reapTotal {
		t.Errorf("final account sum = %d, want %d", sum, reapTotal)
	}
}
