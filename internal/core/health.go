package core

// The durability degradation ladder. A healthy durable engine that runs
// out of write-hole repairs (wal.RetryPolicy exhausted) does not crash
// and does not silently drop durability: it steps down to LogDegraded,
// a fail-fast-for-writes / keep-serving-for-reads mode.
//
//   Healthy ──(log repair exhausted)──▶ LogDegraded ──(Close/Kill)──▶ Closed
//      │                                                                ▲
//      └──────────────────────────(Close/Kill)───────────────────────────┘
//
// In LogDegraded:
//
//   - ExecuteBatch fails every pipelined transaction fast with
//     ErrDurabilityLost — nothing new is executed, because nothing new
//     can be made durable.
//   - The read paths (ExecuteReadOnly diversion, the inline Read API)
//     keep serving, clamped to the last durable snapshot: every write
//     that was ever acknowledged is still visible, and nothing that
//     could be rolled back by a crash is.
//   - Checkpoints are refused: a checkpoint at the execution watermark
//     would durably capture executed-but-never-logged batches, state a
//     recovery must not resurrect.
//
// The transition is one-way; the process must be restarted (through
// Recover, against repaired storage) to get back to Healthy.

import (
	"errors"
	"fmt"
	"time"
)

// Health is the engine's durability health state; see Engine.Health.
type Health int32

const (
	// Healthy: the durability subsystem (if enabled) is fully working.
	Healthy Health = iota
	// LogDegraded: the command log failed beyond repair. Writes are
	// refused with ErrDurabilityLost; reads serve the last durable
	// snapshot.
	LogDegraded
	// Closed: the engine has been shut down by Close or Kill.
	Closed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case LogDegraded:
		return "log-degraded"
	case Closed:
		return "closed"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

// ErrDurabilityLost is reported — wrapped with the underlying storage
// error — for every transaction refused because the engine is
// LogDegraded: the command log failed beyond its configured repair
// budget (Config.LogRetry), so new work cannot be made durable. Writes
// acknowledged before the failure are unaffected; they were durable when
// acknowledged and remain readable.
var ErrDurabilityLost = errors.New("bohm: durability lost")

// Health returns the engine's position on the durability degradation
// ladder and, once degraded, the storage error that caused the step
// down. Engines without durability enabled report Healthy until Close.
func (e *Engine) Health() (Health, error) {
	h := Health(e.health.Load())
	if h == Healthy {
		return h, nil
	}
	e.healthMu.Lock()
	cause := e.healthCause
	e.healthMu.Unlock()
	return h, cause
}

// durabilityLostError returns ErrDurabilityLost wrapped around the
// degradation cause (when one is recorded).
func (e *Engine) durabilityLostError() error {
	e.healthMu.Lock()
	cause := e.healthCause
	e.healthMu.Unlock()
	if cause == nil {
		return ErrDurabilityLost
	}
	return fmt.Errorf("%w: %w", ErrDurabilityLost, cause)
}

// degraded reports whether the engine has left Healthy.
func (e *Engine) degraded() bool {
	return e.health.Load() != int32(Healthy)
}

// setDegraded moves the engine Healthy → LogDegraded (idempotent; later
// callers with a different cause lose the race and that is fine — the
// first storage failure is the one worth reporting). It also freezes the
// degraded read snapshot: reads keep serving at D, the newest batch
// proven durable, for as long as the engine can guarantee D's versions
// stay materialized.
func (e *Engine) setDegraded(cause error) {
	if !e.health.CompareAndSwap(int32(Healthy), int32(LogDegraded)) {
		return
	}
	e.healthMu.Lock()
	e.healthCause = cause
	e.healthMu.Unlock()
	e.degradedSince.Store(time.Now().UnixNano())

	d := e.seqBase
	if w := e.wal.DurableMark(); w > d {
		d = w
	}
	if ck := e.lastCkpt.Load(); ck > d {
		d = ck
	}
	// Pin garbage collection at D *before* judging whether D's snapshot
	// is still intact: watermark() reads the pin, so every GC cut issued
	// after this store is capped at D, and the execution-watermark check
	// below bounds every cut issued before it.
	e.degradePin.Store(d)
	if wm := e.execWatermark(); wm <= d || e.cfg.pinActive() {
		// Either no cut can ever have passed D (wm <= d), or the
		// checkpoint pin has been capping GC at lastCkpt <= D all along.
		// In both cases a snapshot at D's timestamp boundary is exactly
		// as safe as a checkpoint scan — serve reads there.
		if ts, ok := e.batchBoundary(d); ok {
			e.degradeTS.Store(ts)
			return
		}
	}
	// Cannot prove D's snapshot is still materialized (GC may have
	// collected past it). Lift the pin again and let reads report the
	// durability loss instead of clamping.
	e.degradePin.Store(^uint64(0))
}
