package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"bohm/internal/txn"
	"bohm/internal/wal"
)

// Tests for the index lifecycle: tombstone reaping under the execution
// watermark, directory/hash/chain reclamation, fence shrinking, the
// DisableReaping ablation, and the -race stress interleaving reaping with
// every concurrent reader the engine has.

func putTxn(id uint64, val uint64) txn.Txn {
	k := key(id)
	return &txn.Proc{
		Writes: []txn.Key{k},
		Body:   func(c txn.Ctx) error { return c.Write(k, txn.NewValue(8, val)) },
	}
}

func delTxn(id uint64) txn.Txn {
	k := key(id)
	return &txn.Proc{
		Writes: []txn.Key{k},
		Body:   func(c txn.Ctx) error { return c.Delete(k) },
	}
}

func scanRows(t *testing.T, e *Engine, r txn.KeyRange) map[uint64]uint64 {
	t.Helper()
	rows := map[uint64]uint64{}
	res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
		Ranges: []txn.KeyRange{r},
		Body: func(c txn.Ctx) error {
			return c.ReadRange(r, func(k txn.Key, v []byte) error {
				if _, dup := rows[k.ID]; dup {
					return fmt.Errorf("scan visited key %d twice", k.ID)
				}
				rows[k.ID] = txn.U64(v)
				return nil
			})
		},
	}})
	if res[0] != nil {
		t.Fatalf("scan: %v", res[0])
	}
	return rows
}

// reapConvergence loads total keys into e, deletes all but the ids
// divisible by 8, then ticks single-transaction batches until the
// directory and chain counts converge to the live set, returning how
// many ticks that took.
func reapConvergence(t *testing.T, e *Engine, total uint64) int {
	t.Helper()
	for id := uint64(0); id < total; id++ {
		if err := e.Load(key(id), txn.NewValue(8, id+1)); err != nil {
			t.Fatal(err)
		}
	}
	var dels []txn.Txn
	for id := uint64(0); id < total; id++ {
		if id%8 != 0 {
			dels = append(dels, delTxn(id))
		}
	}
	for i := 0; i < len(dels); i += 256 {
		end := i + 256
		if end > len(dels) {
			end = len(dels)
		}
		for j, err := range e.ExecuteBatch(dels[i:end]) {
			if err != nil {
				t.Fatalf("delete %d: %v", i+j, err)
			}
		}
	}
	live := int(total / 8)

	// The reaper runs a bounded sweep per batch; tick batches until the
	// index converges to the live set, bounded by a generous deadline.
	deadline := time.Now().Add(30 * time.Second)
	ticks := 0
	for e.DirectoryEntries() != live || e.ResidentChains() != live {
		if time.Now().After(deadline) {
			t.Fatalf("index did not converge: %d directory entries, %d chains, want %d (reaped %d)",
				e.DirectoryEntries(), e.ResidentChains(), live, e.Stats().KeysReaped)
		}
		if res := e.ExecuteBatch([]txn.Txn{putTxn(0, 1)}); res[0] != nil {
			t.Fatal(res[0])
		}
		ticks++
	}
	return ticks
}

// TestReapingConvergence is the lifecycle's core property: after heavy
// deletion, the directory entry count and the resident chain count
// converge to the live working set instead of growing monotonically, the
// reclamation counters account for it, scans and reads stay exact, and
// reaped keys can be re-created. The adaptive sweep budget must also
// converge in fewer ticks than the fixed-budget ablation: the mass
// delete drives its tombstone hit rate up and the budget doubles.
func TestReapingConvergence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 2
	cfg.BatchSize = 32
	cfg.Capacity = 1 << 13
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const total = 2048
	const live = total / 8
	adaptiveTicks := reapConvergence(t, e, total)
	st := e.Stats()
	if st.KeysReaped < total-live {
		t.Errorf("KeysReaped = %d, want >= %d", st.KeysReaped, total-live)
	}
	if st.DirBytesReclaimed == 0 {
		t.Error("DirBytesReclaimed = 0 after reaping")
	}

	// Scans (pipeline and fast path) see exactly the live keys.
	full := txn.KeyRange{Table: 0, Lo: 0, Hi: total}
	rows := scanRows(t, e, full)
	if len(rows) != live {
		t.Fatalf("pipeline scan saw %d rows, want %d", len(rows), live)
	}
	for id, v := range rows {
		if id%8 != 0 {
			t.Fatalf("scan resurrected deleted key %d", id)
		}
		if id != 0 && v != id+1 {
			t.Fatalf("key %d = %d, want %d", id, v, id+1)
		}
	}
	res := e.ExecuteReadOnly([]txn.Txn{&txn.Proc{
		Ranges: []txn.KeyRange{full},
		Body: func(c txn.Ctx) error {
			n := 0
			err := c.ReadRange(full, func(k txn.Key, _ []byte) error {
				if k.ID%8 != 0 {
					return fmt.Errorf("fast-path scan resurrected key %d", k.ID)
				}
				n++
				return nil
			})
			if err != nil {
				return err
			}
			if n != live {
				return fmt.Errorf("fast-path scan saw %d rows, want %d", n, live)
			}
			return nil
		},
	}})
	if res[0] != nil {
		t.Fatal(res[0])
	}
	// Point reads of reaped keys are clean not-founds, inline API included.
	if _, err := readVal(t, e, 3); err != txn.ErrNotFound {
		t.Fatalf("read of reaped key = %v, want ErrNotFound", err)
	}
	if _, err := e.Read(key(3), nil); err != txn.ErrNotFound {
		t.Fatalf("inline read of reaped key = %v, want ErrNotFound", err)
	}

	// Reaped keys can be re-created and become scannable again.
	if r := e.ExecuteBatch([]txn.Txn{putTxn(3, 333)}); r[0] != nil {
		t.Fatal(r[0])
	}
	if v, err := readVal(t, e, 3); err != nil || v != 333 {
		t.Fatalf("re-created key = %d/%v, want 333", v, err)
	}
	if rows := scanRows(t, e, full); len(rows) != live+1 {
		t.Fatalf("scan after re-create saw %d rows, want %d", len(rows), live+1)
	}

	t.Logf("adaptive convergence ticks: %d", adaptiveTicks)
}

// TestAdaptiveReapConvergesFaster pits the adaptive sweep budget against
// the DisableAdaptiveReap fixed budget on a workload built to expose the
// difference: a mass delete compacted into few large batches, so almost
// all tombstones are still unswept when ticking starts and convergence
// speed is governed by the sweep budget alone. The adaptive budget's
// hit-rate doubling must finish in strictly fewer ticks — asserted at
// half the fixed count, a generous margin against scheduling noise.
func TestAdaptiveReapConvergesFaster(t *testing.T) {
	run := func(disableAdaptive bool) int {
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 1024 // compact delete phase: few in-flight sweeps
		cfg.Capacity = 1 << 14
		cfg.DisableAdaptiveReap = disableAdaptive
		// Convergence must be governed by the sweep budget alone: idle
		// ticks would reap for both arms while the loop sleeps and wash
		// out the comparison.
		cfg.DisableIdleReap = true
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		return reapConvergence(t, e, 8192)
	}
	adaptive := run(false)
	fixed := run(true)
	t.Logf("convergence ticks: adaptive=%d fixed=%d", adaptive, fixed)
	if 2*adaptive > fixed {
		t.Errorf("adaptive reap converged in %d ticks vs fixed %d; want at most half", adaptive, fixed)
	}
}

// TestReapingFenceSkips checks the sharded fences' lifecycle dividend: a
// scan over a fully reaped region is answered by fence exclusion alone.
func TestReapingFenceSkips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 2
	cfg.BatchSize = 32
	cfg.Capacity = 1 << 12
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Two clusters; the lower one dies entirely.
	const n = 512
	for id := uint64(0); id < n; id++ {
		if err := e.Load(key(id), txn.NewValue(8, 1)); err != nil {
			t.Fatal(err)
		}
		if err := e.Load(key(1<<20+id), txn.NewValue(8, 1)); err != nil {
			t.Fatal(err)
		}
	}
	var dels []txn.Txn
	for id := uint64(0); id < n; id++ {
		dels = append(dels, delTxn(id))
	}
	e.ExecuteBatch(dels)
	deadline := time.Now().Add(30 * time.Second)
	for e.DirectoryEntries() != n {
		if time.Now().After(deadline) {
			t.Fatalf("reap did not converge: %d entries", e.DirectoryEntries())
		}
		e.ExecuteBatch([]txn.Txn{putTxn(1<<20, 1)})
	}
	low := txn.KeyRange{Table: 0, Lo: 0, Hi: n}
	before := e.Stats().RangeFenceSkips
	if rows := scanRows(t, e, low); len(rows) != 0 {
		t.Fatalf("scan of reaped region saw %d rows", len(rows))
	}
	if skips := e.Stats().RangeFenceSkips - before; skips != uint64(cfg.CCWorkers) {
		t.Fatalf("reaped-region scan skipped %d walks, want %d", skips, cfg.CCWorkers)
	}
}

// TestDisableReapingIdenticalResults runs a deterministic mixed workload
// (increments, deletes, aborts, declared scans) against a reaping and a
// non-reaping engine and requires per-transaction outcomes, scan
// observations and final states to match exactly: the lifecycle must be
// invisible except in memory shape.
func TestDisableReapingIdenticalResults(t *testing.T) {
	run := func(disable bool) ([]string, map[txn.Key]uint64) {
		reg := durRegistry()
		cfg := DefaultConfig()
		cfg.CCWorkers = 2
		cfg.ExecWorkers = 2
		cfg.BatchSize = 64
		cfg.Capacity = 1 << 12
		cfg.DisableReaping = disable
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		loadInitial(t, e)
		var outcomes []string
		full := txn.KeyRange{Table: 0, Lo: 0, Hi: mutKeys + 64}
		for i := 0; i < 60; i++ {
			for _, err := range e.ExecuteBatch(workloadBatch(t, reg, i)) {
				if err == nil {
					outcomes = append(outcomes, "commit")
				} else {
					outcomes = append(outcomes, err.Error())
				}
			}
			rows, sum := 0, uint64(0)
			res := e.ExecuteBatch([]txn.Txn{&txn.Proc{
				Ranges: []txn.KeyRange{full},
				Body: func(c txn.Ctx) error {
					return c.ReadRange(full, func(_ txn.Key, v []byte) error {
						rows++
						sum += txn.U64(v)
						return nil
					})
				},
			}})
			if res[0] != nil {
				t.Fatal(res[0])
			}
			outcomes = append(outcomes, fmt.Sprintf("scan:%d:%d", rows, sum))
		}
		return outcomes, dumpState(e)
	}

	onRes, onState := run(false)
	offRes, offState := run(true)
	if len(onRes) != len(offRes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(onRes), len(offRes))
	}
	for i := range onRes {
		if onRes[i] != offRes[i] {
			t.Fatalf("step %d: reaping %q vs DisableReaping %q", i, onRes[i], offRes[i])
		}
	}
	sameState(t, "reaping vs DisableReaping", onState, offState)
}

// reapStress builds the reap stress workload's procedures: conserved-sum
// transfers and invariant scans on the account table, plus insert/delete
// churn and value-checked scans on a side table the reaper constantly
// reclaims behind the readers.
const (
	reapProc       = "reap.op"
	reapKeys       = 48
	reapTotal      = uint64(reapKeys) * 100
	reapOpMove     = 0
	reapOpScan     = 1
	reapOpChurnIns = 2
	reapOpChurnDel = 3
	reapOpChurnScn = 4
	churnTable     = 2
	churnSpan      = 4096
)

func reapStressRegistry() *txn.Registry {
	reg := txn.NewRegistry()
	accounts := txn.KeyRange{Table: 0, Lo: 0, Hi: reapKeys}
	churn := txn.KeyRange{Table: churnTable, Lo: 0, Hi: churnSpan}
	reg.Register(reapProc, func(args []byte) (txn.Txn, error) {
		if len(args) != 17 {
			return nil, fmt.Errorf("bad reap stress args: %d bytes", len(args))
		}
		a := binary.LittleEndian.Uint64(args)
		b := binary.LittleEndian.Uint64(args[8:])
		switch args[16] {
		case reapOpScan:
			return &txn.Proc{
				Ranges: []txn.KeyRange{accounts},
				Body: func(c txn.Ctx) error {
					sum, rows := uint64(0), 0
					err := c.ReadRange(accounts, func(_ txn.Key, v []byte) error {
						sum += txn.U64(v)
						rows++
						return nil
					})
					if err != nil {
						return err
					}
					if rows != reapKeys || sum != reapTotal {
						return fmt.Errorf("scan saw %d rows summing %d, want %d/%d", rows, sum, reapKeys, reapTotal)
					}
					return nil
				},
			}, nil
		case reapOpChurnIns:
			k := txn.Key{Table: churnTable, ID: a % churnSpan}
			return &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Write(k, txn.NewValue(8, k.ID*31+7)) },
			}, nil
		case reapOpChurnDel:
			k := txn.Key{Table: churnTable, ID: a % churnSpan}
			return &txn.Proc{
				Writes: []txn.Key{k},
				Body:   func(c txn.Ctx) error { return c.Delete(k) },
			}, nil
		case reapOpChurnScn:
			// Presence is racy under churn, but any visited row's value
			// must match its key derivation — recycled or torn memory
			// cannot.
			return &txn.Proc{
				Ranges: []txn.KeyRange{churn},
				Body: func(c txn.Ctx) error {
					return c.ReadRange(churn, func(k txn.Key, v []byte) error {
						if txn.U64(v) != k.ID*31+7 {
							return fmt.Errorf("churn row %d = %d, want %d", k.ID, txn.U64(v), k.ID*31+7)
						}
						return nil
					})
				},
			}, nil
		default:
			ka, kb := key(a%reapKeys), key(b%reapKeys)
			if ka == kb {
				kb = key((b + 1) % reapKeys)
			}
			return &txn.Proc{
				Reads:  []txn.Key{ka, kb},
				Writes: []txn.Key{ka, kb},
				Body: func(c txn.Ctx) error {
					va, err := c.Read(ka)
					if err != nil {
						return err
					}
					vb, err := c.Read(kb)
					if err != nil {
						return err
					}
					if err := c.Write(ka, txn.NewValue(8, txn.U64(va)-1)); err != nil {
						return err
					}
					return c.Write(kb, txn.NewValue(8, txn.U64(vb)+1))
				},
			}, nil
		}
	})
	return reg
}

func reapCall(t testing.TB, reg *txn.Registry, a, b uint64, op byte) txn.Txn {
	t.Helper()
	args := make([]byte, 17)
	binary.LittleEndian.PutUint64(args, a)
	binary.LittleEndian.PutUint64(args[8:], b)
	args[16] = op
	return reg.MustCall(reapProc, args)
}

// TestReapingStress interleaves reaping with every concurrent reader the
// engine has: pipeline scans, fast-path snapshot scans (read-only
// submissions are diverted), inline reads, chain GC, version pooling and
// background checkpointing, over a side table under constant insert/
// delete churn so the reaper unlinks directory entries and recycles
// chains behind all of them. Conserved sums and value-checked churn rows
// catch any reuse a live reader could still observe; CI runs this under
// -race.
func TestReapingStress(t *testing.T) {
	reg := reapStressRegistry()
	cfg := DefaultConfig()
	cfg.CCWorkers = 2
	cfg.ExecWorkers = 3
	cfg.BatchSize = 16
	cfg.Capacity = 1 << 14
	cfg.GC = true
	cfg.LogDir = t.TempDir()
	cfg.SyncPolicy = wal.SyncNever
	cfg.CheckpointEveryBatches = 8
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for id := uint64(0); id < reapKeys; id++ {
		if err := e.Load(key(id), txn.NewValue(8, 100)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		streams = 4
		rounds  = 120
		perSub  = 20
	)
	var wg sync.WaitGroup
	errCh := make(chan error, 2*streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			next := func() uint64 {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return x
			}
			churnID := seed * 1000
			for r := 0; r < rounds; r++ {
				ts := make([]txn.Txn, perSub)
				for i := range ts {
					switch next() % 8 {
					case 0:
						ts[i] = reapCall(t, reg, next(), next(), reapOpScan)
					case 1:
						ts[i] = reapCall(t, reg, next(), next(), reapOpChurnScn)
					case 2, 3:
						// Insert then (a few slots later) delete the same
						// id: the side table churns, feeding the reaper.
						churnID++
						ts[i] = reapCall(t, reg, churnID, 0, reapOpChurnIns)
					case 4:
						ts[i] = reapCall(t, reg, churnID, 0, reapOpChurnDel)
					default:
						ts[i] = reapCall(t, reg, next(), next(), reapOpMove)
					}
				}
				for i, err := range e.ExecuteBatch(ts) {
					if err != nil {
						errCh <- fmt.Errorf("stream %d round %d txn %d: %w", seed, r, i, err)
						return
					}
				}
				// Fast-path reads between submissions: a read-only batch
				// (diverted) plus an inline point read.
				if r%7 == int(seed)%7 {
					ro := e.ExecuteReadOnly([]txn.Txn{reapCall(t, reg, next(), next(), reapOpScan)})
					if ro[0] != nil {
						errCh <- fmt.Errorf("stream %d round %d readonly scan: %w", seed, r, ro[0])
						return
					}
					if _, err := e.Read(key(next()%reapKeys), nil); err != nil {
						errCh <- fmt.Errorf("stream %d round %d inline read: %w", seed, r, err)
						return
					}
				}
			}
		}(uint64(s))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Keep the pipeline ticking until reaping has provably engaged (the
	// checkpointer must advance the GC pin first), then verify the final
	// invariant from outside.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := e.Stats()
		if st.KeysReaped > 0 && st.Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reaping did not engage: reaped=%d checkpoints=%d", st.KeysReaped, st.Checkpoints)
		}
		if res := e.ExecuteBatch([]txn.Txn{reapCall(t, reg, 1, 2, reapOpMove)}); res[0] != nil {
			t.Fatal(res[0])
		}
	}
	sum := uint64(0)
	for k, v := range dumpState(e) {
		if k.Table == 0 {
			sum += v
		}
	}
	if sum != reapTotal {
		t.Errorf("final account sum = %d, want %d", sum, reapTotal)
	}
}
