package core

// Observability integration: stage histograms, engine gauges, the flight
// recorder, and the opt-in debug HTTP endpoint. Everything here is gated
// on Config.Metrics — when it is off, e.obs is nil and every
// instrumentation site in the pipeline reduces to one pointer load and a
// branch. When it is on, the record path still performs no allocation
// and takes no locks (see internal/obs); aggregation happens only at
// scrape time.
//
// Clock discipline: stamps are int64 nanoseconds since the engine was
// built (time.Since of a fixed base, so they are monotonic). Batch stage
// stamps travel inside the batch (batchObs in node.go) and are folded
// into histograms by the last execution worker to finish the batch,
// which is also the only goroutine that pushes the batch's flight
// record — one histogram pass per batch, not per transaction.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"sync"
	"time"

	"bohm/internal/engine"
	"bohm/internal/obs"
)

// obsState is the engine's observability root: the monotonic clock base,
// the metrics set, and the optional debug HTTP server.
type obsState struct {
	base  time.Time
	start time.Time // wall-clock engine start, for flight-dump readers
	m     *obs.Metrics
	srv   *http.Server
	ln    net.Listener

	extraMu sync.Mutex
	extra   []func(io.Writer) // RegisterMetricsExtra hooks, scrape-time only
}

// now returns nanoseconds since the engine was built, monotonic.
func (o *obsState) now() int64 { return int64(time.Since(o.base)) }

// newObsState builds the metrics set sized to the pipeline. Batch-stage
// histograms are sharded by recording execution worker, so the shard
// count is the spawned pool size (maxExec), not the configured split —
// under AdaptiveWorkers any of the pool's workers can be the recorder.
func newObsState(cfg *Config, maxExec int) *obsState {
	return &obsState{
		base:  time.Now(),
		start: time.Now(),
		m:     obs.NewMetrics(maxExec, cfg.ReadWorkers, cfg.FlightRecorderSize),
	}
}

// obsRecordBatch folds one completed batch's stage timeline into the
// histograms (sharded by the recording worker) and pushes its flight
// record. Called by exactly one execution worker per batch — the one
// whose obs.done increment reached ExecWorkers — after every node of the
// batch is Complete, so reading nd.err below is ordered by the counter.
func (e *Engine) obsRecordBatch(w int, b *batch, o *obsState) {
	// Idle-reclamation ticks travel the pipeline as zero-node batches.
	// They are housekeeping, not traffic: recording them would dilute the
	// stage histograms with empty-batch latencies and flush real batches
	// out of the flight ring whenever the engine sits idle. They surface
	// through Stats().IdleTicks instead.
	if len(b.nodes) == 0 {
		return
	}
	end := o.now()
	m := o.m
	seq := b.obs.seq
	if t := b.obs.submit; t > 0 && seq >= t {
		m.Stages[obs.StageSeqWait].Record(w, uint64(seq-t))
	}
	ccStart := seq
	if lg := b.obs.log; lg > 0 {
		if lg >= seq {
			m.Stages[obs.StageLogAppend].Record(w, uint64(lg-seq))
		}
		ccStart = lg
	}
	first, last := b.obs.ccFirst.Load(), b.obs.ccLast.Load()
	if ccStart > 0 && last >= ccStart {
		m.Stages[obs.StageCC].Record(w, uint64(last-ccStart))
	}
	if first > 0 && last >= first {
		m.Stages[obs.StageBarrier].Record(w, uint64(last-first))
	}
	if last > 0 && end >= last {
		m.Stages[obs.StageExec].Record(w, uint64(end-last))
	}
	var aborts int64
	for _, nd := range b.nodes {
		if nd.err != nil {
			aborts++
		}
	}
	m.Flight.Record(obs.BatchRecord{
		Seq: b.seq, Txns: int64(len(b.nodes)), Aborts: aborts,
		SubmitNS: b.obs.submit, SequencedNS: seq, LoggedNS: b.obs.log,
		CCFirstNS: first, CCLastNS: last, ExecDoneNS: end,
	})
}

// Metrics returns the engine's metrics set, or nil when Config.Metrics
// is off. Callers may snapshot histograms and the flight recorder at
// will; see internal/obs.
func (e *Engine) Metrics() *obs.Metrics {
	if e.obs == nil {
		return nil
	}
	return e.obs.m
}

// FlightRecords returns the flight recorder's current window, oldest
// first; nil when metrics are off.
func (e *Engine) FlightRecords() []obs.BatchRecord {
	if e.obs == nil {
		return nil
	}
	return e.obs.m.Flight.Snapshot(nil)
}

// gauges samples point-in-time pipeline state from structures the engine
// already maintains; no instrumentation cost exists outside the scrape.
func (e *Engine) gauges() []obs.Gauge {
	return []obs.Gauge{
		{Name: "bohm_sequencer_queue_depth", Help: "Submissions waiting for the sequencer.",
			Value: func() float64 { return float64(len(e.subCh)) }},
		{Name: "bohm_readonly_queue_depth", Help: "Read-only fast-path jobs waiting for a snapshot worker.",
			Value: func() float64 { return float64(len(e.fastCh)) }},
		{Name: "bohm_batches_sequenced", Help: "Newest batch sequence the sequencer has flushed.",
			Value: func() float64 { return float64(e.seqBase + e.batches.Load()) }},
		{Name: "bohm_exec_watermark", Help: "Newest batch every execution worker has finished.",
			Value: func() float64 { return float64(e.execWatermark()) }},
		{Name: "bohm_batches_inflight", Help: "Sequenced batches not yet fully executed (watermark lag).",
			Value: func() float64 {
				seq := e.seqBase + e.batches.Load()
				wm := e.execWatermark()
				if seq < wm {
					return 0
				}
				return float64(seq - wm)
			}},
		{Name: "bohm_gc_watermark", Help: "Batch sequence garbage collection and recycling trail (execution watermark capped by the checkpoint pin and reader epochs).",
			Value: func() float64 { return float64(e.watermark()) }},
		{Name: "bohm_reader_epoch_pin_age_batches", Help: "Batches the oldest published snapshot-reader epoch trails the execution watermark by; 0 when no reader is active.",
			Value: func() float64 {
				wm := e.execWatermark()
				min := inactiveEpoch
				for i := range e.roEpochs {
					if s := e.roEpochs[i].Load(); s < min {
						min = s
					}
				}
				if min == inactiveEpoch || min >= wm {
					return 0
				}
				return float64(wm - min)
			}},
		{Name: "bohm_checkpoint_pin_lag_batches", Help: "Batches the checkpoint GC pin trails the execution watermark by; 0 when checkpointing is inactive.",
			Value: func() float64 {
				pin := e.ckptPin.Load()
				wm := e.execWatermark()
				if pin == ^uint64(0) || pin >= wm {
					return 0
				}
				return float64(wm - pin)
			}},
		{Name: "bohm_last_checkpoint_batch", Help: "Batch watermark of the newest checkpoint.",
			Value: func() float64 { return float64(e.lastCkpt.Load()) }},
		{Name: "bohm_version_pool_free_versions", Help: "Recycled versions parked on the partition pools' free lists.",
			Value: func() float64 {
				var n uint64
				for _, p := range e.vpools {
					n += p.Free()
				}
				return float64(n)
			}},
		{Name: "bohm_worker_split_cc", Help: "CC goroutines active under the current worker split.",
			Value: func() float64 { return float64(e.split.Load().cc) }},
		{Name: "bohm_worker_split_exec", Help: "Execution goroutines active under the current worker split.",
			Value: func() float64 { return float64(e.split.Load().exec) }},
		{Name: "bohm_engine_health", Help: "Durability health ladder position: 0 healthy, 1 log-degraded (writes refused, reads serve the last durable snapshot), 2 closed.",
			Value: func() float64 { return float64(e.health.Load()) }},
		{Name: "bohm_directory_entries", Help: "Ordered-directory entries across all partitions.",
			Value: func() float64 { return float64(e.DirectoryEntries()) }},
		{Name: "bohm_resident_chains", Help: "Hash-index version chains across all partitions.",
			Value: func() float64 { return float64(e.ResidentChains()) }},
	}
}

// statsCounters converts an engine.Stats snapshot into Prometheus
// counters by reflection, so a newly added Stats field shows up in the
// exposition without anyone remembering to add it here.
func statsCounters(s engine.Stats) []obs.Counter {
	v := reflect.ValueOf(s)
	t := v.Type()
	out := make([]obs.Counter, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		out = append(out, obs.Counter{
			Name:  "bohm_" + snakeCase(t.Field(i).Name) + "_total",
			Value: v.Field(i).Uint(),
		})
	}
	return out
}

// snakeCase converts a Go exported identifier to snake_case, keeping
// acronym runs together: "CCAborts" -> "cc_aborts", "ReadOnlyFastPath"
// -> "read_only_fast_path".
func snakeCase(name string) string {
	out := make([]byte, 0, len(name)+4)
	rs := []rune(name)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			prevLower := i > 0 && rs[i-1] >= 'a' && rs[i-1] <= 'z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				out = append(out, '_')
			}
			r += 'a' - 'A'
		}
		out = append(out, byte(r))
	}
	return string(out)
}

// RegisterMetricsExtra adds a scrape-time hook appended to the /metrics
// exposition after the engine's own counters, gauges and histograms.
// Components layered above the engine (the network server) use it to
// publish their metrics on the endpoint Config.DebugAddr already serves,
// so one scrape sees bohm_server_* next to bohm_engine_health. No-op
// when metrics are disabled; hooks must be safe for concurrent scrapes.
func (e *Engine) RegisterMetricsExtra(f func(io.Writer)) {
	if e.obs == nil || f == nil {
		return
	}
	e.obs.extraMu.Lock()
	e.obs.extra = append(e.obs.extra, f)
	e.obs.extraMu.Unlock()
}

// writeMetrics renders the full Prometheus text exposition: engine
// counters (by Stats reflection), gauges, the stage histograms, and any
// registered extras.
func (e *Engine) writeMetrics(w io.Writer) {
	obs.WriteCounters(w, statsCounters(e.Stats()))
	obs.WriteGauges(w, e.gauges())
	e.obs.m.WriteStageHistograms(w, "bohm_stage_duration_seconds")
	e.obs.extraMu.Lock()
	extra := e.obs.extra
	e.obs.extraMu.Unlock()
	for _, f := range extra {
		f(w)
	}
}

// flightDump is the /debug/flight JSON shape. Record timestamps are
// nanoseconds since EngineStart.
type flightDump struct {
	EngineStart         time.Time         `json:"engine_start"`
	Records             []obs.BatchRecord `json:"records"`
	LastCheckpointError string            `json:"last_checkpoint_error,omitempty"`
}

// DebugHandler returns the engine's debug HTTP handler — the same mux
// Config.DebugAddr serves — for embedding into an application's own
// server or an httptest harness. Routes: /metrics (Prometheus text
// format), /debug/flight (JSON flight-recorder dump), /debug/vars
// (expvar), /debug/pprof/* (runtime profiles). Returns nil when metrics
// are disabled.
func (e *Engine) DebugHandler() http.Handler {
	o := e.obs
	if o == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		e.writeMetrics(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		d := flightDump{EngineStart: o.start, Records: o.m.Flight.Snapshot(nil)}
		if err := e.LastCheckpointError(); err != nil {
			d.LastCheckpointError = err.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(d)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugListenAddr returns the address the debug endpoint is serving on
// ("" when Config.DebugAddr was empty). With a ":0" configuration this
// is how callers learn the bound port.
func (e *Engine) DebugListenAddr() string {
	if e.obs == nil || e.obs.ln == nil {
		return ""
	}
	return e.obs.ln.Addr().String()
}

// startDebug binds Config.DebugAddr and serves DebugHandler on it.
func (e *Engine) startDebug() error {
	if e.cfg.DebugAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", e.cfg.DebugAddr)
	if err != nil {
		return fmt.Errorf("bohm: debug endpoint: %w", err)
	}
	e.obs.ln = ln
	e.obs.srv = &http.Server{Handler: e.DebugHandler()}
	go func(srv *http.Server, ln net.Listener) {
		_ = srv.Serve(ln)
	}(e.obs.srv, ln)
	return nil
}

// stopDebug shuts the debug server down, closing open scrape
// connections.
func (e *Engine) stopDebug() {
	if e.obs != nil && e.obs.srv != nil {
		_ = e.obs.srv.Close()
	}
}
